// Live loopback benchmark: WALL-CLOCK committed transactions per second of
// each protocol running over the real socket runtime (src/live/) — sites as
// mailbox threads, messages as real bytes over loopback TCP. Unlike every
// sim bench, both the numerator and denominator here are physical: this is
// what the middleware actually sustains on this host.
//
// Every run's recorded history is verified against the protocol's claimed
// criterion; a violation fails the bench (exit nonzero), so the throughput
// numbers can never come from a run that broke its contract.
//
// Output: a table on stdout and a JSON report (BENCH_live.json by default)
// with one record per protocol: committed/aborted counts, wall seconds,
// committed txns per wall second, transport frames and bytes. Wall-clock
// numbers vary with the host; compare against a baseline on the same
// machine (see EXPERIMENTS.md).
//
// Flags:
//   --short       1 s windows, fewer clients (CI smoke mode)
//   --out FILE    JSON report path (default BENCH_live.json)
//   --sites N     sites / mailbox threads (default 3)
//   --clients N   closed-loop client flows (default 32)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "live/live_runner.h"

using namespace gdur;

namespace {

void append_json(std::string& json, const live::LiveRunResult& r, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  {\"protocol\": \"%s\", \"criterion\": \"%s\", "
      "\"committed\": %llu, \"aborted\": %llu, \"wall_s\": %.3f, "
      "\"committed_per_wall_s\": %.1f, \"frames\": %llu, "
      "\"bytes\": %llu, \"checker_ok\": %s}%s\n",
      r.protocol.c_str(), r.criterion.c_str(),
      static_cast<unsigned long long>(r.metrics.committed()),
      static_cast<unsigned long long>(r.metrics.aborted()), r.wall_secs,
      r.throughput_tps, static_cast<unsigned long long>(r.messages),
      static_cast<unsigned long long>(r.bytes),
      r.checker_ok ? "true" : "false", last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* out_path = "BENCH_live.json";
  live::LiveRunConfig cfg;
  cfg.sites = 3;
  cfg.clients = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc)
      cfg.sites = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
      cfg.clients = std::atoi(argv[++i]);
  }
  cfg.secs = short_mode ? 1.0 : 3.0;
  if (short_mode) cfg.clients = std::min(cfg.clients, 16);
  cfg.workload = workload::WorkloadSpec::A(0.8);

  const std::vector<std::string> names{"P-Store", "S-DUR",    "GMU", "Serrano",
                                       "Walter",  "Jessy2pc", "RC"};

  std::printf(
      "# Live loopback: wall-clock committed txns/s over real sockets "
      "(%d sites, %d clients, %.1f s)\n",
      cfg.sites, cfg.clients, cfg.secs);
  std::printf("%-10s %-5s %10s %10s %8s %12s %12s  %s\n", "protocol", "crit",
              "committed", "aborted", "wall_s", "txns/wall_s", "frames",
              "check");
  std::vector<live::LiveRunResult> results;
  bool all_ok = true;
  for (const auto& name : names) {
    cfg.protocol = name;
    auto r = live::run_live(cfg);
    const bool ok =
        r.checker_ok && r.metrics.committed() > 0 && r.hung_clients == 0;
    all_ok = all_ok && ok;
    std::printf("%-10s %-5s %10llu %10llu %8.3f %12.1f %12llu  %s\n",
                r.protocol.c_str(), r.criterion.c_str(),
                static_cast<unsigned long long>(r.metrics.committed()),
                static_cast<unsigned long long>(r.metrics.aborted()),
                r.wall_secs, r.throughput_tps,
                static_cast<unsigned long long>(r.messages),
                ok ? "clean" : r.checker_detail.c_str());
    results.push_back(std::move(r));
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i)
    append_json(json, results[i], i + 1 == results.size());
  json += "]\n";
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("\n# wrote %zu records to %s\n", results.size(), out_path);
  return all_ok ? 0 : 1;
}

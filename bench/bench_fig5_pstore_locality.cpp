// Figure 5 — improving P-Store with workload locality (§8.4).
//
// P-Store_la swaps in consistent-snapshot reads (PDV) and lets queries
// confined to a single site commit locally without certification.
//
// Expected shape (paper): P-Store_la beats P-Store by 20-70%, the gap
// growing with the fraction of local read-only transactions.
//
// Metric: maximum throughput at 10% / 50% / 90% local transactions,
// Workload A, 4 sites, DP, 90% read-only.
#include "bench_common.h"

using namespace gdur;

int main() {
  std::printf(
      "# Figure 5 — P-Store vs P-Store-LA max throughput (Workload A, 4 "
      "sites, DP, 90%% read-only)\n");
  std::printf("# %-10s %14s %16s %10s\n", "locality", "P-Store(tps)",
              "P-Store-LA(tps)", "speedup");
  const std::vector<int> load{256, 512, 1024, 2048};
  for (const double locality : {0.1, 0.5, 0.9}) {
    auto wl = workload::WorkloadSpec::A(0.9);
    wl.locality = locality;
    const auto cfg = bench::base_config(4, 1, wl);
    const double base =
        bench::max_throughput(protocols::p_store(), cfg, load);
    const double la =
        bench::max_throughput(protocols::p_store_la(), cfg, load);
    std::printf("  %-10.0f%% %14.0f %16.0f %9.0f%%\n", locality * 100, base,
                la, (la / base - 1.0) * 100);
  }
  return 0;
}

// Micro-benchmarks of the substrate components (google-benchmark): these
// are not paper figures, but sanity numbers for the building blocks every
// experiment leans on.
#include <benchmark/benchmark.h>

#include "common/obj_set.h"
#include "common/rng.h"
#include "comm/skeen_multicast.h"
#include "net/transport.h"
#include "sim/simulator.h"
#include "store/mv_store.h"
#include "versioning/oracle.h"

namespace gdur {
namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10'000) sim.after(1, chain);
    };
    sim.after(0, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_CpuCharge(benchmark::State& state) {
  sim::Simulator sim;
  sim::CpuResource cpu(sim, 4);
  for (auto _ : state) benchmark::DoNotOptimize(cpu.charge(10));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpuCharge);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_ZipfianSample(benchmark::State& state) {
  Rng rng(1);
  ZipfianGenerator zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next_scrambled(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianSample)->Arg(1000)->Arg(400'000);

void BM_ObjSetDisjoint(benchmark::State& state) {
  ObjSet a, b;
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    a.insert(rng.next_below(100'000));
    b.insert(rng.next_below(100'000));
  }
  for (auto _ : state) benchmark::DoNotOptimize(a.disjoint(b));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjSetDisjoint)->Arg(2)->Arg(4)->Arg(16);

void BM_OracleChooseCons(benchmark::State& state) {
  store::Partitioner part(4, 1, 1000);
  auto oracle = versioning::make_oracle(versioning::VersioningKind::kPDV, part);
  store::ObjectChain chain;
  versioning::TxnSnapshot writer_snap;
  oracle->begin_snapshot(0, writer_snap);
  for (std::uint64_t i = 1; i <= 16; ++i) {
    versioning::Stamp stamp = oracle->submit_stamp(0, i, writer_snap);
    const auto pidx = oracle->on_apply(0, stamp, {0}, writer_snap);
    chain.install(store::Version{TxnId{0, i}, pidx[0], 0, stamp});
  }
  versioning::TxnSnapshot snap;
  oracle->begin_snapshot(1, snap);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle->choose(0, &chain, 0, snap));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleChooseCons);

void BM_SkeenMulticastRound(benchmark::State& state) {
  const auto dests = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Transport net(sim, net::Topology::uniform(8, milliseconds(10)));
    int delivered = 0;
    comm::SkeenMulticast sk(net,
                            [&](SiteId, const comm::McastMsg&) { ++delivered; });
    std::vector<SiteId> d;
    for (SiteId s = 0; s < dests; ++s) d.push_back(s);
    sim.at(0, [&] {
      for (std::uint64_t i = 0; i < 64; ++i)
        sk.multicast(comm::McastMsg{
            .id = i, .origin = 7, .dests = d, .bytes = 100});
    });
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SkeenMulticastRound)->Arg(2)->Arg(4);

}  // namespace
}  // namespace gdur

BENCHMARK_MAIN();

// Figure 4 — locating GMU's bottleneck by plug-in substitution (§8.3).
//
//   GMU    consistent snapshots + certification       (Algorithm 7)
//   GMU*   trivial snapshot (choose_last), metadata still marshaled & sent
//   GMU**  trivial snapshot + trivial certification
//   RC     the baseline
//
// Expected shape (paper): GMU ≈ GMU* (the snapshot computation itself costs
// only a few percent); GMU** follows RC's trend with a residual gap — the
// marshaling of snapshot metadata. Conclusion: certification, not
// versioning, is GMU's bottleneck.
//
// Metric: average transaction latency vs throughput (as in the paper).
#include "bench_common.h"

using namespace gdur;

int main() {
  auto cfg =
      bench::base_config(4, /*replication=*/1, workload::WorkloadSpec::B(0.9));

  harness::print_header(
      "Figure 4 — GMU bottleneck ablation, Workload B, 4 sites, DP, 90% "
      "read-only (avg txn latency vs throughput)");
  for (const char* name : {"GMU", "GMU*", "GMU**", "RC"}) {
    for (const auto& r : harness::run_sweep(protocols::by_name(name), cfg,
                                            bench::default_load_points())) {
      harness::print_result(r);
    }
    std::printf("\n");
  }
  return 0;
}

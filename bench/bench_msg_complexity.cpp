// Message and delay complexity of the commitment realizations (§5.3).
//
// The paper quotes: 2PC needs Ω(r) messages and 2 message delays; an
// optimal atomic broadcast 3 delays with Ω(n) messages; the best genuine
// fault-tolerant atomic multicast 6 delays with Ω(r^2) messages. This bench
// measures, for each commitment realization, the average number of
// messages per update transaction and the termination latency at low load
// (where latency = protocol delays, not queueing), plus Paxos Commit as
// the third realization the paper lists.
#include <cstdio>

#include "bench_common.h"

using namespace gdur;

int main() {
  std::printf("# Commitment complexity (Workload A, 4 sites, DP, 50%% "
              "read-only, low load)\n");
  std::printf("# %-14s %12s %16s %14s\n", "commitment", "msgs/txn",
              "termlat(ms)", "tput(tps)");

  struct Variant {
    const char* label;
    const char* protocol;
  };
  const Variant variants[] = {
      {"2PC", "P-Store+2PC"},
      {"PaxosCommit", "P-Store+Paxos"},
      {"AM-Cast", "P-Store"},
      {"AM-Cast(FT)", "P-Store-FT"},
      {"AB-Cast", "Serrano"},
  };

  for (const auto& v : variants) {
    auto cfg = bench::base_config(4, 1, workload::WorkloadSpec::A(0.5));
    cfg.clients = 64;  // low load: latency reflects message delays
    const auto r = harness::run_experiment(protocols::by_name(v.protocol), cfg);
    const double msgs_per_txn =
        static_cast<double>(r.messages) /
        static_cast<double>(r.committed + r.aborted);
    std::printf("  %-14s %12.1f %16.2f %14.0f\n", v.label, msgs_per_txn,
                r.upd_term_latency_ms, r.throughput_tps);
  }

  std::printf(
      "\n# Expectations (paper §5.3): 2PC cheapest; Paxos Commit adds one\n"
      "# delay and Ω(r·n) messages; AM-Cast(FT) needs ~6 delays and Ω(r²)\n"
      "# messages; AB-Cast pays Ω(n²) acknowledgment traffic. Client LAN\n"
      "# round trips and read traffic are included in msgs/txn, identically\n"
      "# for every variant.\n");
  return 0;
}

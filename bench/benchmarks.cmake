file(GLOB BENCH_SOURCES CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/bench/*.cpp)
foreach(src ${BENCH_SOURCES})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${src})
  target_link_libraries(${name} PRIVATE gdur benchmark::benchmark)
  # Benchmarks land alone in build/bench/ so `for b in build/bench/*` works.
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_compile_definitions(${name} PRIVATE
    GDUR_SOURCE_DIR="${CMAKE_SOURCE_DIR}")
endforeach()

// Figure 6(b) — the cost of dependability, Disaster-Tolerant configuration
// (§8.5.2): 6 sites, every object replicated at two sites.
//
// Expected shape (paper): 2PC still beats AM-Cast on Workload A; but under
// the contended Workload C, once sites saturate, 2PC's abort ratio blows up
// (preemptive aborts, line 3 of Algorithm 4) while AM-Cast's a-priori
// ordering keeps it moderate — here pre-ordering pays off.
#include "bench_common.h"

using namespace gdur;

int main() {
  // "SER + AM-Cast" is the disaster-tolerant genuine multicast (6 delays,
  // Omega(r^2) messages — the dependable variant of §5.3).
  const std::vector<std::string> variants = {"P-Store-FT", "P-Store+2PC"};

  for (const char wl : {'A', 'C'}) {
    auto spec = wl == 'A' ? workload::WorkloadSpec::A(0.9)
                          : workload::WorkloadSpec::C(0.9);
    auto cfg = bench::base_config(6, /*replication=*/2, spec);
    char title[160];
    std::snprintf(title, sizeof title,
                  "Figure 6b — SER + AM-Cast vs SER + 2PC, Workload %c, 6 "
                  "sites, DT, 90%% read-only (avg txn latency vs tput)",
                  wl);
    bench::run_and_print(title, variants, cfg);
  }

  std::printf("\n# Figure 6b (bottom) — abort ratio vs concurrent txns, "
              "Workload C, DT\n");
  std::printf("# %-12s %10s %12s\n", "protocol", "clients", "abort(%)");
  for (const auto& name : variants) {
    for (const int n : {64, 128, 256, 512, 1024}) {
      auto cfg = bench::base_config(6, 2, workload::WorkloadSpec::C(0.9));
      cfg.clients = n;  // zipfian skew provides the contention
      const auto r = harness::run_experiment(protocols::by_name(name), cfg);
      std::printf("  %-12s %10d %12.2f\n", name.c_str(), n,
                  r.upd_abort_ratio_pct);
    }
    std::printf("\n");
  }
  return 0;
}

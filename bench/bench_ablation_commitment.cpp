// Ablation: degrees of dependability of the commitment plug-in (extends
// §8.5 with the realizations the paper lists but does not plot).
//
//   2PC              blocking on any participant failure, no logging
//   2PC + WAL        crash-recovery 2PC: every state change logged (§5.3)
//   Paxos Commit     coordinator-failure tolerant, majority acceptors
//   AM-Cast          genuine multicast, non-disaster-tolerant
//   AM-Cast (FT)     disaster-tolerant genuine multicast (6 delays)
//
// All five terminate the same protocol (P-Store's versioning and
// certification), so every difference below is the price of dependability.
#include "bench_common.h"

using namespace gdur;

int main() {
  harness::print_header(
      "Dependability ablation — P-Store termination variants, Workload A, 4 "
      "sites, DP, 90% read-only");

  struct Variant {
    const char* label;
    const char* protocol;
    bool durable;
  };
  const Variant variants[] = {
      {"2PC", "P-Store+2PC", false},
      {"2PC+WAL", "P-Store+2PC", true},
      {"PaxosCommit", "P-Store+Paxos", false},
      {"AM-Cast", "P-Store", false},
      {"AM-Cast-FT", "P-Store-FT", false},
  };

  for (const auto& v : variants) {
    for (const int clients : {128, 512, 1024, 2048}) {
      auto cfg = bench::base_config(4, 1, workload::WorkloadSpec::A(0.9));
      cfg.clients = clients;
      cfg.cluster.durable = v.durable;
      auto spec = protocols::by_name(v.protocol);
      spec.name = v.label;
      harness::print_result(harness::run_experiment(spec, cfg));
    }
    std::printf("\n");
  }
  return 0;
}

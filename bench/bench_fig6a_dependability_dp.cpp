// Figure 6(a) — the cost of dependability, Disaster-Prone configuration
// (§8.5.1): P-Store's commitment switched between genuine atomic multicast
// (SER + AM-Cast) and two-phase commit (SER + 2PC), on 4 sites with every
// object stored at a single site.
//
// Expected shape (paper): 2PC outperforms AM-Cast by a factor of at least
// two on Workload A; under the highly contended Workload C the abort
// ratios of both rise similarly — ordering transactions a priori does not
// pay off when a site failure blocks the system anyway.
#include "bench_common.h"

using namespace gdur;

int main() {
  // "SER + AM-Cast" is the disaster-tolerant genuine multicast (6 delays,
  // Omega(r^2) messages — the dependable variant of §5.3).
  const std::vector<std::string> variants = {"P-Store-FT", "P-Store+2PC"};

  for (const char wl : {'A', 'C'}) {
    auto spec = wl == 'A' ? workload::WorkloadSpec::A(0.9)
                          : workload::WorkloadSpec::C(0.9);
    auto cfg = bench::base_config(4, /*replication=*/1, spec);
    char title[160];
    std::snprintf(title, sizeof title,
                  "Figure 6a — SER + AM-Cast vs SER + 2PC, Workload %c, 4 "
                  "sites, DP, 90%% read-only (avg txn latency vs tput)",
                  wl);
    bench::run_and_print(title, variants, cfg);
  }

  // Abort ratio as a function of the number of concurrent transactions
  // (client threads), Workload C.
  std::printf("\n# Figure 6a (bottom) — abort ratio vs concurrent txns, "
              "Workload C, DP\n");
  std::printf("# %-12s %10s %12s\n", "protocol", "clients", "abort(%)");
  for (const auto& name : variants) {
    for (const int n : {64, 128, 256, 512, 1024}) {
      auto cfg = bench::base_config(4, 1, workload::WorkloadSpec::C(0.9));
      cfg.clients = n;  // zipfian skew provides the contention
      const auto r = harness::run_experiment(protocols::by_name(name), cfg);
      std::printf("  %-12s %10d %12.2f\n", name.c_str(), n,
                  r.upd_abort_ratio_pct);
    }
    std::printf("\n");
  }
  return 0;
}

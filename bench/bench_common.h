// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "protocols/protocols.h"
#include "workload/workload.h"

namespace gdur::bench {

inline harness::ExperimentConfig base_config(int sites, int replication,
                                             workload::WorkloadSpec wl) {
  harness::ExperimentConfig cfg;
  cfg.cluster.sites = sites;
  cfg.cluster.replication = replication;
  cfg.cluster.objects_per_site = 100'000;  // §8.1: 1e5 objects per replica
  cfg.workload = std::move(wl);
  cfg.warmup = seconds(0.7);
  cfg.window = seconds(2.5);
  cfg.seed = 42;
  return cfg;
}

inline const std::vector<int>& default_load_points() {
  static const std::vector<int> points{64, 128, 256, 512, 1024, 2048};
  return points;
}

/// Runs the sweep for each named protocol and prints one series per
/// protocol in gnuplot-friendly form.
inline std::vector<harness::RunResult> run_and_print(
    const std::string& title, const std::vector<std::string>& protocol_names,
    const harness::ExperimentConfig& cfg,
    const std::vector<int>& load = default_load_points()) {
  harness::print_header(title);
  std::vector<harness::RunResult> all;
  for (const auto& name : protocol_names) {
    const auto spec = protocols::by_name(name);
    for (const auto& r : harness::run_sweep(spec, cfg, load)) {
      harness::print_result(r);
      all.push_back(r);
    }
    std::printf("\n");
  }
  return all;
}

/// Largest throughput seen across a sweep (the "max throughput" metric of
/// Figure 5).
inline double max_throughput(const core::ProtocolSpec& spec,
                             harness::ExperimentConfig cfg,
                             const std::vector<int>& load) {
  double best = 0;
  for (const auto& r : harness::run_sweep(spec, cfg, load))
    best = std::max(best, r.throughput_tps);
  return best;
}

}  // namespace gdur::bench

// Self-performance harness: simulated committed transactions per second of
// WALL-CLOCK time, per protocol. Every other bench reports simulated-time
// metrics (throughput inside the model); this one measures the simulator
// itself, establishing the repo's performance trajectory against the
// ROADMAP's "as fast as the hardware allows" north star.
//
// Two scenarios per protocol:
//   * deep-queue  — few hot objects, many clients, mostly updates: the
//     termination queue grows long and certification's commute scans
//     dominate engine CPU. This is the scenario the ConflictIndex targets.
//   * default     — the standard Workload A point, guarding against
//     regressions on the uncontended path.
//
// Output: a human-readable table on stdout and a JSON report
// (BENCH_selfperf.json by default) with one record per (protocol,
// scenario): simulated committed txns, wall seconds, committed/wall-s, and
// simulated events/wall-s. Wall-clock numbers vary with the host; compare
// ratios against a baseline build on the same machine, not absolute values
// across machines (see EXPERIMENTS.md).
//
// A third mode (--shards) measures the sharded certification pipeline
// (DESIGN.md §14) instead of the simulator: committed transactions per
// second at shards_per_site ∈ {1, 2, 4} on a certification-bound
// configuration, in the simulator (per simulated second, lane model) and in
// the live runtime (per wall second, certify-service model — honest on a
// single-core host, see EXPERIMENTS.md). Report: BENCH_selfperf_shards.json
// with per-point speedup over the 1-shard serial baseline.
//
// Flags:
//   --short       smaller windows / fewer clients (CI smoke mode)
//   --out FILE    JSON report path (default BENCH_selfperf.json, or
//                 BENCH_selfperf_shards.json with --shards)
//   --deep-only   skip the default-workload scenario
//   --shards      run the cores-scaling shard suite instead of the
//                 simulator-throughput suite
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "live/live_runner.h"

using namespace gdur;

namespace {

struct SelfPerfResult {
  std::string protocol;
  std::string scenario;
  std::uint64_t committed = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double committed_per_wall_s = 0;
  double events_per_wall_s = 0;
};

SelfPerfResult measure(const std::string& protocol, const std::string& scenario,
                       const harness::ExperimentConfig& cfg) {
  const auto spec = protocols::by_name(protocol);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = harness::run_experiment(spec, cfg);
  const auto t1 = std::chrono::steady_clock::now();

  SelfPerfResult out;
  out.protocol = protocol;
  out.scenario = scenario;
  out.committed = r.committed;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  // events_per_second is simulated events per simulated second over the
  // measurement window; recover the event count from the window length.
  out.events = static_cast<std::uint64_t>(
      r.events_per_second * (static_cast<double>(cfg.window) / seconds(1)));
  if (out.wall_s > 0) {
    out.committed_per_wall_s = static_cast<double>(out.committed) / out.wall_s;
    out.events_per_wall_s = static_cast<double>(out.events) / out.wall_s;
  }
  return out;
}

void append_json(std::string& json, const SelfPerfResult& r, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  {\"protocol\": \"%s\", \"scenario\": \"%s\", "
                "\"committed\": %llu, \"wall_s\": %.3f, "
                "\"committed_per_wall_s\": %.1f, "
                "\"sim_events\": %llu, \"events_per_wall_s\": %.0f}%s\n",
                r.protocol.c_str(), r.scenario.c_str(),
                static_cast<unsigned long long>(r.committed), r.wall_s,
                r.committed_per_wall_s,
                static_cast<unsigned long long>(r.events),
                r.events_per_wall_s, last ? "" : ",");
  json += buf;
}

// ---------------------------------------------------------------------------
// --shards: cores-scaling of the sharded certification pipeline.
// ---------------------------------------------------------------------------

struct ShardPoint {
  std::string mode;  // "sim" | "live"
  int shards = 1;
  std::uint64_t committed = 0;
  double secs = 0;       // sim: simulated window; live: wall window
  double per_s = 0;      // committed / secs
  double speedup = 1.0;  // vs the 1-shard point of the same mode
};

int run_shards_suite(bool short_mode, const char* out_path) {
  const std::string protocol = "P-Store";
  std::vector<ShardPoint> points;

  harness::print_header(
      "Shard scaling: committed txn/s vs shards_per_site (P-DUR pipeline)");
  std::printf("%-5s %7s %10s %8s %12s %8s\n", "mode", "shards", "committed",
              "secs", "commit/s", "speedup");

  // Simulator, lane model. Certification-bound on purpose: one modeled
  // core per site and a heavy certify_base make the certifier the
  // bottleneck resource, so lanes — not the network — set the slope.
  //
  // The workload is P-DUR's sweet spot: single-object footprints, so every
  // certification is single-shard and disjoint transactions overlap fully.
  // Multi-object footprints (e.g. Workload B's 2r+2w updates) span several
  // of the 4 slices and the lanes serialize exactly on the overlap — that
  // regime measures the ordering rule, not the pipeline, and its slope is
  // bounded well below the shard count (see EXPERIMENTS.md).
  workload::WorkloadSpec onesie;
  onesie.name = "1op";
  onesie.ro_reads = 1;
  onesie.upd_reads = 0;
  onesie.upd_writes = 1;
  onesie.read_only_ratio = 0.5;

  harness::ExperimentConfig cfg;
  cfg.cluster.sites = 2;
  cfg.cluster.replication = 1;
  cfg.cluster.objects_per_site = 4096;
  cfg.cluster.cores_per_site = 1;
  cfg.cluster.cost.certify_base = microseconds(600);
  // A fast interconnect (vs the default WAN-ish 10-20ms) and a deep closed
  // loop keep the certifier saturated; otherwise client think-time, not
  // certification, sets the throughput and shards have nothing to scale.
  cfg.cluster.min_latency = microseconds(200);
  cfg.cluster.max_latency = microseconds(400);
  cfg.workload = onesie;
  cfg.clients = short_mode ? 128 : 256;
  cfg.warmup = seconds(0.5);
  cfg.window = short_mode ? seconds(1) : seconds(2);
  cfg.seed = 42;
  const double sim_secs = static_cast<double>(cfg.window) / seconds(1);
  double sim_base = 0;
  for (int s : {1, 2, 4}) {
    cfg.cluster.shards_per_site = s;
    const auto r = harness::run_experiment(protocols::by_name(protocol), cfg);
    ShardPoint p{"sim", s, r.committed, sim_secs,
                 static_cast<double>(r.committed) / sim_secs, 1.0};
    if (s == 1) sim_base = p.per_s;
    if (sim_base > 0) p.speedup = p.per_s / sim_base;
    std::printf("%-5s %7d %10llu %8.2f %12.1f %7.2fx\n", "sim", s,
                static_cast<unsigned long long>(p.committed), p.secs, p.per_s,
                p.speedup);
    points.push_back(p);
  }

  // Live runtime, certify-service model: shard workers wait out the same
  // analytic certification time, so waits overlap even on one hardware
  // core and the measurement captures pipeline parallelism, not host core
  // count. The 1-shard baseline takes the identical wait on its (single)
  // site thread — same modeled work, serial schedule.
  double live_base = 0;
  for (int s : {1, 2, 4}) {
    live::LiveRunConfig lcfg;
    lcfg.protocol = protocol;
    lcfg.sites = 3;
    lcfg.clients = short_mode ? 48 : 64;
    lcfg.secs = short_mode ? 1.0 : 2.0;
    lcfg.workload = onesie;
    lcfg.objects_per_site = 4096;
    lcfg.replication = 1;
    lcfg.seed = 42;
    lcfg.shards_per_site = s;
    lcfg.live_certify_model = true;
    lcfg.cost.certify_base = milliseconds(2);
    const auto r = live::run_live(lcfg);
    ShardPoint p{"live", s, r.metrics.committed(), r.wall_secs,
                 r.throughput_tps, 1.0};
    if (s == 1) live_base = p.per_s;
    if (live_base > 0) p.speedup = p.per_s / live_base;
    std::printf("%-5s %7d %10llu %8.2f %12.1f %7.2fx%s\n", "live", s,
                static_cast<unsigned long long>(p.committed), p.secs, p.per_s,
                p.speedup, r.checker_ok ? "" : "  CHECKER-FAIL");
    points.push_back(p);
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  {\"mode\": \"%s\", \"protocol\": \"%s\", \"shards\": %d, "
                  "\"committed\": %llu, \"secs\": %.3f, "
                  "\"committed_per_s\": %.1f, \"speedup_vs_1\": %.3f}%s\n",
                  points[i].mode.c_str(), protocol.c_str(), points[i].shards,
                  static_cast<unsigned long long>(points[i].committed),
                  points[i].secs, points[i].per_s, points[i].speedup,
                  i + 1 == points.size() ? "" : ",");
    json += buf;
  }
  json += "]\n";
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("\n# wrote %zu records to %s\n", points.size(), out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  bool deep_only = false;
  bool shards_mode = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--deep-only") == 0) deep_only = true;
    if (std::strcmp(argv[i], "--shards") == 0) shards_mode = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  if (shards_mode)
    return run_shards_suite(short_mode,
                            out_path ? out_path : "BENCH_selfperf_shards.json");
  if (out_path == nullptr) out_path = "BENCH_selfperf.json";

  // Deep-queue high-contention scenario: a small hot set and an
  // update-heavy interactive workload keep |Q| large at every replica, so
  // commute-scan cost is the dominant engine term.
  auto deep = bench::base_config(4, /*replication=*/1,
                                 workload::WorkloadSpec::B(0.1));
  deep.cluster.objects_per_site = 512;
  deep.clients = short_mode ? 256 : 1024;
  deep.warmup = seconds(0.3);
  deep.window = short_mode ? seconds(0.6) : seconds(1.5);

  // Default point: Workload A as run by the figure benches.
  auto dflt = bench::base_config(4, /*replication=*/1,
                                 workload::WorkloadSpec::A(0.9));
  dflt.clients = short_mode ? 128 : 256;
  dflt.warmup = seconds(0.3);
  dflt.window = short_mode ? seconds(0.5) : seconds(1.0);

  const std::vector<std::string> names{"P-Store", "S-DUR",    "GMU", "Serrano",
                                       "Walter",  "Jessy2pc", "RC"};

  std::vector<SelfPerfResult> results;
  harness::print_header(
      "Self-perf: simulated committed txns per wall-clock second");
  std::printf("%-10s %-10s %10s %8s %14s %14s\n", "protocol", "scenario",
              "committed", "wall_s", "commit/wall_s", "events/wall_s");
  for (const auto& name : names) {
    std::vector<std::pair<std::string, const harness::ExperimentConfig*>> runs;
    runs.emplace_back("deep-queue", &deep);
    if (!deep_only) runs.emplace_back("default", &dflt);
    for (const auto& [scenario, cfg] : runs) {
      const auto r = measure(name, scenario, *cfg);
      std::printf("%-10s %-10s %10llu %8.3f %14.1f %14.0f\n",
                  r.protocol.c_str(), r.scenario.c_str(),
                  static_cast<unsigned long long>(r.committed), r.wall_s,
                  r.committed_per_wall_s, r.events_per_wall_s);
      results.push_back(r);
    }
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i)
    append_json(json, results[i], i + 1 == results.size());
  json += "]\n";
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("\n# wrote %zu records to %s\n", results.size(), out_path);
  return 0;
}

// Self-performance harness: simulated committed transactions per second of
// WALL-CLOCK time, per protocol. Every other bench reports simulated-time
// metrics (throughput inside the model); this one measures the simulator
// itself, establishing the repo's performance trajectory against the
// ROADMAP's "as fast as the hardware allows" north star.
//
// Two scenarios per protocol:
//   * deep-queue  — few hot objects, many clients, mostly updates: the
//     termination queue grows long and certification's commute scans
//     dominate engine CPU. This is the scenario the ConflictIndex targets.
//   * default     — the standard Workload A point, guarding against
//     regressions on the uncontended path.
//
// Output: a human-readable table on stdout and a JSON report
// (BENCH_selfperf.json by default) with one record per (protocol,
// scenario): simulated committed txns, wall seconds, committed/wall-s, and
// simulated events/wall-s. Wall-clock numbers vary with the host; compare
// ratios against a baseline build on the same machine, not absolute values
// across machines (see EXPERIMENTS.md).
//
// Flags:
//   --short       smaller windows / fewer clients (CI smoke mode)
//   --out FILE    JSON report path (default BENCH_selfperf.json)
//   --deep-only   skip the default-workload scenario
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace gdur;

namespace {

struct SelfPerfResult {
  std::string protocol;
  std::string scenario;
  std::uint64_t committed = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double committed_per_wall_s = 0;
  double events_per_wall_s = 0;
};

SelfPerfResult measure(const std::string& protocol, const std::string& scenario,
                       const harness::ExperimentConfig& cfg) {
  const auto spec = protocols::by_name(protocol);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = harness::run_experiment(spec, cfg);
  const auto t1 = std::chrono::steady_clock::now();

  SelfPerfResult out;
  out.protocol = protocol;
  out.scenario = scenario;
  out.committed = r.committed;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  // events_per_second is simulated events per simulated second over the
  // measurement window; recover the event count from the window length.
  out.events = static_cast<std::uint64_t>(
      r.events_per_second * (static_cast<double>(cfg.window) / seconds(1)));
  if (out.wall_s > 0) {
    out.committed_per_wall_s = static_cast<double>(out.committed) / out.wall_s;
    out.events_per_wall_s = static_cast<double>(out.events) / out.wall_s;
  }
  return out;
}

void append_json(std::string& json, const SelfPerfResult& r, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  {\"protocol\": \"%s\", \"scenario\": \"%s\", "
                "\"committed\": %llu, \"wall_s\": %.3f, "
                "\"committed_per_wall_s\": %.1f, "
                "\"sim_events\": %llu, \"events_per_wall_s\": %.0f}%s\n",
                r.protocol.c_str(), r.scenario.c_str(),
                static_cast<unsigned long long>(r.committed), r.wall_s,
                r.committed_per_wall_s,
                static_cast<unsigned long long>(r.events),
                r.events_per_wall_s, last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  bool deep_only = false;
  const char* out_path = "BENCH_selfperf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--deep-only") == 0) deep_only = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  // Deep-queue high-contention scenario: a small hot set and an
  // update-heavy interactive workload keep |Q| large at every replica, so
  // commute-scan cost is the dominant engine term.
  auto deep = bench::base_config(4, /*replication=*/1,
                                 workload::WorkloadSpec::B(0.1));
  deep.cluster.objects_per_site = 512;
  deep.clients = short_mode ? 256 : 1024;
  deep.warmup = seconds(0.3);
  deep.window = short_mode ? seconds(0.6) : seconds(1.5);

  // Default point: Workload A as run by the figure benches.
  auto dflt = bench::base_config(4, /*replication=*/1,
                                 workload::WorkloadSpec::A(0.9));
  dflt.clients = short_mode ? 128 : 256;
  dflt.warmup = seconds(0.3);
  dflt.window = short_mode ? seconds(0.5) : seconds(1.0);

  const std::vector<std::string> names{"P-Store", "S-DUR",    "GMU", "Serrano",
                                       "Walter",  "Jessy2pc", "RC"};

  std::vector<SelfPerfResult> results;
  harness::print_header(
      "Self-perf: simulated committed txns per wall-clock second");
  std::printf("%-10s %-10s %10s %8s %14s %14s\n", "protocol", "scenario",
              "committed", "wall_s", "commit/wall_s", "events/wall_s");
  for (const auto& name : names) {
    std::vector<std::pair<std::string, const harness::ExperimentConfig*>> runs;
    runs.emplace_back("deep-queue", &deep);
    if (!deep_only) runs.emplace_back("default", &dflt);
    for (const auto& [scenario, cfg] : runs) {
      const auto r = measure(name, scenario, *cfg);
      std::printf("%-10s %-10s %10llu %8.3f %14.1f %14.0f\n",
                  r.protocol.c_str(), r.scenario.c_str(),
                  static_cast<unsigned long long>(r.committed), r.wall_s,
                  r.committed_per_wall_s, r.events_per_wall_s);
      results.push_back(r);
    }
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i)
    append_json(json, results[i], i + 1 == results.size());
  json += "]\n";
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("\n# wrote %zu records to %s\n", results.size(), out_path);
  return 0;
}

// Live saturation benchmark: client-visible latency versus offered load on
// the real socket runtime, the canonical "knee" study for the production
// front door (DESIGN.md §15). Open-loop Poisson arrivals sweep a ladder of
// offered rates for each protocol; at every point we record committed
// throughput and the p50/p99/max of the client-visible transaction latency,
// first with per-destination vote/ack coalescing off, then on. The batching
// column pair (batches, batched_msgs) shows how much wire traffic the
// coalescer absorbed; at rates near the knee the coalesced run should
// sustain more committed/s than the uncoalesced one on at least one
// protocol — that is the measurable gain the batching hot path exists for.
//
// Every run's recorded history is verified against the protocol's claimed
// criterion; a violation fails the bench (exit nonzero), so no latency or
// throughput number ever comes from a run that broke its contract.
//
// Output: a table on stdout and a JSON report (BENCH_live_saturation.json
// by default) with one record per (protocol, coalesce, offered_tps) point.
// Wall-clock numbers vary with the host; compare against a baseline on the
// same machine (see EXPERIMENTS.md).
//
// Flags:
//   --short       1 s windows, 2 load points, 2 protocols (CI smoke mode)
//   --out FILE    JSON report path (default BENCH_live_saturation.json)
//   --sites N     sites / mailbox threads (default 3)
//   --secs S      measurement window per point (default 2.0)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "live/live_runner.h"

using namespace gdur;

namespace {

struct Point {
  double offered_tps = 0.0;
  bool coalesce = false;
  live::LiveRunResult r;
};

void append_json(std::string& json, const Point& p, bool last) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "  {\"protocol\": \"%s\", \"criterion\": \"%s\", \"coalesce\": %s, "
      "\"offered_tps\": %.0f, \"committed\": %llu, \"aborted\": %llu, "
      "\"wall_s\": %.3f, \"committed_per_wall_s\": %.1f, "
      "\"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, \"max\": %.3f}, "
      "\"frames\": %llu, \"batches\": %llu, \"batched_msgs\": %llu, "
      "\"checker_ok\": %s}%s\n",
      p.r.protocol.c_str(), p.r.criterion.c_str(),
      p.coalesce ? "true" : "false", p.offered_tps,
      static_cast<unsigned long long>(p.r.metrics.committed()),
      static_cast<unsigned long long>(p.r.metrics.aborted()), p.r.wall_secs,
      p.r.throughput_tps, p.r.metrics.txn_latency.percentile_ms(0.5),
      p.r.metrics.txn_latency.percentile_ms(0.99),
      p.r.metrics.txn_latency.max_ms(),
      static_cast<unsigned long long>(p.r.messages),
      static_cast<unsigned long long>(p.r.batches),
      static_cast<unsigned long long>(p.r.batched_msgs),
      p.r.checker_ok ? "true" : "false", last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* out_path = "BENCH_live_saturation.json";
  live::LiveRunConfig cfg;
  cfg.sites = 3;
  cfg.secs = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc)
      cfg.sites = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--secs") == 0 && i + 1 < argc)
      cfg.secs = std::atof(argv[++i]);
  }
  cfg.workload = workload::WorkloadSpec::A(0.8);

  std::vector<std::string> names{"P-Store", "GMU", "Walter"};
  std::vector<double> loads{500, 2000, 8000, 20000};
  if (short_mode) {
    cfg.secs = 1.0;
    names = {"P-Store", "GMU"};
    loads = {500, 4000};
  }

  std::printf(
      "# Live saturation: client-visible latency vs offered load "
      "(%d sites, open loop, %.1f s per point)\n",
      cfg.sites, cfg.secs);
  std::printf("%-10s %-5s %-4s %9s %10s %12s %9s %9s %10s  %s\n", "protocol",
              "crit", "coal", "offered", "committed", "txns/wall_s", "p50_ms",
              "p99_ms", "batches", "check");

  std::vector<Point> points;
  bool all_ok = true;
  for (const auto& name : names) {
    for (const bool coalesce : {false, true}) {
      for (const double tps : loads) {
        cfg.protocol = name;
        cfg.coalesce = coalesce;
        cfg.open_loop_tps = tps;
        Point p;
        p.offered_tps = tps;
        p.coalesce = coalesce;
        p.r = live::run_live(cfg);
        const bool ok = p.r.checker_ok && p.r.metrics.committed() > 0;
        all_ok = all_ok && ok;
        std::printf(
            "%-10s %-5s %-4s %9.0f %10llu %12.1f %9.3f %9.3f %10llu  %s\n",
            p.r.protocol.c_str(), p.r.criterion.c_str(),
            coalesce ? "on" : "off", tps,
            static_cast<unsigned long long>(p.r.metrics.committed()),
            p.r.throughput_tps, p.r.metrics.txn_latency.percentile_ms(0.5),
            p.r.metrics.txn_latency.percentile_ms(0.99),
            static_cast<unsigned long long>(p.r.batches),
            ok ? "clean" : p.r.checker_detail.c_str());
        points.push_back(std::move(p));
      }
    }
  }

  std::string json = "[\n";
  for (std::size_t i = 0; i < points.size(); ++i)
    append_json(json, points[i], i + 1 == points.size());
  json += "]\n";
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("\n# wrote %zu records to %s\n", points.size(), out_path);
  return all_ok ? 0 : 1;
}

// Figure 3(b) — protocol comparison, Workload B, 4 sites, Disaster
// Tolerant (every object replicated at two sites), 90% and 70% read-only.
//
// Expected shape (paper): with larger transactions Walter and Jessy2pc
// converge (non-genuineness is masked); GMU degrades through its abort
// rate, which far exceeds Walter's and Jessy2pc's.
//
// The abort-rate contrast of §8.2 (GMU 12%/48% vs ≤1%) depends on the
// workload's effective contention; the second part of this bench reruns
// the 1024-client point on a small key space to expose it sharply.
#include "bench_common.h"

using namespace gdur;

int main() {
  const std::vector<std::string> protocols = {
      "RC", "Jessy2pc", "Walter", "GMU", "S-DUR", "Serrano", "P-Store"};

  for (const double ro : {0.9, 0.7}) {
    auto cfg = bench::base_config(4, /*replication=*/2,
                                  workload::WorkloadSpec::B(ro));
    char title[128];
    std::snprintf(title, sizeof title,
                  "Figure 3b — Workload B, 4 sites, DT, %.0f%% read-only",
                  ro * 100);
    bench::run_and_print(title, protocols, cfg);
  }

  // §8.2 abort-rate comparison: 1024 clients, contended key space.
  std::printf("\n# §8.2 abort rates at 1024 clients (contended key space)\n");
  std::printf("# %-10s %10s %14s %14s\n", "protocol", "ro-ratio",
              "upd-abort(%)", "tput(tps)");
  for (const double ro : {0.9, 0.7}) {
    for (const char* name : {"GMU", "Walter", "Jessy2pc"}) {
      auto cfg = bench::base_config(4, 2, workload::WorkloadSpec::B(ro));
      cfg.cluster.objects_per_site = 2'500;  // 10k objects in total
      cfg.clients = 1024;
      const auto r = harness::run_experiment(protocols::by_name(name), cfg);
      std::printf("  %-10s %10.0f%% %14.2f %14.0f\n", name, ro * 100,
                  r.upd_abort_ratio_pct, r.throughput_tps);
    }
  }
  return 0;
}

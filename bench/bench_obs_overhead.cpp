// Observability-plane overhead: committed transactions per wall-clock
// second with the plane attached vs. detached, in both execution modes.
//
//   * sim  — bench_selfperf's default scenario (Workload A, 4 sites) per
//     protocol, measuring what the always-on counters/rings cost the
//     simulator's hot loop.
//   * live — bench_live_loopback's scenario over real sockets, where
//     "plane on" also includes the snapshot attendant thread (watchdog
//     scans + periodic time-series sampling), i.e. the full production
//     telemetry configuration.
//
// The plane's contract (DESIGN.md §13) is that telemetry-on stays within a
// few percent of telemetry-off; this bench is how that claim is measured.
// Overhead is wall-clock sensitive — compare runs on the same idle host and
// treat single-digit negative overhead as noise (see EXPERIMENTS.md).
//
// Output: a table on stdout and a JSON report (BENCH_obs_overhead.json by
// default) with one record per (mode, protocol): tps with the plane off,
// tps with it on, and overhead_pct = (off - on) / off * 100.
//
// Flags:
//   --short       smaller windows / fewer clients (CI smoke mode)
//   --sim-only    skip the live-socket half (e.g. constrained CI runners)
//   --out FILE    JSON report path (default BENCH_obs_overhead.json)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "live/live_runner.h"
#include "obs/plane.h"

using namespace gdur;

namespace {

struct OverheadResult {
  std::string mode;  // "sim" | "live"
  std::string protocol;
  double tps_off = 0;
  double tps_on = 0;
  double overhead_pct = 0;
  std::uint64_t violations = 0;  // plane-on run must stay clean
  std::uint64_t trips = 0;
};

/// Median of per-pair off/on ratios, as overhead %. Each ratio comes from
/// two runs adjacent in time, so slow host-load drift cancels; the median
/// then discards bursts that land inside a single run.
double median_overhead_pct(std::vector<double> ratios) {
  if (ratios.empty()) return 0;
  std::sort(ratios.begin(), ratios.end());
  const std::size_t n = ratios.size();
  const double mid = n % 2 == 1 ? ratios[n / 2]
                                : (ratios[n / 2 - 1] + ratios[n / 2]) / 2;
  return (mid - 1.0) * 100.0;
}

/// Simulated committed txns per wall second for one (protocol, plane) pair.
double sim_tps(const std::string& protocol, harness::ExperimentConfig cfg,
               obs::ObsPlane* plane) {
  cfg.cluster.plane = plane;
  const auto spec = protocols::by_name(protocol);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = harness::run_experiment(spec, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return wall > 0 ? static_cast<double>(r.committed) / wall : 0;
}

OverheadResult measure_sim(const std::string& protocol,
                           const harness::ExperimentConfig& cfg,
                           int repeats) {
  OverheadResult out;
  out.mode = "sim";
  out.protocol = protocol;
  // Each repeat measures one time-adjacent off/on pair. Each pair gets a
  // FRESH plane — txn ids restart from zero every run, so a reused monitor
  // would compare run N's outcomes against run N-1's and report phantom
  // violations.
  std::vector<double> ratios;
  for (int i = 0; i < repeats; ++i) {
    const double off = sim_tps(protocol, cfg, nullptr);
    obs::ObsPlaneConfig pc;
    pc.sites = cfg.cluster.sites;
    pc.single_writer = true;  // the simulator thread owns every record call
    obs::ObsPlane plane(pc);
    const double on = sim_tps(protocol, cfg, &plane);
    if (on > 0) ratios.push_back(off / on);
    out.tps_off = std::max(out.tps_off, off);
    out.tps_on = std::max(out.tps_on, on);
    out.violations += plane.invariants().violations();
    out.trips += plane.watchdog().trips();
  }
  out.overhead_pct = median_overhead_pct(std::move(ratios));
  return out;
}

OverheadResult measure_live(const std::string& protocol,
                            live::LiveRunConfig cfg, int repeats) {
  OverheadResult out;
  out.mode = "live";
  out.protocol = protocol;
  cfg.protocol = protocol;
  std::vector<double> ratios;
  for (int i = 0; i < repeats; ++i) {
    cfg.plane = nullptr;
    const double off = live::run_live(cfg).throughput_tps;
    // Fresh plane per repeat (see measure_sim); live mode keeps the
    // default multi-writer record path.
    obs::ObsPlane plane(obs::ObsPlaneConfig{cfg.sites});
    cfg.plane = &plane;
    const auto r = live::run_live(cfg);
    if (r.throughput_tps > 0) ratios.push_back(off / r.throughput_tps);
    out.tps_off = std::max(out.tps_off, off);
    out.tps_on = std::max(out.tps_on, r.throughput_tps);
    out.violations += r.invariant_violations;
    out.trips += r.watchdog_trips;
  }
  out.overhead_pct = median_overhead_pct(std::move(ratios));
  return out;
}

void append_json(std::string& json, const OverheadResult& r, bool last) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "  {\"mode\": \"%s\", \"protocol\": \"%s\", "
                "\"tps_off\": %.1f, \"tps_on\": %.1f, "
                "\"overhead_pct\": %.2f, \"violations\": %llu, "
                "\"trips\": %llu}%s\n",
                r.mode.c_str(), r.protocol.c_str(), r.tps_off, r.tps_on,
                r.overhead_pct,
                static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.trips), last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  bool sim_only = false;
  const char* out_path = "BENCH_obs_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--sim-only") == 0) sim_only = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  // bench_selfperf's "default" scenario, exactly.
  auto sim_cfg = bench::base_config(4, /*replication=*/1,
                                    workload::WorkloadSpec::A(0.9));
  sim_cfg.clients = short_mode ? 128 : 256;
  sim_cfg.warmup = seconds(0.3);
  sim_cfg.window = short_mode ? seconds(0.5) : seconds(1.0);

  live::LiveRunConfig live_cfg;
  live_cfg.sites = 3;
  live_cfg.clients = short_mode ? 16 : 32;
  live_cfg.secs = short_mode ? 0.8 : 2.0;
  live_cfg.workload = workload::WorkloadSpec::A(0.8);

  const std::vector<std::string> sim_names{
      "P-Store", "S-DUR", "GMU", "Serrano", "Walter", "Jessy2pc", "RC"};
  // The live half is wall-clock expensive; three protocols span the AC
  // kinds (group comm, 2PC, Paxos commit).
  const std::vector<std::string> live_names{"S-DUR", "Jessy2pc", "RC"};

  std::vector<OverheadResult> results;
  std::printf("# Observability-plane overhead: committed txns per wall "
              "second, plane off vs on\n");
  std::printf("%-5s %-10s %12s %12s %10s %6s %6s\n", "mode", "protocol",
              "tps_off", "tps_on", "overhead%", "viol", "trips");

  bool clean = true;
  auto show = [&](const OverheadResult& r) {
    std::printf("%-5s %-10s %12.1f %12.1f %9.2f%% %6llu %6llu\n",
                r.mode.c_str(), r.protocol.c_str(), r.tps_off, r.tps_on,
                r.overhead_pct, static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.trips));
    // A fault-free bench run must never trip the monitor or the watchdog.
    clean = clean && r.violations == 0 && r.trips == 0;
    results.push_back(r);
  };

  const int sim_repeats = short_mode ? 3 : 5;
  const int live_repeats = short_mode ? 1 : 3;
  for (const auto& name : sim_names)
    show(measure_sim(name, sim_cfg, sim_repeats));
  if (!sim_only)
    for (const auto& name : live_names)
      show(measure_live(name, live_cfg, live_repeats));

  double worst = 0;
  for (const auto& r : results) worst = std::max(worst, r.overhead_pct);
  std::printf("\n# worst overhead: %.2f%% (target: <= 5%% on the sim "
              "default scenario)\n", worst);

  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i)
    append_json(json, results[i], i + 1 == results.size());
  json += "]\n";
  std::ofstream out(out_path, std::ios::binary);
  out << json;
  std::printf("# wrote %zu records to %s\n", results.size(), out_path);
  return clean ? 0 : 1;
}

// Transaction-lifecycle phase breakdown (the §8.3 analysis workflow).
//
// Runs every assembled protocol under Workload A with a trace recorder
// attached and prints, per protocol, where a committed update transaction's
// time goes: execution, xcast/propagation, certification-queue wait,
// certification, vote collection, apply, client response. The same
// measurement underlies the paper's Figure 4 conclusion that GMU's
// bottleneck is certification rather than versioning — here it is read off
// the measured breakdown directly instead of inferred by plug-in ablation.
//
// Flags:
//   --short        one small load point per protocol (CI smoke mode)
//   --trace FILE   also write the last protocol's run as Chrome trace-event
//                  JSON (loadable in Perfetto / chrome://tracing)
//   --timeline     dump the per-transaction text timeline to stdout
#include <cstring>
#include <fstream>

#include "bench_common.h"
#include "obs/trace.h"

using namespace gdur;

int main(int argc, char** argv) {
  bool short_mode = false;
  bool timeline = false;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--timeline") == 0) timeline = true;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
  }

  auto cfg =
      bench::base_config(4, /*replication=*/1, workload::WorkloadSpec::A(0.9));
  if (short_mode) {
    cfg.warmup = seconds(0.3);
    cfg.window = seconds(0.7);
  }
  const std::vector<int> load =
      short_mode ? std::vector<int>{128} : std::vector<int>{256, 1024};

  const std::vector<std::string> protocols{
      "P-Store", "S-DUR", "GMU", "Serrano", "Walter", "Jessy2pc", "RC"};

  harness::print_header(
      "Phase breakdown — Workload A, 4 sites, DP, 90% read-only "
      "(committed update transactions)");
  for (const auto& name : protocols) {
    const auto spec = protocols::by_name(name);
    for (int clients : load) {
      // Span buffering is only needed when an export was requested; phase
      // reports and counters flow regardless.
      obs::TraceConfig tcfg;
      tcfg.spans = trace_path != nullptr || timeline;
      obs::TraceRecorder rec(tcfg);
      cfg.cluster.trace = &rec;
      cfg.clients = clients;
      const auto r = harness::run_experiment(spec, cfg);
      harness::print_result(r);
      harness::print_phase_breakdown(r);
      std::printf("\n");

      const bool last =
          name == protocols.back() && clients == load.back();
      if (last && trace_path != nullptr) {
        std::ofstream out(trace_path, std::ios::binary);
        out << rec.chrome_trace_json();
        std::printf("# wrote %zu trace events to %s\n", rec.events().size(),
                    trace_path);
      }
      if (last && timeline) std::fputs(rec.text_timeline().c_str(), stdout);
    }
  }
  return 0;
}

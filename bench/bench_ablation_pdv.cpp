// Ablation: the dimension of the versioning vector (§4.1).
//
// The paper discusses the trade-off behind Θ's dimension — from a single
// scalar to one entry per object — and cites the Ω(min(m,n)) lower bound
// for disjoint-access-parallel stores. PDV lets us move along this axis
// directly: with more partitions per site, dependence vectors grow (more
// metadata on every message) but snapshots get finer-grained, so fewer
// reads fail to find a compatible version (execution-phase retries/aborts)
// and stale fallback reads become rarer.
//
// The effect lives where snapshots are hard to build: many reads per
// transaction over a small, busy key space. Protocol: Jessy2pc (NMSI over
// PDV), Workload B at 60% read-only on 256 objects.
#include "bench_common.h"

using namespace gdur;

int main() {
  std::printf("# PDV granularity ablation — Jessy2pc, Workload B (60%% "
              "read-only), 4 sites, DP, 256 objects, 128 clients\n");
  std::printf("# %-18s %12s %12s %14s %14s\n", "partitions/site", "tput(tps)",
              "abort(%)", "exec-fails", "meta(B/msg)");
  for (const int pps : {1, 2, 4, 8, 16}) {
    auto cfg = bench::base_config(4, 1, workload::WorkloadSpec::B(0.6));
    cfg.cluster.objects_per_site = 64;  // 256 objects: snapshots are hard
    cfg.cluster.partitions_per_site = pps;
    cfg.clients = 128;
    const auto spec = protocols::jessy2pc();
    const auto r = harness::run_experiment(spec, cfg);
    std::printf("  %-18d %12.0f %12.2f %14lu %14d\n", pps, r.throughput_tps,
                r.abort_ratio_pct,
                static_cast<unsigned long>(r.exec_failures), 32 * 4 * pps);
  }
  std::printf(
      "\n# Finer partitions cut false snapshot incompatibilities (aborted\n"
      "# column ~= execution-phase retries here) at the price of larger\n"
      "# vectors on every message — the dimensionality trade-off of §4.1.\n");
  return 0;
}

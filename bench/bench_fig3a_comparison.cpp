// Figure 3(a) — protocol comparison, Workload A, 4 sites, Disaster Prone.
//
// Reproduces both subplots: termination latency of update transactions as a
// function of throughput, with 90% (top) and 70% (bottom) read-only
// transactions, for the seven protocols of §8.2.
//
// Expected shape (paper): Jessy2pc fastest; Walter close behind (its
// non-genuine background propagation costs it throughput); GMU ≈ Walter at
// 90% read-only; P-Store worst at 90% (queries are not wait-free and go
// through AM-Cast) but catches up at 70%, overtaking Serrano; S-DUR beats
// Serrano throughout; RC bounds everything from above.
#include "bench_common.h"

using namespace gdur;

int main() {
  const std::vector<std::string> protocols = {
      "RC", "Jessy2pc", "Walter", "GMU", "S-DUR", "Serrano", "P-Store"};

  for (const double ro : {0.9, 0.7}) {
    auto cfg = bench::base_config(4, /*replication=*/1,
                                  workload::WorkloadSpec::A(ro));
    char title[128];
    std::snprintf(title, sizeof title,
                  "Figure 3a — Workload A, 4 sites, DP, %.0f%% read-only "
                  "(terminat. latency of update txns vs throughput)",
                  ro * 100);
    bench::run_and_print(title, protocols, cfg);
  }
  return 0;
}

// Table 2 — source lines of code per protocol plug-in.
//
// The paper's headline: each protocol realized in G-DUR takes 200-600 SLOC,
// an order of magnitude less than the monolithic originals (6,000-30,000).
// This binary counts the SLOC of our plug-in files (comments and blank
// lines excluded, like the paper) plus the shared engine, and prints the
// comparison against the originals' sizes quoted in the paper.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

int sloc_of(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "warning: cannot open %s\n", path.c_str());
    return 0;
  }
  int lines = 0;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    // Strip leading whitespace.
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    const std::string body = line.substr(i);
    if (in_block_comment) {
      if (body.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (body.rfind("//", 0) == 0) continue;
    if (body.rfind("/*", 0) == 0) {
      if (body.find("*/") == std::string::npos) in_block_comment = true;
      continue;
    }
    ++lines;
  }
  return lines;
}

int sloc_of_all(const std::vector<std::string>& files) {
  int total = 0;
  for (const auto& f : files) total += sloc_of(std::string(GDUR_SOURCE_DIR) + "/" + f);
  return total;
}

}  // namespace

int main() {
  struct Row {
    const char* protocol;
    std::vector<std::string> files;
    int paper_gdur;     // SLOC of the paper's G-DUR realization (Table 2)
    int paper_original; // SLOC of the monolithic original (0 = N/A)
  };
  const std::vector<Row> rows = {
      {"P-Store", {"src/protocols/p_store.cpp"}, 179, 6000},
      {"S-DUR", {"src/protocols/s_dur.cpp", "src/protocols/common.cpp"}, 397, 0},
      {"GMU", {"src/protocols/gmu.cpp"}, 476, 6000},
      {"Serrano", {"src/protocols/serrano.cpp"}, 351, 0},
      {"Walter", {"src/protocols/walter.cpp", "src/protocols/common.cpp"}, 599,
       30000},
      {"Jessy2pc", {"src/protocols/jessy2pc.cpp"}, 352, 6000},
  };

  std::printf("# Table 2 — source lines of code per protocol\n");
  std::printf("# %-10s %12s %14s %16s\n", "protocol", "this repo",
              "paper(G-DUR)", "paper(original)");
  bool all_small = true;
  for (const auto& r : rows) {
    const int mine = sloc_of_all(r.files);
    all_small = all_small && mine > 0 && mine <= 600;
    if (r.paper_original > 0) {
      std::printf("  %-10s %12d %14d %16d\n", r.protocol, mine, r.paper_gdur,
                  r.paper_original);
    } else {
      std::printf("  %-10s %12d %14d %16s\n", r.protocol, mine, r.paper_gdur,
                  "N/A");
    }
  }

  const int engine = sloc_of_all({
      "src/core/replica.cpp", "src/core/cluster.cpp",
      "src/core/protocol_spec.cpp", "src/core/certifiers.cpp",
  });
  const int comm = sloc_of_all({
      "src/comm/atomic_broadcast.cpp", "src/comm/skeen_multicast.cpp",
      "src/comm/reliable_multicast.cpp", "src/net/transport.cpp",
  });
  std::printf("\n  shared G-DUR engine: %d SLOC, communication layer: %d SLOC\n",
              engine, comm);
  std::printf("\n# Claim check: every protocol plug-in is well under 600 SLOC "
              "(shared engine excluded, as in the paper): %s\n",
              all_small ? "HOLDS" : "VIOLATED");
  return all_small ? 0 : 1;
}

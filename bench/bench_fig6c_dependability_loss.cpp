// Figure 6(c) — the price of dependability under an unreliable network
// (extension of §8.5 with the sim/fault subsystem): goodput of P-Store's
// three commitment realizations as the per-link message-loss rate grows.
//
// Setup: 4 sites, DP (rf = 1), Workload A at a fixed moderate load; every
// directed link drops each delivery attempt with probability p (the
// transport's ack/retransmit layer recovers, at latency and CPU cost), and
// the coordinator resolves in-doubt transactions by timeout.
//
// Expected shape: all three degrade with p — retransmissions stretch the
// critical path of every round trip. 2PC has the fewest message rounds and
// so loses the least in absolute terms; Paxos Commit pays its extra delay
// and Ω(r·n) messages again on every retransmitted round; the FT multicast
// sits in between. Retransmissions and timeout aborts are reported so the
// mechanism behind the slowdown is visible.
#include "bench_common.h"

using namespace gdur;

int main() {
  const std::vector<std::string> variants = {"P-Store-FT", "P-Store+2PC",
                                             "P-Store+Paxos"};
  const double loss_rates[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  std::printf("# Figure 6c — goodput vs message-loss rate, Workload A, 4 "
              "sites, DP, 90%% read-only, 256 clients\n");
  std::printf("# %-14s %8s %12s %12s %12s %12s %12s\n", "protocol", "loss",
              "tput(tps)", "termlat(ms)", "abort(%)", "retransmits",
              "timeout_ab");
  for (const auto& name : variants) {
    for (const double p : loss_rates) {
      auto cfg = bench::base_config(4, /*replication=*/1,
                                    workload::WorkloadSpec::A(0.9));
      cfg.clients = 256;
      if (p > 0.0) {
        cfg.cluster.faults.drop_all(p);
        cfg.cluster.term_timeout = milliseconds(500);
        cfg.cluster.client_timeout = seconds(2);
      }
      const auto r = harness::run_experiment(protocols::by_name(name), cfg);
      std::printf("  %-14s %8.2f %12.0f %12.2f %12.2f %12llu %12llu\n",
                  name.c_str(), p, r.throughput_tps, r.upd_term_latency_ms,
                  r.abort_ratio_pct,
                  static_cast<unsigned long long>(r.msgs_retransmitted),
                  static_cast<unsigned long long>(r.timeout_aborts));
    }
    std::printf("\n");
  }
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_spec.dir/test_protocol_spec.cpp.o"
  "CMakeFiles/test_protocol_spec.dir/test_protocol_spec.cpp.o.d"
  "test_protocol_spec"
  "test_protocol_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_protocol_spec.
# This may be replaced when dependencies are built.

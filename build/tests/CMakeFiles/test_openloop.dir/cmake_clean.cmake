file(REMOVE_RECURSE
  "CMakeFiles/test_openloop.dir/test_openloop.cpp.o"
  "CMakeFiles/test_openloop.dir/test_openloop.cpp.o.d"
  "test_openloop"
  "test_openloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

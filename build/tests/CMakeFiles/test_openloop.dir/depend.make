# Empty dependencies file for test_openloop.
# This may be replaced when dependencies are built.

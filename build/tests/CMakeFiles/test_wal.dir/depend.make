# Empty dependencies file for test_wal.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_wal.dir/test_wal.cpp.o"
  "CMakeFiles/test_wal.dir/test_wal.cpp.o.d"
  "test_wal"
  "test_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_versioning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_versioning.dir/test_versioning.cpp.o"
  "CMakeFiles/test_versioning.dir/test_versioning.cpp.o.d"
  "test_versioning"
  "test_versioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_versioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

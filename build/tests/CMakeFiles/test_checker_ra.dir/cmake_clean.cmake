file(REMOVE_RECURSE
  "CMakeFiles/test_checker_ra.dir/test_checker_ra.cpp.o"
  "CMakeFiles/test_checker_ra.dir/test_checker_ra.cpp.o.d"
  "test_checker_ra"
  "test_checker_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_checker_ra.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgdur.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/history.cpp" "src/CMakeFiles/gdur.dir/checker/history.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/checker/history.cpp.o.d"
  "/root/repo/src/comm/atomic_broadcast.cpp" "src/CMakeFiles/gdur.dir/comm/atomic_broadcast.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/comm/atomic_broadcast.cpp.o.d"
  "/root/repo/src/comm/reliable_multicast.cpp" "src/CMakeFiles/gdur.dir/comm/reliable_multicast.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/comm/reliable_multicast.cpp.o.d"
  "/root/repo/src/comm/skeen_multicast.cpp" "src/CMakeFiles/gdur.dir/comm/skeen_multicast.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/comm/skeen_multicast.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/gdur.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/gdur.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/common/rng.cpp.o.d"
  "/root/repo/src/core/certifiers.cpp" "src/CMakeFiles/gdur.dir/core/certifiers.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/core/certifiers.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/gdur.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/protocol_spec.cpp" "src/CMakeFiles/gdur.dir/core/protocol_spec.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/core/protocol_spec.cpp.o.d"
  "/root/repo/src/core/replica.cpp" "src/CMakeFiles/gdur.dir/core/replica.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/core/replica.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/gdur.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/metrics.cpp" "src/CMakeFiles/gdur.dir/harness/metrics.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/harness/metrics.cpp.o.d"
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/gdur.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/gdur.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/net/topology.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/CMakeFiles/gdur.dir/net/transport.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/net/transport.cpp.o.d"
  "/root/repo/src/protocols/common.cpp" "src/CMakeFiles/gdur.dir/protocols/common.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/common.cpp.o.d"
  "/root/repo/src/protocols/gmu.cpp" "src/CMakeFiles/gdur.dir/protocols/gmu.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/gmu.cpp.o.d"
  "/root/repo/src/protocols/jessy2pc.cpp" "src/CMakeFiles/gdur.dir/protocols/jessy2pc.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/jessy2pc.cpp.o.d"
  "/root/repo/src/protocols/p_store.cpp" "src/CMakeFiles/gdur.dir/protocols/p_store.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/p_store.cpp.o.d"
  "/root/repo/src/protocols/p_store_la.cpp" "src/CMakeFiles/gdur.dir/protocols/p_store_la.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/p_store_la.cpp.o.d"
  "/root/repo/src/protocols/ramp.cpp" "src/CMakeFiles/gdur.dir/protocols/ramp.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/ramp.cpp.o.d"
  "/root/repo/src/protocols/rc.cpp" "src/CMakeFiles/gdur.dir/protocols/rc.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/rc.cpp.o.d"
  "/root/repo/src/protocols/registry.cpp" "src/CMakeFiles/gdur.dir/protocols/registry.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/registry.cpp.o.d"
  "/root/repo/src/protocols/s_dur.cpp" "src/CMakeFiles/gdur.dir/protocols/s_dur.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/s_dur.cpp.o.d"
  "/root/repo/src/protocols/serrano.cpp" "src/CMakeFiles/gdur.dir/protocols/serrano.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/serrano.cpp.o.d"
  "/root/repo/src/protocols/walter.cpp" "src/CMakeFiles/gdur.dir/protocols/walter.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/protocols/walter.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/gdur.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/gdur.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/store/wal.cpp" "src/CMakeFiles/gdur.dir/store/wal.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/store/wal.cpp.o.d"
  "/root/repo/src/versioning/oracle.cpp" "src/CMakeFiles/gdur.dir/versioning/oracle.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/versioning/oracle.cpp.o.d"
  "/root/repo/src/workload/client.cpp" "src/CMakeFiles/gdur.dir/workload/client.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/workload/client.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/gdur.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/gdur.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for gdur.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for protocol_designer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/protocol_designer.dir/protocol_designer.cpp.o"
  "CMakeFiles/protocol_designer.dir/protocol_designer.cpp.o.d"
  "protocol_designer"
  "protocol_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

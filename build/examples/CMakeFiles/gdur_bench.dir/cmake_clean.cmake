file(REMOVE_RECURSE
  "CMakeFiles/gdur_bench.dir/gdur_bench.cpp.o"
  "CMakeFiles/gdur_bench.dir/gdur_bench.cpp.o.d"
  "gdur_bench"
  "gdur_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdur_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

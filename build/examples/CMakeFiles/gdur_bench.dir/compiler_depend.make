# Empty compiler generated dependencies file for gdur_bench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/social_network.dir/social_network.cpp.o"
  "CMakeFiles/social_network.dir/social_network.cpp.o.d"
  "social_network"
  "social_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

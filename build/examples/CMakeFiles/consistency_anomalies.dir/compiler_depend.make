# Empty compiler generated dependencies file for consistency_anomalies.
# This may be replaced when dependencies are built.

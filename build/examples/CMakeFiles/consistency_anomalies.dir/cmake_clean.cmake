file(REMOVE_RECURSE
  "CMakeFiles/consistency_anomalies.dir/consistency_anomalies.cpp.o"
  "CMakeFiles/consistency_anomalies.dir/consistency_anomalies.cpp.o.d"
  "consistency_anomalies"
  "consistency_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

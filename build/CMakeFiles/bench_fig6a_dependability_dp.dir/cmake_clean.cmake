file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_dependability_dp.dir/bench/bench_fig6a_dependability_dp.cpp.o"
  "CMakeFiles/bench_fig6a_dependability_dp.dir/bench/bench_fig6a_dependability_dp.cpp.o.d"
  "bench/bench_fig6a_dependability_dp"
  "bench/bench_fig6a_dependability_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_dependability_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

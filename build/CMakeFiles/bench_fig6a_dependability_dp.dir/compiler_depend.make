# Empty compiler generated dependencies file for bench_fig6a_dependability_dp.
# This may be replaced when dependencies are built.

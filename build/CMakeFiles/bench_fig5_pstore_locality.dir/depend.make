# Empty dependencies file for bench_fig5_pstore_locality.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig6b_dependability_dt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_dependability_dt.dir/bench/bench_fig6b_dependability_dt.cpp.o"
  "CMakeFiles/bench_fig6b_dependability_dt.dir/bench/bench_fig6b_dependability_dt.cpp.o.d"
  "bench/bench_fig6b_dependability_dt"
  "bench/bench_fig6b_dependability_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_dependability_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3b_comparison.
# This may be replaced when dependencies are built.

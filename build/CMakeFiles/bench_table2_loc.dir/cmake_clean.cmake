file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_loc.dir/bench/bench_table2_loc.cpp.o"
  "CMakeFiles/bench_table2_loc.dir/bench/bench_table2_loc.cpp.o.d"
  "bench/bench_table2_loc"
  "bench/bench_table2_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

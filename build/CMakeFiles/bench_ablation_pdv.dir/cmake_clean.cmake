file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pdv.dir/bench/bench_ablation_pdv.cpp.o"
  "CMakeFiles/bench_ablation_pdv.dir/bench/bench_ablation_pdv.cpp.o.d"
  "bench/bench_ablation_pdv"
  "bench/bench_ablation_pdv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pdv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_pdv.
# This may be replaced when dependencies are built.

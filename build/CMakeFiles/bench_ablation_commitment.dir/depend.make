# Empty dependencies file for bench_ablation_commitment.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_commitment.dir/bench/bench_ablation_commitment.cpp.o"
  "CMakeFiles/bench_ablation_commitment.dir/bench/bench_ablation_commitment.cpp.o.d"
  "bench/bench_ablation_commitment"
  "bench/bench_ablation_commitment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_commitment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_comparison.dir/bench/bench_fig3a_comparison.cpp.o"
  "CMakeFiles/bench_fig3a_comparison.dir/bench/bench_fig3a_comparison.cpp.o.d"
  "bench/bench_fig3a_comparison"
  "bench/bench_fig3a_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

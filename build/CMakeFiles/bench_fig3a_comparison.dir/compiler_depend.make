# Empty compiler generated dependencies file for bench_fig3a_comparison.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_msg_complexity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_msg_complexity.dir/bench/bench_msg_complexity.cpp.o"
  "CMakeFiles/bench_msg_complexity.dir/bench/bench_msg_complexity.cpp.o.d"
  "bench/bench_msg_complexity"
  "bench/bench_msg_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msg_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Sharded certification pipeline — equivalence and safety (DESIGN.md §14).
//
//   * Decision identity: with shard lanes OFF, a sharded run (sub-votes,
//     sliced conflict scans) is byte-identical in schedule to the serial
//     run, so every per-transaction commit/abort decision must match the
//     shards_per_site = 1 baseline exactly — across all 7 paper protocols,
//     shards ∈ {1, 2, 4}, ≥5k transactions under the chaos fault matrix.
//   * Checker cleanliness: with shard lanes ON (the default), the lane
//     clocks reshuffle timing, so individual decisions may legitimately
//     differ — but every recorded history must still satisfy the
//     protocol's consistency criterion.
//   * Live runtime: a sharded LiveCluster (real shard certifier threads,
//     sorted shard-mutex acquisition) must produce a checker-clean history
//     with no hung clients. These cases run under TSan in CI
//     (--gtest_filter=*Live*).
//   * StatsSlot single-writer force-off: attaching a single-writer plane to
//     a sharded cluster must silently downgrade every slot to the atomic
//     RMW path (satellite of the same PR).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "checker/history.h"
#include "core/cluster.h"
#include "harness/metrics.h"
#include "live/live_runner.h"
#include "obs/plane.h"
#include "protocols/protocols.h"
#include "sim/fault.h"
#include "workload/client.h"

namespace gdur {
namespace {

const char* kProtocols[] = {"P-Store", "S-DUR",    "GMU", "Serrano",
                            "Walter",  "Jessy2pc", "RC"};

struct RunOutcome {
  /// (coord, seq) → committed, for every transaction a client finished.
  std::map<std::pair<SiteId, std::uint64_t>, bool> decisions;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t txns = 0;
  bool checker_ok = false;
  std::string checker_detail;
};

/// One chaos run of `name` at the given sharding configuration — the
/// VerifyCertStress deployment shape (4 sites, replication 2, tiny keyspace
/// for deep queues, seeded chaos faults). Faults span the first 3 simulated
/// seconds; running past that horizon leaves a settle tail so late installs
/// reach the checker's authority site (the ReconfigChaos pattern — a commit
/// whose install is merely in flight at the cutoff is not a violation).
RunOutcome run_chaos(const char* name, int shards, bool lanes,
                     std::uint64_t chaos_seed,
                     SimDuration horizon = seconds(4),
                     sim::ChaosOptions chaos_opts = {}) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.replication = 2;
  cfg.objects_per_site = 24;  // high contention => deep queues
  cfg.durable = true;
  cfg.shards_per_site = shards;
  cfg.shard_lanes = lanes;
  cfg.term_timeout = milliseconds(500);
  cfg.client_timeout = seconds(2);
  cfg.faults =
      sim::FaultPlan::chaos(cfg.sites, seconds(3), chaos_seed, chaos_opts);
  core::Cluster cluster(cfg, protocols::by_name(name));

  checker::History history;
  history.attach(cluster);
  harness::Metrics metrics;
  RunOutcome out;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
  for (int i = 0; i < 24; ++i) {
    auto c = std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % cfg.sites),
        workload::WorkloadSpec::B(0.2), metrics,
        mix64(83'000 + static_cast<std::uint64_t>(i)));
    c->set_observer([&cluster, &history, &out](const core::TxnRecord& t,
                                               bool committed) {
      history.record_txn(t, committed, cluster.simulator().now());
      out.decisions[{t.id.coord, t.id.seq}] = committed;
    });
    c->start(i * microseconds(373));
    actors.push_back(std::move(c));
  }
  cluster.simulator().run_until(horizon);
  out.committed = metrics.committed();
  out.aborted = metrics.aborted();
  for (const auto& a : actors) out.txns += a->txns_run();
  const auto res = history.check_criterion(live::criterion_of(name));
  out.checker_ok = res.ok;
  out.checker_detail = res.detail;
  return out;
}

TEST(ShardEquivalence, LanesOffDecisionsIdenticalAcrossShardCounts) {
  std::uint64_t total_txns = 0;
  std::uint64_t chaos_seed = 700;
  for (const char* name : kProtocols) {
    ++chaos_seed;
    const RunOutcome base =
        run_chaos(name, /*shards=*/1, /*lanes=*/false, chaos_seed);
    EXPECT_GT(base.committed, 0u) << name;
    EXPECT_TRUE(base.checker_ok) << name << ": " << base.checker_detail;
    total_txns += base.txns;
    for (int shards : {2, 4}) {
      const RunOutcome sh = run_chaos(name, shards, /*lanes=*/false,
                                      chaos_seed);
      EXPECT_TRUE(sh.checker_ok)
          << name << " shards=" << shards << ": " << sh.checker_detail;
      // Byte-identity of the schedule implies identity of every decision,
      // not just the totals.
      EXPECT_EQ(sh.committed, base.committed) << name << " shards=" << shards;
      EXPECT_EQ(sh.aborted, base.aborted) << name << " shards=" << shards;
      EXPECT_EQ(sh.decisions, base.decisions)
          << name << " shards=" << shards
          << ": per-transaction outcomes diverged from the serial run";
      total_txns += sh.txns;
    }
  }
  EXPECT_GE(total_txns, 5'000u)
      << "the stress must exercise at least 5k transactions";
}

TEST(ShardEquivalence, LanesOnHistoriesCheckerCleanUnderContention) {
  // With lane clocks active the schedule differs from the serial run, so
  // only the consistency criterion is asserted — the same claim P-DUR makes
  // for its parallel pipeline (equivalent serializable outcomes, not
  // identical ones). These runs are fault-free, matching the repo's checker
  // guarantee surface (test_properties): the randomized chaos matrix has
  // pre-existing divergence windows (vote loss racing termination timeouts)
  // that trip the checker at the SERIAL baseline too — e.g. S-DUR at chaos
  // seed 802 over 8 simulated seconds — so chaos coverage for sharding
  // comes from the decision-identity test above, which proves under full
  // chaos (crashes included) that the sharded data path changes no
  // decision at all.
  for (const char* name : kProtocols) {
    core::ClusterConfig cfg;
    cfg.sites = 4;
    cfg.replication = 2;
    cfg.objects_per_site = 64;  // 256 objects: heavy contention
    cfg.shards_per_site = 4;
    core::Cluster cluster(cfg, protocols::by_name(name));
    checker::History history;
    history.attach(cluster);
    harness::Metrics metrics;
    std::vector<std::unique_ptr<workload::ClientActor>> actors;
    for (int i = 0; i < 24; ++i) {
      auto c = std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites),
          workload::WorkloadSpec::B(0.6), metrics,
          mix64(57'000 + static_cast<std::uint64_t>(i)));
      c->set_observer([&cluster, &history](const core::TxnRecord& t,
                                           bool committed) {
        history.record_txn(t, committed, cluster.simulator().now());
      });
      c->start(i * microseconds(431));
      actors.push_back(std::move(c));
    }
    cluster.simulator().run_until(seconds(2));
    EXPECT_GT(metrics.committed(), 120u) << name;
    const auto res = history.check_criterion(live::criterion_of(name));
    EXPECT_TRUE(res.ok) << name << " violates " << live::criterion_of(name)
                        << ": " << res.detail;
  }
}

TEST(ShardEquivalence, LanesOnSingleShardFootprintsPipelineInSim) {
  // Sanity of the lane model itself: a certification-bound, fully
  // shardable workload must finish sooner on 4 lanes than on 1 (the
  // committed count over a fixed window rises).
  auto committed_at = [](int shards) {
    core::ClusterConfig cfg;
    cfg.sites = 2;
    cfg.replication = 1;
    cfg.objects_per_site = 4096;
    cfg.cores_per_site = 1;
    cfg.shards_per_site = shards;
    cfg.cost.certify_base = microseconds(400);
    core::Cluster cluster(cfg, protocols::by_name("P-Store"));
    harness::Metrics metrics;
    std::vector<std::unique_ptr<workload::ClientActor>> actors;
    for (int i = 0; i < 32; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites),
          workload::WorkloadSpec::B(0.5), metrics,
          mix64(91'000 + static_cast<std::uint64_t>(i))));
      actors.back()->start(i * microseconds(119));
    }
    cluster.simulator().run_until(seconds(2));
    return metrics.committed();
  };
  const std::uint64_t serial = committed_at(1);
  const std::uint64_t sharded = committed_at(4);
  ASSERT_GT(serial, 0u);
  EXPECT_GT(sharded, serial)
      << "4 certifier lanes should outrun 1 on a certification-bound load";
}

// --- live runtime (TSan target) --------------------------------------------

TEST(ShardEquivalenceLive, ShardedLiveRunIsCheckerClean) {
  live::LiveRunConfig cfg;
  cfg.protocol = "P-Store";
  cfg.sites = 3;
  cfg.clients = 8;
  cfg.secs = 0.5;
  cfg.shards_per_site = 4;
  const auto r = live::run_live(cfg);
  EXPECT_TRUE(r.checker_ok) << r.checker_detail;
  EXPECT_GT(r.metrics.committed(), 0u);
  EXPECT_EQ(r.hung_clients, 0);
}

TEST(ShardEquivalenceLive, ShardedLiveCrossShardProtocolIsCheckerClean) {
  // GMU certifies read+write sets → most transactions touch several shards,
  // exercising the sorted multi-mutex path and the apply exclusion.
  live::LiveRunConfig cfg;
  cfg.protocol = "GMU";
  cfg.sites = 3;
  cfg.clients = 8;
  cfg.secs = 0.5;
  cfg.shards_per_site = 2;
  const auto r = live::run_live(cfg);
  EXPECT_TRUE(r.checker_ok) << r.checker_detail;
  EXPECT_GT(r.metrics.committed(), 0u);
  EXPECT_EQ(r.hung_clients, 0);
}

TEST(ShardEquivalenceLive, CertifyModelRunStaysClean) {
  live::LiveRunConfig cfg;
  cfg.protocol = "P-Store";
  cfg.sites = 2;
  cfg.clients = 8;
  cfg.secs = 0.5;
  cfg.shards_per_site = 2;
  cfg.live_certify_model = true;
  const auto r = live::run_live(cfg);
  EXPECT_TRUE(r.checker_ok) << r.checker_detail;
  EXPECT_GT(r.metrics.committed(), 0u);
  EXPECT_EQ(r.hung_clients, 0);
}

// --- StatsSlot single-writer force-off (satellite) --------------------------

TEST(ShardStats, SingleWriterForcedOffWhenSharded) {
  obs::ObsPlaneConfig pc;
  pc.sites = 2;
  pc.single_writer = true;
  obs::ObsPlane plane(pc);
  for (std::size_t i = 0; i < plane.stats().slots(); ++i)
    ASSERT_TRUE(plane.stats().slot(i).single_writer());

  core::ClusterConfig cfg;
  cfg.sites = 2;
  cfg.shards_per_site = 2;
  cfg.plane = &plane;
  core::Cluster cluster(cfg, protocols::by_name("P-Store"));
  for (std::size_t i = 0; i < plane.stats().slots(); ++i)
    EXPECT_FALSE(plane.stats().slot(i).single_writer())
        << "slot " << i << ": single-writer fast path must be disabled when "
        << "shard lane threads can record concurrently";
}

TEST(ShardStats, SingleWriterKeptForSerialSim) {
  obs::ObsPlaneConfig pc;
  pc.sites = 2;
  pc.single_writer = true;
  obs::ObsPlane plane(pc);
  core::ClusterConfig cfg;
  cfg.sites = 2;
  cfg.plane = &plane;
  core::Cluster cluster(cfg, protocols::by_name("P-Store"));
  for (std::size_t i = 0; i < plane.stats().slots(); ++i)
    EXPECT_TRUE(plane.stats().slot(i).single_writer());
}

}  // namespace
}  // namespace gdur

// Observability plane (src/obs, DESIGN.md §13): lock-free stats, the
// flight recorder (including a byte-for-byte golden dump), the stall
// watchdog, the online invariant monitor — and the two properties the
// plane must hold end to end:
//
//   1. Attaching it never perturbs the simulator (digest equality), and a
//      fault-free run produces zero violations, trips, and dumps.
//   2. Seeded misbehavior (sim::Sabotage double-vote / epoch-regress) is
//      caught *online*, with a flight dump left behind — the mutation
//      tests that prove the monitor is not vacuously green.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/metrics.h"
#include "live/mailbox.h"
#include "obs/plane.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

// ---------------------------------------------------------------------------
// StatsSlot / StatsRegistry.
// ---------------------------------------------------------------------------

TEST(ObsStats, CountersAndHistogramBuckets) {
  obs::StatsSlot s;
  s.record(obs::Counter::kTxnCommitted);
  s.record(obs::Counter::kTxnCommitted, 4);
  EXPECT_EQ(s.value(obs::Counter::kTxnCommitted), 5u);
  EXPECT_EQ(s.value(obs::Counter::kTxnAborted), 0u);

  s.record_value(obs::Hist::kMsgBytes, 0);    // bucket 0
  s.record_value(obs::Hist::kMsgBytes, 1);    // bucket 0
  s.record_value(obs::Hist::kMsgBytes, 2);    // bucket 1
  s.record_value(obs::Hist::kMsgBytes, 3);    // bucket 1
  s.record_value(obs::Hist::kMsgBytes, 1024); // bucket 10
  EXPECT_EQ(s.bucket(obs::Hist::kMsgBytes, 0), 2u);
  EXPECT_EQ(s.bucket(obs::Hist::kMsgBytes, 1), 2u);
  EXPECT_EQ(s.bucket(obs::Hist::kMsgBytes, 10), 1u);
}

TEST(ObsStats, SingleWriterModeCountsIdentically) {
  obs::StatsSlot s;
  s.set_single_writer(true);
  s.record(obs::Counter::kVotesSent, 3);
  s.record(obs::Counter::kVotesSent);
  s.record_value(obs::Hist::kCertifyUs, 7);
  s.set_single_writer(false);  // switching back composes with RMW updates
  s.record(obs::Counter::kVotesSent, 2);
  EXPECT_EQ(s.value(obs::Counter::kVotesSent), 6u);
  EXPECT_EQ(s.bucket(obs::Hist::kCertifyUs, 2), 1u);
}

TEST(ObsStats, SnapshotAggregatesAndExports) {
  obs::StatsRegistry reg(3);
  reg.slot(0).record(obs::Counter::kMsgsSent, 7);
  reg.slot(1).record(obs::Counter::kMsgsSent, 5);
  reg.slot(2).record_value(obs::Hist::kCertifyUs, 100);

  const auto snap = reg.snapshot(microseconds(42));
  EXPECT_EQ(snap.at, microseconds(42));
  EXPECT_EQ(snap.total[static_cast<std::size_t>(obs::Counter::kMsgsSent)],
            12u);
  EXPECT_EQ(snap.per_slot[1][static_cast<std::size_t>(obs::Counter::kMsgsSent)],
            5u);

  const std::string json = obs::StatsRegistry::to_json(snap);
  EXPECT_NE(json.find("\"msgs_sent\": 12"), std::string::npos) << json;
  const std::string prom = obs::StatsRegistry::to_prometheus(snap);
  EXPECT_NE(prom.find("gdur_msgs_sent 12"), std::string::npos) << prom;
  EXPECT_NE(prom.find("slot=\"1\""), std::string::npos) << prom;
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

TEST(ObsFlight, RingRetainsOnlyTheLastCapacityEvents) {
  obs::FlightRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i)
    ring.append("ev", static_cast<SimTime>(i), 0, i);
  EXPECT_EQ(ring.appended(), 20u);

  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 8u);  // the oldest 12 were overwritten
  EXPECT_EQ(events.front().a, 12u);
  EXPECT_EQ(events.back().a, 19u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].seq, events[i].seq);
}

TEST(ObsFlight, MergedDumpIsSortedAcrossRings) {
  obs::FlightRecorder fr(2, 8);
  fr.ring(1).append("late", milliseconds(3), 1);
  fr.ring(0).append("early", milliseconds(1), 0);
  fr.ring(1).append("mid", milliseconds(2), 1);
  const auto all = fr.collect();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(all[0].name, "early");
  EXPECT_STREQ(all[1].name, "mid");
  EXPECT_STREQ(all[2].name, "late");
}

// The text dump is a deterministic, diffable artifact — operators compare
// dumps across runs, so its shape is pinned byte-for-byte.
// Regenerate: GDUR_UPDATE_GOLDEN=1 ./build/tests/test_obs_plane
TEST(ObsFlight, TextDumpMatchesGoldenByteForByte) {
  constexpr const char* kGoldenPath =
      GDUR_SOURCE_DIR "/tests/golden/flight_dump.txt";

  obs::FlightRecorder fr(3, 8);
  fr.ring(0).append("txn_submit", microseconds(10), 0, 7, 1);
  fr.ring(1).append("vote", microseconds(15), 1, 7, 1);
  fr.ring(2).append("vote", microseconds(15), 2, 7, 0);
  fr.ring(0).append("decide", microseconds(40), 0, 7, 1);
  fr.ring(1).append("epoch_activate", milliseconds(600), 1, 1);
  fr.ring(2).append("watchdog_trip", seconds(2), 2, 4, 0);
  const std::string text = fr.dump_text("golden-test");

  if (std::getenv("GDUR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(f.good()) << "cannot write " << kGoldenPath;
    f << text;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }

  std::ifstream f(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden " << kGoldenPath
                        << " (run with GDUR_UPDATE_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), text) << "flight-dump text format drifted";

  // The Chrome-trace variant stays valid-looking JSON with every event.
  const std::string json = fr.dump_chrome_json("golden-test");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_activate\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Invariant monitor (unit level).
// ---------------------------------------------------------------------------

TEST(ObsInvariants, ConsistentObservationsStayQuiet) {
  obs::InvariantMonitor m;
  const TxnId t{0, 1};
  m.note_vote(1, t, true, microseconds(1));
  m.note_vote(1, t, true, microseconds(2));  // re-announcement, same value
  m.note_epoch(0, 0, microseconds(3));
  m.note_epoch(0, 1, microseconds(4));
  m.note_decided(0, t, true, microseconds(5));
  m.note_decided(1, t, true, microseconds(6));
  m.note_wal_decision(0, t, true, microseconds(7));
  EXPECT_EQ(m.violations(), 0u);
}

TEST(ObsInvariants, DoubleVoteIsCaught) {
  obs::InvariantMonitor m;
  const TxnId t{0, 1};
  m.note_vote(2, t, true, microseconds(1));
  m.note_vote(2, t, false, microseconds(2));  // contradiction
  m.note_vote(2, t, true, microseconds(3));   // matches the recorded value
  ASSERT_EQ(m.violations(), 1u);
  const auto ev = m.events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_STREQ(ev[0].invariant, "vote-consistency");
  EXPECT_EQ(ev[0].site, 2u);
}

TEST(ObsInvariants, EpochRegressionIsCaught) {
  obs::InvariantMonitor m;
  m.note_epoch(3, 2, microseconds(1));
  m.note_epoch(3, 2, microseconds(2));  // equal is fine
  m.note_epoch(3, 1, microseconds(3));  // regression
  ASSERT_EQ(m.violations(), 1u);
  EXPECT_STREQ(m.events()[0].invariant, "epoch-monotonic");
}

TEST(ObsInvariants, DivergentOutcomesAcrossSitesAreCaught) {
  obs::InvariantMonitor m;
  const TxnId t{1, 9};
  m.note_decided(0, t, true, microseconds(1));
  m.note_decided(2, t, false, microseconds(2));
  ASSERT_GE(m.violations(), 1u);
  EXPECT_STREQ(m.events()[0].invariant, "decision-consistency");
}

TEST(ObsInvariants, WalAndDecidedCacheMustAgree) {
  obs::InvariantMonitor m;
  const TxnId t{2, 5};
  m.note_wal_decision(1, t, true, microseconds(1));
  m.note_decided(1, t, false, microseconds(2));
  ASSERT_GE(m.violations(), 1u);
  bool saw = false;
  for (const auto& e : m.events())
    if (std::string(e.invariant) == "wal-decision-agreement") saw = true;
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// Stall watchdog (unit level, synthetic gauges).
// ---------------------------------------------------------------------------

TEST(ObsWatchdog, TripsOncePerEpisodeAndRearmsOnProgress) {
  obs::StallWatchdog wd(milliseconds(50));
  std::uint64_t progress = 0, pending = 0;
  wd.add_probe("queue", 1, [&] { return progress; }, [&] { return pending; });

  // Idle (pending == 0): never trips, however long it sits.
  EXPECT_EQ(wd.scan(0), 0);
  EXPECT_EQ(wd.scan(seconds(10)), 0);

  // Work appears but progress freezes.
  pending = 3;
  EXPECT_EQ(wd.scan(seconds(10)), 0);  // first sighting arms the window
  EXPECT_EQ(wd.scan(seconds(10) + milliseconds(10)), 0);  // under threshold
  EXPECT_EQ(wd.scan(seconds(10) + milliseconds(60)), 1);  // trip
  EXPECT_EQ(wd.scan(seconds(10) + milliseconds(120)), 0);  // once per episode
  EXPECT_EQ(wd.trips(), 1u);
  const auto ev = wd.events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].probe, "queue");
  EXPECT_EQ(ev[0].site, 1u);
  EXPECT_EQ(ev[0].pending, 3u);
  EXPECT_EQ(ev[0].stuck_since, seconds(10));

  // Progress resumes, then freezes again: a fresh episode trips again.
  progress = 1;
  EXPECT_EQ(wd.scan(seconds(11)), 0);                     // progress seen
  EXPECT_EQ(wd.scan(seconds(12)), 0);                     // re-armed
  EXPECT_EQ(wd.scan(seconds(12) + milliseconds(60)), 1);  // second trip
  EXPECT_EQ(wd.trips(), 2u);
}

TEST(ObsWatchdog, PlaneWiresTripsToCountersAndFlightDump) {
  obs::ObsPlane plane(obs::ObsPlaneConfig{2, 32, milliseconds(50)});
  std::uint64_t pending = 1;
  plane.watchdog().add_probe("mailbox", 0, [] { return std::uint64_t{0}; },
                             [&] { return pending; });
  plane.watchdog().scan(0);                // baseline
  plane.watchdog().scan(milliseconds(10)); // arms the stall window
  EXPECT_EQ(plane.watchdog().scan(milliseconds(100)), 1);
  EXPECT_EQ(plane.slot(0).value(obs::Counter::kWatchdogTrips), 1u);
  EXPECT_EQ(plane.dumps(), 1u);
  EXPECT_EQ(plane.last_dump_reason(), "watchdog");
  EXPECT_NE(plane.last_dump().find("watchdog_trip"), std::string::npos);
  plane.watchdog().clear_probes();
}

// A real wedged live mailbox: one task blocks the consumer thread while more
// work queues behind it — the probe pair LiveCluster registers must see it.
TEST(ObsWatchdog, DetectsAWedgedLiveMailbox) {
  obs::ObsPlane plane(obs::ObsPlaneConfig{1, 64, milliseconds(50)});
  live::Mailbox mb;
  plane.watchdog().add_probe(
      "mailbox", 0, [&] { return mb.executed(); },
      [&] {
        const std::uint64_t e = mb.executed();
        const std::uint64_t q = mb.posted();
        return q > e ? q - e : 0;
      });

  std::promise<void> unwedge;
  std::promise<void> wedged;
  std::thread consumer([&] { mb.run(); });
  mb.post([&] {
    wedged.set_value();
    unwedge.get_future().wait();
  });
  for (int i = 0; i < 3; ++i) mb.post([] {});
  wedged.get_future().wait();  // the consumer is now inside the stuck task

  plane.watchdog().scan(0);                // baseline
  plane.watchdog().scan(milliseconds(10)); // arms the stall window
  EXPECT_EQ(plane.watchdog().scan(milliseconds(100)), 1);
  EXPECT_GE(plane.dumps(), 1u);
  EXPECT_EQ(plane.last_dump_reason(), "watchdog");
  EXPECT_FALSE(plane.last_dump().empty());

  unwedge.set_value();
  plane.watchdog().clear_probes();
  mb.stop();
  consumer.join();
}

// ---------------------------------------------------------------------------
// End-to-end sim runs: zero perturbation, zero false positives, and the
// seeded-sabotage mutation tests.
// ---------------------------------------------------------------------------

class Fnv1a {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

struct SimRun {
  explicit SimRun(core::ClusterConfig cfg, const std::string& protocol,
                  obs::ObsPlane* plane)
      : cluster((cfg.plane = plane, cfg), protocols::by_name(protocol)) {
    cluster.set_install_observer([this](const core::Cluster::InstallEvent& e) {
      hash.add(e.obj);
      hash.add((static_cast<std::uint64_t>(e.writer.coord) << 44) ^
               e.writer.seq);
      hash.add(static_cast<std::uint64_t>(e.time));
    });
    for (int i = 0; i < 12; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cluster.sites()),
          workload::WorkloadSpec::A(0.8), metrics,
          mix64(31'000 + static_cast<std::uint64_t>(i))));
      actors.back()->set_observer(
          [this](const core::TxnRecord& t, bool committed) {
            hash.add((static_cast<std::uint64_t>(t.id.coord) << 44) ^
                     t.id.seq);
            hash.add(committed ? 1 : 0);
            hash.add(static_cast<std::uint64_t>(cluster.simulator().now()));
          });
      actors.back()->start(i * microseconds(373));
    }
  }

  [[nodiscard]] std::string digest() const {
    char line[128];
    std::snprintf(line, sizeof(line), "committed=%llu hash=%016llx",
                  static_cast<unsigned long long>(metrics.committed()),
                  static_cast<unsigned long long>(hash.value()));
    return line;
  }

  core::Cluster cluster;
  harness::Metrics metrics;
  Fnv1a hash;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
};

core::ClusterConfig small_config() {
  core::ClusterConfig cfg;
  cfg.sites = 3;
  cfg.replication = 1;
  cfg.objects_per_site = 96;
  cfg.partitions_per_site = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(ObsPlaneSim, AttachingThePlaneDoesNotPerturbTheSimulator) {
  SimRun bare(small_config(), "GMU", nullptr);
  bare.cluster.simulator().run_until(milliseconds(500));

  obs::ObsPlane plane(obs::ObsPlaneConfig{3});
  SimRun observed(small_config(), "GMU", &plane);
  observed.cluster.simulator().run_until(milliseconds(500));

  EXPECT_EQ(bare.digest(), observed.digest());
  // And the plane genuinely observed the run it rode along on.
  const auto snap = plane.stats().snapshot(0);
  EXPECT_GT(snap.total[static_cast<std::size_t>(obs::Counter::kTxnCommitted)],
            0u);
  EXPECT_GT(snap.total[static_cast<std::size_t>(obs::Counter::kMsgsSent)],
            0u);
  EXPECT_GT(plane.ring(0).appended(), 0u);
}

TEST(ObsPlaneSim, FaultFreeRunHasNoViolationsTripsOrDumps) {
  obs::ObsPlane plane(obs::ObsPlaneConfig{3});
  SimRun run(small_config(), "S-DUR", &plane);
  run.cluster.simulator().run_until(milliseconds(500));
  EXPECT_GT(run.metrics.committed(), 50u);
  EXPECT_EQ(plane.invariants().violations(), 0u);
  EXPECT_EQ(plane.watchdog().trips(), 0u);
  EXPECT_EQ(plane.dumps(), 0u);
}

// Mutation test: a seeded vote equivocation (the wire vote contradicts the
// announced one) must trip vote-consistency — proof the monitor actually
// sees the protocol's votes and is not vacuously green.
TEST(ObsPlaneSim, SeededDoubleVoteTripsTheMonitor) {
  auto cfg = small_config();
  cfg.faults.double_vote(1, milliseconds(100));
  obs::ObsPlane plane(obs::ObsPlaneConfig{3});
  SimRun run(cfg, "GMU", &plane);
  run.cluster.simulator().run_until(seconds(1));

  ASSERT_GE(plane.invariants().violations(), 1u);
  bool saw = false;
  for (const auto& e : plane.invariants().events())
    if (std::string(e.invariant) == "vote-consistency" && e.site == 1)
      saw = true;
  EXPECT_TRUE(saw) << "expected a vote-consistency violation at site 1";
  EXPECT_GE(plane.dumps(), 1u);
  EXPECT_EQ(plane.last_dump_reason(), "invariant");
  EXPECT_NE(plane.last_dump().find("invariant_violation"), std::string::npos);
}

// Mutation test: a seeded epoch misreport after a real reconfiguration must
// trip epoch-monotonicity.
TEST(ObsPlaneSim, SeededEpochRegressionTripsTheMonitor) {
  core::ClusterConfig cfg;
  cfg.sites = 5;
  cfg.replication = 2;
  cfg.objects_per_site = 64;
  cfg.durable = true;
  cfg.term_timeout = milliseconds(500);
  cfg.client_timeout = seconds(2);
  cfg.reconfig.start_with({0, 1, 2, 3}).join(4, milliseconds(600));
  cfg.faults.epoch_regress(2, milliseconds(900));

  obs::ObsPlane plane(obs::ObsPlaneConfig{5});
  SimRun run(cfg, "S-DUR", &plane);
  run.cluster.simulator().run_until(seconds(3));

  EXPECT_EQ(run.cluster.membership().latest_epoch(), 1u);
  ASSERT_GE(plane.invariants().violations(), 1u);
  bool saw = false;
  for (const auto& e : plane.invariants().events())
    if (std::string(e.invariant) == "epoch-monotonic" && e.site == 2)
      saw = true;
  EXPECT_TRUE(saw) << "expected an epoch-monotonic violation at site 2";
  EXPECT_GE(plane.dumps(), 1u);
}

// ---------------------------------------------------------------------------
// Plane snapshot exports (the shapes CI validates against the schema).
// ---------------------------------------------------------------------------

TEST(ObsPlaneSim, SnapshotJsonAndPrometheusCarryPlaneSections) {
  obs::ObsPlane plane(obs::ObsPlaneConfig{3});
  SimRun run(small_config(), "RC", &plane);
  run.cluster.simulator().run_until(milliseconds(300));

  const std::string json = plane.snapshot_json(milliseconds(300));
  for (const char* key :
       {"\"watchdog\"", "\"invariants\"", "\"flight\"", "\"counters\"",
        "\"violations\": 0", "\"trips\": 0"})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;

  const std::string prom = plane.snapshot_prometheus(milliseconds(300));
  EXPECT_NE(prom.find("gdur_watchdog_trips_total 0"), std::string::npos);
  EXPECT_NE(prom.find("gdur_invariant_violations_total 0"), std::string::npos);
}

}  // namespace
}  // namespace gdur

// Property-based tests: run each protocol on real (contended) workloads and
// verify the consistency criterion it claims, using the history checker.
//
// The key space is deliberately tiny (hundreds of objects) so that
// conflicts are frequent and the certification logic is genuinely
// exercised; a violation here is a protocol bug, not noise.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "checker/history.h"
#include "harness/metrics.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

const char* criterion_of(const std::string& protocol) {
  if (protocol == "P-Store" || protocol == "S-DUR" ||
      protocol == "P-Store+2PC" || protocol == "P-Store-FT" ||
      protocol == "P-Store-LA") {
    return "SER";
  }
  if (protocol == "GMU") return "US";
  if (protocol == "Serrano") return "SI";
  if (protocol == "Walter") return "PSI";
  if (protocol == "Jessy2pc") return "NMSI";
  if (protocol == "RAMP") return "RA";
  return "RC";  // RC, GMU*, GMU** (the ablations give up snapshot guarantees)
}

struct PropertyRun {
  checker::History history;
  harness::Metrics metrics;
};

std::unique_ptr<PropertyRun> run_history(
    const core::ProtocolSpec& spec, const workload::WorkloadSpec& wl,
    std::uint64_t seed, int replication = 1, int clients = 24,
    SimDuration window = seconds(2)) {
  core::ClusterConfig ccfg;
  ccfg.sites = 4;
  ccfg.replication = replication;
  ccfg.objects_per_site = 64;  // 256 objects: heavy contention
  ccfg.seed = seed;
  core::Cluster cluster(ccfg, spec);

  auto run = std::make_unique<PropertyRun>();
  run->history.attach(cluster);

  std::vector<std::unique_ptr<workload::ClientActor>> actors;
  for (int i = 0; i < clients; ++i) {
    auto c = std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % 4), wl, run->metrics,
        mix64(seed * 977 + static_cast<std::uint64_t>(i)));
    c->set_observer([&cluster, h = &run->history](const core::TxnRecord& t,
                                                  bool committed) {
      h->record_txn(t, committed, cluster.simulator().now());
    });
    c->start(static_cast<SimTime>(i) * microseconds(431));
    actors.push_back(std::move(c));
  }
  cluster.simulator().run_until(window);
  return run;
}

using Param = std::tuple<const char*, char /*workload*/, int /*seed*/>;

class ProtocolProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ProtocolProperty, UpholdsItsConsistencyCriterion) {
  const auto& [name, wl_name, seed] = GetParam();
  workload::WorkloadSpec wl = wl_name == 'A'   ? workload::WorkloadSpec::A(0.8)
                              : wl_name == 'B' ? workload::WorkloadSpec::B(0.6)
                                               : workload::WorkloadSpec::C(0.8);
  const auto spec = protocols::by_name(name);
  const auto run = run_history(spec, wl, static_cast<std::uint64_t>(seed));

  // Liveness: the protocol makes progress under contention. (The bar is
  // deliberately modest: SER-family protocols abort heavily on a 256-object
  // key space, which is exactly the behavior §8.2 reports.)
  EXPECT_GT(run->history.committed_count(), 120u) << name;

  // Safety: read committed always holds...
  const auto rc = run->history.check_read_committed();
  EXPECT_TRUE(rc.ok) << name << ": " << rc.detail;
  // ... plus the protocol's own criterion.
  const auto res = run->history.check_criterion(criterion_of(name));
  EXPECT_TRUE(res.ok) << name << " violates " << criterion_of(name) << ": "
                      << res.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Criteria, ProtocolProperty,
    ::testing::Combine(
        ::testing::Values("P-Store", "S-DUR", "GMU", "Serrano", "Walter",
                          "Jessy2pc", "RC", "P-Store+2PC", "P-Store-LA",
                          "P-Store+Paxos", "P-Store-FT", "RAMP"),
        ::testing::Values('A', 'B', 'C'), ::testing::Values(1, 2)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      for (auto& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

class DtProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DtProperty, CriterionHoldsUnderReplication) {
  const auto spec = protocols::by_name(GetParam());
  const auto run =
      run_history(spec, workload::WorkloadSpec::A(0.8), 3, /*replication=*/2);
  EXPECT_GT(run->history.committed_count(), 200u);
  const auto res = run->history.check_criterion(criterion_of(GetParam()));
  EXPECT_TRUE(res.ok) << GetParam() << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Criteria, DtProperty,
                         ::testing::Values("P-Store", "GMU", "Walter",
                                           "Jessy2pc", "S-DUR", "Serrano"));

TEST(ProtocolBehavior, SerFamilyAbortsMoreThanWwFamilyUnderContention) {
  // GMU certifies read sets; Walter/Jessy only write sets. Under a
  // contended read-write workload the abort rates must separate (§8.2).
  const auto wl = workload::WorkloadSpec::B(0.5);
  const auto gmu = run_history(protocols::gmu(), wl, 7);
  const auto walter = run_history(protocols::walter(), wl, 7);
  EXPECT_GT(gmu->metrics.upd_abort_ratio_pct(),
            walter->metrics.upd_abort_ratio_pct());
}

TEST(ProtocolBehavior, RcAbortsNothing) {
  const auto rc = run_history(protocols::rc(), workload::WorkloadSpec::C(0.5),
                              11);
  EXPECT_EQ(rc->metrics.aborted_upd, 0u);
  EXPECT_EQ(rc->metrics.aborted_ro, 0u);
}

TEST(ProtocolBehavior, ZipfianContentionRaisesAborts) {
  const auto uni =
      run_history(protocols::p_store(), workload::WorkloadSpec::A(0.5), 13);
  const auto zipf =
      run_history(protocols::p_store(), workload::WorkloadSpec::C(0.5), 13);
  EXPECT_GE(zipf->metrics.abort_ratio_pct(), uni->metrics.abort_ratio_pct());
}

TEST(ProtocolBehavior, HistoriesAreDeterministic) {
  const auto a = run_history(protocols::jessy2pc(),
                             workload::WorkloadSpec::A(0.8), 17);
  const auto b = run_history(protocols::jessy2pc(),
                             workload::WorkloadSpec::A(0.8), 17);
  EXPECT_EQ(a->history.committed_count(), b->history.committed_count());
  EXPECT_EQ(a->metrics.aborted(), b->metrics.aborted());
}

}  // namespace
}  // namespace gdur

// Membership and online reconfiguration (core/membership, DESIGN.md §12):
// view/log semantics, the epoch protocol on a fault-free cluster (join with
// state transfer, retire with drain), epoch tagging of transactions, and
// the service fencing of non-member sites.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "checker/history.h"
#include "core/cluster.h"
#include "core/membership.h"
#include "obs/plane.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

// ---------------------------------------------------------------------------
// MembershipView / MembershipLog semantics.
// ---------------------------------------------------------------------------

TEST(MembershipView, JoinRetireAdvanceEpochAndKeepMembersSorted) {
  core::MembershipView v0;
  v0.members = {0, 1, 3};
  const auto v1 = v0.with_joined(2);
  EXPECT_EQ(v1.epoch, 1u);
  EXPECT_EQ(v1.members, (std::vector<SiteId>{0, 1, 2, 3}));
  const auto v2 = v1.with_retired(0);
  EXPECT_EQ(v2.epoch, 2u);
  EXPECT_EQ(v2.members, (std::vector<SiteId>{1, 2, 3}));
  EXPECT_TRUE(v1.contains(2));
  EXPECT_FALSE(v2.contains(0));
  EXPECT_EQ(v2.majority(), 2);
}

TEST(MembershipView, FilterDropsNonMembersPreservingOrder) {
  core::MembershipView v;
  v.members = {1, 3};
  EXPECT_EQ(v.filter({3, 0, 1, 2}), (std::vector<SiteId>{3, 1}));
}

TEST(MembershipLog, DefaultsToFullUniverseAndClampsLookups) {
  const core::MembershipLog log(4, {});
  EXPECT_EQ(log.latest_epoch(), 0u);
  EXPECT_EQ(log.view(0).members, (std::vector<SiteId>{0, 1, 2, 3}));
  // An epoch from a corrupted or future message clamps to the latest view.
  EXPECT_EQ(log.view(99).members, log.latest().members);
}

TEST(MembershipLog, AppendExtendsByOneAndIsIdempotent) {
  core::MembershipLog log(4, {0, 1, 2});
  const auto v1 = log.latest().with_joined(3);
  log.append(v1);
  EXPECT_EQ(log.latest_epoch(), 1u);
  log.append(v1);  // re-announced commit
  EXPECT_EQ(log.latest_epoch(), 1u);
  EXPECT_TRUE(log.has(1));
  EXPECT_FALSE(log.has(2));
}

// ---------------------------------------------------------------------------
// Fault-free reconfiguration runs: the whole protocol end to end.
// ---------------------------------------------------------------------------

struct ReconfigRig {
  ReconfigRig(const core::ProtocolSpec& spec, core::ClusterConfig cfg,
              int clients, SimDuration window)
      : cluster(cfg, spec) {
    history.attach(cluster);
    for (int i = 0; i < clients; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites),
          workload::WorkloadSpec::A(0.7), metrics,
          mix64(55'000 + static_cast<std::uint64_t>(i))));
      actors.back()->set_observer(
          [this](const core::TxnRecord& t, bool committed) {
            history.record_txn(t, committed, cluster.simulator().now());
          });
      actors.back()->start(i * microseconds(373));
    }
    cluster.simulator().run_until(window);
  }

  core::Cluster cluster;
  checker::History history;
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
};

core::ClusterConfig reconfig_config() {
  core::ClusterConfig cfg;
  cfg.sites = 5;
  cfg.replication = 2;
  cfg.objects_per_site = 64;
  cfg.durable = true;
  cfg.term_timeout = milliseconds(500);
  cfg.client_timeout = seconds(2);
  return cfg;
}

TEST(Reconfig, JoinTransfersStateAndActivatesEverywhere) {
  auto cfg = reconfig_config();
  cfg.reconfig.start_with({0, 1, 2, 3}).join(4, milliseconds(600));
  ReconfigRig rig(protocols::by_name("S-DUR"), cfg, 12, seconds(3));

  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 1u);
  EXPECT_TRUE(rig.cluster.membership().latest().contains(4));
  for (SiteId s = 0; s < 5; ++s)
    EXPECT_EQ(rig.cluster.replica(s).epoch(), 1u) << "site " << s;
  // The joiner adopted real state: the snapshot populated its store.
  EXPECT_GT(rig.cluster.replica(4).db().populated(), 0u);
  // Snapshot donors marked and compacted their logs.
  std::uint64_t compactions = 0;
  for (SiteId s = 0; s < 5; ++s)
    if (auto* w = rig.cluster.wal(s)) compactions += w->compactions();
  EXPECT_GT(compactions, 0u);
  EXPECT_GT(rig.metrics.committed(), 100u);
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Reconfig, RetireDrainsAndExcludesTheSubject) {
  auto cfg = reconfig_config();
  cfg.reconfig.retire(3, milliseconds(600));  // full universe start
  ReconfigRig rig(protocols::by_name("Walter"), cfg, 12, seconds(3));

  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 1u);
  EXPECT_FALSE(rig.cluster.membership().latest().contains(3));
  // The retiree activated the view that excludes it (it is fenced now).
  EXPECT_EQ(rig.cluster.replica(3).epoch(), 1u);
  EXPECT_FALSE(rig.cluster.replica(3).draining());
  EXPECT_GT(rig.metrics.committed(), 100u);
  const auto r = rig.history.check_criterion("PSI");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Reconfig, CommittedTransactionsCarryTheirEpoch) {
  auto cfg = reconfig_config();
  cfg.reconfig.start_with({0, 1, 2, 3}).join(4, milliseconds(600));
  ReconfigRig rig(protocols::by_name("RC"), cfg, 12, seconds(3));

  bool saw_epoch0 = false, saw_epoch1 = false;
  for (const auto& out : rig.history.txns()) {
    if (!out.committed) continue;
    if (out.txn.epoch == 0) saw_epoch0 = true;
    if (out.txn.epoch == 1) saw_epoch1 = true;
    EXPECT_LE(out.txn.epoch, 1u);
  }
  EXPECT_TRUE(saw_epoch0) << "pre-join commits tagged with epoch 0";
  EXPECT_TRUE(saw_epoch1) << "post-join commits tagged with epoch 1";
}

TEST(Reconfig, NonMemberSitesAreFencedFromService) {
  auto cfg = reconfig_config();
  cfg.reconfig.start_with({0, 1, 2, 3});  // site 4 never joins
  core::Cluster cluster(cfg, protocols::by_name("RC"));

  bool read_ok = true, commit_ok = true;
  cluster.begin(4, [&](core::MutTxnPtr t) {
    cluster.read(4, t, 1, [&, t](bool ok) {
      read_ok = ok;
      cluster.write(4, t, 1, [&, t] {
        cluster.commit(4, t, [&](bool ok2) { commit_ok = ok2; });
      });
    });
  });
  cluster.simulator().run_until(seconds(5));
  EXPECT_FALSE(read_ok) << "a non-member must refuse reads";
  EXPECT_FALSE(commit_ok) << "a non-member must refuse commits";
}

TEST(Reconfig, AbortMessageClearsAPreparedRetirement) {
  auto cfg = reconfig_config();
  cfg.reconfig.start_with({0, 1, 2, 3, 4});  // enabled, no scheduled actions
  core::Cluster cluster(cfg, protocols::by_name("RC"));

  auto view = std::make_shared<const core::MembershipView>(
      cluster.membership().latest().with_retired(3));
  core::ReconfigMsg prep;
  prep.kind = core::ReconfigMsg::Kind::kPrepare;
  prep.epoch = 1;
  prep.from = 0;
  prep.view = view;
  prep.change = core::ReconfigKind::kRetire;
  prep.subject = 3;
  cluster.replica(3).on_reconfig(prep);
  EXPECT_TRUE(cluster.replica(3).draining());

  core::ReconfigMsg abort;
  abort.kind = core::ReconfigMsg::Kind::kAbort;
  abort.epoch = 1;
  abort.from = 0;
  cluster.replica(3).on_reconfig(abort);
  EXPECT_FALSE(cluster.replica(3).draining());
  EXPECT_EQ(cluster.replica(3).epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Certification-leader rotation. PR 6 pinned cert_leader to the longest-
// tenured replica of a partition, concentrating all certification authority
// (and load) on one site per partition for the lifetime of the deployment.
// The leader now rotates deterministically by (epoch, partition) over the
// established members — still a pure function of the shared membership log,
// so every site resolves the same leader for a given (partition, epoch).
// ---------------------------------------------------------------------------

TEST(Reconfig, CertLeaderRotatesByEpochAndPartitionAndSkipsFreshJoiners) {
  auto cfg = reconfig_config();
  // Two epoch changes: site 4 joins (epoch 1), then site 0 retires
  // (epoch 2) — the candidate sets shift under the rotation.
  cfg.reconfig.start_with({0, 1, 2, 3})
      .join(4, milliseconds(600))
      .retire(0, milliseconds(1400));
  ReconfigRig rig(protocols::by_name("S-DUR"), cfg, 12, seconds(3));
  auto& cl = rig.cluster;
  ASSERT_EQ(cl.membership().latest_epoch(), 2u);
  const auto& part = cl.partitioner();

  for (EpochId e = 0; e <= 2; ++e) {
    for (PartitionId p = 0; p < part.partitions(); ++p) {
      const SiteId leader = cl.cert_leader(p, e);
      // Pure function of the shared log: stable across repeated resolution.
      EXPECT_EQ(leader, cl.cert_leader(p, e));
      if (leader == kNoSite) continue;
      // The leader replicates the partition and belongs to the view.
      const auto sites = part.sites_of(p);
      EXPECT_NE(std::find(sites.begin(), sites.end(), leader), sites.end())
          << "partition " << p << " epoch " << e;
      EXPECT_TRUE(cl.view(e).contains(leader))
          << "partition " << p << " epoch " << e;
      // Established members only: the site that joined *at* epoch 1 has
      // not witnessed the ordered certifications preceding its join, so it
      // must not lead any partition in that epoch.
      if (e == 1) {
        EXPECT_NE(leader, 4) << "partition " << p;
      }
    }
  }

  // The role genuinely rotates. Across epochs: any partition whose
  // replica set is untouched by the join and the retirement keeps the same
  // candidate list, so consecutive epochs must elect different leaders
  // whenever there are >= 2 candidates.
  bool saw_epoch_rotation = false;
  for (PartitionId p = 0; p < part.partitions(); ++p) {
    const auto sites = part.sites_of(p);
    const bool touched =
        std::find(sites.begin(), sites.end(), 0) != sites.end() ||
        std::find(sites.begin(), sites.end(), 4) != sites.end();
    if (touched || sites.size() < 2) continue;
    const SiteId l0 = cl.cert_leader(p, 0);
    const SiteId l1 = cl.cert_leader(p, 1);
    EXPECT_NE(l0, l1) << "partition " << p
                      << ": stable candidates, consecutive epochs, same "
                         "leader — the rotation is pinned again";
    saw_epoch_rotation = true;
  }
  EXPECT_TRUE(saw_epoch_rotation)
      << "topology left no partition with a stable >=2 candidate set; the "
         "rotation assertion never ran";
  // And across partitions within one epoch the authority is spread, not
  // concentrated on one site.
  std::set<SiteId> leaders_at_latest;
  for (PartitionId p = 0; p < part.partitions(); ++p) {
    const SiteId l = cl.cert_leader(p, 2);
    if (l != kNoSite) leaders_at_latest.insert(l);
  }
  EXPECT_GT(leaders_at_latest.size(), 1u)
      << "one site leads every partition";
}

TEST(Reconfig, VotesStayConsistentAcrossLeaderRotation) {
  // End to end through both epoch changes: with the leader moving under
  // the protocol, every site must still resolve the same authoritative
  // voter per (partition, epoch) — the online invariant monitor's
  // vote-consistency and decision-consistency checks ride the whole run,
  // and the offline checker proves the history afterwards.
  obs::ObsPlane plane(obs::ObsPlaneConfig{5});
  auto cfg = reconfig_config();
  cfg.plane = &plane;
  cfg.reconfig.start_with({0, 1, 2, 3})
      .join(4, milliseconds(600))
      .retire(0, milliseconds(1400));
  ReconfigRig rig(protocols::by_name("S-DUR"), cfg, 12, seconds(3));

  ASSERT_EQ(rig.cluster.membership().latest_epoch(), 2u);
  EXPECT_GT(rig.metrics.committed(), 100u);
  EXPECT_EQ(plane.invariants().violations(), 0u)
      << "invariant monitor tripped across the rotation";
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Reconfig, FixedMembershipRunsAreUntouchedByTheLayer) {
  // Empty plan: reconfig disabled, epoch guards inert, views never consulted.
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 64;
  ASSERT_TRUE(cfg.reconfig.empty());
  ReconfigRig rig(protocols::by_name("P-Store"), cfg, 8, seconds(2));
  EXPECT_FALSE(rig.cluster.reconfig_enabled());
  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 0u);
  for (SiteId s = 0; s < 4; ++s)
    EXPECT_EQ(rig.cluster.replica(s).epoch(), 0u);
  EXPECT_GT(rig.metrics.committed(), 100u);
}

}  // namespace
}  // namespace gdur

// Availability tests (§5.3): a site *pause* — a benign outage (process
// freeze, VM migration) during which the site does no work but loses
// nothing; queued messages are processed when it resumes. Crashes with
// state loss are a different model — see sim/fault and
// tests/test_fault_injection.cpp.
//
// The dependability trade-off the paper quantifies:
//   * 2PC needs every participant — one unavailable replica blocks
//     commitment until it resumes;
//   * group-communication commitment needs only a voting quorum — with
//     replication (DT), one unavailable replica of an object is masked by
//     the other;
//   * Paxos Commit needs only a majority of acceptors — an unavailable
//     non-participant acceptor is masked.
#include <gtest/gtest.h>

#include <optional>

#include "core/cluster.h"
#include "net/topology.h"
#include "net/transport.h"
#include "protocols/protocols.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace gdur::core {
namespace {

ClusterConfig config(int sites, int rf) {
  ClusterConfig cfg;
  cfg.sites = sites;
  cfg.replication = rf;
  cfg.objects_per_site = 100;
  return cfg;
}

struct Outcome {
  bool committed = false;
  SimTime at = 0;
};

/// Runs one update transaction writing `key` from `coord` at time `start`.
std::shared_ptr<std::optional<Outcome>> launch_write(Cluster& cl, SiteId coord,
                                                     ObjectId key,
                                                     SimTime start) {
  auto out = std::make_shared<std::optional<Outcome>>();
  cl.simulator().at(start, [&cl, coord, key, out] {
    cl.begin(coord, [&cl, coord, key, out](MutTxnPtr t) {
      cl.write(coord, t, key, [&cl, coord, t, out] {
        cl.commit(coord, t, [&cl, out](bool ok) {
          *out = Outcome{ok, cl.simulator().now()};
        });
      });
    });
  });
  return out;
}

TEST(Failures, TwoPcBlocksUntilParticipantResumes) {
  Cluster cl(config(4, 1), protocols::walter());
  // Object 1 lives at site 1 only; site 1 is paused until t = 500ms.
  cl.transport().pause_site(1, milliseconds(500));
  const auto out = launch_write(cl, 0, 1, milliseconds(10));
  cl.simulator().run();
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->committed);
  EXPECT_GT((*out)->at, milliseconds(500)) << "2PC must block on the outage";
}

TEST(Failures, GcQuorumMasksOnePausedReplicaUnderDt) {
  // P-Store, DT: object 1 is replicated at sites 1 and 2. Site 2 is
  // paused; the voting quorum only needs one replica per object, so the
  // transaction commits long before the pause ends.
  Cluster cl(config(4, 2), protocols::p_store());
  cl.transport().pause_site(2, seconds(5));
  const auto out = launch_write(cl, 0, 1, milliseconds(10));
  cl.simulator().run_until(seconds(2));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->committed);
  EXPECT_LT((*out)->at, milliseconds(500))
      << "GC commitment must mask a single replica failure";
}

TEST(Failures, TwoPcDoesNotMaskPausedReplicaEvenUnderDt) {
  Cluster cl(config(4, 2), protocols::p_store_2pc());
  cl.transport().pause_site(2, milliseconds(800));
  const auto out = launch_write(cl, 0, 1, milliseconds(10));
  cl.simulator().run();
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->committed);
  EXPECT_GT((*out)->at, milliseconds(800))
      << "2PC waits for every participant, replicated or not";
}

TEST(Failures, PaxosCommitMasksMinorityAcceptorPause) {
  // Site 3 is neither coordinator nor replica of object 1, but it is one
  // of the four acceptors. Its unavailability must not delay commitment.
  Cluster cl(config(4, 1), protocols::p_store_paxos());
  cl.transport().pause_site(3, seconds(5));
  const auto out = launch_write(cl, 0, 1, milliseconds(10));
  cl.simulator().run_until(seconds(2));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->committed);
  EXPECT_LT((*out)->at, milliseconds(500));
}

TEST(Failures, PausedSiteResumesAndServesConsistentReads) {
  Cluster cl(config(4, 2), protocols::walter());
  cl.transport().pause_site(2, milliseconds(400));
  // Commit a write to object 1 (replicas 1 and 2) during the pause: the
  // messages buffer and are processed when the site resumes — nothing is
  // lost (contrast with the crash tests in test_fault_injection.cpp).
  const auto w = launch_write(cl, 0, 1, milliseconds(10));
  // After the pause, a reader served by site 2 must observe the write.
  auto saw_writer = std::make_shared<std::optional<bool>>();
  cl.simulator().at(seconds(1), [&cl, saw_writer] {
    cl.begin(2, [&cl, saw_writer](MutTxnPtr t) {
      cl.read(2, t, 1, [t, saw_writer](bool ok) {
        ASSERT_TRUE(ok);
        *saw_writer = t->reads.at(0).writer.valid();
      });
    });
  });
  cl.simulator().run();
  ASSERT_TRUE(w->has_value());
  EXPECT_TRUE((*w)->committed);
  ASSERT_TRUE(saw_writer->has_value());
  EXPECT_TRUE(**saw_writer);
}

TEST(Failures, NonParticipantPauseIsInvisibleToTwoPc) {
  Cluster cl(config(4, 1), protocols::jessy2pc());
  cl.transport().pause_site(3, seconds(5));
  // Coordinator 0 writes object 1 (site 1): site 3 plays no role.
  const auto out = launch_write(cl, 0, 1, milliseconds(10));
  cl.simulator().run_until(seconds(2));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->committed);
  EXPECT_LT((*out)->at, milliseconds(200));
}

// --- transport retransmit: backoff cap and seeded jitter --------------------

TEST(Retransmit, BackoffIsCappedUnderALongBlackout) {
  // A link dark for 2 s with max_rto = 40 ms: if the backoff kept doubling
  // past the cap, the sender would make only ~log2 attempts and rediscover
  // the healed link late; capped, it keeps probing roughly every 40 ms and
  // delivers within about one RTO of the heal.
  sim::Simulator sim;
  net::Transport net(sim, net::Topology::uniform(2, milliseconds(1)));
  sim::FaultPlan plan;
  plan.blackout(0, 1, 0, seconds(2));
  plan.retransmit.initial_rto = milliseconds(10);
  plan.retransmit.max_rto = milliseconds(40);
  plan.retransmit.give_up = seconds(5);
  sim::FaultInjector fi(plan, 7);
  net.set_fault_injector(&fi);
  SimTime at = sim::kNever;
  sim.at(0, [&] { net.send(0, 1, 64, [&] { at = sim.now(); }); });
  sim.run();
  ASSERT_NE(at, sim::kNever);
  EXPECT_GT(at, seconds(2));
  EXPECT_LT(at, seconds(2) + milliseconds(60))
      << "a capped RTO probes the healed link within ~max_rto (+jitter)";
  EXPECT_GE(net.fault_stats().retransmissions, 40u)
      << "with the cap the sender probes ~every 40 ms, not exponentially";
}

TEST(Retransmit, JitterIsDeterministicPerSeedAndDecorrelatesSchedules) {
  // Same seed -> byte-identical retry schedule (reproducible faulty runs);
  // different seeds -> different retry instants (no synchronized storm).
  // Link jitter is zeroed so only the retransmit jitter can differ.
  const auto delivery_time = [](std::uint64_t jitter_seed) {
    sim::Simulator sim;
    net::Transport net(sim, net::Topology::uniform(2, milliseconds(1)),
                       sim::CostModel{}, 4, jitter_seed);
    net.set_jitter(0.0);
    sim::FaultPlan plan;
    plan.blackout(0, 1, 0, milliseconds(500));
    plan.retransmit.max_rto = milliseconds(40);
    sim::FaultInjector fi(plan, 7);
    net.set_fault_injector(&fi);
    SimTime at = sim::kNever;
    sim.at(0, [&] { net.send(0, 1, 64, [&] { at = sim.now(); }); });
    sim.run();
    return at;
  };
  EXPECT_EQ(delivery_time(11), delivery_time(11))
      << "the retry schedule is a pure function of the seed";
  EXPECT_NE(delivery_time(11), delivery_time(12))
      << "different seeds must desynchronize the retry instants";
}

class PaxosEngine : public ::testing::TestWithParam<const char*> {};

TEST_P(PaxosEngine, PaxosCommitBehavesLikeTwoPcWithoutFailures) {
  // Same decisions, one extra message delay.
  Cluster paxos(config(4, 1), protocols::p_store_paxos());
  Cluster tpc(config(4, 1), protocols::p_store_2pc());
  const auto a = launch_write(paxos, 0, 1, 0);
  const auto b = launch_write(tpc, 0, 1, 0);
  paxos.simulator().run();
  tpc.simulator().run();
  ASSERT_TRUE(a->has_value());
  ASSERT_TRUE(b->has_value());
  EXPECT_TRUE((*a)->committed);
  EXPECT_TRUE((*b)->committed);
  EXPECT_GT((*a)->at, (*b)->at);                          // extra delay...
  EXPECT_LT((*a)->at, (*b)->at + milliseconds(60));       // ...but bounded
}

INSTANTIATE_TEST_SUITE_P(One, PaxosEngine, ::testing::Values("x"));

TEST(PaxosCommit, ConflictingReadersWritersNeverBothCommit) {
  // Two read-modify-write transactions crossing each other (T1 reads x
  // writes y, T2 reads y writes x): under SER at most one may commit.
  Cluster cl(config(4, 1), protocols::p_store_paxos());
  int committed = 0;
  auto launch_rmw = [&cl, &committed](SiteId coord, ObjectId rd, ObjectId wr) {
    cl.simulator().at(0, [&cl, &committed, coord, rd, wr] {
      cl.begin(coord, [&cl, &committed, coord, rd, wr](MutTxnPtr t) {
        cl.read(coord, t, rd, [&cl, &committed, coord, wr, t](bool ok) {
          ASSERT_TRUE(ok);
          cl.write(coord, t, wr, [&cl, &committed, coord, t] {
            cl.commit(coord, t,
                      [&committed](bool c) { committed += c ? 1 : 0; });
          });
        });
      });
    });
  };
  launch_rmw(0, 1, 2);
  launch_rmw(3, 2, 1);
  cl.simulator().run();
  EXPECT_LE(committed, 1);
}

TEST(PaxosCommit, ReadWriteTransactionsCommit) {
  Cluster cl(config(4, 1), protocols::p_store_paxos());
  auto out = std::make_shared<std::optional<bool>>();
  cl.simulator().at(0, [&cl, out] {
    cl.begin(0, [&cl, out](MutTxnPtr t) {
      cl.read(0, t, 2, [&cl, t, out](bool ok) {
        ASSERT_TRUE(ok);
        cl.write(0, t, 3, [&cl, t, out] {
          cl.commit(0, t, [out](bool c) { *out = c; });
        });
      });
    });
  });
  cl.simulator().run();
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE(**out);
}

}  // namespace
}  // namespace gdur::core

// Additional checker tests: the RA criterion, the partition-dependence
// exception of the write-write exclusion check, and bookkeeping edges.
#include <gtest/gtest.h>

#include "checker/history.h"
#include "protocols/protocols.h"

namespace gdur::checker {
namespace {

core::TxnRecord txn(TxnId id, SimTime begin, SimTime submit) {
  core::TxnRecord t;
  t.id = id;
  t.begin_time = begin;
  t.submit_time = submit;
  return t;
}

void add_read(core::TxnRecord& t, ObjectId obj, TxnId writer) {
  t.rs.insert(obj);
  t.reads.push_back({.obj = obj, .part = 0, .writer = writer, .pidx = 0});
}

TEST(CheckerRa, FracturedHistoryFailsRa) {
  History h;
  auto w = txn({0, 1}, 0, 5);
  w.ws.insert(1);
  w.ws.insert(2);
  h.record_txn(w, true, 10);
  h.record_install({.obj = 1, .writer = w.id, .pidx = 1, .site = 0, .time = 10});
  h.record_install({.obj = 2, .writer = w.id, .pidx = 1, .site = 0, .time = 10});

  auto t = txn({1, 1}, 20, 25);
  add_read(t, 1, TxnId{});
  add_read(t, 2, w.id);
  h.record_txn(t, true, 30);

  EXPECT_FALSE(h.check_criterion("RA").ok);
}

TEST(CheckerRa, RaIgnoresWriteWriteRaces) {
  History h;
  auto t1 = txn({0, 1}, 0, 8);
  t1.ws.insert(1);
  h.record_txn(t1, true, 20);
  h.record_install({.obj = 1, .writer = t1.id, .pidx = 1, .site = 0, .time = 18});
  auto t2 = txn({1, 1}, 2, 9);  // definitely concurrent with t1
  t2.ws.insert(1);
  h.record_txn(t2, true, 25);
  h.record_install({.obj = 1, .writer = t2.id, .pidx = 2, .site = 0, .time = 22});

  EXPECT_FALSE(h.check_ww_exclusion().ok);  // a lost-update race...
  EXPECT_TRUE(h.check_criterion("RA").ok);  // ...which RA permits
}

TEST(CheckerRa, PartitionDependenceExceptsWwConflict) {
  // With a cluster attached, a writer pair is not "concurrent" when one of
  // them read partition state at-or-after the other's write — the PDV
  // notion of dependency.
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 100;
  core::Cluster cluster(cfg, protocols::jessy2pc());
  History h;
  h.attach(cluster);

  // W1 writes x (object 4, partition 0, primary site 0).
  auto w1 = txn({0, 1}, 0, 100);
  w1.ws.insert(4);
  h.record_txn(w1, true, 200);
  h.record_install({.obj = 4, .writer = w1.id, .pidx = 1, .site = 0, .time = 50});

  // An unrelated later write to another object of partition 0.
  auto w2 = txn({2, 1}, 0, 60);
  w2.ws.insert(8);
  h.record_txn(w2, true, 90);
  h.record_install({.obj = 8, .writer = w2.id, .pidx = 2, .site = 0, .time = 80});

  // T overlaps W1 in time, writes x too, but READ object 8 from w2 —
  // partition-0 state *after* W1's write: dependent, not concurrent.
  auto t = txn({1, 1}, 10, 150);
  add_read(t, 8, w2.id);
  t.ws.insert(4);
  h.record_txn(t, true, 220);
  h.record_install({.obj = 4, .writer = t.id, .pidx = 3, .site = 0, .time = 160});

  EXPECT_TRUE(h.check_ww_exclusion().ok);
}

TEST(CheckerRa, WithoutTheDependentReadTheSamePairIsFlagged) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 100;
  core::Cluster cluster(cfg, protocols::jessy2pc());
  History h;
  h.attach(cluster);

  auto w1 = txn({0, 1}, 0, 100);
  w1.ws.insert(4);
  h.record_txn(w1, true, 200);
  h.record_install({.obj = 4, .writer = w1.id, .pidx = 1, .site = 0, .time = 50});

  auto t = txn({1, 1}, 10, 150);  // no reads at all: blind concurrent write
  t.ws.insert(4);
  h.record_txn(t, true, 220);
  h.record_install({.obj = 4, .writer = t.id, .pidx = 2, .site = 0, .time = 160});

  EXPECT_FALSE(h.check_ww_exclusion().ok);
}

TEST(CheckerRa, CountsAreConsistent) {
  History h;
  EXPECT_EQ(h.total_count(), 0u);
  auto a = txn({0, 1}, 0, 1);
  h.record_txn(a, true, 5);
  auto b = txn({0, 2}, 0, 1);
  h.record_txn(b, false, 6);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.committed_count(), 1u);
}

TEST(CheckerRa, SecondaryInstallsDoNotDoubleCountVersionOrder) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.replication = 2;
  cfg.objects_per_site = 100;
  core::Cluster cluster(cfg, protocols::walter());
  History h;
  h.attach(cluster);

  // Object 4 (partition 0) is installed at both its replicas (sites 0, 1);
  // only the primary's install defines the version order, so a reader of
  // the version is not confused by the duplicate.
  auto w = txn({0, 1}, 0, 5);
  w.ws.insert(4);
  h.record_txn(w, true, 20);
  h.record_install({.obj = 4, .writer = w.id, .pidx = 1, .site = 0, .time = 10});
  h.record_install({.obj = 4, .writer = w.id, .pidx = 1, .site = 1, .time = 12});

  auto r = txn({1, 1}, 30, 35);
  add_read(r, 4, w.id);
  h.record_txn(r, true, 40);
  EXPECT_TRUE(h.check_serializable().ok);
  EXPECT_TRUE(h.check_read_committed().ok);
}

}  // namespace
}  // namespace gdur::checker

// Per-transaction table retention (the unbounded-growth regression).
//
// A Replica keeps four per-transaction tables: term_ (termination state),
// paxos_acc_ (Paxos acceptor slots), decided_cache_ (outcome memos, FIFO
// capped) and commit_cbs_ (coordinator client callbacks). Before this PR, a
// group-commitment participant that certified a transaction but owned none
// of its writes left announce_vote() without ever reaching decide() — the
// votes flow to the write-set replicas — so its term_ entry (and the
// TxnRecord it pins) leaked for the rest of the run: steady linear growth
// on a perfectly healthy workload. The fix arms the existing straggler-GC
// timer on that early-leave path (announce_vote), and the same timer now
// also clears the Paxos acceptor slot.
//
// The soak below runs ~100k fault-free transactions and asserts the tables
// hold a steady state: the size after 100k transactions must not have grown
// materially over the size after 50k, and must stay far below the leak
// regime (one entry per certified-not-applied transaction).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "harness/metrics.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

struct TableSizes {
  std::size_t term = 0;
  std::size_t paxos = 0;
  std::size_t decided = 0;
  std::size_t commit_cbs = 0;
};

TableSizes sum_tables(core::Cluster& cl) {
  TableSizes s;
  for (SiteId i = 0; i < static_cast<SiteId>(cl.sites()); ++i) {
    const auto& r = cl.replica(i);
    s.term += r.term_table_size();
    s.paxos += r.paxos_table_size();
    s.decided += r.decided_cache_size();
    s.commit_cbs += r.commit_cb_count();
  }
  return s;
}

TEST(ReplicaRetention, HundredThousandTxnSoakHoldsSteadyStateTables) {
  // Group commitment with replication 2 on 4 sites: every update recruits
  // read-set certifiers that own none of the writes — exactly the
  // early-leave population that used to leak.
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.replication = 2;
  cfg.objects_per_site = 1024;
  core::Cluster cluster(cfg, protocols::by_name("P-Store"));
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
  for (int i = 0; i < 48; ++i) {
    actors.push_back(std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % cfg.sites),
        workload::WorkloadSpec::B(0.5), metrics,
        mix64(23'000 + static_cast<std::uint64_t>(i))));
    actors.back()->start(i * microseconds(101));
  }

  auto txns_run = [&] {
    std::uint64_t n = 0;
    for (const auto& a : actors) n += a->txns_run();
    return n;
  };
  auto run_until_txns = [&](std::uint64_t target) {
    SimTime t = cluster.simulator().now();
    while (txns_run() < target) {
      t += seconds(1);
      cluster.simulator().run_until(t);
      ASSERT_LT(t, seconds(600)) << "soak failed to reach " << target
                                 << " transactions";
    }
  };

  run_until_txns(50'000);
  // Quiesce the 5s straggler-GC window before sampling so the snapshot is
  // the floor, not the in-flight population. Clients keep running; the
  // window's worth of fresh entries is included in the slack below.
  const TableSizes at50k = sum_tables(cluster);
  run_until_txns(100'000);
  const TableSizes at100k = sum_tables(cluster);
  const std::uint64_t total = txns_run();
  ASSERT_GE(total, 100'000u);

  // Steady state: the second half of the soak must not have grown the
  // termination tables. (A leak of even 10% of the ~50k second-half
  // transactions across read-only participants would add thousands of
  // entries.) The tables float with the 5s GC window × decision rate, so
  // allow generous slack around the 50k snapshot rather than demanding an
  // exact match.
  EXPECT_LE(at100k.term, at50k.term + at50k.term / 2 + 200)
      << "term_ grew across the soak: 50k=" << at50k.term
      << " 100k=" << at100k.term;
  // The leak regime is one pinned entry per no-local-writes certifier —
  // a large fraction of all transactions. Steady state is bounded by the
  // GC window's in-flight population.
  EXPECT_LT(at100k.term, total / 4)
      << "term_ holds " << at100k.term << " entries after " << total
      << " transactions — linear retention, not a steady state";
  // No Paxos in this protocol: the acceptor table must stay empty.
  EXPECT_EQ(at100k.paxos, 0u);
  // Every submitted transaction decides at its coordinator, which clears
  // the client-callback slot; at most the in-flight population remains.
  EXPECT_LE(at100k.commit_cbs, actors.size());
  // The decided cache is FIFO-capped by construction.
  EXPECT_LE(at100k.decided,
            static_cast<std::size_t>(cfg.sites) * 200'000u);
}

TEST(ReplicaRetention, PaxosAcceptorSlotsClearedByTermGc) {
  // Paxos Commit on 8 sites with replication 2: a transaction's certifying
  // replicas cover a strict subset of the cluster, so the remaining sites
  // act as PURE acceptors — they accept a phase-2a proposal for every
  // transaction but never certify, apply, or decide it, and so never hit
  // decide(), the path that arms the straggler GC everywhere else. Before
  // this PR their acceptor slots were reclaimed only by the 100k FIFO cap:
  // one leaked map entry per transaction per acceptor, linear growth. Now
  // on_paxos_2a arms the straggler GC directly (and the GC no longer skips
  // the acceptor slot when there is no term state to erase alongside it).
  //
  // Steady state is the 5s GC window's in-flight population — it floats
  // with the decision rate but must NOT grow with transaction count, so the
  // regression assertion compares two snapshots a half-run apart.
  core::ClusterConfig cfg;
  cfg.sites = 8;
  cfg.replication = 2;
  cfg.objects_per_site = 512;
  core::Cluster cluster(cfg, protocols::by_name("P-Store+Paxos"));
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
  for (int i = 0; i < 24; ++i) {
    actors.push_back(std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % cfg.sites),
        workload::WorkloadSpec::B(0.5), metrics,
        mix64(29'000 + static_cast<std::uint64_t>(i))));
    actors.back()->start(i * microseconds(113));
  }
  auto txns_run = [&] {
    std::uint64_t n = 0;
    for (const auto& a : actors) n += a->txns_run();
    return n;
  };
  cluster.simulator().run_until(seconds(15));
  const TableSizes mid = sum_tables(cluster);
  const std::uint64_t mid_txns = txns_run();
  cluster.simulator().run_until(seconds(30));
  const TableSizes end = sum_tables(cluster);
  const std::uint64_t txns = txns_run();
  ASSERT_GT(txns, 4'000u);
  ASSERT_GT(txns, mid_txns + 1'000u) << "second half ran no load";

  // No growth across the second half: the leak regime adds one entry per
  // transaction per pure acceptor (several thousand here), steady state
  // adds none.
  EXPECT_LE(end.paxos, mid.paxos + mid.paxos / 2 + 200)
      << "paxos_acc_ grew across the run: 15s=" << mid.paxos
      << " 30s=" << end.paxos << " after " << txns << " transactions";
  EXPECT_LE(end.term, mid.term + mid.term / 2 + 200)
      << "term_ grew across the run: 15s=" << mid.term
      << " 30s=" << end.term;
  // And the absolute level is the GC window, far below the leak regime of
  // roughly (acceptors per txn) x (transactions so far).
  EXPECT_LT(end.paxos, txns * 2)
      << "paxos_acc_ holds " << end.paxos << " entries after " << txns
      << " transactions";
  // The retained entries are a decided tail awaiting their GC timer, not a
  // stuck undecided population.
  std::size_t undecided = 0;
  for (SiteId i = 0; i < static_cast<SiteId>(cfg.sites); ++i) {
    const auto b = cluster.replica(i).term_breakdown();
    undecided += cluster.replica(i).term_table_size() - b.decided;
  }
  EXPECT_LT(undecided, 500u)
      << undecided << " term entries are still undecided at quiesce";
}

}  // namespace
}  // namespace gdur

// Unit tests for the discrete-event simulator and the CPU model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "sim/simulator.h"

namespace gdur::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, BreaksTiesByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(5, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.at(100, [&] { sim.after(50, [&] { seen = sim.now(); }); });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.after(1, chain);
  };
  sim.after(0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.at(10, [&] { ++ran; });
  sim.at(20, [&] { ++ran; });
  sim.at(30, [&] { ++ran; });
  EXPECT_TRUE(sim.run_until(20));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_TRUE(sim.run_until(100));
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.now(), 100);  // clock advances even after queue drains
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int ran = 0;
  sim.at(1, [&] {
    ++ran;
    sim.stop();
  });
  sim.at(2, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  sim.run();  // resumes with the remaining event
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Cpu, SingleCoreSerializesJobs) {
  Simulator sim;
  CpuResource cpu(sim, 1);
  std::vector<SimTime> done;
  sim.at(0, [&] {
    cpu.submit(10, [&] { done.push_back(sim.now()); });
    cpu.submit(10, [&] { done.push_back(sim.now()); });
    cpu.submit(10, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Cpu, MultiCoreRunsInParallel) {
  Simulator sim;
  CpuResource cpu(sim, 2);
  std::vector<SimTime> done;
  sim.at(0, [&] {
    for (int i = 0; i < 4; ++i)
      cpu.submit(10, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  // Two cores: pairs finish at 10 and 20.
  EXPECT_EQ(done, (std::vector<SimTime>{10, 10, 20, 20}));
}

TEST(Cpu, IdleCoreStartsJobImmediately) {
  Simulator sim;
  CpuResource cpu(sim, 2);
  SimTime done = 0;
  sim.at(100, [&] { cpu.submit(5, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done, 105);
}

TEST(Cpu, BusyTimeAccumulates) {
  Simulator sim;
  CpuResource cpu(sim, 4);
  sim.at(0, [&] {
    cpu.submit(10, [] {});
    cpu.submit(30, [] {});
  });
  sim.run();
  EXPECT_EQ(cpu.busy_time(), 40);
  EXPECT_NEAR(cpu.utilization(0, 100), 0.1, 1e-9);  // 40 / (4 cores * 100)
}

TEST(Cpu, UtilizationClampedToOne) {
  Simulator sim;
  CpuResource cpu(sim, 1);
  sim.at(0, [&] { cpu.submit(1000, [] {}); });
  sim.run();
  EXPECT_DOUBLE_EQ(cpu.utilization(0, 10), 1.0);
}

TEST(Cpu, ResetAccountingClearsBusyTime) {
  Simulator sim;
  CpuResource cpu(sim, 1);
  sim.at(0, [&] { cpu.submit(10, [] {}); });
  sim.run();
  cpu.reset_accounting();
  EXPECT_EQ(cpu.busy_time(), 0);
}

TEST(Cpu, ZeroServiceJobCompletesAtNow) {
  Simulator sim;
  CpuResource cpu(sim, 1);
  SimTime done = -1;
  sim.at(7, [&] { cpu.submit(0, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done, 7);
}

}  // namespace
}  // namespace gdur::sim

// Cross-feature integration tests: configurations that combine several
// subsystems (fine partitioning, durability, Paxos commitment, replication,
// fault-tolerant multicast) and must still uphold the protocol contracts.
#include <gtest/gtest.h>

#include <memory>

#include "checker/history.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

struct Rig {
  Rig(const core::ProtocolSpec& spec, core::ClusterConfig cfg, int clients,
      workload::WorkloadSpec wl, SimDuration window = seconds(2))
      : cluster(cfg, spec) {
    history.attach(cluster);
    for (int i = 0; i < clients; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites), wl, metrics,
          mix64(31'000 + static_cast<std::uint64_t>(i))));
      actors.back()->set_observer(
          [this](const core::TxnRecord& t, bool committed) {
            history.record_txn(t, committed, cluster.simulator().now());
          });
      actors.back()->start(i * microseconds(373));
    }
    cluster.simulator().run_until(window);
  }

  core::Cluster cluster;
  checker::History history;
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
};

core::ClusterConfig contended(int sites = 4, int rf = 1, int pps = 1) {
  core::ClusterConfig cfg;
  cfg.sites = sites;
  cfg.replication = rf;
  cfg.objects_per_site = 64;
  cfg.partitions_per_site = pps;
  return cfg;
}

TEST(Integration, FinePartitionsUpholdNmsi) {
  // 4 partitions per site: PDV vectors grow, snapshots get finer.
  Rig rig(protocols::jessy2pc(), contended(4, 1, /*pps=*/4), 24,
          workload::WorkloadSpec::B(0.6));
  EXPECT_GT(rig.history.committed_count(), 150u);
  const auto r = rig.history.check_criterion("NMSI");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Integration, FinePartitionsUpholdSerForPStore) {
  Rig rig(protocols::p_store(), contended(4, 1, /*pps=*/4), 24,
          workload::WorkloadSpec::A(0.8));
  EXPECT_GT(rig.history.committed_count(), 150u);
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Integration, FinerPartitionsReduceSnapshotRetries) {
  auto coarse_cfg = contended(4, 1, 1);
  auto fine_cfg = contended(4, 1, 8);
  Rig coarse(protocols::jessy2pc(), coarse_cfg, 24,
             workload::WorkloadSpec::B(0.6));
  Rig fine(protocols::jessy2pc(), fine_cfg, 24,
           workload::WorkloadSpec::B(0.6));
  EXPECT_LE(fine.metrics.exec_failures, coarse.metrics.exec_failures);
}

TEST(Integration, DurableClusterUpholdsPsi) {
  auto cfg = contended();
  cfg.durable = true;
  Rig rig(protocols::walter(), cfg, 24, workload::WorkloadSpec::A(0.8));
  EXPECT_GT(rig.history.committed_count(), 150u);
  const auto r = rig.history.check_criterion("PSI");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Integration, DurableClusterLogsProportionallyToCommits) {
  auto cfg = contended();
  cfg.durable = true;
  Rig rig(protocols::walter(), cfg, 16, workload::WorkloadSpec::A(0.5));
  std::uint64_t appends = 0;
  for (SiteId s = 0; s < 4; ++s) appends += rig.cluster.wal(s)->appends();
  // Every update transaction logs at least one vote and one apply record.
  EXPECT_GE(appends, rig.metrics.committed_upd);
}

TEST(Integration, PaxosCommitUpholdsSerUnderDt) {
  Rig rig(protocols::p_store_paxos(), contended(4, /*rf=*/2), 24,
          workload::WorkloadSpec::A(0.8));
  EXPECT_GT(rig.history.committed_count(), 150u);
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Integration, FtMulticastUpholdsSerUnderDt) {
  Rig rig(protocols::p_store_ft(), contended(4, /*rf=*/2), 16,
          workload::WorkloadSpec::A(0.8), seconds(3));
  EXPECT_GT(rig.history.committed_count(), 100u);
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Integration, RampNeverAbortsAtCertification) {
  Rig rig(protocols::ramp(), contended(), 24, workload::WorkloadSpec::C(0.5));
  // RAMP has no certification: any aborts are execution-phase retries.
  EXPECT_EQ(rig.metrics.aborted_upd, 0u);
  EXPECT_EQ(rig.metrics.aborted_ro, 0u);
}

TEST(Integration, SixSitesDtComparisonStaysConsistent) {
  for (const char* name : {"Walter", "GMU"}) {
    Rig rig(protocols::by_name(name), contended(6, 2), 24,
            workload::WorkloadSpec::A(0.7));
    EXPECT_GT(rig.history.committed_count(), 150u) << name;
    const auto r = rig.history.check_criterion(
        std::string(name) == "Walter" ? "PSI" : "US");
    EXPECT_TRUE(r.ok) << name << ": " << r.detail;
  }
}

TEST(Integration, OutageUnderLoadRecovers) {
  // A 300 ms outage of one site mid-run: the cluster must keep committing
  // afterwards and the history must stay consistent.
  auto cfg = contended(4, 2);
  Rig rig(protocols::walter(), cfg, 16, workload::WorkloadSpec::A(0.8),
          /*window=*/seconds(0));  // construct only
  rig.cluster.transport().pause_site(2, milliseconds(800));
  rig.cluster.simulator().run_until(seconds(3));
  EXPECT_GT(rig.history.committed_count(), 200u);
  const auto r = rig.history.check_criterion("PSI");
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Integration, MixedCoordinatorsProduceDisjointTxnIds) {
  Rig rig(protocols::rc(), contended(), 16, workload::WorkloadSpec::A(0.5));
  std::set<std::pair<SiteId, std::uint64_t>> ids;
  for (const auto& t : rig.history.txns())
    EXPECT_TRUE(ids.insert({t.txn.id.coord, t.txn.id.seq}).second);
}

}  // namespace
}  // namespace gdur

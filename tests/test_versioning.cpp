// Tests for the versioning mechanisms (Θ) of §4.1.
#include <gtest/gtest.h>

#include "store/mv_store.h"
#include "store/partitioner.h"
#include "versioning/oracle.h"

namespace gdur::versioning {
namespace {

using store::ObjectChain;
using store::Partitioner;
using store::Version;

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : part_(4, 1, 1000) {}

  /// Installs a version of some object in partition `p` of site `at`,
  /// written by a txn coordinated at `coord`, and returns it.
  Version apply_one(VersionOracle& o, SiteId at, SiteId coord,
                    std::uint64_t coord_seq, PartitionId p,
                    const TxnSnapshot& writer_snap = {}) {
    Stamp stamp = o.submit_stamp(coord, coord_seq, writer_snap);
    const auto pidx = o.on_apply(at, stamp, {p}, writer_snap);
    return Version{.writer = TxnId{coord, coord_seq},
                   .pidx = pidx[0],
                   .commit_time = 0,
                   .stamp = stamp};
  }

  Partitioner part_;
};

// --- TS ---------------------------------------------------------------------

TEST_F(OracleTest, TsMetadataIsScalarSized) {
  const auto o = make_oracle(VersioningKind::kTS, part_);
  EXPECT_LE(o->metadata_bytes(), 16u);
}

TEST_F(OracleTest, TsSnapshotTakesCurrentCommitCount) {
  auto o = make_oracle(VersioningKind::kTS, part_);
  TxnSnapshot s;
  o->begin_snapshot(0, s);
  EXPECT_EQ(s.start_seq, 0u);
  apply_one(*o, 0, 0, 1, 0);
  o->begin_snapshot(0, s);
  EXPECT_EQ(s.start_seq, 1u);
}

TEST_F(OracleTest, TsChooseReadsWithinSnapshot) {
  auto o = make_oracle(VersioningKind::kTS, part_);
  ObjectChain chain;
  chain.install(apply_one(*o, 0, 0, 1, 0));  // seq 1
  TxnSnapshot mid;
  o->begin_snapshot(0, mid);  // start_seq = 1
  chain.install(apply_one(*o, 0, 0, 2, 0));  // seq 2
  EXPECT_EQ(o->choose(0, &chain, 0, mid), 0);  // sees only seq 1
  TxnSnapshot late;
  o->begin_snapshot(0, late);
  EXPECT_EQ(o->choose(0, &chain, 0, late), 1);  // sees seq 2
}

TEST_F(OracleTest, TsChooseWaitsForSnapshotCompleteness) {
  auto o = make_oracle(VersioningKind::kTS, part_);
  apply_one(*o, 0, 0, 1, 0);  // site 0 at commit count 1
  TxnSnapshot s;
  o->begin_snapshot(0, s);  // start_seq = 1
  // Site 1 has applied nothing yet: it cannot serve this snapshot.
  EXPECT_EQ(o->choose(1, nullptr, 1, s), kNoCompatibleVersion);
  // After site 1 observes the commit, the initial version is servable.
  o->on_commit_observed(1);
  EXPECT_EQ(o->choose(1, nullptr, 1, s), kInitialVersion);
}

TEST_F(OracleTest, TsVisibilityMatchesSnapshot) {
  auto o = make_oracle(VersioningKind::kTS, part_);
  const auto v = apply_one(*o, 0, 0, 1, 0);
  TxnSnapshot before;  // start_seq = 0
  before.start_seq = 0;
  TxnSnapshot after;
  o->begin_snapshot(0, after);
  EXPECT_FALSE(o->visible(v, 0, before));
  EXPECT_TRUE(o->visible(v, 0, after));
}

TEST_F(OracleTest, TsObservedCommitsAdvanceTheClockIdentically) {
  auto o = make_oracle(VersioningKind::kTS, part_);
  const auto v1 = apply_one(*o, 0, 2, 1, 0);  // site 0 applies
  const auto seq_at_1 = o->on_commit_observed(1);  // site 1 only observes
  EXPECT_EQ(v1.stamp.seq, seq_at_1);
}

// --- VTS --------------------------------------------------------------------

TEST_F(OracleTest, VtsMetadataScalesWithSites) {
  const auto o = make_oracle(VersioningKind::kVTS, part_);
  EXPECT_EQ(o->metadata_bytes() % 4, 0u);
  EXPECT_GT(o->metadata_bytes(), 4u * 8u);
}

TEST_F(OracleTest, VtsVersionInvisibleUntilPropagated) {
  auto o = make_oracle(VersioningKind::kVTS, part_);
  // Site 1 applies a version coordinated by site 1.
  const auto v = apply_one(*o, 1, 1, 1, 1);
  // A transaction starting at site 0 has not heard of it.
  TxnSnapshot s0;
  o->begin_snapshot(0, s0);
  EXPECT_FALSE(o->visible(v, 1, s0));
  // Background propagation reaches site 0.
  o->on_propagate(0, v.stamp);
  o->begin_snapshot(0, s0);
  EXPECT_TRUE(o->visible(v, 1, s0));
}

TEST_F(OracleTest, VtsChooseSkipsVersionsOutsideSnapshot) {
  auto o = make_oracle(VersioningKind::kVTS, part_);
  ObjectChain chain;
  chain.install(apply_one(*o, 1, 1, 1, 1));
  o->on_propagate(0, chain.latest().stamp);
  TxnSnapshot snap;
  o->begin_snapshot(0, snap);  // includes (1,1)
  chain.install(apply_one(*o, 1, 1, 2, 1));  // (1,2) after the snapshot
  // Reading at site 1 with site 0's snapshot: only the first version.
  EXPECT_EQ(o->choose(1, &chain, 1, snap), 0);
}

TEST_F(OracleTest, VtsChooseWaitsWhenReplicaLagsBehindSnapshot) {
  auto o = make_oracle(VersioningKind::kVTS, part_);
  const auto v = apply_one(*o, 0, 0, 1, 0);  // site 0 knows (0,1)
  TxnSnapshot snap;
  o->begin_snapshot(0, snap);
  // Site 2 has not learned (0,1): serving this snapshot must wait.
  EXPECT_EQ(o->choose(2, nullptr, 2, snap), kNoCompatibleVersion);
  o->on_propagate(2, v.stamp);
  EXPECT_EQ(o->choose(2, nullptr, 2, snap), kInitialVersion);
}

// --- GMV / PDV --------------------------------------------------------------

TEST_F(OracleTest, PdvMetadataScalesWithPartitions) {
  const auto o = make_oracle(VersioningKind::kPDV, part_);
  const auto g = make_oracle(VersioningKind::kGMV, part_);
  EXPECT_GT(o->metadata_bytes(), 0u);
  // One partition per site: identical dimensions.
  EXPECT_EQ(o->metadata_bytes(), g->metadata_bytes());
}

TEST_F(OracleTest, DepVectorFreshReadTakesLatest) {
  auto o = make_oracle(VersioningKind::kPDV, part_);
  ObjectChain chain;
  chain.install(apply_one(*o, 0, 0, 1, 0));
  chain.install(apply_one(*o, 0, 0, 2, 0));
  TxnSnapshot s;
  o->begin_snapshot(0, s);
  EXPECT_EQ(o->choose(0, &chain, 0, s), 1);  // freshest version, no floor yet
}

TEST_F(OracleTest, DepVectorCeilingForcesOlderVersion) {
  auto o = make_oracle(VersioningKind::kPDV, part_);
  // Writer W2 read partition 0 at index 2 before writing partition 1, so
  // its version depends on p0@2.
  ObjectChain x_chain;  // object in partition 0
  x_chain.install(apply_one(*o, 0, 0, 1, 0));  // p0@1
  x_chain.install(apply_one(*o, 0, 0, 2, 0));  // p0@2

  TxnSnapshot w2_snap;
  o->begin_snapshot(1, w2_snap);
  o->note_read(&x_chain.latest(), 0, w2_snap);  // W2 read p0@2
  ObjectChain y_chain;  // object in partition 1
  y_chain.install(apply_one(*o, 1, 1, 1, 1, w2_snap));  // depends on p0@2

  // Reader T: reads x first at version p0@1 (via an old snapshot), then y.
  TxnSnapshot t;
  o->begin_snapshot(2, t);
  o->note_read(&x_chain.at(0), 0, t);  // ceil[p0] = 1
  // y's latest depends on p0@2 > ceil -> incompatible; no older version and
  // the floor allows the initial version.
  EXPECT_EQ(o->choose(1, &y_chain, 1, t), kInitialVersion);
}

TEST_F(OracleTest, DepVectorFloorForbidsTooOldVersions) {
  auto o = make_oracle(VersioningKind::kPDV, part_);
  ObjectChain x_chain;
  x_chain.install(apply_one(*o, 0, 0, 1, 0));  // p0@1

  // W2 read x@1 then wrote y: dep(y) includes p0@1.
  TxnSnapshot w2_snap;
  o->begin_snapshot(1, w2_snap);
  o->note_read(&x_chain.latest(), 0, w2_snap);
  ObjectChain y_chain;
  y_chain.install(apply_one(*o, 1, 1, 1, 1, w2_snap));

  // T reads y first (floor[p0] = 1), then must NOT read x's initial version.
  TxnSnapshot t;
  o->begin_snapshot(2, t);
  o->note_read(&y_chain.latest(), 1, t);
  EXPECT_EQ(t.floor[0], 1u);
  EXPECT_EQ(o->choose(0, &x_chain, 0, t), 0);  // x@1, not the initial one
  // A replica that has not applied partition 0 up to the floor must wait
  // rather than serve the (possibly stale) initial version.
  EXPECT_EQ(o->choose(2, nullptr, 2, t), kInitialVersion);  // untouched part
  EXPECT_EQ(o->choose(1, nullptr, 0, t), kNoCompatibleVersion);  // lagging
}

TEST_F(OracleTest, DepVectorSameTxnVersionsAreMutuallyConsistent) {
  auto o = make_oracle(VersioningKind::kPDV, part_);
  // One txn writes x (p0, hosted at site 0) and y (p1, hosted at site 1)
  // atomically; as in the engine, each hosting replica applies it.
  TxnSnapshot w;
  o->begin_snapshot(0, w);
  Stamp stamp = o->submit_stamp(0, 1, w);
  const auto pidx = o->on_apply(0, stamp, {0, 1}, w);
  Stamp stamp1 = o->submit_stamp(0, 1, w);
  const auto pidx1 = o->on_apply(1, stamp1, {0, 1}, w);
  EXPECT_EQ(pidx, pidx1);  // commit indices are replica-independent
  ObjectChain xc, yc;
  xc.install(Version{TxnId{0, 1}, pidx[0], 0, stamp});
  yc.install(Version{TxnId{0, 1}, pidx[1], 0, stamp1});

  TxnSnapshot t;
  o->begin_snapshot(1, t);
  const int ix = o->choose(0, &xc, 0, t);
  ASSERT_GE(ix, 0);
  o->note_read(&xc.at(static_cast<std::size_t>(ix)), 0, t);
  // After reading the txn's x, its y must still be readable.
  EXPECT_EQ(o->choose(1, &yc, 1, t), 0);
}

TEST_F(OracleTest, DepVectorVisibilityTracksFloor) {
  auto o = make_oracle(VersioningKind::kPDV, part_);
  ObjectChain chain;
  chain.install(apply_one(*o, 0, 0, 1, 0));
  TxnSnapshot t;
  o->begin_snapshot(1, t);
  EXPECT_FALSE(o->visible(chain.latest(), 0, t));  // nothing read yet
  o->note_read(&chain.latest(), 0, t);
  EXPECT_TRUE(o->visible(chain.latest(), 0, t));
}

TEST_F(OracleTest, VcCarriesLargerMetadataThanVts) {
  const auto vc = make_oracle(VersioningKind::kVC, part_);
  const auto vts = make_oracle(VersioningKind::kVTS, part_);
  EXPECT_GT(vc->metadata_bytes(), vts->metadata_bytes());
}

TEST_F(OracleTest, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(VersioningKind::kTS), "TS");
  EXPECT_STREQ(to_string(VersioningKind::kVC), "VC");
  EXPECT_STREQ(to_string(VersioningKind::kVTS), "VTS");
  EXPECT_STREQ(to_string(VersioningKind::kGMV), "GMV");
  EXPECT_STREQ(to_string(VersioningKind::kPDV), "PDV");
}

}  // namespace
}  // namespace gdur::versioning

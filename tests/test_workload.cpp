// Tests for the YCSB-like workload generator (Table 3) and its globality /
// locality constraints (§8.1, Figure 5).
#include <gtest/gtest.h>

#include "store/partitioner.h"
#include "workload/workload.h"

namespace gdur::workload {
namespace {

TEST(WorkloadSpec, TableThreeShapes) {
  const auto a = WorkloadSpec::A();
  EXPECT_EQ(a.ro_reads, 2);
  EXPECT_EQ(a.upd_reads, 1);
  EXPECT_EQ(a.upd_writes, 1);
  EXPECT_FALSE(a.zipfian);

  const auto b = WorkloadSpec::B();
  EXPECT_EQ(b.ro_reads, 4);
  EXPECT_EQ(b.upd_reads, 2);
  EXPECT_EQ(b.upd_writes, 2);
  EXPECT_FALSE(b.zipfian);

  const auto c = WorkloadSpec::C();
  EXPECT_TRUE(c.zipfian);
  EXPECT_EQ(c.ro_reads, 2);
}

TEST(Generator, ReadOnlyRatioIsRespected) {
  const store::Partitioner part(4, 1, 10'000);
  Generator g(WorkloadSpec::A(0.9), part, 0, 42);
  int ro = 0;
  for (int i = 0; i < 10'000; ++i) ro += g.next().read_only;
  EXPECT_NEAR(ro / 10'000.0, 0.9, 0.02);
}

TEST(Generator, OpCountsMatchSpec) {
  const store::Partitioner part(4, 1, 10'000);
  Generator g(WorkloadSpec::B(0.5), part, 1, 7);
  for (int i = 0; i < 500; ++i) {
    const auto t = g.next();
    if (t.read_only) {
      EXPECT_EQ(t.reads.size(), 4u);
      EXPECT_TRUE(t.writes.empty());
    } else {
      EXPECT_EQ(t.reads.size(), 2u);
      EXPECT_EQ(t.writes.size(), 2u);
    }
  }
}

TEST(Generator, KeysAreDistinctWithinTxn) {
  const store::Partitioner part(4, 1, 100);  // tiny space forces collisions
  Generator g(WorkloadSpec::B(0.0), part, 0, 9);
  for (int i = 0; i < 500; ++i) {
    const auto t = g.next();
    std::vector<ObjectId> all = t.reads;
    all.insert(all.end(), t.writes.begin(), t.writes.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  }
}

TEST(Generator, TransactionsAreGlobalByDefault) {
  const store::Partitioner part(4, 1, 100'000);
  Generator g(WorkloadSpec::A(0.5), part, 2, 11);
  int single_site = 0;
  for (int i = 0; i < 2'000; ++i) {
    const auto t = g.next();
    ObjSet touched;
    for (auto k : t.reads) touched.insert(k);
    for (auto k : t.writes) touched.insert(k);
    single_site += part.single_site(touched);
  }
  // Rejection sampling makes single-site transactions essentially absent.
  EXPECT_LT(single_site, 10);
}

TEST(Generator, LocalityConfinesKeysToHomeSite) {
  const store::Partitioner part(4, 1, 100'000);
  auto spec = WorkloadSpec::A(0.9);
  spec.locality = 1.0;
  Generator g(spec, part, 3, 13);
  for (int i = 0; i < 500; ++i) {
    const auto t = g.next();
    EXPECT_TRUE(t.local);
    for (auto k : t.reads) EXPECT_TRUE(part.is_local(3, k));
    for (auto k : t.writes) EXPECT_TRUE(part.is_local(3, k));
  }
}

TEST(Generator, PartialLocalityMixes) {
  const store::Partitioner part(4, 1, 100'000);
  auto spec = WorkloadSpec::A(0.9);
  spec.locality = 0.5;
  Generator g(spec, part, 0, 17);
  int local = 0;
  for (int i = 0; i < 4'000; ++i) local += g.next().local;
  EXPECT_NEAR(local / 4'000.0, 0.5, 0.05);
}

TEST(Generator, ZipfianWorkloadSkewsKeys) {
  const store::Partitioner part(4, 1, 10'000);
  Generator gu(WorkloadSpec::A(0.0), part, 0, 19);
  Generator gz(WorkloadSpec::C(0.0), part, 0, 19);
  auto hottest_fraction = [](Generator& g) {
    std::unordered_map<ObjectId, int> counts;
    int total = 0;
    for (int i = 0; i < 4'000; ++i) {
      const auto t = g.next();
      for (auto k : t.reads) ++counts[k], ++total;
    }
    int best = 0;
    for (auto& [k, c] : counts) best = std::max(best, c);
    return double(best) / total;
  };
  EXPECT_GT(hottest_fraction(gz), 5 * hottest_fraction(gu));
}

TEST(Generator, DeterministicPerSeed) {
  const store::Partitioner part(4, 1, 10'000);
  Generator a(WorkloadSpec::B(0.7), part, 0, 23);
  Generator b(WorkloadSpec::B(0.7), part, 0, 23);
  for (int i = 0; i < 200; ++i) {
    const auto ta = a.next();
    const auto tb = b.next();
    EXPECT_EQ(ta.read_only, tb.read_only);
    EXPECT_EQ(ta.reads, tb.reads);
    EXPECT_EQ(ta.writes, tb.writes);
  }
}

}  // namespace
}  // namespace gdur::workload

// Certification-pipeline tests (core/conflict_index + the replica sites
// that query it):
//   * ConflictIndex unit semantics — positions, removal, scan dedup/order;
//   * the S-DUR pruned-prefix regression — certification must not flip to
//     commit when ObjectChain GC prunes a snapshot-invisible version;
//   * the GDUR_VERIFY_CERT equivalence stress — thousands of transactions
//     across every registered protocol, deep queues under chaos faults,
//     with every indexed commute answer cross-checked against the pairwise
//     queue scan (a mismatch aborts the process).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "checker/history.h"
#include "core/certifiers.h"
#include "core/cluster.h"
#include "core/conflict_index.h"
#include "protocols/protocols.h"
#include "sim/fault.h"
#include "workload/client.h"

namespace gdur {
namespace {

// ---------------------------------------------------------------------------
// ConflictIndex unit semantics.
// ---------------------------------------------------------------------------

core::TxnPtr txn(SiteId coord, std::uint64_t seq,
                 const std::vector<ObjectId>& reads,
                 const std::vector<ObjectId>& writes) {
  auto t = std::make_shared<core::TxnRecord>();
  t->id = TxnId{coord, seq};
  for (ObjectId o : reads) t->rs.insert(o);
  for (ObjectId o : writes) t->ws.insert(o);
  return t;
}

std::vector<TxnId> scan_ids(const core::ConflictIndex& idx,
                            const core::TxnRecord& t) {
  std::vector<TxnId> out;
  idx.scan(t, [&](const core::ConflictIndex::Candidate& c) {
    out.push_back(c.txn.id);
    return false;
  });
  return out;
}

TEST(ConflictIndex, PositionsAreMonotonicInAddOrder) {
  core::ConflictIndex idx;
  const auto p1 = idx.add(txn(0, 1, {1}, {2}));
  const auto p2 = idx.add(txn(0, 2, {3}, {4}));
  EXPECT_LT(p1, p2);
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.position(TxnId{0, 1}), std::optional<std::uint64_t>(p1));
  EXPECT_EQ(idx.position(TxnId{9, 9}), std::nullopt);
}

TEST(ConflictIndex, ScanVisitsOnlyFootprintSharers) {
  core::ConflictIndex idx;
  idx.add(txn(0, 1, {1}, {2}));
  idx.add(txn(0, 2, {7}, {8}));
  idx.add(txn(0, 3, {}, {1}));  // shares object 1 with txn 0.1's read set
  const auto probe = txn(1, 1, {2}, {1});
  const auto ids = scan_ids(idx, *probe);
  ASSERT_EQ(ids.size(), 2u);
  // Within a bucket, candidates come back in enqueue order; txn 0.1 (which
  // shares both objects) is visited exactly once.
  EXPECT_EQ(ids[0], (TxnId{0, 1}));
  EXPECT_EQ(ids[1], (TxnId{0, 3}));
}

TEST(ConflictIndex, ScanVisitsMultiObjectSharerExactlyOnce) {
  core::ConflictIndex idx;
  idx.add(txn(0, 1, {1, 2, 3}, {4, 5}));
  const auto probe = txn(1, 1, {1, 4}, {2, 5});
  EXPECT_EQ(scan_ids(idx, *probe).size(), 1u);
}

TEST(ConflictIndex, ScanStopsEarlyWhenVisitorReturnsTrue) {
  core::ConflictIndex idx;
  for (std::uint64_t i = 1; i <= 8; ++i) idx.add(txn(0, i, {}, {1}));
  int visited = 0;
  const bool hit = idx.scan(*txn(1, 1, {1}, {}), [&](const auto&) {
    ++visited;
    return true;
  });
  EXPECT_TRUE(hit);
  EXPECT_EQ(visited, 1);
}

TEST(ConflictIndex, RemovePreservesBucketOrderOfTheRest) {
  core::ConflictIndex idx;
  idx.add(txn(0, 1, {}, {1}));
  idx.add(txn(0, 2, {}, {1}));
  idx.add(txn(0, 3, {}, {1}));
  idx.remove(TxnId{0, 2});
  const auto ids = scan_ids(idx, *txn(1, 1, {1}, {}));
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], (TxnId{0, 1}));
  EXPECT_EQ(ids[1], (TxnId{0, 3}));
  idx.remove(TxnId{0, 2});  // removing an absent id is a no-op
  EXPECT_EQ(idx.size(), 2u);
}

TEST(ConflictIndex, ClearEmptiesButKeepsPositionsGrowing) {
  core::ConflictIndex idx;
  const auto before = idx.add(txn(0, 1, {}, {1}));
  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(scan_ids(idx, *txn(1, 1, {1}, {})).empty());
  // Positions stay unique across a crash-clear: WAL replay re-indexes the
  // rebuilt queue with fresh, larger positions.
  EXPECT_GT(idx.add(txn(0, 2, {}, {1})), before);
}

// ---------------------------------------------------------------------------
// S-DUR pruned-prefix regression (the headline bugfix). Before the
// PrunedSummary, the certifier scanned only the retained chain: driving a
// chain past kMaxDepth pruned the snapshot-invisible versions and silently
// flipped the verdict from abort to commit.
// ---------------------------------------------------------------------------

struct SdurChainRig {
  SdurChainRig() : cluster(config(), protocols::by_name("S-DUR")) {}

  static core::ClusterConfig config() {
    core::ClusterConfig cfg;
    cfg.sites = 4;
    cfg.replication = 1;
    cfg.objects_per_site = 16;
    return cfg;
  }

  void install(ObjectId obj, SiteId origin, std::uint64_t seq) {
    versioning::Stamp st;
    st.origin = origin;
    st.seq = seq;
    cluster.replica(0).install_version_for_testing(
        obj, store::Version{.writer = TxnId{origin, seq},
                            .pidx = ++pidx,
                            .commit_time = static_cast<SimTime>(pidx),
                            .stamp = st});
  }

  /// An update transaction at site 0 that read `obj` under snapshot `vts`.
  core::TxnRecord reader_txn(ObjectId obj,
                             std::vector<std::uint64_t> vts) const {
    core::TxnRecord t;
    t.id = TxnId{0, 1};
    t.rs.insert(obj);
    t.ws.insert(obj + 4);  // an update txn (read-only ones skip certify)
    t.reads.push_back(core::ReadEntry{.obj = obj, .part = 0, .writer = {},
                                      .pidx = 1});
    t.snap.vts = std::move(vts);
    return t;
  }

  /// Verdict of the real S-DUR certifier at replica 0.
  bool certify(const core::TxnRecord& t) {
    return cluster.spec().certify(
        core::CertContext{cluster.replica(0), t, seconds(1)});
  }

  /// Reference verdict over ALL versions ever installed (no pruning):
  /// commit iff every one is visible in the transaction's snapshot.
  bool unpruned_reference(const core::TxnRecord& t,
                          const std::vector<store::Version>& all) {
    for (const auto& v : all)
      if (!cluster.oracle().visible(v, 0, t.snap)) return false;
    return true;
  }

  core::Cluster cluster;
  std::uint64_t pidx = 0;
};

TEST(SdurPrunedChain, PrunedInvisibleVersionStillAborts) {
  SdurChainRig rig;
  const ObjectId obj = 0;  // lives at site 0 (= the certifying replica)
  std::vector<store::Version> all;

  // 18 versions by origin 2 (invisible below) then 24 by origin 3 (visible):
  // 42 installs prune twice (at 33 and 42), dropping exactly the 18
  // origin-2 versions. The retained chain is all-visible; only the
  // PrunedSummary still knows a conflicting version existed.
  const auto version_of = [](SiteId origin, std::uint64_t seq) {
    store::Version v{};
    v.stamp.origin = origin;
    v.stamp.seq = seq;
    return v;
  };
  for (std::uint64_t s = 1; s <= 18; ++s) rig.install(obj, 2, s);
  for (std::uint64_t s = 1; s <= 24; ++s) rig.install(obj, 3, s);
  for (std::uint64_t s = 1; s <= 18; ++s) all.push_back(version_of(2, s));
  for (std::uint64_t s = 1; s <= 24; ++s) all.push_back(version_of(3, s));

  const auto* chain = rig.cluster.replica(0).db().chain(obj);
  ASSERT_NE(chain, nullptr);
  ASSERT_EQ(chain->size(), 24u) << "precondition: both prunes happened";
  ASSERT_EQ(chain->pruned().count, 18u);
  for (std::size_t i = 0; i < chain->size(); ++i)
    ASSERT_EQ(chain->at(i).stamp.origin, 3)
        << "precondition: every origin-2 version was pruned";

  // Snapshot sees all of origin 3 but nothing of origin 2.
  const auto t = rig.reader_txn(obj, {0, 0, 0, 30});
  EXPECT_FALSE(rig.unpruned_reference(t, all));
  EXPECT_FALSE(rig.certify(t))
      << "pruning must not flip the S-DUR verdict to commit";
}

TEST(SdurPrunedChain, AllVisibleDeepChainStillCommits) {
  SdurChainRig rig;
  const ObjectId obj = 0;
  for (std::uint64_t s = 1; s <= 42; ++s) rig.install(obj, 3, s);
  ASSERT_GT(rig.cluster.replica(0).db().chain(obj)->pruned().count, 0u);
  // Snapshot covers every version, pruned ones included: the conservative
  // prefix check must not manufacture a spurious abort.
  const auto t = rig.reader_txn(obj, {0, 0, 0, 50});
  EXPECT_TRUE(rig.certify(t));
}

// ---------------------------------------------------------------------------
// GDUR_VERIFY_CERT equivalence stress: indexed certification must answer
// exactly like the pairwise queue scan, for every vote, on every protocol,
// with deep queues under chaos faults. The cross-check runs inside
// Replica::queued_conflict and aborts the process on the first mismatch.
// ---------------------------------------------------------------------------

struct VerifyCertGuard {
  VerifyCertGuard() { core::set_verify_cert_for_testing(true); }
  ~VerifyCertGuard() { core::set_verify_cert_for_testing(std::nullopt); }
};

TEST(VerifyCertStress, IndexedVotesMatchPairwiseOnAllProtocolsUnderChaos) {
  VerifyCertGuard verify;
  const char* kNames[] = {"P-Store", "S-DUR",  "GMU",      "Serrano",
                          "Walter",  "Jessy2pc", "RC"};
  std::uint64_t total_txns = 0;
  std::uint64_t chaos_seed = 500;
  for (const char* name : kNames) {
    ++chaos_seed;
    core::ClusterConfig cfg;
    cfg.sites = 4;
    cfg.replication = 2;
    cfg.objects_per_site = 24;  // high contention => deep queues
    cfg.durable = true;
    cfg.term_timeout = milliseconds(500);
    cfg.client_timeout = seconds(2);
    cfg.faults = sim::FaultPlan::chaos(cfg.sites, seconds(3), chaos_seed);
    core::Cluster cluster(cfg, protocols::by_name(name));
    harness::Metrics metrics;
    std::vector<std::unique_ptr<workload::ClientActor>> actors;
    for (int i = 0; i < 24; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites),
          workload::WorkloadSpec::B(0.2), metrics,
          mix64(41'000 + static_cast<std::uint64_t>(i))));
      actors.back()->start(i * microseconds(373));
    }
    cluster.simulator().run_until(seconds(4));
    EXPECT_GT(metrics.committed(), 0u) << name;
    for (const auto& a : actors) total_txns += a->txns_run();
  }
  EXPECT_GE(total_txns, 5'000u)
      << "the stress must exercise at least 5k transactions";
}

}  // namespace
}  // namespace gdur

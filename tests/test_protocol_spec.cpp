// Tests for the plugin table: certifying_obj, vote scopes, commute
// predicates, and the six protocol definitions of §6.
#include <gtest/gtest.h>

#include "core/protocol_spec.h"
#include "protocols/protocols.h"

namespace gdur::core {
namespace {

TxnRecord update_txn() {
  TxnRecord t;
  t.id = {0, 1};
  t.rs = {1, 2};
  t.ws = {3};
  return t;
}

TxnRecord query_txn() {
  TxnRecord t;
  t.id = {0, 2};
  t.rs = {1, 2};
  return t;
}

TEST(CertifyingObjects, WaitFreeQueriesYieldEmptySet) {
  const store::Partitioner part(4, 1, 100);
  auto spec = protocols::walter();
  const auto cs = certifying_objects(spec, query_txn(), part);
  EXPECT_TRUE(cs.empty());
}

TEST(CertifyingObjects, PStoreCertifiesQueriesToo) {
  const store::Partitioner part(4, 1, 100);
  const auto spec = protocols::p_store();
  const auto cs = certifying_objects(spec, query_txn(), part);
  EXPECT_FALSE(cs.empty());
  EXPECT_EQ(cs.objs, (ObjSet{1, 2}));
}

TEST(CertifyingObjects, WriteSetScope) {
  const store::Partitioner part(4, 1, 100);
  const auto spec = protocols::walter();
  const auto cs = certifying_objects(spec, update_txn(), part);
  EXPECT_EQ(cs.objs, (ObjSet{3}));
}

TEST(CertifyingObjects, ReadWriteSetScope) {
  const store::Partitioner part(4, 1, 100);
  const auto spec = protocols::gmu();
  const auto cs = certifying_objects(spec, update_txn(), part);
  EXPECT_EQ(cs.objs, (ObjSet{1, 2, 3}));
}

TEST(CertifyingObjects, SerranoUsesAllObjects) {
  const store::Partitioner part(4, 1, 100);
  const auto spec = protocols::serrano();
  const auto cs = certifying_objects(spec, update_txn(), part);
  EXPECT_TRUE(cs.all);
  // ... but queries still commit locally.
  EXPECT_TRUE(certifying_objects(spec, query_txn(), part).empty());
}

TEST(CertifyingObjects, PStoreLaCommitsSingleSiteQueriesLocally) {
  const store::Partitioner part(4, 1, 100);
  const auto spec = protocols::p_store_la();
  TxnRecord local_q;
  local_q.rs = {0, 4};  // both in partition 0
  EXPECT_TRUE(certifying_objects(spec, local_q, part).empty());
  TxnRecord global_q;
  global_q.rs = {0, 1};  // partitions 0 and 1
  EXPECT_EQ(certifying_objects(spec, global_q, part).objs, (ObjSet{0, 1}));
  // Updates always certify.
  EXPECT_FALSE(certifying_objects(spec, update_txn(), part).empty());
}

TEST(VoteObjects, ScopesResolveCorrectly) {
  const auto t = update_txn();
  const CertifyingSet cs{.all = false, .objs = t.rs.unioned(t.ws)};
  EXPECT_EQ(vote_objects(VoteScope::kCertifying, cs, t), (ObjSet{1, 2, 3}));
  EXPECT_EQ(vote_objects(VoteScope::kWriteSet, cs, t), (ObjSet{3}));
  EXPECT_TRUE(vote_objects(VoteScope::kLocalObjects, cs, t).empty());
}

TEST(Commute, RwDisjoint) {
  TxnRecord a, b;
  a.rs = {1};
  a.ws = {2};
  b.rs = {3};
  b.ws = {4};
  EXPECT_TRUE(commute_rw_disjoint(a, b));
  b.ws = {1};  // b writes what a reads
  EXPECT_FALSE(commute_rw_disjoint(a, b));
  b.ws = {2};  // pure write-write overlap commutes under this predicate
  EXPECT_TRUE(commute_rw_disjoint(a, b));
}

TEST(Commute, WwDisjoint) {
  TxnRecord a, b;
  a.ws = {1, 2};
  b.ws = {3};
  EXPECT_TRUE(commute_ww_disjoint(a, b));
  b.ws = {2};
  EXPECT_FALSE(commute_ww_disjoint(a, b));
  // Read overlaps do not matter for snapshot-family protocols.
  b.ws = {3};
  b.rs = {1, 2};
  EXPECT_TRUE(commute_ww_disjoint(a, b));
}

TEST(ProtocolDefinitions, MatchThePaperTable) {
  using versioning::VersioningKind;
  const auto ps = protocols::p_store();
  EXPECT_EQ(ps.theta, VersioningKind::kTS);
  EXPECT_EQ(ps.choose, ChooseKind::kLast);
  EXPECT_EQ(ps.ac, AcKind::kGroupComm);
  EXPECT_FALSE(ps.wait_free_queries);

  const auto sd = protocols::s_dur();
  EXPECT_EQ(sd.theta, VersioningKind::kVTS);
  EXPECT_EQ(sd.xcast, XcastKind::kPairwiseMulticast);
  EXPECT_TRUE(sd.wait_free_queries);
  EXPECT_TRUE(static_cast<bool>(sd.post_commit));

  const auto g = protocols::gmu();
  EXPECT_EQ(g.theta, VersioningKind::kGMV);
  EXPECT_EQ(g.ac, AcKind::kTwoPhaseCommit);
  EXPECT_EQ(g.certifying, CertScope::kReadWriteSet);

  const auto se = protocols::serrano();
  EXPECT_EQ(se.theta, VersioningKind::kTS);
  EXPECT_EQ(se.xcast, XcastKind::kAtomicBroadcast);
  EXPECT_TRUE(se.track_all_objects);
  EXPECT_EQ(se.vote_snd, VoteScope::kLocalObjects);

  const auto w = protocols::walter();
  EXPECT_EQ(w.theta, VersioningKind::kVTS);
  EXPECT_EQ(w.ac, AcKind::kTwoPhaseCommit);
  EXPECT_EQ(w.certifying, CertScope::kWriteSet);
  EXPECT_TRUE(static_cast<bool>(w.post_commit));

  const auto j = protocols::jessy2pc();
  EXPECT_EQ(j.theta, VersioningKind::kPDV);
  EXPECT_EQ(j.certifying, CertScope::kWriteSet);
  EXPECT_FALSE(static_cast<bool>(j.post_commit));  // genuine: no propagation
}

TEST(ProtocolDefinitions, AblationsDifferOnlyWhereIntended) {
  const auto g = protocols::gmu();
  const auto g1 = protocols::gmu_star();
  const auto g2 = protocols::gmu_star_star();
  EXPECT_EQ(g1.choose, ChooseKind::kLast);
  EXPECT_TRUE(g1.send_metadata);
  EXPECT_EQ(g1.theta, g.theta);
  EXPECT_FALSE(g1.trivial_certify);
  EXPECT_TRUE(g2.trivial_certify);

  const auto rc = protocols::rc();
  EXPECT_FALSE(rc.send_metadata);
  EXPECT_TRUE(rc.trivial_certify);
}

TEST(ProtocolRegistry, ResolvesEveryName) {
  for (const char* name :
       {"P-Store", "S-DUR", "GMU", "Serrano", "Walter", "Jessy2pc", "RC",
        "GMU*", "GMU**", "P-Store-LA", "P-Store+2PC", "P-Store-FT"}) {
    EXPECT_EQ(protocols::by_name(name).name, name);
  }
  EXPECT_THROW(protocols::by_name("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace gdur::core

// Reconfiguration under the fault matrix (ISSUE: online elasticity).
//
// The fault-free join/retire paths are covered by test_membership.cpp;
// here the same changes must survive hostile schedules:
//
//   * a 10k-transaction run per protocol that joins one site and retires
//     another mid-run while links drop messages, a partition isolates the
//     retiree during its own retirement (so its votes arrive delayed, in
//     a later epoch), and an uninvolved member crashes and recovers;
//   * a coordinator that crashes right after durably logging (and only
//     partially announcing) a prepare — recovery must resume the change
//     long before the cluster-level retry would re-drive it;
//   * a joiner that crashes in the middle of state transfer — the
//     coordinator's prepare retries must restart the transfer after the
//     joiner recovers, and the join must still complete.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checker/history.h"
#include "core/cluster.h"
#include "core/membership.h"
#include "protocols/protocols.h"
#include "sim/fault.h"
#include "store/wal.h"
#include "workload/client.h"

namespace gdur {
namespace {

struct ProtocolCase {
  const char* name;
  const char* criterion;
};

const ProtocolCase kProtocols[] = {
    {"P-Store", "SER"}, {"S-DUR", "SER"},     {"GMU", "US"},
    {"Serrano", "SI"},  {"Walter", "PSI"},    {"Jessy2pc", "NMSI"},
    {"RC", "RC"},
};

struct ChaosRig {
  ChaosRig(const core::ProtocolSpec& spec, core::ClusterConfig cfg,
           int clients, SimDuration window)
      : cluster(cfg, spec) {
    history.attach(cluster);
    for (int i = 0; i < clients; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites),
          workload::WorkloadSpec::A(0.7), metrics,
          mix64(91'000 + static_cast<std::uint64_t>(i))));
      actors.back()->set_observer(
          [this](const core::TxnRecord& t, bool committed) {
            history.record_txn(t, committed, cluster.simulator().now());
          });
      actors.back()->start(i * microseconds(373));
    }
    cluster.simulator().run_until(window);
  }

  [[nodiscard]] std::uint64_t txns_run() const {
    std::uint64_t n = 0;
    for (const auto& a : actors) n += a->txns_run();
    return n;
  }
  [[nodiscard]] std::uint64_t resolved() const {
    return metrics.committed() + metrics.aborted() + metrics.txns_timed_out;
  }

  core::Cluster cluster;
  checker::History history;
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
};

core::ClusterConfig chaos_config() {
  core::ClusterConfig cfg;
  cfg.sites = 5;
  cfg.replication = 2;
  cfg.objects_per_site = 64;
  cfg.durable = true;
  cfg.term_timeout = milliseconds(500);
  cfg.client_timeout = seconds(2);
  return cfg;
}

// ---------------------------------------------------------------------------
// The headline matrix: every protocol, join + retire mid-run, under loss,
// a partition isolating the retiree, and a member crash.
// ---------------------------------------------------------------------------

class ReconfigChaos : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(ReconfigChaos, JoinAndRetireMidRunSurviveTheFaultMatrix) {
  auto cfg = chaos_config();
  // Epoch 1: site 4 joins (state transfer from live donors). Epoch 2: site 3
  // retires while a partition isolates it, so its certification votes for
  // still-open epoch-<=1 transactions arrive only after the heal, when the
  // cluster has already moved on to epoch 2.
  cfg.reconfig.start_with({0, 1, 2, 3})
      .join(4, milliseconds(400))
      .retire(3, milliseconds(1200));
  cfg.faults.drop_all(0.05);
  cfg.faults.partition({{0, 1, 2, 4}, {3}}, milliseconds(1000),
                       milliseconds(1500));
  cfg.faults.crash(1, milliseconds(900), milliseconds(1400));

  ChaosRig rig(protocols::by_name(GetParam().name), cfg, 64, seconds(10));

  EXPECT_GE(rig.txns_run(), 10'000u) << GetParam().name;
  EXPECT_LE(rig.txns_run() - rig.resolved(), rig.actors.size())
      << GetParam().name << ": transactions left hanging";
  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 2u) << GetParam().name;
  EXPECT_TRUE(rig.cluster.membership().latest().contains(4));
  EXPECT_FALSE(rig.cluster.membership().latest().contains(3));
  // Every final member — and the isolated-then-healed retiree — converged.
  for (SiteId s = 0; s < 5; ++s)
    EXPECT_EQ(rig.cluster.replica(s).epoch(), 2u)
        << GetParam().name << ": site " << s;
  EXPECT_GT(rig.metrics.committed(), 1'000u) << GetParam().name;
  const auto r = rig.history.check_criterion(GetParam().criterion);
  EXPECT_TRUE(r.ok) << GetParam().name << ": " << r.detail;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ReconfigChaos,
                         ::testing::ValuesIn(kProtocols),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// Crash-recovery regressions for the reconfiguration protocol itself.
// ---------------------------------------------------------------------------

// The coordinator durably logs its prepare, announces it to (at most) a few
// participants, and crashes. Nobody else may drive the epoch (the change is
// the coordinator's pending proposal), and the cluster-level re-drive only
// fires at ~vote_retry*32 after the action — well past this window. Only the
// coordinator's WAL-replay resume path can complete the retirement in time,
// so this test fails if recovery drops in-flight proposals on the floor.
TEST(ReconfigRecovery, CoordinatorCrashAfterPartialAnnounceResumes) {
  auto cfg = chaos_config();
  cfg.reconfig.retire(3, milliseconds(300));  // coordinator will be site 0
  cfg.faults.crash(0, milliseconds(320), milliseconds(800));

  ChaosRig rig(protocols::by_name("S-DUR"), cfg, 12, seconds(4));

  EXPECT_EQ(rig.cluster.replica(0).recoveries(), 1u);
  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 1u)
      << "recovered coordinator must resume the prepared retirement";
  EXPECT_FALSE(rig.cluster.membership().latest().contains(3));
  for (SiteId s = 0; s < 5; ++s)
    EXPECT_EQ(rig.cluster.replica(s).epoch(), 1u) << "site " << s;
  EXPECT_GT(rig.metrics.committed(), 100u);
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

// Same crash, but the run ends before the coordinator recovers: the
// retirement must *not* have taken effect anywhere — a half-announced
// prepare is not an agreed view.
TEST(ReconfigRecovery, HalfAnnouncedPrepareIsNotAnAgreedView) {
  auto cfg = chaos_config();
  cfg.reconfig.retire(3, milliseconds(300));
  cfg.faults.crash(0, milliseconds(320), seconds(30));  // never recovers here

  ChaosRig rig(protocols::by_name("RC"), cfg, 12, seconds(3));

  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 0u);
  for (SiteId s = 1; s < 5; ++s)
    EXPECT_EQ(rig.cluster.replica(s).epoch(), 0u) << "site " << s;
  const auto r = rig.history.check_criterion("RC");
  EXPECT_TRUE(r.ok) << r.detail;
}

// The joiner crashes mid state-transfer and loses everything it had copied.
// Each prepare retry restarts the transfer from scratch, so once the joiner
// recovers, a later round completes the snapshot + WAL-tail catch-up and the
// join still lands.
TEST(ReconfigRecovery, JoinerCrashMidTransferRetriesAndCompletes) {
  auto cfg = chaos_config();
  cfg.reconfig.start_with({0, 1, 2, 3}).join(4, milliseconds(300));
  cfg.faults.crash(4, milliseconds(320), milliseconds(900));

  ChaosRig rig(protocols::by_name("Walter"), cfg, 12, seconds(4));

  EXPECT_EQ(rig.cluster.replica(4).recoveries(), 1u);
  EXPECT_EQ(rig.cluster.membership().latest_epoch(), 1u)
      << "join must complete after the joiner recovers";
  EXPECT_TRUE(rig.cluster.membership().latest().contains(4));
  EXPECT_EQ(rig.cluster.replica(4).epoch(), 1u);
  EXPECT_GT(rig.cluster.replica(4).db().populated(), 0u)
      << "the restarted transfer must still populate the joiner";
  EXPECT_GT(rig.metrics.committed(), 100u);
  const auto r = rig.history.check_criterion("PSI");
  EXPECT_TRUE(r.ok) << r.detail;
}

}  // namespace
}  // namespace gdur

// Tests for the wire codec: round trips, malformed-input safety, and
// agreement with the analytic sizing helpers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/codec.h"
#include "net/wire.h"

namespace gdur::net::codec {
namespace {

TEST(Codec, VarintRoundTripsBoundaries) {
  Writer w;
  const std::uint64_t values[] = {0,    1,        127,        128,
                                  300,  16383,    16384,      (1ULL << 32),
                                  ~0ULL};
  for (auto v : values) w.varint(v);
  Reader r(w.data());
  for (auto v : values) {
    const auto got = r.varint();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, VarintIsCompact) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, FixedWidthRoundTrips) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
}

TEST(Codec, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));
  Reader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str()->size(), 1000u);
}

TEST(Codec, TruncatedInputYieldsNullopt) {
  Writer w;
  w.u64(7);
  std::vector<std::uint8_t> cut(w.data().begin(), w.data().begin() + 3);
  Reader r(cut);
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Codec, UnterminatedVarintYieldsNullopt) {
  std::vector<std::uint8_t> bad(12, 0xff);  // continuation bit forever
  Reader r(bad);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(Codec, StampRoundTrip) {
  versioning::Stamp s;
  s.origin = 3;
  s.seq = 123456;
  s.dep = {0, 5, 19, 1ULL << 40};
  Writer w;
  encode_stamp(w, s);
  Reader r(w.data());
  const auto got = decode_stamp(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->origin, s.origin);
  EXPECT_EQ(got->seq, s.seq);
  EXPECT_EQ(got->dep, s.dep);
}

TEST(Codec, SnapshotRoundTrip) {
  versioning::TxnSnapshot s;
  s.vts = {1, 2, 3, 4};
  s.floor = {0, 9};
  s.ceil = {5, versioning::kNoCeiling};
  s.start_seq = 77;
  Writer w;
  encode_snapshot(w, s);
  Reader r(w.data());
  const auto got = decode_snapshot(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->vts, s.vts);
  EXPECT_EQ(got->floor, s.floor);
  EXPECT_EQ(got->ceil, s.ceil);
  EXPECT_EQ(got->start_seq, s.start_seq);
}

core::TxnRecord sample_txn(std::uint64_t seed) {
  Rng rng(seed);
  core::TxnRecord t;
  t.id = {static_cast<SiteId>(rng.next_below(4)), rng.next_below(1000)};
  t.begin_time = static_cast<SimTime>(rng.next_below(1'000'000));
  t.submit_time = t.begin_time + 500;
  for (int i = 0; i < 3; ++i) t.rs.insert(rng.next_below(10'000));
  for (int i = 0; i < 2; ++i) t.ws.insert(rng.next_below(10'000));
  for (ObjectId o : t.rs) {
    t.reads.push_back({.obj = o,
                       .part = static_cast<PartitionId>(o % 4),
                       .writer = {1, rng.next_below(50)},
                       .pidx = rng.next_below(100)});
  }
  t.snap.floor = {1, 2, 3, 4};
  t.snap.ceil = {9, 9, 9, versioning::kNoCeiling};
  t.stamp = {.origin = t.id.coord, .seq = 5, .dep = {1, 2, 3, 4}};
  return t;
}

class TxnRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnRoundTrip, EncodeDecodeIsIdentity) {
  const auto t = sample_txn(GetParam());
  Writer w;
  encode_txn(w, t, /*payload=*/64);
  Reader r(w.data());
  const auto got = decode_txn(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->id, t.id);
  EXPECT_EQ(got->rs, t.rs);
  EXPECT_EQ(got->ws, t.ws);
  EXPECT_EQ(got->begin_time, t.begin_time);
  EXPECT_EQ(got->reads.size(), t.reads.size());
  for (std::size_t i = 0; i < t.reads.size(); ++i) {
    EXPECT_EQ(got->reads[i].obj, t.reads[i].obj);
    EXPECT_EQ(got->reads[i].writer, t.reads[i].writer);
    EXPECT_EQ(got->reads[i].pidx, t.reads[i].pidx);
  }
  EXPECT_EQ(got->snap.floor, t.snap.floor);
  EXPECT_EQ(got->stamp.dep, t.stamp.dep);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Codec, TxnSizeTracksPayloadAndSets) {
  const auto t = sample_txn(1);
  const auto small = encoded_txn_size(t, 0);
  const auto big = encoded_txn_size(t, 1024);
  // Each write carries its payload plus a slightly longer length varint.
  const auto delta = big - small;
  EXPECT_GE(delta, t.ws.size() * 1024);
  EXPECT_LE(delta, t.ws.size() * (1024 + 2));
}

TEST(Codec, AnalyticSizesAreSaneApproximations) {
  // net::wire's analytic sizes should be within ~2x of the real encoding
  // for typical transactions (they deliberately round up to stable framing).
  const auto t = sample_txn(2);
  const auto real = encoded_txn_size(t, wire::kPayload);
  const auto analytic =
      wire::termination(t.rs.size(), t.ws.size(), 8 * t.stamp.dep.size());
  EXPECT_LT(real, analytic * 2);
  EXPECT_GT(real * 2, analytic);
}

TEST(Codec, DecodeGarbageFailsCleanly) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    Reader r(junk);
    (void)decode_txn(r);  // must not crash or over-read
  }
  SUCCEED();
}

}  // namespace
}  // namespace gdur::net::codec

// Tests for the wire codec: round trips, malformed-input safety, and
// agreement with the analytic sizing helpers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/codec.h"
#include "net/wire.h"

namespace gdur::net::codec {
namespace {

TEST(Codec, VarintRoundTripsBoundaries) {
  Writer w;
  const std::uint64_t values[] = {0,    1,        127,        128,
                                  300,  16383,    16384,      (1ULL << 32),
                                  ~0ULL};
  for (auto v : values) w.varint(v);
  Reader r(w.data());
  for (auto v : values) {
    const auto got = r.varint();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, VarintIsCompact) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, FixedWidthRoundTrips) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
}

TEST(Codec, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));
  Reader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str()->size(), 1000u);
}

TEST(Codec, TruncatedInputYieldsNullopt) {
  Writer w;
  w.u64(7);
  std::vector<std::uint8_t> cut(w.data().begin(), w.data().begin() + 3);
  Reader r(cut);
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Codec, UnterminatedVarintYieldsNullopt) {
  std::vector<std::uint8_t> bad(12, 0xff);  // continuation bit forever
  Reader r(bad);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(Codec, StampRoundTrip) {
  versioning::Stamp s;
  s.origin = 3;
  s.seq = 123456;
  s.dep = {0, 5, 19, 1ULL << 40};
  Writer w;
  encode_stamp(w, s);
  Reader r(w.data());
  const auto got = decode_stamp(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->origin, s.origin);
  EXPECT_EQ(got->seq, s.seq);
  EXPECT_EQ(got->dep, s.dep);
}

TEST(Codec, SnapshotRoundTrip) {
  versioning::TxnSnapshot s;
  s.vts = {1, 2, 3, 4};
  s.floor = {0, 9};
  s.ceil = {5, versioning::kNoCeiling};
  s.start_seq = 77;
  Writer w;
  encode_snapshot(w, s);
  Reader r(w.data());
  const auto got = decode_snapshot(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->vts, s.vts);
  EXPECT_EQ(got->floor, s.floor);
  EXPECT_EQ(got->ceil, s.ceil);
  EXPECT_EQ(got->start_seq, s.start_seq);
}

core::TxnRecord sample_txn(std::uint64_t seed) {
  Rng rng(seed);
  core::TxnRecord t;
  t.id = {static_cast<SiteId>(rng.next_below(4)), rng.next_below(1000)};
  t.begin_time = static_cast<SimTime>(rng.next_below(1'000'000));
  t.submit_time = t.begin_time + 500;
  for (int i = 0; i < 3; ++i) t.rs.insert(rng.next_below(10'000));
  for (int i = 0; i < 2; ++i) t.ws.insert(rng.next_below(10'000));
  for (ObjectId o : t.rs) {
    t.reads.push_back({.obj = o,
                       .part = static_cast<PartitionId>(o % 4),
                       .writer = {1, rng.next_below(50)},
                       .pidx = rng.next_below(100)});
  }
  t.snap.floor = {1, 2, 3, 4};
  t.snap.ceil = {9, 9, 9, versioning::kNoCeiling};
  t.stamp = {.origin = t.id.coord, .seq = 5, .dep = {1, 2, 3, 4}};
  return t;
}

class TxnRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnRoundTrip, EncodeDecodeIsIdentity) {
  const auto t = sample_txn(GetParam());
  Writer w;
  encode_txn(w, t, /*payload=*/64);
  Reader r(w.data());
  const auto got = decode_txn(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->id, t.id);
  EXPECT_EQ(got->rs, t.rs);
  EXPECT_EQ(got->ws, t.ws);
  EXPECT_EQ(got->begin_time, t.begin_time);
  EXPECT_EQ(got->reads.size(), t.reads.size());
  for (std::size_t i = 0; i < t.reads.size(); ++i) {
    EXPECT_EQ(got->reads[i].obj, t.reads[i].obj);
    EXPECT_EQ(got->reads[i].writer, t.reads[i].writer);
    EXPECT_EQ(got->reads[i].pidx, t.reads[i].pidx);
  }
  EXPECT_EQ(got->snap.floor, t.snap.floor);
  EXPECT_EQ(got->stamp.dep, t.stamp.dep);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Codec, TxnSizeTracksPayloadAndSets) {
  const auto t = sample_txn(1);
  const auto small = encoded_txn_size(t, 0);
  const auto big = encoded_txn_size(t, 1024);
  // Each write carries its payload plus a slightly longer length varint.
  const auto delta = big - small;
  EXPECT_GE(delta, t.ws.size() * 1024);
  EXPECT_LE(delta, t.ws.size() * (1024 + 2));
}

TEST(Codec, AnalyticSizesAreSaneApproximations) {
  // net::wire's analytic sizes should be within ~2x of the real encoding
  // for typical transactions (they deliberately round up to stable framing).
  const auto t = sample_txn(2);
  const auto real = encoded_txn_size(t, wire::kPayload);
  const auto analytic =
      wire::termination(t.rs.size(), t.ws.size(), 8 * t.stamp.dep.size());
  EXPECT_LT(real, analytic * 2);
  EXPECT_GT(real * 2, analytic);
}

TEST(Codec, DecodeGarbageFailsCleanly) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    Reader r(junk);
    (void)decode_txn(r);  // must not crash or over-read
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Live message classes: byte-exact round trips, malformed-input rejection,
// and agreement with the analytic wire sizes — for EVERY class the live
// runtime puts on the wire.
// ---------------------------------------------------------------------------

versioning::Stamp sample_stamp(Rng& rng) {
  versioning::Stamp s;
  s.origin = static_cast<SiteId>(rng.next_below(16));
  s.seq = rng.next_below(1ULL << 40);
  const auto n = rng.next_below(6);
  for (std::uint64_t i = 0; i < n; ++i) s.dep.push_back(rng.next_below(1000));
  return s;
}

versioning::TxnSnapshot sample_snap(Rng& rng) {
  versioning::TxnSnapshot s;
  const auto n = 1 + rng.next_below(5);
  for (std::uint64_t i = 0; i < n; ++i) {
    s.vts.push_back(rng.next_below(500));
    s.floor.push_back(rng.next_below(500));
    s.ceil.push_back(rng.next_bool(0.3) ? versioning::kNoCeiling
                                        : rng.next_below(500));
  }
  s.start_seq = rng.next_below(1ULL << 30);
  return s;
}

store::Version sample_version(Rng& rng) {
  store::Version v;
  v.writer = {static_cast<SiteId>(rng.next_below(8)), rng.next_below(1 << 20)};
  v.pidx = rng.next_below(1 << 16);
  v.commit_time = static_cast<SimTime>(rng.next_below(1ULL << 40));
  v.stamp = sample_stamp(rng);
  return v;
}

void expect_stamp_eq(const versioning::Stamp& a, const versioning::Stamp& b) {
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.dep, b.dep);
}

/// Every strict prefix of a self-delimiting encoding must be rejected with
/// nullopt: the full decode consumes every byte, so a shorter buffer always
/// starves some field.
template <typename Decode>
void expect_prefixes_rejected(const std::vector<std::uint8_t>& full,
                              Decode decode) {
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> prefix(full.begin(),
                                     full.begin() + static_cast<long>(cut));
    Reader r(prefix);
    EXPECT_FALSE(decode(r).has_value()) << "prefix of " << cut << " bytes";
  }
}

/// Random single-bit corruption must never crash or over-read; a flip may
/// still decode (flipping a value bit changes the value, not the shape) —
/// the property under test is memory safety + clean rejection, verified
/// under ASan/UBSan in CI.
template <typename Decode>
void bitflip_fuzz(const std::vector<std::uint8_t>& full, Decode decode,
                  Rng& rng) {
  for (int trial = 0; trial < 64; ++trial) {
    auto bad = full;
    const auto bit = rng.next_below(bad.size() * 8);
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Reader r(bad);
    (void)decode(r);
  }
}

class LiveMsgRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiveMsgRoundTrip, VoteMsg) {
  Rng rng(GetParam());
  const VoteMsg m{{static_cast<SiteId>(rng.next_below(16)),
                   rng.next_below(1 << 20)},
                  static_cast<SiteId>(rng.next_below(16)),
                  rng.next_bool(0.5)};
  Writer w;
  encode_vote(w, m);
  Reader r(w.data());
  const auto got = decode_vote(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->txn, m.txn);
  EXPECT_EQ(got->voter, m.voter);
  EXPECT_EQ(got->vote, m.vote);
  expect_prefixes_rejected(w.data(), [](Reader& rr) { return decode_vote(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_vote(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, DecisionMsg) {
  Rng rng(GetParam());
  const DecisionMsg m{{static_cast<SiteId>(rng.next_below(16)),
                       rng.next_below(1 << 20)},
                      rng.next_bool(0.5)};
  Writer w;
  encode_decision(w, m);
  Reader r(w.data());
  const auto got = decode_decision(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->txn, m.txn);
  EXPECT_EQ(got->commit, m.commit);
  expect_prefixes_rejected(w.data(),
                           [](Reader& rr) { return decode_decision(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_decision(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, PaxosMsg) {
  Rng rng(GetParam());
  const PaxosMsg m{{static_cast<SiteId>(rng.next_below(16)),
                    rng.next_below(1 << 20)},
                   static_cast<SiteId>(rng.next_below(16)),
                   rng.next_bool(0.5),
                   static_cast<SiteId>(rng.next_below(16))};
  Writer w;
  encode_paxos(w, m);
  Reader r(w.data());
  const auto got = decode_paxos(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->txn, m.txn);
  EXPECT_EQ(got->participant, m.participant);
  EXPECT_EQ(got->vote, m.vote);
  EXPECT_EQ(got->acceptor, m.acceptor);
  expect_prefixes_rejected(w.data(),
                           [](Reader& rr) { return decode_paxos(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_paxos(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, ReadRequestMsg) {
  Rng rng(GetParam());
  ReadRequestMsg m;
  m.req = rng.next_below(1ULL << 40);
  m.requester = static_cast<SiteId>(rng.next_below(16));
  m.obj = rng.next_below(1 << 24);
  m.snap = sample_snap(rng);
  Writer w;
  encode_read_request(w, m);
  Reader r(w.data());
  const auto got = decode_read_request(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->req, m.req);
  EXPECT_EQ(got->requester, m.requester);
  EXPECT_EQ(got->obj, m.obj);
  EXPECT_EQ(got->snap.vts, m.snap.vts);
  EXPECT_EQ(got->snap.floor, m.snap.floor);
  EXPECT_EQ(got->snap.ceil, m.snap.ceil);
  EXPECT_EQ(got->snap.start_seq, m.snap.start_seq);
  expect_prefixes_rejected(
      w.data(), [](Reader& rr) { return decode_read_request(rr); });
  bitflip_fuzz(
      w.data(), [](Reader& rr) { return decode_read_request(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, ReadReplyMsg) {
  Rng rng(GetParam());
  ReadReplyMsg m;
  m.req = rng.next_below(1ULL << 40);
  m.ok = rng.next_bool(0.8);
  m.has_version = m.ok && rng.next_bool(0.7);
  if (m.has_version) {
    m.version = sample_version(rng);
    m.payload_bytes = 1 + rng.next_below(2048);
  }
  Writer w;
  encode_read_reply(w, m);
  Reader r(w.data());
  const auto got = decode_read_reply(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->req, m.req);
  EXPECT_EQ(got->ok, m.ok);
  EXPECT_EQ(got->has_version, m.has_version);
  if (m.has_version) {
    EXPECT_EQ(got->version.writer, m.version.writer);
    EXPECT_EQ(got->version.pidx, m.version.pidx);
    EXPECT_EQ(got->version.commit_time, m.version.commit_time);
    expect_stamp_eq(got->version.stamp, m.version.stamp);
    EXPECT_EQ(got->payload_bytes, m.payload_bytes);
  }
  expect_prefixes_rejected(w.data(),
                           [](Reader& rr) { return decode_read_reply(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_read_reply(rr); },
               rng);
}

TEST_P(LiveMsgRoundTrip, TermSubmitMsg) {
  Rng rng(GetParam());
  TermSubmitMsg m;
  const auto nd = 1 + rng.next_below(5);
  for (std::uint64_t i = 0; i < nd; ++i)
    m.dests.push_back(static_cast<SiteId>(rng.next_below(16)));
  m.txn = sample_txn(GetParam());
  Writer w;
  encode_term_submit(w, m, /*payload=*/128);
  Reader r(w.data());
  const auto got = decode_term_submit(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->dests, m.dests);
  EXPECT_EQ(got->txn.id, m.txn.id);
  EXPECT_EQ(got->txn.rs, m.txn.rs);
  EXPECT_EQ(got->txn.ws, m.txn.ws);
  expect_prefixes_rejected(
      w.data(), [](Reader& rr) { return decode_term_submit(rr); });
  bitflip_fuzz(
      w.data(), [](Reader& rr) { return decode_term_submit(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, PropagateMsg) {
  Rng rng(GetParam());
  PropagateMsg m;
  m.from = static_cast<SiteId>(rng.next_below(16));
  m.stamp = sample_stamp(rng);
  Writer w;
  encode_propagate(w, m);
  Reader r(w.data());
  const auto got = decode_propagate(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->from, m.from);
  expect_stamp_eq(got->stamp, m.stamp);
  expect_prefixes_rejected(w.data(),
                           [](Reader& rr) { return decode_propagate(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_propagate(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, ControlMsg) {
  Rng rng(GetParam());
  const ControlMsg m{rng.next_below(16), rng.next_below(1ULL << 32)};
  Writer w;
  encode_control(w, m);
  Reader r(w.data());
  const auto got = decode_control(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->kind, m.kind);
  EXPECT_EQ(got->arg, m.arg);
  expect_prefixes_rejected(w.data(),
                           [](Reader& rr) { return decode_control(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_control(rr); }, rng);
}

TEST_P(LiveMsgRoundTrip, VersionStandalone) {
  Rng rng(GetParam());
  const auto v = sample_version(rng);
  Writer w;
  encode_version(w, v);
  Reader r(w.data());
  const auto got = decode_version(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->writer, v.writer);
  EXPECT_EQ(got->pidx, v.pidx);
  EXPECT_EQ(got->commit_time, v.commit_time);
  expect_stamp_eq(got->stamp, v.stamp);
  expect_prefixes_rejected(w.data(),
                           [](Reader& rr) { return decode_version(rr); });
  bitflip_fuzz(w.data(), [](Reader& rr) { return decode_version(rr); }, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveMsgRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

TEST(Codec, BoolFieldsRejectNonBooleanBytes) {
  // Strict decoding: a vote/commit byte other than 0/1 is malformed, not
  // silently truthy.
  Writer w;
  encode_vote(w, {{1, 2}, 3, true});
  auto buf = w.data();
  buf[buf.size() - 1] = 2;  // vote byte is last
  Reader r(buf);
  EXPECT_FALSE(decode_vote(r).has_value());

  Writer w2;
  encode_decision(w2, {{1, 2}, false});
  auto buf2 = w2.data();
  buf2[buf2.size() - 1] = 0xff;
  Reader r2(buf2);
  EXPECT_FALSE(decode_decision(r2).has_value());
}

TEST(Codec, ReadReplyRejectsOverlongPayloadMarker) {
  ReadReplyMsg m;
  m.req = 1;
  m.ok = true;
  m.has_version = true;
  m.version = store::Version{};
  m.payload_bytes = 64;
  Writer w;
  encode_read_reply(w, m);
  // Truncate the payload bytes but keep the length marker: must reject.
  auto buf = w.data();
  buf.resize(buf.size() - 32);
  Reader r(buf);
  EXPECT_FALSE(decode_read_reply(r).has_value());
}

// ---------------------------------------------------------------------------
// Wire-size honesty: net::wire's analytic sizes vs the real codec encodings
// for every message class — including the classes the termination-only
// check above does not cover.
// ---------------------------------------------------------------------------

TEST(WireSizes, VoteDecisionControlBracketRealEncodings) {
  // What actually hits the socket per message: 4-byte length prefix +
  // 1-byte type tag + codec body (src/live/event_loop).
  constexpr std::uint64_t kFraming = 5;
  Rng rng(7);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Writer wv;
    encode_vote(wv, {{static_cast<SiteId>(seed % 4), seed * 97}, 2, true});
    // Analytic sizes model the paper's Java serialization framing (kHeader
    // = 48 bytes of envelope); the varint codec is tighter. The analytic
    // size must never undercount, and must stay within one order of
    // magnitude (8x) so message-complexity accounting stays meaningful.
    EXPECT_LE(wv.size() + kFraming, wire::vote());
    EXPECT_LE(wire::vote(), (wv.size() + kFraming) * 8);

    Writer wd;
    encode_decision(wd, {{static_cast<SiteId>(seed % 4), seed * 131}, false});
    EXPECT_LE(wd.size() + kFraming, wire::decision());
    EXPECT_LE(wire::decision(), (wd.size() + kFraming) * 8);

    Writer wc;
    encode_control(wc, {seed, rng.next_below(1 << 30)});
    EXPECT_LE(wc.size() + kFraming, wire::control());
    EXPECT_LE(wire::control(), (wc.size() + kFraming) * 8);

    Writer wp;
    encode_paxos(wp, {{static_cast<SiteId>(seed % 4), seed * 11}, 1, true, 2});
    // Paxos messages are accounted as votes by the transport.
    EXPECT_LE(wp.size() + kFraming, wire::vote());
    EXPECT_LE(wire::vote(), (wp.size() + kFraming) * 8);
  }
}

TEST(WireSizes, ReadRequestBracketsRealEncoding) {
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    ReadRequestMsg m;
    m.req = rng.next_below(1ULL << 32);
    m.requester = static_cast<SiteId>(rng.next_below(8));
    m.obj = rng.next_below(1 << 24);
    m.snap = sample_snap(rng);
    Writer w;
    encode_read_request(w, m);
    // The sim charges read_request() + oracle metadata; the snapshot *is*
    // that metadata (8 bytes per vector entry in the analytic model).
    const auto meta =
        8 * (m.snap.vts.size() + m.snap.floor.size() + m.snap.ceil.size());
    const auto analytic = wire::read_request() + meta;
    EXPECT_LE(w.size(), analytic);
    EXPECT_LE(analytic, w.size() * 8);
  }
}

TEST(WireSizes, ReadReplyWithPayloadWithinTwoXofAnalytic) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    ReadReplyMsg m;
    m.req = rng.next_below(1ULL << 32);
    m.ok = true;
    m.has_version = true;
    m.version = sample_version(rng);
    m.payload_bytes = wire::kPayload;
    Writer w;
    encode_read_reply(w, m);
    const auto meta = 8 * m.version.stamp.dep.size();
    const auto analytic = wire::read_reply(meta);
    // Payload dominates both sides, so the bound tightens to 2x.
    EXPECT_LT(w.size(), analytic * 2);
    EXPECT_GT(w.size() * 2, analytic);
  }
}

TEST(WireSizes, TerminationWithinTwoXForAllSeeds) {
  // Closes the sampling gap of AnalyticSizesAreSaneApproximations (one
  // seed): the 2x bracket holds across the whole sample family.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto t = sample_txn(seed);
    const auto real = encoded_txn_size(t, wire::kPayload);
    const auto analytic =
        wire::termination(t.rs.size(), t.ws.size(), 8 * t.stamp.dep.size());
    EXPECT_LT(real, analytic * 2) << "seed " << seed;
    EXPECT_GT(real * 2, analytic) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Client protocol frames (front door, MsgTypes 32-36) and kBatch: byte-exact
// round trips, truncation-anywhere rejection, garbage-fuzz safety. These
// frames cross a trust boundary — arbitrary processes can dial the front
// door — so the honesty contract (nullopt on any malformed byte, never a
// crash or over-read) is load-bearing, not hygiene.
// ---------------------------------------------------------------------------

ClientReqMsg sample_req(Rng& rng) {
  ClientReqMsg m;
  m.cookie = rng.next_below(1ULL << 50);
  m.op = static_cast<ClientOp>(1 + rng.next_below(5));
  m.txn = rng.next_below(1ULL << 40);
  m.obj = rng.next_below(1 << 24);
  const auto nr = rng.next_below(5);
  for (std::uint64_t i = 0; i < nr; ++i)
    m.reads.push_back(rng.next_below(10'000));
  const auto nw = rng.next_below(4);
  for (std::uint64_t i = 0; i < nw; ++i)
    m.writes.push_back(rng.next_below(10'000));
  return m;
}

TEST(ClientCodec, HelloRoundTrip) {
  ClientHelloMsg m;
  m.version = 1;
  m.site_hint = 2;
  Writer w;
  encode_client_hello(w, m);
  Reader r(w.data());
  const auto got = decode_client_hello(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->version, m.version);
  EXPECT_EQ(got->site_hint, m.site_hint);
}

TEST(ClientCodec, WelcomeRoundTrip) {
  ClientWelcomeMsg m;
  m.session = 0xfeedbeef12ULL;
  m.window = 64;
  m.site = 1;
  m.protocol = "Walter";
  Writer w;
  encode_client_welcome(w, m);
  Reader r(w.data());
  const auto got = decode_client_welcome(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->session, m.session);
  EXPECT_EQ(got->window, m.window);
  EXPECT_EQ(got->site, m.site);
  EXPECT_EQ(got->protocol, m.protocol);
}

TEST(ClientCodec, ReqRoundTripAllOps) {
  Rng rng(23);
  for (int trial = 0; trial < 32; ++trial) {
    const auto m = sample_req(rng);
    Writer w;
    encode_client_req(w, m);
    Reader r(w.data());
    const auto got = decode_client_req(r);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(got->cookie, m.cookie);
    EXPECT_EQ(got->op, m.op);
    EXPECT_EQ(got->txn, m.txn);
    EXPECT_EQ(got->obj, m.obj);
    EXPECT_EQ(got->reads, m.reads);
    EXPECT_EQ(got->writes, m.writes);
  }
}

TEST(ClientCodec, RespAndPushbackRoundTrip) {
  ClientRespMsg m;
  m.cookie = 99;
  m.op = ClientOp::kCommit;
  m.ok = true;
  m.txn = 1234;
  m.payload_bytes = 4096;
  Writer w;
  encode_client_resp(w, m);
  Reader r(w.data());
  const auto got = decode_client_resp(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(got->cookie, m.cookie);
  EXPECT_EQ(got->op, m.op);
  EXPECT_EQ(got->ok, m.ok);
  EXPECT_EQ(got->txn, m.txn);
  EXPECT_EQ(got->payload_bytes, m.payload_bytes);

  PushbackMsg p;
  p.stop = true;
  p.depth = 777;
  Writer wp;
  encode_pushback(wp, p);
  Reader rp(wp.data());
  const auto gp = decode_pushback(rp);
  ASSERT_TRUE(gp.has_value());
  EXPECT_TRUE(rp.exhausted());
  EXPECT_EQ(gp->stop, p.stop);
  EXPECT_EQ(gp->depth, p.depth);
}

TEST(ClientCodec, TruncationAnywhereYieldsNullopt) {
  // Every strict prefix of every client frame must decode to nullopt:
  // the wire-honesty contract, checked exhaustively, not at sampled cut
  // points.
  Rng rng(29);
  ClientHelloMsg h;
  h.site_hint = 3;
  ClientWelcomeMsg wl;
  wl.session = 1;
  wl.window = 8;
  wl.protocol = "GMU";
  const auto req = sample_req(rng);
  ClientRespMsg resp;
  resp.cookie = 5;
  resp.ok = true;
  resp.payload_bytes = 64;
  PushbackMsg pb;
  pb.stop = true;
  pb.depth = 3;

  Writer wh, ww, wr, ws, wp;
  encode_client_hello(wh, h);
  encode_client_welcome(ww, wl);
  encode_client_req(wr, req);
  encode_client_resp(ws, resp);
  encode_pushback(wp, pb);

  auto expect_prefixes_fail = [](const std::vector<std::uint8_t>& full,
                                 auto decode, const char* what) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::vector<std::uint8_t> pre(full.begin(),
                                    full.begin() + static_cast<long>(cut));
      Reader r(pre);
      EXPECT_FALSE(decode(r).has_value()) << what << " cut=" << cut;
    }
  };
  expect_prefixes_fail(wh.data(), [](Reader& r) {
    return decode_client_hello(r);
  }, "hello");
  expect_prefixes_fail(ww.data(), [](Reader& r) {
    return decode_client_welcome(r);
  }, "welcome");
  expect_prefixes_fail(wr.data(), [](Reader& r) {
    return decode_client_req(r);
  }, "req");
  expect_prefixes_fail(ws.data(), [](Reader& r) {
    return decode_client_resp(r);
  }, "resp");
  expect_prefixes_fail(wp.data(), [](Reader& r) {
    return decode_pushback(r);
  }, "pushback");
}

TEST(ClientCodec, GarbageFuzzNeverCrashes) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(48));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    {
      Reader r(junk);
      (void)decode_client_hello(r);
    }
    {
      Reader r(junk);
      (void)decode_client_welcome(r);
    }
    {
      Reader r(junk);
      (void)decode_client_req(r);
    }
    {
      Reader r(junk);
      (void)decode_client_resp(r);
    }
    {
      Reader r(junk);
      (void)decode_pushback(r);
    }
    {
      Reader r(junk);
      (void)decode_batch(r);
    }
  }
  SUCCEED();
}

std::vector<std::uint8_t> tagged_vote_frame(Rng& rng) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kVote));
  encode_vote(w, {{static_cast<SiteId>(rng.next_below(4)),
                   rng.next_below(1000)},
                  static_cast<SiteId>(rng.next_below(4)),
                  rng.next_bool(0.5)});
  return w.data();
}

TEST(BatchCodec, RoundTripPreservesOrderAndBytes) {
  Rng rng(37);
  std::vector<std::vector<std::uint8_t>> items;
  for (int i = 0; i < 17; ++i) items.push_back(tagged_vote_frame(rng));
  Writer w;
  encode_batch(w, items);
  Reader r(w.data());
  const auto got = decode_batch(r);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(*got, items);  // byte-exact, order preserved
}

TEST(BatchCodec, RejectsNestedBatchAndEmptyItems) {
  Rng rng(41);
  // An inner frame tagged kBatch is a protocol error (recursion hazard).
  std::vector<std::vector<std::uint8_t>> nested;
  nested.push_back(tagged_vote_frame(rng));
  nested.push_back({static_cast<std::uint8_t>(MsgType::kBatch), 1, 1, 0});
  Writer wn;
  encode_batch(wn, nested);
  Reader rn(wn.data());
  EXPECT_FALSE(decode_batch(rn).has_value());

  // Zero-length items are rejected too.
  std::vector<std::vector<std::uint8_t>> empty_item;
  empty_item.push_back({});
  Writer we;
  encode_batch(we, empty_item);
  Reader re(we.data());
  EXPECT_FALSE(decode_batch(re).has_value());
}

TEST(BatchCodec, TruncationAnywhereYieldsNullopt) {
  Rng rng(43);
  std::vector<std::vector<std::uint8_t>> items;
  for (int i = 0; i < 3; ++i) items.push_back(tagged_vote_frame(rng));
  Writer w;
  encode_batch(w, items);
  const auto& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> pre(full.begin(),
                                  full.begin() + static_cast<long>(cut));
    Reader r(pre);
    EXPECT_FALSE(decode_batch(r).has_value()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace gdur::net::codec

// Integration tests for the G-DUR engine: the execution and termination
// protocols under controlled scenarios, per commitment family.
#include <gtest/gtest.h>

#include <optional>

#include "core/cluster.h"
#include "protocols/protocols.h"

namespace gdur::core {
namespace {

ClusterConfig small_config(int sites = 4, int rf = 1) {
  ClusterConfig cfg;
  cfg.sites = sites;
  cfg.replication = rf;
  cfg.objects_per_site = 100;
  return cfg;
}

/// Runs one whole transaction to completion; blocks the simulator until the
/// outcome is known. Returns nullopt if the transaction failed during the
/// execution phase.
std::optional<bool> run_txn(Cluster& cl, SiteId coord,
                            const std::vector<ObjectId>& reads,
                            const std::vector<ObjectId>& writes,
                            SimTime start = 0) {
  auto result = std::make_shared<std::optional<bool>>();
  cl.simulator().at(start, [&cl, coord, reads, writes, result] {
    cl.begin(coord, [&cl, coord, reads, writes, result](MutTxnPtr t) {
      auto step = std::make_shared<std::function<void(std::size_t)>>();
      *step = [&cl, coord, reads, writes, result, t, step](std::size_t i) {
        if (i < reads.size()) {
          cl.read(coord, t, reads[i], [result, step, i](bool ok) {
            if (!ok) {
              *result = std::nullopt;
              (*step)(~std::size_t{0});  // sentinel: stop
              return;
            }
            (*step)(i + 1);
          });
        } else if (i == ~std::size_t{0}) {
          // execution failure already recorded
        } else if (i - reads.size() < writes.size()) {
          cl.write(coord, t, writes[i - reads.size()],
                   [step, i] { (*step)(i + 1); });
        } else {
          cl.commit(coord, t, [result](bool ok) { *result = ok; });
        }
      };
      (*step)(0);
    });
  });
  cl.simulator().run();
  return *result;
}

/// All protocol names exercised by the engine tests.
class AllProtocols : public ::testing::TestWithParam<const char*> {};

TEST_P(AllProtocols, SingleUpdateTransactionCommits) {
  Cluster cl(small_config(), protocols::by_name(GetParam()));
  // Object 1 lives at site 1; object 2 at site 2; coordinator is site 0.
  const auto r = run_txn(cl, 0, {1}, {2});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
  // The write is installed at every replica of object 2.
  for (SiteId s : cl.partitioner().replicas_of_object(2))
    EXPECT_GT(cl.replica(s).latest_pidx(2), 0u);
}

TEST_P(AllProtocols, ReadOnlyTransactionCommits) {
  Cluster cl(small_config(), protocols::by_name(GetParam()));
  const auto r = run_txn(cl, 0, {1, 2}, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(*r);
}

TEST_P(AllProtocols, SequentialConflictingWritersBothCommit) {
  Cluster cl(small_config(), protocols::by_name(GetParam()));
  EXPECT_EQ(run_txn(cl, 0, {}, {1}), std::optional<bool>(true));
  // The second writer starts long after the first committed.
  EXPECT_EQ(run_txn(cl, 2, {}, {1}, seconds(1)), std::optional<bool>(true));
}

TEST_P(AllProtocols, ReadObservesCommittedWrite) {
  Cluster cl(small_config(), protocols::by_name(GetParam()));
  ASSERT_EQ(run_txn(cl, 0, {}, {5}), std::optional<bool>(true));
  // A later reader (fresh cluster time) sees a non-initial version.
  bool saw_version = false;
  cl.simulator().at(seconds(1), [&] {
    cl.begin(1, [&](MutTxnPtr t) {
      cl.read(1, t, 5, [&, t](bool ok) {
        ASSERT_TRUE(ok);
        saw_version = !t->reads.empty() && t->reads[0].writer.valid();
      });
    });
  });
  cl.simulator().run();
  EXPECT_TRUE(saw_version);
}

INSTANTIATE_TEST_SUITE_P(Engine, AllProtocols,
                         ::testing::Values("P-Store", "S-DUR", "GMU",
                                           "Serrano", "Walter", "Jessy2pc",
                                           "RC", "GMU*", "GMU**", "P-Store-LA",
                                           "P-Store+2PC", "P-Store-FT"));

/// Protocols × replication factor: DT mode must behave identically at the
/// API level.
class DtProtocols : public ::testing::TestWithParam<const char*> {};

TEST_P(DtProtocols, UpdateCommitsAndReplicatesTwice) {
  Cluster cl(small_config(4, 2), protocols::by_name(GetParam()));
  ASSERT_EQ(run_txn(cl, 0, {1}, {2}), std::optional<bool>(true));
  const auto replicas = cl.partitioner().replicas_of_object(2);
  ASSERT_EQ(replicas.size(), 2u);
  for (SiteId s : replicas) EXPECT_GT(cl.replica(s).latest_pidx(2), 0u);
}

INSTANTIATE_TEST_SUITE_P(Engine, DtProtocols,
                         ::testing::Values("P-Store", "S-DUR", "GMU",
                                           "Serrano", "Walter", "Jessy2pc",
                                           "RC"));

// ---------------------------------------------------------------------------
// Conflict handling.
// ---------------------------------------------------------------------------

TEST(Conflicts, StaleWriterAbortsUnderWwProtocols) {
  for (const char* name : {"Walter", "Jessy2pc", "Serrano"}) {
    Cluster cl(small_config(), protocols::by_name(name));
    // T2 begins at time 0 (snapshot excludes everything), then T1 writes x
    // and commits, then T2 writes x: T2 must abort.
    auto t2_result = std::make_shared<std::optional<bool>>();
    auto t2 = std::make_shared<MutTxnPtr>();
    cl.simulator().at(0, [&cl, t2] {
      cl.begin(1, [t2](MutTxnPtr t) { *t2 = std::move(t); });
    });
    ASSERT_EQ(run_txn(cl, 0, {}, {2}, milliseconds(50)),
              std::optional<bool>(true))
        << name;
    cl.simulator().at(milliseconds(500), [&cl, t2, t2_result] {
      cl.write(1, *t2, 2, [&cl, t2, t2_result] {
        cl.commit(1, *t2, [t2_result](bool ok) { *t2_result = ok; });
      });
    });
    cl.simulator().run();
    ASSERT_TRUE(t2_result->has_value()) << name;
    EXPECT_FALSE(**t2_result) << name << ": stale concurrent writer must abort";
  }
}

TEST(Conflicts, StaleReaderAbortsUnderSerProtocols) {
  for (const char* name : {"P-Store", "GMU", "S-DUR", "P-Store+2PC"}) {
    Cluster cl(small_config(), protocols::by_name(name));
    // T2 reads x, then T1 overwrites x and commits, then T2 writes y and
    // tries to commit: its read is stale, so SER/US certification aborts it.
    auto t2_result = std::make_shared<std::optional<bool>>();
    auto t2 = std::make_shared<MutTxnPtr>();
    cl.simulator().at(0, [&cl, t2] {
      cl.begin(1, [&cl, t2](MutTxnPtr t) {
        *t2 = t;
        cl.read(1, t, 2, [](bool) {});
      });
    });
    ASSERT_EQ(run_txn(cl, 0, {}, {2}, milliseconds(100)),
              std::optional<bool>(true))
        << name;
    cl.simulator().at(milliseconds(600), [&cl, t2, t2_result] {
      cl.write(1, *t2, 3, [&cl, t2, t2_result] {
        cl.commit(1, *t2, [t2_result](bool ok) { *t2_result = ok; });
      });
    });
    cl.simulator().run();
    ASSERT_TRUE(t2_result->has_value()) << name;
    EXPECT_FALSE(**t2_result) << name << ": stale reader must abort";
  }
}

TEST(Conflicts, StaleReaderCommitsUnderWwOnlyProtocols) {
  // Walter/Jessy certify only writes: a stale read with a disjoint write
  // set commits (that is exactly the write-skew permissiveness of the
  // snapshot family).
  for (const char* name : {"Walter", "Jessy2pc", "RC"}) {
    Cluster cl(small_config(), protocols::by_name(name));
    auto t2_result = std::make_shared<std::optional<bool>>();
    auto t2 = std::make_shared<MutTxnPtr>();
    cl.simulator().at(0, [&cl, t2] {
      cl.begin(1, [&cl, t2](MutTxnPtr t) {
        *t2 = t;
        cl.read(1, t, 2, [](bool) {});
      });
    });
    ASSERT_EQ(run_txn(cl, 0, {}, {2}, milliseconds(100)),
              std::optional<bool>(true))
        << name;
    cl.simulator().at(milliseconds(600), [&cl, t2, t2_result] {
      cl.write(1, *t2, 3, [&cl, t2, t2_result] {
        cl.commit(1, *t2, [t2_result](bool ok) { *t2_result = ok; });
      });
    });
    cl.simulator().run();
    ASSERT_TRUE(t2_result->has_value()) << name;
    EXPECT_TRUE(**t2_result) << name;
  }
}

TEST(Conflicts, SimultaneousConflictingSubmissions) {
  // Under GC (a priori order) exactly one of two rw-conflicting
  // transactions commits; under 2PC both may preemptively abort, but never
  // do both commit.
  for (const char* name : {"P-Store", "P-Store+2PC", "GMU"}) {
    Cluster cl(small_config(), protocols::by_name(name));
    int committed = 0, aborted = 0;
    auto launch = [&](SiteId coord, ObjectId rd, ObjectId wr) {
      cl.simulator().at(0, [&cl, &committed, &aborted, coord, rd, wr] {
        cl.begin(coord, [&cl, &committed, &aborted, coord, rd, wr](MutTxnPtr t) {
          cl.read(coord, t, rd, [&cl, &committed, &aborted, coord, wr,
                                 t](bool ok) {
            ASSERT_TRUE(ok);
            cl.write(coord, t, wr, [&cl, &committed, &aborted, coord, t] {
              cl.commit(coord, t, [&committed, &aborted](bool ok2) {
                (ok2 ? committed : aborted)++;
              });
            });
          });
        });
      });
    };
    launch(0, /*read*/ 1, /*write*/ 2);
    launch(3, /*read*/ 2, /*write*/ 1);
    cl.simulator().run();
    EXPECT_EQ(committed + aborted, 2) << name;
    EXPECT_LE(committed, 1) << name << ": rw-conflicting pair cannot both commit";
    if (std::string(name) == "P-Store") {
      // A priori ordering resolves the conflict in favor of one of them.
      EXPECT_EQ(committed, 1) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Structural behaviors.
// ---------------------------------------------------------------------------

TEST(Engine, WaitFreeQueriesAreFasterThanCertifiedOnes) {
  const auto measure_query = [](const ProtocolSpec& spec) {
    Cluster cl(small_config(), spec);
    SimTime committed_at = 0;
    cl.simulator().at(0, [&] {
      cl.begin(0, [&](MutTxnPtr t) {
        cl.read(0, t, 1, [&, t](bool) {
          cl.commit(0, t, [&](bool ok) {
            ASSERT_TRUE(ok);
            committed_at = cl.simulator().now();
          });
        });
      });
    });
    cl.simulator().run();
    return committed_at;
  };
  const SimTime walter = measure_query(protocols::walter());
  const SimTime p_store = measure_query(protocols::p_store());
  // Walter's query commits locally; P-Store's goes through AM-Cast.
  EXPECT_LT(walter, p_store - milliseconds(15));
}

TEST(Engine, ReadYourOwnWriteIsLocal) {
  Cluster cl(small_config(), protocols::jessy2pc());
  bool read_ok = false;
  SimTime read_done = 0;
  cl.simulator().at(0, [&] {
    cl.begin(0, [&](MutTxnPtr t) {
      // Object 1 is NOT local to site 0, but after writing it the read is
      // served from the write buffer without any remote hop.
      cl.write(0, t, 1, [&, t] {
        const SimTime before = cl.simulator().now();
        cl.read(0, t, 1, [&, before](bool ok) {
          read_ok = ok;
          read_done = cl.simulator().now() - before;
        });
      });
    });
  });
  cl.simulator().run();
  EXPECT_TRUE(read_ok);
  EXPECT_LT(read_done, milliseconds(5));  // just the client round trip
}

TEST(Engine, RemoteReadReturnsVersionData) {
  Cluster cl(small_config(), protocols::gmu());
  ASSERT_EQ(run_txn(cl, 1, {}, {2}), std::optional<bool>(true));
  // Coordinator 0 reads object 2 (hosted at site 2): remote read.
  std::optional<ReadEntry> entry;
  cl.simulator().at(seconds(1), [&] {
    cl.begin(0, [&](MutTxnPtr t) {
      cl.read(0, t, 2, [&, t](bool ok) {
        ASSERT_TRUE(ok);
        entry = t->reads.at(0);
      });
    });
  });
  cl.simulator().run();
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->obj, 2u);
  EXPECT_TRUE(entry->writer.valid());
  EXPECT_GT(entry->pidx, 0u);
}

TEST(Engine, SerranoIndexIsConsistentAcrossSites) {
  Cluster cl(small_config(), protocols::serrano());
  ASSERT_EQ(run_txn(cl, 0, {}, {1}), std::optional<bool>(true));
  ASSERT_EQ(run_txn(cl, 2, {}, {1}, milliseconds(300)),
            std::optional<bool>(true));
  cl.simulator().run();
  const auto expected = cl.replica(0).latest_seq_of(1);
  EXPECT_GT(expected, 0u);
  for (SiteId s = 1; s < 4; ++s)
    EXPECT_EQ(cl.replica(s).latest_seq_of(1), expected) << "site " << s;
}

TEST(Engine, WalterPropagationMakesRemoteWritesVisible) {
  Cluster cl(small_config(), protocols::walter());
  // Site 0 coordinates a write to object 1 (hosted at site 1).
  ASSERT_EQ(run_txn(cl, 0, {}, {1}), std::optional<bool>(true));
  // Much later, a transaction starting at site 3 (neither coordinator nor
  // write replica) must see the new version thanks to background
  // propagation of the version vector.
  std::optional<ReadEntry> entry;
  cl.simulator().at(seconds(2), [&] {
    cl.begin(3, [&](MutTxnPtr t) {
      cl.read(3, t, 1, [&, t](bool ok) {
        ASSERT_TRUE(ok);
        entry = t->reads.at(0);
      });
    });
  });
  cl.simulator().run();
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->writer.valid()) << "stale read despite propagation";
}

TEST(Engine, CoordinatorNeedNotReplicateAnything) {
  // All objects read and written live on other sites.
  for (const char* name : {"P-Store", "Walter", "Serrano"}) {
    Cluster cl(small_config(), protocols::by_name(name));
    EXPECT_EQ(run_txn(cl, 0, {1, 2}, {3}), std::optional<bool>(true)) << name;
  }
}

TEST(Engine, TwoPcTerminationIsFasterThanAbCast) {
  const auto term_latency = [](const ProtocolSpec& spec) {
    Cluster cl(small_config(), spec);
    SimTime submit = 0, done = 0;
    cl.simulator().at(0, [&] {
      cl.begin(0, [&](MutTxnPtr t) {
        cl.write(0, t, 1, [&, t] {
          submit = cl.simulator().now();
          cl.commit(0, t, [&](bool ok) {
            ASSERT_TRUE(ok);
            done = cl.simulator().now();
          });
        });
      });
    });
    cl.simulator().run();
    return done - submit;
  };
  EXPECT_LT(term_latency(protocols::jessy2pc()),
            term_latency(protocols::serrano()));
}

// record_read must be idempotent per object: a transaction that re-reads an
// object keeps ONE ReadEntry, updated to the version the re-read observed.
// Before the fix, every re-read appended a duplicate — certifiers re-checked
// the stale entry and read_of() answered with whichever came first.
TEST(RepeatedRead, LocalReReadKeepsOneEntryWithLatestVersion) {
  Cluster cl(small_config(), protocols::by_name("P-Store"));
  // Object 4 lives at coordinator site 0: both reads take the local path.
  ASSERT_EQ(run_txn(cl, 0, {}, {4}), std::optional<bool>(true));

  MutTxnPtr reader;
  int reads_ok = 0;
  cl.simulator().at(seconds(1), [&] {
    cl.begin(0, [&](MutTxnPtr t) {
      reader = t;
      cl.read(0, t, 4, [&](bool ok) { reads_ok += ok ? 1 : 0; });
    });
  });
  // A writer commits a second version of object 4 between the two reads.
  cl.simulator().at(seconds(2), [&] {
    cl.begin(0, [&](MutTxnPtr t) {
      cl.write(0, t, 4, [&cl, t] { cl.commit(0, t, [](bool) {}); });
    });
  });
  cl.simulator().at(seconds(3), [&] {
    cl.read(0, reader, 4, [&](bool ok) { reads_ok += ok ? 1 : 0; });
  });
  cl.simulator().run();

  ASSERT_EQ(reads_ok, 2);
  ASSERT_EQ(reader->reads.size(), 1u);  // no duplicate entry
  EXPECT_EQ(reader->reads[0].obj, ObjectId(4));
  // P-Store chooses the last committed version, so the re-read observed the
  // writer's install and the single entry must carry it.
  EXPECT_EQ(reader->reads[0].pidx, cl.replica(0).latest_pidx(4));
  EXPECT_EQ(reader->rs.size(), 1u);
}

TEST(RepeatedRead, RemoteReReadKeepsOneEntryWithLatestVersion) {
  Cluster cl(small_config(), protocols::by_name("P-Store"));
  // Object 5 lives at site 1: reads from coordinator 0 take the remote path.
  ASSERT_EQ(run_txn(cl, 1, {}, {5}), std::optional<bool>(true));

  MutTxnPtr reader;
  int reads_ok = 0;
  cl.simulator().at(seconds(1), [&] {
    cl.begin(0, [&](MutTxnPtr t) {
      reader = t;
      cl.read(0, t, 5, [&](bool ok) { reads_ok += ok ? 1 : 0; });
    });
  });
  cl.simulator().at(seconds(2), [&] {
    cl.begin(1, [&](MutTxnPtr t) {
      cl.write(1, t, 5, [&cl, t] { cl.commit(1, t, [](bool) {}); });
    });
  });
  cl.simulator().at(seconds(3), [&] {
    cl.read(0, reader, 5, [&](bool ok) { reads_ok += ok ? 1 : 0; });
  });
  cl.simulator().run();

  ASSERT_EQ(reads_ok, 2);
  ASSERT_EQ(reader->reads.size(), 1u);
  EXPECT_EQ(reader->reads[0].obj, ObjectId(5));
  EXPECT_EQ(reader->reads[0].pidx, cl.replica(1).latest_pidx(5));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cl(small_config(), protocols::gmu());
    std::vector<std::pair<SimTime, bool>> outcomes;
    for (int i = 0; i < 5; ++i) {
      const auto r = run_txn(cl, static_cast<SiteId>(i % 4), {ObjectId(i)},
                             {ObjectId(i + 10)},
                             static_cast<SimTime>(i) * milliseconds(7));
      outcomes.emplace_back(cl.simulator().now(), r.value_or(false));
    }
    return outcomes;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gdur::core

// Tests for the open-loop (Poisson) load source.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur::workload {
namespace {

struct OpenRig {
  explicit OpenRig(double rate_per_site, SimDuration run_for,
                   const core::ProtocolSpec& spec = protocols::rc())
      : cluster(
            [] {
              core::ClusterConfig cfg;
              cfg.sites = 4;
              cfg.objects_per_site = 10'000;
              return cfg;
            }(),
            spec) {
    for (SiteId s = 0; s < 4; ++s) {
      sources.push_back(std::make_unique<OpenLoopSource>(
          cluster, s, WorkloadSpec::A(0.9), metrics, rate_per_site, 100 + s));
      sources.back()->start(0);
      sources.back()->stop_at(run_for);
    }
    cluster.simulator().run_until(run_for + seconds(2));
  }

  core::Cluster cluster;
  harness::Metrics metrics;
  std::vector<std::unique_ptr<OpenLoopSource>> sources;

  [[nodiscard]] std::uint64_t offered() const {
    std::uint64_t n = 0;
    for (const auto& s : sources) n += s->offered();
    return n;
  }
};

TEST(OpenLoop, OfferedRateMatchesConfiguredRate) {
  OpenRig rig(/*rate_per_site=*/500, seconds(4));
  // 4 sites x 500 tps x 4 s = 8000 expected arrivals, Poisson-distributed.
  EXPECT_NEAR(static_cast<double>(rig.offered()), 8000, 8000 * 0.08);
}

TEST(OpenLoop, AllOfferedTransactionsTerminate) {
  OpenRig rig(200, seconds(3));
  EXPECT_EQ(rig.metrics.committed() + rig.metrics.aborted(), rig.offered());
}

TEST(OpenLoop, UnderloadLatencyIsLoadIndependent) {
  OpenRig light(50, seconds(3));
  OpenRig moderate(400, seconds(3));
  EXPECT_NEAR(light.metrics.txn_latency.mean_ms(),
              moderate.metrics.txn_latency.mean_ms(), 5.0);
}

TEST(OpenLoop, OverloadInflatesLatency) {
  // 4 x 15k = 60k tps offered against a ~35k tps capacity for this
  // cluster: queues build and latency grows well past the underload value.
  OpenRig light(100, seconds(2));
  OpenRig overload(15'000, seconds(2));
  EXPECT_GT(overload.metrics.txn_latency.mean_ms(),
            light.metrics.txn_latency.mean_ms() * 1.5);
}

TEST(OpenLoop, ArrivalsAreIrregular) {
  // Poisson arrivals: offered counts differ across disjoint windows.
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 1000;
  core::Cluster cl(cfg, protocols::rc());
  harness::Metrics m;
  OpenLoopSource src(cl, 0, WorkloadSpec::A(0.9), m, 1000, 7);
  src.start(0);
  std::vector<std::uint64_t> counts;
  for (int w = 1; w <= 8; ++w) {
    cl.simulator().run_until(w * milliseconds(100));
    counts.push_back(src.offered());
  }
  std::vector<std::uint64_t> deltas;
  for (std::size_t i = 1; i < counts.size(); ++i)
    deltas.push_back(counts[i] - counts[i - 1]);
  bool uneven = false;
  for (const auto d : deltas) uneven |= d != deltas[0];
  EXPECT_TRUE(uneven);
}

}  // namespace
}  // namespace gdur::workload

// Tests for the group-communication primitives: the ordering contracts that
// the termination protocol builds on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "comm/atomic_broadcast.h"
#include "comm/reliable_multicast.h"
#include "comm/skeen_multicast.h"
#include "common/rng.h"
#include "net/topology.h"
#include "net/transport.h"
#include "sim/fault.h"

namespace gdur::comm {
namespace {

struct Fixture {
  explicit Fixture(int sites)
      : net(sim, net::Topology::geo(sites, milliseconds(10), milliseconds(20),
                                    5)) {}

  McastMsg msg(std::uint64_t id, SiteId origin, std::vector<SiteId> dests,
               std::uint64_t bytes = 100) {
    return McastMsg{.id = id,
                    .origin = origin,
                    .dests = std::move(dests),
                    .bytes = bytes,
                    .payload = nullptr};
  }

  sim::Simulator sim;
  net::Transport net;
  std::map<SiteId, std::vector<std::uint64_t>> delivered;
};

TEST(ReliableMulticast, DeliversToAllDestinations) {
  Fixture f(4);
  ReliableMulticast rm(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.sim.at(0, [&] { rm.multicast(f.msg(1, 0, {1, 2, 3})); });
  f.sim.run();
  for (SiteId s : {1u, 2u, 3u}) {
    ASSERT_EQ(f.delivered[s].size(), 1u) << "site " << s;
    EXPECT_EQ(f.delivered[s][0], 1u);
  }
  EXPECT_TRUE(f.delivered[0].empty());
}

TEST(ReliableMulticast, SelfDeliveryWorks) {
  Fixture f(2);
  ReliableMulticast rm(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.sim.at(0, [&] { rm.multicast(f.msg(7, 0, {0, 1})); });
  f.sim.run();
  EXPECT_EQ(f.delivered[0].size(), 1u);
  EXPECT_EQ(f.delivered[1].size(), 1u);
}

TEST(AtomicBroadcast, EverySiteDeliversEverythingInTheSameOrder) {
  Fixture f(5);
  AtomicBroadcast ab(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  // Several sites broadcast concurrently.
  Rng rng(17);
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto origin = static_cast<SiteId>(rng.next_below(5));
    f.sim.at(static_cast<SimTime>(rng.next_below(30)) * milliseconds(1),
             [&f, &ab, i, origin] { ab.broadcast(f.msg(i, origin, {})); });
  }
  f.sim.run();
  ASSERT_EQ(f.delivered[0].size(), 40u);
  for (SiteId s = 1; s < 5; ++s) {
    EXPECT_EQ(f.delivered[s], f.delivered[0]) << "site " << s;
  }
}

TEST(AtomicBroadcast, ThreeMessageDelayLatency) {
  Fixture f(4);
  SimTime delivered_at = 0;
  AtomicBroadcast ab(f.net, [&](SiteId at, const McastMsg&) {
    if (at == 3) delivered_at = f.sim.now();
  });
  f.sim.at(0, [&] { ab.broadcast(f.msg(1, 1, {})); });
  f.sim.run();
  // origin->sequencer, sequencer->all, ack round: >= 2 one-way delays and
  // well under 5 (with 10-20ms links).
  EXPECT_GE(delivered_at, milliseconds(20));
  EXPECT_LE(delivered_at, milliseconds(80));
}

TEST(SkeenMulticast, TotalOrderPerDestinationGroup) {
  Fixture f(4);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  Rng rng(23);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto origin = static_cast<SiteId>(rng.next_below(4));
    f.sim.at(static_cast<SimTime>(rng.next_below(40)) * milliseconds(1),
             [&f, &sk, i, origin] { sk.multicast(f.msg(i, origin, {1, 2})); });
  }
  f.sim.run();
  ASSERT_EQ(f.delivered[1].size(), 50u);
  EXPECT_EQ(f.delivered[1], f.delivered[2]);
}

TEST(SkeenMulticast, PairwiseOrderOnOverlappingGroups) {
  // m1 -> {0,1,2}, m2 -> {1,2,3}: sites 1 and 2 must agree on the relative
  // order of m1 and m2.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Fixture f(4);
    SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
      f.delivered[at].push_back(m.id);
    });
    Rng rng(seed);
    for (std::uint64_t i = 0; i < 30; ++i) {
      const bool left = rng.next_bool(0.5);
      const auto origin = static_cast<SiteId>(rng.next_below(4));
      std::vector<SiteId> dests =
          left ? std::vector<SiteId>{0, 1, 2} : std::vector<SiteId>{1, 2, 3};
      f.sim.at(static_cast<SimTime>(rng.next_below(25)) * milliseconds(1),
               [&f, &sk, i, origin, dests] {
                 f.msg(i, origin, dests);
                 sk.multicast(f.msg(i, origin, dests));
               });
    }
    f.sim.run();
    // Project each site's order onto the common messages.
    const auto common = [&](SiteId s) {
      std::vector<std::uint64_t> out;
      for (auto id : f.delivered[s])
        if (std::find(f.delivered[1].begin(), f.delivered[1].end(), id) !=
                f.delivered[1].end() &&
            std::find(f.delivered[2].begin(), f.delivered[2].end(), id) !=
                f.delivered[2].end())
          out.push_back(id);
      return out;
    };
    EXPECT_EQ(common(1), common(2)) << "seed " << seed;
  }
}

TEST(SkeenMulticast, GenuinenessOnlyDestinationsWork) {
  Fixture f(4);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.sim.at(0, [&] { sk.multicast(f.msg(1, 0, {1, 2})); });
  f.sim.run();
  // Site 3 neither delivers nor does any CPU work.
  EXPECT_TRUE(f.delivered[3].empty());
  EXPECT_EQ(f.net.cpu(3).busy_time(), 0);
}

TEST(SkeenMulticast, SingleDestinationDelivers) {
  Fixture f(3);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.sim.at(0, [&] { sk.multicast(f.msg(9, 2, {0})); });
  f.sim.run();
  ASSERT_EQ(f.delivered[0].size(), 1u);
}

TEST(SkeenMulticast, OriginCanBeDestination) {
  Fixture f(3);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.sim.at(0, [&] { sk.multicast(f.msg(4, 1, {0, 1})); });
  f.sim.run();
  EXPECT_EQ(f.delivered[0].size(), 1u);
  EXPECT_EQ(f.delivered[1].size(), 1u);
}

TEST(SkeenMulticast, FaultTolerantModeStillOrdersButCostsMore) {
  SimTime fast_done = 0, ft_done = 0;
  {
    Fixture f(4);
    SkeenMulticast sk(f.net, [&](SiteId, const McastMsg&) {
      fast_done = f.sim.now();
    });
    f.sim.at(0, [&] { sk.multicast(f.msg(1, 0, {1, 2})); });
    f.sim.run();
  }
  {
    Fixture f(4);
    SkeenMulticast sk(
        f.net, [&](SiteId, const McastMsg&) { ft_done = f.sim.now(); },
        /*fault_tolerant=*/true);
    f.sim.at(0, [&] { sk.multicast(f.msg(1, 0, {1, 2})); });
    f.sim.run();
  }
  // FT adds two witness round trips: at least 4 extra one-way delays.
  EXPECT_GT(ft_done, fast_done + milliseconds(35));
}

TEST(SkeenMulticast, FaultTolerantTotalOrderHolds) {
  Fixture f(4);
  SkeenMulticast sk(
      f.net,
      [&](SiteId at, const McastMsg& m) { f.delivered[at].push_back(m.id); },
      /*fault_tolerant=*/true);
  Rng rng(31);
  for (std::uint64_t i = 0; i < 30; ++i) {
    const auto origin = static_cast<SiteId>(rng.next_below(4));
    f.sim.at(static_cast<SimTime>(rng.next_below(20)) * milliseconds(1),
             [&f, &sk, i, origin] { sk.multicast(f.msg(i, origin, {0, 3})); });
  }
  f.sim.run();
  ASSERT_EQ(f.delivered[0].size(), 30u);
  EXPECT_EQ(f.delivered[0], f.delivered[3]);
}

TEST(SkeenMulticast, MessageComplexityIsQuadraticInDests) {
  Fixture f(8);
  SkeenMulticast sk(f.net, [](SiteId, const McastMsg&) {});
  f.sim.at(0, [&] {
    sk.multicast(f.msg(1, 0, {1, 2, 3, 4}));
  });
  f.sim.run();
  // step1: r, proposals: r*(r-1) cross-site -> total r^2 messages overall.
  const auto r = 4u;
  EXPECT_GE(f.net.messages_sent(), r + r * (r - 1));
  EXPECT_LE(f.net.messages_sent(), r + r * r);
}

TEST(SkeenMulticast, GroupProposersOrderForAllMembers) {
  // Two replica groups {0,1} and {2,3}; only the primaries (0 and 2)
  // propose, yet every member delivers, and members of both groups agree
  // on the order of common messages.
  Fixture f(4);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  Rng rng(41);
  for (std::uint64_t i = 0; i < 30; ++i) {
    auto m = f.msg(i, static_cast<SiteId>(rng.next_below(4)), {0, 1, 2, 3});
    m.proposers = {0, 2};
    f.sim.at(static_cast<SimTime>(rng.next_below(25)) * milliseconds(1),
             [&sk, m] { sk.multicast(m); });
  }
  f.sim.run();
  for (SiteId s = 0; s < 4; ++s)
    ASSERT_EQ(f.delivered[s].size(), 30u) << "site " << s;
  for (SiteId s = 1; s < 4; ++s) EXPECT_EQ(f.delivered[s], f.delivered[0]);
}

TEST(SkeenMulticast, NonProposerFailureDoesNotBlockOrdering) {
  // Member 1 of group {0,1} is down; since only 0 proposes, the other
  // destinations still deliver.
  Fixture f(4);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.net.pause_site(1, seconds(60));
  auto m = f.msg(1, 3, {0, 1, 2});
  m.proposers = {0, 2};
  f.sim.at(0, [&sk, m] { sk.multicast(m); });
  f.sim.run_until(seconds(1));
  EXPECT_EQ(f.delivered[0].size(), 1u);
  EXPECT_EQ(f.delivered[2].size(), 1u);
  EXPECT_TRUE(f.delivered[1].empty());  // down: delivery deferred
}

TEST(SkeenMulticast, ProposerFailureBlocksUntilRecovery) {
  // The flip side (the paper's §5.3 perfect-failure-detector caveat): a
  // failed *proposer* stalls the message until it comes back.
  Fixture f(4);
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.net.pause_site(0, milliseconds(500));
  auto m = f.msg(1, 3, {0, 1, 2});
  m.proposers = {0, 2};
  SimTime delivered_at_2 = 0;
  f.sim.at(0, [&sk, m] { sk.multicast(m); });
  f.sim.run_until(milliseconds(400));
  EXPECT_TRUE(f.delivered[2].empty());
  f.sim.run_until(seconds(2));
  ASSERT_EQ(f.delivered[2].size(), 1u);
  (void)delivered_at_2;
}

TEST(SkeenMulticast, CrashWindowLossesRecoverAndPreserveTotalOrder) {
  // The transport can lose an already-acknowledged message when FIFO
  // serialization (or a queued handler) pushes its delivery into a crash
  // window — by contract, "protocol retries must recover it". Before the
  // ordering layer grew its recovery path, a proposal lost this way wedged
  // every destination forever: delivery blocks behind the smallest-keyed
  // pending message, and that message could never finalize. Two crash
  // windows across a stream of multicasts must end with every message
  // delivered everywhere, in one total order.
  Fixture f(4);
  sim::FaultPlan plan;
  plan.crash(2, milliseconds(60), milliseconds(140));
  sim::FaultInjector fi(plan, 7);
  f.net.set_fault_injector(&fi);
  // The injector only answers the transport's queries; the CPU crash (state
  // loss, handler-epoch bump) is scheduled by the cluster in production and
  // by hand here.
  f.sim.at(milliseconds(60),
           [&] { f.net.cpu(2).crash_until(milliseconds(140)); });
  SkeenMulticast sk(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  for (std::uint64_t i = 0; i < 40; ++i) {
    // 100 kB messages cost 1.5 ms to unmarshal, so the burst backs the
    // receive queue at site 2 up across the crash instant: the retransmit
    // layer sees a clean pre-crash arrival, but the handler runs after the
    // epoch bump and the message is lost after the transport-level ack.
    auto m = f.msg(i, 0, {0, 1, 2, 3}, /*bytes=*/100'000);
    m.proposers = {1, 2};
    f.sim.at(milliseconds(20) + static_cast<SimTime>(i) * microseconds(500),
             [&sk, m] { sk.multicast(m); });
  }
  f.sim.run_until(seconds(5));
  for (SiteId s = 0; s < 4; ++s)
    ASSERT_EQ(f.delivered[s].size(), 40u) << "site " << s << " wedged";
  for (SiteId s = 1; s < 4; ++s) EXPECT_EQ(f.delivered[s], f.delivered[0]);
}

TEST(AtomicBroadcast, SequencerOriginWorks) {
  Fixture f(3);
  AtomicBroadcast ab(f.net, [&](SiteId at, const McastMsg& m) {
    f.delivered[at].push_back(m.id);
  });
  f.sim.at(0, [&] { ab.broadcast(f.msg(1, 0, {})); });  // origin == sequencer
  f.sim.run();
  for (SiteId s = 0; s < 3; ++s) EXPECT_EQ(f.delivered[s].size(), 1u);
}

}  // namespace
}  // namespace gdur::comm

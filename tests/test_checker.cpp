// Tests for the consistency checker itself, using hand-crafted histories:
// the checks must flag known anomalies and accept clean histories.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "checker/history.h"
#include "harness/metrics.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur::checker {
namespace {

core::Cluster::InstallEvent install(ObjectId obj, TxnId writer,
                                    std::uint64_t pidx, SimTime time) {
  return {.obj = obj, .writer = writer, .pidx = pidx, .site = 0, .time = time};
}

core::TxnRecord txn(TxnId id, SimTime begin, SimTime submit = 0) {
  core::TxnRecord t;
  t.id = id;
  t.begin_time = begin;
  // By default a transaction submits "late", i.e. overlaps anything that
  // begins before its explicit submit time.
  t.submit_time = submit != 0 ? submit : begin + 1000;
  return t;
}

void add_read(core::TxnRecord& t, ObjectId obj, TxnId writer) {
  t.rs.insert(obj);
  t.reads.push_back({.obj = obj, .part = 0, .writer = writer, .pidx = 0});
}

TEST(Checker, EmptyHistoryPasses) {
  History h;
  EXPECT_TRUE(h.check_read_committed().ok);
  EXPECT_TRUE(h.check_serializable().ok);
  EXPECT_TRUE(h.check_ww_exclusion().ok);
  EXPECT_TRUE(h.check_consistent_snapshots().ok);
}

TEST(Checker, CleanSerialHistoryPasses) {
  History h;
  // T1 writes x, then T2 reads x and writes y, then T3 reads both.
  auto t1 = txn({0, 1}, 0);
  t1.ws.insert(1);
  h.record_txn(t1, true, 10);
  h.record_install(install(1, t1.id, 1, 10));

  auto t2 = txn({0, 2}, 20);
  add_read(t2, 1, t1.id);
  t2.ws.insert(2);
  h.record_txn(t2, true, 30);
  h.record_install(install(2, t2.id, 1, 30));

  auto t3 = txn({0, 3}, 40);
  add_read(t3, 1, t1.id);
  add_read(t3, 2, t2.id);
  h.record_txn(t3, true, 50);

  EXPECT_TRUE(h.check_read_committed().ok);
  EXPECT_TRUE(h.check_serializable().ok);
  EXPECT_TRUE(h.check_update_serializable().ok);
  EXPECT_TRUE(h.check_ww_exclusion().ok);
  EXPECT_TRUE(h.check_consistent_snapshots().ok);
}

TEST(Checker, DetectsReadOfUncommittedVersion) {
  History h;
  auto t = txn({0, 1}, 0);
  add_read(t, 5, TxnId{3, 99});  // writer never committed or installed
  h.record_txn(t, true, 10);
  EXPECT_FALSE(h.check_read_committed().ok);
}

TEST(Checker, InstalledButUnrecordedWriterCountsAsCommitted) {
  History h;
  const TxnId w{2, 7};
  h.record_install(install(5, w, 1, 1));
  auto t = txn({0, 1}, 5);
  add_read(t, 5, w);
  h.record_txn(t, true, 10);
  EXPECT_TRUE(h.check_read_committed().ok);
}

TEST(Checker, DetectsWriteSkewCycle) {
  // Classic write skew: T1 reads x writes y; T2 reads y writes x, both from
  // the initial versions -> rw cycle.
  History h;
  auto t1 = txn({0, 1}, 0);
  add_read(t1, 1, TxnId{});  // initial x
  t1.ws.insert(2);
  h.record_txn(t1, true, 20);
  h.record_install(install(2, t1.id, 1, 20));

  auto t2 = txn({1, 1}, 0);
  add_read(t2, 2, TxnId{});  // initial y
  t2.ws.insert(1);
  h.record_txn(t2, true, 21);
  h.record_install(install(1, t2.id, 1, 21));

  EXPECT_FALSE(h.check_serializable().ok);
  // ... but write skew is allowed by the snapshot family.
  EXPECT_TRUE(h.check_ww_exclusion().ok);
}

TEST(Checker, DetectsLostUpdateViaWwOverlap) {
  History h;
  // Two concurrent transactions blind-write x; both commit.
  auto t1 = txn({0, 1}, 0);
  t1.ws.insert(1);
  h.record_txn(t1, true, 20);
  h.record_install(install(1, t1.id, 1, 18));

  auto t2 = txn({1, 1}, 5);  // begins before t1's first install
  t2.ws.insert(1);
  h.record_txn(t2, true, 25);
  h.record_install(install(1, t2.id, 2, 22));

  EXPECT_FALSE(h.check_ww_exclusion().ok);
}

TEST(Checker, SequentialWritersAreNotConcurrent) {
  History h;
  auto t1 = txn({0, 1}, 0, /*submit=*/5);
  t1.ws.insert(1);
  h.record_txn(t1, true, 10);
  h.record_install(install(1, t1.id, 1, 9));

  auto t2 = txn({1, 1}, 15, /*submit=*/20);  // begins after t1's install
  t2.ws.insert(1);
  h.record_txn(t2, true, 25);
  h.record_install(install(1, t2.id, 2, 24));

  EXPECT_TRUE(h.check_ww_exclusion().ok);
}

TEST(Checker, DependentWriterIsNotConcurrentUnderNmsi) {
  History h;
  // T1 writes x; T2 (overlapping in time) READ x from T1, then wrote x.
  auto t1 = txn({0, 1}, 0);
  t1.ws.insert(1);
  h.record_txn(t1, true, 30);
  h.record_install(install(1, t1.id, 1, 10));

  auto t2 = txn({1, 1}, 5);
  add_read(t2, 1, t1.id);
  t2.ws.insert(1);
  h.record_txn(t2, true, 28);
  h.record_install(install(1, t2.id, 2, 25));

  EXPECT_TRUE(h.check_ww_exclusion().ok);
}

TEST(Checker, DetectsFracturedSnapshot) {
  History h;
  // W writes both x and y; T reads y from W but x from before W.
  auto w = txn({0, 1}, 0);
  w.ws.insert(1);
  w.ws.insert(2);
  h.record_txn(w, true, 10);
  h.record_install(install(1, w.id, 1, 10));
  h.record_install(install(2, w.id, 1, 10));

  auto t = txn({1, 1}, 20);
  add_read(t, 1, TxnId{});  // initial x — before W
  add_read(t, 2, w.id);     // y from W
  h.record_txn(t, true, 30);

  EXPECT_FALSE(h.check_consistent_snapshots().ok);
  EXPECT_FALSE(h.check_update_serializable().ok);
}

TEST(Checker, ConsistentPairFromSameWriterPasses) {
  History h;
  auto w = txn({0, 1}, 0);
  w.ws.insert(1);
  w.ws.insert(2);
  h.record_txn(w, true, 10);
  h.record_install(install(1, w.id, 1, 10));
  h.record_install(install(2, w.id, 1, 10));

  auto t = txn({1, 1}, 20);
  add_read(t, 1, w.id);
  add_read(t, 2, w.id);
  h.record_txn(t, true, 30);

  EXPECT_TRUE(h.check_consistent_snapshots().ok);
}

TEST(Checker, AbortedTransactionsAreIgnored) {
  History h;
  auto t1 = txn({0, 1}, 0);
  add_read(t1, 5, TxnId{9, 9});  // bogus read, but the txn aborted
  h.record_txn(t1, false, 10);
  EXPECT_TRUE(h.check_read_committed().ok);
  EXPECT_TRUE(h.check_serializable().ok);
}

TEST(Checker, UpdateSerializableAllowsNonSerializableQueries) {
  // Queries reading stale-but-consistent snapshots can create cycles
  // through rw edges that US tolerates (they are excluded from the
  // updates-only DSG).
  History h;
  auto t1 = txn({0, 1}, 0);
  t1.ws.insert(1);
  h.record_txn(t1, true, 10);
  h.record_install(install(1, t1.id, 1, 10));
  auto t2 = txn({0, 2}, 12);
  t2.ws.insert(2);
  h.record_txn(t2, true, 20);
  h.record_install(install(2, t2.id, 1, 20));

  // Query reads new x (t1) but initial y (before t2): rw edge to t2, wr
  // edge from t1 — no cycle among updates.
  auto q = txn({1, 1}, 25);
  add_read(q, 1, t1.id);
  add_read(q, 2, TxnId{});
  h.record_txn(q, true, 30);

  EXPECT_TRUE(h.check_update_serializable().ok);
}

// Regression: with several independent ww conflicts the checker must report
// the one on the smallest object id, not whichever an unordered_map's hash
// order surfaces first — checker output feeds golden files and CI diffs, so
// it has to be reproducible across stdlib implementations.
TEST(Checker, WwExclusionReportsSmallestConflictObject) {
  History h;
  // Two disjoint conflicts: objects 9 and 3, each written by a pair of
  // definitely-concurrent transactions that read nothing (so no reads-from
  // or snapshot exception applies).
  const ObjectId objs[] = {9, 3};
  std::uint64_t seq = 1;
  for (ObjectId o : objs) {
    for (int k = 0; k < 2; ++k) {
      auto t = txn({static_cast<SiteId>(k), seq++}, /*begin=*/0,
                   /*submit=*/1000);
      t.ws.insert(o);
      h.record_txn(t, true, 1500);
    }
  }
  const auto r = h.check_ww_exclusion();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("object 3"), std::string::npos)
      << "expected the conflict on the smallest object, got: " << r.detail;
}

// Regression: History used to keep a raw pointer to the Cluster it was
// attached to and dereference it inside the checks. The checks typically run
// after the run is torn down — a use-after-free that happened to go
// unnoticed until heap reuse changed. The partitioner is copied at attach()
// time now; this test pins the lifetime contract.
TEST(Checker, ChecksRunAfterTheClusterIsDestroyed) {
  History h;
  harness::Metrics metrics;
  {
    core::ClusterConfig cfg;
    cfg.sites = 2;
    cfg.replication = 1;
    cfg.objects_per_site = 32;
    cfg.seed = 11;
    core::Cluster cluster(cfg, protocols::by_name("Walter"));
    h.attach(cluster);
    std::vector<std::unique_ptr<workload::ClientActor>> actors;
    for (int i = 0; i < 4; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % 2), workload::WorkloadSpec::A(0.5),
          metrics, mix64(500 + static_cast<std::uint64_t>(i))));
      actors.back()->set_observer(
          [&](const core::TxnRecord& t, bool committed) {
            h.record_txn(t, committed, cluster.simulator().now());
          });
      actors.back()->start(0);
    }
    cluster.simulator().run_until(milliseconds(500));
  }  // cluster (and its partitioner) destroyed here
  ASSERT_GT(h.committed_count(), 0u);
  const auto rc = h.check_read_committed();
  EXPECT_TRUE(rc.ok) << rc.detail;
  EXPECT_TRUE(h.check_criterion("PSI").ok);
}

TEST(Checker, CriterionDispatch) {
  History h;
  EXPECT_TRUE(h.check_criterion("RC").ok);
  EXPECT_TRUE(h.check_criterion("SER").ok);
  EXPECT_TRUE(h.check_criterion("US").ok);
  EXPECT_TRUE(h.check_criterion("SI").ok);
  EXPECT_TRUE(h.check_criterion("PSI").ok);
  EXPECT_TRUE(h.check_criterion("NMSI").ok);
  EXPECT_FALSE(h.check_criterion("BOGUS").ok);
}

}  // namespace
}  // namespace gdur::checker

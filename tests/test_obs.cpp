// Tests for the observability layer (src/obs): determinism of the trace
// export, zero overhead when disabled, phase breakdowns, the abort-reason
// taxonomy, message-class counters, time-series sampling, and the golden
// text timeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/experiment.h"
#include "obs/trace.h"
#include "protocols/protocols.h"

namespace gdur {
namespace {

harness::ExperimentConfig small_config() {
  harness::ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 1000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.clients = 32;
  cfg.warmup = seconds(0.2);
  cfg.window = seconds(0.6);
  cfg.seed = 11;
  return cfg;
}

TEST(Trace, TwoIdenticalRunsProduceByteIdenticalTraces) {
  auto cfg = small_config();
  std::string json[2], timeline[2];
  for (int i = 0; i < 2; ++i) {
    obs::TraceRecorder rec;
    cfg.cluster.trace = &rec;
    (void)harness::run_experiment(protocols::gmu(), cfg);
    json[i] = rec.chrome_trace_json();
    timeline[i] = rec.text_timeline();
  }
  ASSERT_FALSE(json[0].empty());
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(timeline[0], timeline[1]);
}

TEST(Trace, AttachingARecorderDoesNotChangeTheRun) {
  // The zero-overhead rule, observed end-to-end: a traced run (spans and
  // the time-series sampler both on) must report exactly the same results
  // as a trace-free run. Only events_per_second may differ (the sampler
  // schedules its own read-only simulator events).
  auto cfg = small_config();
  cfg.cluster.trace = nullptr;
  const auto off = harness::run_experiment(protocols::gmu(), cfg);

  obs::TraceConfig tcfg;
  tcfg.timeseries_bucket = milliseconds(100);
  obs::TraceRecorder rec(tcfg);
  cfg.cluster.trace = &rec;
  const auto on = harness::run_experiment(protocols::gmu(), cfg);

  EXPECT_EQ(off.committed, on.committed);
  EXPECT_EQ(off.aborted, on.aborted);
  EXPECT_EQ(off.exec_failures, on.exec_failures);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_DOUBLE_EQ(off.throughput_tps, on.throughput_tps);
  EXPECT_DOUBLE_EQ(off.upd_term_latency_ms, on.upd_term_latency_ms);
  EXPECT_DOUBLE_EQ(off.txn_latency_ms, on.txn_latency_ms);
  EXPECT_DOUBLE_EQ(off.txn_latency_p99, on.txn_latency_p99);
  EXPECT_DOUBLE_EQ(off.cpu_utilization, on.cpu_utilization);
  EXPECT_EQ(off.aborts_by_reason, on.aborts_by_reason);
  // The trace-free run has no phase data; the traced run does.
  EXPECT_FALSE(off.has_phase_breakdown());
  EXPECT_TRUE(on.has_phase_breakdown());
}

TEST(Trace, ChromeJsonShapeIsWellFormedEnough) {
  auto cfg = small_config();
  obs::TraceRecorder rec;
  cfg.cluster.trace = &rec;
  (void)harness::run_experiment(protocols::walter(), cfg);
  const std::string json = rec.chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process names
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST(Trace, EventCapCountsDropsInsteadOfGrowing) {
  auto cfg = small_config();
  obs::TraceConfig tcfg;
  tcfg.max_events = 64;
  obs::TraceRecorder rec(tcfg);
  cfg.cluster.trace = &rec;
  (void)harness::run_experiment(protocols::rc(), cfg);
  EXPECT_LE(rec.events().size(), 64u);
  EXPECT_GT(rec.dropped_events(), 0u);
}

TEST(Trace, MessageClassCountersSumToTransportTotal) {
  // Fault-free run: every message the transport counts passes through
  // exactly one class-tagged trace hook, so the per-class counters must
  // partition the transport's own total.
  auto cfg = small_config();
  obs::TraceConfig tcfg;
  tcfg.spans = false;  // counters only
  obs::TraceRecorder rec(tcfg);
  cfg.cluster.trace = &rec;
  const auto r = harness::run_experiment(protocols::gmu(), cfg);

  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < obs::kMsgClassCount; ++c)
    sum += rec.msg_count(static_cast<obs::MsgClass>(c));
  EXPECT_EQ(sum, r.messages);
  EXPECT_GT(rec.msg_count(obs::MsgClass::kClientReq), 0u);
  EXPECT_GT(rec.msg_count(obs::MsgClass::kClientResp), 0u);
  EXPECT_GT(rec.msg_count(obs::MsgClass::kTermination), 0u);
  EXPECT_GT(rec.msg_count(obs::MsgClass::kVote), 0u);
  EXPECT_GT(rec.msg_bytes(obs::MsgClass::kTermination), 0u);
}

TEST(Trace, TimeSeriesSamplerEmitsCounters) {
  auto cfg = small_config();
  obs::TraceConfig tcfg;
  tcfg.spans = false;
  tcfg.timeseries_bucket = milliseconds(100);
  obs::TraceRecorder rec(tcfg);
  cfg.cluster.trace = &rec;
  (void)harness::run_experiment(protocols::gmu(), cfg);

  std::uint64_t tput_samples = 0, cpu_samples = 0, queue_samples = 0;
  bool saw_positive_tput = false;
  for (const auto& e : rec.events()) {
    ASSERT_EQ(e.kind, obs::TraceEvent::Kind::kCounter);  // spans are off
    const std::string name = e.name;
    if (name == "throughput_tps") {
      ++tput_samples;
      saw_positive_tput = saw_positive_tput || e.value > 0;
    } else if (name == "cpu_util") {
      ++cpu_samples;
      EXPECT_GE(e.value, 0.0);
      EXPECT_LE(e.value, 1.0);
    } else if (name == "cert_queue") {
      ++queue_samples;
    }
  }
  // 0.6 s window, 100 ms buckets -> 6 ticks; per tick: 1 global throughput
  // sample and one cpu/queue sample per site.
  EXPECT_EQ(tput_samples, 6u);
  EXPECT_EQ(cpu_samples, 6u * 4);
  EXPECT_EQ(queue_samples, 6u * 4);
  EXPECT_TRUE(saw_positive_tput);
}

TEST(Trace, AbortTaxonomyPartitionsNonCommits) {
  // High contention: a tiny key space and an update-heavy mix produce
  // certification conflicts (and, for snapshot-based protocols, execution
  // failures). Every non-committed transaction lands in exactly one bucket.
  harness::ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 40;
  cfg.workload = workload::WorkloadSpec::A(0.1);
  cfg.clients = 64;
  cfg.warmup = seconds(0.2);
  cfg.window = seconds(0.8);
  cfg.seed = 5;
  const auto r = harness::run_experiment(protocols::gmu(), cfg);

  ASSERT_GT(r.aborted, 0u);
  std::uint64_t sum = 0;
  for (std::uint64_t n : r.aborts_by_reason) sum += n;
  EXPECT_EQ(sum, r.aborted + r.txns_timed_out);
  EXPECT_EQ(r.aborts_by_reason[static_cast<std::size_t>(
                obs::AbortReason::kNone)],
            0u);
  EXPECT_GT(r.aborts_by_reason[static_cast<std::size_t>(
                obs::AbortReason::kCertConflict)],
            0u);
  EXPECT_EQ(r.aborts_by_reason[static_cast<std::size_t>(
                obs::AbortReason::kSnapshotFailure)],
            r.exec_failures);
}

TEST(Trace, FaultEventsMatchTransportFaultStats) {
  // Lossy links: the recorder's drop/retransmit counters are incremented on
  // the same code paths as the transport's fault statistics, and both are
  // reset together at the warmup boundary.
  auto cfg = small_config();
  cfg.cluster.faults.links.push_back(
      sim::LinkFault{.drop_prob = 0.10});  // every link, whole run
  cfg.cluster.term_timeout = seconds(1);
  cfg.cluster.client_timeout = seconds(2);
  obs::TraceConfig tcfg;
  tcfg.spans = false;
  obs::TraceRecorder rec(tcfg);
  cfg.cluster.trace = &rec;
  const auto r = harness::run_experiment(protocols::jessy2pc(), cfg);

  EXPECT_GT(rec.fault_count(obs::FaultKind::kDrop), 0u);
  EXPECT_EQ(rec.fault_count(obs::FaultKind::kDrop), r.msgs_dropped);
  EXPECT_EQ(rec.fault_count(obs::FaultKind::kRetransmit),
            r.msgs_retransmitted);
}

TEST(Trace, GmuTerminationCostIsCertificationDominated) {
  // The Figure 4 conclusion, re-derived from the measured breakdown instead
  // of plug-in ablation: under load, a GMU update transaction's termination
  // time is spent in the certification pipeline (queue wait + certification
  // + vote collection), not in multicast dissemination, apply work, or the
  // client response — i.e. certification, not versioning, is the
  // bottleneck.
  harness::ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 10'000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.clients = 512;
  cfg.warmup = seconds(0.3);
  cfg.window = seconds(1);
  cfg.seed = 42;
  obs::TraceConfig tcfg;
  tcfg.spans = false;
  obs::TraceRecorder rec(tcfg);
  cfg.cluster.trace = &rec;
  const auto r = harness::run_experiment(protocols::gmu(), cfg);

  ASSERT_TRUE(r.has_phase_breakdown());
  const auto mean = [&r](obs::Phase p) {
    return r.phase_mean_ms[static_cast<std::size_t>(p)];
  };
  const double cert_pipeline = mean(obs::Phase::kCertWait) +
                               mean(obs::Phase::kCertify) +
                               mean(obs::Phase::kVoteCollect);
  const double rest = mean(obs::Phase::kXcast) + mean(obs::Phase::kApply) +
                      mean(obs::Phase::kClientResponse);
  EXPECT_GT(r.phase_count[static_cast<std::size_t>(obs::Phase::kCertify)], 0u);
  EXPECT_GT(cert_pipeline, rest);
}

// ---------------------------------------------------------------------------
// Golden text timeline. Regenerate with:
//   GDUR_REGEN_GOLDEN=1 ./build/tests/test_obs
//     --gtest_filter=Trace.TextTimelineMatchesGolden
// ---------------------------------------------------------------------------

TEST(Trace, TextTimelineMatchesGolden) {
  harness::ExperimentConfig cfg;
  cfg.cluster.sites = 3;
  cfg.cluster.objects_per_site = 1000;
  cfg.workload = workload::WorkloadSpec::A(0.5);
  cfg.clients = 6;
  cfg.warmup = seconds(0.1);
  cfg.window = seconds(0.25);
  cfg.seed = 7;
  obs::TraceRecorder rec;
  cfg.cluster.trace = &rec;
  (void)harness::run_experiment(protocols::gmu(), cfg);
  const std::string timeline = rec.text_timeline();
  ASSERT_FALSE(timeline.empty());

  const std::string path =
      std::string(GDUR_SOURCE_DIR) + "/tests/golden/timeline_small.txt";
  if (std::getenv("GDUR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << timeline;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(timeline, buf.str());
}

}  // namespace
}  // namespace gdur

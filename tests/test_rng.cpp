// Unit tests for common/rng: determinism, range correctness, and the
// statistical properties the workload generator depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/rng.h"

namespace gdur {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  const auto first = a.next();
  a.next();
  a.reseed(99);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(11);
  std::array<int, 8> counts{};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, n / 8 * 0.9);
    EXPECT_LT(c, n / 8 * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng r(13);
  int trues = 0;
  for (int i = 0; i < 50'000; ++i) trues += r.next_bool(0.3);
  EXPECT_NEAR(trues / 50'000.0, 0.3, 0.01);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(1), mix64(2));
  // Consecutive inputs should differ in many bits.
  const auto x = mix64(100) ^ mix64(101);
  EXPECT_GT(__builtin_popcountll(x), 10);
}

TEST(Zipfian, SamplesWithinRange) {
  Rng r(1);
  ZipfianGenerator z(1000, 0.99);
  for (int i = 0; i < 10'000; ++i) ASSERT_LT(z.next(r), 1000u);
}

TEST(Zipfian, HotKeyDominates) {
  Rng r(2);
  ZipfianGenerator z(10'000, 0.99);
  int zero = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) zero += (z.next(r) == 0);
  // Under theta=0.99, key 0 should receive several percent of the mass.
  EXPECT_GT(zero, n / 100);
}

TEST(Zipfian, LowerThetaIsFlatter) {
  Rng r1(3), r2(3);
  ZipfianGenerator hot(10'000, 0.99), flat(10'000, 0.5);
  int hot0 = 0, flat0 = 0;
  for (int i = 0; i < 50'000; ++i) {
    hot0 += (hot.next(r1) == 0);
    flat0 += (flat.next(r2) == 0);
  }
  EXPECT_GT(hot0, flat0 * 2);
}

TEST(Zipfian, ScrambledStaysInRangeAndSpreadsHotKeys) {
  Rng r(4);
  ZipfianGenerator z(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50'000; ++i) {
    const auto k = z.next_scrambled(r);
    ASSERT_LT(k, 1000u);
    ++counts[k];
  }
  // The hottest scrambled key should NOT be key 0 systematically, and the
  // distribution should still be very skewed.
  const auto hottest = std::max_element(counts.begin(), counts.end());
  EXPECT_GT(*hottest, 50'000 / 100);
}

TEST(Zipfian, SingleKeySpace) {
  Rng r(5);
  ZipfianGenerator z(1, 0.99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.next(r), 0u);
}

class ZipfianThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianThetaTest, Top10PercentCarriesMajorityOfMass) {
  Rng r(6);
  ZipfianGenerator z(1000, GetParam());
  int top = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) top += (z.next(r) < 100);
  EXPECT_GT(top, n / 2);  // top decile > 50% of samples for theta >= 0.8
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianThetaTest,
                         ::testing::Values(0.8, 0.9, 0.99, 1.2));

}  // namespace
}  // namespace gdur

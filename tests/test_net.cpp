// Unit tests for the network substrate: topology and transport semantics.
#include <gtest/gtest.h>

#include <vector>

#include "net/topology.h"
#include "net/transport.h"
#include "net/wire.h"

namespace gdur::net {
namespace {

TEST(Topology, GeoLatenciesWithinEnvelopeAndSymmetric) {
  const auto t = Topology::geo(6, milliseconds(10), milliseconds(20), 9);
  for (SiteId i = 0; i < 6; ++i) {
    EXPECT_EQ(t.latency(i, i), 0);
    for (SiteId j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_GE(t.latency(i, j), milliseconds(10));
      EXPECT_LE(t.latency(i, j), milliseconds(20));
      EXPECT_EQ(t.latency(i, j), t.latency(j, i));
    }
  }
}

TEST(Topology, GeoIsDeterministicPerSeed) {
  const auto a = Topology::geo(4, milliseconds(10), milliseconds(20), 1);
  const auto b = Topology::geo(4, milliseconds(10), milliseconds(20), 1);
  const auto c = Topology::geo(4, milliseconds(10), milliseconds(20), 2);
  EXPECT_EQ(a.latency(0, 1), b.latency(0, 1));
  bool any_diff = false;
  for (SiteId i = 0; i < 4; ++i)
    for (SiteId j = 0; j < 4; ++j) any_diff |= a.latency(i, j) != c.latency(i, j);
  EXPECT_TRUE(any_diff);
}

TEST(Topology, UniformSetsOneLatency) {
  const auto t = Topology::uniform(3, milliseconds(5));
  EXPECT_EQ(t.latency(0, 1), milliseconds(5));
  EXPECT_EQ(t.latency(2, 1), milliseconds(5));
}

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : net_(sim_, Topology::uniform(4, milliseconds(10))) {
    net_.set_jitter(0.0);
  }
  sim::Simulator sim_;
  Transport net_;
};

TEST_F(TransportTest, DeliversAfterLatencyPlusCpu) {
  SimTime delivered = 0;
  sim_.at(0, [&] { net_.send(0, 1, 0, [&] { delivered = sim_.now(); }); });
  sim_.run();
  const auto& c = net_.cost();
  EXPECT_EQ(delivered, c.msg_send + milliseconds(10) + c.msg_recv);
}

TEST_F(TransportTest, LoopbackSkipsNetworkButKeepsCpu) {
  SimTime delivered = 0;
  sim_.at(0, [&] { net_.send(2, 2, 0, [&] { delivered = sim_.now(); }); });
  sim_.run();
  EXPECT_EQ(delivered, net_.cost().msg_send + net_.cost().msg_recv);
}

TEST_F(TransportTest, LargerMessagesCostMoreCpuAndWire) {
  SimTime small = 0, large = 0;
  sim_.at(0, [&] { net_.send(0, 1, 100, [&] { small = sim_.now(); }); });
  sim_.run();
  sim_.at(sim_.now(), [&] {
    net_.send(2, 3, 1'000'000, [&] { large = sim_.now() - small; });
  });
  sim_.run();
  EXPECT_GT(large, milliseconds(10));  // transmission + marshaling dominate
}

TEST_F(TransportTest, FifoPerLink) {
  std::vector<int> order;
  sim_.at(0, [&] {
    net_.send(0, 1, 1'000'000, [&] { order.push_back(1); });  // slow (big)
    net_.send(0, 1, 10, [&] { order.push_back(2); });         // fast (small)
  });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // no overtaking on one link
}

TEST_F(TransportTest, DistinctLinksAreIndependent) {
  std::vector<int> order;
  sim_.at(0, [&] {
    net_.send(0, 1, 1'000'000, [&] { order.push_back(1); });
    net_.send(2, 1, 10, [&] { order.push_back(2); });
  });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST_F(TransportTest, CountsMessagesAndBytes) {
  sim_.at(0, [&] {
    net_.send(0, 1, 100, [] {});
    net_.send(1, 2, 200, [] {});
  });
  sim_.run();
  EXPECT_EQ(net_.messages_sent(), 2u);
  EXPECT_EQ(net_.bytes_sent(), 300u);
  net_.reset_accounting();
  EXPECT_EQ(net_.messages_sent(), 0u);
}

TEST_F(TransportTest, ClientRoundTripUsesClientLatency) {
  SimTime requested = 0, replied = 0;
  sim_.at(0, [&] {
    net_.client_send(0, 10, [&] {
      requested = sim_.now();
      net_.send_to_client(0, 10, [&] { replied = sim_.now(); });
    });
  });
  sim_.run();
  EXPECT_GE(requested, net_.topology().client_latency());
  EXPECT_LT(requested, milliseconds(1));
  EXPECT_GT(replied, requested);
}

TEST_F(TransportTest, SendChargesSenderCpu) {
  sim_.at(0, [&] { net_.send(0, 1, 1000, [] {}); });
  sim_.run();
  EXPECT_GT(net_.cpu(0).busy_time(), 0);
  EXPECT_GT(net_.cpu(1).busy_time(), 0);
  EXPECT_EQ(net_.cpu(2).busy_time(), 0);
}

TEST(TransportJitter, JitterPerturbsDelivery) {
  sim::Simulator sim;
  Transport net(sim, Topology::uniform(2, milliseconds(10)));
  net.set_jitter(0.05);
  std::vector<SimDuration> one_way;
  // Space messages far apart so neither link FIFO nor receive chaining
  // masks the per-message jitter.
  for (int i = 0; i < 20; ++i) {
    sim.at(i * milliseconds(100), [&, i] {
      const SimTime sent = sim.now();
      net.send(0, 1, 0, [&, sent] { one_way.push_back(sim.now() - sent); });
    });
  }
  sim.run();
  ASSERT_EQ(one_way.size(), 20u);
  bool uneven = false;
  for (std::size_t i = 1; i < one_way.size(); ++i)
    uneven |= one_way[i] != one_way[0];
  EXPECT_TRUE(uneven);
  for (const SimDuration d : one_way) {
    EXPECT_GE(d, milliseconds(9.4));   // 10ms - 5% - CPU costs
    EXPECT_LE(d, milliseconds(10.7));  // 10ms + 5% + CPU costs
  }
}

TEST(Wire, SizesAreMonotone) {
  EXPECT_GT(wire::read_reply(0), wire::read_request());
  EXPECT_GT(wire::read_reply(100), wire::read_reply(0));
  EXPECT_GT(wire::termination(2, 2, 0), wire::termination(1, 1, 0));
  EXPECT_GT(wire::termination(0, 1, 0), wire::kPayload);  // carries the value
}

}  // namespace
}  // namespace gdur::net

// Unit tests for the multi-version store and the partitioner.
#include <gtest/gtest.h>

#include "common/obj_set.h"
#include "store/mv_store.h"
#include "store/partitioner.h"

namespace gdur::store {
namespace {

Version v(std::uint64_t seq) {
  return Version{.writer = TxnId{0, seq}, .pidx = seq, .commit_time = 0,
                 .stamp = {}};
}

TEST(ObjectChain, InstallsNewestLast) {
  ObjectChain c;
  c.install(v(1));
  c.install(v(2));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.latest().pidx, 2u);
  EXPECT_EQ(c.at(0).pidx, 1u);
}

TEST(ObjectChain, PrunesOldVersions) {
  ObjectChain c;
  for (std::uint64_t i = 1; i <= ObjectChain::kMaxDepth + 10; ++i)
    c.install(v(i));
  EXPECT_LE(c.size(), ObjectChain::kMaxDepth);
  EXPECT_EQ(c.latest().pidx, ObjectChain::kMaxDepth + 10);
  // The oldest retained versions are the most recent kKeepDepth ones.
  EXPECT_GT(c.at(0).pidx, 1u);
}

TEST(ObjectChain, NoPruningMeansEmptySummary) {
  ObjectChain c;
  for (std::uint64_t i = 1; i <= ObjectChain::kMaxDepth; ++i) c.install(v(i));
  EXPECT_EQ(c.pruned().count, 0u);
}

TEST(ObjectChain, PrunedSummaryTracksNewestDroppedVersion) {
  ObjectChain c;
  for (std::uint64_t i = 1; i <= ObjectChain::kMaxDepth + 1; ++i) {
    Version x = v(i);
    x.stamp.origin = 2;
    x.stamp.seq = i;
    x.commit_time = static_cast<SimTime>(i);
    c.install(x);
  }
  // First prune: 33 versions drop to kKeepDepth=24, losing versions 1..9.
  const std::size_t first_drop = ObjectChain::kMaxDepth + 1 -
                                 ObjectChain::kKeepDepth;
  EXPECT_EQ(c.size(), ObjectChain::kKeepDepth);
  EXPECT_EQ(c.pruned().count, first_drop);
  EXPECT_EQ(c.pruned().newest_pidx, first_drop);
  EXPECT_EQ(c.pruned().newest_stamp.origin, 2);
  EXPECT_EQ(c.pruned().newest_stamp.seq, first_drop);
  EXPECT_EQ(c.pruned().newest_commit_time, static_cast<SimTime>(first_drop));
  EXPECT_EQ(c.at(0).pidx, first_drop + 1);  // retained suffix is contiguous

  // A second prune accumulates the count and advances the newest summary.
  for (std::uint64_t i = ObjectChain::kMaxDepth + 2;
       i <= 2 * ObjectChain::kMaxDepth; ++i)
    c.install(v(i));
  EXPECT_EQ(c.pruned().count + c.size(), 2 * ObjectChain::kMaxDepth);
  EXPECT_EQ(c.pruned().newest_pidx + 1, c.at(0).pidx);
}

TEST(MVStore, ChainIsNullBeforeFirstInstall) {
  MVStore db;
  EXPECT_EQ(db.chain(42), nullptr);
  db.install(42, v(1));
  ASSERT_NE(db.chain(42), nullptr);
  EXPECT_EQ(db.chain(42)->latest().pidx, 1u);
  EXPECT_EQ(db.populated(), 1u);
}

TEST(Partitioner, AssignsObjectsRoundRobin) {
  Partitioner p(4, 1, 1000);
  EXPECT_EQ(p.partitions(), 4u);
  EXPECT_EQ(p.partition_of(0), 0u);
  EXPECT_EQ(p.partition_of(5), 1u);
  EXPECT_EQ(p.partition_of(7), 3u);
}

TEST(Partitioner, DisasterProneHasOneReplica) {
  Partitioner p(4, 1, 1000);
  for (ObjectId o = 0; o < 16; ++o) {
    const auto sites = p.replicas_of_object(o);
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_TRUE(p.is_local(sites[0], o));
  }
}

TEST(Partitioner, DisasterTolerantHasTwoConsecutiveReplicas) {
  Partitioner p(4, 2, 1000);
  const auto sites = p.sites_of(1);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], 1u);
  EXPECT_EQ(sites[1], 2u);
  const auto wrap = p.sites_of(3);
  EXPECT_EQ(wrap[1], 0u);  // wraps around
}

TEST(Partitioner, ReplicasOfSetUnionsSites) {
  Partitioner p(4, 1, 1000);
  ObjSet objs{0, 1, 5};  // partitions 0, 1, 1
  const auto sites = p.replicas_of(objs);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], 0u);
  EXPECT_EQ(sites[1], 1u);
}

TEST(Partitioner, SingleSiteDetection) {
  Partitioner p(4, 1, 1000);
  EXPECT_TRUE(p.single_site(ObjSet{0, 4, 8}));   // all partition 0
  EXPECT_FALSE(p.single_site(ObjSet{0, 1}));     // partitions 0 and 1
  EXPECT_TRUE(p.single_site(ObjSet{}));          // vacuous
}

TEST(Partitioner, SingleSiteWithReplicationOverlap) {
  Partitioner p(4, 2, 1000);
  // Partition 0 lives at {0,1}, partition 1 at {1,2}: site 1 hosts both.
  EXPECT_TRUE(p.single_site(ObjSet{0, 1}));
  // Partitions 0 and 2 share no site.
  EXPECT_FALSE(p.single_site(ObjSet{0, 2}));
}

TEST(Partitioner, ObjectInPartitionRoundTrips) {
  Partitioner p(4, 1, 1000);
  for (PartitionId q = 0; q < 4; ++q)
    for (std::uint64_t i = 0; i < 10; ++i)
      EXPECT_EQ(p.partition_of(p.object_in_partition(q, i)), q);
}

TEST(ObjSet, InsertContainsAndDedup) {
  ObjSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 2u);
  // Iteration is sorted.
  auto it = s.begin();
  EXPECT_EQ(*it++, 1u);
  EXPECT_EQ(*it, 5u);
}

TEST(ObjSet, DisjointAndIntersects) {
  ObjSet a{1, 3, 5};
  ObjSet b{2, 4, 6};
  ObjSet c{5, 6};
  EXPECT_TRUE(a.disjoint(b));
  EXPECT_FALSE(a.disjoint(c));
  EXPECT_TRUE(b.intersects(c));
  EXPECT_TRUE(a.disjoint(ObjSet{}));
}

TEST(ObjSet, Union) {
  ObjSet a{1, 3};
  ObjSet b{2, 3};
  const auto u = a.unioned(b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_TRUE(u.contains(1));
  EXPECT_TRUE(u.contains(2));
  EXPECT_TRUE(u.contains(3));
}

}  // namespace
}  // namespace gdur::store

// Sim/live equivalence: the same workload spec driven through the
// discrete-event simulator and through the live socket runtime must both
// be checker-clean for every protocol's claimed criterion, and both must
// make real progress. The two executions cannot be bit-compared — the live
// run's interleavings come from the OS scheduler — so the equivalence
// claim is at the contract level: identical protocol code, identical
// workload distribution, identical safety verdict.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "checker/history.h"
#include "live/live_runner.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

struct SimOutcome {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  bool checker_ok = false;
  std::string detail;
};

SimOutcome run_sim(const std::string& protocol, const std::string& criterion,
                   const workload::WorkloadSpec& wl, int sites, int clients,
                   std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.sites = sites;
  cfg.objects_per_site = 4096;
  cfg.partitions_per_site = 2;
  cfg.seed = seed;
  core::Cluster cluster(cfg, protocols::by_name(protocol));
  checker::History history;
  history.attach(cluster);
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
  for (int i = 0; i < clients; ++i) {
    actors.push_back(std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % sites), wl, metrics,
        seed * 1000 + static_cast<std::uint64_t>(i)));
    actors.back()->set_observer(
        [&history, &cluster](const core::TxnRecord& t, bool committed) {
          history.record_txn(t, committed, cluster.simulator().now());
        });
    actors.back()->start(i * microseconds(373));
  }
  cluster.simulator().run_until(seconds(2));
  SimOutcome out;
  out.committed = metrics.committed();
  out.aborted = metrics.aborted();
  const auto r = history.check_criterion(criterion);
  out.checker_ok = r.ok;
  out.detail = r.detail;
  return out;
}

class LiveEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(LiveEquivalence, SameWorkloadCleanUnderSimAndLive) {
  const std::string protocol = GetParam();
  const std::string criterion = live::criterion_of(protocol);
  const auto wl = workload::WorkloadSpec::A(0.8);
  constexpr int kSites = 3, kClients = 12;
  constexpr std::uint64_t kSeed = 7;

  const auto sim = run_sim(protocol, criterion, wl, kSites, kClients, kSeed);
  EXPECT_TRUE(sim.checker_ok) << "sim: " << sim.detail;
  EXPECT_GT(sim.committed, 100u) << "sim made no real progress";

  live::LiveRunConfig lc;
  lc.protocol = protocol;
  lc.sites = kSites;
  lc.clients = kClients;
  lc.secs = 0.5;
  lc.workload = wl;
  lc.seed = kSeed;
  const auto lr = live::run_live(lc);
  EXPECT_TRUE(lr.checker_ok) << "live: " << lr.checker_detail;
  EXPECT_EQ(lr.hung_clients, 0);
  EXPECT_GT(lr.metrics.committed(), 100u) << "live made no real progress";
  EXPECT_GT(lr.messages, 0u) << "live run never used the transport";

  // Sanity bounds, not bit-equality: both executions see the same
  // contention profile, so neither should be abort-dominated when the
  // other is abort-free.
  const double sim_total = double(sim.committed + sim.aborted);
  const double live_total =
      double(lr.metrics.committed() + lr.metrics.aborted());
  const double sim_abort = sim_total > 0 ? sim.aborted / sim_total : 0.0;
  const double live_abort =
      live_total > 0 ? lr.metrics.aborted() / live_total : 0.0;
  EXPECT_LT(sim_abort, 0.9);
  EXPECT_LT(live_abort, 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, LiveEquivalence,
                         ::testing::Values("P-Store", "S-DUR", "GMU",
                                           "Serrano", "Walter", "Jessy2pc",
                                           "RC"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

}  // namespace
}  // namespace gdur

// Tests for the write-ahead log (persistence layer) and durable clusters.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cluster.h"
#include "core/membership.h"
#include "core/transaction.h"
#include "protocols/protocols.h"
#include "store/wal.h"

namespace gdur::store {
namespace {

TEST(Wal, SingleAppendCompletesAfterSyncLatency) {
  sim::Simulator sim;
  WriteAheadLog wal(sim, {.sync_latency = milliseconds(2), .per_byte_ns = 0});
  SimTime done = 0;
  sim.at(0, [&] { wal.append(100, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done, milliseconds(2));
  EXPECT_EQ(wal.appends(), 1u);
  EXPECT_EQ(wal.syncs(), 1u);
}

TEST(Wal, GroupCommitBatchesConcurrentAppends) {
  sim::Simulator sim;
  WriteAheadLog wal(sim, {.sync_latency = milliseconds(2), .per_byte_ns = 0});
  int done = 0;
  sim.at(0, [&] {
    wal.append(10, [&] { ++done; });
  });
  // These arrive while the first sync is in flight: they share the second.
  sim.at(milliseconds(1), [&] {
    for (int i = 0; i < 10; ++i) wal.append(10, [&] { ++done; });
  });
  sim.run();
  EXPECT_EQ(done, 11);
  EXPECT_EQ(wal.syncs(), 2u);  // not 11
}

TEST(Wal, CompletionOrderMatchesAppendOrder) {
  sim::Simulator sim;
  WriteAheadLog wal(sim, {.sync_latency = milliseconds(1), .per_byte_ns = 0});
  std::vector<int> order;
  sim.at(0, [&] {
    for (int i = 0; i < 5; ++i) wal.append(1, [&, i] { order.push_back(i); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Wal, RespectsMaxBatch) {
  sim::Simulator sim;
  WriteAheadLog wal(
      sim, {.sync_latency = milliseconds(1), .per_byte_ns = 0, .max_batch = 4});
  int done = 0;
  sim.at(0, [&] {
    for (int i = 0; i < 10; ++i) wal.append(1, [&] { ++done; });
  });
  sim.run();
  EXPECT_EQ(done, 10);
  // The first record syncs alone (it does not wait), then 4 + 4 + 1.
  EXPECT_EQ(wal.syncs(), 4u);
}

TEST(Wal, BytesAreAccounted) {
  sim::Simulator sim;
  WriteAheadLog wal(sim);
  sim.at(0, [&] {
    wal.append(100, [] {});
    wal.append(200, [] {});
  });
  sim.run();
  EXPECT_EQ(wal.bytes_logged(), 300u);
}

TEST(Wal, LargeRecordsTakeLonger) {
  sim::Simulator sim;
  WriteAheadLog wal(sim,
                    {.sync_latency = milliseconds(1), .per_byte_ns = 1000.0});
  SimTime small = 0, large = 0;
  sim.at(0, [&] { wal.append(1000, [&] { small = sim.now(); }); });
  sim.run();
  const SimTime base = sim.now();
  sim.at(base, [&] { wal.append(1'000'000, [&] { large = sim.now() - base; }); });
  sim.run();
  EXPECT_GT(large, small);
}

// --- byte format: round trips and torn writes -------------------------------

WalRecord term_record(WalRecord::Kind kind, std::uint32_t coord,
                      std::uint64_t seq, bool flag, EpochId epoch) {
  WalRecord rec;
  rec.kind = kind;
  rec.txn = TxnId{coord, seq};
  rec.flag = flag;
  rec.epoch = epoch;
  auto t = std::make_shared<core::TxnRecord>();
  t->id = rec.txn;
  t->rs = ObjSet{1, 2, 3};
  t->ws = ObjSet{2, 7};
  t->epoch = epoch;
  rec.payload = std::shared_ptr<const core::TxnRecord>(std::move(t));
  return rec;
}

WalRecord reconfig_record(WalRecord::Kind kind, EpochId epoch,
                          std::vector<SiteId> members) {
  WalRecord rec;
  rec.kind = kind;
  rec.txn = TxnId{0, 1};
  rec.epoch = epoch;
  core::MembershipView v;
  v.epoch = epoch;
  v.members = std::move(members);
  rec.payload = std::make_shared<const core::MembershipView>(std::move(v));
  return rec;
}

std::vector<WalRecord> sample_log() {
  return {term_record(WalRecord::Kind::kDeliver, 2, 11, false, 0),
          term_record(WalRecord::Kind::kVote, 2, 11, true, 0),
          reconfig_record(WalRecord::Kind::kReconfigPrepare, 1, {0, 1, 2, 4}),
          reconfig_record(WalRecord::Kind::kReconfigCommit, 1, {0, 1, 2, 4}),
          term_record(WalRecord::Kind::kDecision, 3, 900, true, 1)};
}

TEST(WalCodec, RoundTripsTerminationAndReconfigRecords) {
  const auto records = sample_log();
  bool torn = true;
  const auto back = deserialize_records(serialize_records(records), &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].kind, records[i].kind) << "record " << i;
    EXPECT_EQ(back[i].txn, records[i].txn) << "record " << i;
    EXPECT_EQ(back[i].flag, records[i].flag) << "record " << i;
    EXPECT_EQ(back[i].epoch, records[i].epoch) << "record " << i;
    ASSERT_NE(back[i].payload, nullptr) << "record " << i;
  }
  const auto* t = static_cast<const core::TxnRecord*>(back[1].payload.get());
  EXPECT_EQ(t->id, (TxnId{2, 11}));
  EXPECT_EQ(t->rs, (ObjSet{1, 2, 3}));
  EXPECT_EQ(t->ws, (ObjSet{2, 7}));
  const auto* v =
      static_cast<const core::MembershipView*>(back[3].payload.get());
  EXPECT_EQ(v->epoch, 1u);
  EXPECT_EQ(v->members, (std::vector<SiteId>{0, 1, 2, 4}));
}

TEST(WalCodec, TruncationAnywhereStopsAtLastCompleteRecord) {
  const auto records = sample_log();
  const auto bytes = serialize_records(records);
  // Record boundaries, for deciding how many records each prefix holds.
  std::vector<std::size_t> ends;
  for (std::size_t i = 1; i <= records.size(); ++i)
    ends.push_back(
        serialize_records({records.begin(), records.begin() + i}).size());
  // Every possible torn tail — mid-length-prefix, mid-body, mid-checksum —
  // must replay exactly the complete records before the tear, and flag it.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    bool torn = false;
    const auto back = deserialize_records(prefix, &torn);
    std::size_t want = 0;
    while (want < ends.size() && ends[want] <= cut) ++want;
    EXPECT_EQ(back.size(), want) << "cut at byte " << cut;
    const bool at_boundary = cut == 0 || (want > 0 && ends[want - 1] == cut);
    EXPECT_EQ(torn, !at_boundary) << "cut at byte " << cut;
  }
}

TEST(WalCodec, TrailingPartialLengthPrefixIsDiscarded) {
  const auto records = sample_log();
  auto bytes = serialize_records(records);
  // A torn write that got only continuation bytes of the next record's
  // varint length prefix onto the device.
  bytes.push_back(0x85);
  bytes.push_back(0xff);
  bool torn = false;
  const auto back = deserialize_records(bytes, &torn);
  EXPECT_EQ(back.size(), records.size());
  EXPECT_TRUE(torn);
}

TEST(WalCodec, ChecksumMismatchEndsReplayAtLastGoodRecord) {
  const auto records = sample_log();
  auto bytes = serialize_records(records);
  const auto two = serialize_records({records[0], records[1]}).size();
  bytes[two + 3] ^= 0x40;  // corrupt a byte inside the third record's body
  bool torn = false;
  const auto back = deserialize_records(bytes, &torn);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_TRUE(torn);
}

TEST(WalCodec, HugeCorruptedLengthPrefixDoesNotOverflow) {
  // A corrupted (not merely truncated) length prefix can decode to a value
  // near 2^64; `pos + len + 4` must not wrap around and send the replayer
  // out of bounds.
  std::vector<std::uint8_t> bytes(10, 0xff);
  bytes[9] = 0x01;  // varint terminator: len = 2^64 - 1
  bytes.resize(32, 0x00);
  bool torn = false;
  const auto back = deserialize_records(bytes, &torn);
  EXPECT_TRUE(back.empty());
  EXPECT_TRUE(torn);
}

TEST(WalCodec, GarbageKindByteRejectsRecord) {
  auto good = serialize_records({term_record(WalRecord::Kind::kVote, 1, 5,
                                             true, 0)});
  // Hand-build a "record" whose body is one byte of garbage kind, with a
  // valid length prefix and checksum — decode_body must reject it.
  std::vector<std::uint8_t> bytes = good;
  const std::uint8_t body = 0xee;
  std::uint32_t h = 2166136261u;
  h ^= body;
  h *= 16777619u;
  bytes.push_back(1);  // varint length
  bytes.push_back(body);
  bytes.push_back(static_cast<std::uint8_t>(h));
  bytes.push_back(static_cast<std::uint8_t>(h >> 8));
  bytes.push_back(static_cast<std::uint8_t>(h >> 16));
  bytes.push_back(static_cast<std::uint8_t>(h >> 24));
  bool torn = false;
  const auto back = deserialize_records(bytes, &torn);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_TRUE(torn);
}

// --- durable cluster integration -------------------------------------------

std::optional<bool> run_update(core::Cluster& cl, SimTime* done_at = nullptr) {
  auto out = std::make_shared<std::optional<bool>>();
  cl.simulator().at(0, [&cl, out] {
    cl.begin(0, [&cl, out](core::MutTxnPtr t) {
      cl.write(0, t, 1, [&cl, t, out] {
        cl.commit(0, t, [out](bool ok) { *out = ok; });
      });
    });
  });
  cl.simulator().run();
  if (done_at != nullptr) *done_at = cl.simulator().now();
  return *out;
}

TEST(DurableCluster, CommitsAndLogsEveryVote) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 100;
  cfg.durable = true;
  core::Cluster cl(cfg, protocols::walter());
  EXPECT_EQ(run_update(cl), std::optional<bool>(true));
  // The participant (site 1 hosts object 1) logged its vote and the apply.
  ASSERT_NE(cl.wal(1), nullptr);
  EXPECT_GE(cl.wal(1)->appends(), 2u);
}

TEST(DurableCluster, DurabilityAddsLatency) {
  const auto run_with = [](bool durable) {
    core::ClusterConfig cfg;
    cfg.sites = 4;
    cfg.objects_per_site = 100;
    cfg.durable = durable;
    cfg.wal.sync_latency = milliseconds(5);
    core::Cluster cl(cfg, protocols::walter());
    SimTime done = 0;
    EXPECT_EQ(run_update(cl, &done), std::optional<bool>(true));
    return done;
  };
  EXPECT_GT(run_with(true), run_with(false) + milliseconds(4));
}

TEST(DurableCluster, InMemoryModeHasNoWal) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 100;
  core::Cluster cl(cfg, protocols::walter());
  EXPECT_EQ(cl.wal(0), nullptr);
}

}  // namespace
}  // namespace gdur::store

// Tests for the write-ahead log (persistence layer) and durable clusters.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/cluster.h"
#include "protocols/protocols.h"
#include "store/wal.h"

namespace gdur::store {
namespace {

TEST(Wal, SingleAppendCompletesAfterSyncLatency) {
  sim::Simulator sim;
  WriteAheadLog wal(sim, {.sync_latency = milliseconds(2), .per_byte_ns = 0});
  SimTime done = 0;
  sim.at(0, [&] { wal.append(100, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done, milliseconds(2));
  EXPECT_EQ(wal.appends(), 1u);
  EXPECT_EQ(wal.syncs(), 1u);
}

TEST(Wal, GroupCommitBatchesConcurrentAppends) {
  sim::Simulator sim;
  WriteAheadLog wal(sim, {.sync_latency = milliseconds(2), .per_byte_ns = 0});
  int done = 0;
  sim.at(0, [&] {
    wal.append(10, [&] { ++done; });
  });
  // These arrive while the first sync is in flight: they share the second.
  sim.at(milliseconds(1), [&] {
    for (int i = 0; i < 10; ++i) wal.append(10, [&] { ++done; });
  });
  sim.run();
  EXPECT_EQ(done, 11);
  EXPECT_EQ(wal.syncs(), 2u);  // not 11
}

TEST(Wal, CompletionOrderMatchesAppendOrder) {
  sim::Simulator sim;
  WriteAheadLog wal(sim, {.sync_latency = milliseconds(1), .per_byte_ns = 0});
  std::vector<int> order;
  sim.at(0, [&] {
    for (int i = 0; i < 5; ++i) wal.append(1, [&, i] { order.push_back(i); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Wal, RespectsMaxBatch) {
  sim::Simulator sim;
  WriteAheadLog wal(
      sim, {.sync_latency = milliseconds(1), .per_byte_ns = 0, .max_batch = 4});
  int done = 0;
  sim.at(0, [&] {
    for (int i = 0; i < 10; ++i) wal.append(1, [&] { ++done; });
  });
  sim.run();
  EXPECT_EQ(done, 10);
  // The first record syncs alone (it does not wait), then 4 + 4 + 1.
  EXPECT_EQ(wal.syncs(), 4u);
}

TEST(Wal, BytesAreAccounted) {
  sim::Simulator sim;
  WriteAheadLog wal(sim);
  sim.at(0, [&] {
    wal.append(100, [] {});
    wal.append(200, [] {});
  });
  sim.run();
  EXPECT_EQ(wal.bytes_logged(), 300u);
}

TEST(Wal, LargeRecordsTakeLonger) {
  sim::Simulator sim;
  WriteAheadLog wal(sim,
                    {.sync_latency = milliseconds(1), .per_byte_ns = 1000.0});
  SimTime small = 0, large = 0;
  sim.at(0, [&] { wal.append(1000, [&] { small = sim.now(); }); });
  sim.run();
  const SimTime base = sim.now();
  sim.at(base, [&] { wal.append(1'000'000, [&] { large = sim.now() - base; }); });
  sim.run();
  EXPECT_GT(large, small);
}

// --- durable cluster integration -------------------------------------------

std::optional<bool> run_update(core::Cluster& cl, SimTime* done_at = nullptr) {
  auto out = std::make_shared<std::optional<bool>>();
  cl.simulator().at(0, [&cl, out] {
    cl.begin(0, [&cl, out](core::MutTxnPtr t) {
      cl.write(0, t, 1, [&cl, t, out] {
        cl.commit(0, t, [out](bool ok) { *out = ok; });
      });
    });
  });
  cl.simulator().run();
  if (done_at != nullptr) *done_at = cl.simulator().now();
  return *out;
}

TEST(DurableCluster, CommitsAndLogsEveryVote) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 100;
  cfg.durable = true;
  core::Cluster cl(cfg, protocols::walter());
  EXPECT_EQ(run_update(cl), std::optional<bool>(true));
  // The participant (site 1 hosts object 1) logged its vote and the apply.
  ASSERT_NE(cl.wal(1), nullptr);
  EXPECT_GE(cl.wal(1)->appends(), 2u);
}

TEST(DurableCluster, DurabilityAddsLatency) {
  const auto run_with = [](bool durable) {
    core::ClusterConfig cfg;
    cfg.sites = 4;
    cfg.objects_per_site = 100;
    cfg.durable = durable;
    cfg.wal.sync_latency = milliseconds(5);
    core::Cluster cl(cfg, protocols::walter());
    SimTime done = 0;
    EXPECT_EQ(run_update(cl, &done), std::optional<bool>(true));
    return done;
  };
  EXPECT_GT(run_with(true), run_with(false) + milliseconds(4));
}

TEST(DurableCluster, InMemoryModeHasNoWal) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 100;
  core::Cluster cl(cfg, protocols::walter());
  EXPECT_EQ(cl.wal(0), nullptr);
}

}  // namespace
}  // namespace gdur::store

// Fault-injection subsystem tests (sim/fault + the layers it threads
// through): injector semantics, the transport's ack/retransmit layer,
// crash-with-state-loss at the CPU and WAL, and a protocol fault matrix —
// every registered protocol must uphold its consistency criterion under
// lossy links, a healed partition, and a crash with WAL recovery.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "checker/history.h"
#include "core/cluster.h"
#include "net/transport.h"
#include "protocols/protocols.h"
#include "sim/cpu.h"
#include "sim/fault.h"
#include "store/wal.h"
#include "workload/client.h"

namespace gdur {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector semantics.
// ---------------------------------------------------------------------------

TEST(FaultInjector, BlackoutCutsOnlyTheConfiguredWindow) {
  sim::FaultPlan plan;
  plan.blackout(0, 1, milliseconds(100), milliseconds(200));
  sim::FaultInjector fi(plan);
  EXPECT_FALSE(fi.link_cut(0, 1, milliseconds(50)));
  EXPECT_TRUE(fi.link_cut(0, 1, milliseconds(150)));
  EXPECT_FALSE(fi.link_cut(0, 1, milliseconds(250)));
  EXPECT_FALSE(fi.link_cut(1, 0, milliseconds(150))) << "directed blackout";
}

TEST(FaultInjector, PartitionCutsCrossGroupLinksBothWays) {
  sim::FaultPlan plan;
  plan.partition({{0, 1}, {2, 3}}, milliseconds(100), milliseconds(300));
  sim::FaultInjector fi(plan);
  EXPECT_TRUE(fi.link_cut(0, 2, milliseconds(150)));
  EXPECT_TRUE(fi.link_cut(3, 1, milliseconds(150)));
  EXPECT_FALSE(fi.link_cut(0, 1, milliseconds(150))) << "same group";
  EXPECT_FALSE(fi.link_cut(0, 2, milliseconds(350))) << "healed";
}

TEST(FaultInjector, CrashWindowsAreKnown) {
  sim::FaultPlan plan;
  plan.crash(2, milliseconds(100), milliseconds(400));
  sim::FaultInjector fi(plan);
  EXPECT_FALSE(fi.crashed(2, milliseconds(50)));
  EXPECT_TRUE(fi.crashed(2, milliseconds(200)));
  EXPECT_FALSE(fi.crashed(2, milliseconds(400)));
  EXPECT_FALSE(fi.crashed(1, milliseconds(200)));
  EXPECT_EQ(fi.recovery_end(2, milliseconds(200)), milliseconds(400));
}

TEST(FaultInjector, CertainLossDropsEveryAttempt) {
  sim::FaultPlan plan;
  plan.drop_all(1.0);
  sim::FaultInjector fi(plan);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(fi.attempt(0, 1, i, i + 1));
  EXPECT_EQ(fi.drops(), 16u);
}

TEST(FaultInjector, ChaosPlanIsAPureFunctionOfItsSeed) {
  const auto a = sim::FaultPlan::chaos(4, seconds(5), 42);
  const auto b = sim::FaultPlan::chaos(4, seconds(5), 42);
  const auto c = sim::FaultPlan::chaos(4, seconds(5), 43);
  ASSERT_EQ(a.links.size(), b.links.size());
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].site, b.crashes[i].site);
    EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
  }
  bool differs = a.links.size() != c.links.size() ||
                 a.crashes.size() != c.crashes.size();
  for (std::size_t i = 0; !differs && i < a.crashes.size(); ++i)
    differs = a.crashes[i].at != c.crashes[i].at;
  EXPECT_TRUE(differs);
  // The plan must be survivable: retransmits outlast the worst window.
  EXPECT_GT(a.retransmit.give_up, milliseconds(400));
}

// ---------------------------------------------------------------------------
// Transport under faults: retransmission, FIFO, exactly-once.
// ---------------------------------------------------------------------------

class FaultyTransport : public ::testing::Test {
 protected:
  FaultyTransport() : net_(sim_, net::Topology::uniform(4, milliseconds(10))) {
    net_.set_jitter(0.0);
  }
  void install(const sim::FaultPlan& plan, std::uint64_t seed = 7) {
    fi_ = std::make_unique<sim::FaultInjector>(plan, seed);
    net_.set_fault_injector(fi_.get());
  }
  sim::Simulator sim_;
  net::Transport net_;
  std::unique_ptr<sim::FaultInjector> fi_;
};

TEST_F(FaultyTransport, LossyLinkStillDeliversExactlyOnceViaRetransmit) {
  sim::FaultPlan plan;
  plan.drop_all(0.5).duplicate_all(0.3);
  install(plan);
  int delivered = 0;
  for (int i = 0; i < 50; ++i)
    sim_.at(i * milliseconds(1), [this, &delivered] {
      net_.send(0, 1, 64, [&delivered] { ++delivered; });
    });
  sim_.run();
  EXPECT_EQ(delivered, 50) << "every message must arrive exactly once";
  EXPECT_GT(net_.fault_stats().dropped, 0u);
  EXPECT_EQ(net_.fault_stats().retransmissions, net_.fault_stats().dropped);
  EXPECT_EQ(net_.fault_stats().expired, 0u);
}

TEST_F(FaultyTransport, FifoOrderSurvivesLossAndRetransmission) {
  sim::FaultPlan plan;
  plan.drop_all(0.4);
  install(plan);
  std::vector<int> order;
  sim_.at(0, [this, &order] {
    for (int i = 0; i < 20; ++i)
      net_.send(0, 1, 64, [&order, i] { order.push_back(i); });
  });
  sim_.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_F(FaultyTransport, MessageIntoPermanentBlackoutExpires) {
  sim::FaultPlan plan;
  plan.blackout(0, 1, 0, sim::kNever);
  plan.retransmit.give_up = milliseconds(200);
  install(plan);
  bool delivered = false;
  sim_.at(0, [this, &delivered] {
    net_.send(0, 1, 64, [&delivered] { delivered = true; });
  });
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.fault_stats().expired, 1u);
}

TEST_F(FaultyTransport, PartitionDelaysDeliveryUntilHeal) {
  sim::FaultPlan plan;
  plan.partition({{0}, {1}}, 0, milliseconds(300));
  install(plan);
  SimTime at = 0;
  sim_.at(0, [this, &at] { net_.send(0, 1, 64, [&] { at = sim_.now(); }); });
  sim_.run();
  EXPECT_GT(at, milliseconds(300)) << "delivered only after the heal";
  EXPECT_LT(at, milliseconds(800)) << "and promptly, given backoff";
}

// ---------------------------------------------------------------------------
// Crash-with-state-loss at the CPU and the WAL.
// ---------------------------------------------------------------------------

TEST(CpuCrash, CrashDiscardsQueuedJobsButPauseDoesNot) {
  sim::Simulator sim;
  sim::CpuResource paused(sim, 1), crashed(sim, 1);
  bool ran_paused = false, ran_crashed = false;
  sim.at(0, [&] {
    paused.submit(milliseconds(1), [&] { ran_paused = true; });
    crashed.submit(milliseconds(1), [&] { ran_crashed = true; });
    paused.block_until(milliseconds(100));
    crashed.crash_until(milliseconds(100));
  });
  sim.run();
  EXPECT_TRUE(ran_paused) << "a pause loses nothing";
  EXPECT_FALSE(ran_crashed) << "a crash orphans queued completions";
}

TEST(CpuCrash, DownSiteAcceptsNoWorkUntilRecovery) {
  sim::Simulator sim;
  sim::CpuResource cpu(sim, 1);
  bool during = false, after = false;
  sim.at(0, [&] { cpu.crash_until(milliseconds(100)); });
  sim.at(milliseconds(50), [&] {
    cpu.submit(milliseconds(1), [&] { during = true; });
  });
  sim.at(milliseconds(150), [&] {
    cpu.submit(milliseconds(1), [&] { after = true; });
  });
  sim.run();
  EXPECT_FALSE(during);
  EXPECT_TRUE(after);
  EXPECT_EQ(cpu.epoch(), 1u);
}

TEST(WalCrash, UnsyncedRecordsAreLostAndSyncedOnesSurvive) {
  sim::Simulator sim;
  store::WriteAheadLog wal(sim);
  bool first_done = false, second_done = false;
  sim.at(0, [&] {
    wal.append(64,
               store::WalRecord{store::WalRecord::Kind::kVote, TxnId{0, 1},
                                true, 0, nullptr},
               [&] { first_done = true; });
  });
  // The first sync (2ms device time) completes; crash while the second
  // record waits for its own fsync.
  sim.at(milliseconds(5), [&] {
    wal.append(64,
               store::WalRecord{store::WalRecord::Kind::kVote, TxnId{0, 2},
                                false, 0, nullptr},
               [&] { second_done = true; });
  });
  sim.at(milliseconds(6), [&] { wal.on_crash(); });
  sim.run();
  EXPECT_TRUE(first_done);
  EXPECT_FALSE(second_done) << "the crash ate the pending fsync";
  ASSERT_EQ(wal.stable().size(), 1u);
  EXPECT_EQ(wal.stable()[0].txn.seq, 1u);
  EXPECT_EQ(wal.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol fault matrix: every registered protocol, under each fault class,
// must keep committing and must uphold its consistency criterion.
// ---------------------------------------------------------------------------

struct ProtocolCase {
  const char* name;
  const char* criterion;
};

const ProtocolCase kProtocols[] = {
    {"P-Store", "SER"}, {"S-DUR", "SER"},     {"GMU", "US"},
    {"Serrano", "SI"},  {"Walter", "PSI"},    {"Jessy2pc", "NMSI"},
    {"RC", "RC"},
};

struct FaultyRig {
  FaultyRig(const core::ProtocolSpec& spec, core::ClusterConfig cfg,
            int clients, SimDuration window,
            const std::function<void(core::Cluster&)>& setup = {})
      : cluster(cfg, spec) {
    history.attach(cluster);
    if (setup) setup(cluster);
    for (int i = 0; i < clients; ++i) {
      actors.push_back(std::make_unique<workload::ClientActor>(
          cluster, static_cast<SiteId>(i % cfg.sites),
          workload::WorkloadSpec::A(0.7), metrics,
          mix64(77'000 + static_cast<std::uint64_t>(i))));
      actors.back()->set_observer(
          [this](const core::TxnRecord& t, bool committed) {
            history.record_txn(t, committed, cluster.simulator().now());
          });
      actors.back()->start(i * microseconds(373));
    }
    cluster.simulator().run_until(window);
  }

  [[nodiscard]] std::uint64_t txns_run() const {
    std::uint64_t n = 0;
    for (const auto& a : actors) n += a->txns_run();
    return n;
  }
  [[nodiscard]] std::uint64_t resolved() const {
    return metrics.committed() + metrics.aborted() + metrics.txns_timed_out;
  }
  [[nodiscard]] std::size_t undecided() {
    std::size_t n = 0;
    for (SiteId s = 0; s < static_cast<SiteId>(cluster.sites()); ++s)
      n += cluster.replica(s).undecided_count();
    return n;
  }

  core::Cluster cluster;
  checker::History history;
  harness::Metrics metrics;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
};

core::ClusterConfig faulty_config(int rf) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.replication = rf;
  cfg.objects_per_site = 64;
  cfg.term_timeout = milliseconds(500);
  cfg.client_timeout = seconds(2);
  return cfg;
}

class FaultMatrix : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(FaultMatrix, LossyLinksUpholdCriterion) {
  auto cfg = faulty_config(/*rf=*/1);
  cfg.faults.drop_all(0.10);
  FaultyRig rig(protocols::by_name(GetParam().name), cfg, 16, seconds(3));
  EXPECT_GT(rig.metrics.committed(), 100u) << "goodput must survive 10% loss";
  EXPECT_GT(rig.cluster.transport().fault_stats().dropped, 0u);
  const auto r = rig.history.check_criterion(GetParam().criterion);
  EXPECT_TRUE(r.ok) << GetParam().name << ": " << r.detail;
}

TEST_P(FaultMatrix, PartitionHealsAndCriterionHolds) {
  auto cfg = faulty_config(/*rf=*/1);
  cfg.faults.partition({{0, 1}, {2, 3}}, milliseconds(400), milliseconds(900));
  FaultyRig rig(protocols::by_name(GetParam().name), cfg, 16, seconds(3));
  EXPECT_GT(rig.metrics.committed(), 50u);
  const auto r = rig.history.check_criterion(GetParam().criterion);
  EXPECT_TRUE(r.ok) << GetParam().name << ": " << r.detail;
  // After the heal the cluster keeps terminating: nothing left in doubt at
  // the cut except the transactions still in flight.
  EXPECT_LE(rig.txns_run() - rig.resolved(), rig.actors.size());
}

TEST_P(FaultMatrix, CrashWithWalRecoveryUpholdsCriterion) {
  auto cfg = faulty_config(/*rf=*/2);
  cfg.durable = true;
  cfg.faults.crash(1, milliseconds(400), milliseconds(800));
  FaultyRig rig(protocols::by_name(GetParam().name), cfg, 16, seconds(3));
  EXPECT_GT(rig.metrics.committed(), 50u);
  std::uint64_t recoveries = 0;
  for (SiteId s = 0; s < 4; ++s)
    recoveries += rig.cluster.replica(s).recoveries();
  EXPECT_EQ(recoveries, 1u);
  const auto r = rig.history.check_criterion(GetParam().criterion);
  EXPECT_TRUE(r.ok) << GetParam().name << ": " << r.detail;
}

// A site must never contradict itself: once its certification vote for a
// transaction is announced, every resend — protocol retries, timeout
// re-announcements, post-crash recovery — carries the same value. The
// recovery path used to violate this: the re-vote loop marked transactions
// voted while their value was still being recomputed, and the re-announce
// loop then shipped the default (false) my_vote, later contradicted by the
// real vote.
TEST_P(FaultMatrix, ExactlyOneVoteValuePerSiteAndTxnAcrossCrashes) {
  auto cfg = faulty_config(/*rf=*/2);
  cfg.durable = true;
  cfg.faults.crash(1, milliseconds(400), milliseconds(700));
  cfg.faults.crash(2, milliseconds(900), milliseconds(1200));

  std::map<std::tuple<SiteId, SiteId, std::uint64_t>, bool> first_vote;
  std::vector<std::string> contradictions;
  const auto watch_votes = [&](core::Cluster& cl) {
    cl.set_vote_observer([&](const core::Cluster::VoteEvent& e) {
      const auto key = std::make_tuple(e.voter, e.txn.coord, e.txn.seq);
      auto [it, inserted] = first_vote.emplace(key, e.vote);
      if (!inserted && it->second != e.vote)
        contradictions.push_back(
            "site " + std::to_string(e.voter) + " txn " +
            std::to_string(e.txn.coord) + "." + std::to_string(e.txn.seq) +
            ": " + (it->second ? "true" : "false") + " then " +
            (e.vote ? "true" : "false"));
    });
  };
  FaultyRig rig(protocols::by_name(GetParam().name), cfg, 16, seconds(3),
                watch_votes);

  EXPECT_GT(rig.metrics.committed(), 50u);
  std::uint64_t recoveries = 0;
  for (SiteId s = 0; s < 4; ++s)
    recoveries += rig.cluster.replica(s).recoveries();
  EXPECT_EQ(recoveries, 2u);
  EXPECT_TRUE(contradictions.empty())
      << contradictions.size() << " contradictory votes, first: "
      << contradictions.front();
  const auto r = rig.history.check_criterion(GetParam().criterion);
  EXPECT_TRUE(r.ok) << GetParam().name << ": " << r.detail;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FaultMatrix,
                         ::testing::ValuesIn(kProtocols),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// Seeded chaos: a hostile sampled schedule, ≥10k transactions, and no
// transaction may hang — every one commits, aborts, or times out.
// ---------------------------------------------------------------------------

TEST(Chaos, TenThousandTxnsTerminateUnderSeededChaos) {
  auto cfg = faulty_config(/*rf=*/2);
  cfg.durable = true;
  cfg.faults = sim::FaultPlan::chaos(cfg.sites, seconds(8), /*seed=*/1234);
  FaultyRig rig(protocols::by_name("Walter"), cfg, 64, seconds(10));
  EXPECT_GE(rig.txns_run(), 10'000u);
  // Closed-loop clients have at most one transaction in flight each; every
  // other submitted transaction must have terminated one way or another.
  EXPECT_LE(rig.txns_run() - rig.resolved(), rig.actors.size());
  const auto r = rig.history.check_criterion("PSI");
  EXPECT_TRUE(r.ok) << r.detail;
}

// Regression: the crash-recovery re-announce pass used to iterate the
// replica's unordered termination table directly, so the order in which a
// recovering site re-sent votes / re-armed timeouts depended on hash-map
// iteration order — address-sensitive state that replays differently across
// runs and stdlibs. The pass now sorts the undecided TxnIds first. Replaying
// the identical crash scenario must reproduce the identical outcome
// sequence, byte for byte.
TEST(FaultDeterminism, CrashRecoveryReplayIsReproducible) {
  const auto run_once = [](const char* protocol) {
    auto cfg = faulty_config(/*rf=*/2);
    cfg.durable = true;
    cfg.faults.crash(1, milliseconds(400), milliseconds(800));
    FaultyRig rig(protocols::by_name(protocol), cfg, 16, seconds(3));
    std::string digest;
    for (const auto& out : rig.history.txns()) {
      digest += out.txn.id.str();
      digest += out.committed ? "+" : "-";
      digest += std::to_string(out.response_time);
      digest += ";";
    }
    return digest;
  };
  for (const char* protocol : {"Walter", "P-Store+2PC", "GMU"}) {
    const auto a = run_once(protocol);
    const auto b = run_once(protocol);
    ASSERT_FALSE(a.empty()) << protocol;
    EXPECT_EQ(a, b) << protocol
                    << ": crash-recovery replay diverged between two runs "
                       "of the identical scenario";
  }
}

TEST(Chaos, GroupCommunicationSurvivesChaosToo) {
  auto cfg = faulty_config(/*rf=*/2);
  cfg.durable = true;
  cfg.faults = sim::FaultPlan::chaos(cfg.sites, seconds(4), /*seed=*/99);
  FaultyRig rig(protocols::by_name("P-Store"), cfg, 24, seconds(5));
  EXPECT_GT(rig.metrics.committed(), 100u);
  EXPECT_LE(rig.txns_run() - rig.resolved(), rig.actors.size());
  const auto r = rig.history.check_criterion("SER");
  EXPECT_TRUE(r.ok) << r.detail;
}

}  // namespace
}  // namespace gdur

// Determinism guard: the simulator's behavior is pinned byte-for-byte.
//
// The live runtime carved a transport/scheduler seam out of core::Cluster /
// core::Replica; that refactor (and any future one) must not perturb sim
// event ordering. This test runs a fixed, trace-free workload for every
// paper protocol and fingerprints the observable execution with integers
// only (counts, event totals, FNV-1a hashes of txn outcomes and version
// installs), then compares the digest byte-for-byte against a golden file
// captured from the pre-seam tree.
//
// Regenerate (only when a change is *supposed* to alter sim behavior):
//   GDUR_UPDATE_GOLDEN=1 ./build/tests/test_determinism_guard
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "checker/history.h"
#include "harness/metrics.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur {
namespace {

constexpr const char* kGoldenPath =
    GDUR_SOURCE_DIR "/tests/golden/sim_determinism.txt";

class Fnv1a {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::string digest_protocol(const std::string& name) {
  const auto spec = protocols::by_name(name);
  core::ClusterConfig cfg;
  cfg.sites = 3;
  cfg.replication = 1;
  cfg.objects_per_site = 96;
  cfg.partitions_per_site = 2;
  cfg.seed = 7;

  core::Cluster cluster(cfg, spec);
  harness::Metrics metrics;

  Fnv1a install_hash;
  std::uint64_t installs = 0;
  cluster.set_install_observer([&](const core::Cluster::InstallEvent& e) {
    ++installs;
    install_hash.add(e.obj);
    install_hash.add((static_cast<std::uint64_t>(e.writer.coord) << 44) ^
                     e.writer.seq);
    install_hash.add(e.pidx);
    install_hash.add(e.site);
    install_hash.add(static_cast<std::uint64_t>(e.time));
  });

  Fnv1a txn_hash;
  std::uint64_t outcomes = 0;
  std::vector<std::unique_ptr<workload::ClientActor>> actors;
  const auto wl = workload::WorkloadSpec::A(0.8);
  for (int i = 0; i < 12; ++i) {
    actors.push_back(std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % cfg.sites), wl, metrics,
        mix64(9'000 + static_cast<std::uint64_t>(i))));
    actors.back()->set_observer(
        [&](const core::TxnRecord& t, bool committed) {
          ++outcomes;
          txn_hash.add((static_cast<std::uint64_t>(t.id.coord) << 44) ^
                       t.id.seq);
          txn_hash.add(committed ? 1 : 0);
          txn_hash.add(static_cast<std::uint64_t>(cluster.simulator().now()));
        });
    actors.back()->start(i * microseconds(373));
  }
  cluster.simulator().run_until(seconds(1));

  char line[256];
  std::snprintf(line, sizeof(line),
                "%s committed=%llu aborted=%llu exec_fail=%llu events=%llu "
                "outcomes=%llu txn_hash=%016llx installs=%llu "
                "install_hash=%016llx",
                name.c_str(),
                static_cast<unsigned long long>(metrics.committed()),
                static_cast<unsigned long long>(metrics.aborted_ro +
                                                metrics.aborted_upd),
                static_cast<unsigned long long>(metrics.exec_failures),
                static_cast<unsigned long long>(
                    cluster.simulator().events_processed()),
                static_cast<unsigned long long>(outcomes),
                static_cast<unsigned long long>(txn_hash.value()),
                static_cast<unsigned long long>(installs),
                static_cast<unsigned long long>(install_hash.value()));
  return line;
}

std::string build_digest() {
  std::ostringstream out;
  for (const char* name :
       {"P-Store", "S-DUR", "GMU", "Serrano", "Walter", "Jessy2pc", "RC"})
    out << digest_protocol(name) << "\n";
  return out.str();
}

TEST(DeterminismGuard, SimRunsMatchPrePrBaseline) {
  const std::string digest = build_digest();

  if (std::getenv("GDUR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(f.good()) << "cannot write " << kGoldenPath;
    f << digest;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }

  std::ifstream f(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden " << kGoldenPath
                        << " (run with GDUR_UPDATE_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), digest)
      << "simulator behavior diverged from the pre-PR baseline";
}

TEST(DeterminismGuard, DigestIsRunToRunStable) {
  EXPECT_EQ(build_digest(), build_digest());
}

}  // namespace
}  // namespace gdur

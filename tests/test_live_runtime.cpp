// Unit tests for the live runtime building blocks (src/live/): mailbox
// FIFO semantics, timer-wheel ordering, the transport's exactly-once
// FIFO-per-link delivery over real loopback TCP, and a short end-to-end
// checker-verified run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "live/live_runner.h"
#include "live/live_transport.h"
#include "live/mailbox.h"
#include "live/timer_wheel.h"

namespace gdur::live {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, TasksRunInPostOrder) {
  Mailbox mb;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) mb.post([&order, i] { order.push_back(i); });
  mb.post([&mb] { mb.stop(); });
  mb.run();  // consumer on this thread; stop task ends it
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Mailbox, CrossThreadPostsAllExecuteFifoPerProducer) {
  Mailbox mb;
  std::thread consumer([&mb] { mb.run(); });
  constexpr int kProducers = 4, kPerProducer = 500;
  std::mutex mu;
  std::vector<std::vector<int>> seen(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, &mu, &seen, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        mb.post([&mu, &seen, p, i] {
          std::lock_guard lk(mu);
          seen[static_cast<std::size_t>(p)].push_back(i);
        });
      }
    });
  }
  for (auto& t : producers) t.join();
  // Drain: a sentinel posted after all producers joined runs after all
  // their tasks (single FIFO queue).
  std::atomic<bool> done{false};
  mb.post([&done] { done.store(true); });
  while (!done.load()) std::this_thread::sleep_for(1ms);
  mb.stop();
  consumer.join();
  EXPECT_EQ(mb.posted(), kProducers * kPerProducer + 1u);
  for (const auto& s : seen) {
    ASSERT_EQ(s.size(), static_cast<std::size_t>(kPerProducer));
    for (int i = 0; i < kPerProducer; ++i)
      EXPECT_EQ(s[static_cast<std::size_t>(i)], i);  // per-producer FIFO
  }
}

TEST(Mailbox, PostAfterStopIsDropped) {
  Mailbox mb;
  mb.stop();
  std::atomic<bool> ran{false};
  mb.post([&ran] { ran.store(true); });
  mb.run();  // returns immediately: already stopped
  EXPECT_FALSE(ran.load());
}

TEST(TimerWheel, FiresInDeadlineOrderAndFifoWithinSlot) {
  TimerWheel tw;
  tw.start();
  std::mutex mu;
  std::vector<int> order;
  auto mark = [&mu, &order](int id) {
    return [&mu, &order, id] {
      std::lock_guard lk(mu);
      order.push_back(id);
    };
  };
  // Scheduled out of deadline order; 10/11/12 share a slot and must keep
  // their scheduling order.
  tw.schedule_after(40ms, mark(3));
  tw.schedule_after(10ms, mark(10));
  tw.schedule_after(10ms, mark(11));
  tw.schedule_after(10ms, mark(12));
  tw.schedule_after(25ms, mark(2));
  std::this_thread::sleep_for(120ms);
  tw.stop();
  const std::vector<int> want{10, 11, 12, 2, 3};
  EXPECT_EQ(order, want);
  EXPECT_EQ(tw.scheduled(), 5u);
}

TEST(TimerWheel, NeverFiresEarly) {
  TimerWheel tw;
  tw.start();
  const auto t0 = TimerWheel::Clock::now();
  std::atomic<std::int64_t> fired_after_us{-1};
  tw.schedule_after(20ms, [&] {
    fired_after_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                             TimerWheel::Clock::now() - t0)
                             .count());
  });
  std::this_thread::sleep_for(80ms);
  tw.stop();
  ASSERT_GE(fired_after_us.load(), 0) << "timer never fired";
  EXPECT_GE(fired_after_us.load(), 20'000);
}

TEST(TimerWheel, StopDiscardsPendingAndJoins) {
  TimerWheel tw;
  tw.start();
  std::atomic<bool> ran{false};
  tw.schedule_after(10s, [&ran] { ran.store(true); });
  tw.stop();  // must not wait 10 s
  EXPECT_FALSE(ran.load());
}

// Transport fixture: N sites, every delivered frame recorded per link.
struct TransportRig {
  struct Rx {
    std::mutex mu;
    std::vector<std::vector<std::uint8_t>> frames;
  };

  TimerWheel wheel;
  std::vector<std::vector<Rx>> rx;  // [src][dst]
  std::unique_ptr<LiveTransport> tp;

  explicit TransportRig(int sites) {
    rx.resize(static_cast<std::size_t>(sites));
    for (auto& row : rx) {
      // Rx holds a mutex; construct in place at full size.
      std::vector<Rx> tmp(static_cast<std::size_t>(sites));
      row.swap(tmp);
    }
    wheel.start();
    tp = std::make_unique<LiveTransport>(
        sites, wheel,
        [this](SiteId src, SiteId dst, std::vector<std::uint8_t> frame) {
          auto& slot = rx[src][dst];
          std::lock_guard lk(slot.mu);
          slot.frames.push_back(std::move(frame));
        });
    tp->start();
  }

  ~TransportRig() {
    tp->stop();
    wheel.stop();
  }

  std::size_t total_received() {
    std::size_t n = 0;
    for (auto& row : rx)
      for (auto& slot : row) {
        std::lock_guard lk(slot.mu);
        n += slot.frames.size();
      }
    return n;
  }
};

std::vector<std::uint8_t> numbered_frame(SiteId src, SiteId dst, int i) {
  return {static_cast<std::uint8_t>(src), static_cast<std::uint8_t>(dst),
          static_cast<std::uint8_t>(i & 0xff),
          static_cast<std::uint8_t>((i >> 8) & 0xff)};
}

TEST(LiveTransport, ExactlyOnceFifoPerLink) {
  constexpr int kSites = 3, kPerLink = 400;
  TransportRig rig(kSites);
  // Blast every ordered pair concurrently from per-site sender threads.
  std::vector<std::thread> senders;
  for (SiteId s = 0; s < kSites; ++s) {
    senders.emplace_back([&rig, s] {
      for (int i = 0; i < kPerLink; ++i)
        for (SiteId d = 0; d < kSites; ++d)
          if (d != s) rig.tp->send(s, d, numbered_frame(s, d, i));
    });
  }
  for (auto& t : senders) t.join();
  const std::size_t expect = kSites * (kSites - 1) * kPerLink;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rig.total_received() < expect &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);
  ASSERT_EQ(rig.total_received(), expect) << "lost or duplicated frames";
  EXPECT_EQ(rig.tp->messages_sent(), expect);
  for (SiteId s = 0; s < kSites; ++s)
    for (SiteId d = 0; d < kSites; ++d) {
      if (d == s) continue;
      auto& slot = rig.rx[s][d];
      std::lock_guard lk(slot.mu);
      ASSERT_EQ(slot.frames.size(), static_cast<std::size_t>(kPerLink));
      for (int i = 0; i < kPerLink; ++i)
        EXPECT_EQ(slot.frames[static_cast<std::size_t>(i)],
                  numbered_frame(s, d, i))
            << "link " << int(s) << "->" << int(d) << " frame " << i;
    }
}

TEST(LiveTransport, DelayedLinkPreservesFifo) {
  constexpr int kSites = 2, kFrames = 50;
  TransportRig rig(kSites);
  rig.tp->set_link_delay(0, 1, 5ms);
  for (int i = 0; i < kFrames; ++i) rig.tp->send(0, 1, numbered_frame(0, 1, i));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rig.total_received() < kFrames &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);
  auto& slot = rig.rx[0][1];
  std::lock_guard lk(slot.mu);
  ASSERT_EQ(slot.frames.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i)
    EXPECT_EQ(slot.frames[static_cast<std::size_t>(i)],
              numbered_frame(0, 1, i));
}

// End-to-end: a real (short) run over loopback TCP must be checker-clean.
// The heavier per-protocol sweep lives in test_live_equivalence.cpp.
TEST(LiveRunner, ShortLoopbackRunIsCheckerClean) {
  LiveRunConfig cfg;
  cfg.protocol = "P-Store";
  cfg.sites = 2;
  cfg.clients = 8;
  cfg.secs = 0.5;
  const auto r = run_live(cfg);
  EXPECT_TRUE(r.checker_ok) << r.checker_detail;
  EXPECT_GT(r.metrics.committed(), 0u);
  EXPECT_EQ(r.hung_clients, 0);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.throughput_tps, 0.0);
}

TEST(LiveRunner, OpenLoopRunIsCheckerClean) {
  LiveRunConfig cfg;
  cfg.protocol = "RC";
  cfg.sites = 2;
  cfg.secs = 0.5;
  cfg.open_loop_tps = 200;  // well under the 1 ms wheel's pacing ceiling
  const auto r = run_live(cfg);
  EXPECT_TRUE(r.checker_ok) << r.checker_detail;
  EXPECT_GT(r.metrics.committed(), 0u);
  EXPECT_EQ(r.hung_clients, 0);
}

}  // namespace
}  // namespace gdur::live

// Certification clock discipline (gdur-hotpath-reachability's noclock
// contract on Replica::evaluate_certify).
//
// One certification = one timestamp. The sharded path fans a verdict out
// into per-shard sub-votes; each sub-vote's CertContext::now must be THE
// SAME value, read once before the fan-out. Reading cl_.now() inside the
// per-shard loop (the original code) is invisible under the simulator —
// sim time cannot advance inside a synchronous call — but under
// live::LiveCluster now() is a real steady_clock read, so sub-votes saw
// (a) one clock syscall per touched shard on the certification hot path
// and (b) *different* timestamps, letting a certify() that consults
// ctx.now diverge from its own unsharded verdict.
//
// The seam: Cluster::now() is virtual. TickingCluster advances its clock
// on every read, so the test observes exactly how many reads the
// certification path performs and what each sub-vote was told the time
// was — deterministically, with no live threads.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/protocol_spec.h"
#include "core/replica.h"
#include "protocols/protocols.h"

namespace gdur::core {

struct CertifyTestPeer {
  static bool evaluate(const Replica& r, const TxnRecord& t) {
    return r.evaluate_certify(t);
  }
};

namespace {

/// Every now() read returns a strictly larger time — any second read on
/// the certification path becomes visible as a timestamp mismatch.
class TickingCluster : public Cluster {
 public:
  using Cluster::Cluster;

  [[nodiscard]] SimTime now() const override { return base_ + ++reads_; }
  [[nodiscard]] int reads() const { return reads_; }
  void reset_reads() { reads_ = 0; }

 private:
  SimTime base_ = 1'000'000;
  mutable int reads_ = 0;
};

struct SubVote {
  int shard;
  SimTime now;
};

/// A shardable spec whose certify() records what each sub-vote observed.
ProtocolSpec recording_spec(std::vector<SubVote>* log) {
  ProtocolSpec s = protocols::by_name("P-Store");
  s.certify = [log](const CertContext& ctx) {
    log->push_back({ctx.shard, ctx.now});
    return true;
  };
  s.certify_shardable = true;
  s.trivial_certify = false;
  return s;
}

TxnRecord cross_shard_txn() {
  TxnRecord t;
  t.id = TxnId{0, 1};
  t.rs = {0, 1};  // shard_of(o, 4) = o % 4: touches shards 0..3
  t.ws = {2, 3};
  return t;
}

TEST(CertifyClock, ShardedSubVotesShareOneTimestamp) {
  std::vector<SubVote> log;
  ClusterConfig cfg;
  cfg.sites = 2;
  cfg.replication = 2;
  cfg.shards_per_site = 4;
  TickingCluster cluster(cfg, recording_spec(&log));
  cluster.reset_reads();

  const TxnRecord t = cross_shard_txn();
  EXPECT_TRUE(CertifyTestPeer::evaluate(cluster.replica(0), t));

  // All four touched shards voted, in ascending shard order.
  ASSERT_EQ(log.size(), 4u);
  for (int sh = 0; sh < 4; ++sh) EXPECT_EQ(log[sh].shard, sh);

  // One clock read for the whole certification, and every sub-vote was
  // told the same time. Under the pre-fix code this fails on both counts:
  // reads() == 4 and log[i].now == base + i + 1.
  EXPECT_EQ(cluster.reads(), 1);
  for (const SubVote& v : log) EXPECT_EQ(v.now, log[0].now);
}

TEST(CertifyClock, SerialPathAlsoReadsOnce) {
  std::vector<SubVote> log;
  ClusterConfig cfg;
  cfg.sites = 2;
  cfg.replication = 2;
  cfg.shards_per_site = 1;  // serial certification
  TickingCluster cluster(cfg, recording_spec(&log));
  cluster.reset_reads();

  EXPECT_TRUE(CertifyTestPeer::evaluate(cluster.replica(0),
                                        cross_shard_txn()));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].shard, -1);  // full certification, no shard restriction
  EXPECT_EQ(cluster.reads(), 1);
}

TEST(CertifyClock, NonShardableSpecFallsBackToOneFullVote) {
  std::vector<SubVote> log;
  ClusterConfig cfg;
  cfg.sites = 2;
  cfg.replication = 2;
  cfg.shards_per_site = 4;
  ProtocolSpec spec = recording_spec(&log);
  spec.certify_shardable = false;  // custom coupled certify()
  TickingCluster cluster(cfg, std::move(spec));
  cluster.reset_reads();

  EXPECT_TRUE(CertifyTestPeer::evaluate(cluster.replica(0),
                                        cross_shard_txn()));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].shard, -1);
  EXPECT_EQ(cluster.reads(), 1);
}

}  // namespace
}  // namespace gdur::core

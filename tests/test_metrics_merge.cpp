// Metrics::merge_from / LatencyStat::merge_from.
//
// Live mode records metrics per site thread — each SiteCollector owns a
// private Metrics, and the harness folds them together once the threads have
// joined. The merge must be histogram-exact: every percentile of the merged
// stat equals the percentile of the concatenated sample streams, not an
// approximation of it. These tests pin that contract, including under real
// concurrent collection into per-site shards.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness/metrics.h"
#include "obs/events.h"

namespace gdur::harness {
namespace {

/// Deterministic latency stream with a wide dynamic range (most samples in
/// the microsecond-to-millisecond band, a tail reaching seconds) so that
/// many histogram buckets are exercised.
std::vector<SimDuration> sample_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<SimDuration> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto magnitude = rng.next_below(7);  // 10^0 .. 10^6 microseconds
    SimDuration base = microseconds(1.0);
    for (std::uint64_t k = 0; k < magnitude; ++k) base *= 10;
    out.push_back(base + static_cast<SimDuration>(
                             rng.next_below(static_cast<std::uint64_t>(base))));
  }
  return out;
}

const double kQuantiles[] = {0.001, 0.01, 0.1, 0.25, 0.5,
                             0.75,  0.9,  0.99, 0.999, 1.0};

TEST(LatencyStatMerge, MatchesConcatenatedStream) {
  constexpr int kShards = 5;
  constexpr std::size_t kPerShard = 20'000;

  LatencyStat reference;
  std::array<LatencyStat, kShards> shards;
  for (int s = 0; s < kShards; ++s) {
    for (SimDuration d : sample_stream(1000 + static_cast<std::uint64_t>(s),
                                       kPerShard)) {
      shards[static_cast<std::size_t>(s)].add(d);
      reference.add(d);
    }
  }

  LatencyStat merged;
  for (const auto& s : shards) merged.merge_from(s);

  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.mean_ms(), reference.mean_ms());
  EXPECT_DOUBLE_EQ(merged.max_ms(), reference.max_ms());
  for (double q : kQuantiles)
    EXPECT_DOUBLE_EQ(merged.percentile_ms(q), reference.percentile_ms(q))
        << "quantile " << q;
}

TEST(LatencyStatMerge, MergeOrderIsIrrelevant) {
  const auto a = sample_stream(1, 5'000);
  const auto b = sample_stream(2, 3'000);
  LatencyStat sa, sb, ab, ba;
  for (SimDuration d : a) sa.add(d);
  for (SimDuration d : b) sb.add(d);
  ab.merge_from(sa);
  ab.merge_from(sb);
  ba.merge_from(sb);
  ba.merge_from(sa);
  EXPECT_EQ(ab.count(), ba.count());
  for (double q : kQuantiles)
    EXPECT_DOUBLE_EQ(ab.percentile_ms(q), ba.percentile_ms(q));
}

TEST(LatencyStatMerge, EmptyIsIdentity) {
  LatencyStat filled;
  for (SimDuration d : sample_stream(3, 1'000)) filled.add(d);
  const double p50 = filled.percentile_ms(0.5);

  LatencyStat empty;
  filled.merge_from(empty);  // no-op
  EXPECT_EQ(filled.count(), 1'000u);
  EXPECT_DOUBLE_EQ(filled.percentile_ms(0.5), p50);

  LatencyStat into_empty;
  into_empty.merge_from(filled);  // copy
  EXPECT_EQ(into_empty.count(), filled.count());
  EXPECT_DOUBLE_EQ(into_empty.mean_ms(), filled.mean_ms());
  EXPECT_DOUBLE_EQ(into_empty.percentile_ms(0.99), filled.percentile_ms(0.99));
}

TEST(LatencyStatMerge, PercentileContractAtTheEdges) {
  LatencyStat empty;
  EXPECT_DOUBLE_EQ(empty.percentile_ms(0.5), 0.0);

  LatencyStat s;
  for (SimDuration d : sample_stream(4, 2'000)) s.add(d);
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.0), 0.0) << "q <= 0 clamps to 0";
  EXPECT_DOUBLE_EQ(s.percentile_ms(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(2.0), s.max_ms()) << "q > 1 clamps to max";
}

TEST(MetricsMerge, AddsCountersReasonsAndPhaseStats) {
  Metrics a, b;
  a.committed_ro = 10;
  a.committed_upd = 20;
  a.aborted_upd = 3;
  a.exec_failures = 1;
  a.aborts_by_reason[0] = 4;
  b.committed_ro = 5;
  b.aborted_ro = 2;
  b.txns_timed_out = 7;
  b.aborts_by_reason[0] = 6;

  for (SimDuration d : sample_stream(5, 500)) a.txn_latency.add(d);
  for (SimDuration d : sample_stream(6, 700)) b.txn_latency.add(d);
  for (SimDuration d : sample_stream(7, 300)) a.phase[0].add(d);
  for (SimDuration d : sample_stream(8, 400)) b.phase[0].add(d);

  a.merge_from(b);
  EXPECT_EQ(a.committed_ro, 15u);
  EXPECT_EQ(a.committed_upd, 20u);
  EXPECT_EQ(a.aborted_ro, 2u);
  EXPECT_EQ(a.aborted_upd, 3u);
  EXPECT_EQ(a.exec_failures, 1u);
  EXPECT_EQ(a.txns_timed_out, 7u);
  EXPECT_EQ(a.aborts_by_reason[0], 10u);
  EXPECT_EQ(a.txn_latency.count(), 1'200u);
  EXPECT_EQ(a.phase[0].count(), 700u);
}

TEST(MetricsMerge, DifferentEpochCountsWidenToTheLongerHistory) {
  // An elastic run: site A lived through epochs 0..2, site B joined at
  // epoch 1 and saw only 1..2, site C retired before any reconfiguration
  // and reports epoch 0 alone. The merge must align by epoch, not by index
  // arithmetic on equal-length vectors.
  Metrics a, b, c;
  for (int i = 0; i < 4; ++i) a.note_commit_epoch(0);
  for (int i = 0; i < 2; ++i) a.note_commit_epoch(1);
  a.note_commit_epoch(2);
  for (int i = 0; i < 3; ++i) b.note_commit_epoch(1);
  for (int i = 0; i < 5; ++i) b.note_commit_epoch(2);
  for (int i = 0; i < 7; ++i) c.note_commit_epoch(0);

  Metrics merged;
  merged.merge_from(a);
  merged.merge_from(b);
  merged.merge_from(c);
  ASSERT_EQ(merged.committed_by_epoch.size(), 3u);
  EXPECT_EQ(merged.commits_in_epoch(0), 11u);
  EXPECT_EQ(merged.commits_in_epoch(1), 5u);
  EXPECT_EQ(merged.commits_in_epoch(2), 6u);
  EXPECT_EQ(merged.commits_in_epoch(3), 0u) << "unknown epochs read as zero";

  // Merging the short history into the long one must not shrink it.
  Metrics reversed;
  reversed.merge_from(b);
  reversed.merge_from(c);
  reversed.merge_from(a);
  ASSERT_EQ(reversed.committed_by_epoch.size(), 3u);
  for (EpochId e = 0; e < 3; ++e)
    EXPECT_EQ(reversed.commits_in_epoch(e), merged.commits_in_epoch(e));
}

TEST(MetricsMerge, NoteCommitEpochGrowsOnDemand) {
  Metrics m;
  EXPECT_TRUE(m.committed_by_epoch.empty());
  m.note_commit_epoch(5);
  ASSERT_EQ(m.committed_by_epoch.size(), 6u);
  EXPECT_EQ(m.commits_in_epoch(5), 1u);
  for (EpochId e = 0; e < 5; ++e) EXPECT_EQ(m.commits_in_epoch(e), 0u);
}

// The live-mode shape: each "site" collects into its own Metrics on its own
// thread (no sharing, no locks — exactly like live_runner's SiteCollectors),
// and the harness merges after joining. The merged result must be bit-equal
// in every derived statistic to a serial fold of the same streams.
TEST(MetricsMerge, ConcurrentPerSiteCollectionMergesExact) {
  constexpr int kSites = 8;
  constexpr std::size_t kPerSite = 50'000;

  // Pre-generate the per-site streams so the serial reference sees exactly
  // the same samples the threads record.
  std::vector<std::vector<SimDuration>> streams;
  for (int s = 0; s < kSites; ++s)
    streams.push_back(
        sample_stream(42'000 + static_cast<std::uint64_t>(s), kPerSite));

  std::array<Metrics, kSites> per_site;
  std::vector<std::thread> threads;
  threads.reserve(kSites);
  for (int s = 0; s < kSites; ++s) {
    threads.emplace_back([s, &per_site, &streams] {
      auto& m = per_site[static_cast<std::size_t>(s)];
      for (SimDuration d : streams[static_cast<std::size_t>(s)]) {
        ++m.committed_upd;
        m.txn_latency.add(d);
        m.upd_term_latency.add(d / 2);
      }
    });
  }
  for (auto& t : threads) t.join();

  Metrics merged;
  for (const auto& m : per_site) merged.merge_from(m);

  Metrics reference;
  for (const auto& stream : streams) {
    for (SimDuration d : stream) {
      ++reference.committed_upd;
      reference.txn_latency.add(d);
      reference.upd_term_latency.add(d / 2);
    }
  }

  EXPECT_EQ(merged.committed_upd, reference.committed_upd);
  EXPECT_EQ(merged.txn_latency.count(), reference.txn_latency.count());
  EXPECT_DOUBLE_EQ(merged.txn_latency.mean_ms(),
                   reference.txn_latency.mean_ms());
  for (double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(merged.txn_latency.percentile_ms(q),
                     reference.txn_latency.percentile_ms(q));
    EXPECT_DOUBLE_EQ(merged.upd_term_latency.percentile_ms(q),
                     reference.upd_term_latency.percentile_ms(q));
  }
}

}  // namespace
}  // namespace gdur::harness

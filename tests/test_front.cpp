// Tests for the production front door (src/front/): reactor framing over
// both backends, arena/pool recycling, shutdown signal plumbing, client
// sessions end to end against live clusters, presumed abort + session GC on
// disconnect, and both backpressure layers — admission pushback and the
// never-reading-client memory bound.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "front/arena.h"
#include "front/client.h"
#include "front/reactor.h"
#include "front/server.h"
#include "front/signals.h"
#include "live/live_cluster.h"
#include "net/codec.h"
#include "protocols/protocols.h"

namespace gdur::front {
namespace {

using namespace std::chrono_literals;
namespace codec = net::codec;

// --- raw-socket helpers (protocol-violating clients can't use GdurClient) --

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const auto k = ::write(fd, p, n);
    if (k <= 0) return false;
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool send_raw_frame(int fd, const std::vector<std::uint8_t>& body) {
  std::uint8_t hdr[4];
  const auto n = static_cast<std::uint32_t>(body.size());
  hdr[0] = static_cast<std::uint8_t>(n);
  hdr[1] = static_cast<std::uint8_t>(n >> 8);
  hdr[2] = static_cast<std::uint8_t>(n >> 16);
  hdr[3] = static_cast<std::uint8_t>(n >> 24);
  return write_all(fd, hdr, 4) && write_all(fd, body.data(), body.size());
}

/// Blocking read of one length-prefixed frame; empty on EOF/error.
std::vector<std::uint8_t> read_raw_frame(int fd) {
  std::uint8_t hdr[4];
  std::size_t got = 0;
  while (got < 4) {
    const auto k = ::read(fd, hdr + got, 4 - got);
    if (k <= 0) return {};
    got += static_cast<std::size_t>(k);
  }
  const std::uint32_t n = static_cast<std::uint32_t>(hdr[0]) |
                          (static_cast<std::uint32_t>(hdr[1]) << 8) |
                          (static_cast<std::uint32_t>(hdr[2]) << 16) |
                          (static_cast<std::uint32_t>(hdr[3]) << 24);
  std::vector<std::uint8_t> body(n);
  got = 0;
  while (got < n) {
    const auto k = ::read(fd, body.data() + got, n - got);
    if (k <= 0) return {};
    got += static_cast<std::size_t>(k);
  }
  return body;
}

int make_listener(std::uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, 16), 0);
  sockaddr_in bound = {};
  socklen_t blen = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  *port_out = ntohs(bound.sin_port);
  return fd;
}

template <typename Pred>
bool wait_until(Pred p, std::chrono::milliseconds limit = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (p()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return p();
}

// --- reactor ---------------------------------------------------------------

class ReactorBackends : public ::testing::TestWithParam<bool> {};

TEST_P(ReactorBackends, EchoesFramesAndCountsAccepts) {
  ReactorConfig rc;
  rc.use_epoll = GetParam();
  Reactor r(rc);
  std::uint16_t port = 0;
  r.add_listener(make_listener(&port));
  r.set_frame_handler([&r](int conn, std::vector<std::uint8_t> frame) {
    r.send_frame(conn, std::move(frame));  // echo
  });
  r.start();
  if (GetParam()) EXPECT_TRUE(r.using_epoll());
  else EXPECT_FALSE(r.using_epoll());

  const int fd = dial(port);
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> msg(static_cast<std::size_t>(1 + i % 37),
                                  static_cast<std::uint8_t>(i));
    ASSERT_TRUE(send_raw_frame(fd, msg));
    EXPECT_EQ(read_raw_frame(fd), msg) << "frame " << i;
  }
  ::close(fd);
  EXPECT_TRUE(wait_until([&r] { return r.accepted() == 1; }));
  EXPECT_EQ(r.frames_received(), 100u);
  r.stop();
}

INSTANTIATE_TEST_SUITE_P(EpollAndPoll, ReactorBackends,
                         ::testing::Values(true, false));

TEST(Reactor, CloseHandlerFiresExactlyOnceOnPeerClose) {
  Reactor r;
  std::uint16_t port = 0;
  r.add_listener(make_listener(&port));
  std::atomic<int> closes{0};
  r.set_close_handler([&closes](int) { closes.fetch_add(1); });
  r.start();
  const int fd = dial(port);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(wait_until([&r] { return r.accepted() == 1; }));
  ::close(fd);
  EXPECT_TRUE(wait_until([&closes] { return closes.load() == 1; }));
  std::this_thread::sleep_for(50ms);  // would catch a double-fire
  EXPECT_EQ(closes.load(), 1);
  r.stop();
}

TEST(Reactor, OversizedFrameDropsConnection) {
  ReactorConfig rc;
  rc.max_frame = 64;
  Reactor r(rc);
  std::uint16_t port = 0;
  r.add_listener(make_listener(&port));
  std::atomic<int> closes{0};
  r.set_close_handler([&closes](int) { closes.fetch_add(1); });
  r.start();
  const int fd = dial(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_raw_frame(fd, std::vector<std::uint8_t>(100, 7)));
  EXPECT_TRUE(wait_until([&closes] { return closes.load() == 1; }));
  EXPECT_EQ(r.frames_received(), 0u);
  ::close(fd);
  r.stop();
}

// --- arena / pool ----------------------------------------------------------

TEST(Arena, BlocksChainWithoutOverwriting) {
  Arena a(/*block_bytes=*/256);
  // Fill several blocks and verify every allocation keeps its bytes —
  // regression for the advance() path when the active block fills.
  std::vector<std::uint8_t*> ptrs;
  for (int i = 0; i < 64; ++i) {
    auto* p = static_cast<std::uint8_t*>(a.alloc(48));
    std::memset(p, i, 48);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 64; ++i)
    for (int k = 0; k < 48; ++k)
      ASSERT_EQ(ptrs[static_cast<std::size_t>(i)][k], i) << "alloc " << i;
  EXPECT_GE(a.blocks(), 8u);

  // reset() recycles without growing.
  const auto blocks = a.blocks();
  a.reset();
  for (int i = 0; i < 64; ++i) (void)a.alloc(48);
  EXPECT_EQ(a.blocks(), blocks);
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  Arena a(128);
  (void)a.alloc(32);
  auto* big = static_cast<std::uint8_t*>(a.alloc(4096));
  std::memset(big, 0xee, 4096);
  auto* small = static_cast<std::uint8_t*>(a.alloc(32));
  std::memset(small, 0x11, 32);
  EXPECT_EQ(big[4095], 0xee);
}

TEST(Pool, SteadyStateRecyclesNodes) {
  Pool<std::vector<int>> pool;
  auto* a = pool.get();
  auto* b = pool.get();
  EXPECT_EQ(pool.live(), 2u);
  pool.put(a);
  EXPECT_EQ(pool.pooled(), 1u);
  auto* c = pool.get();
  EXPECT_EQ(c, a);  // free-list reuse, no fresh allocation
  EXPECT_EQ(pool.pooled(), 0u);
  pool.put(b);
  pool.put(c);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.pooled(), 2u);
}

// --- signals ---------------------------------------------------------------

TEST(Signals, TestHookInterruptsSleep) {
  reset_shutdown_for_test();
  EXPECT_FALSE(shutdown_requested());
  EXPECT_FALSE(interruptible_sleep(0.05));  // elapses quietly
  request_shutdown_for_test();
  EXPECT_TRUE(shutdown_requested());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(interruptible_sleep(30.0));  // returns at once, not in 30 s
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
  reset_shutdown_for_test();
}

// --- client/server end to end ----------------------------------------------

struct LiveFront {
  std::unique_ptr<live::LiveCluster> cluster;
  std::unique_ptr<FrontServer> server;

  explicit LiveFront(const std::string& protocol, FrontConfig fc = {}) {
    live::LiveConfig lc;
    lc.base.sites = 2;
    lc.base.objects_per_site = 256;
    lc.base.partitions_per_site = 1;
    cluster = std::make_unique<live::LiveCluster>(
        lc, protocols::by_name(protocol));
    cluster->start();
    server = std::make_unique<FrontServer>(*cluster, fc);
    server->start();
  }
  ~LiveFront() {
    server->stop();
    cluster->stop();
  }
};

TEST(FrontEndToEnd, InteractiveAndStoredAcrossProtocols) {
  for (const char* protocol : {"P-Store", "GMU", "Walter"}) {
    LiveFront lf(protocol);
    std::atomic<int> observed{0};
    lf.server->set_observer(
        [&observed](const core::TxnRecord&, bool, SimTime) {
          observed.fetch_add(1);
        });

    ClientConfig cc;
    cc.port = lf.server->port();
    GdurClient c(cc);
    ASSERT_TRUE(c.connect()) << protocol;
    EXPECT_EQ(c.protocol(), protocol);
    EXPECT_GT(c.window(), 0u);

    int committed = 0;
    for (int i = 0; i < 20; ++i) {
      const auto h = c.begin_sync();
      ASSERT_TRUE(h.has_value()) << protocol;
      EXPECT_TRUE(c.read_sync(*h, static_cast<ObjectId>(i)));
      EXPECT_TRUE(c.write_sync(*h, static_cast<ObjectId>(i + 100)));
      if (c.commit_sync(*h)) ++committed;
    }
    for (int i = 0; i < 20; ++i)
      if (c.stored_sync({static_cast<ObjectId>(i)},
                        {static_cast<ObjectId>(i + 200)}))
        ++committed;
    // Single client, no contention: everything should commit.
    EXPECT_EQ(committed, 40) << protocol;
    EXPECT_GE(lf.server->ops_served(), 20u * 4 + 20u) << protocol;
    EXPECT_EQ(observed.load(), 40) << protocol;
    c.close();
    EXPECT_TRUE(wait_until(
        [&lf] { return lf.server->sessions_live() == 0; }))
        << protocol;
  }
}

TEST(FrontEndToEnd, CommitOfUnknownHandleFailsCleanly) {
  LiveFront lf("P-Store");
  ClientConfig cc;
  cc.port = lf.server->port();
  GdurClient c(cc);
  ASSERT_TRUE(c.connect());
  EXPECT_FALSE(c.commit_sync(123456));  // never issued
  EXPECT_FALSE(c.read_sync(123456, 1));
  // The session survives bogus handles (they are client errors, not
  // protocol violations).
  EXPECT_TRUE(c.stored_sync({1}, {2}));
}

TEST(FrontEndToEnd, DisconnectMidTxnPresumedAbortAndSessionGc) {
  LiveFront lf("P-Store");
  ClientConfig cc;
  cc.port = lf.server->port();
  {
    GdurClient c(cc);
    ASSERT_TRUE(c.connect());
    // Leave five transactions open (begun, written, never committed).
    for (int i = 0; i < 5; ++i) {
      const auto h = c.begin_sync();
      ASSERT_TRUE(h.has_value());
      ASSERT_TRUE(c.write_sync(*h, static_cast<ObjectId>(i)));
    }
    EXPECT_EQ(lf.server->open_txns(), 5u);
    c.close();  // disconnect with all five still open
  }
  // Presumed abort: the session and every open transaction must be GC'd
  // without any commit traffic, and no request context may leak.
  EXPECT_TRUE(wait_until([&lf] {
    return lf.server->breakdown() == "sessions=0 open_txns=0 ctx_live=0";
  })) << lf.server->breakdown();
}

TEST(FrontEndToEnd, AdmissionPushbackTripsAndReleases) {
  FrontConfig fc;
  fc.pushback_hi = 1;  // any queued certification trips the watermark
  fc.pushback_lo = 0;
  LiveFront lf("P-Store", fc);
  ClientConfig cc;
  cc.port = lf.server->port();
  GdurClient c(cc);
  ASSERT_TRUE(c.connect());

  // Pipelined update stored txns keep the certification queue nonempty;
  // with hi=1 the server must push back at least once, and the client must
  // see (and honor) the stop/resume frames.
  std::atomic<int> done{0};
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(c.submit(
        codec::ClientOp::kStored, 0, 0, {static_cast<ObjectId>(i % 64)},
        {static_cast<ObjectId>(64 + i % 64)},
        [&done](const GdurClient::Resp&) { done.fetch_add(1); }));
  }
  EXPECT_TRUE(wait_until([&done] { return done.load() == 400; }, 30000ms));
  EXPECT_GT(lf.server->pushback_trips(), 0u);
  EXPECT_GT(c.pushbacks(), 0u);
  // Released again once the queue drained (no wedged-open pushback).
  EXPECT_TRUE(wait_until([&lf] { return !lf.server->pushed_back(); }));
  EXPECT_FALSE(c.pushed_back());
}

TEST(FrontEndToEnd, WindowViolatorIsDisconnectedNotBuffered) {
  FrontConfig fc;
  fc.window = 4;  // cut-off at 16 in flight
  LiveFront lf("P-Store", fc);
  const int fd = dial(lf.server->port());
  ASSERT_GE(fd, 0);
  codec::Writer hello;
  hello.u8(static_cast<std::uint8_t>(codec::MsgType::kClientHello));
  codec::encode_client_hello(hello, {});
  ASSERT_TRUE(send_raw_frame(fd, hello.data()));
  ASSERT_FALSE(read_raw_frame(fd).empty());  // welcome

  // Ignore the window: blast 200 update transactions without reading
  // anything. The server must cut the session off instead of queueing.
  for (std::uint64_t i = 0; i < 200; ++i) {
    codec::Writer w;
    w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientReq));
    codec::encode_client_req(
        w, {i + 1, codec::ClientOp::kStored, 0, 0,
            {static_cast<ObjectId>(i % 32)},
            {static_cast<ObjectId>(32 + i % 32)}});
    if (!send_raw_frame(fd, w.data())) break;  // server already cut us off
  }
  // EOF (empty frame) must arrive: read whatever responses were produced
  // before the cut, then the close.
  EXPECT_TRUE(wait_until([fd] { return read_raw_frame(fd).empty(); },
                         15000ms));
  ::close(fd);
  EXPECT_TRUE(
      wait_until([&lf] { return lf.server->sessions_live() == 0; }));
}

TEST(FrontEndToEnd, NeverReadingClientIsPausedWithBoundedMemory) {
  FrontConfig fc;
  fc.window = 1u << 20;       // never trip the window-violation cutoff
  fc.pushback_hi = 1u << 20;  // nor admission pushback
  fc.pause_read_at = 8 * 1024;
  fc.sndbuf = 4096;  // keep the kernel from absorbing the backlog
  LiveFront lf("P-Store", fc);

  // A tiny receive buffer keeps the kernel from absorbing the backlog, so
  // the memory pressure lands where the test looks: the reactor's
  // per-connection output queue. Must be set before connect().
  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(cfd, 0);
  const int rcv = 4096;
  ::setsockopt(cfd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(lf.server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(cfd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)), 0);
  codec::Writer hello;
  hello.u8(static_cast<std::uint8_t>(codec::MsgType::kClientHello));
  codec::encode_client_hello(hello, {});
  ASSERT_TRUE(send_raw_frame(cfd, hello.data()));

  // Flood read-only stored txns, reading NOTHING back, non-blocking: once
  // our send buffer jams, the server has stopped reading — which, with the
  // window and admission gates disabled, can only be the auto-pause.
  const int fl = ::fcntl(cfd, F_GETFL);
  ::fcntl(cfd, F_SETFL, fl | O_NONBLOCK);
  constexpr std::uint64_t kMaxReqs = 20000;
  std::uint64_t sent = 0;
  int stalls = 0;
  while (sent < kMaxReqs && stalls < 200) {
    codec::Writer w;
    w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientReq));
    codec::encode_client_req(w, {sent + 1, codec::ClientOp::kStored, 0, 0,
                                 {static_cast<ObjectId>(sent % 128)}, {}});
    std::vector<std::uint8_t> frame;
    const auto n = static_cast<std::uint32_t>(w.size());
    frame = {static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
             static_cast<std::uint8_t>(n >> 16),
             static_cast<std::uint8_t>(n >> 24)};
    frame.insert(frame.end(), w.data().begin(), w.data().end());
    const auto k = ::send(cfd, frame.data(), frame.size(), 0);
    if (k == static_cast<ssize_t>(frame.size())) {
      ++sent;
      stalls = 0;
    } else if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++stalls;  // pipe jammed: server stopped reading
      std::this_thread::sleep_for(5ms);
    } else {
      // Partial frame write can't happen below the ~64K atomic-send bound;
      // anything else is a real error.
      FAIL() << "send returned " << k << " errno=" << errno;
    }
  }
  ASSERT_GT(sent, 0u);

  Reactor& r = lf.server->reactor();
  // Conn ids start at 0 per reactor; this client is the only connection.
  EXPECT_TRUE(wait_until([&r] { return r.read_paused(0); }, 15000ms));
  // Bounded: roughly the watermark plus one read burst of small responses —
  // not the full backlog of `sent` responses.
  EXPECT_LT(r.pending_out_bytes(), 64u * 1024);

  // Drain: every admitted request's response must eventually arrive (the
  // pause resumes below half the watermark; nothing was dropped).
  ::fcntl(cfd, F_SETFL, fl);  // back to blocking reads
  std::uint64_t got = 0;
  while (got < sent) {
    const auto f = read_raw_frame(cfd);
    ASSERT_FALSE(f.empty()) << "connection died after " << got;
    if (f[0] == static_cast<std::uint8_t>(codec::MsgType::kClientResp))
      ++got;
  }
  EXPECT_TRUE(wait_until([&r] { return !r.read_paused(0); }));
  ::close(cfd);
}

}  // namespace
}  // namespace gdur::front

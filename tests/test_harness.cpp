// Tests for the experiment harness: metric math and run reproducibility.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/metrics.h"
#include "protocols/protocols.h"

namespace gdur::harness {
namespace {

TEST(LatencyStat, MeanAndCount) {
  LatencyStat s;
  s.add(milliseconds(10));
  s.add(milliseconds(20));
  s.add(milliseconds(30));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_NEAR(s.mean_ms(), 20.0, 1e-9);
  EXPECT_NEAR(s.max_ms(), 30.0, 1e-9);
}

TEST(LatencyStat, PercentilesAreOrderedAndApproximate) {
  LatencyStat s;
  for (int i = 1; i <= 1000; ++i) s.add(milliseconds(i));
  const double p50 = s.percentile_ms(0.5);
  const double p95 = s.percentile_ms(0.95);
  const double p99 = s.percentile_ms(0.99);
  EXPECT_LT(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 500, 500 * 0.08);  // log buckets: ~4-8% resolution
  EXPECT_NEAR(p99, 990, 990 * 0.08);
}

TEST(LatencyStat, EmptyStatIsZero) {
  LatencyStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean_ms(), 0.0);
  EXPECT_EQ(s.percentile_ms(0.99), 0.0);
}

TEST(LatencyStat, PercentileContractAtTheEdges) {
  // Contract: q <= 0 -> 0.0, q > 1 -> max_ms(), any q on empty -> 0.0.
  LatencyStat empty;
  EXPECT_EQ(empty.percentile_ms(-1.0), 0.0);
  EXPECT_EQ(empty.percentile_ms(0.0), 0.0);
  EXPECT_EQ(empty.percentile_ms(2.0), 0.0);

  LatencyStat s;
  for (int i = 1; i <= 100; ++i) s.add(milliseconds(i));
  EXPECT_EQ(s.percentile_ms(0.0), 0.0);
  EXPECT_EQ(s.percentile_ms(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(1.5), s.max_ms());
  EXPECT_DOUBLE_EQ(s.percentile_ms(100.0), s.max_ms());
  // q = 1 stays within the histogram (upper edge of the last sample's
  // bucket), never below the true maximum's bucket lower edge.
  EXPECT_GE(s.percentile_ms(1.0), s.percentile_ms(0.99));
  // A tiny-but-positive q targets the first sample, not zero.
  EXPECT_GT(s.percentile_ms(1e-9), 0.0);
  EXPECT_LE(s.percentile_ms(1e-9), s.percentile_ms(0.5));
}

TEST(LatencyStat, ResetClears) {
  LatencyStat s;
  s.add(milliseconds(5));
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Metrics, AbortRatios) {
  Metrics m;
  m.committed_ro = 70;
  m.committed_upd = 20;
  m.aborted_upd = 10;
  EXPECT_EQ(m.committed(), 90u);
  EXPECT_EQ(m.aborted(), 10u);
  EXPECT_NEAR(m.abort_ratio_pct(), 10.0, 1e-9);
  EXPECT_NEAR(m.upd_abort_ratio_pct(), 100.0 * 10 / 30, 1e-9);
}

TEST(Metrics, EmptyRatiosAreZero) {
  Metrics m;
  EXPECT_EQ(m.abort_ratio_pct(), 0.0);
  EXPECT_EQ(m.upd_abort_ratio_pct(), 0.0);
}

TEST(Experiment, DeterministicForSameSeed) {
  ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 1000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.clients = 32;
  cfg.warmup = seconds(0.3);
  cfg.window = seconds(1);
  const auto a = run_experiment(protocols::jessy2pc(), cfg);
  const auto b = run_experiment(protocols::jessy2pc(), cfg);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.upd_term_latency_ms, b.upd_term_latency_ms);
}

TEST(Experiment, DifferentSeedsDiffer) {
  ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 1000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.clients = 32;
  cfg.warmup = seconds(0.3);
  cfg.window = seconds(1);
  cfg.seed = 1;
  const auto a = run_experiment(protocols::jessy2pc(), cfg);
  cfg.seed = 2;
  const auto b = run_experiment(protocols::jessy2pc(), cfg);
  EXPECT_NE(a.messages, b.messages);
}

TEST(Experiment, ThroughputScalesWithClientsBeforeSaturation) {
  ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 10'000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.warmup = seconds(0.3);
  cfg.window = seconds(1);
  cfg.clients = 32;
  const auto small = run_experiment(protocols::rc(), cfg);
  cfg.clients = 128;
  const auto big = run_experiment(protocols::rc(), cfg);
  EXPECT_GT(big.throughput_tps, small.throughput_tps * 3.0);
}

TEST(Experiment, SweepReturnsOnePointPerLoad) {
  ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 1000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.warmup = seconds(0.2);
  cfg.window = seconds(0.5);
  const auto rs = run_sweep(protocols::rc(), cfg, {8, 16, 32});
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0].clients, 8);
  EXPECT_EQ(rs[2].clients, 32);
}

TEST(Experiment, CpuUtilizationWithinBounds) {
  ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 1000;
  cfg.workload = workload::WorkloadSpec::A(0.9);
  cfg.clients = 64;
  cfg.warmup = seconds(0.3);
  cfg.window = seconds(1);
  const auto r = run_experiment(protocols::walter(), cfg);
  EXPECT_GT(r.cpu_utilization, 0.0);
  EXPECT_LE(r.cpu_utilization, 1.0);
}

}  // namespace
}  // namespace gdur::harness

#include "versioning/oracle.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <queue>

namespace gdur::versioning {

const char* to_string(VersioningKind k) {
  switch (k) {
    case VersioningKind::kTS:
      return "TS";
    case VersioningKind::kVC:
      return "VC";
    case VersioningKind::kVTS:
      return "VTS";
    case VersioningKind::kGMV:
      return "GMV";
    case VersioningKind::kPDV:
      return "PDV";
  }
  return "?";
}

namespace {

/// Wire bytes per vector-clock entry. The paper's implementation is Java
/// with standard object serialization; a boxed (site, counter) entry plus
/// framing is far more than 8 raw bytes. This constant is what makes the
/// metadata-marshaling overhead of vector-based mechanisms visible, as in
/// Figure 4 (GMU** vs RC).
constexpr std::uint64_t kBytesPerEntry = 32;

/// Shared helper: per-partition commit indices.
///
/// Indices are assigned once per (transaction, partition) — on the first
/// replica to apply — and memoized, so that every replica of a partition
/// stores the *same* index for the same version. This keeps certification
/// and snapshot-compatibility tests coherent across replicas (the paper's
/// implementations derive the same property from their commit protocols).
class PartitionCounters {
 public:
  explicit PartitionCounters(PartitionId partitions)
      : counts_(partitions, 0) {}

  /// Indices for transaction (origin, seq) in `parts`, aligned with it.
  std::vector<std::uint64_t> assign(SiteId origin, std::uint64_t seq,
                                    const std::vector<PartitionId>& parts) {
    const std::uint64_t key = (static_cast<std::uint64_t>(origin) << 44) ^ seq;
    auto it = memo_.find(key);
    if (it == memo_.end()) {
      std::vector<std::pair<PartitionId, std::uint64_t>> assigned;
      assigned.reserve(parts.size());
      for (PartitionId p : parts) assigned.emplace_back(p, ++counts_[p]);
      it = memo_.emplace(key, std::move(assigned)).first;
      fifo_.push_back(key);
      if (fifo_.size() > kMemoCap) {
        memo_.erase(fifo_.front());
        fifo_.pop_front();
      }
    }
    std::vector<std::uint64_t> out;
    out.reserve(parts.size());
    for (PartitionId p : parts) {
      std::uint64_t idx = 0;
      for (const auto& [q, i] : it->second) {
        if (q == p) {
          idx = i;
          break;
        }
      }
      out.push_back(idx);
    }
    return out;
  }

 private:
  static constexpr std::size_t kMemoCap = 200'000;
  std::vector<std::uint64_t> counts_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<PartitionId, std::uint64_t>>>
      memo_;
  std::deque<std::uint64_t> fifo_;
};

// ---------------------------------------------------------------------------
// TS — scalar timestamps (Lamport-style commit sequence per site).
// ---------------------------------------------------------------------------
class TsOracle final : public VersionOracle {
 public:
  explicit TsOracle(const store::Partitioner& part)
      : VersionOracle(part),
        counters_(part.partitions()),
        commit_count_(static_cast<std::size_t>(part.sites()), 0) {}

  [[nodiscard]] VersioningKind kind() const override {
    return VersioningKind::kTS;
  }
  [[nodiscard]] std::uint64_t metadata_bytes() const override { return 16; }

  void begin_snapshot(SiteId coord, TxnSnapshot& snap) const override {
    snap = {};
    snap.start_seq = commit_count_[coord];
  }

  [[nodiscard]] int choose(SiteId at, const store::ObjectChain* chain,
                           PartitionId, const TxnSnapshot& snap) const override {
    // Snapshot completeness: if this site has not yet applied every commit
    // up to the snapshot point, the version to read may simply be missing
    // here — wait (the caller retries) rather than serve a fractured
    // snapshot. Serrano blocks reads the same way.
    if (commit_count_[at] < snap.start_seq) return kNoCompatibleVersion;
    if (chain == nullptr || chain->empty()) return kInitialVersion;
    // Serrano-style snapshot read: latest version whose global commit
    // sequence number is within the start-time snapshot.
    for (int i = static_cast<int>(chain->size()) - 1; i >= 0; --i) {
      if (chain->at(static_cast<std::size_t>(i)).stamp.seq <= snap.start_seq)
        return i;
    }
    return kInitialVersion;
  }

  void note_read(const store::Version*, PartitionId,
                 TxnSnapshot&) const override {}

  [[nodiscard]] Stamp submit_stamp(SiteId coord, std::uint64_t coord_seq,
                                   const TxnSnapshot&) const override {
    return Stamp{.origin = coord, .seq = coord_seq, .dep = {}};
  }

  std::vector<std::uint64_t> on_apply(SiteId at, Stamp& stamp,
                                      const std::vector<PartitionId>& parts,
                                      const TxnSnapshot&) override {
    // The memo key must be the txn's stable submit identity, not the
    // per-site commit sequence assigned below.
    const std::uint64_t submit_seq = stamp.seq;
    // The commit sequence number: under total-order delivery every site
    // counts the same commits, making this a global timestamp (Serrano).
    stamp.seq = ++commit_count_[at];
    return counters_.assign(stamp.origin, submit_seq, parts);
  }

  std::uint64_t on_commit_observed(SiteId at) override {
    return ++commit_count_[at];
  }

  [[nodiscard]] bool visible(const store::Version& v, PartitionId,
                             const TxnSnapshot& snap) const override {
    return v.stamp.seq <= snap.start_seq;
  }

 private:
  PartitionCounters counters_;
  std::vector<std::uint64_t> commit_count_;
};

// ---------------------------------------------------------------------------
// VTS — vector timestamps (Walter, S-DUR). VC differs only in wire size.
// ---------------------------------------------------------------------------
class VtsOracle : public VersionOracle {
 public:
  explicit VtsOracle(const store::Partitioner& part)
      : VersionOracle(part),
        counters_(part.partitions()),
        vts_(static_cast<std::size_t>(part.sites()),
             std::vector<std::uint64_t>(static_cast<std::size_t>(part.sites()),
                                        0)) {}

  [[nodiscard]] VersioningKind kind() const override {
    return VersioningKind::kVTS;
  }
  [[nodiscard]] std::uint64_t metadata_bytes() const override {
    return kBytesPerEntry * static_cast<std::uint64_t>(part_.sites());
  }

  void begin_snapshot(SiteId coord, TxnSnapshot& snap) const override {
    snap = {};
    snap.vts = vts_[coord];
  }

  [[nodiscard]] int choose(SiteId at, const store::ObjectChain* chain,
                           PartitionId, const TxnSnapshot& snap) const override {
    // Snapshot completeness: wait until this site has learned every commit
    // inside the requester's start vector, otherwise a version the snapshot
    // must include may be missing here (Walter blocks such reads too).
    for (SiteId c = 0; c < static_cast<SiteId>(vts_.size()); ++c)
      if (vts_[at][c] < snap.vts[c]) return kNoCompatibleVersion;
    if (chain == nullptr || chain->empty()) return kInitialVersion;
    for (int i = static_cast<int>(chain->size()) - 1; i >= 0; --i) {
      const auto& st = chain->at(static_cast<std::size_t>(i)).stamp;
      if (st.seq <= snap.vts[st.origin]) return i;
    }
    return kInitialVersion;
  }

  void note_read(const store::Version*, PartitionId,
                 TxnSnapshot&) const override {}

  [[nodiscard]] Stamp submit_stamp(SiteId coord, std::uint64_t coord_seq,
                                   const TxnSnapshot&) const override {
    return Stamp{.origin = coord, .seq = coord_seq, .dep = {}};
  }

  std::vector<std::uint64_t> on_apply(SiteId at, Stamp& stamp,
                                      const std::vector<PartitionId>& parts,
                                      const TxnSnapshot&) override {
    vts_[at][stamp.origin] = std::max(vts_[at][stamp.origin], stamp.seq);
    return counters_.assign(stamp.origin, stamp.seq, parts);
  }

  void on_propagate(SiteId at, const Stamp& stamp) override {
    vts_[at][stamp.origin] = std::max(vts_[at][stamp.origin], stamp.seq);
  }

  [[nodiscard]] bool visible(const store::Version& v, PartitionId,
                             const TxnSnapshot& snap) const override {
    return v.stamp.seq <= snap.vts[v.stamp.origin];
  }

  /// Current vector at a site (tests / diagnostics).
  [[nodiscard]] const std::vector<std::uint64_t>& vts_at(SiteId s) const {
    return vts_[s];
  }

 private:
  PartitionCounters counters_;
  std::vector<std::vector<std::uint64_t>> vts_;
};

class VcOracle final : public VtsOracle {
 public:
  using VtsOracle::VtsOracle;
  [[nodiscard]] VersioningKind kind() const override {
    return VersioningKind::kVC;
  }
  // Versions carry the whole vector rather than an (origin, seq) pair.
  [[nodiscard]] std::uint64_t metadata_bytes() const override {
    return 2 * kBytesPerEntry * static_cast<std::uint64_t>(part_.sites());
  }
};

// ---------------------------------------------------------------------------
// GMV / PDV — dependence vectors over partitions.
// ---------------------------------------------------------------------------
/// Contiguous-apply frontier: the largest n such that every partition
/// commit index <= n has been applied at a site. Decisions from distinct
/// coordinators may arrive out of order, so indices are buffered until the
/// prefix closes.
class ApplyFrontier {
 public:
  void add(std::uint64_t idx) {
    if (idx <= contiguous_) return;
    pending_.push(idx);
    while (!pending_.empty() && pending_.top() == contiguous_ + 1) {
      ++contiguous_;
      pending_.pop();
    }
  }
  [[nodiscard]] std::uint64_t contiguous() const { return contiguous_; }

 private:
  std::uint64_t contiguous_ = 0;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      pending_;
};

class DepVectorOracle final : public VersionOracle {
 public:
  DepVectorOracle(VersioningKind kind, const store::Partitioner& part)
      : VersionOracle(part),
        kind_(kind),
        counters_(part.partitions()),
        frontier_(static_cast<std::size_t>(part.sites()),
                  std::vector<ApplyFrontier>(part.partitions())) {}

  [[nodiscard]] VersioningKind kind() const override { return kind_; }
  [[nodiscard]] std::uint64_t metadata_bytes() const override {
    // GMV vectors are indexed by storage node, PDV by partition; the sizes
    // coincide when each site hosts one partition.
    const auto dims = kind_ == VersioningKind::kGMV
                          ? static_cast<std::uint64_t>(part_.sites())
                          : static_cast<std::uint64_t>(part_.partitions());
    return kBytesPerEntry * dims;
  }

  void begin_snapshot(SiteId, TxnSnapshot& snap) const override {
    snap = {};
    snap.floor.assign(part_.partitions(), 0);
    snap.ceil.assign(part_.partitions(), kNoCeiling);
  }

  [[nodiscard]] int choose(SiteId at, const store::ObjectChain* chain,
                           PartitionId p,
                           const TxnSnapshot& snap) const override {
    // Snapshot completeness: the transaction's floor says its snapshot
    // contains partition-p state up to floor[p]. If this replica has not
    // applied that prefix yet, the version to read may be missing here —
    // wait (the caller retries) rather than silently serve older state.
    if (frontier_[at][p].contiguous() < snap.floor[p])
      return kNoCompatibleVersion;

    const auto within_ceil = [&](const store::Version& v) {
      for (PartitionId q = 0; q < part_.partitions(); ++q) {
        const std::uint64_t dq = q < v.stamp.dep.size() ? v.stamp.dep[q] : 0;
        if (dq > snap.ceil[q]) return false;  // v depends on state newer than a read
      }
      return true;
    };
    if (chain != nullptr) {
      for (int i = static_cast<int>(chain->size()) - 1; i >= 0; --i) {
        const auto& v = chain->at(static_cast<std::size_t>(i));
        if (within_ceil(v)) return i;
        // A version inside the floor cannot be skipped: anything older is
        // superseded within the snapshot. Combined with the ceiling
        // conflict above, no consistent version exists at this granularity.
        if (v.pidx <= snap.floor[p]) return kNoCompatibleVersion;
      }
    }
    // No committed version lies within the snapshot floor: in the snapshot
    // the object is still at its initial version.
    return kInitialVersion;
  }

  void note_read(const store::Version* v, PartitionId p,
                 TxnSnapshot& snap) const override {
    if (v == nullptr) {
      // Reading the initial version: the snapshot must exclude every write
      // of this object. At partition granularity the first write's index is
      // unknown, so conservatively pin the whole partition at state 0.
      snap.ceil[p] = 0;
      return;
    }
    snap.ceil[p] = std::min(snap.ceil[p], v->pidx);
    for (PartitionId q = 0; q < part_.partitions(); ++q) {
      const std::uint64_t dq = q < v->stamp.dep.size() ? v->stamp.dep[q] : 0;
      snap.floor[q] = std::max(snap.floor[q], dq);
    }
  }

  [[nodiscard]] Stamp submit_stamp(SiteId coord, std::uint64_t coord_seq,
                                   const TxnSnapshot& snap) const override {
    // The dependence vector starts from everything the transaction read;
    // the written partitions' own slots are filled in at apply time.
    return Stamp{.origin = coord, .seq = coord_seq, .dep = snap.floor};
  }

  std::vector<std::uint64_t> on_apply(SiteId at, Stamp& stamp,
                                      const std::vector<PartitionId>& parts,
                                      const TxnSnapshot&) override {
    if (stamp.dep.size() < part_.partitions())
      stamp.dep.resize(part_.partitions(), 0);
    const auto pidx = counters_.assign(stamp.origin, stamp.seq, parts);
    for (std::size_t k = 0; k < parts.size(); ++k) {
      stamp.dep[parts[k]] = std::max(stamp.dep[parts[k]], pidx[k]);
      // Advance the apply frontier only for partitions this site hosts —
      // it never serves reads for the others.
      for (SiteId s : part_.sites_of(parts[k])) {
        if (s == at) {
          frontier_[at][parts[k]].add(pidx[k]);
          break;
        }
      }
    }
    return pidx;
  }

  [[nodiscard]] bool visible(const store::Version& v, PartitionId p,
                             const TxnSnapshot& snap) const override {
    return v.pidx <= snap.floor[p];
  }

 private:
  VersioningKind kind_;
  PartitionCounters counters_;
  // mutable state is fine: the oracle is logically per-site; choose() is
  // const for callers but frontiers advance via on_apply.
  std::vector<std::vector<ApplyFrontier>> frontier_;
};

}  // namespace

std::unique_ptr<VersionOracle> make_oracle(VersioningKind kind,
                                           const store::Partitioner& part) {
  switch (kind) {
    case VersioningKind::kTS:
      return std::make_unique<TsOracle>(part);
    case VersioningKind::kVC:
      return std::make_unique<VcOracle>(part);
    case VersioningKind::kVTS:
      return std::make_unique<VtsOracle>(part);
    case VersioningKind::kGMV:
    case VersioningKind::kPDV:
      return std::make_unique<DepVectorOracle>(kind, part);
  }
  return nullptr;
}

}  // namespace gdur::versioning

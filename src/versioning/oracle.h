// VersionOracle — the pluggable versioning mechanism (Θ) of §4.1.
//
// One oracle instance serves the whole cluster and keeps per-site clock
// state internally (the simulator is single-threaded, so this is simply a
// convenient layout; each site only ever touches its own slots).
//
// Mechanisms:
//   TS   scalar commit sequence per site. Globally consistent when every
//        update is delivered everywhere in total order (Serrano); used
//        without snapshot semantics by choose_last protocols (P-Store).
//   VC   vector clocks: like VTS but versions carry the whole vector.
//   VTS  vector timestamps (Walter, S-DUR): versions are identified by
//        (origin site, origin sequence); a site's vts[] advances when it
//        applies or hears about commits, so snapshot freshness depends on
//        background propagation — exactly the Walter/S-DUR trade-off.
//   GMV  GMU vectors: dependence vectors giving fresh, consistent,
//        non-monotonic snapshots with no background propagation.
//   PDV  partitioned dependence vectors (Jessy): same snapshot semantics at
//        partition granularity, permissive to all consistent snapshots.
//
// Implementation note (documented in DESIGN.md): GMV and PDV share one
// dependence-vector implementation at partition granularity; they differ in
// advertised metadata size (|sites| vs |partitions| entries) and name. The
// experiments' observable differences between GMU and Jessy2pc come from
// their certification scopes and tests, which are faithful.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "store/mv_store.h"
#include "store/partitioner.h"
#include "versioning/stamp.h"

namespace gdur::versioning {

/// Result of choose(): which chain entry to read. `kInitialVersion` denotes
/// the implicit initial version every object has before its first write.
constexpr int kInitialVersion = -1;
constexpr int kNoCompatibleVersion = -2;

class VersionOracle {
 public:
  explicit VersionOracle(const store::Partitioner& part) : part_(part) {}
  virtual ~VersionOracle() = default;

  [[nodiscard]] virtual VersioningKind kind() const = 0;

  /// Wire size of the versioning metadata attached to messages (snapshot
  /// vectors on read requests, stamps on termination messages).
  [[nodiscard]] virtual std::uint64_t metadata_bytes() const = 0;

  /// Initializes a transaction snapshot at its coordinator.
  virtual void begin_snapshot(SiteId coord, TxnSnapshot& snap) const = 0;

  /// choose_cons: picks the chain index to read at site `at` for an object
  /// of partition `p`, honoring `snap` (not mutated; see note_read).
  /// chain may be nullptr (object never written here).
  [[nodiscard]] virtual int choose(SiteId at, const store::ObjectChain* chain,
                                   PartitionId p,
                                   const TxnSnapshot& snap) const = 0;

  /// Folds a performed read into the snapshot. `v` is nullptr for the
  /// initial version.
  virtual void note_read(const store::Version* v, PartitionId p,
                         TxnSnapshot& snap) const = 0;

  /// Stamp identity minted at the coordinator when an update transaction is
  /// submitted; `coord_seq` is the coordinator-local update serial.
  [[nodiscard]] virtual Stamp submit_stamp(SiteId coord,
                                           std::uint64_t coord_seq,
                                           const TxnSnapshot& snap) const = 0;

  /// Called once per (applying site, committed txn). Advances site clocks,
  /// assigns per-partition commit indices for the partitions in
  /// `parts_written` (deduplicated), and completes `stamp`. Returns the
  /// assigned index per written partition, aligned with `parts_written`.
  virtual std::vector<std::uint64_t> on_apply(
      SiteId at, Stamp& stamp, const std::vector<PartitionId>& parts_written,
      const TxnSnapshot& snap) = 0;

  /// Called at every site that observes a commit decision without applying
  /// data (e.g. Serrano's non-genuine delivery) so scalar clocks advance.
  /// Returns the site's new commit sequence number (0 if untracked).
  virtual std::uint64_t on_commit_observed(SiteId /*at*/) { return 0; }

  /// Background propagation (Walter / S-DUR post_commit): site `at` learns
  /// the stamp of a remotely committed transaction.
  virtual void on_propagate(SiteId /*at*/, const Stamp& /*stamp*/) {}

  /// Is version `v` contained in `snap`? Used by write-write certification
  /// (Walter, Serrano, Jessy2pc): the latest committed version of every
  /// written object must be visible to the transaction.
  [[nodiscard]] virtual bool visible(const store::Version& v, PartitionId p,
                                     const TxnSnapshot& snap) const = 0;

 protected:
  const store::Partitioner& part_;
};

std::unique_ptr<VersionOracle> make_oracle(VersioningKind kind,
                                           const store::Partitioner& part);

}  // namespace gdur::versioning

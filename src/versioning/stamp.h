// Version numbers (Θ in the paper).
//
// A committed version carries a Stamp; a running transaction carries a
// TxnSnapshot. The five mechanisms of §4.1 interpret these fields
// differently — see VersionOracle and its subclasses.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace gdur::versioning {

enum class VersioningKind { kTS, kVC, kVTS, kGMV, kPDV };

const char* to_string(VersioningKind k);

/// Version number attached to a committed version.
struct Stamp {
  /// VTS/VC identity: the version was created by the `seq`-th update
  /// transaction coordinated by site `origin`. For TS, `seq` is the
  /// site-local applied-commit count (globally consistent under total-order
  /// delivery, which is how Serrano uses it).
  SiteId origin = 0;
  std::uint64_t seq = 0;

  /// GMV/PDV dependence vector: dep[k] is the highest commit index of
  /// site/partition k the writing transaction (transitively) observed,
  /// including the version's own slot.
  std::vector<std::uint64_t> dep;
};

constexpr std::uint64_t kNoCeiling = std::numeric_limits<std::uint64_t>::max();

/// Per-transaction snapshot state, updated as the transaction reads.
struct TxnSnapshot {
  /// VTS/VC: per-site sequence-number floor taken at begin() — a version
  /// (origin, seq) is visible iff seq <= vts[origin].
  std::vector<std::uint64_t> vts;

  /// GMV/PDV: join of the dependence vectors of all versions read so far.
  std::vector<std::uint64_t> floor;

  /// GMV/PDV: ceiling imposed by previous reads — a new version's dep[k]
  /// must not exceed ceil[k].
  std::vector<std::uint64_t> ceil;

  /// TS (Serrano): the global commit sequence number at begin().
  std::uint64_t start_seq = 0;
};

}  // namespace gdur::versioning

// Reliable multicast (M-Cast in the paper's pseudo-code).
//
// No ordering guarantee beyond the transport's per-link FIFO. Used for the
// background propagation of version metadata in Walter and S-DUR
// (post_commit), and as the dissemination step of two-phase commit.
#pragma once

#include "comm/mcast_msg.h"
#include "net/transport.h"

namespace gdur::comm {

class ReliableMulticast {
 public:
  ReliableMulticast(net::Transport& transport, DeliverFn deliver)
      : net_(transport), deliver_(std::move(deliver)) {}

  /// Sends `msg` to every destination in msg.dests.
  void multicast(const McastMsg& msg);

 private:
  net::Transport& net_;
  DeliverFn deliver_;
};

}  // namespace gdur::comm

// Genuine atomic multicast (AM-Cast / AMpw-Cast), Skeen's algorithm.
//
// Only the destinations of a message take steps — the primitive is genuine,
// which is exactly the property P-Store's commitment needs (§6.1). Each
// destination proposes a Lamport timestamp, the final timestamp is the
// maximum proposal, and a site delivers a finalized message once no other
// pending message can end up with a smaller timestamp. Messages with
// intersecting destination sets are delivered in the same relative order at
// every common destination (pairwise ordering); because proposals are
// exchanged among *all* destinations, the order is in fact total per
// destination set — a strict superset of the AMpw-Cast contract S-DUR needs.
//
// Cost (r = |dests|): 2 message delays and r + r^2 messages without fault
// tolerance. With `fault_tolerant = true`, every proposal and every delivery
// decision is first logged at a witness site through a round trip, modeling
// the intra-group consensus of a disaster-tolerant genuine multicast: 6
// delays and Ω(r^2) messages, the figures the paper quotes from Schiper's
// thesis in §5.3.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "comm/mcast_msg.h"
#include "net/transport.h"
#include "net/wire.h"

namespace gdur::comm {

class SkeenMulticast {
 public:
  SkeenMulticast(net::Transport& transport, DeliverFn deliver,
                 bool fault_tolerant = false);

  /// Multicasts `msg` to msg.dests (sorted, unique, non-empty).
  void multicast(const McastMsg& msg);

 private:
  /// (timestamp, site) pairs; proposals from one site are strictly
  /// increasing, so keys of finalized messages are unique.
  struct TsKey {
    std::uint64_t ts;
    SiteId site;
    friend auto operator<=>(const TsKey&, const TsKey&) = default;
  };

  struct Pending {
    McastMsg msg;
    TsKey bound{};              // lower bound on the final key: this site's
                                // own proposal, or the best proposal heard
    TsKey final_key{};          // max proposal once finalized
    bool finalized = false;
    bool delivered_blocked = false;  // FT: waiting for delivery log
    int proposals = 0;               // proposals received so far
    int proposals_needed = 0;
  };

  struct SiteState {
    std::uint64_t clock = 0;
    std::unordered_map<std::uint64_t, Pending> pending;  // msg id -> state
    // Proposals that arrived before the message itself (links from distinct
    // sources are not mutually ordered).
    std::unordered_map<std::uint64_t, std::vector<TsKey>> early;
  };

  void on_step1(SiteId at, const McastMsg& msg);
  void send_proposal(SiteId at, std::uint64_t id, TsKey prop,
                     const std::vector<SiteId>& dests);
  void on_proposal(SiteId at, std::uint64_t id, TsKey prop);
  void finalize(SiteId at, Pending& p);
  void try_deliver(SiteId at);

  /// The witness used for FT logging: the next site, cyclically.
  [[nodiscard]] SiteId witness(SiteId s) const {
    return static_cast<SiteId>((s + 1) % static_cast<SiteId>(net_.sites()));
  }

  net::Transport& net_;
  DeliverFn deliver_;
  bool ft_;
  std::vector<SiteState> states_;
};

}  // namespace gdur::comm

// Genuine atomic multicast (AM-Cast / AMpw-Cast), Skeen's algorithm.
//
// Only the destinations of a message take steps — the primitive is genuine,
// which is exactly the property P-Store's commitment needs (§6.1). Each
// destination proposes a Lamport timestamp, the final timestamp is the
// maximum proposal, and a site delivers a finalized message once no other
// pending message can end up with a smaller timestamp. Messages with
// intersecting destination sets are delivered in the same relative order at
// every common destination (pairwise ordering); because proposals are
// exchanged among *all* destinations, the order is in fact total per
// destination set — a strict superset of the AMpw-Cast contract S-DUR needs.
//
// Cost (r = |dests|): 2 message delays and r + r^2 messages without fault
// tolerance. With `fault_tolerant = true`, every proposal and every delivery
// decision is first logged at a witness site through a round trip, modeling
// the intra-group consensus of a disaster-tolerant genuine multicast: 6
// delays and Ω(r^2) messages, the figures the paper quotes from Schiper's
// thesis in §5.3.
//
// Crash recovery: the transport can lose an already-acknowledged message
// when its delivery lands in a receiver's crash window ("protocol retries
// must recover it" — see Transport::send). A lost proposal would wedge the
// ordering layer permanently: delivery at a site blocks behind its
// smallest-keyed pending message, so one unfinalizable entry stalls every
// message after it. Under a fault plan each destination therefore arms a
// retry timer per pending message; if the message has not finalized when it
// fires, the site re-requests the missing proposals from their proposers. A
// proposer answers with its original proposal (re-sent verbatim so
// destinations can never observe two different proposals from one site), or
// with the final timestamp if it has already delivered the message, or — if
// it lost the step-1 message itself to a crash — by processing the copy
// carried in the request and proposing fresh, which is safe precisely
// because nobody can have finalized without it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "comm/mcast_msg.h"
#include "net/transport.h"
#include "net/wire.h"

namespace gdur::comm {

class SkeenMulticast {
 public:
  SkeenMulticast(net::Transport& transport, DeliverFn deliver,
                 bool fault_tolerant = false);

  /// Multicasts `msg` to msg.dests (sorted, unique, non-empty).
  void multicast(const McastMsg& msg);

 private:
  /// (timestamp, site) pairs; proposals from one site are strictly
  /// increasing, so keys of finalized messages are unique.
  struct TsKey {
    std::uint64_t ts;
    SiteId site;
    friend auto operator<=>(const TsKey&, const TsKey&) = default;
  };

  struct Pending {
    McastMsg msg;
    TsKey bound{};              // lower bound on the final key: this site's
                                // own proposal, or the best proposal heard
    TsKey final_key{};          // max proposal once finalized
    TsKey my_prop{};            // this site's own proposal, if a proposer —
                                // kept so retries re-send the same value
    bool proposed = false;      // my_prop is valid
    bool finalized = false;
    bool delivered_blocked = false;  // FT: waiting for delivery log
    // Distinct proposers heard from; recovery re-sends arrive as ordinary
    // messages (only transport-level duplicates are filtered below us), so
    // finalization must count sites, not messages.
    std::vector<SiteId> proposed_from;
    int proposals_needed = 0;
  };

  struct SiteState {
    std::uint64_t clock = 0;
    std::unordered_map<std::uint64_t, Pending> pending;  // msg id -> state
    // Proposals that arrived before the message itself (links from distinct
    // sources are not mutually ordered).
    std::unordered_map<std::uint64_t, std::vector<TsKey>> early;
    // Final timestamps of recently delivered messages, so a straggling
    // destination (or a recovered crasher) can still learn the outcome
    // after this site has dropped its pending state.
    std::unordered_map<std::uint64_t, TsKey> recent_final;
    std::deque<std::uint64_t> recent_fifo;
  };

  void on_step1(SiteId at, const McastMsg& msg);
  void send_proposal(SiteId at, std::uint64_t id, TsKey prop,
                     const std::vector<SiteId>& dests);
  void on_proposal(SiteId at, std::uint64_t id, TsKey prop);
  void finalize(SiteId at, Pending& p);
  void try_deliver(SiteId at);

  // --- crash recovery (active only under a fault plan) ---
  /// Re-checks `id` at `at` after a delay; re-requests missing proposals.
  void arm_recovery(SiteId at, std::uint64_t id);
  /// A destination asks `at` for its proposal on `id`; `msg` is the
  /// requester's copy of the multicast in case `at` never received step 1.
  void on_retry_request(SiteId at, std::uint64_t id, const McastMsg& msg,
                        SiteId requester);
  /// A proposer that already delivered `id` tells `at` its final timestamp.
  void on_final_key(SiteId at, std::uint64_t id, TsKey key);
  void remember_final(SiteState& st, std::uint64_t id, TsKey key);

  /// The witness used for FT logging: the next site, cyclically.
  [[nodiscard]] SiteId witness(SiteId s) const {
    return static_cast<SiteId>((s + 1) % static_cast<SiteId>(net_.sites()));
  }

  net::Transport& net_;
  DeliverFn deliver_;
  bool ft_;
  std::vector<SiteState> states_;
};

}  // namespace gdur::comm

#include "comm/reliable_multicast.h"

namespace gdur::comm {

void ReliableMulticast::multicast(const McastMsg& msg) {
  for (SiteId d : msg.dests) {
    net_.send(msg.origin, d, msg.bytes,
              [this, d, msg] { deliver_(d, msg); }, msg.cls);
  }
}

}  // namespace gdur::comm

#include "comm/skeen_multicast.h"

#include <algorithm>
#include <cassert>

namespace gdur::comm {

SkeenMulticast::SkeenMulticast(net::Transport& transport, DeliverFn deliver,
                               bool fault_tolerant)
    : net_(transport),
      deliver_(std::move(deliver)),
      ft_(fault_tolerant),
      states_(static_cast<std::size_t>(transport.sites())) {}

void SkeenMulticast::multicast(const McastMsg& msg) {
  assert(!msg.dests.empty());
  assert(std::is_sorted(msg.dests.begin(), msg.dests.end()));
  for (SiteId d : msg.dests) {
    net_.send(msg.origin, d, msg.bytes, [this, d, msg] { on_step1(d, msg); },
              msg.cls);
  }
}

void SkeenMulticast::on_step1(SiteId at, const McastMsg& msg) {
  SiteState& st = states_[at];
  const std::vector<SiteId>& proposers =
      msg.proposers.empty() ? msg.dests : msg.proposers;
  const bool is_proposer =
      std::find(proposers.begin(), proposers.end(), at) != proposers.end();

  st.clock += 1;
  Pending& p = st.pending[msg.id];
  p.msg = msg;
  p.proposals_needed = static_cast<int>(proposers.size());
  if (is_proposer) p.bound = TsKey{st.clock, at};

  // Apply proposals that raced ahead of the message.
  if (auto it = st.early.find(msg.id); it != st.early.end()) {
    for (const TsKey& k : it->second) on_proposal(at, msg.id, k);
    st.early.erase(msg.id);
  }

  if (!is_proposer) {
    try_deliver(at);  // the early proposals may already have finalized it
    return;
  }

  const TsKey prop = TsKey{st.clock, at};
  const auto dests = msg.dests;  // copy: p may be invalidated later
  const std::uint64_t id = msg.id;
  if (ft_) {
    // Log the proposal at a witness before announcing it (2 extra delays).
    const SiteId w = witness(at);
    net_.send(at, w, net::wire::control(),
              [this, at, w, id, prop, dests] {
                net_.send(w, at, net::wire::control(),
                          [this, at, id, prop, dests] {
                            send_proposal(at, id, prop, dests);
                          },
                          obs::MsgClass::kOrdering);
              },
              obs::MsgClass::kOrdering);
  } else {
    send_proposal(at, id, prop, dests);
  }
}

void SkeenMulticast::send_proposal(SiteId at, std::uint64_t id, TsKey prop,
                                   const std::vector<SiteId>& dests) {
  for (SiteId d : dests) {
    if (d == at) {
      on_proposal(at, id, prop);
    } else {
      net_.send(at, d, net::wire::control() + 16,
                [this, d, id, prop] { on_proposal(d, id, prop); },
                obs::MsgClass::kOrdering);
    }
  }
}

void SkeenMulticast::on_proposal(SiteId at, std::uint64_t id, TsKey prop) {
  SiteState& st = states_[at];
  auto it = st.pending.find(id);
  if (it == st.pending.end()) {
    st.early[id].push_back(prop);
    return;
  }
  Pending& p = it->second;
  ++p.proposals;
  p.final_key = std::max(p.final_key, prop);
  p.bound = std::max(p.bound, prop);  // lower bound on the final key
  if (p.proposals == p.proposals_needed) finalize(at, p);
}

void SkeenMulticast::finalize(SiteId at, Pending& p) {
  SiteState& st = states_[at];
  st.clock = std::max(st.clock, p.final_key.ts);
  if (ft_) {
    // Log the delivery decision at the witness before it takes effect.
    p.delivered_blocked = true;
    const SiteId w = witness(at);
    const std::uint64_t id = p.msg.id;
    net_.send(at, w, net::wire::control(),
              [this, at, w, id] {
                net_.send(w, at, net::wire::control(),
                          [this, at, id] {
                            auto it = states_[at].pending.find(id);
                            if (it == states_[at].pending.end()) return;
                            it->second.finalized = true;
                            it->second.delivered_blocked = false;
                            try_deliver(at);
                          },
                          obs::MsgClass::kOrdering);
              },
              obs::MsgClass::kOrdering);
  } else {
    p.finalized = true;
    try_deliver(at);
  }
}

void SkeenMulticast::try_deliver(SiteId at) {
  SiteState& st = states_[at];
  for (;;) {
    // The candidate is the pending message with the smallest key, where a
    // finalized message is keyed by its final timestamp and an unfinalized
    // one by this site's proposal (a lower bound on its eventual final key).
    const Pending* best = nullptr;
    TsKey best_key{};
    for (const auto& [id, p] : st.pending) {  // gdur-lint: allow(determinism/unordered-iter) min over unique (ts, site) keys — any order yields the same minimum
      const TsKey key = p.finalized ? p.final_key : p.bound;
      if (best == nullptr || key < best_key) {
        best = &p;
        best_key = key;
      }
    }
    if (best == nullptr || !best->finalized || best->delivered_blocked) return;
    const McastMsg msg = best->msg;
    st.pending.erase(msg.id);
    deliver_(at, msg);
  }
}

}  // namespace gdur::comm

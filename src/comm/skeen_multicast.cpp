#include "comm/skeen_multicast.h"

#include <algorithm>
#include <cassert>

#include "obs/plane.h"

namespace gdur::comm {

namespace {
// How long a destination waits on an unfinalized pending message before
// re-requesting the missing proposals (and between re-requests). Well under
// the coordinator's termination timeout, so a crash-window loss heals before
// the protocol layer starts resolving transactions the slow way.
const SimDuration kRecoveryDelay = milliseconds(250);
// Per-site cap on remembered final timestamps. Recovery requests arrive
// within a few kRecoveryDelay rounds of delivery, so this horizon (minutes
// of traffic) is far wider than any straggler the fault matrix produces.
constexpr std::size_t kRecentFinalCap = 4096;
}  // namespace

SkeenMulticast::SkeenMulticast(net::Transport& transport, DeliverFn deliver,
                               bool fault_tolerant)
    : net_(transport),
      deliver_(std::move(deliver)),
      ft_(fault_tolerant),
      states_(static_cast<std::size_t>(transport.sites())) {}

void SkeenMulticast::multicast(const McastMsg& msg) {
  assert(!msg.dests.empty());
  assert(std::is_sorted(msg.dests.begin(), msg.dests.end()));
  for (SiteId d : msg.dests) {
    net_.send(msg.origin, d, msg.bytes, [this, d, msg] { on_step1(d, msg); },
              msg.cls);
  }
}

void SkeenMulticast::on_step1(SiteId at, const McastMsg& msg) {
  SiteState& st = states_[at];
  // A recovery request can race with a retransmitted step 1 (each may
  // process the message first); the second arrival must not re-propose off
  // a fresh clock — destinations may never observe two different proposals
  // from one site — nor resurrect an already-delivered message.
  if (st.pending.count(msg.id) != 0 || st.recent_final.count(msg.id) != 0)
    return;
  const std::vector<SiteId>& proposers =
      msg.proposers.empty() ? msg.dests : msg.proposers;
  const bool is_proposer =
      std::find(proposers.begin(), proposers.end(), at) != proposers.end();

  st.clock += 1;
  Pending& p = st.pending[msg.id];
  p.msg = msg;
  p.proposals_needed = static_cast<int>(proposers.size());
  if (is_proposer) p.bound = TsKey{st.clock, at};

  // Apply proposals that raced ahead of the message.
  if (auto it = st.early.find(msg.id); it != st.early.end()) {
    const auto raced = std::move(it->second);
    st.early.erase(it);
    for (const TsKey& k : raced) on_proposal(at, msg.id, k);
  }
  arm_recovery(at, msg.id);

  if (!is_proposer) {
    try_deliver(at);  // the early proposals may already have finalized it
    return;
  }

  const TsKey prop = TsKey{st.clock, at};
  if (auto pit = st.pending.find(msg.id); pit != st.pending.end()) {
    pit->second.my_prop = prop;
    pit->second.proposed = true;
  }
  const auto dests = msg.dests;  // copy: p may be invalidated later
  const std::uint64_t id = msg.id;
  if (ft_) {
    // Log the proposal at a witness before announcing it (2 extra delays).
    const SiteId w = witness(at);
    net_.send(at, w, net::wire::control(),
              [this, at, w, id, prop, dests] {
                net_.send(w, at, net::wire::control(),
                          [this, at, id, prop, dests] {
                            send_proposal(at, id, prop, dests);
                          },
                          obs::MsgClass::kOrdering);
              },
              obs::MsgClass::kOrdering);
  } else {
    send_proposal(at, id, prop, dests);
  }
}

void SkeenMulticast::send_proposal(SiteId at, std::uint64_t id, TsKey prop,
                                   const std::vector<SiteId>& dests) {
  if (auto* p = net_.plane())
    p->slot(at).record(obs::Counter::kOrderingMsgs,
                       static_cast<std::uint64_t>(dests.size()));
  for (SiteId d : dests) {
    if (d == at) {
      on_proposal(at, id, prop);
    } else {
      net_.send(at, d, net::wire::control() + 16,
                [this, d, id, prop] { on_proposal(d, id, prop); },
                obs::MsgClass::kOrdering);
    }
  }
}

void SkeenMulticast::on_proposal(SiteId at, std::uint64_t id, TsKey prop) {
  SiteState& st = states_[at];
  auto it = st.pending.find(id);
  if (it == st.pending.end()) {
    if (st.recent_final.count(id) != 0) return;  // delivered; straggler
    st.early[id].push_back(prop);
    return;
  }
  Pending& p = it->second;
  if (std::find(p.proposed_from.begin(), p.proposed_from.end(), prop.site) !=
      p.proposed_from.end())
    return;  // a recovery re-send of a proposal already counted
  p.proposed_from.push_back(prop.site);
  p.final_key = std::max(p.final_key, prop);
  p.bound = std::max(p.bound, prop);  // lower bound on the final key
  if (static_cast<int>(p.proposed_from.size()) == p.proposals_needed)
    finalize(at, p);
}

void SkeenMulticast::finalize(SiteId at, Pending& p) {
  SiteState& st = states_[at];
  st.clock = std::max(st.clock, p.final_key.ts);
  if (ft_) {
    // Log the delivery decision at the witness before it takes effect.
    p.delivered_blocked = true;
    const SiteId w = witness(at);
    const std::uint64_t id = p.msg.id;
    net_.send(at, w, net::wire::control(),
              [this, at, w, id] {
                net_.send(w, at, net::wire::control(),
                          [this, at, id] {
                            auto it = states_[at].pending.find(id);
                            if (it == states_[at].pending.end()) return;
                            it->second.finalized = true;
                            it->second.delivered_blocked = false;
                            try_deliver(at);
                          },
                          obs::MsgClass::kOrdering);
              },
              obs::MsgClass::kOrdering);
  } else {
    p.finalized = true;
    try_deliver(at);
  }
}

void SkeenMulticast::try_deliver(SiteId at) {
  SiteState& st = states_[at];
  for (;;) {
    // The candidate is the pending message with the smallest key, where a
    // finalized message is keyed by its final timestamp and an unfinalized
    // one by this site's proposal (a lower bound on its eventual final key).
    const Pending* best = nullptr;
    TsKey best_key{};
    for (const auto& [id, p] : st.pending) {  // gdur-lint: allow(determinism/unordered-iter) min over unique (ts, site) keys — any order yields the same minimum
      const TsKey key = p.finalized ? p.final_key : p.bound;
      if (best == nullptr || key < best_key) {
        best = &p;
        best_key = key;
      }
    }
    if (best == nullptr || !best->finalized || best->delivered_blocked) return;
    const McastMsg msg = best->msg;
    remember_final(st, msg.id, best->final_key);
    st.pending.erase(msg.id);
    deliver_(at, msg);
  }
}

// ---------------------------------------------------------------------------
// Crash recovery.
// ---------------------------------------------------------------------------

void SkeenMulticast::arm_recovery(SiteId at, std::uint64_t id) {
  if (net_.fault_injector() == nullptr) return;  // fault-free: cannot wedge
  net_.simulator().after(kRecoveryDelay, [this, at, id] {
    auto it = states_[at].pending.find(id);
    if (it == states_[at].pending.end()) return;  // delivered meanwhile
    if (net_.cpu(at).down_at(net_.simulator().now())) {
      arm_recovery(at, id);  // crashed: look again after recovery
      return;
    }
    Pending& p = it->second;
    if (p.finalized && !p.delivered_blocked)
      return;  // merely queued behind earlier messages, which have their
               // own timers — nothing to re-drive for this one
    if (p.finalized) {
      // FT only: the witness round logging the delivery decision was lost
      // in a crash window. finalize() re-runs it; it is idempotent.
      finalize(at, p);
    } else {
      // A wedge candidate: the ordering layer is re-driving a message whose
      // proposals went missing — exactly what the flight recorder should
      // still hold when the watchdog trips on the stalled queue behind it.
      if (auto* pl = net_.plane())
        pl->ring(at).append("skeen_rerequest", net_.simulator().now(), at,
                            id);
      // Re-request every proposal still missing, attaching our copy of the
      // message for proposers whose step 1 died with a crash.
      const std::vector<SiteId>& proposers =
          p.msg.proposers.empty() ? p.msg.dests : p.msg.proposers;
      for (SiteId d : proposers) {
        if (std::find(p.proposed_from.begin(), p.proposed_from.end(), d) !=
            p.proposed_from.end())
          continue;
        const McastMsg copy = p.msg;
        net_.send(at, d, net::wire::control() + copy.bytes,
                  [this, d, id, copy, at] { on_retry_request(d, id, copy, at); },
                  obs::MsgClass::kOrdering);
      }
    }
    arm_recovery(at, id);
  });
}

void SkeenMulticast::on_retry_request(SiteId at, std::uint64_t id,
                                      const McastMsg& msg, SiteId requester) {
  SiteState& st = states_[at];
  if (auto f = st.recent_final.find(id); f != st.recent_final.end()) {
    // Already delivered here: hand the requester the final timestamp, which
    // lets it finalize directly (the decision is the same at every site).
    const TsKey key = f->second;
    net_.send(at, requester, net::wire::control() + 16,
              [this, requester, id, key] { on_final_key(requester, id, key); },
              obs::MsgClass::kOrdering);
    return;
  }
  auto it = st.pending.find(id);
  if (it == st.pending.end()) {
    // Step 1 never reached us (lost in our crash window). Nobody can have
    // finalized without our proposal, so proposing fresh off the current
    // clock is safe — and on_step1 broadcasts it to every destination.
    on_step1(at, msg);
    return;
  }
  const Pending& p = it->second;
  if (!p.proposed) return;  // not a proposer; nothing useful to answer
  const TsKey prop = p.my_prop;  // verbatim re-send, never a new value
  if (at == requester) {
    on_proposal(at, id, prop);
    return;
  }
  net_.send(at, requester, net::wire::control() + 16,
            [this, requester, id, prop] { on_proposal(requester, id, prop); },
            obs::MsgClass::kOrdering);
}

void SkeenMulticast::on_final_key(SiteId at, std::uint64_t id, TsKey key) {
  SiteState& st = states_[at];
  auto it = st.pending.find(id);
  if (it == st.pending.end()) return;  // delivered here meanwhile
  Pending& p = it->second;
  if (p.finalized && !p.delivered_blocked) return;
  st.clock = std::max(st.clock, key.ts);
  p.final_key = key;
  p.bound = key;
  p.finalized = true;
  p.delivered_blocked = false;
  try_deliver(at);
}

void SkeenMulticast::remember_final(SiteState& st, std::uint64_t id,
                                    TsKey key) {
  if (net_.fault_injector() == nullptr) return;  // recovery disabled
  if (st.recent_final.emplace(id, key).second) {
    st.recent_fifo.push_back(id);
    if (st.recent_fifo.size() > kRecentFinalCap) {
      st.recent_final.erase(st.recent_fifo.front());
      st.recent_fifo.pop_front();
    }
  }
}

}  // namespace gdur::comm

// Common message type for the group-communication primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "obs/events.h"

namespace gdur::comm {

/// A multicast message. The payload is opaque to the communication layer;
/// `bytes` is its analytic wire size (see net::wire).
struct McastMsg {
  std::uint64_t id = 0;             // globally unique (caller-assigned)
  SiteId origin = kNoSite;          // sending site
  std::vector<SiteId> dests{};        // destination sites, sorted, unique
  /// Sites whose timestamp proposals order the message (SkeenMulticast).
  /// Destinations are replica *groups*: one member per group — its primary
  /// — proposes on the group's behalf, so the failure of another member
  /// does not block ordering. Empty means every destination proposes.
  std::vector<SiteId> proposers{};
  std::uint64_t bytes = 0;          // payload wire size
  /// Observability tag for the payload-carrying sends (ordering rounds the
  /// primitive adds on top are tagged kOrdering by the primitive itself).
  obs::MsgClass cls = obs::MsgClass::kTermination;
  std::shared_ptr<const void> payload{};

  template <typename T>
  [[nodiscard]] const T& as() const {
    return *static_cast<const T*>(payload.get());
  }
};

/// Invoked when `msg` is delivered at site `at`. Delivery order is the
/// whole point of each primitive; see the class comments.
using DeliverFn = std::function<void(SiteId at, const McastMsg& msg)>;

}  // namespace gdur::comm

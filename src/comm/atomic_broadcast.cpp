#include "comm/atomic_broadcast.h"

namespace gdur::comm {

AtomicBroadcast::AtomicBroadcast(net::Transport& transport, DeliverFn deliver,
                                 SiteId sequencer)
    : net_(transport),
      deliver_(std::move(deliver)),
      sequencer_(sequencer),
      majority_(transport.sites() / 2 + 1),
      states_(static_cast<std::size_t>(transport.sites())) {}

void AtomicBroadcast::broadcast(McastMsg msg) {
  // Step 1: ship the message to the sequencer.
  const obs::MsgClass cls = msg.cls;
  net_.send(
      msg.origin, sequencer_, msg.bytes,
      [this, msg = std::move(msg)] {
        const std::uint64_t seq = next_seq_++;
        // Step 2: the sequencer assigns the order and forwards to everyone.
        // gdur-lint: allow(membership/hardcoded-sites) ordering-layer fan-out; non-members are fenced by member_of at delivery
        for (SiteId d = 0; d < static_cast<SiteId>(net_.sites()); ++d) {
          net_.send(sequencer_, d, msg.bytes + net::wire::control(),
                    [this, d, seq, msg] { on_sequenced(d, seq, msg); },
                    msg.cls);
        }
      },
      cls);
}

void AtomicBroadcast::on_sequenced(SiteId at, std::uint64_t seq,
                                   const McastMsg& msg) {
  Slot& slot = states_[at].slots[seq];
  slot.msg = msg;
  slot.sequenced = true;
  // Step 3: acknowledge to everyone (uniformity).
  // gdur-lint: allow(membership/hardcoded-sites) ordering-layer fan-out; non-members are fenced by member_of at delivery
  for (SiteId d = 0; d < static_cast<SiteId>(net_.sites()); ++d) {
    net_.send(at, d, net::wire::control(),
              [this, d, seq] { on_ack(d, seq); }, obs::MsgClass::kOrdering);
  }
  try_deliver(at);
}

void AtomicBroadcast::on_ack(SiteId at, std::uint64_t seq) {
  ++states_[at].slots[seq].acks;
  try_deliver(at);
}

void AtomicBroadcast::try_deliver(SiteId at) {
  SiteState& st = states_[at];
  for (;;) {
    auto it = st.slots.find(st.next);
    if (it == st.slots.end() || !it->second.sequenced ||
        it->second.acks < majority_) {
      return;
    }
    const McastMsg msg = std::move(it->second.msg);
    st.slots.erase(it);
    ++st.next;
    deliver_(at, msg);
  }
}

}  // namespace gdur::comm

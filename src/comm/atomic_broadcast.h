// Uniform atomic broadcast (AB-Cast), fixed-sequencer variant.
//
// Every site delivers every message, all in the same total order. The
// protocol is the classic 3-message-delay uniform broadcast:
//
//   1. origin -> sequencer         (the message)
//   2. sequencer -> all            (sequence number assignment)
//   3. all -> all                  (acknowledgments)
//
// A site delivers message k once it holds acknowledgments from a majority
// of sites and has delivered all messages < k. Three delays matches the
// lower bound for uniform consensus-based delivery cited in §5.3 of the
// paper; the O(n^2) acknowledgment traffic is what makes non-genuine
// protocols (Serrano) saturate early, also as in the paper.
//
// Serrano's protocol is the only client of full broadcast; P-Store/S-DUR use
// the multicast primitives instead.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "comm/mcast_msg.h"
#include "net/transport.h"
#include "net/wire.h"

namespace gdur::comm {

class AtomicBroadcast {
 public:
  AtomicBroadcast(net::Transport& transport, DeliverFn deliver,
                  SiteId sequencer = 0);

  /// Broadcasts `msg` to every site in the system (msg.dests is ignored).
  void broadcast(McastMsg msg);

  /// Next undelivered sequence number at `site` (for tests).
  [[nodiscard]] std::uint64_t next_to_deliver(SiteId site) const {
    return states_[site].next;
  }

 private:
  struct Slot {
    McastMsg msg;
    bool sequenced = false;
    int acks = 0;
  };
  struct SiteState {
    std::map<std::uint64_t, Slot> slots;  // seq -> slot
    std::uint64_t next = 0;               // next seq to deliver
  };

  void on_sequenced(SiteId at, std::uint64_t seq, const McastMsg& msg);
  void on_ack(SiteId at, std::uint64_t seq);
  void try_deliver(SiteId at);

  net::Transport& net_;
  DeliverFn deliver_;
  SiteId sequencer_;
  int majority_;
  std::uint64_t next_seq_ = 0;  // sequencer state
  std::vector<SiteState> states_;
};

}  // namespace gdur::comm

#include "obs/watchdog.h"

#include <utility>

namespace gdur::obs {

void StallWatchdog::add_probe(std::string name, SiteId site, GaugeFn progress,
                              GaugeFn pending) {
  MutexLock lock(&mu_);
  Cell c;
  c.name = std::move(name);
  c.site = site;
  c.progress = std::move(progress);
  c.pending = std::move(pending);
  cells_.push_back(std::move(c));
}

void StallWatchdog::clear_probes() {
  MutexLock lock(&mu_);
  cells_.clear();
}

int StallWatchdog::scan(SimTime now) {
  std::vector<StallEvent> fresh;
  std::function<void(const StallEvent&)> cb;
  {
    MutexLock lock(&mu_);
    for (auto& c : cells_) {
      const std::uint64_t prog = c.progress();
      const std::uint64_t pend = c.pending();
      const bool moved = !c.seen || prog != c.last;
      c.last = prog;
      c.seen = true;
      if (moved || pend == 0) {
        // Progress (or nothing to do): the episode, if any, is over.
        c.stalled = false;
        c.tripped = false;
        continue;
      }
      if (!c.stalled) {
        c.stalled = true;
        c.stuck_since = now;
        continue;
      }
      if (!c.tripped && now - c.stuck_since >= stall_after_) {
        c.tripped = true;
        StallEvent e;
        e.probe = c.name;
        e.site = c.site;
        e.at = now;
        e.stuck_since = c.stuck_since;
        e.pending = pend;
        events_.push_back(e);
        ++trips_;
        fresh.push_back(std::move(e));
      }
    }
    cb = on_trip_;
  }
  // Callbacks run outside the mutex: they dump flight recorders and may
  // re-enter watchdog accessors.
  if (cb)
    for (const auto& e : fresh) cb(e);
  return static_cast<int>(fresh.size());
}

}  // namespace gdur::obs

// Stall watchdog — flags wedged progress before the run times out.
//
// The class of bug PR 6's lost-Skeen-proposal fix belonged to — a queue
// whose head can never finalize — is silent: throughput goes to zero and
// nothing reports why until the harness gives up minutes later. The
// watchdog makes that loud. Every work queue in the system (live mailbox,
// event loop, timer wheel, replica certification queue) registers a
// *probe*: two cheap thread-safe reads, a monotone progress counter and a
// pending-work gauge. A periodic scan then applies one rule:
//
//   pending > 0  AND  progress unchanged for >= stall_after  =>  trip
//
// A trip fires once per stall episode (re-arming when progress resumes),
// bumps Counter::kWatchdogTrips and triggers a flight-recorder dump via
// the plane's on_trip hook.
//
// The scan itself is NOT a hot path — it runs a few times per second from
// the snapshot thread (live) or from a test harness (sim) — so it takes a
// mutex. Probes must only read lock-free state (atomics), because they are
// invoked from the scanning thread while site threads run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace gdur::obs {

class StallWatchdog {
 public:
  /// Reads must be thread-safe and non-blocking (relaxed atomics).
  using GaugeFn = std::function<std::uint64_t()>;

  struct StallEvent {
    std::string probe;  // "mailbox", "cert_queue", "event_loop", ...
    SiteId site = kNoSite;
    SimTime at = 0;          // scan instant that tripped
    SimTime stuck_since = 0; // first scan that saw this stall
    std::uint64_t pending = 0;
  };

  explicit StallWatchdog(SimDuration stall_after = seconds(2))
      : stall_after_(stall_after) {}

  void set_stall_after(SimDuration d) {
    MutexLock lock(&mu_);
    stall_after_ = d;
  }

  /// Registers a probe. The functions are retained for the watchdog's
  /// lifetime; call clear_probes() before tearing down what they read.
  void add_probe(std::string name, SiteId site, GaugeFn progress,
                 GaugeFn pending);
  void clear_probes();

  /// Invoked (outside the watchdog mutex) on every fresh trip.
  void set_on_trip(std::function<void(const StallEvent&)> cb) {
    MutexLock lock(&mu_);
    on_trip_ = std::move(cb);
  }

  /// One scan pass at time `now`; returns the number of fresh trips.
  int scan(SimTime now);

  [[nodiscard]] std::uint64_t trips() const {
    MutexLock lock(&mu_);
    return trips_;
  }
  [[nodiscard]] std::vector<StallEvent> events() const {
    MutexLock lock(&mu_);
    return events_;
  }

 private:
  struct Cell {
    std::string name;
    SiteId site;
    GaugeFn progress;
    GaugeFn pending;
    std::uint64_t last = 0;       // progress at the previous scan
    SimTime stuck_since = 0;      // first scan with pending>0 and no progress
    bool stalled = false;         // inside a candidate stall window
    bool tripped = false;         // already reported this episode
    bool seen = false;            // last is valid
  };

  mutable Mutex mu_;
  SimDuration stall_after_ GUARDED_BY(mu_);
  std::vector<Cell> cells_ GUARDED_BY(mu_);
  std::uint64_t trips_ GUARDED_BY(mu_) = 0;
  std::vector<StallEvent> events_ GUARDED_BY(mu_);
  std::function<void(const StallEvent&)> on_trip_ GUARDED_BY(mu_);
};

}  // namespace gdur::obs

#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace gdur::obs {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlightRing::FlightRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity);
  mask_ = cap - 1;
  for (std::size_t i = 0; i < cap; ++i) buf_.emplace_back();
}

std::vector<FlightEvent> FlightRing::drain() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = buf_.size();
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t i = first; i < head; ++i) {
    const Rec& r = buf_[i & mask_];
    FlightEvent e;
    e.name = r.name.load(std::memory_order_relaxed);
    e.ts = r.ts.load(std::memory_order_relaxed);
    e.site = r.site.load(std::memory_order_relaxed);
    e.a = r.a.load(std::memory_order_relaxed);
    e.b = r.b.load(std::memory_order_relaxed);
    e.seq = i;
    out.push_back(e);
  }
  return out;
}

FlightRecorder::FlightRecorder(int rings, std::size_t capacity_per_ring) {
  if (rings < 1) rings = 1;
  for (int i = 0; i < rings; ++i) rings_.emplace_back(capacity_per_ring);
}

std::vector<FlightEvent> FlightRecorder::collect() const {
  std::vector<FlightEvent> all;
  for (const auto& r : rings_) {
    auto v = r.drain();
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              if (x.ts != y.ts) return x.ts < y.ts;
              if (x.site != y.site) return x.site < y.site;
              return x.seq < y.seq;
            });
  return all;
}

std::string FlightRecorder::dump_text(const char* reason) const {
  const auto events = collect();
  std::string out;
  out.reserve(events.size() * 64 + 128);
  char buf[192];
  snprintf(buf, sizeof buf, "# flight-recorder dump (reason: %s, events: %zu)\n",
           reason, events.size());
  out += buf;
  for (const auto& e : events) {
    snprintf(buf, sizeof buf,
             "%12" PRId64 "  s%-3u  %-18s a=%" PRIu64 " b=%" PRIu64 "\n",
             e.ts, e.site, e.name, e.a, e.b);
    out += buf;
  }
  return out;
}

std::string FlightRecorder::dump_chrome_json(const char* reason) const {
  const auto events = collect();
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char buf[256];
  snprintf(buf, sizeof buf,
           "{\"name\":\"flight_dump\",\"ph\":\"i\",\"ts\":0,\"pid\":0,"
           "\"tid\":0,\"s\":\"g\",\"args\":{\"reason\":\"%s\"}}",
           reason);
  out += buf;
  for (const auto& e : events) {
    snprintf(buf, sizeof buf,
             ",\n{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%u,"
             "\"tid\":0,\"s\":\"t\",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64
             "}}",
             e.name, static_cast<double>(e.ts) / 1000.0, e.site, e.a, e.b);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace gdur::obs

// Observability vocabulary: the fixed sets of things a run can be broken
// down into. Kept separate from the recorder so that low-level layers
// (harness metrics, the transport) can tag work without pulling in the
// whole tracing machinery.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gdur::obs {

/// Transaction-lifecycle phases, coordinator perspective. Together they
/// tile a transaction's life from the client's begin request to the final
/// client response (see DESIGN.md §Observability for the exact anchors).
enum class Phase : std::uint8_t {
  kExecute,         // begin request -> commit request (whole execution phase)
  kRead,            // time inside read operations (subset of kExecute)
  kWriteBuffer,     // time inside write-buffer operations (subset of kExecute)
  kXcast,           // submit -> termination delivered at the coordinator
  kCertWait,        // delivered -> certification job starts (queue Q + CPU queue)
  kCertify,         // the certification test itself (CPU service time)
  kVoteCollect,     // local vote cast -> outcome decided (remote votes, 2PC/Paxos rounds)
  kApply,           // applying after-values at the coordinator
  kClientResponse,  // decided -> final response reaches the client
  kCount
};
constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);
[[nodiscard]] const char* phase_name(Phase p);

/// Why a transaction did not commit. kNone marks committed transactions.
enum class AbortReason : std::uint8_t {
  kNone,             // committed
  kCertConflict,     // certification voted no (or preemptive abort in Q)
  kSnapshotFailure,  // execution-phase failure: no compatible version to read
  kTimeout,          // client gave up waiting (outcome unknown)
  kPresumedAbort,    // coordinator resolved an in-doubt txn as aborted (§6.3)
  kCount
};
constexpr std::size_t kAbortReasonCount =
    static_cast<std::size_t>(AbortReason::kCount);
[[nodiscard]] const char* abort_reason_name(AbortReason r);

/// Message taxonomy for per-class counters and message spans. One wire
/// message belongs to exactly one class.
enum class MsgClass : std::uint8_t {
  kControl,      // anything not otherwise classified
  kClientReq,    // client machine -> replica
  kClientResp,   // replica -> client machine
  kRemoteRead,   // read request to a remote replica
  kReadReply,    // read reply (value + versioning metadata)
  kTermination,  // termination message carrying the transaction
  kOrdering,     // ordering traffic (sequencer acks, Skeen proposals, witness)
  kVote,         // certification vote
  kPaxos2a,      // Paxos Commit phase 2a (vote proposal to an acceptor)
  kPaxos2b,      // Paxos Commit phase 2b (acceptance to the learner)
  kDecision,     // commit/abort decision
  kPropagation,  // background version propagation (Walter, S-DUR)
  kCount
};
constexpr std::size_t kMsgClassCount = static_cast<std::size_t>(MsgClass::kCount);
[[nodiscard]] const char* msg_class_name(MsgClass c);

/// Fault-layer events worth a mark on the timeline.
enum class FaultKind : std::uint8_t {
  kDrop,        // delivery attempt lost or blocked
  kRetransmit,  // extra delivery attempt sent
  kExpire,      // message abandoned (broken connection / crash window)
  kCrash,       // site crash with state loss
  kRecovery,    // site finished WAL replay
  kCount
};
constexpr std::size_t kFaultKindCount = static_cast<std::size_t>(FaultKind::kCount);
[[nodiscard]] const char* fault_kind_name(FaultKind k);

}  // namespace gdur::obs

// Online invariant monitor — safety checks while the system runs.
//
// The offline checker (src/checker) proves a whole history serializable
// after the run ends; following the runtime-verification approach of
// "Specification and Runtime Checking of Derecho" (PAPERS.md), this
// monitor streams a small catalog of *generic* safety invariants during
// execution, so a violation is reported the moment it happens — with the
// flight recorder still holding the events that led up to it. G-DUR's
// realization-point architecture is what makes the catalog protocol-
// independent: every one of the 7 protocols must satisfy them.
//
// Invariant catalog (DESIGN.md §13):
//   vote-consistency        one vote value per (voter site, txn), across
//                           re-announcements and crash recoveries
//   epoch-monotonic         a site's activated configuration epoch never
//                           decreases
//   decision-consistency    one commit/abort outcome per txn across sites
//   wal-decision-agreement  a site's WAL'd decision matches the outcome
//                           its decided-cache reports
//
// The monitor sits close to the hot path — a note fires for every vote
// announced or received and every per-site decision — so its working set
// lives in fixed-capacity probe tables allocated once at construction: a
// note is a mutex acquire plus a short linear probe, never an allocation.
// Under pressure a table recycles the oldest slot in the probe window; the
// monitor is a detector, not a proof — an eviction can only cause a miss,
// never a false positive.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace gdur::obs {

class InvariantMonitor {
 public:
  struct Violation {
    const char* invariant = "";  // catalog name above
    SiteId site = kNoSite;       // site the violating observation concerns
    TxnId txn{kNoSite, 0};       // involved transaction (if any)
    SimTime at = 0;
    std::string detail;
  };

  /// A vote by `voter` on `txn` became visible (announced or received).
  void note_vote(SiteId voter, const TxnId& txn, bool vote, SimTime now);
  /// Site `site` activated configuration epoch `e`.
  void note_epoch(SiteId site, EpochId e, SimTime now);
  /// Site `site` decided `txn` (decided-cache insertion).
  void note_decided(SiteId site, const TxnId& txn, bool commit, SimTime now);
  /// Site `site` durably logged decision `commit` for `txn` (WAL append).
  void note_wal_decision(SiteId site, const TxnId& txn, bool commit,
                         SimTime now);

  /// Invoked (outside the monitor mutex) on every fresh violation.
  void set_on_violation(std::function<void(const Violation&)> cb) {
    MutexLock lock(&mu_);
    on_violation_ = std::move(cb);
  }

  [[nodiscard]] std::uint64_t violations() const {
    MutexLock lock(&mu_);
    return count_;
  }
  [[nodiscard]] std::vector<Violation> events() const {
    MutexLock lock(&mu_);
    return events_;
  }

 private:
  /// Fixed-capacity (site, txn) -> bool probe table. All slots are
  /// allocated at construction; find/insert is a bounded linear probe, so
  /// a note never allocates. When every slot in the probe window is live,
  /// the least-recently-inserted one is recycled (deterministic — the
  /// simulator's byte-identity guarantee includes monitor state).
  class BoundedKV {
   public:
    explicit BoundedKV(std::size_t capacity_pow2);

    struct Ref {
      bool found = false;
      bool value = false;  // stored value, valid when found
    };
    /// Lookup only: never modifies the table.
    [[nodiscard]] Ref find(SiteId site, const TxnId& txn) const;
    /// Returns the stored value if the key is present; otherwise inserts
    /// `value` (recycling under pressure) and reports found = false.
    Ref find_or_insert(SiteId site, const TxnId& txn, bool value);

   private:
    struct Slot {
      std::uint64_t seq = 0;
      SiteId site = kNoSite;
      SiteId coord = kNoSite;
      std::uint32_t stamp = 0;  // insertion order, for window recycling
      bool used = false;
      bool value = false;
    };
    static constexpr int kProbeWindow = 8;
    [[nodiscard]] std::size_t home(SiteId site, const TxnId& txn) const;

    std::vector<Slot> slots_;
    std::uint64_t mask_;
    std::uint32_t clock_ = 0;
  };

  void report(const char* invariant, SiteId site, const TxnId& txn,
              SimTime now, std::string detail) REQUIRES(mu_);

  // Sized to stay cache-resident: 4 tables x 16Ki slots x 24 B ~= 1.5 MB.
  // The detection window only needs to span in-flight transactions (a few
  // hundred at peak load), not history.
  static constexpr std::size_t kCap = 1 << 14;  // slots per table
  static constexpr std::size_t kMaxEvents = 4096;

  mutable Mutex mu_;
  BoundedKV votes_ GUARDED_BY(mu_){kCap};
  BoundedKV decided_ GUARDED_BY(mu_){kCap};
  BoundedKV wal_ GUARDED_BY(mu_){kCap};
  // Global per-txn outcome (decision-consistency across sites): keyed on
  // the txn alone, stored with site = kNoSite.
  BoundedKV outcome_ GUARDED_BY(mu_){kCap};
  std::map<SiteId, EpochId> epochs_ GUARDED_BY(mu_);
  std::uint64_t count_ GUARDED_BY(mu_) = 0;
  std::vector<Violation> events_ GUARDED_BY(mu_);
  std::function<void(const Violation&)> on_violation_ GUARDED_BY(mu_);
};

}  // namespace gdur::obs

#include "obs/stats.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace gdur::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kTxnSubmitted: return "txn_submitted";
    case Counter::kTxnCommitted: return "txn_committed";
    case Counter::kTxnAborted: return "txn_aborted";
    case Counter::kTermDelivered: return "term_delivered";
    case Counter::kCertified: return "certified";
    case Counter::kVotesSent: return "votes_sent";
    case Counter::kVotesRecv: return "votes_recv";
    case Counter::kDecisions: return "decisions";
    case Counter::kApplies: return "applies";
    case Counter::kWalAppends: return "wal_appends";
    case Counter::kEpochActivations: return "epoch_activations";
    case Counter::kMsgsSent: return "msgs_sent";
    case Counter::kBytesSent: return "bytes_sent";
    case Counter::kMsgsDropped: return "msgs_dropped";
    case Counter::kRetransmits: return "retransmits";
    case Counter::kMsgsExpired: return "msgs_expired";
    case Counter::kOrderingMsgs: return "ordering_msgs";
    case Counter::kMailboxTasks: return "mailbox_tasks";
    case Counter::kTimerFires: return "timer_fires";
    case Counter::kLoopWakeups: return "loop_wakeups";
    case Counter::kFlightDumps: return "flight_dumps";
    case Counter::kInvariantViolations: return "invariant_violations";
    case Counter::kWatchdogTrips: return "watchdog_trips";
    case Counter::kClientSessions: return "client_sessions";
    case Counter::kClientOps: return "client_ops";
    case Counter::kClientPushbacks: return "client_pushbacks";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kCertQueueUs: return "cert_queue_us";
    case Hist::kCertifyUs: return "certify_us";
    case Hist::kQueueDepth: return "queue_depth";
    case Hist::kMsgBytes: return "msg_bytes";
    case Hist::kCount: break;
  }
  return "unknown";
}

StatsRegistry::StatsRegistry(int slots) {
  if (slots < 1) slots = 1;
  for (int i = 0; i < slots; ++i) slots_.emplace_back();
}

StatsRegistry::Snapshot StatsRegistry::snapshot(SimTime at) const {
  Snapshot s;
  s.at = at;
  s.per_slot.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      const auto v = slots_[i].value(static_cast<Counter>(c));
      s.per_slot[i][c] = v;
      s.total[c] += v;
    }
    for (std::size_t h = 0; h < kHistCount; ++h)
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        s.hist[h][b] += slots_[i].bucket(static_cast<Hist>(h), b);
  }
  return s;
}

namespace {
void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}
}  // namespace

std::string StatsRegistry::to_json(const Snapshot& s) {
  std::string out;
  out.reserve(4096);
  appendf(out, "{\n  \"at_ns\": %" PRId64 ",\n  \"counters\": {\n", s.at);
  for (std::size_t c = 0; c < kCounterCount; ++c)
    appendf(out, "    \"%s\": %" PRIu64 "%s\n",
            counter_name(static_cast<Counter>(c)), s.total[c],
            c + 1 < kCounterCount ? "," : "");
  out += "  },\n  \"per_slot\": [\n";
  for (std::size_t i = 0; i < s.per_slot.size(); ++i) {
    out += "    {";
    for (std::size_t c = 0; c < kCounterCount; ++c)
      appendf(out, "\"%s\": %" PRIu64 "%s",
              counter_name(static_cast<Counter>(c)), s.per_slot[i][c],
              c + 1 < kCounterCount ? ", " : "");
    out += i + 1 < s.per_slot.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"histograms\": {\n";
  for (std::size_t h = 0; h < kHistCount; ++h) {
    appendf(out, "    \"%s\": [", hist_name(static_cast<Hist>(h)));
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      appendf(out, "%" PRIu64 "%s", s.hist[h][b],
              b + 1 < kHistBuckets ? ", " : "");
    out += h + 1 < kHistCount ? "],\n" : "]\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string StatsRegistry::to_prometheus(const Snapshot& s) {
  std::string out;
  out.reserve(4096);
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const char* name = counter_name(static_cast<Counter>(c));
    appendf(out, "# TYPE gdur_%s counter\n", name);
    appendf(out, "gdur_%s %" PRIu64 "\n", name, s.total[c]);
    for (std::size_t i = 0; i < s.per_slot.size(); ++i)
      if (s.per_slot[i][c] != 0)
        appendf(out, "gdur_%s{slot=\"%zu\"} %" PRIu64 "\n", name, i,
                s.per_slot[i][c]);
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const char* name = hist_name(static_cast<Hist>(h));
    appendf(out, "# TYPE gdur_%s histogram\n", name);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cum += s.hist[h][b];
      if (s.hist[h][b] != 0)
        appendf(out, "gdur_%s_bucket{le=\"%llu\"} %" PRIu64 "\n", name,
                (unsigned long long)(1ULL << (b + 1)) - 1, cum);
    }
    appendf(out, "gdur_%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name, cum);
    appendf(out, "gdur_%s_count %" PRIu64 "\n", name, cum);
  }
  return out;
}

}  // namespace gdur::obs

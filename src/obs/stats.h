// StatsRegistry — always-on, lock-free production telemetry.
//
// PR 2's TraceRecorder captures *everything* (every message, every phase of
// every transaction) and is priced accordingly: it is a debugging tool you
// switch on. This registry is the opposite contract — a fixed, enumerated
// set of counters and fixed-bucket latency histograms cheap enough to leave
// on in a production deployment.
//
// Record-path cost model (DESIGN.md §13): every slot is a pre-allocated
// array of relaxed std::atomic<uint64_t>; `record()` is one fetch_add on a
// cache line owned (in steady state) by the recording thread, `record_value`
// is one bit-scan plus one fetch_add. The record path performs no
// allocation, takes no lock, and never reads a clock — timestamps, where
// needed, are passed in by the caller (the simulator's virtual clock or the
// live runtime's monotonic clock). tools/gdur_lint's obs/hot-path-alloc
// rule enforces this contract textually on every record*/append function in
// src/obs.
//
// Aggregation (snapshot/export) walks the same atomics with relaxed loads;
// a snapshot is a monotone, possibly slightly-torn view — fine for
// monitoring, never used for safety decisions.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gdur::obs {

/// The counter catalog. Fixed at compile time: adding a counter is a code
/// change, which keeps slots POD-sized and the record path index-only.
enum class Counter : std::uint8_t {
  kTxnSubmitted = 0,   // termination protocol entered (coordinator)
  kTxnCommitted,       // decide(commit) at a replica
  kTxnAborted,         // decide(abort) at a replica
  kTermDelivered,      // xdeliver(T): termination message queued
  kCertified,          // certification verdicts computed (cast_vote)
  kVotesSent,          // vote messages leaving a replica (retries included)
  kVotesRecv,          // vote messages accepted by on_vote
  kDecisions,          // decision records reached (decide() calls)
  kApplies,            // committed write-sets installed into the store
  kWalAppends,         // write-ahead-log records appended
  kEpochActivations,   // membership epochs activated
  kMsgsSent,           // transport-level messages (sim or live frames)
  kBytesSent,          // transport-level payload bytes
  kMsgsDropped,        // delivery attempts lost to faults
  kRetransmits,        // extra delivery attempts sent
  kMsgsExpired,        // messages abandoned after give_up
  kOrderingMsgs,       // ordering-layer (Skeen) steps: proposals + finals
  kMailboxTasks,       // tasks executed by live mailbox threads
  kTimerFires,         // live timer-wheel expirations
  kLoopWakeups,        // live event-loop poll() returns
  kFlightDumps,        // flight-recorder dumps emitted
  kInvariantViolations,// online invariant monitor trips
  kWatchdogTrips,      // stall watchdog trips
  kClientSessions,     // front-door client sessions accepted
  kClientOps,          // front-door client requests admitted
  kClientPushbacks,    // front-door admission pushback engagements
  kCount
};
[[nodiscard]] const char* counter_name(Counter c);

/// Histogram catalog. All histograms share one shape: kHistBuckets log2
/// buckets, bucket i counting values v with floor(log2(v)) == i (v == 0
/// lands in bucket 0), the last bucket absorbing overflow.
enum class Hist : std::uint8_t {
  kCertQueueUs = 0,  // time a termination entry waits at the queue head
  kCertifyUs,        // certification service time (sim: analytic charge)
  kQueueDepth,       // termination-queue length sampled at delivery
  kMsgBytes,         // per-message payload size
  kCount
};
[[nodiscard]] const char* hist_name(Hist h);

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kHistCount =
    static_cast<std::size_t>(Hist::kCount);
inline constexpr std::size_t kHistBuckets = 32;

/// One recording slot — one per site (plus a few for shared subsystems).
/// All mutation goes through the two record methods; they are safe to call
/// from any thread concurrently.
class StatsSlot {
 public:
  StatsSlot() = default;
  StatsSlot(const StatsSlot&) = delete;
  StatsSlot& operator=(const StatsSlot&) = delete;

  /// Hot path: one relaxed fetch_add — or, in single-writer mode, a plain
  /// relaxed load+store pair (no lock-prefixed RMW). No allocation, no
  /// lock, no clock. Proven interprocedurally by gdur-hotpath-reachability.
  GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
  void record(Counter c, std::uint64_t n = 1) {
    auto& cell = counters_[static_cast<std::size_t>(c)];
    if (single_writer_) {
      assert_single_writer();
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      cell.fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Hot path: log2-bucket a value. No allocation, no lock, no clock.
  GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
  void record_value(Hist h, std::uint64_t v) {
    std::size_t b = 0;
    if (v != 0) {
      b = static_cast<std::size_t>(63 - __builtin_clzll(v));
      if (b >= kHistBuckets) b = kHistBuckets - 1;
    }
    auto& cell = hist_[static_cast<std::size_t>(h) * kHistBuckets + b];
    if (single_writer_) {
      assert_single_writer();
      cell.store(cell.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    } else {
      cell.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Single-writer mode: every record call comes from ONE thread (the
  /// discrete-event simulator), so counters bump with plain relaxed
  /// load/store instead of atomic RMW — roughly 3x cheaper per record.
  /// Aggregation-side reads stay safe (whole-word relaxed loads); NEVER
  /// enable this when site threads record concurrently (live mode, or a
  /// sharded sim backend with lane threads). ObsPlane force-disables it
  /// when it is attached to a cluster with shards_per_site > 1.
  void set_single_writer(bool on) {
    single_writer_ = on;
    writer_.store(0, std::memory_order_relaxed);  // re-arm identity check
  }

  [[nodiscard]] bool single_writer() const { return single_writer_; }

  [[nodiscard]] std::uint64_t value(Counter c) const {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(Hist h, std::size_t b) const {
    return hist_[static_cast<std::size_t>(h) * kHistBuckets + b].load(
        std::memory_order_relaxed);
  }

 private:
  /// Debug-build teeth for the single-writer contract: the first record call
  /// claims the slot for its thread (one CAS), every later call verifies the
  /// claim with a relaxed load. A second writer would previously just corrupt
  /// counts silently (the load+store bump loses increments); now it aborts in
  /// debug builds. No allocation, no lock, no clock — the release-build hot
  /// path is unchanged (the whole check compiles away under NDEBUG).
  void assert_single_writer() {
#ifndef NDEBUG
    const auto h = std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::size_t me = h == 0 ? 1 : h;
    std::size_t seen = writer_.load(std::memory_order_relaxed);
    if (seen == 0) {
      if (writer_.compare_exchange_strong(seen, me,
                                          std::memory_order_relaxed))
        return;  // claimed by this thread
    }
    assert(seen == me &&
           "StatsSlot single-writer mode violated: second thread recording");
#endif
  }

  std::array<std::atomic<std::uint64_t>, kCounterCount> counters_{};
  std::array<std::atomic<std::uint64_t>, kHistCount * kHistBuckets> hist_{};
  std::atomic<std::size_t> writer_{0};  // debug: claimed writer identity
  bool single_writer_ = false;  // set once at attach time, before recording
};

/// The registry: a fixed set of slots allocated once at construction.
/// slot(i) never invalidates — subsystems cache the pointer and record
/// through it for the lifetime of the run.
class StatsRegistry {
 public:
  /// `slots` recording slots (typically sites + a few shared ones).
  explicit StatsRegistry(int slots);

  [[nodiscard]] StatsSlot& slot(std::size_t i) { return slots_[i]; }
  [[nodiscard]] const StatsSlot& slot(std::size_t i) const {
    return slots_[i];
  }
  [[nodiscard]] std::size_t slots() const { return slots_.size(); }

  struct Snapshot {
    SimTime at = 0;
    std::array<std::uint64_t, kCounterCount> total{};
    std::vector<std::array<std::uint64_t, kCounterCount>> per_slot;
    std::array<std::array<std::uint64_t, kHistBuckets>, kHistCount> hist{};
  };
  [[nodiscard]] Snapshot snapshot(SimTime at) const;

  /// Snapshot serialized as JSON (stable key order — diffable).
  [[nodiscard]] static std::string to_json(const Snapshot& s);
  /// Snapshot in Prometheus text exposition format (`gdur_` prefix,
  /// per-slot series labeled {slot="N"}).
  [[nodiscard]] static std::string to_prometheus(const Snapshot& s);

 private:
  // deque: StatsSlot holds atomics (immovable); deque grows without moving.
  std::deque<StatsSlot> slots_;
};

}  // namespace gdur::obs

#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace gdur::obs {

namespace {

std::size_t idx(Phase p) { return static_cast<std::size_t>(p); }

/// Appends `ns` nanoseconds as a decimal microsecond value ("12.345") using
/// integer math only, so the output is bit-identical across platforms.
void append_us(std::string& out, SimTime ns) {
  char buf[40];
  if (ns < 0) {
    out += '-';
    ns = -ns;
  }
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out += buf;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

}  // namespace

void TraceRecorder::push(const TraceEvent& e) {
  if (!cfg_.spans) return;
  if (events_.size() >= cfg_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void TraceRecorder::reset_counters() {
  MutexLock lock(&mu_);
  msg_count_.fill(0);
  msg_bytes_.fill(0);
  fault_count_.fill(0);
  finished_ = 0;
}

// ---------------------------------------------------------------------------
// Transaction lifecycle.
// ---------------------------------------------------------------------------

void TraceRecorder::txn_started(const TxnId& id, SiteId /*coord*/,
                                SimTime begin_req, SimTime now) {
  MutexLock lock(&mu_);
  Live& lv = live_[id];
  lv.begin = begin_req;
  lv.got_record = now;
}

void TraceRecorder::txn_op(const TxnId& id, Phase p, SiteId coord,
                           SimTime start, SimTime now) {
  MutexLock lock(&mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return;
  if (p == Phase::kRead)
    it->second.read_time += now - start;
  else if (p == Phase::kWriteBuffer)
    it->second.write_time += now - start;
  push(TraceEvent{.kind = TraceEvent::Kind::kSpan,
                  .name = phase_name(p),
                  .cat = "op",
                  .site = coord,
                  .track = lane_of(id),
                  .ts = start,
                  .dur = now - start,
                  .txn = id});
}

void TraceRecorder::txn_submitted(const TxnId& id, SiteId /*site*/, SimTime now,
                                  bool read_only) {
  MutexLock lock(&mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return;
  it->second.submit = now;
  it->second.read_only = read_only;
  it->second.has_term = true;
}

void TraceRecorder::term_delivered(const TxnId& id, SiteId site, SimTime now) {
  MutexLock lock(&mu_);
  if (site == id.coord) {
    auto it = live_.find(id);
    if (it != live_.end()) it->second.delivered = now;
  }
  push(TraceEvent{.kind = TraceEvent::Kind::kInstant,
                  .name = "xdeliver",
                  .cat = "term",
                  .site = site,
                  .track = lane_of(id),
                  .ts = now,
                  .txn = id});
}

void TraceRecorder::certified(const TxnId& id, SiteId site, SimTime now,
                              SimDuration service, bool vote) {
  MutexLock lock(&mu_);
  if (site == id.coord) {
    auto it = live_.find(id);
    if (it != live_.end()) {
      it->second.cert_start = now - service;
      it->second.cert_end = now;
    }
  }
  push(TraceEvent{.kind = TraceEvent::Kind::kSpan,
                  .name = vote ? "certify:yes" : "certify:no",
                  .cat = "term",
                  .site = site,
                  .track = lane_of(id),
                  .ts = now - service,
                  .dur = service,
                  .txn = id});
}

void TraceRecorder::decided(const TxnId& id, SiteId site, SimTime now,
                            bool commit, AbortReason /*reason*/) {
  MutexLock lock(&mu_);
  if (site == id.coord) {
    auto it = live_.find(id);
    if (it != live_.end()) it->second.decide = now;
  }
  push(TraceEvent{.kind = TraceEvent::Kind::kInstant,
                  .name = commit ? "decide:commit" : "decide:abort",
                  .cat = "term",
                  .site = site,
                  .track = lane_of(id),
                  .ts = now,
                  .txn = id});
}

void TraceRecorder::applied(const TxnId& id, SiteId site, SimTime now,
                            SimDuration dur) {
  MutexLock lock(&mu_);
  if (site == id.coord) {
    auto it = live_.find(id);
    if (it != live_.end()) it->second.apply_time += dur;
  }
  push(TraceEvent{.kind = TraceEvent::Kind::kSpan,
                  .name = "apply",
                  .cat = "term",
                  .site = site,
                  .track = lane_of(id),
                  .ts = now,
                  .dur = dur,
                  .txn = id});
}

void TraceRecorder::txn_finished(const TxnId& id, SiteId coord, SimTime now,
                                 bool committed, bool read_only,
                                 AbortReason reason) {
  MutexLock lock(&mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return;
  it->second.read_only = it->second.has_term ? it->second.read_only : read_only;
  flush(id, it->second, coord, now, committed, reason);
  live_.erase(it);
}

void TraceRecorder::txn_timed_out(const TxnId& id, SiteId coord, SimTime now) {
  MutexLock lock(&mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return;
  flush(id, it->second, coord, now, false, AbortReason::kTimeout);
  live_.erase(it);
}

void TraceRecorder::flush(const TxnId& id, Live& lv, SiteId coord, SimTime now,
                          bool committed, AbortReason reason) {
  TxnPhaseReport r;
  r.id = id;
  r.coord = coord;
  r.read_only = lv.read_only;
  r.committed = committed;
  r.reason = committed ? AbortReason::kNone : reason;
  r.begin = lv.begin;
  r.end = now;
  // Execution phases (client perspective).
  const SimTime exec_end = lv.submit != 0 ? lv.submit : now;
  r.phase[idx(Phase::kExecute)] = exec_end - lv.begin;
  r.phase[idx(Phase::kRead)] = lv.read_time;
  r.phase[idx(Phase::kWriteBuffer)] = lv.write_time;
  // Termination phases (coordinator perspective); each anchor is only
  // meaningful when the previous one was recorded.
  if (lv.submit != 0 && lv.delivered != 0) {
    r.phase[idx(Phase::kXcast)] = lv.delivered - lv.submit;
    if (lv.cert_start != 0) {
      r.phase[idx(Phase::kCertWait)] = lv.cert_start - lv.delivered;
      r.phase[idx(Phase::kCertify)] = lv.cert_end - lv.cert_start;
      if (lv.decide != 0)
        r.phase[idx(Phase::kVoteCollect)] = lv.decide - lv.cert_end;
    }
  }
  r.phase[idx(Phase::kApply)] = lv.apply_time;
  if (lv.decide != 0) r.phase[idx(Phase::kClientResponse)] = now - lv.decide;
  ++finished_;
  if (sink_) sink_(r);
  if (cfg_.spans) {
    reports_.push_back(r);
    push(TraceEvent{.kind = TraceEvent::Kind::kSpan,
                    .name = committed ? "txn:commit" : "txn:abort",
                    .cat = "txn",
                    .site = coord,
                    .track = lane_of(id),
                    .ts = lv.begin,
                    .dur = now - lv.begin,
                    .txn = id});
  }
}

// ---------------------------------------------------------------------------
// Messages, faults, counters.
// ---------------------------------------------------------------------------

void TraceRecorder::message(MsgClass cls, SiteId src, SiteId dst,
                            std::uint64_t bytes, SimTime depart,
                            SimTime arrive) {
  MutexLock lock(&mu_);
  ++msg_count_[static_cast<std::size_t>(cls)];
  msg_bytes_[static_cast<std::size_t>(cls)] += bytes;
  push(TraceEvent{.kind = TraceEvent::Kind::kSpan,
                  .name = msg_class_name(cls),
                  .cat = "msg",
                  .site = src,
                  .track = 64 + dst,
                  .ts = depart,
                  .dur = arrive - depart,
                  .value = static_cast<double>(bytes)});
}

void TraceRecorder::fault(FaultKind kind, SiteId site, SiteId peer,
                          SimTime now) {
  MutexLock lock(&mu_);
  ++fault_count_[static_cast<std::size_t>(kind)];
  push(TraceEvent{.kind = TraceEvent::Kind::kInstant,
                  .name = fault_kind_name(kind),
                  .cat = "fault",
                  .site = site,
                  .track = 96 + (peer == kNoSite ? 0 : peer),
                  .ts = now});
}

void TraceRecorder::sample(const char* name, SiteId site, SimTime now,
                           double value) {
  MutexLock lock(&mu_);
  // Counter samples bypass the spans switch: the time series is useful on
  // big runs where span recording is off. The cap still applies.
  if (events_.size() >= cfg_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{.kind = TraceEvent::Kind::kCounter,
                               .name = name,
                               .cat = "ts",
                               .site = site,
                               .track = 0,
                               .ts = now,
                               .value = value});
}

// ---------------------------------------------------------------------------
// Export.
// ---------------------------------------------------------------------------

std::string TraceRecorder::chrome_trace_json() const {
  MutexLock lock(&mu_);
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process metadata: one "process" per site keeps Perfetto's track
  // grouping readable. Sites present = those that appear in events.
  std::vector<SiteId> sites;
  for (const TraceEvent& e : events_)
    if (e.site != kNoSite &&
        std::find(sites.begin(), sites.end(), e.site) == sites.end())
      sites.push_back(e.site);
  std::sort(sites.begin(), sites.end());
  char buf[64];
  for (SiteId s : sites) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf, "%u", s);
    out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += buf;
    out += ",\"tid\":0,\"args\":{\"name\":\"site ";
    out += buf;
    out += "\"}}";
  }
  for (const TraceEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.cat);
    out += "\",\"ph\":\"";
    switch (e.kind) {
      case TraceEvent::Kind::kSpan:
        out += 'X';
        break;
      case TraceEvent::Kind::kInstant:
        out += 'i';
        break;
      case TraceEvent::Kind::kCounter:
        out += 'C';
        break;
    }
    out += "\",\"ts\":";
    append_us(out, e.ts);
    if (e.kind == TraceEvent::Kind::kSpan) {
      out += ",\"dur\":";
      append_us(out, e.dur);
    }
    std::snprintf(buf, sizeof buf, ",\"pid\":%u,\"tid\":%u",
                  e.site == kNoSite ? 9999u : e.site, e.track);
    out += buf;
    if (e.kind == TraceEvent::Kind::kInstant) out += ",\"s\":\"t\"";
    if (e.kind == TraceEvent::Kind::kCounter) {
      std::snprintf(buf, sizeof buf, ",\"args\":{\"value\":%.6f}", e.value);
      out += buf;
    } else if (e.txn.valid()) {
      out += ",\"args\":{\"txn\":\"";
      out += e.txn.str();
      out += "\"}";
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string TraceRecorder::text_timeline() const {
  MutexLock lock(&mu_);
  std::string out;
  out.reserve(reports_.size() * 160);
  for (const TxnPhaseReport& r : reports_) {
    out += r.id.str();
    out += r.read_only ? " ro " : " upd";
    out += " begin=";
    append_us(out, r.begin);
    out += "us";
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out += ' ';
      out += phase_name(static_cast<Phase>(p));
      out += '=';
      append_us(out, r.phase[p]);
      out += "us";
    }
    out += " -> ";
    out += r.committed ? "COMMIT" : "ABORT";
    if (!r.committed) {
      out += '(';
      out += abort_reason_name(r.reason);
      out += ')';
    }
    out += '\n';
  }
  return out;
}

}  // namespace gdur::obs

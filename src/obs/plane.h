// ObsPlane — the production observability plane, assembled.
//
// One object bundles the four always-on facilities (DESIGN.md §13):
//   stats       lock-free counters + histograms (obs/stats.h)
//   flight      per-site ring-buffer flight recorder (obs/flight_recorder.h)
//   watchdog    stall detection over registered progress probes
//   invariants  online safety-invariant monitor
//
// and wires their cross-talk: an invariant violation or a watchdog trip
// bumps the corresponding counter, leaves a flight-recorder event, and
// triggers an automatic flight dump through the configured sink (a file
// writer in live mode, a capture buffer in tests). Attach it via
// ClusterConfig::plane; every engine hook is a null-pointer check, so a
// plane-free run is byte-identical to a build without the plane.
//
// Slot layout: slot s < sites is site s; slot sites+0 is the shared live
// runtime (event loop, timer wheel); ring r < sites is site r's flight
// recorder ring.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/flight_recorder.h"
#include "obs/invariants.h"
#include "obs/stats.h"
#include "obs/watchdog.h"

namespace gdur::obs {

struct ObsPlaneConfig {
  int sites = 4;
  std::size_t flight_capacity = 256;     // events retained per site ring
  SimDuration stall_after = seconds(2);  // watchdog threshold
  /// All record calls come from one thread (a pure-sim run): counters use
  /// plain relaxed load/store instead of atomic RMW. Must stay false
  /// whenever live site threads record (see StatsSlot::set_single_writer).
  bool single_writer = false;
};

class ObsPlane {
 public:
  explicit ObsPlane(ObsPlaneConfig cfg = {});

  [[nodiscard]] const ObsPlaneConfig& config() const { return cfg_; }
  [[nodiscard]] StatsRegistry& stats() { return stats_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }
  [[nodiscard]] FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const FlightRecorder& flight() const { return flight_; }
  [[nodiscard]] StallWatchdog& watchdog() { return watchdog_; }
  [[nodiscard]] const StallWatchdog& watchdog() const { return watchdog_; }
  [[nodiscard]] InvariantMonitor& invariants() { return invariants_; }
  [[nodiscard]] const InvariantMonitor& invariants() const {
    return invariants_;
  }

  /// Site s's recording slot / flight ring (cached by subsystems).
  [[nodiscard]] StatsSlot& slot(SiteId s) {
    return stats_.slot(s < static_cast<SiteId>(cfg_.sites) ? s : 0);
  }
  /// The extra slot shared by the live runtime's own threads.
  [[nodiscard]] StatsSlot& runtime_slot() {
    return stats_.slot(static_cast<std::size_t>(cfg_.sites));
  }
  [[nodiscard]] FlightRing& ring(SiteId s) {
    return flight_.ring(s < static_cast<SiteId>(cfg_.sites) ? s : 0);
  }

  /// Where automatic flight dumps go. Default: retained in last_dump().
  using DumpSink = std::function<void(const char* reason,
                                      const std::string& text,
                                      const std::string& chrome_json)>;
  void set_dump_sink(DumpSink sink) {
    MutexLock lock(&mu_);
    sink_ = std::move(sink);
  }

  /// Dumps the flight recorder now (also called automatically on watchdog
  /// trips and invariant violations). Thread-safe; rate-unlimited — the
  /// caller decides when a dump is warranted.
  void dump_flight(const char* reason);

  [[nodiscard]] std::uint64_t dumps() const {
    MutexLock lock(&mu_);
    return dumps_;
  }
  [[nodiscard]] std::string last_dump() const {
    MutexLock lock(&mu_);
    return last_dump_;
  }
  [[nodiscard]] std::string last_dump_reason() const {
    MutexLock lock(&mu_);
    return last_reason_;
  }

  /// Full plane snapshot: stats + watchdog/invariant/dump state, as JSON
  /// (schema: tools/obs/snapshot_schema.json) and Prometheus text.
  [[nodiscard]] std::string snapshot_json(SimTime now) const;
  [[nodiscard]] std::string snapshot_prometheus(SimTime now) const;

 private:
  ObsPlaneConfig cfg_;
  StatsRegistry stats_;
  FlightRecorder flight_;
  StallWatchdog watchdog_;
  InvariantMonitor invariants_;

  mutable Mutex mu_;
  DumpSink sink_ GUARDED_BY(mu_);
  std::uint64_t dumps_ GUARDED_BY(mu_) = 0;
  std::string last_dump_ GUARDED_BY(mu_);
  std::string last_reason_ GUARDED_BY(mu_);
};

}  // namespace gdur::obs

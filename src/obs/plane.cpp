#include "obs/plane.h"

#include <cinttypes>
#include <cstdio>

namespace gdur::obs {

ObsPlane::ObsPlane(ObsPlaneConfig cfg)
    : cfg_(cfg),
      stats_(cfg.sites + 1),  // + one slot for the shared live runtime
      flight_(cfg.sites, cfg.flight_capacity),
      watchdog_(cfg.stall_after) {
  if (cfg.single_writer)
    for (std::size_t i = 0; i < stats_.slots(); ++i)
      stats_.slot(i).set_single_writer(true);
  watchdog_.set_on_trip([this](const StallWatchdog::StallEvent& e) {
    slot(e.site == kNoSite ? 0 : e.site).record(Counter::kWatchdogTrips);
    ring(e.site == kNoSite ? 0 : e.site)
        .append("watchdog_trip", e.at, e.site, e.pending, 0);
    dump_flight("watchdog");
  });
  invariants_.set_on_violation([this](const InvariantMonitor::Violation& v) {
    slot(v.site == kNoSite ? 0 : v.site)
        .record(Counter::kInvariantViolations);
    ring(v.site == kNoSite ? 0 : v.site)
        .append("invariant_violation", v.at, v.site, v.txn.coord, v.txn.seq);
    dump_flight("invariant");
  });
}

void ObsPlane::dump_flight(const char* reason) {
  // Render outside the mutex: collect() only reads ring atomics.
  std::string text = flight_.dump_text(reason);
  std::string json = flight_.dump_chrome_json(reason);
  slot(0).record(Counter::kFlightDumps);
  DumpSink sink;
  {
    MutexLock lock(&mu_);
    ++dumps_;
    last_dump_ = text;
    last_reason_ = reason;
    sink = sink_;
  }
  if (sink) sink(reason, text, json);
}

std::string ObsPlane::snapshot_json(SimTime now) const {
  const auto snap = stats_.snapshot(now);
  std::string stats_json = StatsRegistry::to_json(snap);
  // Splice the plane-level sections into the stats object: replace the
  // final "}\n" with the extra fields.
  if (stats_json.size() >= 2) stats_json.erase(stats_json.size() - 2);
  char buf[256];
  std::string out = stats_json;
  out += ",\n  \"watchdog\": {";
  snprintf(buf, sizeof buf, "\"trips\": %" PRIu64 ", \"probes\": [",
           watchdog_.trips());
  out += buf;
  const auto wevents = watchdog_.events();
  for (std::size_t i = 0; i < wevents.size(); ++i) {
    snprintf(buf, sizeof buf,
             "%s{\"probe\": \"%s\", \"site\": %u, \"at_ns\": %" PRId64
             ", \"pending\": %" PRIu64 "}",
             i ? ", " : "", wevents[i].probe.c_str(), wevents[i].site,
             wevents[i].at, wevents[i].pending);
    out += buf;
  }
  out += "]},\n  \"invariants\": {";
  snprintf(buf, sizeof buf, "\"violations\": %" PRIu64 ", \"events\": [",
           invariants_.violations());
  out += buf;
  const auto ievents = invariants_.events();
  for (std::size_t i = 0; i < ievents.size(); ++i) {
    snprintf(buf, sizeof buf,
             "%s{\"invariant\": \"%s\", \"site\": %u, \"txn\": \"T%u.%" PRIu64
             "\", \"at_ns\": %" PRId64 "}",
             i ? ", " : "", ievents[i].invariant, ievents[i].site,
             ievents[i].txn.coord, ievents[i].txn.seq, ievents[i].at);
    out += buf;
  }
  out += "]},\n  \"flight\": {";
  snprintf(buf, sizeof buf,
           "\"dumps\": %" PRIu64 ", \"last_reason\": \"%s\"}\n}\n", dumps(),
           last_dump_reason().c_str());
  out += buf;
  return out;
}

std::string ObsPlane::snapshot_prometheus(SimTime now) const {
  std::string out = StatsRegistry::to_prometheus(stats_.snapshot(now));
  char buf[128];
  snprintf(buf, sizeof buf, "gdur_watchdog_trips_total %" PRIu64 "\n",
           watchdog_.trips());
  out += buf;
  snprintf(buf, sizeof buf, "gdur_invariant_violations_total %" PRIu64 "\n",
           invariants_.violations());
  out += buf;
  snprintf(buf, sizeof buf, "gdur_flight_dumps_total %" PRIu64 "\n", dumps());
  out += buf;
  return out;
}

}  // namespace gdur::obs

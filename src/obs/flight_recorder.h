// Flight recorder — the last N protocol events per site, always on.
//
// Full tracing (obs::TraceRecorder) answers "what happened during this
// run"; the flight recorder answers "what happened *just before it went
// wrong*" at a cost low enough to never switch off. Each site owns one
// fixed-capacity ring of small POD records; appending overwrites the
// oldest entry. When something trips — a crash window, a checker failure,
// a watchdog stall, an invariant violation — the plane dumps the merged
// rings as a deterministic text timeline and as Chrome-trace JSON (same
// viewer as PR 2's exporter).
//
// Concurrency contract: each ring has ONE writer (the owning site's
// mailbox thread in live mode; the single simulator thread in sim mode).
// Readers (the dumper) may run concurrently with writers in live mode;
// every field is a relaxed atomic, so a dump taken mid-append is
// best-effort — it may contain one half-written record — but never tears a
// word or races. Under the simulator there is one thread, so dumps are
// exact and byte-deterministic.
//
// Record-path contract (enforced by gdur-lint obs/hot-path-alloc):
// `append()` performs no allocation, takes no lock, reads no clock. Event
// names must be string literals (the ring stores the pointer); timestamps
// are passed in by the caller.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gdur::obs {

/// One dumped event (a stable copy of a ring record).
struct FlightEvent {
  const char* name = "";
  SimTime ts = 0;
  SiteId site = kNoSite;
  std::uint64_t a = 0;  // event-specific (typically TxnId pieces)
  std::uint64_t b = 0;
  std::uint64_t seq = 0;  // per-ring append index (dump tie-breaker)
};

/// Single-writer, multi-reader ring of the last `capacity` events.
class FlightRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit FlightRing(std::size_t capacity);
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Hot path: five relaxed stores + one release store. No allocation, no
  /// lock, no clock. `name` must be a string literal (pointer is stored).
  /// Proven interprocedurally by gdur-hotpath-reachability.
  GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
  void append(const char* name, SimTime ts, SiteId site, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    const std::uint64_t i = head_.load(std::memory_order_relaxed);
    Rec& r = buf_[i & mask_];
    r.name.store(name, std::memory_order_relaxed);
    r.ts.store(ts, std::memory_order_relaxed);
    r.site.store(site, std::memory_order_relaxed);
    r.a.store(a, std::memory_order_relaxed);
    r.b.store(b, std::memory_order_relaxed);
    head_.store(i + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::uint64_t appended() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Copies out the retained window, oldest first.
  [[nodiscard]] std::vector<FlightEvent> drain() const;

 private:
  struct Rec {
    std::atomic<const char*> name{""};
    std::atomic<SimTime> ts{0};
    std::atomic<SiteId> site{kNoSite};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };
  std::deque<Rec> buf_;  // deque: Rec holds atomics (immovable)
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

/// The per-site ring set plus the dump formatters.
class FlightRecorder {
 public:
  FlightRecorder(int rings, std::size_t capacity_per_ring);

  [[nodiscard]] FlightRing& ring(std::size_t i) { return rings_[i]; }
  [[nodiscard]] const FlightRing& ring(std::size_t i) const {
    return rings_[i];
  }
  [[nodiscard]] std::size_t rings() const { return rings_.size(); }

  /// All retained events, merged and sorted by (ts, site, seq) — a total,
  /// deterministic order under the simulator.
  [[nodiscard]] std::vector<FlightEvent> collect() const;

  /// Deterministic text timeline:
  ///   <ns-timestamp>  s<site>  <name>  a=<a> b=<b>
  [[nodiscard]] std::string dump_text(const char* reason) const;

  /// Chrome trace-event JSON (instant events; pid = site), loadable in
  /// Perfetto next to a TraceRecorder export.
  [[nodiscard]] std::string dump_chrome_json(const char* reason) const;

 private:
  std::deque<FlightRing> rings_;
};

}  // namespace gdur::obs

// Deterministic, sim-time-stamped tracing and metrics collection.
//
// A TraceRecorder is attached to a cluster (ClusterConfig::trace) and
// receives hook calls from the replicas, the communication layer and the
// transport. It builds three artifacts out of them:
//
//   * per-transaction lifecycle phase breakdowns (obs::TxnPhaseReport),
//     streamed to a sink so the harness can aggregate them into
//     harness::Metrics without this layer depending on the harness;
//   * an event buffer of spans / instants / counter samples, exportable as
//     Chrome trace-event JSON (chrome://tracing, Perfetto) and as a compact
//     per-transaction text timeline for golden tests;
//   * per-message-class and per-fault-kind counters.
//
// Zero-overhead-when-disabled rule: every hook point in the engine is
// guarded by a null-pointer check on the recorder, and no hook schedules
// simulator events or charges CPU — attaching a recorder never changes the
// simulated execution. Because the simulator itself is deterministic, two
// identical seeded runs produce byte-identical trace output.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/events.h"

namespace gdur::obs {

struct TraceConfig {
  /// Keep the full span/instant event buffer (needed for the JSON export
  /// and the text timeline). Off = only phase reports and counters, for
  /// cheap phase-breakdown measurement on big runs.
  bool spans = true;
  /// Sampling interval of the time-series counters driven by the harness
  /// (throughput, CPU utilization, certification-queue depth). 0 = off.
  SimDuration timeseries_bucket = 0;
  /// Hard cap on buffered events; once reached, further span/instant events
  /// are counted in dropped_events() instead of stored (never silently).
  std::size_t max_events = 1u << 21;
};

/// One transaction's finished lifecycle, coordinator perspective.
struct TxnPhaseReport {
  TxnId id;
  SiteId coord = kNoSite;
  bool read_only = false;
  bool committed = false;
  AbortReason reason = AbortReason::kNone;
  SimTime begin = 0;  // client begin request
  SimTime end = 0;    // final client response (or give-up instant)
  /// Duration per phase; 0 where the phase did not occur (e.g. no apply for
  /// a transaction without local writes, no termination phases for an
  /// execution-phase abort).
  std::array<SimDuration, kPhaseCount> phase{};

  [[nodiscard]] SimDuration of(Phase p) const {
    return phase[static_cast<std::size_t>(p)];
  }
};

/// A buffered trace event. `name`/`cat` are static strings (no ownership).
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };
  Kind kind = Kind::kInstant;
  const char* name = "";
  const char* cat = "";
  SiteId site = kNoSite;   // exported as pid
  std::uint32_t track = 0; // exported as tid
  SimTime ts = 0;
  SimDuration dur = 0;     // spans only
  TxnId txn{};             // optional: tagged transaction
  double value = 0;        // counters only
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const TraceConfig& config() const { return cfg_; }

  /// Sink invoked with every finished transaction's phase report (set by
  /// the harness to feed harness::Metrics).
  void set_phase_sink(std::function<void(const TxnPhaseReport&)> sink) {
    MutexLock lock(&mu_);
    sink_ = std::move(sink);
  }

  // ------------------------------------------------------------------
  // Transaction lifecycle hooks (workload::client + core::Replica).
  // ------------------------------------------------------------------
  /// Client-side: begin request issued at `begin_req`, transaction record
  /// received back at `now`.
  void txn_started(const TxnId& id, SiteId coord, SimTime begin_req,
                   SimTime now);
  /// Client-side: one read / write-buffer operation over [start, now].
  void txn_op(const TxnId& id, Phase p, SiteId coord, SimTime start,
              SimTime now);
  /// Coordinator: submit(T) — execution is over, termination starts.
  void txn_submitted(const TxnId& id, SiteId site, SimTime now,
                     bool read_only);
  /// Any site: the termination message reached this replica.
  void term_delivered(const TxnId& id, SiteId site, SimTime now);
  /// Any site: certification finished at `now` after `service` CPU time.
  void certified(const TxnId& id, SiteId site, SimTime now,
                 SimDuration service, bool vote);
  /// Any site: outcome known here.
  void decided(const TxnId& id, SiteId site, SimTime now, bool commit,
               AbortReason reason);
  /// Any site: after-values applied (duration = charged apply cost).
  void applied(const TxnId& id, SiteId site, SimTime now, SimDuration dur);
  /// Client-side: terminal response received (or execution abort). Flushes
  /// the transaction's phase report.
  void txn_finished(const TxnId& id, SiteId coord, SimTime now, bool committed,
                    bool read_only, AbortReason reason);
  /// Client-side: gave up waiting; outcome unknown.
  void txn_timed_out(const TxnId& id, SiteId coord, SimTime now);

  // ------------------------------------------------------------------
  // Message + fault hooks (net::Transport, core::Cluster).
  // ------------------------------------------------------------------
  void message(MsgClass cls, SiteId src, SiteId dst, std::uint64_t bytes,
               SimTime depart, SimTime arrive);
  void fault(FaultKind kind, SiteId site, SiteId peer, SimTime now);

  // ------------------------------------------------------------------
  // Time-series counter samples (driven by the harness sampler).
  // ------------------------------------------------------------------
  void sample(const char* name, SiteId site, SimTime now, double value);

  // ------------------------------------------------------------------
  // Counters.
  // ------------------------------------------------------------------
  [[nodiscard]] std::uint64_t msg_count(MsgClass c) const {
    MutexLock lock(&mu_);
    return msg_count_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t msg_bytes(MsgClass c) const {
    MutexLock lock(&mu_);
    return msg_bytes_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t fault_count(FaultKind k) const {
    MutexLock lock(&mu_);
    return fault_count_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t finished_txns() const {
    MutexLock lock(&mu_);
    return finished_;
  }
  [[nodiscard]] std::uint64_t dropped_events() const {
    MutexLock lock(&mu_);
    return dropped_;
  }
  /// Resets counters (not the event buffer) — called at the end of warmup
  /// so counters line up with the transport's accounting window.
  void reset_counters();

  // ------------------------------------------------------------------
  // Export.
  // ------------------------------------------------------------------
  /// Direct buffer access — only safe once no hooks can fire concurrently
  /// (sim runs, or a live cluster after stop()), which is why it is exempt
  /// from the lock discipline instead of returning a reference it cannot
  /// protect.
  [[nodiscard]] const std::vector<TraceEvent>& events() const
      NO_THREAD_SAFETY_ANALYSIS {
    return events_;  // quiescent-only accessor, see contract above
  }
  /// Chrome trace-event JSON (one {"traceEvents": [...]} object), loadable
  /// in Perfetto / chrome://tracing. Deterministic byte-for-byte.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Compact per-transaction timeline, one line per finished transaction in
  /// completion order (for golden tests and quick terminal inspection).
  [[nodiscard]] std::string text_timeline() const;

 private:
  /// Coordinator-perspective anchors of one in-flight transaction.
  struct Live {
    SimTime begin = 0;       // client begin request
    SimTime got_record = 0;  // begin response seen by the client
    SimTime submit = 0;      // submit(T) at the coordinator
    SimTime delivered = 0;   // termination delivered at the coordinator
    SimTime cert_start = 0;
    SimTime cert_end = 0;
    SimTime decide = 0;
    SimDuration read_time = 0;
    SimDuration write_time = 0;
    SimDuration apply_time = 0;
    bool read_only = false;
    bool has_term = false;  // submit reached the termination protocol
  };

  void push(const TraceEvent& e) REQUIRES(mu_);
  /// Lane assignment: spreads concurrent transactions across a few tracks
  /// so their spans do not get mis-nested in the viewer.
  [[nodiscard]] static std::uint32_t lane_of(const TxnId& id) {
    return 1 + static_cast<std::uint32_t>(id.seq % 24);
  }
  void flush(const TxnId& id, Live& lv, SiteId coord, SimTime now,
             bool committed, AbortReason reason) REQUIRES(mu_);

  const TraceConfig cfg_;  // immutable after construction, lock-free reads
  /// Serializes every hook and counter read. The simulator calls hooks from
  /// one thread (uncontended fast path); the live runtime calls them from
  /// every site thread.
  mutable Mutex mu_;
  std::function<void(const TxnPhaseReport&)> sink_ GUARDED_BY(mu_);
  std::unordered_map<TxnId, Live> live_ GUARDED_BY(mu_);
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  std::vector<TxnPhaseReport> reports_ GUARDED_BY(mu_);  // only when cfg_.spans
  std::array<std::uint64_t, kMsgClassCount> msg_count_ GUARDED_BY(mu_){};
  std::array<std::uint64_t, kMsgClassCount> msg_bytes_ GUARDED_BY(mu_){};
  std::array<std::uint64_t, kFaultKindCount> fault_count_ GUARDED_BY(mu_){};
  std::uint64_t finished_ GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace gdur::obs

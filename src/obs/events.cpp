#include "obs/events.h"

namespace gdur::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kExecute:
      return "execute";
    case Phase::kRead:
      return "read";
    case Phase::kWriteBuffer:
      return "write-buffer";
    case Phase::kXcast:
      return "xcast";
    case Phase::kCertWait:
      return "cert-wait";
    case Phase::kCertify:
      return "certify";
    case Phase::kVoteCollect:
      return "vote-collect";
    case Phase::kApply:
      return "apply";
    case Phase::kClientResponse:
      return "response";
    case Phase::kCount:
      break;
  }
  return "?";
}

const char* abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kCertConflict:
      return "cert-conflict";
    case AbortReason::kSnapshotFailure:
      return "snapshot-failure";
    case AbortReason::kTimeout:
      return "timeout";
    case AbortReason::kPresumedAbort:
      return "presumed-abort";
    case AbortReason::kCount:
      break;
  }
  return "?";
}

const char* msg_class_name(MsgClass c) {
  switch (c) {
    case MsgClass::kControl:
      return "control";
    case MsgClass::kClientReq:
      return "client-req";
    case MsgClass::kClientResp:
      return "client-resp";
    case MsgClass::kRemoteRead:
      return "remote-read";
    case MsgClass::kReadReply:
      return "read-reply";
    case MsgClass::kTermination:
      return "termination";
    case MsgClass::kOrdering:
      return "ordering";
    case MsgClass::kVote:
      return "vote";
    case MsgClass::kPaxos2a:
      return "paxos-2a";
    case MsgClass::kPaxos2b:
      return "paxos-2b";
    case MsgClass::kDecision:
      return "decision";
    case MsgClass::kPropagation:
      return "propagation";
    case MsgClass::kCount:
      break;
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kRetransmit:
      return "retransmit";
    case FaultKind::kExpire:
      return "expire";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecovery:
      return "recovery";
    case FaultKind::kCount:
      break;
  }
  return "?";
}

}  // namespace gdur::obs

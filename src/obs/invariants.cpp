#include "obs/invariants.h"

#include <cstdio>

namespace gdur::obs {

namespace {
std::string describe(const char* what, bool seen, bool fresh) {
  char buf[128];
  snprintf(buf, sizeof buf, "%s: recorded=%s now=%s", what,
           seen ? "true" : "false", fresh ? "true" : "false");
  return buf;
}

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

InvariantMonitor::BoundedKV::BoundedKV(std::size_t capacity_pow2)
    : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {}

std::size_t InvariantMonitor::BoundedKV::home(SiteId site,
                                              const TxnId& txn) const {
  return static_cast<std::size_t>(
             mix(txn.seq ^ (static_cast<std::uint64_t>(site) << 40) ^
                 (static_cast<std::uint64_t>(txn.coord) << 52))) &
         mask_;
}

InvariantMonitor::BoundedKV::Ref InvariantMonitor::BoundedKV::find(
    SiteId site, const TxnId& txn) const {
  const std::size_t h = home(site, txn);
  for (int i = 0; i < kProbeWindow; ++i) {
    const Slot& s = slots_[(h + i) & mask_];
    if (!s.used) return {};
    if (s.seq == txn.seq && s.site == site && s.coord == txn.coord)
      return {true, s.value};
  }
  return {};
}

InvariantMonitor::BoundedKV::Ref InvariantMonitor::BoundedKV::find_or_insert(
    SiteId site, const TxnId& txn, bool value) {
  const std::size_t h = home(site, txn);
  Slot* victim = nullptr;
  for (int i = 0; i < kProbeWindow; ++i) {
    Slot& s = slots_[(h + i) & mask_];
    if (!s.used) {
      victim = &s;
      break;
    }
    if (s.seq == txn.seq && s.site == site && s.coord == txn.coord)
      return {true, s.value};
    // Recycling candidate: the least-recently-inserted live slot. The
    // uint32 stamp wraps after 4G insertions; a wrap only skews which slot
    // is recycled, never correctness.
    if (victim == nullptr || s.stamp < victim->stamp) victim = &s;
  }
  victim->seq = txn.seq;
  victim->site = site;
  victim->coord = txn.coord;
  victim->stamp = ++clock_;
  victim->used = true;
  victim->value = value;
  return {false, value};
}

void InvariantMonitor::report(const char* invariant, SiteId site,
                              const TxnId& txn, SimTime now,
                              std::string detail) {
  ++count_;
  if (events_.size() < kMaxEvents) {
    Violation v;
    v.invariant = invariant;
    v.site = site;
    v.txn = txn;
    v.at = now;
    v.detail = std::move(detail);
    events_.push_back(std::move(v));
  }
}

void InvariantMonitor::note_vote(SiteId voter, const TxnId& txn, bool vote,
                                 SimTime now) {
  Violation fired;
  bool any = false;
  std::function<void(const Violation&)> cb;
  {
    MutexLock lock(&mu_);
    const auto r = votes_.find_or_insert(voter, txn, vote);
    if (r.found && r.value != vote) {
      report("vote-consistency", voter, txn, now,
             describe("vote value changed", r.value, vote));
      any = true;
      fired = events_.empty() ? Violation{} : events_.back();
      cb = on_violation_;
    }
  }
  if (any && cb) cb(fired);
}

void InvariantMonitor::note_epoch(SiteId site, EpochId e, SimTime now) {
  Violation fired;
  bool any = false;
  std::function<void(const Violation&)> cb;
  {
    MutexLock lock(&mu_);
    auto [it, inserted] = epochs_.try_emplace(site, e);
    if (!inserted) {
      if (e < it->second) {
        char buf[96];
        snprintf(buf, sizeof buf, "epoch regressed: %u -> %u", it->second, e);
        report("epoch-monotonic", site, TxnId{kNoSite, 0}, now, buf);
        any = true;
        fired = events_.empty() ? Violation{} : events_.back();
        cb = on_violation_;
      } else {
        it->second = e;
      }
    }
  }
  if (any && cb) cb(fired);
}

void InvariantMonitor::note_decided(SiteId site, const TxnId& txn, bool commit,
                                    SimTime now) {
  Violation fired;
  bool any = false;
  std::function<void(const Violation&)> cb;
  {
    MutexLock lock(&mu_);
    decided_.find_or_insert(site, txn, commit);
    // Cross-site decision consistency (txn-keyed, site-agnostic).
    const auto o = outcome_.find_or_insert(kNoSite, txn, commit);
    if (o.found && o.value != commit) {
      report("decision-consistency", site, txn, now,
             describe("outcome differs across sites", o.value, commit));
      any = true;
    }
    // Same-site WAL agreement, if the durable record arrived first.
    if (const auto w = wal_.find(site, txn); w.found && w.value != commit) {
      report("wal-decision-agreement", site, txn, now,
             describe("decided-cache contradicts WAL", w.value, commit));
      any = true;
    }
    if (any) {
      fired = events_.empty() ? Violation{} : events_.back();
      cb = on_violation_;
    }
  }
  if (any && cb) cb(fired);
}

void InvariantMonitor::note_wal_decision(SiteId site, const TxnId& txn,
                                         bool commit, SimTime now) {
  Violation fired;
  bool any = false;
  std::function<void(const Violation&)> cb;
  {
    MutexLock lock(&mu_);
    const auto r = wal_.find_or_insert(site, txn, commit);
    if (r.found && r.value != commit) {
      report("wal-decision-agreement", site, txn, now,
             describe("WAL logged two outcomes", r.value, commit));
      any = true;
    }
    if (const auto d = decided_.find(site, txn); d.found && d.value != commit) {
      report("wal-decision-agreement", site, txn, now,
             describe("WAL contradicts decided-cache", d.value, commit));
      any = true;
    }
    if (any) {
      fired = events_.empty() ? Violation{} : events_.back();
      cb = on_violation_;
    }
  }
  if (any && cb) cb(fired);
}

}  // namespace gdur::obs

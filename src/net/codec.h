// Wire codec — the serialization scaffolding of the communication layer.
//
// The simulator ships payloads by pointer, but message *sizes* drive both
// transmission delay and (un)marshaling CPU cost, so they must be honest.
// This codec defines the actual wire format (varint-compressed, like the
// paper's Java implementation's hand-rolled externalization), provides
// encode/decode for every protocol message, and is what net::wire's sizing
// helpers are validated against in tests. Encoding is also exercised for
// real in the persistence layer's write-ahead log.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/analysis_annotations.h"
#include "core/transaction.h"
#include "store/mv_store.h"

namespace gdur::net::codec {

/// Append-only byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128 variable-length unsigned integer.
  void varint(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t n);
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  /// Moves the buffer out (zero-copy handoff to Reactor::send_frame); the
  /// writer is empty afterwards.
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential byte source. Reads return nullopt on malformed/truncated
/// input instead of throwing.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::uint64_t> varint();
  std::optional<std::int64_t> i64();
  std::optional<std::string> str();

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

// --- protocol message encodings ---------------------------------------------

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_stamp(Writer& w, const versioning::Stamp& s);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<versioning::Stamp> decode_stamp(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_snapshot(Writer& w, const versioning::TxnSnapshot& s);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<versioning::TxnSnapshot> decode_snapshot(Reader& r);

/// Full termination record: ids, read/write sets, read entries, snapshot,
/// stamp. After-values are represented by their size only (they carry no
/// information the simulator uses), encoded as a length marker per write.
GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_txn(Writer& w, const core::TxnRecord& t,
                std::uint64_t payload_bytes_per_write);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<core::TxnRecord> decode_txn(Reader& r);

/// Exact wire size of a termination message under this codec.
std::uint64_t encoded_txn_size(const core::TxnRecord& t,
                               std::uint64_t payload_bytes_per_write);

// --- live-runtime message classes --------------------------------------------
//
// In the simulator payloads travel by pointer; the live runtime (src/live)
// ships every protocol message as real bytes, framed as one type tag
// followed by the body encoded below. Every class here round-trips
// byte-exactly and rejects malformed input with nullopt (tests/test_codec).

/// Frame type tag — first byte of every live frame. Values 1–15 are
/// inter-site protocol traffic; 32+ is the client (front-door) protocol.
enum class MsgType : std::uint8_t {
  kTermDeliver = 1,  // body: encode_txn (termination record)
  kTermSubmit = 2,   // body: TermSubmitMsg (origin -> sequencer)
  kVote = 3,         // body: VoteMsg
  kDecision = 4,     // body: DecisionMsg
  kPaxos2a = 5,      // body: PaxosMsg (acceptor field unused)
  kPaxos2b = 6,      // body: PaxosMsg
  kReadRequest = 7,  // body: ReadRequestMsg
  kReadReply = 8,    // body: ReadReplyMsg
  kPropagate = 9,    // body: PropagateMsg
  kControl = 10,     // body: ControlMsg (connection handshake etc.)
  kBatch = 11,       // body: coalesced inner frames (encode_batch)
  kClientHello = 32,    // body: ClientHelloMsg (client -> server)
  kClientWelcome = 33,  // body: ClientWelcomeMsg (server -> client)
  kClientReq = 34,      // body: ClientReqMsg
  kClientResp = 35,     // body: ClientRespMsg
  kPushback = 36,       // body: PushbackMsg (server -> client)
};

/// A certification vote (GC participant vote or 2PC vote to the coord).
struct VoteMsg {
  TxnId txn;
  SiteId voter = 0;
  bool vote = false;
};

/// 2PC / Paxos outcome, or a decided site answering an in-doubt voter.
struct DecisionMsg {
  TxnId txn;
  bool commit = false;
};

/// Paxos Commit phase 2a (participant -> acceptor; `acceptor` unused) and
/// 2b (acceptor -> coordinator).
struct PaxosMsg {
  TxnId txn;
  SiteId participant = 0;
  bool vote = false;
  SiteId acceptor = 0;
};

/// Remote read request: the requester's snapshot travels with it
/// (Algorithm 1 line 13). `req` correlates the reply.
struct ReadRequestMsg {
  std::uint64_t req = 0;
  SiteId requester = 0;
  ObjectId obj = 0;
  versioning::TxnSnapshot snap;
};

/// Remote read reply: the chosen version (absent for the implicit initial
/// version) plus its after-value, represented by a length marker + opaque
/// bytes exactly like termination after-values.
struct ReadReplyMsg {
  std::uint64_t req = 0;
  bool ok = false;
  bool has_version = false;
  store::Version version;  // meaningful only when has_version
  std::uint64_t payload_bytes = 0;
};

/// Termination submission to the ordering sequencer: destination list +
/// the full termination record.
struct TermSubmitMsg {
  std::vector<SiteId> dests;
  core::TxnRecord txn;
};

/// Background stamp propagation (Walter / S-DUR post_commit).
struct PropagateMsg {
  SiteId from = 0;
  versioning::Stamp stamp;
};

/// Control-plane message (live connection handshake: kind 1 = hello, arg =
/// the connecting site's id).
struct ControlMsg {
  std::uint64_t kind = 0;
  std::uint64_t arg = 0;
};

// --- client (front-door) protocol --------------------------------------------
//
// A GdurClient connection speaks these frames against front::FrontServer:
// hello/welcome establishes a session pinned to one site, then pipelined
// requests carry a client-chosen cookie echoed in the response. Pushback
// frames are the server's explicit backpressure signal (cert queues past a
// watermark): clients stop submitting until the resume frame.

/// Operations a client request can carry. kStored runs a one-shot stored
/// transaction (all reads then all writes then commit) entirely server-side
/// — one round trip instead of 2 + reads + writes.
enum class ClientOp : std::uint8_t {
  kBegin = 1,
  kRead = 2,
  kWrite = 3,
  kCommit = 4,
  kStored = 5,
};

/// First client frame on a connection. `site_hint` requests a coordinator
/// site (kNoSite = server picks one).
struct ClientHelloMsg {
  std::uint64_t version = 1;
  SiteId site_hint = kNoSite;
};

/// Server's session grant: the session id, the agreed per-session in-flight
/// window, the coordinator site and its protocol name.
struct ClientWelcomeMsg {
  std::uint64_t session = 0;
  std::uint32_t window = 0;
  SiteId site = 0;
  std::string protocol;
};

/// One pipelined request. `txn` is the server-issued transaction handle
/// (from the kBegin response); `obj` is the object of kRead/kWrite;
/// `reads`/`writes` are the footprint of a kStored transaction.
struct ClientReqMsg {
  std::uint64_t cookie = 0;
  ClientOp op = ClientOp::kBegin;
  std::uint64_t txn = 0;
  ObjectId obj = 0;
  std::vector<ObjectId> reads;
  std::vector<ObjectId> writes;
};

/// Response to one request, correlated by cookie. `ok` is the operation
/// verdict (for kCommit/kStored: committed). `txn` echoes the handle
/// (kBegin: the newly issued one). `payload_bytes` sizes the after-value a
/// kRead returns, same length-marker convention as read replies.
struct ClientRespMsg {
  std::uint64_t cookie = 0;
  ClientOp op = ClientOp::kBegin;
  bool ok = false;
  std::uint64_t txn = 0;
  std::uint64_t payload_bytes = 0;
};

/// Server backpressure: stop (or resume) submitting on this session.
/// `depth` is the certification-queue depth that tripped the watermark.
struct PushbackMsg {
  bool stop = false;
  std::uint64_t depth = 0;
};

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_version(Writer& w, const store::Version& v);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<store::Version> decode_version(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_vote(Writer& w, const VoteMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<VoteMsg> decode_vote(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_decision(Writer& w, const DecisionMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<DecisionMsg> decode_decision(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_paxos(Writer& w, const PaxosMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<PaxosMsg> decode_paxos(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_read_request(Writer& w, const ReadRequestMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ReadRequestMsg> decode_read_request(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_read_reply(Writer& w, const ReadReplyMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ReadReplyMsg> decode_read_reply(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_term_submit(Writer& w, const TermSubmitMsg& m,
                        std::uint64_t payload_bytes_per_write);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<TermSubmitMsg> decode_term_submit(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_propagate(Writer& w, const PropagateMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<PropagateMsg> decode_propagate(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_control(Writer& w, const ControlMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ControlMsg> decode_control(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_client_hello(Writer& w, const ClientHelloMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ClientHelloMsg> decode_client_hello(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_client_welcome(Writer& w, const ClientWelcomeMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ClientWelcomeMsg> decode_client_welcome(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_client_req(Writer& w, const ClientReqMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ClientReqMsg> decode_client_req(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_client_resp(Writer& w, const ClientRespMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<ClientRespMsg> decode_client_resp(Reader& r);

GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_pushback(Writer& w, const PushbackMsg& m);
GDUR_HOT_PATH("nolock,noclock,noblock")
std::optional<PushbackMsg> decode_pushback(Reader& r);

/// Coalesced frame (vote/ack batching): `frames` are complete tagged frame
/// bodies (type byte + payload) sharing one wire frame and one length
/// prefix. Body layout: varint count, then per item varint len + bytes.
/// Nested batches are rejected on decode, as are empty items.
GDUR_HOT_PATH("nolock,noclock,noblock")
void encode_batch(Writer& w,
                  const std::vector<std::vector<std::uint8_t>>& frames);
std::optional<std::vector<std::vector<std::uint8_t>>> decode_batch(Reader& r);

}  // namespace gdur::net::codec

// Wire codec — the serialization scaffolding of the communication layer.
//
// The simulator ships payloads by pointer, but message *sizes* drive both
// transmission delay and (un)marshaling CPU cost, so they must be honest.
// This codec defines the actual wire format (varint-compressed, like the
// paper's Java implementation's hand-rolled externalization), provides
// encode/decode for every protocol message, and is what net::wire's sizing
// helpers are validated against in tests. Encoding is also exercised for
// real in the persistence layer's write-ahead log.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/transaction.h"

namespace gdur::net::codec {

/// Append-only byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128 variable-length unsigned integer.
  void varint(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t n);
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential byte source. Reads return nullopt on malformed/truncated
/// input instead of throwing.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::uint64_t> varint();
  std::optional<std::int64_t> i64();
  std::optional<std::string> str();

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

// --- protocol message encodings ---------------------------------------------

void encode_stamp(Writer& w, const versioning::Stamp& s);
std::optional<versioning::Stamp> decode_stamp(Reader& r);

void encode_snapshot(Writer& w, const versioning::TxnSnapshot& s);
std::optional<versioning::TxnSnapshot> decode_snapshot(Reader& r);

/// Full termination record: ids, read/write sets, read entries, snapshot,
/// stamp. After-values are represented by their size only (they carry no
/// information the simulator uses), encoded as a length marker per write.
void encode_txn(Writer& w, const core::TxnRecord& t,
                std::uint64_t payload_bytes_per_write);
std::optional<core::TxnRecord> decode_txn(Reader& r);

/// Exact wire size of a termination message under this codec.
std::uint64_t encoded_txn_size(const core::TxnRecord& t,
                               std::uint64_t payload_bytes_per_write);

}  // namespace gdur::net::codec

#include "net/codec.h"

#include <cstring>

namespace gdur::net::codec {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Writer::str(const std::string& s) {
  varint(s.size());
  bytes(s.data(), s.size());
}

std::optional<std::uint8_t> Reader::u8() {
  if (pos_ >= buf_.size()) return std::nullopt;
  return buf_[pos_++];
}

std::optional<std::uint32_t> Reader::u32() {
  if (pos_ + 4 > buf_.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> Reader::u64() {
  if (pos_ + 8 > buf_.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < buf_.size() && shift < 64) {
    const std::uint8_t b = buf_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Reader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<std::string> Reader::str() {
  const auto n = varint();
  if (!n || pos_ + *n > buf_.size()) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(*n));
  pos_ += *n;
  return out;
}

// ---------------------------------------------------------------------------

void encode_stamp(Writer& w, const versioning::Stamp& s) {
  w.u32(s.origin);
  w.varint(s.seq);
  w.varint(s.dep.size());
  for (auto d : s.dep) w.varint(d);
}

std::optional<versioning::Stamp> decode_stamp(Reader& r) {
  versioning::Stamp s;
  const auto origin = r.u32();
  const auto seq = r.varint();
  const auto n = r.varint();
  if (!origin || !seq || !n) return std::nullopt;
  s.origin = *origin;
  s.seq = *seq;
  s.dep.reserve(static_cast<std::size_t>(*n));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto d = r.varint();
    if (!d) return std::nullopt;
    s.dep.push_back(*d);
  }
  return s;
}

namespace {
void encode_u64_vec(Writer& w, const std::vector<std::uint64_t>& v) {
  w.varint(v.size());
  for (auto x : v) w.varint(x);
}

std::optional<std::vector<std::uint64_t>> decode_u64_vec(Reader& r) {
  const auto n = r.varint();
  if (!n) return std::nullopt;
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(*n));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto x = r.varint();
    if (!x) return std::nullopt;
    out.push_back(*x);
  }
  return out;
}
}  // namespace

void encode_snapshot(Writer& w, const versioning::TxnSnapshot& s) {
  encode_u64_vec(w, s.vts);
  encode_u64_vec(w, s.floor);
  encode_u64_vec(w, s.ceil);
  w.varint(s.start_seq);
}

std::optional<versioning::TxnSnapshot> decode_snapshot(Reader& r) {
  versioning::TxnSnapshot s;
  auto vts = decode_u64_vec(r);
  auto floor = decode_u64_vec(r);
  auto ceil = decode_u64_vec(r);
  auto start = r.varint();
  if (!vts || !floor || !ceil || !start) return std::nullopt;
  s.vts = *std::move(vts);
  s.floor = *std::move(floor);
  s.ceil = *std::move(ceil);
  s.start_seq = *start;
  return s;
}

void encode_txn(Writer& w, const core::TxnRecord& t,
                std::uint64_t payload_bytes_per_write) {
  w.u32(t.id.coord);
  w.varint(t.id.seq);
  w.i64(t.begin_time);
  w.i64(t.submit_time);
  w.varint(t.rs.size());
  for (ObjectId o : t.rs) w.varint(o);
  w.varint(t.ws.size());
  for (ObjectId o : t.ws) {
    w.varint(o);
    // After-value: length marker + opaque payload bytes.
    w.varint(payload_bytes_per_write);
    for (std::uint64_t i = 0; i < payload_bytes_per_write; ++i) w.u8(0);
  }
  w.varint(t.reads.size());
  for (const auto& rd : t.reads) {
    w.varint(rd.obj);
    w.u32(rd.part);
    w.u32(rd.writer.coord);
    w.varint(rd.writer.seq);
    w.varint(rd.pidx);
  }
  encode_snapshot(w, t.snap);
  encode_stamp(w, t.stamp);
}

std::optional<core::TxnRecord> decode_txn(Reader& r) {
  core::TxnRecord t;
  const auto coord = r.u32();
  const auto seq = r.varint();
  const auto begin = r.i64();
  const auto submit = r.i64();
  if (!coord || !seq || !begin || !submit) return std::nullopt;
  t.id = {*coord, *seq};
  t.begin_time = *begin;
  t.submit_time = *submit;

  const auto nr = r.varint();
  if (!nr) return std::nullopt;
  for (std::uint64_t i = 0; i < *nr; ++i) {
    const auto o = r.varint();
    if (!o) return std::nullopt;
    t.rs.insert(*o);
  }
  const auto nw = r.varint();
  if (!nw) return std::nullopt;
  for (std::uint64_t i = 0; i < *nw; ++i) {
    const auto o = r.varint();
    if (!o) return std::nullopt;
    t.ws.insert(*o);
    const auto len = r.varint();
    if (!len) return std::nullopt;
    for (std::uint64_t k = 0; k < *len; ++k)
      if (!r.u8()) return std::nullopt;
  }
  const auto ne = r.varint();
  if (!ne) return std::nullopt;
  for (std::uint64_t i = 0; i < *ne; ++i) {
    core::ReadEntry e;
    const auto o = r.varint();
    const auto p = r.u32();
    const auto wc = r.u32();
    const auto wsq = r.varint();
    const auto pidx = r.varint();
    if (!o || !p || !wc || !wsq || !pidx) return std::nullopt;
    e.obj = *o;
    e.part = *p;
    e.writer = {*wc, *wsq};
    e.pidx = *pidx;
    t.reads.push_back(e);
  }
  auto snap = decode_snapshot(r);
  auto stamp = decode_stamp(r);
  if (!snap || !stamp) return std::nullopt;
  t.snap = *std::move(snap);
  t.stamp = *std::move(stamp);
  return t;
}

std::uint64_t encoded_txn_size(const core::TxnRecord& t,
                               std::uint64_t payload_bytes_per_write) {
  Writer w;
  encode_txn(w, t, payload_bytes_per_write);
  return w.size();
}

}  // namespace gdur::net::codec

#include "net/codec.h"

#include <algorithm>
#include <cstring>

namespace gdur::net::codec {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Writer::str(const std::string& s) {
  varint(s.size());
  bytes(s.data(), s.size());
}

std::optional<std::uint8_t> Reader::u8() {
  if (pos_ >= buf_.size()) return std::nullopt;
  return buf_[pos_++];
}

std::optional<std::uint32_t> Reader::u32() {
  if (pos_ + 4 > buf_.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> Reader::u64() {
  if (pos_ + 8 > buf_.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < buf_.size() && shift < 64) {
    const std::uint8_t b = buf_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Reader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<std::string> Reader::str() {
  const auto n = varint();
  if (!n || pos_ + *n > buf_.size()) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(*n));
  pos_ += *n;
  return out;
}

// ---------------------------------------------------------------------------

void encode_stamp(Writer& w, const versioning::Stamp& s) {
  w.u32(s.origin);
  w.varint(s.seq);
  w.varint(s.dep.size());
  for (auto d : s.dep) w.varint(d);
}

std::optional<versioning::Stamp> decode_stamp(Reader& r) {
  versioning::Stamp s;
  const auto origin = r.u32();
  const auto seq = r.varint();
  const auto n = r.varint();
  if (!origin || !seq || !n) return std::nullopt;
  s.origin = *origin;
  s.seq = *seq;
  // Clamp preallocation by the bytes left: a corrupted count must not
  // trigger a huge allocation before the per-element reads reject it.
  s.dep.reserve(static_cast<std::size_t>(std::min(*n, std::uint64_t{r.remaining()})));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto d = r.varint();
    if (!d) return std::nullopt;
    s.dep.push_back(*d);
  }
  return s;
}

namespace {
void encode_u64_vec(Writer& w, const std::vector<std::uint64_t>& v) {
  w.varint(v.size());
  for (auto x : v) w.varint(x);
}

std::optional<std::vector<std::uint64_t>> decode_u64_vec(Reader& r) {
  const auto n = r.varint();
  if (!n) return std::nullopt;
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(std::min(*n, std::uint64_t{r.remaining()})));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto x = r.varint();
    if (!x) return std::nullopt;
    out.push_back(*x);
  }
  return out;
}
}  // namespace

void encode_snapshot(Writer& w, const versioning::TxnSnapshot& s) {
  encode_u64_vec(w, s.vts);
  encode_u64_vec(w, s.floor);
  encode_u64_vec(w, s.ceil);
  w.varint(s.start_seq);
}

std::optional<versioning::TxnSnapshot> decode_snapshot(Reader& r) {
  versioning::TxnSnapshot s;
  auto vts = decode_u64_vec(r);
  auto floor = decode_u64_vec(r);
  auto ceil = decode_u64_vec(r);
  auto start = r.varint();
  if (!vts || !floor || !ceil || !start) return std::nullopt;
  s.vts = *std::move(vts);
  s.floor = *std::move(floor);
  s.ceil = *std::move(ceil);
  s.start_seq = *start;
  return s;
}

void encode_txn(Writer& w, const core::TxnRecord& t,
                std::uint64_t payload_bytes_per_write) {
  w.u32(t.id.coord);
  w.varint(t.id.seq);
  w.varint(t.epoch);
  w.i64(t.begin_time);
  w.i64(t.submit_time);
  w.varint(t.rs.size());
  for (ObjectId o : t.rs) w.varint(o);
  w.varint(t.ws.size());
  for (ObjectId o : t.ws) {
    w.varint(o);
    // After-value: length marker + opaque payload bytes.
    w.varint(payload_bytes_per_write);
    for (std::uint64_t i = 0; i < payload_bytes_per_write; ++i) w.u8(0);
  }
  w.varint(t.reads.size());
  for (const auto& rd : t.reads) {
    w.varint(rd.obj);
    w.u32(rd.part);
    w.u32(rd.writer.coord);
    w.varint(rd.writer.seq);
    w.varint(rd.pidx);
  }
  encode_snapshot(w, t.snap);
  encode_stamp(w, t.stamp);
}

std::optional<core::TxnRecord> decode_txn(Reader& r) {
  core::TxnRecord t;
  const auto coord = r.u32();
  const auto seq = r.varint();
  const auto epoch = r.varint();
  const auto begin = r.i64();
  const auto submit = r.i64();
  if (!coord || !seq || !epoch || !begin || !submit) return std::nullopt;
  t.id = {*coord, *seq};
  t.epoch = static_cast<EpochId>(*epoch);
  t.begin_time = *begin;
  t.submit_time = *submit;

  const auto nr = r.varint();
  if (!nr) return std::nullopt;
  for (std::uint64_t i = 0; i < *nr; ++i) {
    const auto o = r.varint();
    if (!o) return std::nullopt;
    t.rs.insert(*o);
  }
  const auto nw = r.varint();
  if (!nw) return std::nullopt;
  for (std::uint64_t i = 0; i < *nw; ++i) {
    const auto o = r.varint();
    if (!o) return std::nullopt;
    t.ws.insert(*o);
    const auto len = r.varint();
    if (!len) return std::nullopt;
    for (std::uint64_t k = 0; k < *len; ++k)
      if (!r.u8()) return std::nullopt;
  }
  const auto ne = r.varint();
  if (!ne) return std::nullopt;
  for (std::uint64_t i = 0; i < *ne; ++i) {
    core::ReadEntry e;
    const auto o = r.varint();
    const auto p = r.u32();
    const auto wc = r.u32();
    const auto wsq = r.varint();
    const auto pidx = r.varint();
    if (!o || !p || !wc || !wsq || !pidx) return std::nullopt;
    e.obj = *o;
    e.part = *p;
    e.writer = {*wc, *wsq};
    e.pidx = *pidx;
    t.reads.push_back(e);
  }
  auto snap = decode_snapshot(r);
  auto stamp = decode_stamp(r);
  if (!snap || !stamp) return std::nullopt;
  t.snap = *std::move(snap);
  t.stamp = *std::move(stamp);
  return t;
}

std::uint64_t encoded_txn_size(const core::TxnRecord& t,
                               std::uint64_t payload_bytes_per_write) {
  Writer w;
  encode_txn(w, t, payload_bytes_per_write);
  return w.size();
}

// ---------------------------------------------------------------------------
// Live-runtime message classes.
// ---------------------------------------------------------------------------

namespace {
void encode_txn_id(Writer& w, const TxnId& id) {
  w.u32(id.coord);
  w.varint(id.seq);
}

std::optional<TxnId> decode_txn_id(Reader& r) {
  const auto coord = r.u32();
  const auto seq = r.varint();
  if (!coord || !seq) return std::nullopt;
  return TxnId{*coord, *seq};
}
}  // namespace

void encode_version(Writer& w, const store::Version& v) {
  encode_txn_id(w, v.writer);
  w.varint(v.pidx);
  w.i64(v.commit_time);
  encode_stamp(w, v.stamp);
}

std::optional<store::Version> decode_version(Reader& r) {
  store::Version v;
  const auto writer = decode_txn_id(r);
  const auto pidx = r.varint();
  const auto ct = r.i64();
  auto stamp = decode_stamp(r);
  if (!writer || !pidx || !ct || !stamp) return std::nullopt;
  v.writer = *writer;
  v.pidx = *pidx;
  v.commit_time = *ct;
  v.stamp = *std::move(stamp);
  return v;
}

void encode_vote(Writer& w, const VoteMsg& m) {
  encode_txn_id(w, m.txn);
  w.u32(m.voter);
  w.u8(m.vote ? 1 : 0);
}

std::optional<VoteMsg> decode_vote(Reader& r) {
  const auto txn = decode_txn_id(r);
  const auto voter = r.u32();
  const auto vote = r.u8();
  if (!txn || !voter || !vote || *vote > 1) return std::nullopt;
  return VoteMsg{*txn, *voter, *vote != 0};
}

void encode_decision(Writer& w, const DecisionMsg& m) {
  encode_txn_id(w, m.txn);
  w.u8(m.commit ? 1 : 0);
}

std::optional<DecisionMsg> decode_decision(Reader& r) {
  const auto txn = decode_txn_id(r);
  const auto commit = r.u8();
  if (!txn || !commit || *commit > 1) return std::nullopt;
  return DecisionMsg{*txn, *commit != 0};
}

void encode_paxos(Writer& w, const PaxosMsg& m) {
  encode_txn_id(w, m.txn);
  w.u32(m.participant);
  w.u8(m.vote ? 1 : 0);
  w.u32(m.acceptor);
}

std::optional<PaxosMsg> decode_paxos(Reader& r) {
  const auto txn = decode_txn_id(r);
  const auto participant = r.u32();
  const auto vote = r.u8();
  const auto acceptor = r.u32();
  if (!txn || !participant || !vote || *vote > 1 || !acceptor)
    return std::nullopt;
  return PaxosMsg{*txn, *participant, *vote != 0, *acceptor};
}

void encode_read_request(Writer& w, const ReadRequestMsg& m) {
  w.varint(m.req);
  w.u32(m.requester);
  w.varint(m.obj);
  encode_snapshot(w, m.snap);
}

std::optional<ReadRequestMsg> decode_read_request(Reader& r) {
  ReadRequestMsg m;
  const auto req = r.varint();
  const auto requester = r.u32();
  const auto obj = r.varint();
  auto snap = decode_snapshot(r);
  if (!req || !requester || !obj || !snap) return std::nullopt;
  m.req = *req;
  m.requester = *requester;
  m.obj = *obj;
  m.snap = *std::move(snap);
  return m;
}

void encode_read_reply(Writer& w, const ReadReplyMsg& m) {
  w.varint(m.req);
  w.u8(m.ok ? 1 : 0);
  w.u8(m.has_version ? 1 : 0);
  if (m.has_version) {
    encode_version(w, m.version);
    // After-value: length marker + opaque payload bytes (same convention
    // as termination after-values in encode_txn).
    w.varint(m.payload_bytes);
    for (std::uint64_t i = 0; i < m.payload_bytes; ++i) w.u8(0);
  }
}

std::optional<ReadReplyMsg> decode_read_reply(Reader& r) {
  ReadReplyMsg m;
  const auto req = r.varint();
  const auto ok = r.u8();
  const auto hv = r.u8();
  if (!req || !ok || *ok > 1 || !hv || *hv > 1) return std::nullopt;
  m.req = *req;
  m.ok = *ok != 0;
  m.has_version = *hv != 0;
  if (m.has_version) {
    auto v = decode_version(r);
    const auto len = r.varint();
    if (!v || !len || r.remaining() < *len) return std::nullopt;
    m.version = *std::move(v);
    m.payload_bytes = *len;
    for (std::uint64_t i = 0; i < *len; ++i)
      if (!r.u8()) return std::nullopt;
  }
  return m;
}

void encode_term_submit(Writer& w, const TermSubmitMsg& m,
                        std::uint64_t payload_bytes_per_write) {
  w.varint(m.dests.size());
  for (SiteId d : m.dests) w.u32(d);
  encode_txn(w, m.txn, payload_bytes_per_write);
}

std::optional<TermSubmitMsg> decode_term_submit(Reader& r) {
  TermSubmitMsg m;
  const auto n = r.varint();
  if (!n || *n > (1u << 20)) return std::nullopt;
  m.dests.reserve(static_cast<std::size_t>(std::min(*n, std::uint64_t{r.remaining()})));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto d = r.u32();
    if (!d) return std::nullopt;
    m.dests.push_back(*d);
  }
  auto txn = decode_txn(r);
  if (!txn) return std::nullopt;
  m.txn = *std::move(txn);
  return m;
}

void encode_propagate(Writer& w, const PropagateMsg& m) {
  w.u32(m.from);
  encode_stamp(w, m.stamp);
}

std::optional<PropagateMsg> decode_propagate(Reader& r) {
  PropagateMsg m;
  const auto from = r.u32();
  auto stamp = decode_stamp(r);
  if (!from || !stamp) return std::nullopt;
  m.from = *from;
  m.stamp = *std::move(stamp);
  return m;
}

void encode_control(Writer& w, const ControlMsg& m) {
  w.varint(m.kind);
  w.varint(m.arg);
}

std::optional<ControlMsg> decode_control(Reader& r) {
  const auto kind = r.varint();
  const auto arg = r.varint();
  if (!kind || !arg) return std::nullopt;
  return ControlMsg{*kind, *arg};
}

// ---------------------------------------------------------------------------
// Client (front-door) protocol.
// ---------------------------------------------------------------------------

namespace {
std::optional<ClientOp> decode_client_op(Reader& r) {
  const auto op = r.u8();
  if (!op || *op < 1 || *op > 5) return std::nullopt;
  return static_cast<ClientOp>(*op);
}
}  // namespace

void encode_client_hello(Writer& w, const ClientHelloMsg& m) {
  w.varint(m.version);
  w.u32(m.site_hint);
}

std::optional<ClientHelloMsg> decode_client_hello(Reader& r) {
  const auto version = r.varint();
  const auto site = r.u32();
  if (!version || !site) return std::nullopt;
  return ClientHelloMsg{*version, *site};
}

void encode_client_welcome(Writer& w, const ClientWelcomeMsg& m) {
  w.varint(m.session);
  w.varint(m.window);
  w.u32(m.site);
  w.str(m.protocol);
}

std::optional<ClientWelcomeMsg> decode_client_welcome(Reader& r) {
  ClientWelcomeMsg m;
  const auto session = r.varint();
  const auto window = r.varint();
  const auto site = r.u32();
  auto protocol = r.str();
  if (!session || !window || *window > (1u << 20) || !site || !protocol)
    return std::nullopt;
  m.session = *session;
  m.window = static_cast<std::uint32_t>(*window);
  m.site = *site;
  m.protocol = *std::move(protocol);
  return m;
}

void encode_client_req(Writer& w, const ClientReqMsg& m) {
  w.varint(m.cookie);
  w.u8(static_cast<std::uint8_t>(m.op));
  w.varint(m.txn);
  w.varint(m.obj);
  w.varint(m.reads.size());
  for (ObjectId o : m.reads) w.varint(o);
  w.varint(m.writes.size());
  for (ObjectId o : m.writes) w.varint(o);
}

std::optional<ClientReqMsg> decode_client_req(Reader& r) {
  ClientReqMsg m;
  const auto cookie = r.varint();
  const auto op = decode_client_op(r);
  const auto txn = r.varint();
  const auto obj = r.varint();
  if (!cookie || !op || !txn || !obj) return std::nullopt;
  m.cookie = *cookie;
  m.op = *op;
  m.txn = *txn;
  m.obj = *obj;
  const auto nr = r.varint();
  if (!nr) return std::nullopt;
  m.reads.reserve(
      static_cast<std::size_t>(std::min(*nr, std::uint64_t{r.remaining()})));
  for (std::uint64_t i = 0; i < *nr; ++i) {
    const auto o = r.varint();
    if (!o) return std::nullopt;
    m.reads.push_back(*o);
  }
  const auto nw = r.varint();
  if (!nw) return std::nullopt;
  m.writes.reserve(
      static_cast<std::size_t>(std::min(*nw, std::uint64_t{r.remaining()})));
  for (std::uint64_t i = 0; i < *nw; ++i) {
    const auto o = r.varint();
    if (!o) return std::nullopt;
    m.writes.push_back(*o);
  }
  return m;
}

void encode_client_resp(Writer& w, const ClientRespMsg& m) {
  w.varint(m.cookie);
  w.u8(static_cast<std::uint8_t>(m.op));
  w.u8(m.ok ? 1 : 0);
  w.varint(m.txn);
  w.varint(m.payload_bytes);
}

std::optional<ClientRespMsg> decode_client_resp(Reader& r) {
  const auto cookie = r.varint();
  const auto op = decode_client_op(r);
  const auto ok = r.u8();
  const auto txn = r.varint();
  const auto payload = r.varint();
  if (!cookie || !op || !ok || *ok > 1 || !txn || !payload)
    return std::nullopt;
  return ClientRespMsg{*cookie, *op, *ok != 0, *txn, *payload};
}

void encode_pushback(Writer& w, const PushbackMsg& m) {
  w.u8(m.stop ? 1 : 0);
  w.varint(m.depth);
}

std::optional<PushbackMsg> decode_pushback(Reader& r) {
  const auto stop = r.u8();
  const auto depth = r.varint();
  if (!stop || *stop > 1 || !depth) return std::nullopt;
  return PushbackMsg{*stop != 0, *depth};
}

// ---------------------------------------------------------------------------
// Coalesced (batch) frames.
// ---------------------------------------------------------------------------

void encode_batch(Writer& w,
                  const std::vector<std::vector<std::uint8_t>>& frames) {
  w.varint(frames.size());
  for (const auto& f : frames) {
    w.varint(f.size());
    w.bytes(f.data(), f.size());
  }
}

std::optional<std::vector<std::vector<std::uint8_t>>> decode_batch(Reader& r) {
  const auto n = r.varint();
  if (!n || *n == 0 || *n > (1u << 20)) return std::nullopt;
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(
      static_cast<std::size_t>(std::min(*n, std::uint64_t{r.remaining()})));
  for (std::uint64_t i = 0; i < *n; ++i) {
    const auto len = r.varint();
    if (!len || *len == 0 || r.remaining() < *len) return std::nullopt;
    std::vector<std::uint8_t> item;
    item.reserve(static_cast<std::size_t>(*len));
    for (std::uint64_t k = 0; k < *len; ++k) item.push_back(*r.u8());
    // A batch inside a batch is a protocol error (and a recursion hazard).
    if (item[0] == static_cast<std::uint8_t>(MsgType::kBatch))
      return std::nullopt;
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace gdur::net::codec


#include "net/topology.h"

namespace gdur::net {

Topology Topology::geo(int n, SimDuration min_latency, SimDuration max_latency,
                       std::uint64_t seed) {
  Topology t(n);
  Rng rng(seed);
  for (SiteId i = 0; i < static_cast<SiteId>(n); ++i) {
    for (SiteId j = i + 1; j < static_cast<SiteId>(n); ++j) {
      const auto d = rng.next_range(min_latency, max_latency);
      t.set_latency(i, j, d);
    }
  }
  return t;
}

Topology Topology::uniform(int n, SimDuration latency) {
  Topology t(n);
  for (SiteId i = 0; i < static_cast<SiteId>(n); ++i)
    for (SiteId j = i + 1; j < static_cast<SiteId>(n); ++j)
      t.set_latency(i, j, latency);
  return t;
}

}  // namespace gdur::net

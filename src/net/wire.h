// Wire-size accounting.
//
// Payloads never cross the simulated network as real bytes; instead every
// message carries an analytic size, and the transport charges latency
// (transmission) and CPU ((un)marshaling) for it. The constants below mirror
// the paper's experimental setup: 1 KiB object payloads, key/metadata
// framing on top.
#pragma once

#include <cstdint>

namespace gdur::net::wire {

constexpr std::uint64_t kHeader = 48;       // envelope: ids, type, sizes
constexpr std::uint64_t kKey = 8;           // one object key
constexpr std::uint64_t kPayload = 1024;    // one object after-value (paper: 1KB)
constexpr std::uint64_t kVote = 16;         // certification vote
constexpr std::uint64_t kDecision = 16;     // commit/abort flag

/// Size of a read request for one object.
constexpr std::uint64_t read_request() { return kHeader + kKey; }

/// Size of a read reply carrying one object value plus `meta` bytes of
/// versioning metadata.
constexpr std::uint64_t read_reply(std::uint64_t meta) {
  return kHeader + kKey + kPayload + meta;
}

/// Size of a termination message for a transaction with `reads` read-set
/// entries, `writes` write-set entries (after-values travel with it), and
/// `meta` bytes of versioning metadata.
constexpr std::uint64_t termination(std::uint64_t reads, std::uint64_t writes,
                                    std::uint64_t meta) {
  return kHeader + reads * kKey + writes * (kKey + kPayload) + meta;
}

constexpr std::uint64_t vote() { return kHeader + kVote; }
constexpr std::uint64_t decision() { return kHeader + kDecision; }
constexpr std::uint64_t control() { return kHeader; }

}  // namespace gdur::net::wire

// Geo-replicated network topology: per-pair one-way latencies and a link
// bandwidth. The paper's testbed (Grid'5000) has 10-20 ms inter-site
// latencies; Topology::geo() reproduces that envelope deterministically.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gdur::net {

class Topology {
 public:
  /// `n` sites with all pairwise one-way latencies drawn uniformly from
  /// [min_latency, max_latency] (symmetric), seeded deterministically.
  static Topology geo(int n, SimDuration min_latency = milliseconds(10),
                      SimDuration max_latency = milliseconds(20),
                      std::uint64_t seed = 7);

  /// `n` sites with one fixed latency between every distinct pair.
  static Topology uniform(int n, SimDuration latency);

  [[nodiscard]] int sites() const { return n_; }

  [[nodiscard]] SimDuration latency(SiteId from, SiteId to) const {
    return lat_[from * static_cast<SiteId>(n_) + to];
  }
  void set_latency(SiteId from, SiteId to, SimDuration d) {
    lat_[from * static_cast<SiteId>(n_) + to] = d;
    lat_[to * static_cast<SiteId>(n_) + from] = d;
  }

  /// Link bandwidth in bytes per simulated second (transmission delay model).
  [[nodiscard]] double bandwidth_bps() const { return bandwidth_; }
  void set_bandwidth_bps(double bytes_per_second) { bandwidth_ = bytes_per_second; }

  /// Latency between a client machine and its co-located replica (LAN).
  [[nodiscard]] SimDuration client_latency() const { return client_latency_; }
  void set_client_latency(SimDuration d) { client_latency_ = d; }

 private:
  Topology(int n) : n_(n), lat_(static_cast<std::size_t>(n) * n, 0) {}

  int n_;
  std::vector<SimDuration> lat_;
  double bandwidth_ = 125e6;  // 1 Gbit/s
  SimDuration client_latency_ = microseconds(300);
};

}  // namespace gdur::net

#include "net/transport.h"

#include <algorithm>
#include <memory>

#include "obs/plane.h"
#include "obs/trace.h"

namespace gdur::net {

Transport::Transport(sim::Simulator& simulator, Topology topology,
                     sim::CostModel cost, int cores_per_site,
                     std::uint64_t jitter_seed)
    : sim_(simulator),
      topo_(std::move(topology)),
      cost_(cost),
      link_clock_(static_cast<std::size_t>(topo_.sites()) * topo_.sites(), 0),
      recv_clock_(static_cast<std::size_t>(topo_.sites()) * topo_.sites(), 0),
      jitter_rng_(jitter_seed),
      retransmit_rng_(mix64(jitter_seed ^ 0x7265747261'6e73ull)) {
  cpus_.reserve(static_cast<std::size_t>(topo_.sites()));
  for (int s = 0; s < topo_.sites(); ++s)
    cpus_.push_back(std::make_unique<sim::CpuResource>(sim_, cores_per_site));
}

SimDuration Transport::link_delay(SiteId src, SiteId dst, std::uint64_t bytes) {
  const SimDuration base = topo_.latency(src, dst);
  const double u = 2.0 * jitter_rng_.next_double() - 1.0;  // [-1, 1)
  const auto jittered =
      base + static_cast<SimDuration>(double(base) * jitter_ * u);
  const auto transmission = static_cast<SimDuration>(
      double(bytes) / topo_.bandwidth_bps() * 1e9);
  return jittered + transmission;
}

SimTime Transport::resolve_delivery(SiteId src, SiteId dst,
                                    std::uint64_t bytes, SimTime departure) {
  const auto& rc = fault_->retransmit();
  SimTime attempt = departure;
  SimDuration rto = std::min(rc.initial_rto, rc.max_rto);
  while (true) {
    const SimTime arrival = attempt + link_delay(src, dst, bytes);
    if (fault_->attempt(src, dst, attempt, arrival)) {
      if (fault_->duplicate(src, dst, attempt)) {
        // The receiver spends a dispatch on the duplicate before its
        // sequence number discards it; logically it is delivered once.
        ++fstats_.duplicates;
        cpu(dst).charge_after(arrival, cost_.msg_recv);
      }
      return arrival;
    }
    ++fstats_.dropped;
    if (trace_ != nullptr)
      trace_->fault(obs::FaultKind::kDrop, src, dst, attempt);
    if (plane_ != nullptr) {
      plane_->slot(src).record(obs::Counter::kMsgsDropped);
      plane_->ring(src).append("msg_drop", attempt, src, dst);
    }
    // The ack timer fires `rto` (±rc.jitter, to desynchronize retry storms)
    // after the attempt; retransmit then. The backoff stays capped at
    // max_rto so a sender keeps probing a long partition instead of backing
    // off into uselessness.
    const double u = 2.0 * retransmit_rng_.next_double() - 1.0;  // [-1, 1)
    attempt += std::max<SimDuration>(
        1, rto + static_cast<SimDuration>(double(rto) * rc.jitter * u));
    rto = std::min(static_cast<SimDuration>(double(rto) * rc.backoff),
                   rc.max_rto);
    if (attempt - departure > rc.give_up) {
      ++fstats_.expired;
      if (trace_ != nullptr)
        trace_->fault(obs::FaultKind::kExpire, src, dst, attempt);
      if (plane_ != nullptr) {
        plane_->slot(src).record(obs::Counter::kMsgsExpired);
        plane_->ring(src).append("msg_expire", attempt, src, dst);
      }
      return sim::kNever;
    }
    ++fstats_.retransmissions;
    if (trace_ != nullptr)
      trace_->fault(obs::FaultKind::kRetransmit, src, dst, attempt);
    if (plane_ != nullptr)
      plane_->slot(src).record(obs::Counter::kRetransmits);
    cpu(src).charge_after(attempt, cost_.msg_send);
  }
}

void Transport::send(SiteId src, SiteId dst, std::uint64_t bytes,
                     Handler handler, obs::MsgClass cls) {
  if (fault_ != nullptr && cpu(src).down_at(sim_.now())) return;  // dead site
  ++messages_;
  bytes_ += bytes;
  if (plane_ != nullptr) {
    auto& slot = plane_->slot(src);
    slot.record(obs::Counter::kMsgsSent);
    slot.record(obs::Counter::kBytesSent, bytes);
    slot.record_value(obs::Hist::kMsgBytes, bytes);
  }
  const SimDuration send_cost = cost_.msg_send + cost_.marshal(bytes);
  const SimDuration recv_cost = cost_.msg_recv + cost_.unmarshal(bytes);
  // The departure instant is known synchronously (deterministic CPU model),
  // so link FIFO order is fixed at call time: two sends on one link are
  // received in the order they were issued, like one TCP connection. Under
  // fault injection the whole retransmit schedule resolves here too, which
  // keeps the FIFO horizon exact over lossy links.
  const SimTime departure = cpu(src).charge(send_cost);
  if (src == dst) {
    if (trace_ != nullptr)
      trace_->message(cls, src, dst, bytes, departure, departure);
    sim_.at(departure, [this, dst, recv_cost, handler = std::move(handler)]() mutable {
      cpu(dst).submit(recv_cost, std::move(handler));
    });
    return;
  }
  const auto idx = src * static_cast<SiteId>(topo_.sites()) + dst;
  SimTime reach = departure + link_delay(src, dst, bytes);
  if (fault_ != nullptr) {
    reach = resolve_delivery(src, dst, bytes, departure);
    if (reach == sim::kNever) return;  // connection declared broken
  }
  const SimTime arrival = std::max(reach, link_clock_[idx]);
  link_clock_[idx] = arrival;
  if (trace_ != nullptr)
    trace_->message(cls, src, dst, bytes, departure, arrival);
  sim_.at(arrival, [this, idx, dst, recv_cost,
                    handler = std::move(handler)]() mutable {
    // One connection is drained by one receiver thread: handlers for the
    // same link run in arrival order.
    auto& c = cpu(dst);
    if (fault_ != nullptr && c.down_at(sim_.now())) {
      // FIFO serialization pushed the delivery into a crash window: the
      // receiver acknowledged at the transport level but lost the message
      // before the application saw it. Protocol retries must recover it.
      ++fstats_.expired;
      if (trace_ != nullptr)
        trace_->fault(obs::FaultKind::kExpire, dst, kNoSite, sim_.now());
      if (plane_ != nullptr) {
        plane_->slot(dst).record(obs::Counter::kMsgsExpired);
        plane_->ring(dst).append("msg_lost_in_crash", sim_.now(), dst);
      }
      return;
    }
    const SimTime done = c.charge_after(recv_clock_[idx], recv_cost);
    recv_clock_[idx] = done;
    if (fault_ == nullptr) {
      sim_.at(done, std::move(handler));
      return;
    }
    sim_.at(done, [this, dst, e = c.epoch(),
                   handler = std::move(handler)]() mutable {
      if (cpu(dst).epoch() == e)
        handler();
      else
        ++fstats_.expired;  // crashed while the handler was queued
    });
  });
}

void Transport::client_send(SiteId dst, std::uint64_t bytes, Handler handler) {
  ++messages_;
  bytes_ += bytes;
  if (plane_ != nullptr) {
    plane_->slot(dst).record(obs::Counter::kMsgsSent);
    plane_->slot(dst).record(obs::Counter::kBytesSent, bytes);
  }
  if (trace_ != nullptr)
    trace_->message(obs::MsgClass::kClientReq, kNoSite, dst, bytes, sim_.now(),
                    sim_.now() + topo_.client_latency());
  const SimDuration recv_cost = cost_.msg_recv + cost_.unmarshal(bytes);
  sim_.after(topo_.client_latency(),
             [this, dst, recv_cost, handler = std::move(handler)]() mutable {
               cpu(dst).submit(recv_cost, std::move(handler));
             });
}

void Transport::send_to_client(SiteId src, std::uint64_t bytes,
                               Handler handler) {
  ++messages_;
  bytes_ += bytes;
  if (plane_ != nullptr) {
    plane_->slot(src).record(obs::Counter::kMsgsSent);
    plane_->slot(src).record(obs::Counter::kBytesSent, bytes);
  }
  if (trace_ != nullptr)
    trace_->message(obs::MsgClass::kClientResp, src, kNoSite, bytes, sim_.now(),
                    sim_.now() + topo_.client_latency());
  const SimDuration send_cost = cost_.msg_send + cost_.marshal(bytes);
  cpu(src).submit(send_cost, [this, handler = std::move(handler)]() mutable {
    sim_.after(topo_.client_latency(), std::move(handler));
  });
}

void Transport::reset_accounting() {
  messages_ = 0;
  bytes_ = 0;
  fstats_ = {};
  for (auto& c : cpus_) c->reset_accounting();
}

}  // namespace gdur::net

#include "net/transport.h"

#include <algorithm>
#include <memory>

namespace gdur::net {

Transport::Transport(sim::Simulator& simulator, Topology topology,
                     sim::CostModel cost, int cores_per_site,
                     std::uint64_t jitter_seed)
    : sim_(simulator),
      topo_(std::move(topology)),
      cost_(cost),
      link_clock_(static_cast<std::size_t>(topo_.sites()) * topo_.sites(), 0),
      recv_clock_(static_cast<std::size_t>(topo_.sites()) * topo_.sites(), 0),
      jitter_rng_(jitter_seed) {
  cpus_.reserve(static_cast<std::size_t>(topo_.sites()));
  for (int s = 0; s < topo_.sites(); ++s)
    cpus_.push_back(std::make_unique<sim::CpuResource>(sim_, cores_per_site));
}

SimDuration Transport::link_delay(SiteId src, SiteId dst, std::uint64_t bytes) {
  const SimDuration base = topo_.latency(src, dst);
  const double u = 2.0 * jitter_rng_.next_double() - 1.0;  // [-1, 1)
  const auto jittered =
      base + static_cast<SimDuration>(double(base) * jitter_ * u);
  const auto transmission = static_cast<SimDuration>(
      double(bytes) / topo_.bandwidth_bps() * 1e9);
  return jittered + transmission;
}

void Transport::send(SiteId src, SiteId dst, std::uint64_t bytes,
                     Handler handler) {
  ++messages_;
  bytes_ += bytes;
  const SimDuration send_cost = cost_.msg_send + cost_.marshal(bytes);
  const SimDuration recv_cost = cost_.msg_recv + cost_.unmarshal(bytes);
  // The departure instant is known synchronously (deterministic CPU model),
  // so link FIFO order is fixed at call time: two sends on one link are
  // received in the order they were issued, like one TCP connection.
  const SimTime departure = cpu(src).charge(send_cost);
  if (src == dst) {
    sim_.at(departure, [this, dst, recv_cost, handler = std::move(handler)]() mutable {
      cpu(dst).submit(recv_cost, std::move(handler));
    });
    return;
  }
  const auto idx = src * static_cast<SiteId>(topo_.sites()) + dst;
  const SimTime arrival =
      std::max(departure + link_delay(src, dst, bytes), link_clock_[idx]);
  link_clock_[idx] = arrival;
  sim_.at(arrival, [this, idx, dst, recv_cost,
                    handler = std::move(handler)]() mutable {
    // One connection is drained by one receiver thread: handlers for the
    // same link run in arrival order.
    const SimTime done = cpu(dst).charge_after(recv_clock_[idx], recv_cost);
    recv_clock_[idx] = done;
    sim_.at(done, std::move(handler));
  });
}

void Transport::client_send(SiteId dst, std::uint64_t bytes, Handler handler) {
  ++messages_;
  bytes_ += bytes;
  const SimDuration recv_cost = cost_.msg_recv + cost_.unmarshal(bytes);
  sim_.after(topo_.client_latency(),
             [this, dst, recv_cost, handler = std::move(handler)]() mutable {
               cpu(dst).submit(recv_cost, std::move(handler));
             });
}

void Transport::send_to_client(SiteId src, std::uint64_t bytes,
                               Handler handler) {
  ++messages_;
  bytes_ += bytes;
  const SimDuration send_cost = cost_.msg_send + cost_.marshal(bytes);
  cpu(src).submit(send_cost, [this, handler = std::move(handler)]() mutable {
    sim_.after(topo_.client_latency(), std::move(handler));
  });
}

void Transport::reset_accounting() {
  messages_ = 0;
  bytes_ = 0;
  for (auto& c : cpus_) c->reset_accounting();
}

}  // namespace gdur::net

// Simulated point-to-point transport.
//
// A message is delivered by running a closure at the destination site after
// (one-way latency + transmission delay), and both endpoints are charged CPU
// time for send/receive plus (un)marshaling proportional to the message
// size. Payloads travel inside the closure, so no real serialization is
// needed; sizes are accounted analytically (see net::wire for the sizing
// rules).
//
// Channels are FIFO per (src, dst) pair, like TCP connections: a message
// never overtakes an earlier one on the same link. Several protocols
// (S-DUR's pairwise ordering, Walter's background propagation) rely on this.
//
// Fault injection (sim/fault): when a FaultInjector is installed, every
// send runs through an ack/retransmit layer. A delivery attempt that is
// dropped (lossy link), blocked (partition) or addressed to a crashed site
// is retried after an exponentially backed-off RTO; each retry charges the
// sender CPU and is counted in FaultStats. The link-clock FIFO horizon is
// applied to the *final* delivery instant, so the exactly-once FIFO
// contract survives loss and duplication — exactly what TCP gives the
// paper's middleware. A message still undelivered after `give_up` is
// abandoned (broken connection); protocol-level timeouts and retries
// (core::Replica) take over from there.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "net/topology.h"
#include "obs/events.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace gdur::obs {
class TraceRecorder;
class ObsPlane;
}

namespace gdur::net {

/// Counters of the fault/retransmit layer (all zero on fault-free runs).
struct FaultStats {
  std::uint64_t dropped = 0;         // delivery attempts lost or blocked
  std::uint64_t retransmissions = 0; // extra attempts sent
  std::uint64_t duplicates = 0;      // duplicate deliveries absorbed
  std::uint64_t expired = 0;         // messages abandoned after give_up
};

class Transport {
 public:
  using Handler = std::function<void()>;

  Transport(sim::Simulator& simulator, Topology topology,
            sim::CostModel cost = {}, int cores_per_site = 4,
            std::uint64_t jitter_seed = 11);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const sim::CostModel& cost() const { return cost_; }
  [[nodiscard]] int sites() const { return topo_.sites(); }

  /// CPU resource of a site, for protocol work not tied to a message.
  [[nodiscard]] sim::CpuResource& cpu(SiteId s) { return *cpus_[s]; }

  /// Sends `bytes` from `src` to `dst`; runs `handler` at the destination
  /// once the message has been received and unmarshaled. src == dst is a
  /// local loopback (no latency, but still a queued CPU job, preserving
  /// the no-reentrancy discipline of the protocol handlers). `cls` tags the
  /// message for the observability layer; it never affects delivery.
  void send(SiteId src, SiteId dst, std::uint64_t bytes, Handler handler,
            obs::MsgClass cls = obs::MsgClass::kControl);

  /// Client machine -> replica request (client CPUs are not modeled).
  void client_send(SiteId dst, std::uint64_t bytes, Handler handler);

  /// Replica -> client machine response.
  void send_to_client(SiteId src, std::uint64_t bytes, Handler handler);

  /// Runs `work` on `site`'s CPU after `service` time, FIFO with everything
  /// else that site does.
  void local_work(SiteId site, SimDuration service, Handler work) {
    cpu(site).submit(service, std::move(work));
  }

  /// Messages sent so far (for the message-complexity reports of §5.3).
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  void reset_accounting();

  /// Jitter amplitude as a fraction of the link latency (default 2%).
  void set_jitter(double fraction) { jitter_ = fraction; }

  /// *Pauses* site `s` until `until` — a benign outage (process freeze, VM
  /// migration), NOT a crash: the site performs no work meanwhile, messages
  /// addressed to it are buffered and processed after it comes back, and
  /// nothing is lost. For a crash with state loss use a sim::FaultPlan
  /// crash window (or CpuResource::crash_until directly).
  void pause_site(SiteId s, SimTime until) { cpu(s).block_until(until); }

  /// Installs a fault injector; `fi` may be nullptr to disable. Not owned.
  void set_fault_injector(sim::FaultInjector* fi) { fault_ = fi; }
  [[nodiscard]] sim::FaultInjector* fault_injector() const { return fault_; }
  [[nodiscard]] const FaultStats& fault_stats() const { return fstats_; }

  /// Installs a trace recorder (obs); nullptr disables. Not owned. Every
  /// hook is a null check — tracing never perturbs the simulation.
  void set_trace(obs::TraceRecorder* tr) { trace_ = tr; }
  [[nodiscard]] obs::TraceRecorder* trace() const { return trace_; }

  /// Installs the production observability plane (obs/plane.h); nullptr
  /// disables. Not owned. Same contract as set_trace: every hook is a null
  /// check, so a plane-free run is byte-identical.
  void set_plane(obs::ObsPlane* p) { plane_ = p; }
  [[nodiscard]] obs::ObsPlane* plane() const { return plane_; }

 private:
  [[nodiscard]] SimDuration link_delay(SiteId src, SiteId dst,
                                       std::uint64_t bytes);

  /// Walks the retransmit schedule under the installed fault injector.
  /// Returns the instant the message finally reaches `dst` (before FIFO
  /// serialization), or sim::kNever if the sender gives up.
  [[nodiscard]] SimTime resolve_delivery(SiteId src, SiteId dst,
                                         std::uint64_t bytes,
                                         SimTime departure);

  sim::Simulator& sim_;
  Topology topo_;
  sim::CostModel cost_;
  std::vector<std::unique_ptr<sim::CpuResource>> cpus_;
  std::vector<SimTime> link_clock_;  // arrival FIFO horizon per (src,dst)
  std::vector<SimTime> recv_clock_;  // receive-processing horizon per link
  Rng jitter_rng_;
  /// Separate stream for retransmit-delay jitter: the backoff schedule must
  /// not consume link-jitter draws (and vice versa), or installing a fault
  /// plan would shift every subsequent link delay.
  Rng retransmit_rng_;
  double jitter_ = 0.02;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  sim::FaultInjector* fault_ = nullptr;
  FaultStats fstats_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::ObsPlane* plane_ = nullptr;
};

}  // namespace gdur::net

// Placement of objects onto partitions and partitions onto sites.
//
// Objects are assigned to partitions by id modulo the partition count, so a
// workload generator can target a site's partitions directly (needed for the
// locality experiment of Figure 5). Each partition is replicated at
// `replication` consecutive sites: replication = 1 is the paper's
// Disaster-Prone configuration, 2 is Disaster-Tolerant.
#pragma once

#include <cassert>
#include <vector>

#include "common/obj_set.h"
#include "common/types.h"

namespace gdur::store {

class Partitioner {
 public:
  Partitioner(int sites, int replication, std::uint64_t objects,
              int partitions_per_site = 1)
      : sites_(sites),
        rf_(replication),
        objects_(objects),
        partitions_(static_cast<PartitionId>(sites * partitions_per_site)) {
    assert(replication >= 1 && replication <= sites);
  }

  [[nodiscard]] int sites() const { return sites_; }
  [[nodiscard]] int replication() const { return rf_; }
  [[nodiscard]] std::uint64_t objects() const { return objects_; }
  [[nodiscard]] PartitionId partitions() const { return partitions_; }

  [[nodiscard]] PartitionId partition_of(ObjectId o) const {
    return static_cast<PartitionId>(o % partitions_);
  }

  [[nodiscard]] SiteId primary_of(PartitionId p) const {
    return static_cast<SiteId>(p % static_cast<PartitionId>(sites_));
  }

  /// Sites replicating partition `p`: the primary plus the next rf-1 sites.
  [[nodiscard]] std::vector<SiteId> sites_of(PartitionId p) const {
    std::vector<SiteId> out;
    out.reserve(static_cast<std::size_t>(rf_));
    for (int k = 0; k < rf_; ++k)
      out.push_back(static_cast<SiteId>((primary_of(p) + static_cast<SiteId>(k)) %
                                        static_cast<SiteId>(sites_)));
    return out;
  }

  [[nodiscard]] std::vector<SiteId> replicas_of_object(ObjectId o) const {
    return sites_of(partition_of(o));
  }

  [[nodiscard]] bool is_local(SiteId s, ObjectId o) const {
    for (SiteId r : replicas_of_object(o))
      if (r == s) return true;
    return false;
  }

  /// Union of replicas over a whole object set (the paper's replicas(obj)).
  [[nodiscard]] std::vector<SiteId> replicas_of(const ObjSet& objs) const {
    std::vector<bool> in(static_cast<std::size_t>(sites_), false);
    for (ObjectId o : objs)
      for (SiteId r : replicas_of_object(o)) in[r] = true;
    std::vector<SiteId> out;
    for (SiteId s = 0; s < static_cast<SiteId>(sites_); ++s)
      if (in[s]) out.push_back(s);
    return out;
  }

  /// True iff every object in `objs` is replicated at a single common site.
  [[nodiscard]] bool single_site(const ObjSet& objs) const {
    if (objs.empty()) return true;
    for (int k = 0; k < sites_; ++k) {
      const auto s = static_cast<SiteId>(k);
      bool all = true;
      for (ObjectId o : objs)
        if (!is_local(s, o)) {
          all = false;
          break;
        }
      if (all) return true;
    }
    return false;
  }

  /// `i`-th object belonging to partition `p` (for locality-aware workloads).
  [[nodiscard]] ObjectId object_in_partition(PartitionId p,
                                             std::uint64_t i) const {
    return p + (i % (objects_ / partitions_)) * partitions_;
  }

 private:
  int sites_;
  int rf_;
  std::uint64_t objects_;
  PartitionId partitions_;
};

}  // namespace gdur::store

#include "store/wal.h"

#include <utility>
#include <vector>

namespace gdur::store {

void WriteAheadLog::append(std::uint64_t bytes, std::function<void()> done) {
  ++appends_;
  bytes_ += bytes;
  pending_.push_back(Record{bytes, std::move(done)});
  if (!sync_in_flight_) start_sync();
}

void WriteAheadLog::start_sync() {
  sync_in_flight_ = true;
  ++syncs_;
  // This sync covers the batch present right now (bounded by max_batch);
  // later appends wait for the next one.
  const auto batch =
      std::min<std::size_t>(pending_.size(),
                            static_cast<std::size_t>(cfg_.max_batch));
  std::uint64_t batch_bytes = 0;
  for (std::size_t i = 0; i < batch; ++i) batch_bytes += pending_[i].bytes;
  const auto device_time =
      cfg_.sync_latency +
      static_cast<SimDuration>(cfg_.per_byte_ns * double(batch_bytes));
  sim_.after(device_time, [this, batch] {
    std::vector<std::function<void()>> done;
    done.reserve(batch);
    for (std::size_t i = 0; i < batch && !pending_.empty(); ++i) {
      done.push_back(std::move(pending_.front().done));
      pending_.pop_front();
    }
    sync_in_flight_ = false;
    if (!pending_.empty()) start_sync();
    for (auto& cb : done) cb();
  });
}

}  // namespace gdur::store

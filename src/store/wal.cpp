#include "store/wal.h"

#include <utility>
#include <vector>

namespace gdur::store {

void WriteAheadLog::append(std::uint64_t bytes, std::optional<WalRecord> rec,
                           std::function<void()> done) {
  ++appends_;
  bytes_ += bytes;
  pending_.push_back(Record{bytes, std::move(rec), std::move(done)});
  if (!sync_in_flight_) start_sync();
}

void WriteAheadLog::start_sync() {
  sync_in_flight_ = true;
  ++syncs_;
  // This sync covers the batch present right now (bounded by max_batch);
  // later appends wait for the next one.
  const auto batch =
      std::min<std::size_t>(pending_.size(),
                            static_cast<std::size_t>(cfg_.max_batch));
  std::uint64_t batch_bytes = 0;
  for (std::size_t i = 0; i < batch; ++i) batch_bytes += pending_[i].bytes;
  const auto device_time =
      cfg_.sync_latency +
      static_cast<SimDuration>(cfg_.per_byte_ns * double(batch_bytes));
  sim_.after(device_time, [this, batch, e = epoch_] {
    if (e != epoch_) return;  // the crash took this sync with it
    std::vector<std::function<void()>> done;
    done.reserve(batch);
    for (std::size_t i = 0; i < batch && !pending_.empty(); ++i) {
      if (pending_.front().rec) stable_.push_back(*pending_.front().rec);
      done.push_back(std::move(pending_.front().done));
      pending_.pop_front();
    }
    sync_in_flight_ = false;
    if (!pending_.empty()) start_sync();
    for (auto& cb : done) cb();
  });
}

void WriteAheadLog::on_crash() {
  // Records whose fsync had not completed are lost — their state changes
  // were never made and their completion callbacks never run. That is the
  // durability contract recovery can rely on: stable() is exactly what a
  // real log would read back.
  ++epoch_;
  pending_.clear();
  sync_in_flight_ = false;
}

}  // namespace gdur::store

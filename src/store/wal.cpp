#include "store/wal.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/membership.h"
#include "net/codec.h"

namespace gdur::store {

namespace {

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// Record bodies. Termination kinds carry the full transaction record so a
// recovering (or joining) site can re-run certification; reconfiguration
// kinds carry the proposed/agreed view. Payload bytes for writes are elided
// (length marker 0): replay never reads after-values.
void encode_body(net::codec::Writer& w, const WalRecord& rec) {
  w.u8(static_cast<std::uint8_t>(rec.kind));
  w.u32(rec.txn.coord);
  w.varint(rec.txn.seq);
  w.u8(rec.flag ? 1 : 0);
  w.varint(rec.epoch);
  switch (rec.kind) {
    case WalRecord::Kind::kDeliver:
    case WalRecord::Kind::kVote:
    case WalRecord::Kind::kDecision: {
      const auto* t = static_cast<const core::TxnRecord*>(rec.payload.get());
      w.u8(t ? 1 : 0);
      if (t) net::codec::encode_txn(w, *t, /*payload_bytes_per_write=*/0);
      break;
    }
    case WalRecord::Kind::kReconfigPrepare:
    case WalRecord::Kind::kReconfigCommit:
    case WalRecord::Kind::kReconfigAbort: {
      const auto* v =
          static_cast<const core::MembershipView*>(rec.payload.get());
      w.u8(v ? 1 : 0);
      if (v) {
        w.varint(v->epoch);
        w.varint(v->members.size());
        for (SiteId s : v->members) w.u32(s);
      }
      break;
    }
  }
}

std::optional<WalRecord> decode_body(net::codec::Reader& r) {
  const auto kind = r.u8();
  const auto coord = r.u32();
  const auto seq = r.varint();
  const auto flag = r.u8();
  const auto epoch = r.varint();
  if (!kind || !coord || !seq || !flag || !epoch) return std::nullopt;
  if (*kind > static_cast<std::uint8_t>(WalRecord::Kind::kReconfigAbort))
    return std::nullopt;
  WalRecord rec;
  rec.kind = static_cast<WalRecord::Kind>(*kind);
  rec.txn = TxnId{*coord, *seq};
  rec.flag = *flag != 0;
  rec.epoch = static_cast<EpochId>(*epoch);
  const auto has_payload = r.u8();
  if (!has_payload) return std::nullopt;
  if (*has_payload) {
    switch (rec.kind) {
      case WalRecord::Kind::kDeliver:
      case WalRecord::Kind::kVote:
      case WalRecord::Kind::kDecision: {
        auto t = net::codec::decode_txn(r);
        if (!t) return std::nullopt;
        rec.payload = std::make_shared<const core::TxnRecord>(*std::move(t));
        break;
      }
      case WalRecord::Kind::kReconfigPrepare:
      case WalRecord::Kind::kReconfigCommit:
      case WalRecord::Kind::kReconfigAbort: {
        const auto ve = r.varint();
        const auto n = r.varint();
        if (!ve || !n) return std::nullopt;
        core::MembershipView v;
        v.epoch = static_cast<EpochId>(*ve);
        v.members.reserve(std::min<std::uint64_t>(*n, r.remaining()));
        for (std::uint64_t i = 0; i < *n; ++i) {
          const auto s = r.u32();
          if (!s) return std::nullopt;
          v.members.push_back(*s);
        }
        rec.payload = std::make_shared<const core::MembershipView>(std::move(v));
        break;
      }
    }
  }
  return rec;
}

}  // namespace

std::vector<std::uint8_t> serialize_records(
    const std::vector<WalRecord>& records) {
  net::codec::Writer out;
  for (const auto& rec : records) {
    net::codec::Writer body;
    encode_body(body, rec);
    out.varint(body.size());
    out.bytes(body.data().data(), body.size());
    out.u32(fnv1a32(body.data().data(), body.size()));
  }
  return out.data();
}

std::vector<WalRecord> deserialize_records(
    const std::vector<std::uint8_t>& bytes, bool* torn) {
  std::vector<WalRecord> out;
  if (torn) *torn = false;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // Length prefix: a torn write can leave a partial varint at the tail.
    std::uint64_t len = 0;
    int shift = 0;
    std::size_t p = pos;
    bool len_ok = false;
    while (p < bytes.size() && shift < 64) {
      const std::uint8_t b = bytes[p++];
      len |= std::uint64_t{b & 0x7f} << shift;
      shift += 7;
      if (!(b & 0x80)) {
        len_ok = true;
        break;
      }
    }
    if (!len_ok) break;  // trailing partial length prefix
    // Overflow-safe bounds check: a corrupted prefix can decode to a length
    // near 2^64, where `p + len + 4` would wrap around.
    const std::size_t avail = bytes.size() - p;
    if (avail < 4 || len > avail - 4) break;  // torn tail
    const std::uint8_t* body = bytes.data() + p;
    const std::uint32_t want = fnv1a32(body, static_cast<std::size_t>(len));
    const std::size_t cpos = p + static_cast<std::size_t>(len);
    const std::uint32_t got = std::uint32_t{bytes[cpos]} |
                              std::uint32_t{bytes[cpos + 1]} << 8 |
                              std::uint32_t{bytes[cpos + 2]} << 16 |
                              std::uint32_t{bytes[cpos + 3]} << 24;
    if (want != got) break;  // damaged record: stop at the last good one
    std::vector<std::uint8_t> body_buf(body, body + len);
    net::codec::Reader r(body_buf);
    auto rec = decode_body(r);
    if (!rec) break;
    out.push_back(*std::move(rec));
    pos = cpos + 4;
  }
  if (torn && pos != bytes.size()) *torn = true;
  return out;
}

void WriteAheadLog::append(std::uint64_t bytes, std::optional<WalRecord> rec,
                           std::function<void()> done) {
  ++appends_;
  bytes_ += bytes;
  pending_.push_back(Record{bytes, std::move(rec), std::move(done)});
  if (!sync_in_flight_) start_sync();
}

void WriteAheadLog::start_sync() {
  sync_in_flight_ = true;
  ++syncs_;
  // This sync covers the batch present right now (bounded by max_batch);
  // later appends wait for the next one.
  const auto batch =
      std::min<std::size_t>(pending_.size(),
                            static_cast<std::size_t>(cfg_.max_batch));
  std::uint64_t batch_bytes = 0;
  for (std::size_t i = 0; i < batch; ++i) batch_bytes += pending_[i].bytes;
  const auto device_time =
      cfg_.sync_latency +
      static_cast<SimDuration>(cfg_.per_byte_ns * double(batch_bytes));
  sim_.after(device_time, [this, batch, e = epoch_] {
    if (e != epoch_) return;  // the crash took this sync with it
    std::vector<std::function<void()>> done;
    done.reserve(batch);
    for (std::size_t i = 0; i < batch && !pending_.empty(); ++i) {
      if (pending_.front().rec) stable_.push_back(*pending_.front().rec);
      done.push_back(std::move(pending_.front().done));
      pending_.pop_front();
    }
    sync_in_flight_ = false;
    if (!pending_.empty()) start_sync();
    for (auto& cb : done) cb();
  });
}

void WriteAheadLog::compact() {
  if (snapshot_pos_ == 0) return;
  stable_.erase(stable_.begin(),
                stable_.begin() + static_cast<std::ptrdiff_t>(snapshot_pos_));
  snapshot_pos_ = 0;
  ++compactions_;
}

std::vector<std::uint8_t> WriteAheadLog::serialize_tail() const {
  std::vector<WalRecord> tail(stable_.begin() +
                                  static_cast<std::ptrdiff_t>(snapshot_pos_),
                              stable_.end());
  return serialize_records(tail);
}

void WriteAheadLog::on_crash() {
  // Records whose fsync had not completed are lost — their state changes
  // were never made and their completion callbacks never run. That is the
  // durability contract recovery can rely on: stable() is exactly what a
  // real log would read back.
  ++epoch_;
  pending_.clear();
  sync_in_flight_ = false;
}

}  // namespace gdur::store

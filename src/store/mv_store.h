// Multi-version in-memory store — one per replica.
//
// Each object maps to a chain of committed versions, newest last. Versions
// record who wrote them, the per-partition commit index assigned at this
// replica, the (replica-local) commit instant, and the mechanism-specific
// Stamp. Chains are pruned to a bounded depth, standing in for the garbage
// collection the paper runs off the critical path via post_commit events.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "versioning/stamp.h"

namespace gdur::store {

struct Version {
  TxnId writer;
  std::uint64_t pidx = 0;        // commit index within the partition, local
  SimTime commit_time = 0;       // when this replica applied it
  versioning::Stamp stamp;
};

class ObjectChain {
 public:
  [[nodiscard]] bool empty() const { return versions_.empty(); }
  [[nodiscard]] std::size_t size() const { return versions_.size(); }

  /// Versions oldest-first; the canonical initial version (writer invalid,
  /// pidx 0) is implicit and handled by the callers' "version 0" convention.
  [[nodiscard]] const Version& at(std::size_t i) const { return versions_[i]; }
  [[nodiscard]] const Version& latest() const { return versions_.back(); }

  void install(Version v) {
    versions_.push_back(std::move(v));
    if (versions_.size() > kMaxDepth)
      versions_.erase(versions_.begin(),
                      versions_.begin() + (versions_.size() - kKeepDepth));
  }

  static constexpr std::size_t kMaxDepth = 32;
  static constexpr std::size_t kKeepDepth = 24;

 private:
  std::vector<Version> versions_;
};

class MVStore {
 public:
  /// Chain for `o`, or nullptr if no committed version exists here yet.
  [[nodiscard]] const ObjectChain* chain(ObjectId o) const {
    auto it = chains_.find(o);
    return it == chains_.end() ? nullptr : &it->second;
  }

  void install(ObjectId o, Version v) { chains_[o].install(std::move(v)); }

  /// Number of objects with at least one committed version.
  [[nodiscard]] std::size_t populated() const { return chains_.size(); }

 private:
  std::unordered_map<ObjectId, ObjectChain> chains_;
};

}  // namespace gdur::store

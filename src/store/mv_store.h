// Multi-version in-memory store — one per replica.
//
// Each object maps to a chain of committed versions, newest last. Versions
// record who wrote them, the per-partition commit index assigned at this
// replica, the (replica-local) commit instant, and the mechanism-specific
// Stamp. Chains are pruned to a bounded depth, standing in for the garbage
// collection the paper runs off the critical path via post_commit events.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "versioning/stamp.h"

namespace gdur::store {

struct Version {
  TxnId writer;
  std::uint64_t pidx = 0;        // commit index within the partition, local
  SimTime commit_time = 0;       // when this replica applied it
  versioning::Stamp stamp;
};

class ObjectChain {
 public:
  /// What pruning dropped off the front of the chain. Certification tests
  /// that scan the whole chain (S-DUR) cannot inspect pruned versions
  /// individually, so the summary retains enough to treat the pruned prefix
  /// conservatively: how many versions are gone and the identity of the
  /// newest one (the last version whose snapshot-visibility the prefix can
  /// still be tested against). Without it, a pruned snapshot-invisible
  /// version silently disappears from certification and the verdict flips
  /// to commit — correctness must not depend on a GC constant.
  struct PrunedSummary {
    std::size_t count = 0;  // versions dropped so far
    versioning::Stamp newest_stamp;
    std::uint64_t newest_pidx = 0;
    SimTime newest_commit_time = 0;
  };

  [[nodiscard]] bool empty() const { return versions_.empty(); }
  [[nodiscard]] std::size_t size() const { return versions_.size(); }

  /// Versions oldest-first; the canonical initial version (writer invalid,
  /// pidx 0) is implicit and handled by the callers' "version 0" convention.
  [[nodiscard]] const Version& at(std::size_t i) const { return versions_[i]; }
  [[nodiscard]] const Version& latest() const { return versions_.back(); }
  [[nodiscard]] const PrunedSummary& pruned() const { return pruned_; }

  void install(Version v) {
    versions_.push_back(std::move(v));
    if (versions_.size() > kMaxDepth) {
      const std::size_t drop = versions_.size() - kKeepDepth;
      const Version& newest_dropped = versions_[drop - 1];
      pruned_.count += drop;
      pruned_.newest_stamp = newest_dropped.stamp;
      pruned_.newest_pidx = newest_dropped.pidx;
      pruned_.newest_commit_time = newest_dropped.commit_time;
      versions_.erase(versions_.begin(),
                      versions_.begin() + static_cast<long>(drop));
    }
  }

  static constexpr std::size_t kMaxDepth = 32;
  static constexpr std::size_t kKeepDepth = 24;

 private:
  std::vector<Version> versions_;
  PrunedSummary pruned_;
};

class MVStore {
 public:
  /// Chain for `o`, or nullptr if no committed version exists here yet.
  [[nodiscard]] const ObjectChain* chain(ObjectId o) const {
    auto it = chains_.find(o);
    return it == chains_.end() ? nullptr : &it->second;
  }

  void install(ObjectId o, Version v) { chains_[o].install(std::move(v)); }

  /// Number of objects with at least one committed version.
  [[nodiscard]] std::size_t populated() const { return chains_.size(); }

  // --- state transfer (online reconfiguration, DESIGN.md §12) ---------------

  /// Ids of all populated objects, ascending. Snapshot donors iterate this
  /// so a transfer is deterministic regardless of hash-map order.
  [[nodiscard]] std::vector<ObjectId> object_ids_sorted() const {
    std::vector<ObjectId> ids;
    ids.reserve(chains_.size());
    for (const auto& [o, c] : chains_) ids.push_back(o);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Installs a whole chain received in a snapshot, replacing any local one.
  /// Used by a joining site; bypasses install-observer bookkeeping on
  /// purpose — snapshot state predates the joiner's participation.
  void adopt_chain(ObjectId o, ObjectChain chain) {
    chains_[o] = std::move(chain);
  }

 private:
  std::unordered_map<ObjectId, ObjectChain> chains_;
};

}  // namespace gdur::store

// Write-ahead log with group commit — the data-persistence layer of §7.
//
// The paper's middleware can run on top of BerkeleyDB or purely in memory
// (its experiments use the latter "to minimize noise"). This WAL models the
// durable configuration: a state change is stable once an fsync covering
// its record completes. Appends arriving while an fsync is in flight are
// batched into the next one (group commit), so the log sustains high commit
// rates at the price of one device latency per batch.
//
// §5.3's requirement that 2PC logs every state change in the crash-recovery
// model is wired through core::Replica when ClusterConfig.durable is set;
// bench_ablation_durability measures the cost.
// Under fault injection (sim/fault) the WAL is also the recovery substrate:
// state changes are appended as typed records, a crash discards the records
// still waiting for their fsync (exactly the durability contract of a real
// log), and core::Replica::on_recover replays the stable ones to rebuild
// the prepared-transaction state the crash wiped out.
//
// The log additionally supports snapshot marks and compaction (the stable
// prefix up to a mark is captured elsewhere — a store snapshot — and can be
// dropped), and a real byte format: length-prefixed, checksummed records
// that survive torn writes. Both exist for online reconfiguration: a
// joining site receives a store snapshot plus the serialized WAL tail, and
// the decoder tolerates a tail truncated mid-record or ending in a
// partially-written length prefix (it replays every complete record and
// stops at the first damaged one, like any production log replayer).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace gdur::store {

/// One durable state change of the termination protocol (§5.3) or of the
/// reconfiguration protocol (DESIGN.md §12). `payload` is the immutable
/// record for replay (a core::TxnRecord for termination kinds, a
/// core::MembershipView for reconfiguration kinds); the log layer does not
/// inspect it.
struct WalRecord {
  enum class Kind : std::uint8_t {
    kDeliver,          // termination message entered the queue Q
    kVote,             // certification vote cast (flag = the vote)
    kDecision,         // commitment outcome learned (flag = commit)
    kReconfigPrepare,  // membership change proposed (txn.coord = reconfig
                       // coordinator, epoch = the epoch being created)
    kReconfigCommit,   // membership change agreed / activated here
    kReconfigAbort,    // membership change abandoned
  };
  Kind kind = Kind::kDeliver;
  TxnId txn;
  bool flag = false;
  /// Configuration epoch the record belongs to (reconfiguration kinds: the
  /// epoch being created; termination kinds: the transaction's epoch).
  EpochId epoch = 0;
  std::shared_ptr<const void> payload;
};

/// Encodes records into the on-disk byte format: per record a varint body
/// length, the body, and a 32-bit FNV-1a checksum of the body.
[[nodiscard]] std::vector<std::uint8_t> serialize_records(
    const std::vector<WalRecord>& records);

/// Decodes as many complete, checksummed records as `bytes` holds. Torn
/// tails — a record truncated mid-body, a trailing partially-written length
/// prefix, or a checksum mismatch — end the replay at the last good record
/// instead of failing it; `torn` (optional) reports whether trailing bytes
/// were discarded.
[[nodiscard]] std::vector<WalRecord> deserialize_records(
    const std::vector<std::uint8_t>& bytes, bool* torn = nullptr);

struct WalConfig {
  /// Latency of one stable write (fsync) to the log device.
  SimDuration sync_latency = milliseconds(2);
  /// Additional device time per logged byte.
  double per_byte_ns = 2.0;
  /// Maximum records per group-commit batch.
  int max_batch = 64;
};

class WriteAheadLog {
 public:
  WriteAheadLog(sim::Simulator& simulator, WalConfig config = {})
      : sim_(simulator), cfg_(config) {}

  /// Durably appends a record of `bytes`; `done` runs once the record is on
  /// stable storage. Records become stable in append order.
  void append(std::uint64_t bytes, std::function<void()> done) {
    append(bytes, std::optional<WalRecord>{}, std::move(done));
  }

  /// Like append(), but also retains `rec` for crash recovery once it is
  /// stable (see stable()).
  void append(std::uint64_t bytes, std::optional<WalRecord> rec,
              std::function<void()> done);

  /// Typed records that reached stable storage, in log order. This is what
  /// survives a crash and what recovery replays.
  [[nodiscard]] const std::vector<WalRecord>& stable() const { return stable_; }

  /// Marks a snapshot point: the stable prefix up to here is captured by a
  /// store snapshot, so compact() may drop it. Recovery after compaction
  /// replays only the tail — the store carries the prefix.
  void mark_snapshot() {
    snapshot_pos_ = stable_.size();
    ++snapshots_;
  }

  /// Drops stable records before the last snapshot mark (log compaction).
  void compact();

  /// Serialized bytes of the stable tail (records at or after the last
  /// snapshot mark) — what a state transfer ships alongside the snapshot.
  [[nodiscard]] std::vector<std::uint8_t> serialize_tail() const;

  /// Crash with state loss: records still awaiting their fsync are gone and
  /// their completion callbacks never run; the in-flight sync is abandoned.
  void on_crash();

  [[nodiscard]] std::uint64_t appends() const { return appends_; }
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }
  [[nodiscard]] std::uint64_t bytes_logged() const { return bytes_; }
  [[nodiscard]] std::uint64_t snapshots() const { return snapshots_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  /// Records waiting for a sync (diagnostics).
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  void start_sync();

  sim::Simulator& sim_;
  WalConfig cfg_;
  struct Record {
    std::uint64_t bytes;
    std::optional<WalRecord> rec;
    std::function<void()> done;
  };
  std::deque<Record> pending_;
  std::vector<WalRecord> stable_;
  std::size_t snapshot_pos_ = 0;  // index of the first post-snapshot record
  bool sync_in_flight_ = false;
  std::uint64_t epoch_ = 0;  // bumped on crash; orphans the in-flight sync
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace gdur::store

// ProtocolSpec — the plugin table of realization points (§3-§6).
//
// A DUR protocol is assembled by filling this struct: pick a versioning
// mechanism, a choose() flavor, an atomic-commitment algorithm and its
// xcast primitive, the certification scopes, and the commute/certify
// predicates. The files in src/protocols/ mirror the paper's Algorithms
// 5-10 nearly line for line.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/obj_set.h"
#include "common/sim_time.h"
#include "core/shard.h"
#include "core/transaction.h"
#include "store/partitioner.h"
#include "versioning/stamp.h"

namespace gdur::core {

class Replica;
class Cluster;

/// choose(): latest committed version vs. consistent-snapshot version (§4.2).
enum class ChooseKind { kLast, kCons };

/// Atomic commitment algorithm (variable AC of Algorithm 2). Paxos Commit
/// is the third realization the paper lists in §5: every participant's vote
/// runs through a Paxos instance whose acceptors are the replicas, removing
/// the 2PC coordinator as a single point of failure at the price of one
/// extra message delay and Ω(r·n) messages.
enum class AcKind { kGroupComm, kTwoPhaseCommit, kPaxosCommit };

/// xcast realization for group-communication commitment (§5.1).
enum class XcastKind {
  kAtomicBroadcast,    // AB-Cast: total order, delivered at every site
  kAtomicMulticast,    // AM-Cast: genuine, total order per destination set
  kPairwiseMulticast,  // AMpw-Cast: pairwise order (S-DUR)
};

/// certifying_obj() for update transactions (§5). Read-only transactions
/// yield the empty set when `wait_free_queries` holds.
enum class CertScope { kNone, kWriteSet, kReadWriteSet, kAllObjects };

/// vote_snd_obj / vote_recv_obj realizations (§5.1).
enum class VoteScope {
  kCertifying,    // same objects as certifying_obj (the paper's default)
  kWriteSet,      // ws(T)
  kLocalObjects,  // Serrano: certify locally, skip the voting phase
};

/// Context handed to a certify() plug-in. The test runs at one replica and
/// only inspects objects that replica hosts.
///
/// Under intra-replica sharding (DESIGN.md §14) the same predicate is also
/// evaluated per shard: `shard` then names the keyspace slice, and the
/// plug-in must skip objects `owns()` rejects, yielding a *sub-vote* over
/// that slice. Every certifier in core/certifiers.cpp is a per-object
/// conjunction, so the AND of the sub-votes over a transaction's touched
/// shards equals the unsharded verdict exactly (the shardability argument;
/// specs with a non-conjunctive custom certify() clear
/// ProtocolSpec::certify_shardable). `shard < 0` (the default) means the
/// unsharded full test: owns() accepts everything.
struct CertContext {
  const Replica& replica;
  const TxnRecord& txn;
  SimTime now;
  int shard = -1;  // < 0: full certification, no shard restriction
  int shards = 1;
  /// Does this evaluation inspect object `o`? (Shard-restricted sub-votes
  /// only look at their own keyspace slice.)
  [[nodiscard]] bool owns(ObjectId o) const {
    return shard < 0 || shard_of(o, shards) == shard;
  }
};

struct ProtocolSpec {
  std::string name;

  // Execution phase.
  versioning::VersioningKind theta = versioning::VersioningKind::kTS;
  ChooseKind choose = ChooseKind::kCons;
  /// Ship versioning metadata on the wire even when choose() ignores it
  /// (GMU* / GMU** keep the marshaling cost of the original protocol).
  bool send_metadata = true;

  // Termination phase.
  AcKind ac = AcKind::kTwoPhaseCommit;
  XcastKind xcast = XcastKind::kAtomicMulticast;
  bool ft_multicast = false;  // 6-delay disaster-tolerant AM-Cast (§5.3)
  bool wait_free_queries = true;
  CertScope certifying = CertScope::kWriteSet;
  VoteScope vote_snd = VoteScope::kCertifying;
  VoteScope vote_recv = VoteScope::kWriteSet;
  /// Apply commits in delivery order (mandatory for SER and above, §5.1).
  bool wait_head_of_queue = true;
  /// Maintain the latest version number of every object at every replica
  /// (Serrano's design, enabling local decisions).
  bool track_all_objects = false;

  /// Track, per object, the recently committed update transactions that
  /// *read* it (S-DUR certifies writes against concurrent committed reads).
  bool track_committed_readers = false;

  /// commute(Ti, Tj): may the certifications of Ti and Tj proceed in either
  /// order? Drives both the GC convoy behavior and 2PC preemptive aborts.
  std::function<bool(const TxnRecord&, const TxnRecord&)> commute;

  /// commute() is *footprint-local*: transactions whose footprints (rs ∪ ws)
  /// are disjoint always commute. Lets the replica answer commute scans from
  /// its per-object ConflictIndex in O(footprint) instead of walking the
  /// whole termination queue; every predicate below satisfies it. A custom
  /// spec whose commute() can order footprint-disjoint transactions must
  /// clear this to fall back to the pairwise queue scan.
  bool commute_footprint_local = true;

  /// certify(T) at one replica; see core/certifiers.h for the library.
  std::function<bool(const CertContext&)> certify;

  /// The certification test is trivial (always passes): its CPU cost is not
  /// charged. Used by RC and the GMU** ablation (§8.3).
  bool trivial_certify = false;

  /// certify() is a per-object conjunction over the transaction's
  /// footprint, so shard-restricted sub-votes (CertContext::shard) AND
  /// together to exactly the full verdict. Every certifier in
  /// core/certifiers.cpp qualifies. A custom spec whose certify() couples
  /// objects across shards (e.g. counts conflicts) must clear this; the
  /// replica then evaluates one full certification regardless of
  /// shards_per_site (sharding keeps its lane parallelism for scheduling,
  /// but the verdict comes from the unsharded test).
  bool certify_shardable = true;

  /// Optional override of certifying_obj() (P-Store-LA commits single-site
  /// queries locally). Returns nullopt to fall back to `certifying`.
  std::function<std::optional<ObjSet>(const TxnRecord&,
                                      const store::Partitioner&)>
      certifying_override;

  /// Ran at the coordinator right after a transaction commits (off the
  /// critical path): Walter / S-DUR background propagation.
  std::function<void(Cluster&, const TxnRecord&)> post_commit;
  std::function<void(Cluster&, const TxnRecord&)> post_abort;
};

/// The certifying object set, which may be "all objects" (Serrano).
struct CertifyingSet {
  bool all = false;
  ObjSet objs;
  [[nodiscard]] bool empty() const { return !all && objs.empty(); }
};

/// Evaluates certifying_obj(T) per the spec (including wait-free queries
/// and the override hook).
CertifyingSet certifying_objects(const ProtocolSpec& spec, const TxnRecord& t,
                                 const store::Partitioner& part);

/// Objects for a vote scope (never called with kLocalObjects).
ObjSet vote_objects(VoteScope scope, const CertifyingSet& certifying,
                    const TxnRecord& t);

// Commute predicates used by the paper's protocols (§6).
bool commute_rw_disjoint(const TxnRecord& a, const TxnRecord& b);  // P-Store, S-DUR, GMU
bool commute_ww_disjoint(const TxnRecord& a, const TxnRecord& b);  // Serrano, Walter, Jessy
bool commute_always(const TxnRecord& a, const TxnRecord& b);       // RC

}  // namespace gdur::core

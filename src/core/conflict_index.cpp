#include "core/conflict_index.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace gdur::core {

namespace {
std::optional<bool> g_verify_override;
}  // namespace

bool verify_cert_enabled() {
  if (g_verify_override.has_value()) return *g_verify_override;
  static const bool from_env = [] {
    const char* e = std::getenv("GDUR_VERIFY_CERT");
    return e != nullptr && *e != '\0' && *e != '0';
  }();
  return from_env;
}

void set_verify_cert_for_testing(std::optional<bool> on) {
  g_verify_override = on;
}

std::uint64_t ConflictIndex::add(TxnPtr t) {
  assert(t != nullptr);
  const TxnId id = t->id;
  auto [it, inserted] = nodes_.try_emplace(id);
  assert(inserted && "transaction already indexed");
  if (!inserted) return it->second.pos;
  Node& n = it->second;
  n.txn = std::move(t);
  n.pos = ++next_pos_;
  for_each_footprint(*n.txn, [&](ObjectId o) { buckets_[o].push_back(&n); });
  return n.pos;
}

void ConflictIndex::remove(const TxnId& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  const Node* n = &it->second;
  for_each_footprint(*n->txn, [&](ObjectId o) {
    auto b = buckets_.find(o);
    if (b == buckets_.end()) return;
    std::erase(b->second, n);  // order-preserving: buckets stay queue-sorted
    if (b->second.empty()) buckets_.erase(b);
  });
  nodes_.erase(it);
}

void ConflictIndex::clear() {
  nodes_.clear();
  buckets_.clear();
  // next_pos_ keeps growing across crashes: positions stay unique and the
  // queue rebuilt by WAL replay is re-indexed in replay order.
}

void RecencyIndex::note_commit(const TxnRecord& t, SimTime now) {
  recent_.push_back(
      CommittedInfo{.id = t.id, .rs = t.rs, .ws = t.ws, .commit_time = now});
  while (!recent_.empty() && recent_.front().commit_time < now - window_)
    recent_.pop_front();
}

void RecencyIndex::note_reader(ObjectId o, const ReaderInfo& r) {
  auto& readers = readers_[o];
  readers.push_back(r);
  if (readers.size() > max_readers_)
    readers.erase(readers.begin(),
                  readers.end() - static_cast<long>(max_readers_));
}

}  // namespace gdur::core

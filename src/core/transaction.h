// Transactions as seen by the G-DUR engine.
#pragma once

#include <memory>
#include <vector>

#include "common/obj_set.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "versioning/stamp.h"

namespace gdur::core {

/// One read performed by a transaction: which version of which object.
/// The implicit initial version has an invalid writer and pidx 0.
struct ReadEntry {
  ObjectId obj = 0;
  PartitionId part = 0;
  TxnId writer;             // transaction that wrote the version read
  std::uint64_t pidx = 0;   // partition commit index of that version
};

/// The paper's four transaction states (§3).
enum class TxnPhase { kExecuting, kSubmitted, kCommitted, kAborted };

/// Everything both the coordinator and the termination participants need to
/// know about a transaction. Shipped (by shared pointer, with analytic wire
/// sizes) inside termination messages; immutable once submitted.
struct TxnRecord {
  TxnId id;
  ObjSet rs;                       // objects read
  ObjSet ws;                       // objects written (after-values travel
                                   // with the termination message)
  std::vector<ReadEntry> reads;    // versions read, for certification
  versioning::TxnSnapshot snap;    // snapshot state built during execution
  versioning::Stamp stamp;         // version number minted at submit
  /// Configuration epoch the coordinator ran in at submit time. Every
  /// quorum computation for this transaction (vote destinations, 2PC vote
  /// counts, Paxos majorities) is evaluated against the membership view of
  /// this epoch, and votes from sites outside that view are rejected.
  EpochId epoch = 0;
  SimTime begin_time = 0;
  SimTime submit_time = 0;

  [[nodiscard]] bool read_only() const { return ws.empty(); }

  /// Version of `o` this transaction read, or nullptr if it did not read it.
  [[nodiscard]] const ReadEntry* read_of(ObjectId o) const {
    for (const auto& r : reads)
      if (r.obj == o) return &r;
    return nullptr;
  }
};

using TxnPtr = std::shared_ptr<const TxnRecord>;
using MutTxnPtr = std::shared_ptr<TxnRecord>;

}  // namespace gdur::core

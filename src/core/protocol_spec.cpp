#include "core/protocol_spec.h"

namespace gdur::core {

CertifyingSet certifying_objects(const ProtocolSpec& spec, const TxnRecord& t,
                                 const store::Partitioner& part) {
  if (spec.certifying_override) {
    if (auto objs = spec.certifying_override(t, part))
      return CertifyingSet{.all = false, .objs = *std::move(objs)};
  }
  if (t.read_only() && spec.wait_free_queries) return {};
  switch (spec.certifying) {
    case CertScope::kNone:
      return {};
    case CertScope::kWriteSet:
      return {.all = false, .objs = t.ws};
    case CertScope::kReadWriteSet:
      return {.all = false, .objs = t.rs.unioned(t.ws)};
    case CertScope::kAllObjects:
      return {.all = true, .objs = {}};
  }
  return {};
}

ObjSet vote_objects(VoteScope scope, const CertifyingSet& certifying,
                    const TxnRecord& t) {
  switch (scope) {
    case VoteScope::kCertifying:
      return certifying.objs;
    case VoteScope::kWriteSet:
      return t.ws;
    case VoteScope::kLocalObjects:
      return {};
  }
  return {};
}

bool commute_rw_disjoint(const TxnRecord& a, const TxnRecord& b) {
  return a.rs.disjoint(b.ws) && b.rs.disjoint(a.ws);
}

bool commute_ww_disjoint(const TxnRecord& a, const TxnRecord& b) {
  return a.ws.disjoint(b.ws);
}

bool commute_always(const TxnRecord&, const TxnRecord&) { return true; }

}  // namespace gdur::core

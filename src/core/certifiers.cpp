#include "core/certifiers.h"

#include "core/cluster.h"
#include "core/replica.h"

namespace gdur::core::certifiers {

bool always(const CertContext&) { return true; }

bool reads_latest(const CertContext& ctx) {
  const auto& part = ctx.replica.cluster().partitioner();
  for (const ReadEntry& r : ctx.txn.reads) {
    if (!part.is_local(ctx.replica.site(), r.obj)) continue;
    if (!ctx.owns(r.obj)) continue;  // shard sub-vote: not my slice
    if (ctx.replica.latest_pidx(r.obj) != r.pidx) return false;
  }
  return true;
}

bool ww_visible(const CertContext& ctx) {
  auto& cl = ctx.replica.cluster();
  const auto& part = cl.partitioner();
  for (ObjectId o : ctx.txn.ws) {
    if (!part.is_local(ctx.replica.site(), o)) continue;
    if (!ctx.owns(o)) continue;  // shard sub-vote: not my slice
    const auto* chain = ctx.replica.db().chain(o);
    if (chain == nullptr || chain->empty()) continue;
    if (!cl.oracle().visible(chain->latest(), part.partition_of(o),
                             ctx.txn.snap))
      return false;
  }
  return true;
}

bool ww_nmsi(const CertContext& ctx) {
  auto& cl = ctx.replica.cluster();
  const auto& part = cl.partitioner();
  for (ObjectId o : ctx.txn.ws) {
    if (!part.is_local(ctx.replica.site(), o)) continue;
    if (!ctx.owns(o)) continue;  // shard sub-vote: not my slice
    const auto* chain = ctx.replica.db().chain(o);
    if (chain == nullptr || chain->empty()) continue;
    const auto& latest = chain->latest();
    if (latest.commit_time <= ctx.txn.begin_time) continue;  // not concurrent
    if (!cl.oracle().visible(latest, part.partition_of(o), ctx.txn.snap))
      return false;
  }
  return true;
}

bool ww_all_objects(const CertContext& ctx) {
  for (ObjectId o : ctx.txn.ws) {
    if (!ctx.owns(o)) continue;  // shard sub-vote: not my slice
    if (ctx.replica.latest_seq_of(o) > ctx.txn.snap.start_seq) return false;
  }
  return true;
}

bool sdur(const CertContext& ctx) {
  // S-DUR treats Tj as concurrent with Ti when Tj is not contained in Ti's
  // snapshot; a committed concurrent transaction must conflict with Ti
  // neither read-write nor write-read (Alg. 6 line 7).
  auto& cl = ctx.replica.cluster();
  const auto& part = cl.partitioner();
  const SiteId here = ctx.replica.site();

  // (1) rs(Ti) ∩ ws(Tj) = ∅: no committed version of an object Ti read may
  //     lie outside Ti's snapshot.
  for (const ReadEntry& r : ctx.txn.reads) {
    if (!part.is_local(here, r.obj)) continue;
    if (!ctx.owns(r.obj)) continue;  // shard sub-vote: not my slice
    const auto* chain = ctx.replica.db().chain(r.obj);
    if (chain == nullptr) continue;
    const PartitionId p = part.partition_of(r.obj);
    // Pruned prefix: the newest pruned version (retained by the chain's
    // PrunedSummary) stands in for everything GC dropped, so the verdict no
    // longer silently flips to commit past depth 32. If it lies outside
    // Ti's snapshot the prefix conflicted (itself, at least) — abort, as
    // the unpruned scan would have. If it is visible, so is every older
    // pruned version from the same origin (per-origin visibility is
    // monotone in seq); an older pruned version from an origin with no
    // newer version anywhere in the chain can still escape — the summary
    // trades that narrow interleaving for O(1) space per chain.
    const auto& pruned = chain->pruned();
    if (pruned.count > 0) {
      const store::Version newest_pruned{.writer = TxnId{},
                                         .pidx = pruned.newest_pidx,
                                         .commit_time =
                                             pruned.newest_commit_time,
                                         .stamp = pruned.newest_stamp};
      if (!cl.oracle().visible(newest_pruned, p, ctx.txn.snap)) return false;
    }
    for (std::size_t i = 0; i < chain->size(); ++i) {
      if (!cl.oracle().visible(chain->at(i), p, ctx.txn.snap)) return false;
    }
  }

  // (2) ws(Ti) ∩ rs(Tj) = ∅: no committed update transaction outside Ti's
  //     snapshot may have read an object Ti writes.
  for (ObjectId o : ctx.txn.ws) {
    if (!part.is_local(here, o)) continue;
    if (!ctx.owns(o)) continue;  // shard sub-vote: not my slice
    const auto* readers = ctx.replica.recent_readers(o);
    if (readers == nullptr) continue;
    for (const auto& rd : *readers) {
      if (rd.seq > ctx.txn.snap.vts[rd.origin]) return false;
    }
  }
  return true;
}

}  // namespace gdur::core::certifiers

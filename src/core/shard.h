// Intra-replica keyspace sharding (DESIGN.md §14).
//
// Parallel Deferred Update Replication (Pacheco, Sciascia, Pedone) splits
// each replica's keyspace into S intra-replica shards; every shard owns a
// slice of the conflict index and a certifier/applier lane, and transactions
// synchronize only where their footprints cross shards. These helpers define
// the one mapping everything else agrees on:
//
//   * shard_of(o, S)        — which shard owns object o (o mod S);
//   * touched_shards(t, S)  — the set of shards a transaction's footprint
//                             (rs ∪ ws) intersects;
//   * write_shards(t, S)    — the shards its write-set touches (apply lanes).
//
// ShardSet iterates in ascending shard id. That order IS the deterministic
// total order over shards: live shard locks are acquired in it (deadlock
// freedom), sub-votes are combined in it, and sim lanes are charged in it.
// Shard ids fit a 64-bit mask, which caps shards_per_site at 64 — far above
// any core count this middleware models; ClusterConfig clamps to the cap.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "core/transaction.h"

namespace gdur::core {

inline constexpr int kMaxShardsPerSite = 64;

/// The shard owning object `o` under an S-way split (always 0 when S <= 1).
[[nodiscard]] inline int shard_of(ObjectId o, int shards) {
  return shards <= 1 ? 0
                     : static_cast<int>(o % static_cast<ObjectId>(shards));
}

/// A set of intra-replica shard ids, iterated in ascending order.
class ShardSet {
 public:
  void insert(int s) { mask_ |= std::uint64_t{1} << s; }
  [[nodiscard]] bool contains(int s) const { return (mask_ >> s) & 1; }
  [[nodiscard]] bool empty() const { return mask_ == 0; }
  [[nodiscard]] int count() const { return __builtin_popcountll(mask_); }
  /// Lowest touched shard id — the home lane of a cross-shard transaction.
  [[nodiscard]] int first() const { return __builtin_ctzll(mask_); }
  [[nodiscard]] std::uint64_t mask() const { return mask_; }

  /// Visits each member in ascending shard id (the global lock order).
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint64_t m = mask_; m != 0; m &= m - 1)
      f(__builtin_ctzll(m));
  }

 private:
  std::uint64_t mask_ = 0;
};

/// Shards intersecting rs(t) ∪ ws(t). Never empty: a transaction with an
/// empty footprint (degenerate, but constructible) homes on shard 0.
[[nodiscard]] inline ShardSet touched_shards(const TxnRecord& t, int shards) {
  ShardSet s;
  if (shards <= 1) {
    s.insert(0);
    return s;
  }
  for (ObjectId o : t.rs) s.insert(shard_of(o, shards));
  for (ObjectId o : t.ws) s.insert(shard_of(o, shards));
  if (s.empty()) s.insert(0);
  return s;
}

/// Shards intersecting ws(t) — the lanes an apply occupies.
[[nodiscard]] inline ShardSet write_shards(const TxnRecord& t, int shards) {
  ShardSet s;
  if (shards <= 1) {
    s.insert(0);
    return s;
  }
  for (ObjectId o : t.ws) s.insert(shard_of(o, shards));
  if (s.empty()) s.insert(0);
  return s;
}

}  // namespace gdur::core

#include "core/replica.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "common/logging.h"
#include "core/cluster.h"
#include "net/wire.h"

namespace gdur::core {

Replica::Replica(Cluster& cluster, SiteId id) : cl_(cluster), id_(id) {
  if (auto* p = cl_.plane()) {
    oslot_ = &p->slot(id_);
    oring_ = &p->ring(id_);
    omon_ = &p->invariants();
  }
}

std::uint64_t Replica::latest_pidx(ObjectId x) const {
  const auto* chain = db_.chain(x);
  return (chain == nullptr || chain->empty()) ? 0 : chain->latest().pidx;
}

std::uint64_t Replica::latest_seq_of(ObjectId x) const {
  auto it = latest_seq_.find(x);
  return it == latest_seq_.end() ? 0 : it->second;
}

bool Replica::has_local_writes(const TxnRecord& t) const {
  const auto& part = cl_.partitioner();
  for (ObjectId o : t.ws)
    if (part.is_local(id_, o)) return true;
  return false;
}

SimDuration Replica::certify_cost(const TxnRecord& t) const {
  const auto& cost = cl_.cost();
  return cost.certify_base +
         cost.certify_per_obj * static_cast<SimDuration>(t.rs.size() + t.ws.size());
}

// ---------------------------------------------------------------------------
// Execution protocol (Algorithm 1).
// ---------------------------------------------------------------------------

void Replica::exec_begin(std::function<void(MutTxnPtr)> cb) {
  auto t = std::make_shared<TxnRecord>();
  t->id = TxnId{id_, ++txn_counter_};
  t->begin_time = cl_.now();
  cl_.oracle().begin_snapshot(id_, t->snap);
  cb(std::move(t));
}

void Replica::exec_read(const MutTxnPtr& t, ObjectId x,
                        std::function<void(bool)> cb) {
  // Service fencing: a site outside its active view no longer receives
  // installs, so serving reads from it would expose stale snapshots.
  if (cl_.reconfig_enabled() && !member_of(epoch_)) {
    cb(false);
    return;
  }
  // Line 10: a transaction observes its own buffered writes.
  if (t->ws.contains(x)) {
    cb(true);
    return;
  }
  const auto& cost = cl_.cost();
  const SimDuration snap_cost = cl_.spec().choose == ChooseKind::kCons
                                    ? cost.snapshot_maintain
                                    : SimDuration{0};
  const SiteId target = cl_.nearest_replica(id_, x);
  if (target == id_) {
    // Line 11: local read.
    cl_.run_local(
        id_, cost.read_local + cost.version_select + snap_cost,
        [this, t, x, cb = std::move(cb)] { local_read_attempt(t, x, 0, cb); });
    return;
  }
  // Line 13: asynchronous remote read (the snapshot travels with it).
  cl_.remote_read(id_, target, t, x, std::move(cb));
}

void Replica::local_read_attempt(const MutTxnPtr& t, ObjectId x, int attempt,
                                 std::function<void(bool)> cb) {
  const auto& part = cl_.partitioner();
  const auto* chain = db_.chain(x);
  int idx;
  if (cl_.spec().choose == ChooseKind::kLast) {
    idx = (chain == nullptr || chain->empty())
              ? versioning::kInitialVersion
              : static_cast<int>(chain->size()) - 1;
  } else {
    idx = cl_.oracle().choose(id_, chain, part.partition_of(x), t->snap);
  }
  if (idx == versioning::kNoCompatibleVersion) {
    if (attempt + 1 >= kMaxReadAttempts) {
      cb(false);
      return;
    }
    cl_.run_after(id_, kReadRetryDelay, [this, t, x, attempt, cb] {
      const auto& cost = cl_.cost();
      cl_.run_local(id_, cost.read_local + cost.version_select,
                    [this, t, x, attempt, cb] {
                      local_read_attempt(t, x, attempt + 1, cb);
                    });
    });
    return;
  }
  const store::Version* v =
      idx == versioning::kInitialVersion ? nullptr
                                         : &chain->at(static_cast<std::size_t>(idx));
  record_read(t, x, v);
  cb(true);
}

void Replica::record_read(const MutTxnPtr& t, ObjectId x,
                          const store::Version* v) {
  const PartitionId p = cl_.partitioner().partition_of(x);
  t->rs.insert(x);
  const ReadEntry entry{.obj = x,
                        .part = p,
                        .writer = v != nullptr ? v->writer : TxnId{},
                        .pidx = v != nullptr ? v->pidx : 0};
  // Idempotent per object: a re-read replaces the old entry (keeping the
  // latest observed version) instead of appending a duplicate. rs.insert
  // already dedups, and certifiers / read_of must see one entry per object
  // — a stale duplicate would be re-checked and read_of would answer with
  // whichever came first.
  auto it = std::find_if(t->reads.begin(), t->reads.end(),
                         [x](const ReadEntry& e) { return e.obj == x; });
  if (it != t->reads.end()) {
    *it = entry;
  } else {
    t->reads.push_back(entry);
  }
  cl_.oracle().note_read(v, p, t->snap);
}

void Replica::serve_remote_read(SiteId requester, const MutTxnPtr& t,
                                ObjectId x, ReadReplyFn reply) {
  const auto& cost = cl_.cost();
  const SimDuration snap_cost = cl_.spec().choose == ChooseKind::kCons
                                    ? cost.snapshot_maintain
                                    : SimDuration{0};
  cl_.run_local(id_, cost.read_local + cost.version_select + snap_cost,
                [this, requester, t, x, reply = std::move(reply)] {
                  remote_read_attempt(requester, t, x, 0, reply);
                });
}

void Replica::remote_read_attempt(SiteId requester, const MutTxnPtr& t,
                                  ObjectId x, int attempt, ReadReplyFn reply) {
  // Lines 26-30: choose a version against the requester's snapshot and
  // reply. The transaction record is updated at the coordinator, on reply
  // (the deployment backend routes `reply` back through record_read).
  const auto& part = cl_.partitioner();
  const auto* chain = db_.chain(x);
  int idx;
  if (cl_.spec().choose == ChooseKind::kLast) {
    idx = (chain == nullptr || chain->empty())
              ? versioning::kInitialVersion
              : static_cast<int>(chain->size()) - 1;
  } else {
    idx = cl_.oracle().choose(id_, chain, part.partition_of(x), t->snap);
  }
  if (idx == versioning::kNoCompatibleVersion &&
      attempt + 1 < kMaxReadAttempts) {
    cl_.run_after(id_, kReadRetryDelay, [this, requester, t, x, attempt,
                                         reply = std::move(reply)] {
      const auto& c = cl_.cost();
      cl_.run_local(id_, c.read_local + c.version_select,
                    [this, requester, t, x, attempt, reply] {
                      remote_read_attempt(requester, t, x, attempt + 1,
                                          reply);
                    });
    });
    return;
  }
  const bool ok = idx != versioning::kNoCompatibleVersion;
  std::optional<store::Version> v;
  if (ok && idx != versioning::kInitialVersion)
    v = chain->at(static_cast<std::size_t>(idx));
  reply(ok, std::move(v));
}

void Replica::exec_write(const MutTxnPtr& t, ObjectId x,
                         std::function<void()> cb) {
  // Lines 16-18: buffer the after-value in ws(T).
  t->ws.insert(x);
  cl_.run_local(id_, cl_.cost().client_op, std::move(cb));
}

void Replica::exec_commit(const MutTxnPtr& t, std::function<void(bool)> cb) {
  // Algorithm 2, submit(T).
  t->submit_time = cl_.now();
  if (cl_.reconfig_enabled()) {
    // Every quorum computation for this transaction is pinned to the view
    // of the epoch stamped here.
    t->epoch = epoch_;
    // Service fencing: a site outside its own active view (a joiner whose
    // epoch has not activated, a retiree past activation) must not submit,
    // and a draining retiree refuses new update transactions.
    if (!member_of(epoch_) || (draining_ && !t->read_only())) {
      cb(false);
      return;
    }
  }
  if (!t->read_only())
    t->stamp = cl_.oracle().submit_stamp(id_, ++coord_seq_, t->snap);

  const auto cs = certifying_objects(cl_.spec(), *t, cl_.partitioner());
  if (cs.empty()) {
    // Line 12: commit without synchronization (wait-free queries).
    assert(t->read_only());
    cb(true);
    return;
  }

  TxnPtr ct = t;
  commit_cbs_[t->id] = std::move(cb);
  auto& st = state_of(ct);
  (void)st;
  if (oslot_ != nullptr) {
    oslot_->record(obs::Counter::kTxnSubmitted);
    oring_->append("submit", cl_.now(), id_, t->id.coord, t->id.seq);
  }
  GDUR_TRACE("site %d submit txn %d.%llu rs=%zu ws=%zu", static_cast<int>(id_),
             static_cast<int>(t->id.coord),
             static_cast<unsigned long long>(t->id.seq), t->rs.size(),
             t->ws.size());
  if (auto* tr = cl_.trace())
    tr->txn_submitted(t->id, id_, t->submit_time, t->read_only());

  std::vector<SiteId> dests;
  if (cs.all) {
    if (cl_.reconfig_enabled()) {
      dests = cl_.view(t->epoch).members;
    } else {
      // gdur-lint: allow(membership/hardcoded-sites) fixed-membership branch; the reconfig path above iterates the view
      for (SiteId s = 0; s < static_cast<SiteId>(cl_.sites()); ++s)
        dests.push_back(s);
    }
  } else {
    dests = cl_.partitioner().replicas_of(cs.objs);
    if (cl_.reconfig_enabled())
      dests = cl_.view(t->epoch).filter(std::move(dests));
  }
  if (dests.empty()) {
    // Every replica of a certifying object left the view — impossible while
    // the coverage invariant (replication >= 2, one change at a time)
    // holds, but fail the submission instead of wedging.
    finish_coordinator(ct, false);
    return;
  }
  cl_.xcast_term(ct, std::move(dests));
  // Under faults a termination attempt can stall (lost votes, crashed
  // participants); the coordinator resolves in-doubt transactions by
  // timeout instead of blocking forever.
  if (cl_.fault_tolerance_on()) arm_term_timeout(ct, 0);
}

// ---------------------------------------------------------------------------
// Termination protocol (Algorithms 2-4).
// ---------------------------------------------------------------------------

Replica::TermState& Replica::state_of(const TxnPtr& t) {
  auto& st = term_[t->id];
  if (!st.txn) st.txn = t;
  return st;
}

void Replica::on_term_delivered(const TxnPtr& t) {
  if (cl_.reconfig_enabled()) {
    maybe_adopt_epoch(t->epoch);
    // A site outside the transaction's view must not certify or vote: its
    // participation was never counted in the quorum computed at submit, so
    // a vote from it could double-count, and a joiner would certify against
    // state it did not hold at the epoch. (A retiree IS still in the view
    // of older epochs and keeps certifying those until they drain.)
    if (!member_of(t->epoch)) return;
  }
  if (known_outcome(t->id) != nullptr) return;  // late redelivery
  auto& st = state_of(t);
  if (st.in_q || st.voted || st.decided) return;
  st.in_q = true;
  q_.push_back(t->id);
  obs_q_pushes_.fetch_add(1, std::memory_order_relaxed);
  st.q_pos = cidx_.add(t);
  if (oslot_ != nullptr) {
    oslot_->record(obs::Counter::kTermDelivered);
    oslot_->record_value(obs::Hist::kQueueDepth, q_.size());
    oring_->append("deliver", cl_.now(), id_, t->id.coord, t->id.seq);
  }
  GDUR_TRACE("site %d xdeliver txn %d.%llu |Q|=%zu", static_cast<int>(id_),
             static_cast<int>(t->id.coord),
             static_cast<unsigned long long>(t->id.seq), q_.size());
  if (auto* tr = cl_.trace())
    tr->term_delivered(t->id, id_, cl_.now());

  // Under fault injection the delivery itself is a recoverable state change
  // (it rebuilds Q on replay); logged fire-and-forget — the vote is the
  // record that synchronizes with stable storage.
  if (cl_.fault_injector() != nullptr) {
    if (oslot_ != nullptr && cl_.wal(id_) != nullptr)
      oslot_->record(obs::Counter::kWalAppends);
    if (auto* wal = cl_.wal(id_))
      wal->append(net::wire::control(),
                  store::WalRecord{store::WalRecord::Kind::kDeliver, t->id,
                                   false, t->epoch, t},
                  [] {});
  }

  if (cl_.spec().ac != AcKind::kGroupComm) {
    // Algorithm 4 lines 1-7 (also Paxos Commit): vote immediately; a
    // non-commuting transaction already in Q triggers a preemptive abort.
    cast_vote(t, queued_conflict(*t, st.q_pos, /*preceding_only=*/false));
  } else {
    gc_try_votes();
  }
}

bool Replica::queued_conflict_pairwise(const TxnRecord& t,
                                       bool preceding_only) const {
  const auto& spec = cl_.spec();
  for (const TxnId& other : q_) {
    if (other == t.id) {
      if (preceding_only) return false;  // only transactions delivered first
      continue;
    }
    const auto it = term_.find(other);
    if (it == term_.end()) continue;
    // The convoy test orders against *every* predecessor in Q, decided or
    // not; the preemptive test only fears transactions still in flight.
    if (!preceding_only && it->second.decided) continue;
    if (!spec.commute(t, *it->second.txn)) return true;
  }
  return false;
}

bool Replica::queued_conflict(const TxnRecord& t, std::uint64_t pos,
                              bool preceding_only) const {
  if (!cl_.spec().commute_footprint_local)
    return queued_conflict_pairwise(t, preceding_only);
  const auto test = [&](const ConflictIndex::Candidate& c) {
    if (c.pos == pos) return false;  // self
    if (preceding_only && c.pos > pos) return false;
    const auto it = term_.find(c.txn.id);
    if (it == term_.end()) return false;
    if (!preceding_only && it->second.decided) return false;
    return !cl_.spec().commute(t, c.txn);
  };
  const int shards = cl_.shards_per_site();
  bool conflict = false;
  if (shards <= 1) {
    conflict = cidx_.scan(t, test);
  } else {
    // Sharded data path: the index is queried slice by slice, in ascending
    // shard order, and the slice answers OR together. The union of the
    // touched slices' buckets is exactly the bucket set scan() walks, and
    // the commute test is a pure predicate, so the OR equals the unsharded
    // answer (revisits across slices change nothing).
    touched_shards(t, shards).for_each([&](int sh) {
      if (conflict) return;
      conflict = cidx_.scan_shard(t, sh, shards, test);
    });
  }
  if (verify_cert_enabled()) {
    const bool pairwise = queued_conflict_pairwise(t, preceding_only);
    if (pairwise != conflict) {
      std::fprintf(stderr,
                   "GDUR_VERIFY_CERT: site %d txn %d.%llu %s scan mismatch "
                   "(indexed=%d pairwise=%d, |Q|=%zu)\n",
                   static_cast<int>(id_), static_cast<int>(t.id.coord),
                   static_cast<unsigned long long>(t.id.seq),
                   preceding_only ? "convoy" : "preemptive",
                   static_cast<int>(conflict), static_cast<int>(pairwise),
                   q_.size());
      std::abort();
    }
  }
  return conflict;
}

void Replica::gc_try_votes() {
  if (cl_.spec().ac != AcKind::kGroupComm) return;
  // Algorithm 3 lines 1-3: T may be certified once it commutes with every
  // transaction preceding it in Q.
  for (const TxnId& id : q_) {
    const auto it = term_.find(id);
    if (it == term_.end()) continue;
    TermState& st = it->second;
    if (st.voted) continue;
    if (!queued_conflict(*st.txn, st.q_pos, /*preceding_only=*/true))
      cast_vote(st.txn, false);
  }
}

bool Replica::evaluate_certify(const TxnRecord& t) const {
  const auto& spec = cl_.spec();
  const int shards = cl_.shards_per_site();
  // One clock read per certification, taken before the sub-vote fan-out.
  // Reading cl_.now() inside the per-shard lambda (as this used to) is a
  // real clock syscall per touched shard under live::LiveCluster, and the
  // sub-votes would each see a *different* timestamp — a certify() that
  // consults ctx.now could then disagree with its own unsharded verdict.
  // gdur-analyze: allow(gdur-hotpath-reachability) the single sanctioned
  // clock read of the certification path; everything below is noclock.
  const SimTime now = cl_.now();
  if (shards <= 1 || !spec.certify_shardable)
    return spec.certify(CertContext{*this, t, now});
  // Sub-vote combination (DESIGN.md §14): one shard-restricted certify()
  // per touched keyspace slice, ANDed in ascending shard order. Every
  // shardable certify() is a per-object conjunction, so the combined
  // verdict equals the unsharded one exactly — the sharded data path never
  // changes a decision, only where the work runs.
  bool v = true;
  touched_shards(t, shards).for_each([&](int sh) {
    if (!v) return;
    v = spec.certify(CertContext{*this, t, now, sh, shards});
  });
  return v;
}

void Replica::cast_vote(const TxnPtr& t, bool preemptive_abort) {
  auto& st = state_of(t);
  st.voted = true;
  const bool cheap = preemptive_abort || cl_.spec().trivial_certify;
  const SimDuration service =
      cheap ? cl_.cost().queue_op : certify_cost(*t);
  // The verdict computation (pure, shard-thread-safe) and its consequences
  // (vote bookkeeping, WAL, announcement — site-thread state) are split
  // across the certification seam: the backend decides where and when the
  // compute runs (serial site CPU, sim shard lanes, live shard threads)
  // and always delivers the verdict back on this site's execution context.
  cl_.run_certify(
      id_, t, service,
      [this, t, preemptive_abort] {
        return !preemptive_abort && evaluate_certify(*t);
      },
      [this, t, service](bool v) {
        GDUR_TRACE("site %d certify txn %d.%llu vote=%d",
                   static_cast<int>(id_), static_cast<int>(t->id.coord),
                   static_cast<unsigned long long>(t->id.seq),
                   static_cast<int>(v));
        if (auto* tr = cl_.trace())
          tr->certified(t->id, id_, cl_.now(), service, v);
        if (oslot_ != nullptr) {
          oslot_->record(obs::Counter::kCertified);
          oslot_->record_value(obs::Hist::kCertifyUs,
                               static_cast<std::uint64_t>(service / 1000));
        }
        // Crash-recovery durability (§5.3): the vote is a state change of
        // the commitment protocol and must reach stable storage before it
        // is announced.
        if (auto* wal = cl_.wal(id_)) {
          if (oslot_ != nullptr) oslot_->record(obs::Counter::kWalAppends);
          std::optional<store::WalRecord> rec;
          if (cl_.fault_injector() != nullptr)
            rec = store::WalRecord{store::WalRecord::Kind::kVote, t->id, v,
                                   t->epoch, t};
          wal->append(net::wire::vote() + 32, std::move(rec),
                      [this, t, v] { announce_vote(t, v); });
          return;
        }
        announce_vote(t, v);
      });
}

void Replica::send_vote_msgs(const TxnPtr& t, bool v) {
  // Seeded equivocation (sim::Sabotage::kDoubleVote): the wire vote
  // contradicts the value announce_vote recorded — exactly the double-vote
  // the online invariant monitor must catch at every receiver.
  if (auto* fi = cl_.fault_injector();
      fi != nullptr && fi->consume_sabotage(sim::Sabotage::Kind::kDoubleVote,
                                            id_, cl_.now()))
    v = !v;
  if (oslot_ != nullptr) oslot_->record(obs::Counter::kVotesSent);
  const auto& spec = cl_.spec();
  if (spec.ac == AcKind::kTwoPhaseCommit) {
    cl_.send_vote(id_, t->id.coord, t, v);
    return;
  }
  if (spec.ac == AcKind::kPaxosCommit) {
    // Paxos Commit: the participant's vote is the value of its own Paxos
    // instance; propose it to every acceptor (phase 2a). The acceptor set —
    // and with it the majority — is the membership view of the
    // transaction's epoch.
    if (cl_.reconfig_enabled()) {
      for (SiteId a : cl_.view(t->epoch).members)
        cl_.send_paxos_2a(id_, a, t, id_, v);
    } else {
      // gdur-lint: allow(membership/hardcoded-sites) fixed-membership branch; the reconfig path above iterates the view
      for (SiteId a = 0; a < static_cast<SiteId>(cl_.sites()); ++a)
        cl_.send_paxos_2a(id_, a, t, id_, v);
    }
    return;
  }
  // Algorithm 3 lines 5-6: vote to replicas(vote_recv_obj) + coord.
  const auto cs = certifying_objects(spec, *t, cl_.partitioner());
  const ObjSet recv = vote_objects(spec.vote_recv, cs, *t);
  std::vector<SiteId> dests = cl_.partitioner().replicas_of(recv);
  if (cl_.reconfig_enabled())
    dests = cl_.view(t->epoch).filter(std::move(dests));
  if (std::find(dests.begin(), dests.end(), t->id.coord) == dests.end())
    dests.push_back(t->id.coord);
  for (SiteId d : dests) cl_.send_vote(id_, d, t, v);
}

void Replica::announce_vote(const TxnPtr& t, bool v) {
  auto& st0 = state_of(t);
  st0.my_vote = v;
  st0.announced = true;
  if (omon_ != nullptr)
    omon_->note_vote(id_, t->id, v, cl_.now());
  if (oring_ != nullptr)
    oring_->append(v ? "vote_true" : "vote_false", cl_.now(), id_,
                   t->id.coord, t->id.seq);
  const auto& spec = cl_.spec();
  if (spec.ac == AcKind::kGroupComm &&
      spec.vote_snd == VoteScope::kLocalObjects) {
    // Serrano: every replica certifies locally (deterministically, thanks
    // to total order + the replica-wide version index) and decides without
    // exchanging votes.
    decide(t, v);
    return;
  }
  send_vote_msgs(t, v);
  // A lost vote can leave the transaction in doubt everywhere; keep
  // re-announcing with backoff until an outcome is known.
  if (cl_.fault_tolerance_on()) schedule_vote_retry(t, 0);
  if (spec.ac == AcKind::kGroupComm && !has_local_writes(*t)) {
    // A participant with nothing to apply does not need the outcome:
    // ordering was enforced before the vote, so it leaves Q now.
    auto& st2 = state_of(t);
    if (st2.in_q && !st2.decided) remove_from_q(t->id);
    // Retention: such a participant often never hears the outcome (votes
    // flow to the write-set replicas), so decide() — the only other site
    // arming the term-state GC — may never run here and the entry would
    // pin its TxnRecord for the rest of the run. Arm the GC now. The
    // coordinator is exempt: it still accumulates votes in this entry to
    // decide, and decide() arms the GC there.
    if (id_ != t->id.coord) schedule_term_gc(t->id);
  }
}

void Replica::schedule_vote_retry(const TxnPtr& t, int round) {
  if (round >= kMaxVoteRetries) return;
  const auto delay = cl_.vote_retry() *
                     static_cast<SimDuration>(1 << std::min(round, 3));
  cl_.run_after(id_, delay, [this, t, round] {
    if (known_outcome(t->id) != nullptr) return;
    auto it = term_.find(t->id);
    if (it == term_.end() || it->second.decided || !it->second.announced)
      return;
    if (cl_.site_down(id_))
      return;  // crashed meanwhile: on_recover re-announces and re-arms
    send_vote_msgs(t, it->second.my_vote);
    schedule_vote_retry(t, round + 1);
  });
}

void Replica::arm_term_timeout(const TxnPtr& t, int round) {
  cl_.run_after(id_, cl_.term_timeout(), [this, t, round] {
    if (known_outcome(t->id) != nullptr) return;
    if (cl_.site_down(id_))
      return;  // crashed: on_recover restarts in-doubt resolution
    const auto& spec = cl_.spec();
    if (spec.ac == AcKind::kTwoPhaseCommit ||
        spec.ac == AcKind::kPaxosCommit) {
      // Presumed abort: this coordinator is the only site that decides, so
      // resolving an in-doubt transaction as aborted cannot contradict a
      // commit decided elsewhere.
      ++timeout_aborts_;
      GDUR_DEBUG("site %d term timeout: presumed abort txn %d.%llu",
                 static_cast<int>(id_), static_cast<int>(t->id.coord),
                 static_cast<unsigned long long>(t->id.seq));
      send_2pc_decisions(t, false);
      decide(t, false, obs::AbortReason::kPresumedAbort);
      return;
    }
    // Group communication decides from vote quorums at every site: a
    // unilateral abort here could contradict a commit already decided at
    // another replica. Re-announce our vote — decided sites answer with
    // the outcome — and keep waiting. Only a finalized (announced) vote may
    // be resent: between cast_vote and announce_vote my_vote still holds
    // the default, and shipping it would contradict the real vote.
    auto it = term_.find(t->id);
    if (it != term_.end() && it->second.announced)
      send_vote_msgs(t, it->second.my_vote);
    if (round + 1 < kMaxVoteRetries) arm_term_timeout(t, round + 1);
  });
}

void Replica::send_2pc_decisions(const TxnPtr& t, bool commit) {
  const auto cs = certifying_objects(cl_.spec(), *t, cl_.partitioner());
  std::vector<SiteId> dests;
  if (cs.all) {
    if (cl_.reconfig_enabled()) {
      dests = cl_.view(t->epoch).members;
    } else {
      // gdur-lint: allow(membership/hardcoded-sites) fixed-membership branch; the reconfig path above iterates the view
      for (SiteId s = 0; s < static_cast<SiteId>(cl_.sites()); ++s)
        dests.push_back(s);
    }
  } else {
    dests = cl_.partitioner().replicas_of(cs.objs);
    if (cl_.reconfig_enabled())
      dests = cl_.view(t->epoch).filter(std::move(dests));
  }
  for (SiteId d : dests)
    if (d != id_) cl_.send_decision(id_, d, t, commit);
}

void Replica::on_vote(const TxnPtr& t, SiteId voter, bool vote) {
  if (cl_.reconfig_enabled()) {
    maybe_adopt_epoch(t->epoch);
    // Votes are only valid from sites of the transaction's view: a retired
    // site's delayed vote for a *later*-epoch transaction must not count
    // toward a quorum it is no longer part of. (Its votes for transactions
    // of epochs it belonged to remain valid — that is what lets old-epoch
    // certification drain through a retirement.)
    if (!cl_.view(t->epoch).contains(voter)) return;
  }
  // Every received vote feeds the online vote-consistency invariant —
  // including late ones: a contradiction is a contradiction regardless of
  // whether the outcome is already known here.
  if (omon_ != nullptr) omon_->note_vote(voter, t->id, vote, cl_.now());
  if (oslot_ != nullptr) oslot_->record(obs::Counter::kVotesRecv);
  if (const Outcome* out = known_outcome(t->id)) {
    // A re-announced vote reached a site that already decided: answer with
    // the decision so the in-doubt voter can terminate.
    if (cl_.fault_tolerance_on() && voter != id_)
      cl_.send_decision(id_, voter, t, out->committed);
    return;
  }
  auto& st = state_of(t);
  if (st.decided) return;

  if (cl_.spec().ac == AcKind::kTwoPhaseCommit) {
    // Algorithm 4 lines 8-10 (only the coordinator receives votes).
    assert(id_ == t->id.coord);
    if (cl_.fault_tolerance_on() && recoveries_ > 0 &&
        !commit_cbs_.contains(t->id)) {
      // A vote for a transaction this coordinator has no trace of: the
      // crash wiped it before it terminated. Classic presumed abort — no
      // decision on record means abort.
      ++timeout_aborts_;
      send_2pc_decisions(t, false);
      decide(t, false, obs::AbortReason::kPresumedAbort);
      return;
    }
    if (st.votes_expected == 0) {
      const auto cs = certifying_objects(cl_.spec(), *t, cl_.partitioner());
      if (cl_.reconfig_enabled()) {
        // Quorum of the transaction's epoch: exactly the participants the
        // termination message was multicast to.
        st.votes_expected = static_cast<int>(
            cs.all ? static_cast<std::size_t>(cl_.view(t->epoch).size())
                   : cl_.view(t->epoch)
                         .filter(cl_.partitioner().replicas_of(cs.objs))
                         .size());
      } else {
        st.votes_expected = static_cast<int>(
            cs.all ? static_cast<std::size_t>(cl_.sites())
                   : cl_.partitioner().replicas_of(cs.objs).size());
      }
    }
    if (std::find(st.voters.begin(), st.voters.end(), voter) !=
        st.voters.end())
      return;  // duplicate from a protocol-level retry
    st.voters.push_back(voter);
    st.all_true = st.all_true && vote;
    if (static_cast<int>(st.voters.size()) < st.votes_expected) return;
    const bool commit = st.all_true;
    auto finish = [this, t, commit] {
      if (known_outcome(t->id) != nullptr) return;  // timeout won the race
      send_2pc_decisions(t, commit);
      decide(t, commit);
    };
    if (auto* wal = cl_.wal(id_);
        wal != nullptr && cl_.fault_injector() != nullptr) {
      // §5.3: the decision is a state change — force it to the log before
      // announcing it, so a recovering coordinator re-announces rather
      // than re-deciding (possibly differently).
      if (omon_ != nullptr)
        omon_->note_wal_decision(id_, t->id, commit, cl_.now());
      if (oslot_ != nullptr) oslot_->record(obs::Counter::kWalAppends);
      wal->append(net::wire::decision() + 16,
                  store::WalRecord{store::WalRecord::Kind::kDecision, t->id,
                                   commit, t->epoch, t},
                  std::move(finish));
      return;
    }
    finish();
    return;
  }

  // Algorithm 3: accumulate votes, evaluate outcome(T). Under online
  // reconfiguration only certification-leader votes count (see
  // Cluster::cert_leader): a recently joined replica certifies without
  // having witnessed the ordered certifications that preceded its join, so
  // its verdict can diverge from the established replicas' — and letting
  // any replica's vote cover an object (or any false vote abort) would let
  // different sites decide the same transaction differently.
  if (cl_.reconfig_enabled() && !gc_vote_counts(*t, voter)) return;
  if (!vote) {
    st.any_false = true;
  } else if (std::find(st.true_voters.begin(), st.true_voters.end(), voter) ==
             st.true_voters.end()) {
    st.true_voters.push_back(voter);
  }
  check_gc_outcome(t);
}

bool Replica::gc_vote_counts(const TxnRecord& t, SiteId voter) const {
  const auto cs = certifying_objects(cl_.spec(), t, cl_.partitioner());
  const ObjSet snd = vote_objects(cl_.spec().vote_snd, cs, t);
  for (ObjectId o : snd)
    if (cl_.cert_leader(cl_.partitioner().partition_of(o), t.epoch) == voter)
      return true;
  return false;
}

void Replica::check_gc_outcome(const TxnPtr& t) {
  auto& st = state_of(t);
  if (st.decided) return;
  if (st.any_false) {
    decide(t, false);
    return;
  }
  const auto& spec = cl_.spec();
  const auto cs = certifying_objects(spec, *t, cl_.partitioner());
  const ObjSet snd = vote_objects(spec.vote_snd, cs, *t);
  // outcome(T) = true once every object in vote_snd_obj(T) is covered by a
  // positive vote from one of its replicas (a voting quorum).
  for (ObjectId o : snd) {
    bool covered = false;
    if (cl_.reconfig_enabled()) {
      // Only the partition's certification leader may cover its objects;
      // with one authoritative voter per partition the outcome is the same
      // function of the (unique) leader votes at every site.
      const SiteId leader =
          cl_.cert_leader(cl_.partitioner().partition_of(o), t->epoch);
      covered = leader != kNoSite &&
                std::find(st.true_voters.begin(), st.true_voters.end(),
                          leader) != st.true_voters.end();
    } else {
      for (SiteId voter : st.true_voters) {
        if (cl_.partitioner().is_local(voter, o)) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) return;  // outcome still ⊥
  }
  decide(t, true);
}

void Replica::on_paxos_2a(const TxnPtr& t, SiteId participant, bool vote) {
  if (cl_.reconfig_enabled()) {
    maybe_adopt_epoch(t->epoch);
    // Only acceptors of the transaction's view may accept: an acceptance
    // from outside it would never be counted anyway (see on_paxos_2b).
    if (!member_of(t->epoch)) return;
  }
  // The proposed vote is `participant`'s announced certification verdict —
  // feed it to the vote-consistency invariant like a direct vote.
  if (omon_ != nullptr) omon_->note_vote(participant, t->id, vote, cl_.now());
  if (oslot_ != nullptr) oslot_->record(obs::Counter::kVotesRecv);
  // Acceptor: accept the first value proposed for (t, participant). The
  // participant is the only proposer at ballot 0, so conflicts cannot
  // arise; re-proposals are idempotent.
  auto [it, inserted] = paxos_acc_.try_emplace(t->id);
  if (inserted) {
    paxos_acc_fifo_.push_back(t->id);
    if (paxos_acc_fifo_.size() > kPaxosAcceptorCap) {
      paxos_acc_.erase(paxos_acc_fifo_.front());
      paxos_acc_fifo_.pop_front();
    }
    // Retention: an acceptor that certifies nothing and applies nothing
    // never reaches decide(), the only other path arming the straggler GC,
    // so its slot (and any incidental term state) would persist until the
    // FIFO cap evicts it. The coordinator is exempt: it is the learner and
    // decide() arms the GC there.
    if (id_ != t->id.coord) schedule_term_gc(t->id);
  }
  auto [slot, first] = it->second.try_emplace(participant, vote);
  (void)first;
  // Phase 2b: report the acceptance to the coordinator (the learner). A
  // re-proposed 2a (protocol retry after loss) is re-acked with the value
  // accepted first — idempotent at the learner, and without it a retried
  // instance could never close.
  cl_.send_paxos_2b(id_, t->id.coord, t, participant, slot->second, id_);
}

void Replica::on_paxos_2b(const TxnPtr& t, SiteId participant, bool vote,
                          SiteId acceptor) {
  if (cl_.reconfig_enabled()) {
    maybe_adopt_epoch(t->epoch);
    // Acceptances count only from acceptors of the transaction's view, and
    // instances only from participants of it.
    if (!cl_.view(t->epoch).contains(acceptor) ||
        !cl_.view(t->epoch).contains(participant))
      return;
  }
  if (const Outcome* out = known_outcome(t->id)) {
    // A re-acked instance of an already-decided transaction: tell the
    // still-in-doubt participant the outcome.
    if (cl_.fault_tolerance_on() && participant != id_)
      cl_.send_decision(id_, participant, t, out->committed);
    return;
  }
  auto& st = state_of(t);
  if (st.decided || st.paxos_closed.contains(participant)) return;
  if (cl_.fault_tolerance_on() && recoveries_ > 0 &&
      !commit_cbs_.contains(t->id)) {
    // Crash wiped this coordinator's trace of the transaction before it
    // terminated: presumed abort (see on_vote).
    ++timeout_aborts_;
    send_2pc_decisions(t, false);
    decide(t, false, obs::AbortReason::kPresumedAbort);
    return;
  }
  auto& acks = st.paxos_acks[participant];
  if (std::find(acks.begin(), acks.end(), acceptor) != acks.end())
    return;  // duplicate re-ack
  acks.push_back(acceptor);
  const int majority = cl_.reconfig_enabled() ? cl_.view(t->epoch).majority()
                                              : cl_.sites() / 2 + 1;
  if (static_cast<int>(acks.size()) < majority) return;
  // This participant's instance is chosen.
  st.paxos_closed.emplace(participant, vote);
  st.all_true = st.all_true && vote;
  ++st.paxos_instances_closed;

  const auto cs = certifying_objects(cl_.spec(), *t, cl_.partitioner());
  auto dests = cs.all ? std::vector<SiteId>{}  // not used by paxos
                      : cl_.partitioner().replicas_of(cs.objs);
  if (cl_.reconfig_enabled())
    dests = cl_.view(t->epoch).filter(std::move(dests));
  if (st.paxos_instances_closed < static_cast<int>(dests.size())) return;
  const bool commit = st.all_true;
  auto finish = [this, t, commit] {
    if (known_outcome(t->id) != nullptr) return;  // timeout won the race
    send_2pc_decisions(t, commit);
    decide(t, commit);
  };
  if (auto* wal = cl_.wal(id_);
      wal != nullptr && cl_.fault_injector() != nullptr) {
    if (omon_ != nullptr)
      omon_->note_wal_decision(id_, t->id, commit, cl_.now());
    if (oslot_ != nullptr) oslot_->record(obs::Counter::kWalAppends);
    wal->append(net::wire::decision() + 16,
                store::WalRecord{store::WalRecord::Kind::kDecision, t->id,
                                 commit, t->epoch, t},
                std::move(finish));
    return;
  }
  finish();
}

void Replica::on_decision(const TxnPtr& t, bool commit) {
  if (cl_.reconfig_enabled()) maybe_adopt_epoch(t->epoch);
  decide(t, commit);
}

void Replica::decide(const TxnPtr& t, bool commit, obs::AbortReason reason) {
  if (known_outcome(t->id) != nullptr) return;  // straggler duplicate
  auto& st = state_of(t);
  if (st.decided) return;
  st.decided = true;
  st.committed = commit;
  decided_cache_.emplace(
      t->id, Outcome{commit, commit ? obs::AbortReason::kNone : reason});
  decided_fifo_.push_back(t->id);
  if (decided_fifo_.size() > kDecidedCacheCap) {
    decided_cache_.erase(decided_fifo_.front());
    decided_fifo_.pop_front();
  }
  GDUR_DEBUG("site %d decide txn %d.%llu -> %s", static_cast<int>(id_),
             static_cast<int>(t->id.coord),
             static_cast<unsigned long long>(t->id.seq),
             commit ? "commit" : obs::abort_reason_name(reason));
  if (auto* tr = cl_.trace())
    tr->decided(t->id, id_, cl_.now(), commit, reason);
  if (oslot_ != nullptr) {
    oslot_->record(obs::Counter::kDecisions);
    oslot_->record(commit ? obs::Counter::kTxnCommitted
                          : obs::Counter::kTxnAborted);
    oring_->append(commit ? "commit" : "abort", cl_.now(), id_, t->id.coord,
                   t->id.seq);
  }
  if (omon_ != nullptr) omon_->note_decided(id_, t->id, commit, cl_.now());

  // Garbage-collect the termination state well after any straggler message.
  schedule_term_gc(t->id);

  if (!commit) {
    // Algorithm 2 lines 25-29.
    if (st.in_q) remove_from_q(t->id);
    finish_coordinator(t, false);
    if (id_ == t->id.coord && cl_.spec().post_abort)
      cl_.spec().post_abort(cl_, *t);
    return;
  }

  // Algorithm 2 lines 19-24.
  const bool ordered = cl_.spec().ac == AcKind::kGroupComm &&
                       cl_.spec().wait_head_of_queue && st.in_q;
  if (ordered) {
    process_queue_head();
  } else {
    if (st.in_q) remove_from_q(t->id);
    apply_commit(t);
  }
}

void Replica::schedule_term_gc(const TxnId& id) {
  cl_.run_after(id_, seconds(5), [this, id] {
    auto it = term_.find(id);
    if (it != term_.end() && it->second.in_q) {
      // Still parked in the ordered queue behind an undecided head (its
      // votes may be stuck behind a partition or a crashed site for longer
      // than the straggler window). Erasing now would leave q_ holding an
      // id with no termination state, which process_queue_head() fatally
      // assumes cannot happen — try again later instead.
      schedule_term_gc(id);
      return;
    }
    // The Paxos acceptor slot rides along: past the straggler window a
    // re-proposal would be answered from the decided cache at the learner
    // anyway, and a fresh accept of the (deterministic) re-proposed value
    // is idempotent. Without this, every acceptor leaked one map entry per
    // transaction until the FIFO cap evicted it — the cap now only guards
    // transactions this site accepted for but never saw terminate.
    // (paxos_acc_fifo_ keeps the id; its cap-driven erase of an already
    // dropped key is a no-op, and the deque itself is bounded by the cap.)
    // A pure acceptor has a slot here but no termination state at all —
    // the erase below must not be gated on term_ holding the id.
    paxos_acc_.erase(id);
    if (it != term_.end()) term_.erase(it);
  });
}

void Replica::process_queue_head() {
  // Replicas apply updates in delivery order (mandatory for SER and above).
  while (!q_.empty()) {
    auto it = term_.find(q_.front());
    assert(it != term_.end());
    TermState& st = it->second;
    if (!st.decided) return;
    const TxnPtr t = st.txn;
    st.in_q = false;
    q_.pop_front();
    obs_q_pops_.fetch_add(1, std::memory_order_relaxed);
    cidx_.remove(t->id);
    if (st.committed) apply_commit(t);
  }
  gc_try_votes();
}

void Replica::remove_from_q(const TxnId& id) {
  auto it = std::find(q_.begin(), q_.end(), id);
  if (it != q_.end()) {
    q_.erase(it);
    obs_q_pops_.fetch_add(1, std::memory_order_relaxed);
    cidx_.remove(id);
    if (auto ts = term_.find(id); ts != term_.end()) ts->second.in_q = false;
    gc_try_votes();
    if (cl_.spec().ac == AcKind::kGroupComm && cl_.spec().wait_head_of_queue)
      process_queue_head();
  }
}

void Replica::apply_commit(const TxnPtr& t) {
  const TxnRecord& txn = *t;
  const auto& part = cl_.partitioner();
  const SimTime now = cl_.now();

  std::vector<ObjectId> local_ws;
  for (ObjectId o : txn.ws)
    if (part.is_local(id_, o)) local_ws.push_back(o);

  if (oslot_ != nullptr) {
    oslot_->record(obs::Counter::kApplies);
    oring_->append("apply", now, id_, txn.id.coord, txn.id.seq);
  }
  // Store installs, the replica-wide version index and the recency window
  // are exactly the state shard certifier sub-votes read. The apply
  // exclusion makes this mutation safe against them: the live sharded
  // backend holds every shard lock of this site around `fn`, the sim and
  // the serial pipeline run `fn` inline (byte-identical).
  cl_.with_apply_exclusion(id_, [&] {
    if (!local_ws.empty()) {
      // All partitions the transaction writes (not only the local ones):
      // the dependence vector must cover the transaction's remote writes
      // too, or snapshot-compatibility tests at other replicas could miss
      // fractures.
      std::vector<PartitionId> parts;
      for (ObjectId o : txn.ws) {
        const PartitionId p = part.partition_of(o);
        if (std::find(parts.begin(), parts.end(), p) == parts.end())
          parts.push_back(p);
      }
      versioning::Stamp stamp = txn.stamp;
      const auto pidx = cl_.oracle().on_apply(id_, stamp, parts, txn.snap);
      for (ObjectId o : local_ws) {
        const PartitionId p = part.partition_of(o);
        const auto k = static_cast<std::size_t>(
            std::find(parts.begin(), parts.end(), p) - parts.begin());
        db_.install(o, store::Version{.writer = txn.id,
                                      .pidx = pidx[k],
                                      .commit_time = now,
                                      .stamp = stamp});
        if (cl_.install_observer())
          cl_.install_observer()(Cluster::InstallEvent{
              .obj = o, .writer = txn.id, .pidx = pidx[k], .site = id_,
              .time = now});
      }
      if (cl_.spec().track_all_objects)
        for (ObjectId o : txn.ws) latest_seq_[o] = stamp.seq;
      // Durable mode: persist the after-values off the critical path.
      if (auto* wal = cl_.wal(id_)) {
        if (oslot_ != nullptr) oslot_->record(obs::Counter::kWalAppends);
        wal->append(net::wire::termination(0, local_ws.size(), 16), [] {});
      }
    } else {
      const std::uint64_t seq = cl_.oracle().on_commit_observed(id_);
      if (cl_.spec().track_all_objects && seq != 0)
        for (ObjectId o : txn.ws) latest_seq_[o] = seq;
      // A participant with nothing to apply still learns the transaction's
      // version number (otherwise its vector clock would lag behind the
      // snapshots of transactions that later read here).
      cl_.oracle().on_propagate(id_, txn.stamp);
    }

    recency_.note_commit(txn, now);
    if (cl_.spec().track_committed_readers && !txn.read_only()) {
      for (ObjectId o : txn.rs) {
        if (!part.is_local(id_, o)) continue;
        recency_.note_reader(o, ReaderInfo{.origin = txn.stamp.origin,
                                           .seq = txn.stamp.seq,
                                           .commit_time = now});
      }
    }
  });
  if (!local_ws.empty()) {
    // The store mutation is synchronous (so successors certify against it);
    // its CPU cost is charged as a fire-and-forget job — on the write-set
    // shards' applier lanes when lanes are modeled.
    const SimDuration apply_cost =
        cl_.cost().apply_per_obj * static_cast<SimDuration>(local_ws.size());
    cl_.run_apply(id_, t, apply_cost);
    if (auto* tr = cl_.trace()) tr->applied(txn.id, id_, now, apply_cost);
  }

  if (cl_.reconfig_enabled() && !txn.read_only()) {
    // Remember the commit so a later epoch activation can re-run the
    // late-install forwarding below for members that joined between this
    // decision and this replica learning of the new view.
    recent_commits_.push_back(t);
    if (recent_commits_.size() > kRecentCommitCap) recent_commits_.pop_front();
    const std::uint64_t fwd_bytes =
        net::wire::termination(txn.rs.size(), txn.ws.size(), cl_.meta_bytes());
    // Snapshot catch-up stream: while a joiner is prepared (snapshot taken,
    // epoch not yet active), this donor forwards every commit that touches
    // the transferred partitions, so nothing falls between the snapshot and
    // activation.
    for (const auto& reg : stream_to_) {
      bool relevant = false;
      for (ObjectId o : local_ws)
        if (std::find(reg.parts.begin(), reg.parts.end(),
                      part.partition_of(o)) != reg.parts.end()) {
          relevant = true;
          break;
        }
      if (!relevant) continue;
      ReconfigMsg fwd;
      fwd.kind = ReconfigMsg::Kind::kInstall;
      fwd.epoch = txn.epoch;
      fwd.from = id_;
      fwd.payload = t;
      fwd.bytes = fwd_bytes;
      cl_.send_reconfig(id_, reg.to, std::move(fwd));
    }
    // Late-install forwarding: a transaction certified under an older view
    // commits after newer members joined. They were not in its multicast
    // destinations, so its coordinator ships the commit to every new member
    // hosting written objects (deduplicated at the receiver).
    if (id_ == txn.id.coord && epoch_ > txn.epoch) {
      const auto& old_view = cl_.view(txn.epoch);
      for (SiteId s : cl_.view(epoch_).members) {
        if (s == id_ || old_view.contains(s)) continue;
        // Replica-wide version indexes (Serrano) make every commit
        // certification-relevant everywhere — new members need the full
        // feed, not just writes they host.
        bool hosts = cl_.spec().track_all_objects;
        for (ObjectId o : txn.ws) {
          if (hosts) break;
          if (part.is_local(s, o)) hosts = true;
        }
        if (!hosts) continue;
        ReconfigMsg fwd;
        fwd.kind = ReconfigMsg::Kind::kInstall;
        fwd.epoch = txn.epoch;
        fwd.from = id_;
        fwd.payload = t;
        fwd.bytes = fwd_bytes;
        cl_.send_reconfig(id_, s, std::move(fwd));
      }
    }
  }

  finish_coordinator(t, true);
  if (id_ == txn.id.coord && cl_.spec().post_commit)
    cl_.spec().post_commit(cl_, txn);
}

void Replica::finish_coordinator(const TxnPtr& t, bool commit) {
  if (id_ != t->id.coord) return;
  auto it = commit_cbs_.find(t->id);
  if (it == commit_cbs_.end()) return;
  auto cb = std::move(it->second);
  commit_cbs_.erase(it);
  cb(commit);
}

// ---------------------------------------------------------------------------
// Crash-recovery (sim/fault).
// ---------------------------------------------------------------------------

void Replica::on_crash() {
  // Volatile protocol state vanishes with the process.
  q_.clear();
  // Resync the watchdog's queue mirror: an emptied queue has no pending
  // work, so pushes and pops must agree again.
  obs_q_pops_.store(obs_q_pushes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  cidx_.clear();  // mirrors q_ exactly, always
  term_.clear();
  commit_cbs_.clear();
  paxos_acc_.clear();
  paxos_acc_fifo_.clear();
  // Membership state is volatile too: the activated epoch, a prepared view,
  // coordinator progress, and any state-transfer bookkeeping are rebuilt
  // from the WAL's reconfiguration records (and epoch gossip) on recovery.
  epoch_ = 0;
  draining_ = false;
  rcfg_.reset();
  pending_view_.reset();
  pending_coord_ = kNoSite;
  pending_subject_ = kNoSite;
  transfer_waiting_.clear();
  recent_commits_.clear();
  transfer_epoch_ = 0;
  transfer_done_ = false;
  stream_to_.clear();
  // The committed store (db_, recency_, latest_seq_) and the
  // decided-transaction cache are kept: both are exactly what log replay
  // rebuilds in a real deployment, and re-deriving identical state here
  // would only add simulated replay cost (charged in on_recover).
}

void Replica::on_recover() {
  ++recoveries_;
  auto* wal = cl_.wal(id_);
  if (wal == nullptr) return;
  GDUR_DEBUG("site %d recovering: replaying %zu stable WAL records",
             static_cast<int>(id_), wal->stable().size());

  // Replay the stable log in append (= original delivery) order.
  // Reconfiguration records rebuild membership state: the last logged
  // prepare with no commit/abort after it is an in-flight proposal this
  // coordinator must resume (or abandon through the normal give-up path).
  std::optional<ReconfigCoord> resume;
  std::size_t replayed = 0;
  for (const auto& r : wal->stable()) {
    ++replayed;
    if (r.payload == nullptr) continue;
    if (r.kind == store::WalRecord::Kind::kReconfigPrepare ||
        r.kind == store::WalRecord::Kind::kReconfigCommit ||
        r.kind == store::WalRecord::Kind::kReconfigAbort) {
      const auto v = std::static_pointer_cast<const MembershipView>(r.payload);
      switch (r.kind) {
        case store::WalRecord::Kind::kReconfigPrepare: {
          // Only the coordinator logs prepares, so this replica was driving
          // the change (flag encodes join/retire; the subject is the
          // symmetric difference against the base view).
          ReconfigCoord rc;
          rc.next = *v;
          rc.kind = r.flag ? ReconfigKind::kJoin : ReconfigKind::kRetire;
          const auto& base = cl_.view(v->epoch > 0 ? v->epoch - 1 : 0);
          rc.subject = kNoSite;
          for (SiteId s : r.flag ? v->members : base.members)
            if (r.flag ? !base.contains(s) : !v->contains(s)) {
              rc.subject = s;
              break;
            }
          rc.acked.push_back(id_);
          resume = std::move(rc);
          break;
        }
        case store::WalRecord::Kind::kReconfigCommit:
          cl_.membership().append(*v);
          epoch_ = std::max(epoch_, v->epoch);
          if (resume && resume->next.epoch <= v->epoch) resume.reset();
          break;
        case store::WalRecord::Kind::kReconfigAbort:
          if (resume && resume->next.epoch == v->epoch) resume.reset();
          break;
        default:
          break;
      }
      continue;
    }
    const auto t = std::static_pointer_cast<const TxnRecord>(r.payload);
    switch (r.kind) {
      case store::WalRecord::Kind::kDeliver: {
        if (known_outcome(r.txn) != nullptr) break;
        auto& st = state_of(t);
        if (!st.in_q && !st.decided) {
          st.in_q = true;
          q_.push_back(r.txn);
          obs_q_pushes_.fetch_add(1, std::memory_order_relaxed);
          st.q_pos = cidx_.add(t);  // re-indexed in replay (= delivery) order
        }
        break;
      }
      case store::WalRecord::Kind::kVote: {
        if (known_outcome(r.txn) != nullptr) break;
        auto& st = state_of(t);
        st.voted = true;
        // The logged value is exactly what announce_vote shipped (or was
        // about to ship): final, safe to re-announce.
        st.announced = true;
        st.my_vote = r.flag;
        break;
      }
      case store::WalRecord::Kind::kDecision:
        // No-op when the decision took effect before the crash (the decided
        // cache remembers); otherwise the crash hit between fsync and
        // announcement and the outcome is re-applied here.
        decide(t, r.flag);
        break;
      default:
        break;  // reconfiguration kinds handled above
    }
  }

  if (cl_.reconfig_enabled()) {
    // Recovery also re-reads the shared log of agreed views (in a real
    // deployment: the membership service). Without this, a site that crashed
    // before an activation reached it — e.g. a retiree missing the very view
    // that excludes it — would pin itself to the stale epoch forever, since
    // excluded sites receive no epoch gossip.
    epoch_ = std::max(epoch_, cl_.membership().latest_epoch());
  }

  if (resume) {
    // Coordinator crashed mid-reconfiguration with the prepare on stable
    // storage but no outcome. If the epoch has since been agreed the shared
    // log already has it — adopt. If it is still the next epoch, resume the
    // prepare rounds (participants re-ack idempotently; the give-up path
    // abandons it durably if the cluster cannot be assembled). Anything
    // else can never be agreed — abandon it immediately.
    const EpochId e = resume->next.epoch;
    if (cl_.membership().latest_epoch() >= e) {
      epoch_ = std::max(epoch_, cl_.membership().latest_epoch());
    } else if (e == cl_.membership().latest_epoch() + 1) {
      rcfg_ = std::move(*resume);
      reconfig_round(e, 0);
    } else {
      log_reconfig(store::WalRecord::Kind::kReconfigAbort, resume->next, id_,
                   [] {});
    }
  }

  // Re-announce logged votes whose outcome is unknown, and restart the
  // coordinator's in-doubt resolution for transactions it owns. This pass
  // MUST run before the re-vote pass below: cast_vote marks a transaction
  // voted immediately while the vote's value is recomputed asynchronously,
  // so a re-announce pass running after it would ship the default (false)
  // my_vote for freshly re-voted transactions — a contradictory abort vote
  // the coordinator may count before the real one arrives.
  if (cl_.fault_tolerance_on()) {
    // term_ is hash-ordered; walk it in TxnId order so the re-announcement
    // messages (and the retry/timeout events they schedule) are emitted in
    // a deterministic sequence — recovery must not leak container hash
    // order into the simulated message schedule.
    std::vector<TxnId> in_doubt;
    in_doubt.reserve(term_.size());
    for (const auto& [id, st] : term_)  // gdur-lint: allow(determinism/unordered-iter) key harvest only; sorted before any side effect
      if (!st.decided) in_doubt.push_back(id);
    std::sort(in_doubt.begin(), in_doubt.end());
    for (const TxnId& id : in_doubt) {
      TermState& st = term_.find(id)->second;
      if (st.announced) {
        send_vote_msgs(st.txn, st.my_vote);
        schedule_vote_retry(st.txn, 0);
      }
      if (id.coord == id_) arm_term_timeout(st.txn, 0);
    }
  }

  // Re-vote for rebuilt queue entries whose vote never reached the log.
  if (cl_.spec().ac != AcKind::kGroupComm) {
    for (const TxnId& id : q_) {
      const auto it = term_.find(id);
      if (it == term_.end()) continue;
      TermState& st = it->second;
      if (st.voted || st.decided) continue;
      cast_vote(st.txn,
                queued_conflict(*st.txn, st.q_pos, /*preceding_only=*/false));
    }
  } else {
    gc_try_votes();
  }

  // Charge the replay work (one queue operation per log record).
  if (replayed > 0) {
    const auto replay_cost =
        cl_.cost().queue_op * static_cast<SimDuration>(replayed);
    recovery_busy_ += replay_cost;
    cl_.run_local(id_, replay_cost, [] {});
  }
}

// ---------------------------------------------------------------------------
// Membership / online reconfiguration (core/membership, DESIGN.md §12).
//
// Epochs advance one at a time. The coordinator durably logs a prepare,
// broadcasts it to the base view plus the subject, and commits once a
// majority of the base view acked (a join additionally waits for the
// subject's ack, which doubles as "state transfer complete"; a retire does
// NOT wait for the subject, so a crashed site can be retired). The commit
// record is the decision point: it enters the shared MembershipLog, after
// which activation spreads by explicit kActivate rounds and by epoch gossip
// on every termination-protocol message.
// ---------------------------------------------------------------------------

bool Replica::member_of(EpochId e) const { return cl_.view(e).contains(id_); }

std::vector<PartitionId> Replica::partitions_hosted(SiteId s) const {
  std::vector<PartitionId> out;
  const auto& part = cl_.partitioner();
  for (PartitionId p = 0; p < part.partitions(); ++p) {
    const auto sites = part.sites_of(p);
    if (std::find(sites.begin(), sites.end(), s) != sites.end())
      out.push_back(p);
  }
  return out;
}

void Replica::maybe_adopt_epoch(EpochId e) {
  // Seeded misreport (sim::Sabotage::kEpochRegress): claim an epoch one
  // below the activated one — the regression the epoch-monotonicity
  // invariant must catch. Only the monitor's input is perturbed; the
  // protocol state stays healthy.
  if (omon_ != nullptr && epoch_ > 0) {
    if (auto* fi = cl_.fault_injector();
        fi != nullptr &&
        fi->consume_sabotage(sim::Sabotage::Kind::kEpochRegress, id_,
                             cl_.now()))
      omon_->note_epoch(id_, epoch_ - 1, cl_.now());
  }
  if (e <= epoch_ || !cl_.membership().has(e)) return;
  activate_epoch(e);
  // Durably remember the activation: without it a crash would roll this
  // site back to an older configuration until the next gossip.
  log_reconfig(store::WalRecord::Kind::kReconfigCommit, cl_.view(e), id_,
               [] {});
}

void Replica::activate_epoch(EpochId e) {
  if (e <= epoch_) return;
  epoch_ = e;
  if (omon_ != nullptr) omon_->note_epoch(id_, e, cl_.now());
  if (oslot_ != nullptr) {
    oslot_->record(obs::Counter::kEpochActivations);
    oring_->append("epoch_activate", cl_.now(), id_, e);
  }
  // The prepared state for this (or any older) epoch is resolved.
  if (pending_view_ && pending_view_->epoch <= e) {
    pending_view_.reset();
    pending_coord_ = kNoSite;
    pending_subject_ = kNoSite;
    draining_ = false;  // a retiree is now fenced by member_of() instead
  }
  // Snapshot streaming for activated epochs ends: the joiner receives
  // termination traffic directly now (late-install forwarding covers
  // transactions still in flight under older epochs).
  stream_to_.erase(std::remove_if(stream_to_.begin(), stream_to_.end(),
                                  [e](const StreamReg& r) {
                                    return r.epoch <= e;
                                  }),
                   stream_to_.end());
  // A transaction certified under an older view may have been decided here
  // before this replica learned of the new one — the inline late-install
  // forwarding in decide() compared against the old epoch_ and stayed
  // silent, and the donor's catch-up stream may equally have ended
  // already. Sweep the recently decided commits and ship those installs to
  // the members this activation adds (deduplicated at the receiver).
  const auto& part = cl_.partitioner();
  for (const auto& t : recent_commits_) {
    if (t->epoch >= e) continue;
    if (id_ != t->id.coord && !has_local_writes(*t)) continue;
    const auto& old_view = cl_.view(t->epoch);
    for (SiteId s : cl_.view(e).members) {
      if (s == id_ || old_view.contains(s)) continue;
      // See the inline forwarding in decide(): replica-wide version
      // indexes need every commit at every member.
      bool hosts = cl_.spec().track_all_objects;
      for (ObjectId o : t->ws) {
        if (hosts) break;
        if (part.is_local(s, o)) hosts = true;
      }
      if (!hosts) continue;
      ReconfigMsg fwd;
      fwd.kind = ReconfigMsg::Kind::kInstall;
      fwd.epoch = t->epoch;
      fwd.from = id_;
      fwd.payload = t;
      fwd.bytes = net::wire::termination(t->rs.size(), t->ws.size(),
                                         cl_.meta_bytes());
      cl_.send_reconfig(id_, s, std::move(fwd));
    }
  }
  GDUR_DEBUG("site %d activates epoch %u", static_cast<int>(id_), e);
}

void Replica::log_reconfig(store::WalRecord::Kind kind,
                           const MembershipView& v, SiteId coord,
                           std::function<void()> done) {
  auto* wal = cl_.wal(id_);
  if (wal == nullptr) {
    done();
    return;
  }
  store::WalRecord rec;
  rec.kind = kind;
  // Reconfigurations are replicated commands keyed (coordinator, epoch).
  rec.txn = TxnId{coord, v.epoch};
  // flag encodes the change direction (join grows the view); recovery
  // derives the subject from the symmetric difference against the base.
  rec.flag = v.size() > cl_.view(v.epoch > 0 ? v.epoch - 1 : 0).size();
  rec.epoch = v.epoch;
  rec.payload = std::make_shared<const MembershipView>(v);
  if (oslot_ != nullptr) oslot_->record(obs::Counter::kWalAppends);
  wal->append(net::wire::control() + 8u * v.members.size(), std::move(rec),
              std::move(done));
}

bool Replica::reconfig_begin(ReconfigKind kind, SiteId subject) {
  if (!cl_.reconfig_enabled()) return true;  // nothing to reconfigure
  if (rcfg_ || !member_of(epoch_)) return false;
  const MembershipView& base = cl_.membership().latest();
  // Moot changes (joining a member, retiring a non-member) are done already.
  if ((kind == ReconfigKind::kJoin) == base.contains(subject)) return true;
  if (base.epoch != epoch_) {
    // This replica lags the latest agreed view; catch up and let the
    // cluster retry (possibly at another coordinator).
    maybe_adopt_epoch(base.epoch);
    return false;
  }
  ReconfigCoord rc;
  rc.kind = kind;
  rc.subject = subject;
  rc.next = kind == ReconfigKind::kJoin ? base.with_joined(subject)
                                        : base.with_retired(subject);
  rc.acked.push_back(id_);
  rcfg_ = std::move(rc);
  // The proposal is durable before any prepare leaves this site, so a
  // crashed coordinator finds it on recovery and resumes (or abandons it
  // durably) instead of leaving participants prepared forever.
  log_reconfig(store::WalRecord::Kind::kReconfigPrepare, rcfg_->next, id_,
               [this, e = rcfg_->next.epoch] {
                 if (rcfg_ && rcfg_->next.epoch == e) reconfig_round(e, 0);
               });
  return true;
}

void Replica::reconfig_round(EpochId e, int round) {
  if (!rcfg_ || rcfg_->next.epoch != e || rcfg_->decided) return;
  if (round >= kMaxReconfigRounds) {
    reconfig_abort(e);
    return;
  }
  // Participants: every member of the base view, plus the subject.
  auto parts = cl_.view(e > 0 ? e - 1 : 0).members;
  if (std::find(parts.begin(), parts.end(), rcfg_->subject) == parts.end())
    parts.push_back(rcfg_->subject);
  const auto view = std::make_shared<const MembershipView>(rcfg_->next);
  for (SiteId s : parts) {
    if (s == id_) continue;
    if (std::find(rcfg_->acked.begin(), rcfg_->acked.end(), s) !=
        rcfg_->acked.end())
      continue;
    ReconfigMsg m;
    m.kind = ReconfigMsg::Kind::kPrepare;
    m.epoch = e;
    m.from = id_;
    m.view = view;
    m.change = rcfg_->kind;
    m.subject = rcfg_->subject;
    m.bytes = 8u * view->members.size();
    cl_.send_reconfig(id_, s, std::move(m));
  }
  const SimDuration delay =
      cl_.vote_retry() * static_cast<SimDuration>(1 << std::min(round, 3));
  cl_.run_after(id_, delay, [this, e, round] {
    if (cl_.site_down(id_)) return;  // crashed: on_recover resumes
    reconfig_round(e, round + 1);
  });
}

void Replica::reconfig_commit(EpochId e) {
  if (!rcfg_ || rcfg_->next.epoch != e || rcfg_->decided) return;
  rcfg_->decided = true;
  const MembershipView next = rcfg_->next;
  log_reconfig(store::WalRecord::Kind::kReconfigCommit, next, id_,
               [this, e, next] {
                 // Decision point: the view is agreed the instant its commit
                 // record is stable, and enters the shared log right here.
                 cl_.membership().append(next);
                 rcfg_.reset();
                 activate_epoch(e);
                 activate_round(e, 0);
               });
}

void Replica::reconfig_abort(EpochId e) {
  if (!rcfg_ || rcfg_->next.epoch != e || rcfg_->decided) return;
  rcfg_->decided = true;
  const MembershipView next = rcfg_->next;
  const SiteId subject = rcfg_->subject;
  GDUR_DEBUG("site %d abandons reconfiguration to epoch %u",
             static_cast<int>(id_), e);
  log_reconfig(store::WalRecord::Kind::kReconfigAbort, next, id_,
               [this, e, subject] {
                 rcfg_.reset();
                 auto parts = cl_.view(e > 0 ? e - 1 : 0).members;
                 if (std::find(parts.begin(), parts.end(), subject) ==
                     parts.end())
                   parts.push_back(subject);
                 for (SiteId s : parts) {
                   if (s == id_) continue;
                   ReconfigMsg m;
                   m.kind = ReconfigMsg::Kind::kAbort;
                   m.epoch = e;
                   m.from = id_;
                   m.bytes = 8;
                   cl_.send_reconfig(id_, s, std::move(m));
                 }
               });
}

void Replica::activate_round(EpochId e, int round) {
  if (round >= kActivateRounds) return;
  const MembershipView& v = cl_.view(e);
  const auto view = std::make_shared<const MembershipView>(v);
  // Announce to every participant of the change: the new view's members and
  // the base view's (so a retiree learns the view that excludes it).
  auto parts = cl_.view(e > 0 ? e - 1 : 0).members;
  for (SiteId s : v.members)
    if (std::find(parts.begin(), parts.end(), s) == parts.end())
      parts.push_back(s);
  for (SiteId s : parts) {
    if (s == id_) continue;
    ReconfigMsg m;
    m.kind = ReconfigMsg::Kind::kActivate;
    m.epoch = e;
    m.from = id_;
    m.view = view;
    m.bytes = 8u * view->members.size();
    cl_.send_reconfig(id_, s, std::move(m));
  }
  const SimDuration delay =
      cl_.vote_retry() * static_cast<SimDuration>(1 << std::min(round, 3));
  cl_.run_after(id_, delay, [this, e, round] {
    if (cl_.site_down(id_)) return;
    activate_round(e, round + 1);
  });
}

void Replica::on_reconfig(ReconfigMsg m) {
  if (!cl_.reconfig_enabled()) return;
  switch (m.kind) {
    case ReconfigMsg::Kind::kPrepare:
      handle_prepare(m);
      break;
    case ReconfigMsg::Kind::kAck: {
      if (!rcfg_ || rcfg_->next.epoch != m.epoch || rcfg_->decided) return;
      if (std::find(rcfg_->acked.begin(), rcfg_->acked.end(), m.from) ==
          rcfg_->acked.end())
        rcfg_->acked.push_back(m.from);
      if (m.from == rcfg_->subject) rcfg_->joiner_acked = true;
      // Agreement: a majority of the base view acked, and — for a join —
      // the subject finished its state transfer. A retire deliberately does
      // not wait for the subject: crashed sites must be retirable.
      const MembershipView& base = cl_.view(m.epoch > 0 ? m.epoch - 1 : 0);
      int base_acks = 0;
      for (SiteId s : rcfg_->acked)
        if (base.contains(s)) ++base_acks;
      const bool joiner_ok =
          rcfg_->kind != ReconfigKind::kJoin || rcfg_->joiner_acked;
      if (base_acks >= base.majority() && joiner_ok) reconfig_commit(m.epoch);
      break;
    }
    case ReconfigMsg::Kind::kActivate:
      maybe_adopt_epoch(m.epoch);
      break;
    case ReconfigMsg::Kind::kAbort: {
      if (pending_view_ && pending_view_->epoch == m.epoch) {
        if (pending_subject_ == id_ &&
            pending_kind_ == ReconfigKind::kRetire)
          draining_ = false;
        pending_view_.reset();
        pending_coord_ = kNoSite;
        pending_subject_ = kNoSite;
        transfer_waiting_.clear();
        transfer_done_ = false;
        transfer_epoch_ = 0;
      }
      stream_to_.erase(std::remove_if(stream_to_.begin(), stream_to_.end(),
                                      [&m](const StreamReg& r) {
                                        return r.epoch == m.epoch;
                                      }),
                       stream_to_.end());
      break;
    }
    case ReconfigMsg::Kind::kSnapRequest:
      handle_snap_request(m);
      break;
    case ReconfigMsg::Kind::kSnapReply:
      handle_snap_reply(m);
      break;
    case ReconfigMsg::Kind::kInstall:
      apply_remote_commit(std::static_pointer_cast<const TxnRecord>(
          std::const_pointer_cast<const void>(m.payload)));
      break;
  }
}

void Replica::handle_prepare(const ReconfigMsg& m) {
  const auto ack = [this, &m] {
    ReconfigMsg a;
    a.kind = ReconfigMsg::Kind::kAck;
    a.epoch = m.epoch;
    a.from = id_;
    a.bytes = 8;
    cl_.send_reconfig(id_, m.from, std::move(a));
  };
  if (epoch_ >= m.epoch) {
    // Stale or already-activated prepare: re-ack so a recovering
    // coordinator's rounds terminate.
    ack();
    return;
  }
  if (pending_view_ && m.view && pending_view_->epoch == m.epoch &&
      pending_view_->members != m.view->members) {
    // Promise: this site already acked a different proposal for the same
    // epoch. Acking both could let two conflicting views each gather an
    // (intersecting) majority — stay silent and let one proposer give up.
    return;
  }
  pending_view_ = m.view;
  pending_kind_ = m.change;
  pending_subject_ = m.subject;
  pending_coord_ = m.from;
  if (m.subject == id_ && m.change == ReconfigKind::kRetire) {
    // Retirement drains this site: new update submissions are refused while
    // in-flight certification completes. The site leaves quorums only when
    // the new view activates.
    draining_ = true;
    ack();
    return;
  }
  if (m.subject == id_ && m.change == ReconfigKind::kJoin) {
    if (transfer_done_ && transfer_epoch_ == m.epoch) {
      ack();  // a lost ack: the transfer already completed
      return;
    }
    // (Re)start the state transfer. Every prepare round restarts it from
    // scratch — that is the retry path for lost snapshot messages and for
    // donors (or this joiner) crashing mid-transfer.
    transfer_epoch_ = m.epoch;
    transfer_done_ = false;
    transfer_waiting_.clear();
    const MembershipView& base = cl_.view(m.epoch > 0 ? m.epoch - 1 : 0);
    const auto& part = cl_.partitioner();
    // Group my hosted partitions by donor: the first live base-view member
    // replicating the partition. A partition whose only replica is this
    // site has no donor and nothing to transfer; one whose donors are all
    // currently down must wait for the next prepare round.
    std::vector<std::pair<SiteId, std::vector<PartitionId>>> donors;
    for (PartitionId p : partitions_hosted(id_)) {
      SiteId donor = kNoSite;
      bool other_replica = false;
      for (SiteId s : part.sites_of(p)) {
        if (s == id_ || !base.contains(s)) continue;
        other_replica = true;
        if (cl_.site_down(s)) continue;
        donor = s;
        break;
      }
      if (donor == kNoSite) {
        if (other_replica) return;  // all donors down: wait for a retry
        continue;                   // sole replica: nothing to transfer
      }
      auto it = std::find_if(donors.begin(), donors.end(),
                             [donor](const auto& d) { return d.first == donor; });
      if (it == donors.end())
        donors.push_back({donor, {p}});
      else
        it->second.push_back(p);
    }
    if (donors.empty()) {
      transfer_done_ = true;
      ack();
      return;
    }
    for (auto& [donor, ps] : donors) {
      transfer_waiting_.push_back(donor);
      ReconfigMsg req;
      req.kind = ReconfigMsg::Kind::kSnapRequest;
      req.epoch = m.epoch;
      req.from = id_;
      req.parts = std::move(ps);
      req.bytes = 8u * req.parts.size();
      cl_.send_reconfig(id_, donor, std::move(req));
    }
    return;  // the ack is deferred until every snapshot reply arrived
  }
  ack();
}

void Replica::handle_snap_request(const ReconfigMsg& m) {
  // Build the snapshot in one handler (atomic under the single-threaded
  // site contract): the requested partitions' chains, the replica-wide
  // version-index entries, and the WAL tail — then mark the log and
  // compact it, making the shipped state the new snapshot point.
  const auto& part = cl_.partitioner();
  auto snap = std::make_shared<StoreSnapshot>();
  for (ObjectId o : db_.object_ids_sorted()) {
    const PartitionId p = part.partition_of(o);
    if (std::find(m.parts.begin(), m.parts.end(), p) == m.parts.end())
      continue;
    snap->chains.emplace_back(o, *db_.chain(o));
    if (auto it = latest_seq_.find(o); it != latest_seq_.end())
      snap->latest_seq.emplace_back(o, it->second);
  }
  if (auto* wal = cl_.wal(id_)) {
    snap->wal_tail = wal->serialize_tail();
    wal->mark_snapshot();
    wal->compact();
  }
  // Stream every subsequent apply of these partitions to the joiner until
  // its epoch activates (a re-request just resets the registration).
  stream_to_.erase(std::remove_if(stream_to_.begin(), stream_to_.end(),
                                  [&m](const StreamReg& r) {
                                    return r.to == m.from;
                                  }),
                   stream_to_.end());
  stream_to_.push_back(StreamReg{m.from, m.epoch, m.parts});

  std::uint64_t bytes = net::wire::control() + snap->wal_tail.size();
  bytes += snap->chains.size() * (net::wire::kKey + net::wire::kPayload + 32);
  // Snapshot assembly costs real CPU at the donor (one apply-sized charge
  // per shipped object), off the reply's critical path.
  const SimDuration cost =
      cl_.cost().apply_per_obj * static_cast<SimDuration>(snap->chains.size());
  cl_.run_local(id_, cost, [] {});

  ReconfigMsg reply;
  reply.kind = ReconfigMsg::Kind::kSnapReply;
  reply.epoch = m.epoch;
  reply.from = id_;
  reply.payload = std::move(snap);
  reply.bytes = bytes;
  cl_.send_reconfig(id_, m.from, std::move(reply));
}

void Replica::handle_snap_reply(const ReconfigMsg& m) {
  if (m.epoch != transfer_epoch_ || transfer_done_) return;
  const auto it =
      std::find(transfer_waiting_.begin(), transfer_waiting_.end(), m.from);
  if (it == transfer_waiting_.end()) return;  // straggler from an old round
  transfer_waiting_.erase(it);

  const auto snap = std::static_pointer_cast<const StoreSnapshot>(m.payload);
  for (const auto& [o, chain] : snap->chains) {
    if (!chain.empty())
      // Advance this site's clocks past the adopted versions BEFORE they
      // land, so snapshots minted here can actually see them (a joiner
      // starting at vector time zero would find every adopted version
      // invisible).
      cl_.oracle().on_propagate(id_, chain.latest().stamp);
    db_.adopt_chain(o, chain);
  }
  if (cl_.spec().track_all_objects)
    for (const auto& [o, s] : snap->latest_seq)
      latest_seq_[o] = std::max(latest_seq_[o], s);
  // WAL-tail catch-up: adopt the donor's decided outcomes so straggler
  // votes and redelivered terminations are answered with the decision
  // instead of reopening certification here.
  for (const auto& rec : store::deserialize_records(snap->wal_tail)) {
    if (rec.kind != store::WalRecord::Kind::kDecision) continue;
    if (decided_cache_.count(rec.txn) != 0) continue;
    decided_cache_.emplace(
        rec.txn, Outcome{rec.flag, rec.flag ? obs::AbortReason::kNone
                                            : obs::AbortReason::kCertConflict});
    decided_fifo_.push_back(rec.txn);
    if (decided_fifo_.size() > kDecidedCacheCap) {
      decided_cache_.erase(decided_fifo_.front());
      decided_fifo_.pop_front();
    }
  }
  if (transfer_waiting_.empty()) {
    transfer_done_ = true;
    joiner_maybe_ack();
  }
}

void Replica::joiner_maybe_ack() {
  if (!transfer_done_ || pending_coord_ == kNoSite) return;
  GDUR_DEBUG("site %d: state transfer for epoch %u complete",
             static_cast<int>(id_), transfer_epoch_);
  ReconfigMsg a;
  a.kind = ReconfigMsg::Kind::kAck;
  a.epoch = transfer_epoch_;
  a.from = id_;
  a.bytes = 8;
  cl_.send_reconfig(id_, pending_coord_, std::move(a));
}

void Replica::apply_remote_commit(const TxnPtr& t) {
  if (t == nullptr || known_outcome(t->id) != nullptr) return;
  // A forwarded commit is an agreed outcome: decide() installs the writes
  // and caches the decision, so a direct redelivery is a no-op later.
  decide(t, true);
}

}  // namespace gdur::core

// Library of certify() plug-ins (§6).
//
// A certification test runs at one replica and inspects only the objects
// that replica hosts; the voting quorums of Algorithm 3/4 guarantee that
// every certifying object is checked by at least one (GC) or all (2PC) of
// its replicas.
#pragma once

#include "common/analysis_annotations.h"
#include "core/protocol_spec.h"

namespace gdur::core::certifiers {

/// Always passes. RC and the GMU** ablation.
GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
bool always(const CertContext& ctx);

/// SER-style test (P-Store Alg. 5 line 7, GMU Alg. 7 line 6): every object
/// read must still be at the version the transaction observed — i.e. no
/// concurrently committed transaction installed a newer version.
GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
bool reads_latest(const CertContext& ctx);

/// Write-write test against the snapshot (Walter Alg. 9 line 6, Serrano
/// Alg. 8 line 7): for every locally hosted written object, the latest
/// committed version must be visible in the transaction's snapshot.
GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
bool ww_visible(const CertContext& ctx);

/// Write-write test for NMSI (Jessy2pc Alg. 10 line 6): like ww_visible,
/// but a version that committed before the transaction began is never a
/// conflict even if the (freely chosen) snapshot does not include it.
GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
bool ww_nmsi(const CertContext& ctx);

/// Serrano's local variant of ww_visible, using the replica-wide version
/// index (spec.track_all_objects) so every written object can be checked at
/// every site, deterministically.
GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
bool ww_all_objects(const CertContext& ctx);

/// S-DUR (Alg. 6 line 7): no committed transaction concurrent with T may
/// conflict with it (read-write or write-read).
GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
bool sdur(const CertContext& ctx);

}  // namespace gdur::core::certifiers

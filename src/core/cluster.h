// Cluster — an assembled G-DUR deployment.
//
// Owns the simulator, the transport, the versioning oracle, the replicas,
// and the group-communication primitives, wired according to one
// ProtocolSpec. The client-facing API (begin/read/write/commit) models
// client machines co-located with each site, as in the paper's testbed:
// every operation is a LAN round trip to the coordinating replica.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/analysis_annotations.h"
#include "comm/atomic_broadcast.h"
#include "comm/reliable_multicast.h"
#include "comm/skeen_multicast.h"
#include "core/membership.h"
#include "core/protocol_spec.h"
#include "core/replica.h"
#include "core/transaction.h"
#include "net/transport.h"
#include "obs/plane.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "store/partitioner.h"
#include "store/wal.h"
#include "versioning/oracle.h"

namespace gdur::core {

struct ClusterConfig {
  int sites = 4;
  int replication = 1;  // 1 = Disaster Prone, 2 = Disaster Tolerant (§8.1)
  std::uint64_t objects_per_site = 100'000;
  int partitions_per_site = 1;
  int cores_per_site = 4;
  /// Intra-replica keyspace shards (P-DUR, DESIGN.md §14): each replica's
  /// certification pipeline splits into this many parallel lanes, one per
  /// keyspace slice (object o belongs to shard o mod S). Clamped to
  /// [1, core::kMaxShardsPerSite]. 1 = the serial pipeline; runs are then
  /// byte-identical to a build without the sharding layer.
  int shards_per_site = 1;
  /// Model per-shard execution lanes when shards_per_site > 1. Sim: certify
  /// and apply charges land on per-(site,shard) lane clocks instead of the
  /// shared site CPU; live: certification runs on per-shard threads. Off =
  /// sharded *data path* under the serial schedule — decisions still come
  /// from combined per-shard sub-votes, but event timing stays byte-
  /// identical to shards_per_site = 1 (the equivalence-test mode).
  bool shard_lanes = true;
  /// Live mode only: shard certifier threads wait out the analytic certify
  /// service time before computing the verdict, modeling a certification-
  /// bound store without assuming host core count (EXPERIMENTS.md §shards).
  bool live_certify_model = false;
  sim::CostModel cost{};
  SimDuration min_latency = milliseconds(10);
  SimDuration max_latency = milliseconds(20);
  std::uint64_t seed = 1;
  /// Durable mode (§7's persistence layer): termination-protocol state
  /// changes are logged to a per-site write-ahead log before they take
  /// effect, as §5.3 requires for 2PC in the crash-recovery model.
  bool durable = false;
  store::WalConfig wal{};
  /// Declarative fault plan (sim/fault). Empty = fault-free run. Crash
  /// windows require `durable = true`: recovery replays the WAL.
  sim::FaultPlan faults{};
  /// Coordinator-side termination timeout: an in-doubt transaction whose
  /// outcome is unknown this long after its termination was multicast is
  /// resolved (2PC/Paxos: presumed abort; GC: vote re-announcement).
  /// 0 disables; required for liveness whenever `faults` can lose messages.
  SimDuration term_timeout = 0;
  /// Client-side commit timeout: a client whose commit reply is lost gives
  /// up after this long and counts the transaction as timed out
  /// (conservatively non-committed). 0 disables.
  SimDuration client_timeout = 0;
  /// Initial interval for protocol-level vote re-announcement (doubles up
  /// to 8x while a transaction stays undecided).
  SimDuration vote_retry = milliseconds(150);
  /// Trace recorder to attach (obs), or nullptr for a trace-free run. Not
  /// owned; must outlive the cluster. Every hook in the engine is a null
  /// check on this pointer, so a trace-free run is byte-identical to one
  /// built before the observability layer existed.
  obs::TraceRecorder* trace = nullptr;
  /// Production observability plane (obs/plane.h): always-on counters,
  /// flight recorder, stall watchdog and online invariant monitor. Not
  /// owned; must outlive the cluster. Like `trace`, every hook is a null
  /// check, so a plane-free run is byte-identical to one without the
  /// plane — and unlike `trace`, the plane is cheap enough to leave on in
  /// a live deployment.
  obs::ObsPlane* plane = nullptr;
  /// Online-reconfiguration schedule (core/membership). Empty = the fixed
  /// membership of the paper's experiments; runs are then byte-identical to
  /// a build without the membership layer. With a plan, sites join/retire
  /// mid-run through the epoch protocol of DESIGN.md §12.
  ReconfigPlan reconfig{};
};

class Cluster {
 public:
  Cluster(const ClusterConfig& cfg, ProtocolSpec spec);
  virtual ~Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ------------------------------------------------------------------
  // Client API (each call is one client->replica->client round trip).
  // ------------------------------------------------------------------
  virtual void begin(SiteId coord, std::function<void(MutTxnPtr)> cb);
  virtual void read(SiteId coord, const MutTxnPtr& t, ObjectId x,
                    std::function<void(bool)> cb);
  virtual void write(SiteId coord, const MutTxnPtr& t, ObjectId x,
                     std::function<void()> cb);
  virtual void commit(SiteId coord, const MutTxnPtr& t,
                      std::function<void(bool)> cb);

  // ------------------------------------------------------------------
  // Transport/scheduler seam. Replica and the client flow talk to the
  // deployment exclusively through these virtuals, so one protocol engine
  // runs unchanged on the deterministic simulator (this class) and on real
  // sockets and threads (live::LiveCluster). The contract either backend
  // must honor: exactly-once delivery, FIFO per (src,dst) link, and all
  // handlers of one site running single-threaded.
  // ------------------------------------------------------------------
  /// Current time: virtual simulated time here, wall clock in live mode.
  [[nodiscard]] virtual SimTime now() const { return sim_.now(); }
  /// Runs `fn` on site `at`'s execution context after `delay`.
  virtual void run_after(SiteId at, SimDuration delay,
                         std::function<void()> fn);
  /// Runs `fn` on site `at` after charging `service` CPU time (live mode
  /// spends real CPU instead and ignores the analytic charge).
  virtual void run_local(SiteId at, SimDuration service,
                         std::function<void()> fn);
  /// Certification seam (DESIGN.md §14): evaluates `compute()` for `t` on
  /// site `at` after charging `service`, then feeds the verdict to `done`
  /// on the site's execution context. The serial path (shards_per_site = 1
  /// or shard_lanes off) is exactly run_local — byte-identical schedules.
  /// With lanes, the sim charges the lanes of `t`'s touched shards (sorted
  /// shard order) and live mode runs `compute` on a shard thread holding
  /// the touched shard locks in ascending order.
  virtual void run_certify(SiteId at, const TxnPtr& t, SimDuration service,
                           std::function<bool()> compute,
                           std::function<void(bool)> done);
  /// Apply-path charge for installing `t`'s write set at `at` (the state
  /// change itself already happened synchronously). Serial path = plain
  /// run_local charge; lanes charge the write-set shards' lanes.
  virtual void run_apply(SiteId at, const TxnPtr& t, SimDuration cost);
  /// Runs `fn` (apply-side mutation of shard-partitioned replica state)
  /// excluded against concurrently-running shard certifiers: live mode
  /// holds every shard lock of `at` in ascending order; the sim and the
  /// serial path call `fn` directly.
  virtual void with_apply_exclusion(SiteId at,
                                    const std::function<void()>& fn);
  /// Is site `s` currently crashed? (Always false in live mode: the live
  /// runtime is fault-free.)
  [[nodiscard]] virtual bool site_down(SiteId s) const;
  /// Remote read (Algorithm 1 lines 13, 26-30): ships `t`'s snapshot to
  /// `target`, serves the read there, applies the chosen version at
  /// `from` via Replica::record_read, then runs `cb`.
  virtual void remote_read(SiteId from, SiteId target, const MutTxnPtr& t,
                           ObjectId x, std::function<void(bool)> cb);

  // ------------------------------------------------------------------
  // Wiring used by Replica and by protocol plug-ins.
  // ------------------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Transport& transport() { return *net_; }
  /// Analytic cost model (CPU service times). Shared by both backends: the
  /// sim charges these durations, live mode uses them only where a real
  /// cost exists (e.g. nothing — real CPU is spent instead).
  [[nodiscard]] const sim::CostModel& cost() const { return net_->cost(); }
  [[nodiscard]] const store::Partitioner& partitioner() const { return part_; }
  [[nodiscard]] versioning::VersionOracle& oracle() { return *oracle_; }
  [[nodiscard]] const ProtocolSpec& spec() const { return spec_; }
  [[nodiscard]] Replica& replica(SiteId s) { return *replicas_[s]; }
  [[nodiscard]] int sites() const { return part_.sites(); }
  /// Intra-replica shard count (>= 1; see ClusterConfig::shards_per_site).
  [[nodiscard]] int shards_per_site() const { return shards_; }
  /// Are per-shard execution lanes modeled (shards > 1 and lanes on)?
  [[nodiscard]] bool shard_lanes_enabled() const {
    return shard_lanes_ && shards_ > 1;
  }

  // ------------------------------------------------------------------
  // Membership (core/membership, DESIGN.md §12).
  // ------------------------------------------------------------------
  /// Log of agreed views. Shared by all replicas: views are appended at the
  /// reconfiguration protocol's decision point, so indexing it by a
  /// transaction's epoch is sound everywhere.
  [[nodiscard]] MembershipLog& membership() { return members_; }
  /// Agreed view of epoch `e` (clamped to the latest agreed view).
  [[nodiscard]] const MembershipView& view(EpochId e) const {
    return members_.view(e);
  }
  /// True when a reconfiguration plan drives this run. All epoch guards are
  /// behind this flag, keeping fixed-membership runs byte-identical.
  [[nodiscard]] bool reconfig_enabled() const { return reconfig_enabled_; }
  /// Reconfiguration-protocol message (prepare/ack/activate/state transfer).
  /// Virtual for the same reason as the other sends: the live backend ships
  /// it as real bytes.
  virtual void send_reconfig(SiteId from, SiteId to, ReconfigMsg m);

  /// Certification leader of partition `p` for transactions of epoch `e`.
  /// Group-communication certification counts only leader votes once
  /// reconfiguration is on: a replica that joined mid-run never witnessed
  /// the ordered certifications delivered before its join, so its verdicts
  /// on transactions overlapping that history can diverge from established
  /// replicas' — and S-DUR-style "any replica covers / any false aborts"
  /// outcome evaluation then decides *differently at different sites*. One
  /// deterministic authoritative voter per partition restores a
  /// site-independent outcome function.
  ///
  /// Leadership rotates deterministically by (epoch, partition) over the
  /// partition's *established* members of `view(e)` — those whose tenure
  /// predates the epoch, so they witnessed every ordered certification a
  /// transaction of `e` can overlap (fresh joiners stay ineligible until
  /// the next epoch). Every site evaluates the same pure function of the
  /// shared membership log, so the leader is site-independent per epoch but
  /// no longer pinned: certification load spreads across the replica set as
  /// epochs advance, instead of the longest-tenured site absorbing all of
  /// it. kNoSite when no replica of `p` is in the view.
  [[nodiscard]] SiteId cert_leader(PartitionId p, EpochId e) const;

  /// Versioning metadata bytes attached to messages under this spec.
  [[nodiscard]] std::uint64_t meta_bytes() const;

  /// Per-site write-ahead log, or nullptr when running in-memory.
  [[nodiscard]] store::WriteAheadLog* wal(SiteId s) {
    return wals_.empty() ? nullptr : wals_[s].get();
  }

  /// Fault injector driving this run, or nullptr on fault-free runs.
  [[nodiscard]] sim::FaultInjector* fault_injector() const {
    return fault_.get();
  }

  /// Attached trace recorder, or nullptr. Hooks must guard on this.
  [[nodiscard]] obs::TraceRecorder* trace() const { return trace_; }
  /// Attached observability plane, or nullptr. Hooks must guard on this.
  [[nodiscard]] obs::ObsPlane* plane() const { return plane_; }
  [[nodiscard]] SimDuration term_timeout() const { return term_timeout_; }
  [[nodiscard]] SimDuration client_timeout() const { return client_timeout_; }
  [[nodiscard]] SimDuration vote_retry() const { return vote_retry_; }
  /// True when replicas must arm termination timeouts / vote retries.
  [[nodiscard]] bool fault_tolerance_on() const {
    return fault_ != nullptr && term_timeout_ > 0;
  }

  /// Propagates `t` to replicas(certifying_obj(t)) with the spec's xcast
  /// (Algorithm 2 line 15). `dests` must be the sorted destination sites.
  virtual void xcast_term(const TxnPtr& t, std::vector<SiteId> dests);

  virtual void send_vote(SiteId from, SiteId to, const TxnPtr& t, bool vote);
  virtual void send_decision(SiteId from, SiteId to, const TxnPtr& t,
                             bool commit);

  /// Paxos Commit messaging (AC = paxos): a participant's vote travels to
  /// every acceptor (2a), acceptances travel to the coordinator (2b).
  virtual void send_paxos_2a(SiteId from, SiteId acceptor, const TxnPtr& t,
                             SiteId participant, bool vote);
  virtual void send_paxos_2b(SiteId from, SiteId to, const TxnPtr& t,
                             SiteId participant, bool vote, SiteId acceptor);

  /// Background propagation of a commit's version number (Walter / S-DUR
  /// post_commit): `dests` learn t.stamp via oracle().on_propagate.
  virtual void propagate_stamp(SiteId from, const TxnRecord& t,
                               const std::vector<SiteId>& dests);

  /// Replica of `x` closest to `from` (for remote reads).
  [[nodiscard]] SiteId nearest_replica(SiteId from, ObjectId x) const;

  /// A committed version installed at a replica (for history checking).
  struct InstallEvent {
    ObjectId obj;
    TxnId writer;
    std::uint64_t pidx;
    SiteId site;
    SimTime time;
  };
  /// Observer invoked on every version install (tests/checker only; adds
  /// no cost when unset).
  void set_install_observer(std::function<void(const InstallEvent&)> obs) {
    install_observer_ = std::move(obs);
  }
  [[nodiscard]] const std::function<void(const InstallEvent&)>&
  install_observer() const {
    return install_observer_;
  }

  /// A certification vote leaving `voter` (2PC vote or Paxos 2a proposal;
  /// re-announcements included, at send time — losses happen later).
  struct VoteEvent {
    SiteId voter;
    SiteId to;
    TxnId txn;
    bool vote;
  };
  /// Observer invoked on every outgoing vote (tests only; adds no cost when
  /// unset). Lets fault tests assert a site never contradicts itself: every
  /// legitimate resend carries the same value for the same (voter, txn).
  void set_vote_observer(std::function<void(const VoteEvent&)> obs) {
    vote_observer_ = std::move(obs);
  }

 protected:
  [[nodiscard]] std::uint64_t term_bytes(const TxnRecord& t) const;
  /// Drives one scheduled membership change: picks a live coordinator and
  /// retries until the change shows up in the latest agreed view (or the
  /// attempt budget runs out — a fault plan can make a change impossible).
  void drive_reconfig(const ReconfigAction& a, int attempt);
  static constexpr int kMaxDriveAttempts = 64;

  /// Sim lane clock for (site, shard): the time that shard's certifier/
  /// applier lane becomes free. Sized sites * shards_ when lanes are on.
  /// Simulator-thread-only (gdur-thread-confinement, lane "sim-thread"):
  /// lane accounting is scheduling state, never read by live threads.
  [[nodiscard]] GDUR_CONFINED("sim-thread") SimTime& lane(SiteId at,
                                                          int shard) {
    return lane_free_[static_cast<std::size_t>(at) *
                          static_cast<std::size_t>(shards_) +
                      static_cast<std::size_t>(shard)];
  }

  ProtocolSpec spec_;
  sim::Simulator sim_;
  store::Partitioner part_;
  int shards_ = 1;
  bool shard_lanes_ = true;
  bool live_certify_model_ = false;
  GDUR_CONFINED("sim-thread") std::vector<SimTime> lane_free_;
  std::unique_ptr<net::Transport> net_;
  std::unique_ptr<versioning::VersionOracle> oracle_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::unique_ptr<comm::AtomicBroadcast> ab_;
  std::unique_ptr<comm::SkeenMulticast> skeen_;
  std::unique_ptr<comm::ReliableMulticast> rm_term_;
  std::unique_ptr<comm::ReliableMulticast> rm_bg_;
  std::uint64_t mcast_ids_ = 0;
  std::vector<std::unique_ptr<store::WriteAheadLog>> wals_;
  MembershipLog members_;
  bool reconfig_enabled_ = false;
  std::unique_ptr<sim::FaultInjector> fault_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::ObsPlane* plane_ = nullptr;
  SimDuration term_timeout_ = 0;
  SimDuration client_timeout_ = 0;
  SimDuration vote_retry_ = 0;
  std::function<void(const InstallEvent&)> install_observer_;
  std::function<void(const VoteEvent&)> vote_observer_;
};

}  // namespace gdur::core

#include "core/cluster.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "core/shard.h"
#include "net/wire.h"

namespace gdur::core {

namespace {
std::uint64_t mcast_id_of(const TxnId& id) {
  return (static_cast<std::uint64_t>(id.coord) << 44) ^ id.seq;
}
}  // namespace

Cluster::Cluster(const ClusterConfig& cfg, ProtocolSpec spec)
    : spec_(std::move(spec)),
      part_(cfg.sites, cfg.replication,
            cfg.objects_per_site * static_cast<std::uint64_t>(cfg.sites),
            cfg.partitions_per_site) {
  assert(spec_.commute && "protocol must define commute()");
  assert(spec_.certify && "protocol must define certify()");

  auto topo = net::Topology::geo(cfg.sites, cfg.min_latency, cfg.max_latency,
                                 cfg.seed * 31 + 7);
  net_ = std::make_unique<net::Transport>(sim_, std::move(topo), cfg.cost,
                                          cfg.cores_per_site,
                                          cfg.seed * 131 + 11);
  oracle_ = versioning::make_oracle(spec_.theta, part_);

  shards_ = std::clamp(cfg.shards_per_site, 1, kMaxShardsPerSite);
  shard_lanes_ = cfg.shard_lanes;
  live_certify_model_ = cfg.live_certify_model;
  if (shard_lanes_enabled())
    lane_free_.assign(static_cast<std::size_t>(cfg.sites) *
                          static_cast<std::size_t>(shards_),
                      SimTime{0});

  // Observability attachments are wired before the replicas exist: each
  // replica caches its plane slot/ring pointers at construction.
  plane_ = cfg.plane;
  // A sharded replica records into its site slot from several certifier
  // lanes (real threads in live mode), so the single-writer fast mode's
  // plain load/store counters would silently lose increments. Force it off
  // whenever shards are on, whatever the plane was configured with.
  if (plane_ != nullptr && shards_ > 1)
    for (std::size_t i = 0; i < plane_->stats().slots(); ++i)
      plane_->stats().slot(i).set_single_writer(false);

  replicas_.reserve(static_cast<std::size_t>(cfg.sites));
  // gdur-lint: allow(membership/hardcoded-sites) bootstrap builds one replica per universe site; membership fences participation
  for (SiteId s = 0; s < static_cast<SiteId>(cfg.sites); ++s)
    replicas_.push_back(std::make_unique<Replica>(*this, s));

  const auto deliver_term = [this](SiteId at, const comm::McastMsg& m) {
    replicas_[at]->on_term_delivered(
        std::static_pointer_cast<const TxnRecord>(m.payload));
  };
  ab_ = std::make_unique<comm::AtomicBroadcast>(*net_, deliver_term);
  skeen_ = std::make_unique<comm::SkeenMulticast>(*net_, deliver_term,
                                                  spec_.ft_multicast);
  rm_term_ = std::make_unique<comm::ReliableMulticast>(*net_, deliver_term);
  rm_bg_ = std::make_unique<comm::ReliableMulticast>(
      *net_, [this](SiteId at, const comm::McastMsg& m) {
        oracle_->on_propagate(at, m.as<versioning::Stamp>());
      });

  if (cfg.durable) {
    wals_.reserve(static_cast<std::size_t>(cfg.sites));
    // gdur-lint: allow(membership/hardcoded-sites) bootstrap: every universe site gets a log it will need if it ever joins
    for (int s = 0; s < cfg.sites; ++s)
      wals_.push_back(std::make_unique<store::WriteAheadLog>(sim_, cfg.wal));
  }

  term_timeout_ = cfg.term_timeout;
  client_timeout_ = cfg.client_timeout;
  vote_retry_ = cfg.vote_retry;
  trace_ = cfg.trace;
  net_->set_trace(trace_);
  net_->set_plane(plane_);
  if (!cfg.faults.empty()) {
    assert((cfg.faults.crashes.empty() || cfg.durable) &&
           "crash windows need durable=true: recovery replays the WAL");
    fault_ = std::make_unique<sim::FaultInjector>(cfg.faults,
                                                  cfg.seed * 97 + 3);
    net_->set_fault_injector(fault_.get());
    for (const auto& c : cfg.faults.crashes) {
      sim_.at(c.at, [this, c] {
        net_->cpu(c.site).crash_until(c.recover_at);
        if (auto* w = wal(c.site)) w->on_crash();
        replicas_[c.site]->on_crash();
        if (trace_ != nullptr)
          trace_->fault(obs::FaultKind::kCrash, c.site, kNoSite, sim_.now());
        if (plane_ != nullptr) {
          plane_->ring(c.site).append("crash", sim_.now(), c.site);
          plane_->dump_flight("crash");
        }
      });
      sim_.at(c.recover_at, [this, s = c.site] {
        replicas_[s]->on_recover();
        if (trace_ != nullptr)
          trace_->fault(obs::FaultKind::kRecovery, s, kNoSite, sim_.now());
        if (plane_ != nullptr)
          plane_->ring(s).append("recover", sim_.now(), s);
      });
    }
  }

  if (!cfg.reconfig.empty()) {
    reconfig_enabled_ = true;
    members_ = MembershipLog(cfg.sites, cfg.reconfig.initial_members);
    for (const auto& a : cfg.reconfig.actions)
      sim_.at(a.at, [this, a] { drive_reconfig(a, 0); });
  }
}

void Cluster::drive_reconfig(const ReconfigAction& a, int attempt) {
  const MembershipView& latest = members_.latest();
  // Moot: the change is already reflected in the latest agreed view.
  if ((a.kind == ReconfigKind::kJoin) == latest.contains(a.site)) return;
  if (attempt >= kMaxDriveAttempts) return;  // the fault plan never allowed it
  // Coordinator: the first live member of the latest view that is not the
  // subject itself.
  SiteId coord = kNoSite;
  for (SiteId s : latest.members) {
    if (s != a.site && !site_down(s)) {
      coord = s;
      break;
    }
  }
  const bool accepted =
      coord != kNoSite && replicas_[coord]->reconfig_begin(a.kind, a.site);
  // Always re-check later: this retries a refused start, and also restarts
  // a proposal that died with its coordinator (recovery abandons it durably
  // when it can no longer be the next epoch).
  const SimDuration delay =
      std::max<SimDuration>(vote_retry_ * (accepted ? 32 : 4),
                            milliseconds(50));
  sim_.after(delay, [this, a, attempt] { drive_reconfig(a, attempt + 1); });
}

void Cluster::send_reconfig(SiteId from, SiteId to, ReconfigMsg m) {
  const std::uint64_t bytes = net::wire::control() + 16 + m.bytes;
  net_->send(
      from, to, bytes,
      [this, to, m = std::move(m)]() mutable {
        replicas_[to]->on_reconfig(std::move(m));
      },
      obs::MsgClass::kControl);
}

SiteId Cluster::cert_leader(PartitionId p, EpochId e) const {
  const MembershipView& v = view(e);
  // Eligible: *established* members of the partition — tenure predating the
  // view's epoch (every member qualifies in an epoch-0 view), so the leader
  // witnessed all ordered certifications a transaction of `e` can overlap.
  // Tenure is computed from the shared log of agreed views; every site
  // resolves the same candidate list.
  std::vector<SiteId> established;
  std::vector<SiteId> all;
  for (SiteId s : part_.sites_of(p)) {
    if (!v.contains(s)) continue;
    all.push_back(s);
    EpochId since = v.epoch;  // v.epoch, not e: view() clamps future epochs
    while (since > 0 && members_.view(since - 1).contains(s)) --since;
    if (since < v.epoch || v.epoch == 0) established.push_back(s);
  }
  // A view whose partition members are all fresh joiners has no better
  // choice: any agreed member serves (the view itself is the agreement).
  const std::vector<SiteId>& cands = established.empty() ? all : established;
  if (cands.empty()) return kNoSite;
  // Rotate by (epoch, partition): still a pure function of the shared
  // membership log — site-independent within an epoch — but the role moves
  // across the candidate set as epochs advance and across partitions within
  // one epoch, instead of pinning all certification load on the
  // longest-tenured site.
  return cands[(static_cast<std::size_t>(v.epoch) +
                static_cast<std::size_t>(p)) %
               cands.size()];
}

// ---------------------------------------------------------------------------
// Transport/scheduler seam — simulator backend.
// ---------------------------------------------------------------------------

void Cluster::run_after(SiteId /*at*/, SimDuration delay,
                        std::function<void()> fn) {
  sim_.after(delay, std::move(fn));
}

void Cluster::run_local(SiteId at, SimDuration service,
                        std::function<void()> fn) {
  net_->local_work(at, service, std::move(fn));
}

void Cluster::run_certify(SiteId at, const TxnPtr& t, SimDuration service,
                          std::function<bool()> compute,
                          std::function<void(bool)> done) {
  if (!shard_lanes_enabled()) {
    // Serial pipeline: one local-work charge, verdict computed inline —
    // byte-identical to the pre-sharding cast_vote schedule.
    run_local(at, service,
              [compute = std::move(compute), done = std::move(done)] {
                done(compute());
              });
    return;
  }
  // Per-shard lanes: the charge occupies the lanes of every touched shard
  // (ascending shard order — the global shard order), starting when the
  // last of them frees up. Single-shard transactions on distinct shards
  // overlap fully; cross-shard ones serialize exactly on their overlap.
  // Scheduling via sim_.at keeps determinism: equal finish times tie-break
  // by event sequence number, which is itself deterministic.
  //
  // Crash semantics mirror CpuResource::crash_until exactly: a verdict
  // submitted while the site is down vanishes, and one in flight across a
  // crash is dead — firing it would vote from post-recovery (or cleared)
  // state that no longer matches the queue entry it certified.
  auto& cpu = net_->cpu(at);
  if (cpu.down_at(sim_.now())) return;
  const std::uint64_t cpu_epoch = cpu.epoch();
  const ShardSet touched = touched_shards(*t, shards_);
  SimTime start = sim_.now();
  touched.for_each(
      [&](int sh) { start = std::max(start, lane(at, sh)); });
  const SimTime finish = start + service;
  touched.for_each([&](int sh) { lane(at, sh) = finish; });
  sim_.at(finish, [this, at, cpu_epoch, compute = std::move(compute),
                   done = std::move(done)] {
    if (net_->cpu(at).epoch() != cpu_epoch) return;  // crashed since
    done(compute());
  });
}

void Cluster::run_apply(SiteId at, const TxnPtr& t, SimDuration cost) {
  if (!shard_lanes_enabled()) {
    run_local(at, cost, [] {});
    return;
  }
  // The installs already happened synchronously (as in the serial path);
  // the analytic charge occupies the write-set shards' applier lanes so
  // subsequent certifications on those shards queue behind it.
  const ShardSet ws = write_shards(*t, shards_);
  SimTime start = sim_.now();
  ws.for_each([&](int sh) { start = std::max(start, lane(at, sh)); });
  const SimTime finish = start + cost;
  ws.for_each([&](int sh) { lane(at, sh) = finish; });
}

void Cluster::with_apply_exclusion(SiteId /*at*/,
                                   const std::function<void()>& fn) {
  // Sim backend: all of a site's work is one logical thread; nothing to
  // exclude. The live backend overrides this with the sorted shard locks.
  fn();
}

bool Cluster::site_down(SiteId s) const {
  return net_->cpu(s).down_at(sim_.now());
}

void Cluster::remote_read(SiteId from, SiteId target, const MutTxnPtr& t,
                          ObjectId x, std::function<void(bool)> cb) {
  // Line 13 of Algorithm 1: the request carries the snapshot; the reply
  // carries the chosen version, applied to the record at the coordinator.
  const std::uint64_t req = net::wire::read_request() + meta_bytes();
  net_->send(
      from, target, req,
      [this, from, target, t, x, cb = std::move(cb)] {
        replicas_[target]->serve_remote_read(
            from, t, x,
            [this, from, target, t, x, cb](bool ok,
                                           std::optional<store::Version> v) {
              const std::uint64_t reply = net::wire::read_reply(meta_bytes());
              net_->send(
                  target, from, reply,
                  [this, from, t, x, ok, v = std::move(v), cb] {
                    if (!ok) {
                      cb(false);
                      return;
                    }
                    replicas_[from]->record_read(t, x,
                                                 v.has_value() ? &*v : nullptr);
                    cb(true);
                  },
                  obs::MsgClass::kReadReply);
            });
      },
      obs::MsgClass::kRemoteRead);
}

std::uint64_t Cluster::meta_bytes() const {
  return spec_.send_metadata ? oracle_->metadata_bytes() : 0;
}

std::uint64_t Cluster::term_bytes(const TxnRecord& t) const {
  return net::wire::termination(t.rs.size(), t.ws.size(), meta_bytes());
}

// ---------------------------------------------------------------------------
// Client API.
// ---------------------------------------------------------------------------

void Cluster::begin(SiteId coord, std::function<void(MutTxnPtr)> cb) {
  net_->client_send(coord, net::wire::control(), [this, coord,
                                                  cb = std::move(cb)] {
    replicas_[coord]->exec_begin([this, coord, cb](MutTxnPtr t) {
      net_->send_to_client(coord, net::wire::control(),
                           [cb, t = std::move(t)] { cb(t); });
    });
  });
}

void Cluster::read(SiteId coord, const MutTxnPtr& t, ObjectId x,
                   std::function<void(bool)> cb) {
  net_->client_send(coord, net::wire::control() + net::wire::kKey,
                    [this, coord, t, x, cb = std::move(cb)] {
                      replicas_[coord]->exec_read(t, x, [this, coord,
                                                         cb](bool ok) {
                        net_->send_to_client(
                            coord, net::wire::read_reply(0),
                            [cb, ok] { cb(ok); });
                      });
                    });
}

void Cluster::write(SiteId coord, const MutTxnPtr& t, ObjectId x,
                    std::function<void()> cb) {
  net_->client_send(
      coord, net::wire::control() + net::wire::kKey + net::wire::kPayload,
      [this, coord, t, x, cb = std::move(cb)] {
        replicas_[coord]->exec_write(t, x, [this, coord, cb] {
          net_->send_to_client(coord, net::wire::control(), [cb] { cb(); });
        });
      });
}

void Cluster::commit(SiteId coord, const MutTxnPtr& t,
                     std::function<void(bool)> cb) {
  net_->client_send(coord, net::wire::control(),
                    [this, coord, t, cb = std::move(cb)] {
                      replicas_[coord]->exec_commit(t, [this, coord,
                                                        cb](bool committed) {
                        net_->send_to_client(coord, net::wire::decision(),
                                             [cb, committed] { cb(committed); });
                      });
                    });
}

// ---------------------------------------------------------------------------
// Termination wiring.
// ---------------------------------------------------------------------------

void Cluster::xcast_term(const TxnPtr& t, std::vector<SiteId> dests) {
  assert(!dests.empty());
  comm::McastMsg msg;
  msg.id = mcast_id_of(t->id);
  msg.origin = t->id.coord;
  msg.dests = std::move(dests);
  msg.bytes = term_bytes(*t);
  msg.payload = t;
  if (spec_.ac == AcKind::kGroupComm &&
      spec_.xcast != XcastKind::kAtomicBroadcast) {
    // Genuine multicast addresses replica groups: the primary of each
    // certifying partition proposes on its group's behalf, so the failure
    // of another group member cannot block ordering.
    const auto cs = certifying_objects(spec_, *t, part_);
    std::vector<SiteId> proposers;
    for (ObjectId o : cs.objs) {
      const PartitionId p = part_.partition_of(o);
      SiteId prim = part_.primary_of(p);
      if (reconfig_enabled_) {
        // A retired primary cannot propose for its group: fall back to the
        // first replica of the partition inside the transaction's view.
        const MembershipView& v = view(t->epoch);
        if (!v.contains(prim)) {
          prim = kNoSite;
          for (SiteId s : part_.sites_of(p))
            if (v.contains(s)) {
              prim = s;
              break;
            }
          if (prim == kNoSite) continue;  // partition uncovered in this view
        }
      }
      if (std::find(proposers.begin(), proposers.end(), prim) ==
          proposers.end())
        proposers.push_back(prim);
    }
    std::sort(proposers.begin(), proposers.end());
    msg.proposers = std::move(proposers);
  }

  if (spec_.ac == AcKind::kTwoPhaseCommit ||
      spec_.ac == AcKind::kPaxosCommit) {
    rm_term_->multicast(msg);
    return;
  }
  switch (spec_.xcast) {
    case XcastKind::kAtomicBroadcast:
      ab_->broadcast(std::move(msg));
      break;
    case XcastKind::kAtomicMulticast:
    case XcastKind::kPairwiseMulticast:
      skeen_->multicast(msg);
      break;
  }
}

void Cluster::send_vote(SiteId from, SiteId to, const TxnPtr& t, bool vote) {
  if (vote_observer_)
    vote_observer_(VoteEvent{.voter = from, .to = to, .txn = t->id,
                             .vote = vote});
  net_->send(from, to, net::wire::vote(),
             [this, to, t, vote, from] { replicas_[to]->on_vote(t, from, vote); },
             obs::MsgClass::kVote);
}

void Cluster::send_decision(SiteId from, SiteId to, const TxnPtr& t,
                            bool commit) {
  net_->send(from, to, net::wire::decision(),
             [this, to, t, commit] { replicas_[to]->on_decision(t, commit); },
             obs::MsgClass::kDecision);
}

void Cluster::send_paxos_2a(SiteId from, SiteId acceptor, const TxnPtr& t,
                            SiteId participant, bool vote) {
  if (vote_observer_)
    vote_observer_(VoteEvent{.voter = participant, .to = acceptor,
                             .txn = t->id, .vote = vote});
  net_->send(from, acceptor, net::wire::vote(),
             [this, acceptor, t, participant, vote] {
               replicas_[acceptor]->on_paxos_2a(t, participant, vote);
             },
             obs::MsgClass::kPaxos2a);
}

void Cluster::send_paxos_2b(SiteId from, SiteId to, const TxnPtr& t,
                            SiteId participant, bool vote, SiteId acceptor) {
  net_->send(from, to, net::wire::vote(),
             [this, to, t, participant, vote, acceptor] {
               replicas_[to]->on_paxos_2b(t, participant, vote, acceptor);
             },
             obs::MsgClass::kPaxos2b);
}

void Cluster::propagate_stamp(SiteId from, const TxnRecord& t,
                              const std::vector<SiteId>& dests) {
  if (dests.empty()) return;
  comm::McastMsg msg;
  msg.id = (0x8000'0000'0000'0000ULL | ++mcast_ids_);
  msg.origin = from;
  msg.dests = dests;
  msg.bytes = net::wire::control() + 16;
  msg.cls = obs::MsgClass::kPropagation;
  msg.payload = std::make_shared<versioning::Stamp>(t.stamp);
  rm_bg_->multicast(msg);
}

SiteId Cluster::nearest_replica(SiteId from, ObjectId x) const {
  const auto replicas = part_.replicas_of_object(x);
  if (reconfig_enabled_) {
    // Only replicas in the reader's active view keep receiving installs;
    // reading elsewhere would expose stale state. `from` itself always
    // qualifies (exec_read fences non-members before getting here).
    const MembershipView& v = members_.view(replicas_[from]->epoch());
    SiteId best = kNoSite;
    SimDuration best_lat{};
    for (SiteId r : replicas) {
      if (r == from) return r;
      if (!v.contains(r)) continue;
      const SimDuration l = net_->topology().latency(from, r);
      if (best == kNoSite || l < best_lat) {
        best = r;
        best_lat = l;
      }
    }
    if (best != kNoSite) return best;
    // Coverage gap: no replica of x is in the view. Fall through to the
    // placement's nearest — the read fails at the fenced site instead of
    // silently reading stale data.
  }
  SiteId best = replicas.front();
  SimDuration best_lat = net_->topology().latency(from, best);
  for (SiteId r : replicas) {
    const SimDuration l = net_->topology().latency(from, r);
    if (r == from) return r;
    if (l < best_lat) {
      best = r;
      best_lat = l;
    }
  }
  return best;
}

}  // namespace gdur::core

#include "core/membership.h"

#include <cassert>

namespace gdur::core {

MembershipView MembershipView::with_joined(SiteId s) const {
  MembershipView v = *this;
  ++v.epoch;
  if (!v.contains(s)) {
    v.members.insert(
        std::lower_bound(v.members.begin(), v.members.end(), s), s);
  }
  return v;
}

MembershipView MembershipView::with_retired(SiteId s) const {
  MembershipView v = *this;
  ++v.epoch;
  v.members.erase(std::remove(v.members.begin(), v.members.end(), s),
                  v.members.end());
  return v;
}

MembershipLog::MembershipLog(int sites, std::vector<SiteId> initial_members) {
  MembershipView v0;
  if (initial_members.empty()) {
    v0.members.reserve(static_cast<std::size_t>(sites));
    for (SiteId s = 0; s < static_cast<SiteId>(sites); ++s)
      v0.members.push_back(s);
  } else {
    v0.members = std::move(initial_members);
    std::sort(v0.members.begin(), v0.members.end());
    v0.members.erase(std::unique(v0.members.begin(), v0.members.end()),
                     v0.members.end());
    assert(!v0.members.empty() && "initial membership cannot be empty");
  }
  views_.push_back(std::move(v0));
}

void MembershipLog::append(const MembershipView& v) {
  if (has(v.epoch)) {
    // Re-announced commit of an already-agreed view: must be identical.
    assert(views_[v.epoch].members == v.members &&
           "conflicting views agreed for one epoch");
    return;
  }
  assert(v.epoch == views_.size() && "membership epochs advance one at a time");
  views_.push_back(v);
}

}  // namespace gdur::core

// Certification data structures (see DESIGN.md §9).
//
// ConflictIndex — the per-replica ObjectId → queued-transaction map behind
// the termination protocol's commute scans. Every transaction in the
// termination queue Q is indexed under each object of its footprint
// (rs ∪ ws); the three certification sites that used to walk Q pairwise
// (preemptive-abort vote, gc_try_votes, the recovery re-vote loop) instead
// visit only the transactions that share at least one object with the
// candidate, turning an O(|Q|) scan per query into O(footprint · bucket).
// This is the object-indexed certification of Parallel Deferred Update
// Replication (Pacheco et al.), adapted to G-DUR's pluggable commute().
//
// The rewrite is exact — not a heuristic — whenever commute() is
// *footprint-local* (transactions with disjoint footprints always commute),
// which every predicate in protocol_spec.h satisfies. Specs with a custom
// non-footprint-local commute() clear ProtocolSpec::commute_footprint_local
// and fall back to the pairwise queue scan. The pairwise scan is also kept
// as a cross-checking oracle: with GDUR_VERIFY_CERT=1 in the environment
// (or set_verify_cert_for_testing), every indexed answer is recomputed
// pairwise and a mismatch aborts the process.
//
// Determinism: the index is maintained at deliver/decide/crash points that
// are themselves deterministic, buckets preserve insertion (= queue) order,
// and a query only ever feeds a boolean into the existing control flow — no
// simulator events are created or reordered. A run with the index is
// byte-identical (traces, timelines, metrics) to one with the pairwise scan.
//
// RecencyIndex — the committed-transaction side of the same pipeline:
// the bounded window of recently committed transactions and, per object,
// the recently committed update transactions that read it (S-DUR's
// write-read certification input, spec.track_committed_readers). Kept next
// to ConflictIndex so queued and committed read-tracking maintenance live
// in one place.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/obj_set.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "core/shard.h"
#include "core/transaction.h"

namespace gdur::core {

/// Is the pairwise cross-check of indexed certification answers on?
/// Reads GDUR_VERIFY_CERT from the environment once, unless a test override
/// is installed.
[[nodiscard]] bool verify_cert_enabled();
/// Test override for the cross-check (nullopt restores the env default).
void set_verify_cert_for_testing(std::optional<bool> on);

class ConflictIndex {
 public:
  struct Candidate {
    const TxnRecord& txn;
    std::uint64_t pos;  // enqueue position (monotonic per replica)
  };

  /// Indexes `t` under every object of its footprint. Returns the assigned
  /// enqueue position. `t` must not already be indexed.
  std::uint64_t add(TxnPtr t);

  /// Removes a transaction (no-op if it is not indexed).
  void remove(const TxnId& id);

  /// Drops everything (crash with state loss).
  void clear();

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool contains(const TxnId& id) const {
    return nodes_.contains(id);
  }
  /// Enqueue position of an indexed transaction (nullopt if absent). The
  /// termination queue is always sorted by position, so removal can binary
  /// search instead of scanning.
  [[nodiscard]] std::optional<std::uint64_t> position(const TxnId& id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? std::nullopt
                              : std::optional<std::uint64_t>(it->second.pos);
  }

  /// Visits every indexed transaction sharing at least one footprint object
  /// with `t` — each exactly once, buckets in footprint order, candidates in
  /// enqueue order within a bucket. Stops early (returning true) as soon as
  /// `visit` returns true.
  template <typename F>
  bool scan(const TxnRecord& t, F&& visit) const {
    const std::uint64_t epoch = ++epoch_;
    bool hit = false;
    for_each_footprint(t, [&](ObjectId o) {
      if (hit) return;
      auto it = buckets_.find(o);
      if (it == buckets_.end()) return;
      for (const Node* n : it->second) {
        if (n->visit == epoch) continue;
        n->visit = epoch;
        if (visit(Candidate{*n->txn, n->pos})) {
          hit = true;
          return;
        }
      }
    });
    return hit;
  }

  /// Shard slice of scan() (DESIGN.md §14): visits only candidates indexed
  /// under footprint objects that shard `shard` owns in an S-way keyspace
  /// split. OR-ing scan_shard over a transaction's touched shards covers
  /// exactly the candidate set scan() covers — every shared object lives in
  /// some touched shard — so a boolean query (queued_conflict) computes the
  /// same answer from the slices. A candidate sharing objects in several
  /// shards is visited once per slice (the per-call dedup epoch spans one
  /// slice only); `visit` must therefore be a pure predicate, which every
  /// caller's commute test is.
  template <typename F>
  bool scan_shard(const TxnRecord& t, int shard, int shards,
                  F&& visit) const {
    const std::uint64_t epoch = ++epoch_;
    bool hit = false;
    for_each_footprint(t, [&](ObjectId o) {
      if (hit) return;
      if (shard_of(o, shards) != shard) return;  // another slice's object
      auto it = buckets_.find(o);
      if (it == buckets_.end()) return;
      for (const Node* n : it->second) {
        if (n->visit == epoch) continue;
        n->visit = epoch;
        if (visit(Candidate{*n->txn, n->pos})) {
          hit = true;
          return;
        }
      }
    });
    return hit;
  }

 private:
  struct Node {
    TxnPtr txn;  // owns the record: an index entry outlives term-state GC
    std::uint64_t pos = 0;
    mutable std::uint64_t visit = 0;  // scan dedup epoch
  };

  /// rs(t) ∪ ws(t), each object once (two-pointer merge of the sorted sets).
  template <typename F>
  static void for_each_footprint(const TxnRecord& t, F&& f) {
    auto a = t.rs.begin();
    auto b = t.ws.begin();
    while (a != t.rs.end() || b != t.ws.end()) {
      if (b == t.ws.end() || (a != t.rs.end() && *a < *b)) {
        f(*a++);
      } else if (a == t.rs.end() || *b < *a) {
        f(*b++);
      } else {
        f(*a);
        ++a;
        ++b;
      }
    }
  }

  std::unordered_map<TxnId, Node> nodes_;
  std::unordered_map<ObjectId, std::vector<const Node*>> buckets_;
  std::uint64_t next_pos_ = 0;
  mutable std::uint64_t epoch_ = 0;
};

/// A recently committed transaction, retained for certification tests that
/// compare against concurrent committed transactions.
struct CommittedInfo {
  TxnId id;
  ObjSet rs;
  ObjSet ws;
  SimTime commit_time = 0;
};

/// A committed update transaction that read an object (S-DUR certification
/// input; identified by its stamp so visibility is testable).
struct ReaderInfo {
  SiteId origin = 0;  // stamp identity of the reading transaction
  std::uint64_t seq = 0;
  SimTime commit_time = 0;
};

class RecencyIndex {
 public:
  RecencyIndex(SimDuration window, std::size_t max_readers_per_object)
      : window_(window), max_readers_(max_readers_per_object) {}

  /// Records a commit in the sliding window and expires old entries.
  void note_commit(const TxnRecord& t, SimTime now);

  /// Records that committed update transaction `r` read `o`; keeps only the
  /// newest `max_readers_per_object` entries (older ones are visible in any
  /// live snapshot and can never fail the S-DUR write-read test).
  void note_reader(ObjectId o, const ReaderInfo& r);

  [[nodiscard]] const std::deque<CommittedInfo>& recent() const {
    return recent_;
  }
  [[nodiscard]] const std::vector<ReaderInfo>* readers(ObjectId o) const {
    auto it = readers_.find(o);
    return it == readers_.end() ? nullptr : &it->second;
  }

 private:
  SimDuration window_;
  std::size_t max_readers_;
  std::deque<CommittedInfo> recent_;
  std::unordered_map<ObjectId, std::vector<ReaderInfo>> readers_;
};

}  // namespace gdur::core

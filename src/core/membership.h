// Membership and online reconfiguration.
//
// G-DUR's evaluation assumes a fixed replica set; elasticity requires
// adding and retiring sites while transactions keep committing. The model
// here: the *site universe* (the Partitioner's placement function) is
// static, and a MembershipView — an epoch-numbered sorted subset of that
// universe — says which sites currently participate. Sites outside the
// view behave like permanently crashed sites: they receive no termination
// traffic, their votes are rejected, and quorum computations skip them.
// Placement never changes, so a join/retire moves no partition boundaries;
// with replication >= 2 every partition keeps a live replica across a
// single-site change, which is the coverage invariant the reconfiguration
// protocol relies on (see DESIGN.md §12).
//
// Views advance through an epoch-at-a-time prepare/activate protocol driven
// by one coordinating replica and logged to the write-ahead log as ordinary
// replicated commands, so a crashed coordinator resumes (prepare on the
// log, no commit yet) or re-announces (commit on the log) instead of
// leaving the cluster wedged between epochs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace gdur::core {

/// One configuration: the sorted set of participating sites at an epoch.
struct MembershipView {
  EpochId epoch = 0;
  std::vector<SiteId> members;  // sorted ascending, no duplicates

  [[nodiscard]] bool contains(SiteId s) const {
    return std::binary_search(members.begin(), members.end(), s);
  }
  [[nodiscard]] int size() const { return static_cast<int>(members.size()); }
  /// Majority quorum size of this view.
  [[nodiscard]] int majority() const { return size() / 2 + 1; }

  /// `sites` with non-members removed (preserves order).
  [[nodiscard]] std::vector<SiteId> filter(std::vector<SiteId> sites) const {
    sites.erase(std::remove_if(sites.begin(), sites.end(),
                               [this](SiteId s) { return !contains(s); }),
                sites.end());
    return sites;
  }

  /// View with `s` added (sorted) and the epoch advanced by one.
  [[nodiscard]] MembershipView with_joined(SiteId s) const;
  /// View with `s` removed and the epoch advanced by one.
  [[nodiscard]] MembershipView with_retired(SiteId s) const;
};

/// Append-only log of *agreed* views, indexed by epoch. One instance is
/// shared by all replicas of a deployment: a view is appended exactly when
/// the reconfiguration coordinator logs its commit record, i.e. at the
/// protocol's decision point, so looking a view up by a transaction's epoch
/// is sound — the transaction can only carry an epoch whose view was agreed
/// before the transaction was submitted. (Per-replica *activation* of an
/// epoch remains genuinely distributed state, tracked by core::Replica.)
class MembershipLog {
 public:
  MembershipLog() { views_.push_back(MembershipView{}); }
  MembershipLog(int sites, std::vector<SiteId> initial_members);

  [[nodiscard]] const MembershipView& view(EpochId e) const {
    // Clamp: an epoch from a corrupted or future-dated message maps to the
    // latest agreed view instead of reading past the end.
    const auto i = std::min<std::size_t>(e, views_.size() - 1);
    return views_[i];
  }
  [[nodiscard]] const MembershipView& latest() const { return views_.back(); }
  [[nodiscard]] EpochId latest_epoch() const { return latest().epoch; }
  [[nodiscard]] bool has(EpochId e) const { return e < views_.size(); }

  /// Records an agreed view. Idempotent for re-announced commits; the epoch
  /// must extend the log by exactly one when new.
  void append(const MembershipView& v);

 private:
  std::vector<MembershipView> views_;  // views_[e].epoch == e
};

/// A membership change to drive during a run.
enum class ReconfigKind : std::uint8_t { kJoin, kRetire };

struct ReconfigAction {
  ReconfigKind kind = ReconfigKind::kJoin;
  SiteId site = kNoSite;
  SimTime at = 0;  // when the cluster starts driving the change
};

/// Declarative elasticity schedule, the membership counterpart of a
/// sim::FaultPlan. `initial_members` empty means every site of the universe
/// starts as a member (the fixed-membership default — behavior is then
/// byte-identical to a build without the membership layer).
struct ReconfigPlan {
  std::vector<SiteId> initial_members;
  std::vector<ReconfigAction> actions;

  [[nodiscard]] bool empty() const {
    return initial_members.empty() && actions.empty();
  }

  ReconfigPlan& start_with(std::vector<SiteId> members) {
    initial_members = std::move(members);
    return *this;
  }
  ReconfigPlan& join(SiteId site, SimTime at) {
    actions.push_back({ReconfigKind::kJoin, site, at});
    return *this;
  }
  ReconfigPlan& retire(SiteId site, SimTime at) {
    actions.push_back({ReconfigKind::kRetire, site, at});
    return *this;
  }
};

/// Reconfiguration-protocol message. One struct covers the whole exchange;
/// which fields are meaningful depends on `kind`.
struct ReconfigMsg {
  enum class Kind : std::uint8_t {
    kPrepare,      // coordinator -> members + subject: proposed next view
    kAck,          // participant -> coordinator: prepare durable (joiner:
                   // also state transfer complete)
    kActivate,     // coordinator -> members + subject: view agreed, switch
    kAbort,        // coordinator -> members + subject: proposal abandoned
    kSnapRequest,  // joiner -> donor: ship a store snapshot of `parts`
    kSnapReply,    // donor -> joiner: snapshot + serialized WAL tail
    kInstall,      // member -> late-joining member: forwarded commit
  };
  Kind kind = Kind::kPrepare;
  EpochId epoch = 0;    // the epoch being created (kInstall: txn epoch)
  SiteId from = kNoSite;
  std::shared_ptr<const MembershipView> view;  // kPrepare / kActivate
  ReconfigKind change = ReconfigKind::kJoin;   // kPrepare
  SiteId subject = kNoSite;                    // kPrepare: joining/retiring site
  std::vector<PartitionId> parts;              // kSnapRequest
  std::shared_ptr<const void> payload;         // kSnapReply / kInstall
  std::uint64_t bytes = 0;                     // analytic payload size
};

}  // namespace gdur::core

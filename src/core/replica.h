// Replica — one G-DUR instance (Figure 1).
//
// A replica plays two roles:
//   * coordinator for the transactions submitted by its clients — the
//     execution protocol of Algorithm 1 (speculative reads, buffered
//     writes, submission);
//   * participant in the termination protocol of Algorithm 2, with the
//     atomic-commitment plug-in realized either by group communication
//     (Algorithm 3) or by two-phase commit (Algorithm 4).
//
// All handlers run as simulator events; CPU time is charged explicitly via
// the site's CpuResource. Store mutations are performed synchronously at
// the decide point while their cost is charged asynchronously, so that a
// successor transaction's certification always sees its predecessors'
// writes (see DESIGN.md §5).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/obj_set.h"
#include "common/types.h"
#include "core/conflict_index.h"
#include "core/membership.h"
#include "core/protocol_spec.h"
#include "core/transaction.h"
#include "obs/events.h"
#include "store/mv_store.h"
#include "store/wal.h"

namespace gdur::obs {
class StatsSlot;
class FlightRing;
class InvariantMonitor;
}

namespace gdur::core {

class Cluster;

class Replica {
 public:
  Replica(Cluster& cluster, SiteId id);

  // ------------------------------------------------------------------
  // Execution protocol (Algorithm 1) — coordinator side.
  // ------------------------------------------------------------------
  void exec_begin(std::function<void(MutTxnPtr)> cb);
  void exec_read(const MutTxnPtr& t, ObjectId x, std::function<void(bool)> cb);
  void exec_write(const MutTxnPtr& t, ObjectId x, std::function<void()> cb);
  void exec_commit(const MutTxnPtr& t, std::function<void(bool)> cb);

  // ------------------------------------------------------------------
  // Termination protocol (Algorithms 2-4) — participant side.
  // ------------------------------------------------------------------
  /// xdeliver(T): the termination message reached this replica.
  void on_term_delivered(const TxnPtr& t);
  /// A certification vote from `voter` (GC: any participant; 2PC: at coord).
  void on_vote(const TxnPtr& t, SiteId voter, bool vote);
  /// 2PC / Paxos Commit outcome computed by the coordinator.
  void on_decision(const TxnPtr& t, bool commit);

  /// Paxos Commit (AC = paxos): phase 2a — participant `participant`
  /// proposes its vote to this acceptor.
  void on_paxos_2a(const TxnPtr& t, SiteId participant, bool vote);
  /// Phase 2b — acceptor `acceptor` accepted `participant`'s vote; the
  /// coordinator learns instances and decides once every participant's
  /// instance closes at a majority of acceptors.
  void on_paxos_2b(const TxnPtr& t, SiteId participant, bool vote,
                   SiteId acceptor);

  /// Reply path of a remote read: invoked exactly once with whether a
  /// compatible version exists and (if so, and it is not the implicit
  /// initial version) the version chosen. The deployment backend ships it
  /// back to the requester — Cluster::remote_read wires both directions.
  using ReadReplyFn =
      std::function<void(bool ok, std::optional<store::Version> v)>;

  /// Remote read service (lines 26-30 of Algorithm 1).
  void serve_remote_read(SiteId requester, const MutTxnPtr& t, ObjectId x,
                         ReadReplyFn reply);

  /// Applies a chosen version to the transaction record at its coordinator.
  /// `v` is nullptr for the initial version. Public: the deployment backend
  /// (sim or live) applies remote-read replies through it.
  void record_read(const MutTxnPtr& t, ObjectId x, const store::Version* v);

  // ------------------------------------------------------------------
  // Crash-recovery (sim/fault). Cluster invokes these around a crash
  // window; CpuResource::crash_until and WriteAheadLog::on_crash handle
  // the job queue and the log.
  // ------------------------------------------------------------------
  /// Volatile protocol state is lost: the termination queue Q, per-txn
  /// vote/ack accumulation, Paxos acceptor state, and the client commit
  /// callbacks. The committed store and the decided-transaction cache are
  /// kept: both are rebuilt from the log in a real deployment and replaying
  /// that here would only re-derive identical state at simulated cost.
  void on_crash();
  /// Replays the WAL's stable records (deliveries, votes, decisions) to
  /// rebuild prepared-transaction state, then re-votes / re-announces so
  /// in-doubt transactions terminate. Charges replay CPU.
  void on_recover();

  // ------------------------------------------------------------------
  // Membership / online reconfiguration (core/membership, DESIGN.md §12).
  // ------------------------------------------------------------------
  /// Highest configuration epoch this replica has activated. Lagging
  /// replicas fast-forward through epoch gossip: every termination-protocol
  /// message carries its transaction's epoch, and receiving a higher agreed
  /// epoch activates it.
  [[nodiscard]] EpochId epoch() const { return epoch_; }
  /// True while a prepared retirement is draining this site (new update
  /// transactions are refused; in-flight certification continues).
  [[nodiscard]] bool draining() const { return draining_; }

  /// State shipped to a joining site by a snapshot donor: the object chains
  /// of the requested partitions (version identities and stamps included),
  /// the donor's replica-wide version index entries for those objects
  /// (spec.track_all_objects), and the donor's serialized WAL tail for
  /// decision catch-up.
  struct StoreSnapshot {
    std::vector<std::pair<ObjectId, store::ObjectChain>> chains;
    std::vector<std::pair<ObjectId, std::uint64_t>> latest_seq;
    std::vector<std::uint8_t> wal_tail;
  };

  /// Starts coordinating a membership change toward
  /// membership().latest().with_joined/retired(subject). Returns false if a
  /// reconfiguration is already in flight here (the cluster retries later).
  bool reconfig_begin(ReconfigKind kind, SiteId subject);
  /// Reconfiguration-protocol message (prepare/ack/activate/abort/state
  /// transfer/forwarded install) from `m.from`.
  void on_reconfig(ReconfigMsg m);

  /// In-doubt transactions currently tracked (hung-txn detection in tests).
  [[nodiscard]] std::size_t undecided_count() const {
    std::size_t n = 0;
    for (const auto& [id, st] : term_)  // gdur-lint: allow(determinism/unordered-iter) pure count, order-independent
      if (!st.decided) ++n;
    return n;
  }
  [[nodiscard]] std::uint64_t timeout_aborts() const { return timeout_aborts_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// Total CPU time spent replaying the log after crashes.
  [[nodiscard]] SimDuration recovery_busy() const { return recovery_busy_; }

  // ------------------------------------------------------------------
  // Accessors for certify() plug-ins and tests.
  // ------------------------------------------------------------------
  [[nodiscard]] SiteId site() const { return id_; }
  [[nodiscard]] Cluster& cluster() const { return cl_; }
  [[nodiscard]] const store::MVStore& db() const { return db_; }
  /// Latest committed version's pidx for `x` here (0 if never written).
  [[nodiscard]] std::uint64_t latest_pidx(ObjectId x) const;
  /// Serrano's replica-wide version index: latest commit sequence number of
  /// `x` across the whole system (requires spec.track_all_objects).
  [[nodiscard]] std::uint64_t latest_seq_of(ObjectId x) const;
  [[nodiscard]] const std::deque<CommittedInfo>& recent_commits() const {
    return recency_.recent();
  }
  /// Recently committed update readers of `x` (spec.track_committed_readers).
  [[nodiscard]] const std::vector<ReaderInfo>* recent_readers(ObjectId x) const {
    return recency_.readers(x);
  }
  [[nodiscard]] std::size_t queue_length() const { return q_.size(); }
  [[nodiscard]] const ConflictIndex& conflict_index() const { return cidx_; }

  /// Termination-queue progress, mirrored in relaxed atomics so the stall
  /// watchdog (obs/watchdog) can probe a live replica from another thread
  /// without touching q_ itself. pending = pushes - pops.
  [[nodiscard]] std::uint64_t queue_pushes() const {
    return obs_q_pushes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t queue_pops() const {
    return obs_q_pops_.load(std::memory_order_relaxed);
  }

  /// Test seam: installs a committed version directly into the local store
  /// (drives ObjectChain pruning in certification regression tests).
  void install_version_for_testing(ObjectId o, store::Version v) {
    db_.install(o, std::move(v));
  }

  /// Why a decided transaction aborted here (kNone if committed or if this
  /// replica never learned the outcome). Clients query their coordinator's
  /// cache to classify aborts for the abort-reason taxonomy.
  [[nodiscard]] obs::AbortReason outcome_reason(const TxnId& id) const {
    auto it = decided_cache_.find(id);
    return it == decided_cache_.end() ? obs::AbortReason::kNone
                                      : it->second.reason;
  }

  // ------------------------------------------------------------------
  // Retention probes (soak/regression tests). Each per-txn table below has
  // a retention contract documented at its declaration; these sizes must
  // reach a steady state over a long run, not grow with transaction count.
  // ------------------------------------------------------------------
  [[nodiscard]] std::size_t term_table_size() const { return term_.size(); }
  [[nodiscard]] std::size_t paxos_table_size() const {
    return paxos_acc_.size();
  }
  [[nodiscard]] std::size_t decided_cache_size() const {
    return decided_cache_.size();
  }
  [[nodiscard]] std::size_t commit_cb_count() const {
    return commit_cbs_.size();
  }
  /// Diagnostic slice of term_: how many entries are decided / parked in
  /// the ordered queue / vote-announced. Lets a soak test tell a stuck
  /// population (undecided, in_q) from a GC-window tail (decided).
  struct TermBreakdown {
    std::size_t decided = 0;
    std::size_t in_q = 0;
    std::size_t announced = 0;
  };
  [[nodiscard]] TermBreakdown term_breakdown() const {
    TermBreakdown b;
    // gdur-lint: allow(determinism/unordered-iter) order-independent count aggregation; never feeds schedules, traces, or votes
    for (const auto& [id, st] : term_) {
      if (st.decided) ++b.decided;
      if (st.in_q) ++b.in_q;
      if (st.announced) ++b.announced;
    }
    return b;
  }

 private:
  /// Test seam: tests/test_certify_clock.cpp drives evaluate_certify
  /// directly (with a ticking clock) to pin the one-timestamp-per-
  /// certification contract.
  friend struct CertifyTestPeer;

  struct TermState {
    TxnPtr txn;
    std::uint64_t q_pos = 0;  // enqueue position (= ConflictIndex position)
    bool in_q = false;
    bool voted = false;     // cast_vote ran (value may still be computing)
    bool announced = false; // my_vote is final: announced or WAL-replayed
    bool my_vote = false;   // remembered for re-announcement under faults
    bool decided = false;
    bool committed = false;
    bool any_false = false;
    std::vector<SiteId> true_voters;  // GC vote accumulation (deduped)
    std::vector<SiteId> voters;       // 2PC coordinator (deduped: protocol
                                      // retries may repeat a vote)
    int votes_expected = 0;
    bool all_true = true;
    // Paxos Commit coordinator/learner state: per participant, the unique
    // acceptors that reported its vote, and whether its instance closed.
    std::unordered_map<SiteId, std::vector<SiteId>> paxos_acks;
    std::unordered_map<SiteId, bool> paxos_closed;
    int paxos_instances_closed = 0;
  };

  // --- execution helpers ---
  void local_read_attempt(const MutTxnPtr& t, ObjectId x, int attempt,
                          std::function<void(bool)> cb);
  void remote_read_attempt(SiteId requester, const MutTxnPtr& t, ObjectId x,
                           int attempt, ReadReplyFn reply);

  // --- termination helpers ---
  TermState& state_of(const TxnPtr& t);
  /// The one commute scan behind all three certification sites (preemptive
  /// 2PC/Paxos vote, gc_try_votes, recovery re-vote): does `t` conflict
  /// (fail to commute) with another queued transaction? `pos` is t's
  /// enqueue position; `preceding_only` restricts the scan to transactions
  /// delivered before t (Algorithm 3's convoy test, which considers decided
  /// but still-queued predecessors too), otherwise decided transactions are
  /// skipped (Algorithm 4's preemptive-abort test). Answered from the
  /// ConflictIndex when the spec's commute() is footprint-local; with
  /// GDUR_VERIFY_CERT on, every indexed answer is cross-checked against the
  /// pairwise queue scan.
  [[nodiscard]] bool queued_conflict(const TxnRecord& t, std::uint64_t pos,
                                     bool preceding_only) const;
  /// The original O(|Q|) pairwise scan — fallback and verification oracle.
  [[nodiscard]] bool queued_conflict_pairwise(const TxnRecord& t,
                                              bool preceding_only) const;
  void gc_try_votes();
  void cast_vote(const TxnPtr& t, bool preemptive_abort);
  /// The certification verdict for `t` at this replica. Unsharded (or for a
  /// spec without certify_shardable): one full spec.certify(). Sharded:
  /// the AND of per-shard sub-votes, each the spec's certify() restricted
  /// to one touched keyspace slice, combined in ascending shard order
  /// (DESIGN.md §14). Pure — safe to evaluate on a shard certifier thread.
  /// Hot root: runs once per touched shard per certification; one clock
  /// read at the top, then noclock all the way down (the sub-vote lambda
  /// must see a single timestamp).
  [[nodiscard]] GDUR_HOT_PATH("noalloc,nolock,noclock,nosleep")
  bool evaluate_certify(const TxnRecord& t) const;
  /// Second half of cast_vote, after the (optional) durable log write.
  void announce_vote(const TxnPtr& t, bool vote);
  /// Just the vote messages (no decide / queue bookkeeping) — shared by the
  /// first announcement and fault-driven re-announcements.
  void send_vote_msgs(const TxnPtr& t, bool vote);
  void check_gc_outcome(const TxnPtr& t);
  /// True when `voter` is the certification leader of one of the
  /// transaction's vote partitions — the only votes group-communication
  /// outcome evaluation counts under online reconfiguration.
  [[nodiscard]] bool gc_vote_counts(const TxnRecord& t, SiteId voter) const;
  /// `reason` classifies an abort (ignored on commit): certification
  /// conflicts are the default; timeout paths pass kPresumedAbort.
  void decide(const TxnPtr& t, bool commit,
              obs::AbortReason reason = obs::AbortReason::kCertConflict);
  // --- fault-tolerance helpers (active only when the cluster runs with a
  // fault plan and a termination timeout) ---
  /// A decided transaction's cached outcome (survives the 5s term-state GC).
  struct Outcome {
    bool committed = false;
    obs::AbortReason reason = obs::AbortReason::kNone;
  };
  /// Outcome already known here? (Survives the 5s term-state GC.)
  [[nodiscard]] const Outcome* known_outcome(const TxnId& id) const {
    auto it = decided_cache_.find(id);
    return it == decided_cache_.end() ? nullptr : &it->second;
  }
  /// Re-announces the remembered vote with backoff until decided.
  void schedule_vote_retry(const TxnPtr& t, int round);
  /// Coordinator-side termination timeout (§5.3 in-doubt resolution).
  void arm_term_timeout(const TxnPtr& t, int round);
  void send_2pc_decisions(const TxnPtr& t, bool commit);
  void process_queue_head();
  /// Erases `term_[id]` after a straggler-safe delay — re-arming while the
  /// id is still in the ordered queue, since process_queue_head() requires
  /// every queued id to keep its termination state.
  void schedule_term_gc(const TxnId& id);
  void apply_commit(const TxnPtr& t);
  void remove_from_q(const TxnId& id);
  void finish_coordinator(const TxnPtr& t, bool commit);
  [[nodiscard]] bool has_local_writes(const TxnRecord& t) const;
  [[nodiscard]] SimDuration certify_cost(const TxnRecord& t) const;

  // --- membership helpers (all inert while !cluster().reconfig_enabled()) ---
  /// Activates agreed epoch `e` if it is newer than the current one (epoch
  /// gossip entry point — called with every received transaction's epoch).
  void maybe_adopt_epoch(EpochId e);
  void activate_epoch(EpochId e);
  /// True iff this site participates in the view of epoch `e`.
  [[nodiscard]] bool member_of(EpochId e) const;
  /// Durably logs a reconfiguration record; `done` runs once stable (or
  /// immediately when running without a WAL).
  void log_reconfig(store::WalRecord::Kind kind, const MembershipView& v,
                    SiteId coord, std::function<void()> done);
  /// Coordinator: (re)broadcasts the prepare for epoch `e` with backoff
  /// until acks complete or the proposal is abandoned.
  void reconfig_round(EpochId e, int round);
  void reconfig_commit(EpochId e);
  void reconfig_abort(EpochId e);
  /// Coordinator: rebroadcasts kActivate a few rounds (epoch gossip covers
  /// any straggler afterwards).
  void activate_round(EpochId e, int round);
  void handle_prepare(const ReconfigMsg& m);
  void handle_snap_request(const ReconfigMsg& m);
  void handle_snap_reply(const ReconfigMsg& m);
  /// Joining site: acks the prepare once every snapshot reply arrived.
  void joiner_maybe_ack();
  /// Applies a commit forwarded by a donor/coordinator to a site that was
  /// not in the transaction's epoch (streamed catch-up and late installs).
  void apply_remote_commit(const TxnPtr& t);
  [[nodiscard]] std::vector<PartitionId> partitions_hosted(SiteId s) const;

  Cluster& cl_;
  SiteId id_;
  store::MVStore db_;

  // Observability plane attachments (all nullptr without a plane; cached at
  // construction so every hook is one pointer test).
  obs::StatsSlot* oslot_ = nullptr;
  obs::FlightRing* oring_ = nullptr;
  obs::InvariantMonitor* omon_ = nullptr;
  std::atomic<std::uint64_t> obs_q_pushes_{0};
  std::atomic<std::uint64_t> obs_q_pops_{0};

  std::deque<TxnId> q_;  // the termination queue Q of Algorithm 2
  // Retention: an entry is created at delivery (or by a straggler message)
  // and erased by schedule_term_gc 5s after the *last* of (a) decide() and
  // (b) a no-local-writes GC participant's early queue leave — the two
  // paths every transaction takes exactly one of. Steady-state size is
  // bounded by the 5s straggler window times the decision rate.
  std::unordered_map<TxnId, TermState> term_;
  // Paxos Commit acceptor state: first accepted vote per (txn, participant).
  // Retention: erased together with the term state by schedule_term_gc once
  // the straggler window passes; the FIFO cap is only the backstop for
  // transactions this site accepted for but never itself terminated.
  std::unordered_map<TxnId, std::unordered_map<SiteId, bool>> paxos_acc_;
  std::deque<TxnId> paxos_acc_fifo_;
  static constexpr std::size_t kPaxosAcceptorCap = 100'000;
  std::unordered_map<ObjectId, std::uint64_t> latest_seq_;  // Serrano index
  // Certification pipeline (core/conflict_index.h): queued transactions
  // indexed by footprint object, mirroring q_ exactly; plus the bounded
  // recently-committed window and S-DUR's per-object committed readers.
  ConflictIndex cidx_;
  RecencyIndex recency_{kRecentWindow, kMaxTrackedReaders};
  // Decided-transaction outcomes, retained (bounded FIFO) past the term-state
  // GC so that retried votes and replayed log records are answered with the
  // decision instead of reopening certification.
  std::unordered_map<TxnId, Outcome> decided_cache_;
  std::deque<TxnId> decided_fifo_;
  static constexpr std::size_t kDecidedCacheCap = 200'000;
  std::uint64_t timeout_aborts_ = 0;
  std::uint64_t recoveries_ = 0;
  SimDuration recovery_busy_ = 0;

  // Coordinator state.
  std::uint64_t txn_counter_ = 0;
  std::uint64_t coord_seq_ = 0;  // update-transaction serial (stamp identity)
  // Retention: erased by finish_coordinator at the decision; every
  // submitted transaction decides at its coordinator (fault-free runs
  // directly, faulty runs via the presumed-abort timeout), so the table
  // holds only in-flight transactions.
  std::unordered_map<TxnId, std::function<void(bool)>> commit_cbs_;

  // --- membership / reconfiguration state ---
  /// Commits decided while reconfiguration is on, retained (bounded FIFO)
  /// so activating a later epoch can re-forward installs that were decided
  /// before this replica learned of the new view: the inline late-install
  /// forwarding in decide() compares against epoch_ at decision time and
  /// stays silent when the decision races ahead of activation.
  std::deque<TxnPtr> recent_commits_;
  static constexpr std::size_t kRecentCommitCap = 4096;
  EpochId epoch_ = 0;       // highest activated epoch
  bool draining_ = false;   // prepared retirement of this site
  /// Reconfiguration-coordinator state for one in-flight proposal.
  struct ReconfigCoord {
    MembershipView next;
    ReconfigKind kind = ReconfigKind::kJoin;
    SiteId subject = kNoSite;
    std::vector<SiteId> acked;  // deduped participant acks (self included)
    bool joiner_acked = false;
    bool decided = false;
  };
  std::optional<ReconfigCoord> rcfg_;
  /// Participant side: the prepared (not yet activated) view.
  std::shared_ptr<const MembershipView> pending_view_;
  ReconfigKind pending_kind_ = ReconfigKind::kJoin;
  SiteId pending_subject_ = kNoSite;
  SiteId pending_coord_ = kNoSite;
  // Joining-site transfer state (volatile: a crash restarts the transfer on
  // the coordinator's next prepare round). `transfer_waiting_` holds the
  // donors whose snapshot replies are still outstanding — a set, not a
  // counter, so a straggler reply from a restarted round cannot complete a
  // transfer it does not belong to.
  std::vector<SiteId> transfer_waiting_;
  EpochId transfer_epoch_ = 0;
  bool transfer_done_ = false;
  /// Donor side: partitions whose applies are streamed to a prepared joiner
  /// until its epoch activates (then late-install forwarding takes over).
  struct StreamReg {
    SiteId to = kNoSite;
    EpochId epoch = 0;
    std::vector<PartitionId> parts;
  };
  std::vector<StreamReg> stream_to_;
  static constexpr int kMaxReconfigRounds = 16;
  static constexpr int kActivateRounds = 3;

  static constexpr int kMaxReadAttempts = 8;
  static constexpr SimDuration kReadRetryDelay = milliseconds(3);
  static constexpr SimDuration kRecentWindow = seconds(3);
  static constexpr std::size_t kMaxTrackedReaders = 16;
  // Vote re-announcement rounds: backoff doubles up to 8x the base interval,
  // so 12 rounds outlast the transport's give_up horizon — enough for every
  // survivable fault window; a txn still in doubt afterwards is hung and
  // the harness reports it.
  static constexpr int kMaxVoteRetries = 12;
};

}  // namespace gdur::core

#include "common/logging.h"

namespace gdur {

namespace {
LogLevel g_level = LogLevel::kWarn;
const LogClock* g_clock = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void set_log_clock(const LogClock* clock) { g_clock = clock; }
const LogClock* log_clock() { return g_clock; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  if (g_clock != nullptr) {
    const SimTime t = g_clock->log_now();
    std::fprintf(stderr, "[%s %lld.%06llds] %s\n", level_name(level),
                 static_cast<long long>(t / 1'000'000'000),
                 static_cast<long long>((t / 1'000) % 1'000'000), msg.c_str());
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace gdur

#include "common/logging.h"

namespace gdur {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace gdur

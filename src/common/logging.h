// Minimal leveled logging.
//
// The simulator is single-threaded, so no synchronization is needed. Logging
// defaults to Warn so benchmarks stay quiet; tests can raise verbosity to
// trace protocol decisions.
//
// Timestamps: log lines carry no wall-clock time (meaningless in a
// simulation). Instead a clock source can be installed — sim::Simulator
// registers itself on construction — and every line is then prefixed with
// the current *simulated* time, so GDUR_TRACE output lines up with the
// TraceRecorder's spans.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "common/sim_time.h"

namespace gdur {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

/// A source of simulated timestamps for log lines.
class LogClock {
 public:
  virtual ~LogClock() = default;
  [[nodiscard]] virtual SimTime log_now() const = 0;
};

/// Installs `clock` as the log timestamp source (nullptr = no timestamps).
/// Not owned; the installer must outlive its installation or clear it.
void set_log_clock(const LogClock* clock);
[[nodiscard]] const LogClock* log_clock();

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_line(level, fmt);
  } else {
    detail::log_line(level, detail::format(fmt, std::forward<Args>(args)...));
  }
}

#define GDUR_TRACE(...) ::gdur::log(::gdur::LogLevel::kTrace, __VA_ARGS__)
#define GDUR_DEBUG(...) ::gdur::log(::gdur::LogLevel::kDebug, __VA_ARGS__)
#define GDUR_INFO(...) ::gdur::log(::gdur::LogLevel::kInfo, __VA_ARGS__)
#define GDUR_WARN(...) ::gdur::log(::gdur::LogLevel::kWarn, __VA_ARGS__)
#define GDUR_ERROR(...) ::gdur::log(::gdur::LogLevel::kError, __VA_ARGS__)

}  // namespace gdur

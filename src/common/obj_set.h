// A small sorted set of ObjectIds.
//
// Transactions in the paper's workloads touch 2-4 objects, so read/write
// sets are tiny; a sorted vector beats hash sets on every operation we need
// (membership, intersection emptiness, union) while staying deterministic to
// iterate.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "common/types.h"

namespace gdur {

class ObjSet {
 public:
  ObjSet() = default;
  ObjSet(std::initializer_list<ObjectId> ids) {
    for (auto id : ids) insert(id);
  }

  /// Inserts `id`; returns false if it was already present.
  bool insert(ObjectId id) {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) return false;
    ids_.insert(it, id);
    return true;
  }

  [[nodiscard]] bool contains(ObjectId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  void clear() { ids_.clear(); }

  [[nodiscard]] auto begin() const { return ids_.begin(); }
  [[nodiscard]] auto end() const { return ids_.end(); }

  /// True iff this set and `other` share no element. This is the hot
  /// operation behind every commute()/certify() plug-in.
  [[nodiscard]] bool disjoint(const ObjSet& other) const {
    auto a = ids_.begin();
    auto b = other.ids_.begin();
    while (a != ids_.end() && b != other.ids_.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool intersects(const ObjSet& other) const {
    return !disjoint(other);
  }

  /// Set union, returned by value.
  [[nodiscard]] ObjSet unioned(const ObjSet& other) const {
    ObjSet out;
    out.ids_.reserve(ids_.size() + other.ids_.size());
    std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                   other.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

  void merge(const ObjSet& other) { *this = unioned(other); }

  friend bool operator==(const ObjSet&, const ObjSet&) = default;

 private:
  std::vector<ObjectId> ids_;
};

}  // namespace gdur

// Simulated-time units. All simulation timestamps are signed 64-bit
// nanosecond counts; helpers below build durations readably.
#pragma once

#include <cstdint>

namespace gdur {

/// A point in simulated time, in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// A duration in simulated time, in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(double us) {
  return static_cast<SimDuration>(us * 1e3);
}
constexpr SimDuration milliseconds(double ms) {
  return static_cast<SimDuration>(ms * 1e6);
}
constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * 1e9);
}

constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1e9;
}

}  // namespace gdur

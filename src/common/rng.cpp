#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace gdur {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  // Expand the single seed with splitmix64, per the xoshiro authors' advice.
  for (auto& s : s_) {
    seed = mix64(seed);
    s = seed;
  }
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

namespace {
// zeta(n) is O(n); memoize it so that constructing thousands of generators
// over the same key space (one per client thread) stays cheap. The cache is
// process-wide shared state and generators may be constructed from several
// threads (live-mode harnesses), so it is mutex-guarded; the sum itself is
// computed outside the lock (worst case: two threads compute the same value
// and both insert it, which is harmless).
struct ZetaKey {
  std::uint64_t n;
  double theta;
  bool operator==(const ZetaKey&) const = default;
};

Mutex g_zeta_mu;
std::vector<std::pair<ZetaKey, double>> g_zeta_cache GUARDED_BY(g_zeta_mu);

double zeta(std::uint64_t n, double theta) {
  const ZetaKey key{n, theta};
  {
    MutexLock lock(&g_zeta_mu);
    for (const auto& [k, v] : g_zeta_cache)
      if (k == key) return v;
  }
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  MutexLock lock(&g_zeta_mu);
  g_zeta_cache.emplace_back(key, sum);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

std::uint64_t ZipfianGenerator::next_scrambled(Rng& rng) {
  return mix64(next(rng)) % n_;
}

}  // namespace gdur

// Annotation vocabulary for gdur-analyze (tools/gdur_analyze).
//
// These macros attach clang `annotate` attributes that the standalone
// gdur-analyze tool (built behind GDUR_ANALYZE when Clang dev headers are
// present) reads to drive its interprocedural checks. Under gcc — or any
// compiler without the attribute — they expand to nothing, exactly like
// GDUR_TSA in thread_annotations.h, so annotated code builds everywhere.
//
// Vocabulary (DESIGN.md §16):
//
//   GDUR_HOT_PATH("classes")  Function is a hot-path *root*. gdur-analyze
//                             walks the per-TU call graph from it and
//                             reports any transitively reachable sink whose
//                             class is banned. `classes` is a comma list:
//                               noalloc  — no heap allocation
//                               nolock   — no mutex/lock acquisition
//                               noclock  — no real-clock read
//                               noblock  — no blocking syscall (implies
//                                          nosleep)
//                               nosleep  — no hard sleep (usleep/nanosleep/
//                                          sleep_for/...)
//                             Pick the classes the contract actually
//                             promises: the reactor demux blocks in
//                             epoll_wait by design, so it is "noalloc,
//                             nosleep", while a stats record path is the
//                             full "noalloc,nolock,noclock,noblock".
//
//   GDUR_BLOCKING             Declares a function a blocking sink even if
//                             the analyzer cannot see why (e.g. it wraps a
//                             syscall through a table). Traversal stops
//                             here and reports if `noblock` is banned.
//
//   GDUR_ALLOCATES            Declares a function an allocation sink by
//                             contract; traversal stops here and reports
//                             if `noalloc` is banned. Use on interfaces
//                             whose implementations allocate.
//
//   GDUR_HOT_BOUNDARY         Sanctioned exit from a hot path: traversal
//                             stops here and never reports. Use where a
//                             hot root hands off to code that is allowed
//                             to allocate/block (e.g. the reactor's accept
//                             handler, which sets up a new connection).
//
//   GDUR_CONFINED("lane")     For functions: runs only on the named lane
//                             (e.g. "site-thread", "shard-lane").
//                             For fields/globals: may only be accessed by
//                             functions proven confined to that lane — the
//                             access is legal iff the accessor, or every
//                             transitive in-TU caller chain above it, is
//                             annotated with the same lane. Constructors
//                             and destructors of the owning class are
//                             exempt (the object is not yet/no longer
//                             shared).
//
//   GDUR_ORDER_SINK           Marks a function as an ordering-sensitive
//                             emission point (wire frame, trace, WAL) for
//                             gdur-determinism-escape, in addition to the
//                             tool's built-in sink list.
//
// Suppressions: a finding can be silenced at its primary line (or the line
// above) with
//     // gdur-analyze: allow(check-name) reason
// The reason is mandatory; gdur-analyze rejects bare allows. This is
// deliberately a different tag from gdur-lint's allow comment, so the
// portable regex fallback and the AST tool never swallow each other's
// suppressions.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define GDUR_ANNOTATE(x) __attribute__((annotate(x)))
#else
#define GDUR_ANNOTATE(x)
#endif
#else
#define GDUR_ANNOTATE(x)
#endif

#define GDUR_HOT_PATH(classes) GDUR_ANNOTATE("gdur::hot_path:" classes)
#define GDUR_BLOCKING GDUR_ANNOTATE("gdur::blocking")
#define GDUR_ALLOCATES GDUR_ANNOTATE("gdur::allocates")
#define GDUR_HOT_BOUNDARY GDUR_ANNOTATE("gdur::hot_boundary")
#define GDUR_CONFINED(lane) GDUR_ANNOTATE("gdur::confined:" lane)
#define GDUR_ORDER_SINK GDUR_ANNOTATE("gdur::order_sink")

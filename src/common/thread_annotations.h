// Clang Thread Safety Analysis annotations + an annotated Mutex/MutexLock.
//
// The multi-threaded surface of the repo (src/live, obs::TraceRecorder and
// the live runtime's shared engine state) declares its locking discipline
// with these macros so the compiler — not a lucky TSan interleaving — proves
// every guarded field is touched with the right mutex held. Build with
//
//   cmake -B build-analyze -DGDUR_ANALYZE=ON          (requires Clang)
//
// to compile the tree under -Wthread-safety -Werror=thread-safety. Under
// GCC (or without GDUR_ANALYZE) every macro expands to nothing and the
// wrappers below are zero-overhead veneers over the std primitives; the
// same discipline is then checked textually by tools/gdur_lint's
// thread/guarded-by rule, which understands these exact annotations.
//
// Annotation vocabulary (Clang TSA spelling):
//   GUARDED_BY(mu)    field: access requires `mu` held
//   PT_GUARDED_BY(mu) pointer field: the pointee requires `mu` held
//   REQUIRES(mu)      function: caller must hold `mu`
//   ACQUIRE(mu) / RELEASE(mu)   function acquires / releases `mu`
//   EXCLUDES(mu)      function: caller must NOT hold `mu` (non-reentrant)
//   NO_THREAD_SAFETY_ANALYSIS   opt out (needs a gdur-lint allow + reason)
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GDUR_TSA(x) __attribute__((x))
#endif
#endif
#ifndef GDUR_TSA
#define GDUR_TSA(x)  // not Clang: annotations compile away
#endif

#define CAPABILITY(x) GDUR_TSA(capability(x))
#define SCOPED_CAPABILITY GDUR_TSA(scoped_lockable)
#define GUARDED_BY(x) GDUR_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) GDUR_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) GDUR_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GDUR_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) GDUR_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) GDUR_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) GDUR_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) GDUR_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GDUR_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) GDUR_TSA(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) GDUR_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) GDUR_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) GDUR_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) GDUR_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS GDUR_TSA(no_thread_safety_analysis)

namespace gdur {

class CondVar;

/// std::mutex with the `capability` attribute so GUARDED_BY/REQUIRES
/// declarations can name it. Same size and cost as std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over an annotated Mutex (the TSA "scoped capability" idiom).
/// Supports manual unlock()/lock() cycling — TimerWheel drops the lock
/// around timer callbacks — and condition waits through CondVar.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : lk_(mu->mu_) {}
  ~MutexLock() RELEASE() = default;  // std::unique_lock unlocks if held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() { lk_.unlock(); }
  void lock() ACQUIRE() { lk_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with MutexLock. Waiting releases and reacquires
/// the lock internally; TSA treats the capability as held across the wait,
/// which matches the caller-visible contract.
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  template <class Pred>
  void wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lk_, std::move(pred));
  }

  template <class Clock, class Duration, class Pred>
  bool wait_until(MutexLock& lock,
                  const std::chrono::time_point<Clock, Duration>& tp,
                  Pred pred) {
    return cv_.wait_until(lock.lk_, tp, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace gdur

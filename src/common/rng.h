// Deterministic random number generation.
//
// Every stochastic choice in the middleware (workload keys, network jitter,
// replica selection) flows through Rng so that a run is a pure function of
// its seed. We use xoshiro256** which is fast, high quality, and trivially
// seedable from a single 64-bit value.
#pragma once

#include <cstdint>

namespace gdur {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool next_bool(double p_true);

 private:
  std::uint64_t s_[4];
};

/// Zipfian-distributed keys in [0, n), exponent `theta` (YCSB uses 0.99).
/// Uses the Gray et al. rejection-free method with precomputed zeta values,
/// plus the YCSB-style scrambling hash so that popular keys are spread over
/// the key space (and therefore over partitions).
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta = 0.99);

  /// Next zipfian sample in [0, n), *unscrambled*: 0 is the hottest key.
  std::uint64_t next(Rng& rng);

  /// Next sample, scrambled over the key space as YCSB does.
  std::uint64_t next_scrambled(Rng& rng);

  [[nodiscard]] std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// 64-bit finalizer hash (splitmix64 mixer); used for key scrambling and
/// partition placement.
std::uint64_t mix64(std::uint64_t x);

}  // namespace gdur

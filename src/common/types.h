// Core identifier types shared across every G-DUR module.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace gdur {

/// Identifies a site (datacenter). The paper runs one replica per site, so a
/// SiteId doubles as a replica/process id in this implementation.
using SiteId = std::uint32_t;

/// Identifies a logical object (a key in the store). Objects are mapped to
/// partitions, and partitions to sites, by the store::Partitioner.
using ObjectId = std::uint64_t;

/// Identifies a data partition.
using PartitionId = std::uint32_t;

/// Configuration epoch: each agreed membership change (site join/retire)
/// advances the epoch by one. Epoch 0 is the initial configuration.
using EpochId = std::uint32_t;

constexpr SiteId kNoSite = ~SiteId{0};

/// Globally unique transaction identifier: the coordinating site plus a
/// per-coordinator sequence number.
struct TxnId {
  SiteId coord = kNoSite;
  std::uint64_t seq = 0;

  friend auto operator<=>(const TxnId&, const TxnId&) = default;

  [[nodiscard]] bool valid() const { return coord != kNoSite; }
  [[nodiscard]] std::string str() const {
    return "T" + std::to_string(coord) + "." + std::to_string(seq);
  }
};

}  // namespace gdur

template <>
struct std::hash<gdur::TxnId> {
  std::size_t operator()(const gdur::TxnId& id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.coord) << 48) ^ id.seq);
  }
};

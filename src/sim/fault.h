// Deterministic fault injection.
//
// A FaultPlan is a declarative schedule of the failures a run must survive:
// per-link message loss and duplication probabilities, link blackouts that
// compose into network partitions (with heal times), and site crashes in the
// crash-recovery-with-state-loss model (volatile state is discarded; only
// what reached the write-ahead log survives). The seeded chaos() constructor
// samples a plan from common/rng, so an arbitrarily hostile schedule is
// still a pure function of its seed.
//
// A FaultInjector interprets one plan for the transport layer. It answers
// two questions per delivery attempt — "is the link usable at this instant?"
// and "does this attempt get dropped?" — and knows the crash windows so that
// the transport's ack/retransmit layer can schedule around them. All
// randomness flows through one Rng owned by the injector; because the
// simulator is deterministic, the sample sequence (and hence the whole
// faulty run) is reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gdur::sim {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

/// Probabilistic loss/duplication on one link (or all links when src/dst is
/// kNoSite), active over [from, until).
struct LinkFault {
  SiteId src = kNoSite;  // kNoSite matches every source
  SiteId dst = kNoSite;  // kNoSite matches every destination
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  SimTime from = 0;
  SimTime until = kNever;
};

/// A network partition over [from, until): sites listed in different groups
/// cannot exchange messages; sites in the same group (or in no group) are
/// unaffected. `until` is the heal time.
struct Partition {
  std::vector<std::vector<SiteId>> groups;
  SimTime from = 0;
  SimTime until = kNever;
};

/// A site crash with state loss at `at`, restart at `recover_at`: queued CPU
/// jobs, in-flight message handlers and all volatile protocol state vanish;
/// recovery replays the site's write-ahead log (core::Replica::on_recover).
struct Crash {
  SiteId site = kNoSite;
  SimTime at = 0;
  SimTime recover_at = kNever;
};

/// Ack/retransmit policy of the transport over faulty links: a sender
/// retransmits an unacknowledged message after `initial_rto`, doubling up to
/// `max_rto`, and abandons it (the connection is declared broken) once
/// `give_up` has elapsed since the first attempt. Set `give_up` beyond the
/// longest blackout in the plan to make the transport eventually reliable.
struct RetransmitConfig {
  SimDuration initial_rto = milliseconds(10);
  double backoff = 2.0;
  SimDuration max_rto = milliseconds(320);
  SimDuration give_up = seconds(10);
  /// Fractional randomization (±jitter) of each backoff delay. Decorrelates
  /// retry instants across senders so a healing partition is not hit by a
  /// synchronized retry storm. Samples come from the transport's dedicated
  /// retransmit Rng (seeded from its jitter seed), so the schedule stays a
  /// pure function of the seeds.
  double jitter = 0.1;
};

/// Knobs for FaultPlan::chaos().
struct ChaosOptions {
  double lossy_link_fraction = 0.5;  // fraction of directed links made lossy
  double max_drop_prob = 0.15;
  double max_dup_prob = 0.05;
  int partitions = 2;                // partition episodes over the horizon
  SimDuration max_partition = milliseconds(400);
  int crashes = 2;                   // crash episodes over the horizon
  SimDuration max_outage = milliseconds(300);
};

/// Deliberate protocol misbehavior — mutation testing for the *online
/// invariant monitor* (obs/invariants). The engine consults the active
/// sabotage at the corresponding realization point and misbehaves once per
/// budgeted occurrence: kDoubleVote flips the vote value a site actually
/// sends (equivocation — the announced vote and the wire vote differ);
/// kEpochRegress makes a site report a configuration epoch one lower than
/// the one it activated. Both must be caught by the monitor; neither is
/// ever enabled outside tests.
struct Sabotage {
  enum class Kind { kDoubleVote, kEpochRegress };
  Kind kind = Kind::kDoubleVote;
  SiteId site = kNoSite;
  SimTime from = 0;
  SimTime until = kNever;
  int count = 1;  // occurrences before the entry is spent
};

struct FaultPlan {
  std::vector<LinkFault> links;
  std::vector<Partition> partitions;
  std::vector<Crash> crashes;
  std::vector<Sabotage> sabotage;
  RetransmitConfig retransmit;

  [[nodiscard]] bool empty() const {
    return links.empty() && partitions.empty() && crashes.empty() &&
           sabotage.empty();
  }

  // Builder helpers (all return *this for chaining).
  FaultPlan& drop(SiteId src, SiteId dst, double p, SimTime from = 0,
                  SimTime until = kNever);
  /// Loss probability `p` on every link.
  FaultPlan& drop_all(double p, SimTime from = 0, SimTime until = kNever);
  FaultPlan& duplicate_all(double p, SimTime from = 0, SimTime until = kNever);
  /// Total blackout of one directed link over [from, until).
  FaultPlan& blackout(SiteId src, SiteId dst, SimTime from, SimTime until);
  FaultPlan& partition(std::vector<std::vector<SiteId>> groups, SimTime from,
                       SimTime until);
  FaultPlan& crash(SiteId site, SimTime at, SimTime recover_at);
  /// Seeds `count` vote equivocations at `site` over [from, until).
  FaultPlan& double_vote(SiteId site, SimTime from, SimTime until = kNever,
                         int count = 1);
  /// Seeds `count` epoch-regression reports at `site` over [from, until).
  FaultPlan& epoch_regress(SiteId site, SimTime from, SimTime until = kNever,
                           int count = 1);

  /// Samples a hostile-but-survivable schedule over [0, horizon) for `sites`
  /// sites: lossy links, short partitions and crash windows, all bounded so
  /// that the default retransmit policy rides them out.
  static FaultPlan chaos(int sites, SimTime horizon, std::uint64_t seed,
                         const ChaosOptions& opt = {});
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 0x5eed);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const RetransmitConfig& retransmit() const {
    return plan_.retransmit;
  }

  /// Is the link unusable (cut by a partition or blackout) at `t`?
  [[nodiscard]] bool link_cut(SiteId src, SiteId dst, SimTime t) const;

  /// Is `s` inside a crash window at `t`?
  [[nodiscard]] bool crashed(SiteId s, SimTime t) const;

  /// End of the crash window covering (s, t), or `t` if none.
  [[nodiscard]] SimTime recovery_end(SiteId s, SimTime t) const;

  /// One delivery attempt departing `src` at `sent`, arriving at `dst` at
  /// `arrival`. Consumes randomness for the loss trial; returns true if the
  /// attempt gets through. Counts drops.
  bool attempt(SiteId src, SiteId dst, SimTime sent, SimTime arrival);

  /// Should the (successful) delivery also spawn a duplicate? (The receiver
  /// deduplicates — see net::Transport — so this only wastes resources.)
  bool duplicate(SiteId src, SiteId dst, SimTime t);

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

  /// True — and one occurrence consumed — when a sabotage entry of `kind`
  /// at `site` covers `t` and still has budget. The engine misbehaves at
  /// the matching realization point iff this returns true.
  bool consume_sabotage(Sabotage::Kind kind, SiteId site, SimTime t);

 private:
  [[nodiscard]] double drop_prob(SiteId src, SiteId dst, SimTime t) const;

  FaultPlan plan_;
  Rng rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::vector<int> sabotage_left_;  // remaining budget per plan_.sabotage
};

}  // namespace gdur::sim

#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace gdur::sim {

void Simulator::at(SimTime t, Event event) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Item{t, next_seq_++, std::move(event)});
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; move out via const_cast, which is safe
    // because we pop immediately and never touch the moved-from event.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.t;
    ++processed_;
    item.event();
  }
}

bool Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= t) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.t;
    ++processed_;
    item.event();
  }
  if (!stopped_ && now_ < t) now_ = t;
  return !stopped_;
}

}  // namespace gdur::sim

#include "sim/fault.h"

#include <algorithm>

namespace gdur::sim {

FaultPlan& FaultPlan::drop(SiteId src, SiteId dst, double p, SimTime from,
                           SimTime until) {
  links.push_back(LinkFault{src, dst, p, 0.0, from, until});
  return *this;
}

FaultPlan& FaultPlan::drop_all(double p, SimTime from, SimTime until) {
  return drop(kNoSite, kNoSite, p, from, until);
}

FaultPlan& FaultPlan::duplicate_all(double p, SimTime from, SimTime until) {
  links.push_back(LinkFault{kNoSite, kNoSite, 0.0, p, from, until});
  return *this;
}

FaultPlan& FaultPlan::blackout(SiteId src, SiteId dst, SimTime from,
                               SimTime until) {
  return drop(src, dst, 1.0, from, until);
}

FaultPlan& FaultPlan::partition(std::vector<std::vector<SiteId>> groups,
                                SimTime from, SimTime until) {
  partitions.push_back(Partition{std::move(groups), from, until});
  return *this;
}

FaultPlan& FaultPlan::crash(SiteId site, SimTime at, SimTime recover_at) {
  crashes.push_back(Crash{site, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::double_vote(SiteId site, SimTime from, SimTime until,
                                  int count) {
  sabotage.push_back(
      Sabotage{Sabotage::Kind::kDoubleVote, site, from, until, count});
  return *this;
}

FaultPlan& FaultPlan::epoch_regress(SiteId site, SimTime from, SimTime until,
                                    int count) {
  sabotage.push_back(
      Sabotage{Sabotage::Kind::kEpochRegress, site, from, until, count});
  return *this;
}

FaultPlan FaultPlan::chaos(int sites, SimTime horizon, std::uint64_t seed,
                           const ChaosOptions& opt) {
  FaultPlan plan;
  Rng rng(mix64(seed ^ 0xc4a05));
  const auto n = static_cast<SiteId>(sites);

  for (SiteId s = 0; s < n; ++s) {
    for (SiteId d = 0; d < n; ++d) {
      if (s == d || !rng.next_bool(opt.lossy_link_fraction)) continue;
      plan.links.push_back(LinkFault{
          s, d, rng.next_double() * opt.max_drop_prob,
          rng.next_double() * opt.max_dup_prob, 0, kNever});
    }
  }

  for (int i = 0; i < opt.partitions && sites >= 2; ++i) {
    // Cut a random nonempty proper subset away from the rest.
    std::vector<SiteId> a, b;
    do {
      a.clear();
      b.clear();
      for (SiteId s = 0; s < n; ++s) (rng.next_bool(0.5) ? a : b).push_back(s);
    } while (a.empty() || b.empty());
    const auto from = static_cast<SimTime>(rng.next_below(
        static_cast<std::uint64_t>(std::max<SimTime>(1, horizon))));
    const auto len = static_cast<SimDuration>(
        rng.next_below(static_cast<std::uint64_t>(opt.max_partition)) + 1);
    plan.partition({std::move(a), std::move(b)}, from, from + len);
  }

  for (int i = 0; i < opt.crashes && sites > 0; ++i) {
    const auto site =
        static_cast<SiteId>(rng.next_below(static_cast<std::uint64_t>(sites)));
    const auto at = static_cast<SimTime>(rng.next_below(
        static_cast<std::uint64_t>(std::max<SimTime>(1, horizon))));
    const auto len = static_cast<SimDuration>(
        rng.next_below(static_cast<std::uint64_t>(opt.max_outage)) + 1);
    plan.crash(site, at, at + len);
  }

  // The chaos contract: every window is survivable. Push give_up past the
  // longest blackout so no message is lost forever at the transport.
  const SimDuration longest =
      std::max(opt.max_partition, opt.max_outage) + plan.retransmit.max_rto;
  plan.retransmit.give_up = std::max(plan.retransmit.give_up, 4 * longest);
  return plan;
}

// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(mix64(seed ^ 0xfa017)) {
  sabotage_left_.reserve(plan_.sabotage.size());
  for (const auto& s : plan_.sabotage) sabotage_left_.push_back(s.count);
}

bool FaultInjector::consume_sabotage(Sabotage::Kind kind, SiteId site,
                                     SimTime t) {
  for (std::size_t i = 0; i < plan_.sabotage.size(); ++i) {
    const auto& s = plan_.sabotage[i];
    if (s.kind != kind || s.site != site) continue;
    if (t < s.from || t >= s.until || sabotage_left_[i] <= 0) continue;
    --sabotage_left_[i];
    return true;
  }
  return false;
}

bool FaultInjector::link_cut(SiteId src, SiteId dst, SimTime t) const {
  for (const auto& p : plan_.partitions) {
    if (t < p.from || t >= p.until) continue;
    int gs = -1, gd = -1;
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      for (SiteId s : p.groups[g]) {
        if (s == src) gs = static_cast<int>(g);
        if (s == dst) gd = static_cast<int>(g);
      }
    }
    if (gs >= 0 && gd >= 0 && gs != gd) return true;
  }
  return drop_prob(src, dst, t) >= 1.0;  // blackout = certain loss
}

bool FaultInjector::crashed(SiteId s, SimTime t) const {
  for (const auto& c : plan_.crashes)
    if (c.site == s && t >= c.at && t < c.recover_at) return true;
  return false;
}

SimTime FaultInjector::recovery_end(SiteId s, SimTime t) const {
  SimTime end = t;
  for (const auto& c : plan_.crashes)
    if (c.site == s && t >= c.at && t < c.recover_at)
      end = std::max(end, c.recover_at);
  return end;
}

double FaultInjector::drop_prob(SiteId src, SiteId dst, SimTime t) const {
  double p = 0.0;
  for (const auto& f : plan_.links) {
    if (f.src != kNoSite && f.src != src) continue;
    if (f.dst != kNoSite && f.dst != dst) continue;
    if (t < f.from || t >= f.until) continue;
    p = std::max(p, f.drop_prob);
  }
  return p;
}

bool FaultInjector::attempt(SiteId src, SiteId dst, SimTime sent,
                            SimTime arrival) {
  if (link_cut(src, dst, sent) || crashed(src, sent) ||
      crashed(dst, arrival)) {
    ++drops_;
    return false;
  }
  const double p = drop_prob(src, dst, sent);
  if (p > 0.0 && rng_.next_bool(p)) {
    ++drops_;
    return false;
  }
  return true;
}

bool FaultInjector::duplicate(SiteId src, SiteId dst, SimTime t) {
  double p = 0.0;
  for (const auto& f : plan_.links) {
    if (f.src != kNoSite && f.src != src) continue;
    if (f.dst != kNoSite && f.dst != dst) continue;
    if (t < f.from || t >= f.until) continue;
    p = std::max(p, f.dup_prob);
  }
  if (p > 0.0 && rng_.next_bool(p)) {
    ++duplicates_;
    return true;
  }
  return false;
}

}  // namespace gdur::sim

// CPU service-time model.
//
// These constants stand in for the per-operation costs of the paper's Java
// implementation on 4-core 2.2-2.6 GHz machines. They are calibrated so
// that the RC baseline saturates around 30 ktps on four 4-core sites,
// matching the envelope of Figure 3; every comparison in bench/ is
// relative, so only the ratios between the constants matter for
// reproducing the paper's shapes.
#pragma once

#include "common/sim_time.h"

namespace gdur::sim {

struct CostModel {
  // Messaging.
  SimDuration msg_send = microseconds(15);  // serialization + protocol stack
  SimDuration msg_recv = microseconds(25);  // dispatch + handler entry
  double marshal_per_byte_ns = 15.0;        // serialize, charged at sender
  double unmarshal_per_byte_ns = 15.0;      // deserialize, charged at receiver

  // Execution phase.
  SimDuration read_local = microseconds(30);     // store lookup for one object
  SimDuration version_select = microseconds(10); // choose() over a chain
  SimDuration snapshot_maintain = microseconds(12);  // choose_cons bookkeeping
  SimDuration client_op = microseconds(8);       // coordinator bookkeeping

  // Termination phase.
  SimDuration certify_base = microseconds(60);
  SimDuration certify_per_obj = microseconds(15);
  SimDuration apply_per_obj = microseconds(20);
  SimDuration queue_op = microseconds(5);  // enqueue/dequeue in Q

  [[nodiscard]] SimDuration marshal(std::uint64_t bytes) const {
    return static_cast<SimDuration>(marshal_per_byte_ns * double(bytes));
  }
  [[nodiscard]] SimDuration unmarshal(std::uint64_t bytes) const {
    return static_cast<SimDuration>(unmarshal_per_byte_ns * double(bytes));
  }
};

}  // namespace gdur::sim

// Multi-core CPU model.
//
// Each site owns one CpuResource with k identical cores (the paper's
// machines have 4). Protocol work — handling a message, running a
// certification test, applying after-values, marshaling metadata — is
// submitted as a job with a service time; jobs queue FIFO when all cores are
// busy. Queueing at saturated sites is what bends the throughput/latency
// curves of Figures 3-6 upward, exactly as on the real testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace gdur::sim {

class CpuResource {
 public:
  CpuResource(Simulator& simulator, int cores)
      : sim_(simulator), core_free_(static_cast<std::size_t>(cores), 0) {}

  /// Runs `done` after `service` time on the first core to free up.
  void submit(SimDuration service, std::function<void()> done);

  /// Charges `service` time on the first core to free up without scheduling
  /// a completion event; returns the instant the work finishes. Used when
  /// the caller schedules the follow-up itself (e.g. message departure).
  SimTime charge(SimDuration service) { return charge_after(0, service); }

  /// Like charge(), but the work may not start before `not_before` (used to
  /// serialize the processing of one connection's messages).
  SimTime charge_after(SimTime not_before, SimDuration service);

  /// Total busy time accumulated across cores (for utilization reporting).
  [[nodiscard]] SimDuration busy_time() const { return busy_; }
  [[nodiscard]] int cores() const { return static_cast<int>(core_free_.size()); }

  /// Utilization in [0,1] over the window [from, to].
  [[nodiscard]] double utilization(SimTime from, SimTime to) const;

  /// Simulates an outage in the crash-recovery model: no job starts before
  /// `until` (work already queued resumes afterwards; nothing is lost).
  void block_until(SimTime until);

  /// Resets the busy-time counter (called at the end of warmup).
  void reset_accounting() { busy_ = 0; }

 private:
  Simulator& sim_;
  std::vector<SimTime> core_free_;  // next instant each core is idle
  SimDuration busy_ = 0;
};

}  // namespace gdur::sim

// Multi-core CPU model.
//
// Each site owns one CpuResource with k identical cores (the paper's
// machines have 4). Protocol work — handling a message, running a
// certification test, applying after-values, marshaling metadata — is
// submitted as a job with a service time; jobs queue FIFO when all cores are
// busy. Queueing at saturated sites is what bends the throughput/latency
// curves of Figures 3-6 upward, exactly as on the real testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace gdur::sim {

class CpuResource {
 public:
  CpuResource(Simulator& simulator, int cores)
      : sim_(simulator), core_free_(static_cast<std::size_t>(cores), 0) {}

  /// Runs `done` after `service` time on the first core to free up.
  void submit(SimDuration service, std::function<void()> done);

  /// Charges `service` time on the first core to free up without scheduling
  /// a completion event; returns the instant the work finishes. Used when
  /// the caller schedules the follow-up itself (e.g. message departure).
  SimTime charge(SimDuration service) { return charge_after(0, service); }

  /// Like charge(), but the work may not start before `not_before` (used to
  /// serialize the processing of one connection's messages).
  SimTime charge_after(SimTime not_before, SimDuration service);

  /// Total busy time accumulated across cores (for utilization reporting).
  [[nodiscard]] SimDuration busy_time() const { return busy_; }
  [[nodiscard]] int cores() const { return static_cast<int>(core_free_.size()); }

  /// Jobs submitted via submit() whose completion has not run yet — the
  /// instantaneous CPU backlog, sampled by the observability time series to
  /// watch saturation knees develop. Pure bookkeeping: never affects the
  /// schedule.
  [[nodiscard]] std::uint64_t inflight() const { return inflight_; }

  /// Utilization in [0,1] over the window [from, to].
  [[nodiscard]] double utilization(SimTime from, SimTime to) const;

  /// Simulates a *pause* (process freeze, long GC, VM migration): no job
  /// starts before `until`, but work already queued resumes afterwards and
  /// nothing is lost. Contrast with crash_until().
  void block_until(SimTime until);

  /// Simulates a *crash with state loss*: every queued job is discarded
  /// (their completion callbacks never run), jobs submitted while the site
  /// is down vanish, and the cores sit idle until `until`. Callers model
  /// the loss of volatile protocol state separately (core::Replica::on_crash).
  void crash_until(SimTime until);

  /// Bumped by crash_until(); jobs submitted under an older epoch are dead.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Is the resource inside a crash window at `t`?
  [[nodiscard]] bool down_at(SimTime t) const { return t < down_until_; }

  /// Resets the busy-time counter (called at the end of warmup).
  void reset_accounting() { busy_ = 0; }

 private:
  Simulator& sim_;
  std::vector<SimTime> core_free_;  // next instant each core is idle
  SimDuration busy_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t inflight_ = 0;
  SimTime down_until_ = 0;
};

}  // namespace gdur::sim

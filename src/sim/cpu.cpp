#include "sim/cpu.h"

#include <algorithm>
#include <cassert>

namespace gdur::sim {

SimTime CpuResource::charge_after(SimTime not_before, SimDuration service) {
  assert(service >= 0);
  auto it = std::min_element(core_free_.begin(), core_free_.end());
  const SimTime start = std::max({sim_.now(), not_before, *it});
  const SimTime finish = start + service;
  *it = finish;
  busy_ += service;
  return finish;
}

void CpuResource::submit(SimDuration service, std::function<void()> done) {
  if (down_at(sim_.now())) return;  // a crashed site accepts no work
  ++inflight_;
  sim_.at(charge(service),
          [this, e = epoch_, done = std::move(done)]() mutable {
            --inflight_;
            if (e == epoch_) done();  // else: lost in a crash
          });
}

void CpuResource::block_until(SimTime until) {
  for (auto& f : core_free_) f = std::max(f, until);
}

void CpuResource::crash_until(SimTime until) {
  ++epoch_;  // orphan every queued completion
  down_until_ = std::max(down_until_, until);
  for (auto& f : core_free_) f = std::max(sim_.now(), until);
}

double CpuResource::utilization(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  const double capacity =
      static_cast<double>(to - from) * static_cast<double>(core_free_.size());
  return std::min(1.0, static_cast<double>(busy_) / capacity);
}

}  // namespace gdur::sim

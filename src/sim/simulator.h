// Deterministic discrete-event simulator.
//
// This is the substrate that replaces the paper's Grid'5000 testbed: replicas
// and clients are actors whose handlers run as events on a single virtual
// clock. Ties are broken by insertion order, so a run is a pure function of
// its inputs — every experiment in bench/ is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/sim_time.h"

namespace gdur::sim {

class Simulator : public LogClock {
 public:
  using Event = std::function<void()>;

  /// The newest simulator becomes the log-timestamp source, so GDUR_TRACE
  /// lines carry simulated time (common/logging).
  Simulator() { set_log_clock(this); }
  ~Simulator() override {
    if (log_clock() == this) set_log_clock(nullptr);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime log_now() const override { return now_; }

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `event` at absolute time `t` (>= now()).
  void at(SimTime t, Event event);

  /// Schedules `event` `delay` from now.
  void after(SimDuration delay, Event event) { at(now_ + delay, std::move(event)); }

  /// Runs events until the queue drains or stop() is called.
  void run();

  /// Runs events with timestamp <= `t`; afterwards now() == t unless the run
  /// was stopped early. Returns false if stop() ended the run.
  bool run_until(SimTime t);

  /// Stops the current run() / run_until() after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Item {
    SimTime t;
    std::uint64_t seq;  // FIFO tie-break for determinism
    Event event;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace gdur::sim

// Workload drivers.
//
// ClientActor — closed-loop client thread (§8.1): one interactive
// transaction at a time against its co-located G-DUR instance, retrying
// immediately after aborts, exactly like the paper's YCSB client threads.
//
// OpenLoopSource — Poisson arrivals at a fixed offered rate, independent of
// completions. Closed loops self-throttle at saturation; the open loop
// exposes the true overload behavior (queues and latencies grow without
// bound past capacity).
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "core/cluster.h"
#include "harness/metrics.h"
#include "workload/workload.h"

namespace gdur::workload {

/// Observer invoked at every transaction termination with the full record.
using TxnObserver = std::function<void(const core::TxnRecord&, bool committed)>;

/// Drives one interactive transaction through the cluster API and records
/// its outcome into `metrics`; `done` runs after the terminal response.
/// The flow object keeps itself alive for the duration.
void run_transaction(core::Cluster& cluster, SiteId site,
                     std::shared_ptr<const TxnProfile> profile,
                     harness::Metrics& metrics, const TxnObserver& observer,
                     std::function<void()> done);

class ClientActor {
 public:
  ClientActor(core::Cluster& cluster, SiteId site, const WorkloadSpec& spec,
              harness::Metrics& metrics, std::uint64_t seed);

  /// Kicks off the closed loop at simulated time `at`.
  void start(SimTime at);

  void set_observer(TxnObserver obs) { observer_ = std::move(obs); }

  [[nodiscard]] std::uint64_t txns_run() const { return txns_run_; }

 private:
  void run_one();

  core::Cluster& cl_;
  SiteId site_;
  Generator gen_;
  harness::Metrics& metrics_;
  TxnObserver observer_;
  std::uint64_t txns_run_ = 0;
};

class OpenLoopSource {
 public:
  /// `rate_tps` transactions per second, Poisson-distributed arrivals, all
  /// coordinated by `site`.
  OpenLoopSource(core::Cluster& cluster, SiteId site, const WorkloadSpec& spec,
                 harness::Metrics& metrics, double rate_tps,
                 std::uint64_t seed);

  void start(SimTime at);
  /// No further arrivals after `at` (in-flight transactions finish).
  void stop_at(SimTime at) { stop_at_ = at; }

  [[nodiscard]] std::uint64_t offered() const { return offered_; }

 private:
  void arrive();

  core::Cluster& cl_;
  SiteId site_;
  Generator gen_;
  harness::Metrics& metrics_;
  Rng arrivals_;
  double rate_;
  SimTime stop_at_ = std::numeric_limits<SimTime>::max();
  std::uint64_t offered_ = 0;
};

}  // namespace gdur::workload

#include "workload/client.h"

#include <cmath>

namespace gdur::workload {

namespace {

/// One transaction in flight; owns itself until the terminal callback.
class TxnFlow : public std::enable_shared_from_this<TxnFlow> {
 public:
  TxnFlow(core::Cluster& cl, SiteId site, std::shared_ptr<const TxnProfile> p,
          harness::Metrics& metrics, TxnObserver observer,
          std::function<void()> done)
      : cl_(cl),
        site_(site),
        profile_(std::move(p)),
        metrics_(metrics),
        observer_(std::move(observer)),
        done_(std::move(done)) {}

  void begin() {
    begin_req_ = cl_.now();
    auto self = shared_from_this();
    // Under faults a request or its response can be lost for good (crashed
    // coordinator, broken connection): give up after the cluster's client
    // timeout instead of hanging the client loop forever.
    if (cl_.client_timeout() > 0)
      cl_.run_after(site_, cl_.client_timeout(),
                    [self] { self->timeout(); });
    cl_.begin(site_, [self](core::MutTxnPtr t) {
      if (self->finished_) return;
      self->txn_ = t;
      if (auto* tr = self->cl_.trace())
        tr->txn_started(t->id, self->site_, self->begin_req_,
                        self->cl_.now());
      self->reads(t, 0);
    });
  }

 private:
  void reads(const core::MutTxnPtr& t, std::size_t i) {
    if (i == profile_->reads.size()) {
      writes(t, 0);
      return;
    }
    auto self = shared_from_this();
    const SimTime start = cl_.now();
    cl_.read(site_, t, profile_->reads[i], [self, t, i, start](bool ok) {
      if (self->finished_) return;
      if (auto* tr = self->cl_.trace())
        tr->txn_op(t->id, obs::Phase::kRead, self->site_, start,
                   self->cl_.now());
      if (!ok) {
        self->finish(*t, false, /*exec_failure=*/true, self->begin_req_);
        return;
      }
      self->reads(t, i + 1);
    });
  }

  void writes(const core::MutTxnPtr& t, std::size_t i) {
    if (i == profile_->writes.size()) {
      commit(t);
      return;
    }
    auto self = shared_from_this();
    const SimTime start = cl_.now();
    cl_.write(site_, t, profile_->writes[i], [self, t, i, start] {
      if (self->finished_) return;
      if (auto* tr = self->cl_.trace())
        tr->txn_op(t->id, obs::Phase::kWriteBuffer, self->site_, start,
                   self->cl_.now());
      self->writes(t, i + 1);
    });
  }

  void commit(const core::MutTxnPtr& t) {
    commit_req_ = cl_.now();
    auto self = shared_from_this();
    cl_.commit(site_, t, [self, t](bool ok) {
      if (self->finished_) return;
      self->finish(*t, ok, /*exec_failure=*/false, self->commit_req_);
    });
  }

  void timeout() {
    if (finished_) return;
    finished_ = true;
    ++metrics_.txns_timed_out;
    ++metrics_.aborts_by_reason[static_cast<std::size_t>(
        obs::AbortReason::kTimeout)];
    if (auto* tr = cl_.trace(); tr != nullptr && txn_)
      tr->txn_timed_out(txn_->id, site_, cl_.now());
    // Unknown outcome reported as non-committed: the history checker uses
    // commits affirmatively only, so this is conservative even when the
    // transaction in fact committed server-side.
    if (observer_ && txn_) observer_(*txn_, false);
    if (done_) done_();
  }

  void finish(const core::TxnRecord& t, bool committed, bool exec_failure,
              SimTime term_req) {
    if (finished_) return;
    finished_ = true;
    const SimTime now = cl_.now();
    const bool read_only = profile_->read_only;
    // Classify the abort: execution-phase failures are snapshot misses;
    // termination aborts carry a reason in the coordinator's decided cache
    // (kCertConflict if the cache entry already aged out).
    obs::AbortReason reason = obs::AbortReason::kNone;
    if (!committed) {
      if (exec_failure) {
        reason = obs::AbortReason::kSnapshotFailure;
      } else {
        reason = cl_.replica(site_).outcome_reason(t.id);
        if (reason == obs::AbortReason::kNone)
          reason = obs::AbortReason::kCertConflict;
      }
      ++metrics_.aborts_by_reason[static_cast<std::size_t>(reason)];
    }
    if (exec_failure) {
      ++metrics_.exec_failures;
    } else if (committed) {
      (read_only ? metrics_.committed_ro : metrics_.committed_upd)++;
      metrics_.note_commit_epoch(t.epoch);
      metrics_.txn_latency.add(now - begin_req_);
      if (!read_only) metrics_.upd_term_latency.add(now - term_req);
    } else {
      (read_only ? metrics_.aborted_ro : metrics_.aborted_upd)++;
      if (!read_only) metrics_.upd_term_latency.add(now - term_req);
    }
    if (auto* tr = cl_.trace())
      tr->txn_finished(t.id, site_, now, committed, read_only, reason);
    if (observer_) observer_(t, committed);
    if (done_) done_();
  }

  core::Cluster& cl_;
  SiteId site_;
  std::shared_ptr<const TxnProfile> profile_;
  harness::Metrics& metrics_;
  TxnObserver observer_;
  std::function<void()> done_;
  core::MutTxnPtr txn_;     // last known record, for the timeout observer
  bool finished_ = false;   // terminal response seen or timed out
  SimTime begin_req_ = 0;
  SimTime commit_req_ = 0;
};

}  // namespace

void run_transaction(core::Cluster& cluster, SiteId site,
                     std::shared_ptr<const TxnProfile> profile,
                     harness::Metrics& metrics, const TxnObserver& observer,
                     std::function<void()> done) {
  std::make_shared<TxnFlow>(cluster, site, std::move(profile), metrics,
                            observer, std::move(done))
      ->begin();
}

// ---------------------------------------------------------------------------

ClientActor::ClientActor(core::Cluster& cluster, SiteId site,
                         const WorkloadSpec& spec, harness::Metrics& metrics,
                         std::uint64_t seed)
    : cl_(cluster),
      site_(site),
      gen_(spec, cluster.partitioner(), site, seed),
      metrics_(metrics) {}

void ClientActor::start(SimTime at) {
  cl_.simulator().at(at, [this] { run_one(); });
}

void ClientActor::run_one() {
  ++txns_run_;
  run_transaction(cl_, site_, std::make_shared<const TxnProfile>(gen_.next()),
                  metrics_, observer_, [this] { run_one(); });
}

// ---------------------------------------------------------------------------

OpenLoopSource::OpenLoopSource(core::Cluster& cluster, SiteId site,
                               const WorkloadSpec& spec,
                               harness::Metrics& metrics, double rate_tps,
                               std::uint64_t seed)
    : cl_(cluster),
      site_(site),
      gen_(spec, cluster.partitioner(), site, seed),
      metrics_(metrics),
      arrivals_(mix64(seed ^ 0x9e3779b9)),
      rate_(rate_tps) {}

void OpenLoopSource::start(SimTime at) {
  cl_.simulator().at(at, [this] { arrive(); });
}

void OpenLoopSource::arrive() {
  if (cl_.simulator().now() >= stop_at_) return;
  ++offered_;
  run_transaction(cl_, site_,
                  std::make_shared<const TxnProfile>(gen_.next()), metrics_,
                  nullptr, nullptr);
  // Exponential inter-arrival time.
  const double u = arrivals_.next_double();
  const auto gap = static_cast<SimDuration>(
      -std::log(1.0 - u) / rate_ * 1e9);
  cl_.simulator().after(std::max<SimDuration>(gap, 1), [this] { arrive(); });
}

}  // namespace gdur::workload

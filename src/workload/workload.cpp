#include "workload/workload.h"

#include <algorithm>

namespace gdur::workload {

WorkloadSpec WorkloadSpec::A(double read_only_ratio) {
  return WorkloadSpec{.name = "A",
                      .zipfian = false,
                      .ro_reads = 2,
                      .upd_reads = 1,
                      .upd_writes = 1,
                      .read_only_ratio = read_only_ratio};
}

WorkloadSpec WorkloadSpec::B(double read_only_ratio) {
  return WorkloadSpec{.name = "B",
                      .zipfian = false,
                      .ro_reads = 4,
                      .upd_reads = 2,
                      .upd_writes = 2,
                      .read_only_ratio = read_only_ratio};
}

WorkloadSpec WorkloadSpec::C(double read_only_ratio) {
  return WorkloadSpec{.name = "C",
                      .zipfian = true,
                      .ro_reads = 2,
                      .upd_reads = 1,
                      .upd_writes = 1,
                      .read_only_ratio = read_only_ratio};
}

Generator::Generator(const WorkloadSpec& spec, const store::Partitioner& part,
                     SiteId home_site, std::uint64_t seed)
    : spec_(spec),
      part_(part),
      home_(home_site),
      rng_(seed),
      zipf_(part.objects(), spec.zipf_theta) {}

ObjectId Generator::next_key(bool local) {
  if (local) {
    // Confine to the coordinator's own partition(s).
    const auto per_site =
        static_cast<PartitionId>(part_.partitions() /
                                 static_cast<PartitionId>(part_.sites()));
    const PartitionId p = static_cast<PartitionId>(
        home_ + part_.sites() * static_cast<SiteId>(rng_.next_below(per_site)));
    const std::uint64_t idx = spec_.zipfian
                                  ? zipf_.next_scrambled(rng_)
                                  : rng_.next_below(part_.objects());
    return part_.object_in_partition(p, idx);
  }
  return spec_.zipfian ? zipf_.next_scrambled(rng_)
                       : rng_.next_below(part_.objects());
}

void Generator::pick_distinct(std::vector<ObjectId>& out, int n, bool local) {
  for (int i = 0; i < n; ++i) {
    ObjectId k;
    do {
      k = next_key(local);
    } while (std::find(out.begin(), out.end(), k) != out.end());
    out.push_back(k);
  }
}

TxnProfile Generator::next() {
  TxnProfile t;
  t.read_only = rng_.next_bool(spec_.read_only_ratio);
  t.local = spec_.locality > 0 && rng_.next_bool(spec_.locality);
  for (int attempt = 0;; ++attempt) {
    t.reads.clear();
    t.writes.clear();
    pick_distinct(t.reads, t.read_only ? spec_.ro_reads : spec_.upd_reads,
                  t.local);
    if (!t.read_only) {
      // Writes must stay distinct from the reads as well.
      std::vector<ObjectId> all = t.reads;
      pick_distinct(all, spec_.upd_writes, t.local);
      t.writes.assign(all.begin() + static_cast<long>(t.reads.size()),
                      all.end());
    }
    if (t.local) break;  // locality overrides globality
    // §8.1: transactions are global — no replica holds all their objects.
    ObjSet touched;
    for (ObjectId k : t.reads) touched.insert(k);
    for (ObjectId k : t.writes) touched.insert(k);
    if (!part_.single_site(touched) || attempt >= 16) break;
  }
  return t;
}

}  // namespace gdur::workload

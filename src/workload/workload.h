// YCSB-like transactional workloads (Table 3 of the paper).
//
//   Workload  Keys      Read-only txn   Update txn
//   A         Uniform   2 reads         1 read, 1 update
//   B         Uniform   4 reads         2 reads, 2 updates
//   C         Zipfian   2 reads         1 read, 1 update
//
// Transactions are *interactive* (keys are not known in advance — each
// operation is issued only after the previous one returns) and *global*
// (no single replica hosts every accessed object), matching §8.1. A
// locality fraction can relax globality for the Figure 5 experiment.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "store/partitioner.h"

namespace gdur::workload {

struct WorkloadSpec {
  std::string name = "A";
  bool zipfian = false;
  double zipf_theta = 0.99;
  int ro_reads = 2;
  int upd_reads = 1;
  int upd_writes = 1;
  double read_only_ratio = 0.9;
  /// Fraction of transactions whose keys all live at the coordinator's
  /// site (0 = the paper's default all-global setting; Figure 5 varies it).
  double locality = 0.0;

  static WorkloadSpec A(double read_only_ratio = 0.9);
  static WorkloadSpec B(double read_only_ratio = 0.9);
  static WorkloadSpec C(double read_only_ratio = 0.9);
};

/// One generated transaction profile.
struct TxnProfile {
  bool read_only = false;
  bool local = false;
  std::vector<ObjectId> reads;
  std::vector<ObjectId> writes;
};

/// Deterministic key/transaction generator for one client thread.
class Generator {
 public:
  Generator(const WorkloadSpec& spec, const store::Partitioner& part,
            SiteId home_site, std::uint64_t seed);

  TxnProfile next();

 private:
  ObjectId next_key(bool local);
  void pick_distinct(std::vector<ObjectId>& out, int n, bool local);

  const WorkloadSpec spec_;
  const store::Partitioner& part_;
  SiteId home_;
  Rng rng_;
  ZipfianGenerator zipf_;
};

}  // namespace gdur::workload

#include "harness/metrics.h"

#include <algorithm>
#include <cmath>

namespace gdur::harness {

int LatencyStat::bucket_of(SimDuration d) {
  // ~4% geometric buckets starting at 1 us.
  if (d < microseconds(1)) return 0;
  const double b = std::log(static_cast<double>(d) / 1000.0) / std::log(1.04);
  return std::clamp(static_cast<int>(b) + 1, 0, kBuckets - 1);
}

SimDuration LatencyStat::bucket_upper(int b) {
  if (b <= 0) return microseconds(1);
  return static_cast<SimDuration>(1000.0 * std::pow(1.04, b));
}

void LatencyStat::add(SimDuration d) {
  ++count_;
  sum_ += d;
  max_ = std::max(max_, d);
  ++hist_[static_cast<std::size_t>(bucket_of(d))];
}

double LatencyStat::percentile_ms(double q) const {
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += hist_[static_cast<std::size_t>(b)];
    if (seen >= target) return to_ms(bucket_upper(b));
  }
  return to_ms(max_);
}

}  // namespace gdur::harness

#include "harness/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace gdur::harness {

int LatencyStat::bucket_of(SimDuration d) {
  // ~4% geometric buckets starting at 1 us.
  if (d < microseconds(1)) return 0;
  const double b = std::log(static_cast<double>(d) / 1000.0) / std::log(1.04);
  return std::clamp(static_cast<int>(b) + 1, 0, kBuckets - 1);
}

SimDuration LatencyStat::bucket_upper(int b) {
  if (b <= 0) return microseconds(1);
  return static_cast<SimDuration>(1000.0 * std::pow(1.04, b));
}

void LatencyStat::add(SimDuration d) {
  ++count_;
  sum_ += d;
  max_ = std::max(max_, d);
  ++hist_[static_cast<std::size_t>(bucket_of(d))];
}

double LatencyStat::percentile_ms(double q) const {
  // Contract (see header): empty stat or q <= 0 -> 0.0; q > 1 -> max_ms().
  // Without the q <= 0 guard, target would round to 0 and the first bucket
  // (even an empty one) would satisfy seen >= target immediately.
  if (count_ == 0 || q <= 0.0) return 0.0;
  if (q > 1.0) return to_ms(max_);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += hist_[static_cast<std::size_t>(b)];
    if (seen >= target) return to_ms(bucket_upper(b));
  }
  return to_ms(max_);
}

void LatencyStat::merge_from(const LatencyStat& o) {
  count_ += o.count_;
  sum_ += o.sum_;
  max_ = std::max(max_, o.max_);
  for (int b = 0; b < kBuckets; ++b)
    hist_[static_cast<std::size_t>(b)] += o.hist_[static_cast<std::size_t>(b)];
}

void Metrics::merge_from(const Metrics& o) {
  committed_ro += o.committed_ro;
  committed_upd += o.committed_upd;
  aborted_ro += o.aborted_ro;
  aborted_upd += o.aborted_upd;
  exec_failures += o.exec_failures;
  txns_timed_out += o.txns_timed_out;
  upd_term_latency.merge_from(o.upd_term_latency);
  txn_latency.merge_from(o.txn_latency);
  for (std::size_t i = 0; i < aborts_by_reason.size(); ++i)
    aborts_by_reason[i] += o.aborts_by_reason[i];
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
    phase[p].merge_from(o.phase[p]);
  // Sites that joined or retired mid-run report different epoch counts:
  // widen to the longer history, then add element-wise.
  if (committed_by_epoch.size() < o.committed_by_epoch.size())
    committed_by_epoch.resize(o.committed_by_epoch.size(), 0);
  for (std::size_t e = 0; e < o.committed_by_epoch.size(); ++e)
    committed_by_epoch[e] += o.committed_by_epoch[e];
}

void Metrics::add_phase_report(const obs::TxnPhaseReport& r) {
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
    if (r.phase[p] > 0) phase[p].add(r.phase[p]);
}

}  // namespace gdur::harness

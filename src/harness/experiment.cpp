#include "harness/experiment.h"

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "workload/client.h"

namespace gdur::harness {

namespace {

/// Periodic time-series sampler over the measurement window. Reads cluster
/// state (committed count, per-site CPU utilization and load, certification
/// queue depth) into the recorder's counter track; it never mutates protocol
/// state, so attaching it changes nothing but events_per_second.
class TimeSeriesSampler {
 public:
  TimeSeriesSampler(core::Cluster& cluster, const Metrics& metrics,
                    obs::TraceRecorder& tr, SimTime end)
      : cl_(cluster),
        metrics_(metrics),
        tr_(tr),
        bucket_(tr.config().timeseries_bucket),
        end_(end) {}

  void start() {
    last_committed_ = metrics_.committed();
    arm();
  }

 private:
  void arm() {
    cl_.simulator().after(bucket_, [this] { tick(); });
  }

  void tick() {
    const SimTime now = cl_.simulator().now();
    const std::uint64_t committed = metrics_.committed();
    tr_.sample("throughput_tps", kNoSite, now,
               static_cast<double>(committed - last_committed_) /
                   to_seconds(bucket_));
    last_committed_ = committed;
    for (SiteId s = 0; s < static_cast<SiteId>(cl_.sites()); ++s) {
      tr_.sample("cpu_util", s, now,
                 cl_.transport().cpu(s).utilization(now - bucket_, now));
      tr_.sample("cpu_inflight", s, now,
                 static_cast<double>(cl_.transport().cpu(s).inflight()));
      tr_.sample("cert_queue", s, now,
                 static_cast<double>(cl_.replica(s).queue_length()));
    }
    if (now + bucket_ <= end_) arm();
  }

  core::Cluster& cl_;
  const Metrics& metrics_;
  obs::TraceRecorder& tr_;
  SimDuration bucket_;
  SimTime end_;
  std::uint64_t last_committed_ = 0;
};

}  // namespace

RunResult run_experiment(const core::ProtocolSpec& spec,
                         const ExperimentConfig& cfg) {
  core::ClusterConfig ccfg = cfg.cluster;
  ccfg.seed = cfg.seed;
  core::Cluster cluster(ccfg, spec);
  Metrics metrics;

  obs::TraceRecorder* tr = cluster.trace();
  if (tr != nullptr) {
    // Fold finished update commits into the per-phase latency stats. The
    // sink fires for every report; aborted and read-only transactions are
    // skipped so the breakdown matches upd_term_latency's population.
    tr->set_phase_sink([&metrics](const obs::TxnPhaseReport& rep) {
      if (rep.committed && !rep.read_only) metrics.add_phase_report(rep);
    });
  }

  std::vector<std::unique_ptr<workload::ClientActor>> clients;
  clients.reserve(static_cast<std::size_t>(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) {
    const auto site = static_cast<SiteId>(i % cluster.sites());
    clients.push_back(std::make_unique<workload::ClientActor>(
        cluster, site, cfg.workload, metrics,
        mix64(cfg.seed * 1'000'003 + static_cast<std::uint64_t>(i))));
    // Stagger start times so clients do not fire in lockstep.
    clients.back()->start(
        static_cast<SimTime>(i) * microseconds(97) % milliseconds(25));
  }

  auto& sim = cluster.simulator();
  sim.run_until(cfg.warmup);
  metrics.reset();
  cluster.transport().reset_accounting();
  if (tr != nullptr) tr->reset_counters();
  std::unique_ptr<TimeSeriesSampler> sampler;
  if (tr != nullptr && tr->config().timeseries_bucket > 0) {
    sampler = std::make_unique<TimeSeriesSampler>(cluster, metrics, *tr,
                                                  cfg.warmup + cfg.window);
    sampler->start();
  }
  const std::uint64_t events_before = sim.events_processed();

  sim.run_until(cfg.warmup + cfg.window);

  const double window_s = to_seconds(cfg.window);
  RunResult r;
  r.protocol = spec.name;
  r.clients = cfg.clients;
  r.throughput_tps = static_cast<double>(metrics.committed()) / window_s;
  r.upd_term_latency_ms = metrics.upd_term_latency.mean_ms();
  r.upd_term_latency_p50 = metrics.upd_term_latency.percentile_ms(0.50);
  r.upd_term_latency_p95 = metrics.upd_term_latency.percentile_ms(0.95);
  r.upd_term_latency_p99 = metrics.upd_term_latency.percentile_ms(0.99);
  r.txn_latency_ms = metrics.txn_latency.mean_ms();
  r.txn_latency_p50 = metrics.txn_latency.percentile_ms(0.50);
  r.txn_latency_p95 = metrics.txn_latency.percentile_ms(0.95);
  r.txn_latency_p99 = metrics.txn_latency.percentile_ms(0.99);
  r.abort_ratio_pct = metrics.abort_ratio_pct();
  r.upd_abort_ratio_pct = metrics.upd_abort_ratio_pct();
  r.committed = metrics.committed();
  r.aborted = metrics.aborted();
  r.exec_failures = metrics.exec_failures;
  double util = 0;
  for (SiteId s = 0; s < static_cast<SiteId>(cluster.sites()); ++s)
    util += cluster.transport().cpu(s).utilization(cfg.warmup,
                                                   cfg.warmup + cfg.window);
  r.cpu_utilization = util / cluster.sites();
  r.messages = cluster.transport().messages_sent();
  r.events_per_second =
      static_cast<double>(sim.events_processed() - events_before) / window_s;
  const auto& fs = cluster.transport().fault_stats();
  r.msgs_dropped = fs.dropped;
  r.msgs_retransmitted = fs.retransmissions;
  r.msgs_duplicated = fs.duplicates;
  r.msgs_expired = fs.expired;
  r.txns_timed_out = metrics.txns_timed_out;
  for (SiteId s = 0; s < static_cast<SiteId>(cluster.sites()); ++s) {
    r.timeout_aborts += cluster.replica(s).timeout_aborts();
    r.recoveries += cluster.replica(s).recoveries();
    r.recovery_ms += to_ms(cluster.replica(s).recovery_busy());
  }
  r.aborts_by_reason = metrics.aborts_by_reason;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    const LatencyStat& st = metrics.phase[p];
    r.phase_count[p] = st.count();
    r.phase_mean_ms[p] = st.mean_ms();
    r.phase_p99_ms[p] = st.percentile_ms(0.99);
  }
  return r;
}

std::vector<RunResult> run_sweep(const core::ProtocolSpec& spec,
                                 ExperimentConfig cfg,
                                 const std::vector<int>& client_counts) {
  std::vector<RunResult> out;
  out.reserve(client_counts.size());
  for (int n : client_counts) {
    cfg.clients = n;
    out.push_back(run_experiment(spec, cfg));
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("\n# %s\n", title.c_str());
  std::printf("# %-12s %8s %12s %12s %12s %9s %9s %9s %10s %10s %8s\n",
              "protocol", "clients", "tput(tps)", "termlat(ms)", "txnlat(ms)",
              "p50(ms)", "p95(ms)", "p99(ms)", "abort(%)", "updabort%", "cpu");
}

void print_result(const RunResult& r) {
  std::printf(
      "  %-12s %8d %12.0f %12.2f %12.2f %9.2f %9.2f %9.2f %10.2f %10.2f "
      "%8.2f\n",
      r.protocol.c_str(), r.clients, r.throughput_tps, r.upd_term_latency_ms,
      r.txn_latency_ms, r.txn_latency_p50, r.txn_latency_p95,
      r.txn_latency_p99, r.abort_ratio_pct, r.upd_abort_ratio_pct,
      r.cpu_utilization);
}

void print_phase_breakdown(const RunResult& r) {
  if (!r.has_phase_breakdown()) return;
  std::printf("  %-12s %-16s %10s %12s %12s\n", r.protocol.c_str(), "phase",
              "count", "mean(ms)", "p99(ms)");
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    if (r.phase_count[p] == 0) continue;
    std::printf("  %-12s %-16s %10llu %12.3f %12.3f\n", r.protocol.c_str(),
                obs::phase_name(static_cast<obs::Phase>(p)),
                static_cast<unsigned long long>(r.phase_count[p]),
                r.phase_mean_ms[p], r.phase_p99_ms[p]);
  }
}

}  // namespace gdur::harness

#include "harness/experiment.h"

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "workload/client.h"

namespace gdur::harness {

RunResult run_experiment(const core::ProtocolSpec& spec,
                         const ExperimentConfig& cfg) {
  core::ClusterConfig ccfg = cfg.cluster;
  ccfg.seed = cfg.seed;
  core::Cluster cluster(ccfg, spec);
  Metrics metrics;

  std::vector<std::unique_ptr<workload::ClientActor>> clients;
  clients.reserve(static_cast<std::size_t>(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) {
    const auto site = static_cast<SiteId>(i % cluster.sites());
    clients.push_back(std::make_unique<workload::ClientActor>(
        cluster, site, cfg.workload, metrics,
        mix64(cfg.seed * 1'000'003 + static_cast<std::uint64_t>(i))));
    // Stagger start times so clients do not fire in lockstep.
    clients.back()->start(
        static_cast<SimTime>(i) * microseconds(97) % milliseconds(25));
  }

  auto& sim = cluster.simulator();
  sim.run_until(cfg.warmup);
  metrics.reset();
  cluster.transport().reset_accounting();
  const std::uint64_t events_before = sim.events_processed();

  sim.run_until(cfg.warmup + cfg.window);

  const double window_s = to_seconds(cfg.window);
  RunResult r;
  r.protocol = spec.name;
  r.clients = cfg.clients;
  r.throughput_tps = static_cast<double>(metrics.committed()) / window_s;
  r.upd_term_latency_ms = metrics.upd_term_latency.mean_ms();
  r.upd_term_latency_p99 = metrics.upd_term_latency.percentile_ms(0.99);
  r.txn_latency_ms = metrics.txn_latency.mean_ms();
  r.abort_ratio_pct = metrics.abort_ratio_pct();
  r.upd_abort_ratio_pct = metrics.upd_abort_ratio_pct();
  r.committed = metrics.committed();
  r.aborted = metrics.aborted();
  r.exec_failures = metrics.exec_failures;
  double util = 0;
  for (SiteId s = 0; s < static_cast<SiteId>(cluster.sites()); ++s)
    util += cluster.transport().cpu(s).utilization(cfg.warmup,
                                                   cfg.warmup + cfg.window);
  r.cpu_utilization = util / cluster.sites();
  r.messages = cluster.transport().messages_sent();
  r.events_per_second =
      static_cast<double>(sim.events_processed() - events_before) / window_s;
  const auto& fs = cluster.transport().fault_stats();
  r.msgs_dropped = fs.dropped;
  r.msgs_retransmitted = fs.retransmissions;
  r.msgs_duplicated = fs.duplicates;
  r.msgs_expired = fs.expired;
  r.txns_timed_out = metrics.txns_timed_out;
  for (SiteId s = 0; s < static_cast<SiteId>(cluster.sites()); ++s) {
    r.timeout_aborts += cluster.replica(s).timeout_aborts();
    r.recoveries += cluster.replica(s).recoveries();
    r.recovery_ms += to_ms(cluster.replica(s).recovery_busy());
  }
  return r;
}

std::vector<RunResult> run_sweep(const core::ProtocolSpec& spec,
                                 ExperimentConfig cfg,
                                 const std::vector<int>& client_counts) {
  std::vector<RunResult> out;
  out.reserve(client_counts.size());
  for (int n : client_counts) {
    cfg.clients = n;
    out.push_back(run_experiment(spec, cfg));
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("\n# %s\n", title.c_str());
  std::printf("# %-12s %8s %12s %12s %12s %10s %10s %8s\n", "protocol",
              "clients", "tput(tps)", "termlat(ms)", "txnlat(ms)", "abort(%)",
              "updabort%", "cpu");
}

void print_result(const RunResult& r) {
  std::printf("  %-12s %8d %12.0f %12.2f %12.2f %10.2f %10.2f %8.2f\n",
              r.protocol.c_str(), r.clients, r.throughput_tps,
              r.upd_term_latency_ms, r.txn_latency_ms, r.abort_ratio_pct,
              r.upd_abort_ratio_pct, r.cpu_utilization);
}

}  // namespace gdur::harness

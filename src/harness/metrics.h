// Experiment metrics: throughput, latencies (with log-bucket percentile
// histograms), abort ratios.
#pragma once

#include <array>
#include <cstdint>

#include "common/sim_time.h"

namespace gdur::harness {

/// Latency accumulator with a logarithmic histogram (≈4% resolution) for
/// percentile estimation.
class LatencyStat {
 public:
  void add(SimDuration d);
  void reset() { *this = {}; }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean_ms() const {
    return count_ == 0 ? 0.0 : to_ms(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] double max_ms() const { return to_ms(max_); }
  /// q in (0, 1], e.g. 0.5 or 0.99.
  [[nodiscard]] double percentile_ms(double q) const;

 private:
  static constexpr int kBuckets = 512;
  static int bucket_of(SimDuration d);
  static SimDuration bucket_upper(int b);

  std::uint64_t count_ = 0;
  SimDuration sum_ = 0;
  SimDuration max_ = 0;
  std::array<std::uint64_t, kBuckets> hist_{};
};

struct Metrics {
  std::uint64_t committed_ro = 0;
  std::uint64_t committed_upd = 0;
  std::uint64_t aborted_ro = 0;
  std::uint64_t aborted_upd = 0;
  std::uint64_t exec_failures = 0;  // aborted during the execution phase
  // Gave up waiting for a response (fault runs with a client timeout);
  // outcome unknown, counted as non-committed — conservative for the
  // checker, which only uses commits affirmatively.
  std::uint64_t txns_timed_out = 0;

  LatencyStat upd_term_latency;  // commit request -> client response, updates
  LatencyStat txn_latency;       // begin request -> final response, committed

  void reset() { *this = {}; }

  [[nodiscard]] std::uint64_t committed() const {
    return committed_ro + committed_upd;
  }
  [[nodiscard]] std::uint64_t aborted() const {
    return aborted_ro + aborted_upd + exec_failures;
  }
  /// Abort ratio (%) over all terminated transactions.
  [[nodiscard]] double abort_ratio_pct() const {
    const auto total = committed() + aborted();
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(aborted()) /
                            static_cast<double>(total);
  }
  /// Abort ratio (%) over update transactions only.
  [[nodiscard]] double upd_abort_ratio_pct() const {
    const auto total = committed_upd + aborted_upd;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(aborted_upd) /
                            static_cast<double>(total);
  }
};

}  // namespace gdur::harness

// Experiment metrics: throughput, latencies (with log-bucket percentile
// histograms), abort ratios.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "obs/events.h"

namespace gdur::obs {
struct TxnPhaseReport;
}

namespace gdur::harness {

/// Latency accumulator with a logarithmic histogram (≈4% resolution) for
/// percentile estimation.
class LatencyStat {
 public:
  void add(SimDuration d);
  void reset() { *this = {}; }

  /// Folds another stat's samples into this one (histogram-exact; merged
  /// percentiles equal those of the concatenated sample streams).
  void merge_from(const LatencyStat& o);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean_ms() const {
    return count_ == 0 ? 0.0 : to_ms(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] double max_ms() const { return to_ms(max_); }
  /// Percentile estimate (upper edge of the histogram bucket containing the
  /// q-th sample). Contract: q in (0, 1] is the meaningful range; out-of-range
  /// arguments clamp to the distribution's edges — q <= 0 returns 0.0 and
  /// q > 1 returns max_ms() — and an empty stat returns 0.0 for any q.
  [[nodiscard]] double percentile_ms(double q) const;

 private:
  static constexpr int kBuckets = 512;
  static int bucket_of(SimDuration d);
  static SimDuration bucket_upper(int b);

  std::uint64_t count_ = 0;
  SimDuration sum_ = 0;
  SimDuration max_ = 0;
  std::array<std::uint64_t, kBuckets> hist_{};
};

struct Metrics {
  std::uint64_t committed_ro = 0;
  std::uint64_t committed_upd = 0;
  std::uint64_t aborted_ro = 0;
  std::uint64_t aborted_upd = 0;
  std::uint64_t exec_failures = 0;  // aborted during the execution phase
  // Gave up waiting for a response (fault runs with a client timeout);
  // outcome unknown, counted as non-committed — conservative for the
  // checker, which only uses commits affirmatively.
  std::uint64_t txns_timed_out = 0;

  LatencyStat upd_term_latency;  // commit request -> client response, updates
  LatencyStat txn_latency;       // begin request -> final response, committed

  /// Abort-reason taxonomy: every non-committed transaction is counted
  /// under exactly one obs::AbortReason (always on — maintained by the
  /// client flow whether or not a trace recorder is attached).
  std::array<std::uint64_t, obs::kAbortReasonCount> aborts_by_reason{};

  /// Commits per configuration epoch, indexed by EpochId and sized on
  /// demand: a site that joined (or retired) mid-run reports fewer epochs
  /// than one that lived through the whole reconfiguration history.
  std::vector<std::uint64_t> committed_by_epoch;

  /// Per-phase latency breakdown of committed update transactions, indexed
  /// by obs::Phase. Filled from TxnPhaseReports, so it is populated only
  /// when the run has a trace recorder attached (empty stats otherwise).
  std::array<LatencyStat, obs::kPhaseCount> phase{};

  void reset() { *this = {}; }

  /// Folds another Metrics into this one (live mode records per-site
  /// metrics on each site thread and merges them after the run).
  void merge_from(const Metrics& o);

  [[nodiscard]] std::uint64_t aborts_with(obs::AbortReason r) const {
    return aborts_by_reason[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const LatencyStat& phase_stat(obs::Phase p) const {
    return phase[static_cast<std::size_t>(p)];
  }
  /// Folds one finished transaction's phase report into `phase`.
  void add_phase_report(const obs::TxnPhaseReport& r);

  /// Counts one commit under the configuration epoch it ran in.
  void note_commit_epoch(EpochId e) {
    if (committed_by_epoch.size() <= e) committed_by_epoch.resize(e + 1, 0);
    ++committed_by_epoch[e];
  }
  [[nodiscard]] std::uint64_t commits_in_epoch(EpochId e) const {
    return e < committed_by_epoch.size() ? committed_by_epoch[e] : 0;
  }

  [[nodiscard]] std::uint64_t committed() const {
    return committed_ro + committed_upd;
  }
  [[nodiscard]] std::uint64_t aborted() const {
    return aborted_ro + aborted_upd + exec_failures;
  }
  /// Abort ratio (%) over all terminated transactions.
  [[nodiscard]] double abort_ratio_pct() const {
    const auto total = committed() + aborted();
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(aborted()) /
                            static_cast<double>(total);
  }
  /// Abort ratio (%) over update transactions only.
  [[nodiscard]] double upd_abort_ratio_pct() const {
    const auto total = committed_upd + aborted_upd;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(aborted_upd) /
                            static_cast<double>(total);
  }
};

}  // namespace gdur::harness

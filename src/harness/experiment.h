// ExperimentRunner — one benchmark point: a cluster, a protocol, a
// workload, N closed-loop clients, a warmup and a measurement window.
// Drives every table and figure reproduction in bench/.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/protocol_spec.h"
#include "harness/metrics.h"
#include "obs/trace.h"
#include "workload/workload.h"

namespace gdur::harness {

struct ExperimentConfig {
  core::ClusterConfig cluster{};
  workload::WorkloadSpec workload{};
  int clients = 64;
  SimDuration warmup = seconds(1);
  SimDuration window = seconds(4);
  std::uint64_t seed = 1;
};

struct RunResult {
  std::string protocol;
  int clients = 0;
  double throughput_tps = 0;
  double upd_term_latency_ms = 0;   // mean termination latency, update txns
  double upd_term_latency_p50 = 0;
  double upd_term_latency_p95 = 0;
  double upd_term_latency_p99 = 0;
  double txn_latency_ms = 0;        // mean full-txn latency, committed txns
  double txn_latency_p50 = 0;
  double txn_latency_p95 = 0;
  double txn_latency_p99 = 0;
  double abort_ratio_pct = 0;       // all txns
  double upd_abort_ratio_pct = 0;   // update txns only
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;          // certification + execution failures
  std::uint64_t exec_failures = 0;    // execution-phase (snapshot) failures
  double cpu_utilization = 0;       // mean across sites over the window
  std::uint64_t messages = 0;
  double events_per_second = 0;     // simulator events in the window
  // Dependability counters (nonzero only under fault injection).
  std::uint64_t msgs_dropped = 0;        // delivery attempts lost/blocked
  std::uint64_t msgs_retransmitted = 0;  // extra attempts sent
  std::uint64_t msgs_duplicated = 0;     // duplicate deliveries absorbed
  std::uint64_t msgs_expired = 0;        // abandoned after give_up
  std::uint64_t txns_timed_out = 0;      // client gave up waiting
  std::uint64_t timeout_aborts = 0;      // coordinator presumed-abort
  std::uint64_t recoveries = 0;          // crash recoveries completed
  double recovery_ms = 0;                // total log-replay time, all sites
  // Abort-reason taxonomy (indexed by obs::AbortReason; always filled).
  std::array<std::uint64_t, obs::kAbortReasonCount> aborts_by_reason{};
  // Per-phase lifecycle breakdown of committed update transactions,
  // indexed by obs::Phase. Populated only when the run had a trace
  // recorder attached (cluster.trace != nullptr); all-zero otherwise.
  std::array<double, obs::kPhaseCount> phase_mean_ms{};
  std::array<double, obs::kPhaseCount> phase_p99_ms{};
  std::array<std::uint64_t, obs::kPhaseCount> phase_count{};

  [[nodiscard]] bool has_phase_breakdown() const {
    for (std::uint64_t c : phase_count)
      if (c > 0) return true;
    return false;
  }
};

/// Runs one experiment point. Deterministic in (spec, cfg).
RunResult run_experiment(const core::ProtocolSpec& spec,
                         const ExperimentConfig& cfg);

/// Runs a load sweep (one RunResult per clients value).
std::vector<RunResult> run_sweep(const core::ProtocolSpec& spec,
                                 ExperimentConfig cfg,
                                 const std::vector<int>& client_counts);

/// Pretty-prints a result table (gnuplot-friendly columns).
void print_header(const std::string& title);
void print_result(const RunResult& r);
/// Per-phase mean/p99 table (one row per lifecycle phase that occurred);
/// prints nothing when the result has no phase data.
void print_phase_breakdown(const RunResult& r);

}  // namespace gdur::harness

// History recording and consistency checking.
//
// A History collects every terminated transaction (from the client side)
// plus every version install (from the replica side) and can then verify
// the guarantees each protocol claims:
//
//   check_read_committed   every version read was written by a committed
//                          transaction (or is the initial version)
//   check_serializable     the direct serialization graph (wr, ww, rw
//                          edges) over committed transactions is acyclic
//                          — P-Store, S-DUR (SER)
//   check_update_serializable
//                          the DSG restricted to update transactions is
//                          acyclic, and every query reads a consistent
//                          (possibly stale) snapshot — GMU (US),
//                          and also implied by SER
//   check_ww_exclusion     no two time-overlapping committed transactions
//                          wrote the same object — SI / PSI / NMSI
//                          (Serrano, Walter, Jessy2pc)
//   check_consistent_snapshots
//                          no transaction observes a fractured snapshot:
//                          if T read x before W's write and W wrote both
//                          x and y, T must not read y from W or later
//
// The checks are deliberately conservative (they may accept a borderline
// history) but every violation they report is a real one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/transaction.h"
#include "store/partitioner.h"

namespace gdur::checker {

struct CheckResult {
  bool ok = true;
  std::string detail;  // description of the first violation found
};

struct TxnOutcome {
  core::TxnRecord txn;
  bool committed = false;
  SimTime response_time = 0;
};

class History {
 public:
  /// Starts recording installs from `cluster`. Transaction outcomes are fed
  /// via record_txn (wire it to ClientActor::set_observer).
  void attach(core::Cluster& cluster);

  /// Offline variant: adopts a partitioner without a live cluster, for
  /// checking histories merged from per-process dump files
  /// (front::read_history_dump / gdur_checkhist). Feed records via
  /// record_txn / record_install.
  void attach_partitioner(const store::Partitioner& part) { part_ = part; }

  void record_txn(const core::TxnRecord& t, bool committed, SimTime response);
  void record_install(const core::Cluster::InstallEvent& e);

  [[nodiscard]] std::size_t committed_count() const;
  [[nodiscard]] std::size_t total_count() const { return txns_.size(); }
  [[nodiscard]] const std::vector<TxnOutcome>& txns() const { return txns_; }

  [[nodiscard]] CheckResult check_read_committed() const;
  [[nodiscard]] CheckResult check_serializable() const;
  [[nodiscard]] CheckResult check_update_serializable() const;
  [[nodiscard]] CheckResult check_ww_exclusion() const;
  [[nodiscard]] CheckResult check_consistent_snapshots() const;

  /// Runs every check a criterion requires.
  [[nodiscard]] CheckResult check_criterion(const std::string& criterion) const;

 private:
  /// Version order of one object: writers in install order at the
  /// partition's authority site (see build_orders).
  struct ObjectOrder {
    std::vector<TxnId> writers;  // position = version index (0-based)
  };

  [[nodiscard]] CheckResult acyclic_dsg(bool updates_only) const;
  void build_orders() const;
  /// Authority site whose install stream defines the version order of
  /// partition `p`. Fixed membership: always the primary. Under online
  /// reconfiguration the primary may have retired mid-run (its stream
  /// truncates) or joined mid-run (its stream misses the prefix), so the
  /// replica with the longest install stream is authoritative instead —
  /// ties broken primary-first, then lowest site id. Valid after
  /// build_orders().
  [[nodiscard]] SiteId authority_of(PartitionId p) const;

  std::vector<TxnOutcome> txns_;
  std::vector<core::Cluster::InstallEvent> installs_;
  /// Copied out of the cluster at attach() time: the checks run after the
  /// harness run finishes, typically outliving the Cluster itself, so
  /// holding a pointer back into it would dangle.
  std::optional<store::Partitioner> part_;

  // Lazily built caches.
  mutable bool built_ = false;
  mutable std::unordered_map<ObjectId, ObjectOrder> orders_;
  mutable std::unordered_map<TxnId, std::size_t> committed_index_;
  mutable std::unordered_map<PartitionId, SiteId> authority_;
};

}  // namespace gdur::checker

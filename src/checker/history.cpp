#include "checker/history.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace gdur::checker {

void History::attach(core::Cluster& cluster) {
  part_ = cluster.partitioner();
  cluster.set_install_observer(
      [this](const core::Cluster::InstallEvent& e) { record_install(e); });
}

void History::record_txn(const core::TxnRecord& t, bool committed,
                         SimTime response) {
  built_ = false;
  txns_.push_back(TxnOutcome{t, committed, response});
}

void History::record_install(const core::Cluster::InstallEvent& e) {
  built_ = false;
  installs_.push_back(e);
}

std::size_t History::committed_count() const {
  std::size_t n = 0;
  for (const auto& t : txns_)
    if (t.committed) ++n;
  return n;
}

void History::build_orders() const {
  if (built_) return;
  built_ = true;
  orders_.clear();
  committed_index_.clear();
  authority_.clear();
  for (std::size_t i = 0; i < txns_.size(); ++i)
    if (txns_[i].committed) committed_index_[txns_[i].txn.id] = i;
  // Installs are recorded in simulated-time order (single-threaded event
  // loop); one site's install stream per partition is the version order.
  // That site is the replica with the longest stream — with a fixed
  // membership every replica installs every write of its partition, so the
  // tie-break (primary first) reduces to the classic primary-site rule; a
  // primary that retired or joined mid-run has a truncated stream and loses
  // authority to a replica that saw the whole run.
  if (part_.has_value()) {
    const auto& part = *part_;
    std::unordered_map<PartitionId, std::unordered_map<SiteId, std::size_t>>
        stream_len;
    for (const auto& e : installs_)
      ++stream_len[part.partition_of(e.obj)][e.site];
    for (const auto& [p, by_site] : stream_len) {  // gdur-lint: allow(determinism/unordered-iter) per-partition argmax, partitions independent
      const SiteId primary = part.primary_of(p);
      std::size_t best_len = 0;
      SiteId best = primary;
      for (SiteId s : part.sites_of(p)) {  // deterministic candidate order
        const auto it = by_site.find(s);
        const std::size_t len = it == by_site.end() ? 0 : it->second;
        const bool wins =
            len > best_len ||
            (len == best_len && (s == primary || (best != primary && s < best)));
        if (wins) {
          best = s;
          best_len = len;
        }
      }
      authority_[p] = best;
    }
  }
  for (const auto& e : installs_) {
    if (part_.has_value() &&
        authority_of(part_->partition_of(e.obj)) != e.site)
      continue;
    orders_[e.obj].writers.push_back(e.writer);
  }
}

SiteId History::authority_of(PartitionId p) const {
  const auto it = authority_.find(p);
  return it == authority_.end() ? part_->primary_of(p) : it->second;
}

namespace {
/// Position of `writer`'s version of an object in its version order;
/// -1 = initial version; -2 = unknown (not installed at the primary).
int version_index(const std::vector<TxnId>& writers, const TxnId& writer) {
  if (!writer.valid()) return -1;
  for (std::size_t i = 0; i < writers.size(); ++i)
    if (writers[i] == writer) return static_cast<int>(i);
  return -2;
}
}  // namespace

CheckResult History::check_read_committed() const {
  build_orders();
  for (const auto& out : txns_) {
    if (!out.committed) continue;
    for (const auto& r : out.txn.reads) {
      if (!r.writer.valid()) continue;  // initial version
      if (committed_index_.contains(r.writer)) continue;
      // A version may be installed (hence committed) even if its
      // coordinator's client response fell outside the recording window.
      const auto it = orders_.find(r.obj);
      if (it != orders_.end() &&
          version_index(it->second.writers, r.writer) >= 0)
        continue;
      return {false, out.txn.id.str() + " read uncommitted version of object " +
                         std::to_string(r.obj) + " written by " +
                         r.writer.str()};
    }
  }
  return {};
}

CheckResult History::acyclic_dsg(bool updates_only) const {
  build_orders();
  // Node ids: indices into txns_ of committed transactions in scope.
  std::unordered_map<TxnId, int> node;
  std::vector<const core::TxnRecord*> records;
  for (const auto& out : txns_) {
    if (!out.committed) continue;
    if (updates_only && out.txn.read_only()) continue;
    node[out.txn.id] = static_cast<int>(records.size());
    records.push_back(&out.txn);
  }
  std::vector<std::vector<int>> adj(records.size());
  const auto add_edge = [&](const TxnId& a, const TxnId& b) {
    if (a == b) return;
    const auto ia = node.find(a);
    const auto ib = node.find(b);
    if (ia == node.end() || ib == node.end()) return;
    adj[static_cast<std::size_t>(ia->second)].push_back(ib->second);
  };

  // ww edges: consecutive writers of each object. orders_ is hash-ordered;
  // visit objects in sorted order so the adjacency lists — and therefore
  // which cycle a search reports first — do not depend on container hash
  // order (checker output must be reproducible across stdlib versions).
  std::vector<ObjectId> objs;
  objs.reserve(orders_.size());
  for (const auto& [obj, order] : orders_)  // gdur-lint: allow(determinism/unordered-iter) key harvest only; sorted below
    objs.push_back(obj);
  std::sort(objs.begin(), objs.end());
  for (ObjectId obj : objs) {
    const auto& order = orders_.find(obj)->second;
    for (std::size_t i = 1; i < order.writers.size(); ++i)
      add_edge(order.writers[i - 1], order.writers[i]);
  }
  // wr and rw edges.
  for (const core::TxnRecord* t : records) {
    for (const auto& r : t->reads) {
      if (r.writer.valid()) add_edge(r.writer, t->id);  // wr
      const auto it = orders_.find(r.obj);
      if (it == orders_.end()) continue;
      const int idx = version_index(it->second.writers, r.writer);
      if (idx == -2) continue;  // unknown version: no rw edge derivable
      const auto next = static_cast<std::size_t>(idx + 1);
      if (next < it->second.writers.size())
        add_edge(t->id, it->second.writers[next]);  // rw anti-dependency
    }
  }

  // Iterative three-color DFS cycle detection.
  enum : unsigned char { kWhite, kGray, kBlack };
  std::vector<unsigned char> color(records.size(), kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int s = 0; s < static_cast<int>(records.size()); ++s) {
    if (color[static_cast<std::size_t>(s)] != kWhite) continue;
    stack.emplace_back(s, 0);
    color[static_cast<std::size_t>(s)] = kGray;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& edges = adj[static_cast<std::size_t>(u)];
      if (next < edges.size()) {
        const int v = edges[next++];
        if (color[static_cast<std::size_t>(v)] == kGray) {
          // The gray path on the stack from v's frame back to the top is
          // the cycle — name every member, not just the entry point.
          std::string cycle;
          bool in_cycle = false;
          for (const auto& [node, pos] : stack) {
            if (node == v) in_cycle = true;
            if (!in_cycle) continue;
            cycle += records[static_cast<std::size_t>(node)]->id.str();
            cycle += " -> ";
          }
          cycle += records[static_cast<std::size_t>(v)]->id.str();
          return {false, "serialization cycle: " + cycle};
        }
        if (color[static_cast<std::size_t>(v)] == kWhite) {
          color[static_cast<std::size_t>(v)] = kGray;
          stack.emplace_back(v, 0);
        }
      } else {
        color[static_cast<std::size_t>(u)] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

CheckResult History::check_serializable() const { return acyclic_dsg(false); }

CheckResult History::check_update_serializable() const {
  auto r = acyclic_dsg(true);
  if (!r.ok) return r;
  return check_consistent_snapshots();
}

CheckResult History::check_ww_exclusion() const {
  build_orders();
  // Concurrency is under-approximated so that every reported violation is
  // real: two transactions are *definitely* concurrent iff each began
  // before the other was even submitted (submission precedes commitment).
  const auto definitely_concurrent = [](const TxnOutcome& a,
                                        const TxnOutcome& b) {
    return a.txn.begin_time < b.txn.submit_time &&
           b.txn.begin_time < a.txn.submit_time;
  };

  // wr (reads-from) adjacency for the snapshot-dependency exception: under
  // NMSI a transaction whose snapshot contains the other writer is not
  // concurrent with it.
  std::unordered_map<TxnId, std::vector<TxnId>> wr;
  for (const auto& out : txns_) {
    if (!out.committed) continue;
    for (const auto& r : out.txn.reads)
      if (r.writer.valid()) wr[r.writer].push_back(out.txn.id);
  }
  const auto reads_from_reachable = [&](const TxnId& from, const TxnId& to) {
    std::unordered_set<TxnId> seen{from};
    std::deque<TxnId> bfs{from};
    while (!bfs.empty()) {
      const TxnId u = bfs.front();
      bfs.pop_front();
      if (u == to) return true;
      const auto it = wr.find(u);
      if (it == wr.end()) continue;
      for (const TxnId& v : it->second)
        if (seen.insert(v).second) bfs.push_back(v);
    }
    return false;
  };

  // Partition-level dependence (matches the PDV granularity of §4.1): Tj
  // depends on Ti's write of x if Tj read any version of x's partition
  // installed at-or-after Ti's write of x.
  std::unordered_map<ObjectId, std::unordered_map<TxnId, std::size_t>>
      install_pos;  // per object: writer -> per-partition sequence position
  std::unordered_map<PartitionId, std::size_t> part_seq;
  if (part_.has_value()) {
    const auto& part = *part_;
    for (const auto& e : installs_) {
      const PartitionId p = part.partition_of(e.obj);
      if (authority_of(p) != e.site) continue;
      install_pos[e.obj][e.writer] = part_seq[p]++;
    }
  }
  const auto partition_dependent = [&](const core::TxnRecord& reader,
                                       const core::TxnRecord& writer,
                                       ObjectId conflict_obj) {
    if (!part_.has_value()) return false;
    const auto& part = *part_;
    const auto wo = install_pos.find(conflict_obj);
    if (wo == install_pos.end()) return false;
    const auto wp = wo->second.find(writer.id);
    if (wp == wo->second.end()) return false;
    const PartitionId p = part.partition_of(conflict_obj);
    for (const auto& r : reader.reads) {
      if (!r.writer.valid() || part.partition_of(r.obj) != p) continue;
      const auto ro = install_pos.find(r.obj);
      if (ro == install_pos.end()) continue;
      const auto rp = ro->second.find(r.writer);
      if (rp != ro->second.end() && rp->second >= wp->second) return true;
    }
    return false;
  };

  // Group committed updates by written object. Checked in sorted object
  // order so the conflict reported (first found) is deterministic instead
  // of hash-order dependent.
  std::unordered_map<ObjectId, std::vector<const TxnOutcome*>> by_obj;
  for (const auto& out : txns_) {
    if (!out.committed || out.txn.read_only()) continue;
    for (ObjectId o : out.txn.ws) by_obj[o].push_back(&out);
  }
  std::vector<ObjectId> conflict_objs;
  conflict_objs.reserve(by_obj.size());
  for (const auto& [obj, writers] : by_obj)  // gdur-lint: allow(determinism/unordered-iter) key harvest only; sorted below
    conflict_objs.push_back(obj);
  std::sort(conflict_objs.begin(), conflict_objs.end());
  for (ObjectId obj : conflict_objs) {
    const auto& writers = by_obj.find(obj)->second;
    for (std::size_t i = 0; i < writers.size(); ++i) {
      for (std::size_t j = i + 1; j < writers.size(); ++j) {
        const auto& a = *writers[i];
        const auto& b = *writers[j];
        if (!definitely_concurrent(a, b)) continue;
        if (reads_from_reachable(a.txn.id, b.txn.id) ||
            reads_from_reachable(b.txn.id, a.txn.id))
          continue;
        if (partition_dependent(a.txn, b.txn, obj) ||
            partition_dependent(b.txn, a.txn, obj))
          continue;
        return {false, "concurrent write-write conflict on object " +
                           std::to_string(obj) + ": " + a.txn.id.str() +
                           " and " + b.txn.id.str()};
      }
    }
  }
  return {};
}

CheckResult History::check_consistent_snapshots() const {
  build_orders();
  // Written-objects index: (writer, object) -> wrote it?
  for (const auto& out : txns_) {
    if (!out.committed) continue;
    const auto& reads = out.txn.reads;
    for (std::size_t i = 0; i < reads.size(); ++i) {
      for (std::size_t j = 0; j < reads.size(); ++j) {
        if (i == j) continue;
        const auto& rx = reads[i];  // read of x ...
        const auto& ry = reads[j];  // ... and of y, written by W = ry.writer
        if (!ry.writer.valid()) continue;
        const auto wit = committed_index_.find(ry.writer);
        if (wit == committed_index_.end()) continue;
        const auto& w = txns_[wit->second].txn;
        if (!w.ws.contains(rx.obj)) continue;
        // W wrote both x and y, and this txn read y from W (or later).
        // Its read of x must then be W's version of x or newer.
        const auto ox = orders_.find(rx.obj);
        if (ox == orders_.end()) continue;
        const int read_idx = version_index(ox->second.writers, rx.writer);
        const int w_idx = version_index(ox->second.writers, w.id);
        if (read_idx == -2 || w_idx == -2) continue;
        if (read_idx < w_idx) {
          return {false, out.txn.id.str() + " observed a fractured snapshot: " +
                             "read object " + std::to_string(ry.obj) +
                             " from " + w.id.str() + " but object " +
                             std::to_string(rx.obj) + " from before it"};
        }
      }
    }
  }
  return {};
}

CheckResult History::check_criterion(const std::string& criterion) const {
  if (auto r = check_read_committed(); !r.ok) return r;
  if (criterion == "RC") return {};
  if (criterion == "SER") {
    if (auto r = check_consistent_snapshots(); !r.ok) return r;
    return check_serializable();
  }
  if (criterion == "US") return check_update_serializable();
  if (criterion == "SI" || criterion == "PSI" || criterion == "NMSI") {
    if (auto r = check_consistent_snapshots(); !r.ok) return r;
    return check_ww_exclusion();
  }
  if (criterion == "RA") return check_consistent_snapshots();
  return {false, "unknown criterion: " + criterion};
}

}  // namespace gdur::checker

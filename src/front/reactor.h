// front::Reactor — the socket engine of the production front door.
//
// Replaces the PR 4 poll()-only EventLoop for both inter-site links and
// client connections. One thread multiplexes every registered socket with
// epoll (level-triggered) or, on hosts without epoll or when configured, a
// portable poll() backend with identical semantics. Frames are
// length-prefixed: a 4-byte little-endian body size followed by the body
// (first body byte is the codec::MsgType tag; the reactor is agnostic).
//
// What it adds over the old loop:
//   * Listening sockets with an accept state machine: new connections get
//     non-blocking mode, TCP_NODELAY and configurable keepalive, then an
//     accept handler runs on the reactor thread.
//   * Zero-copy framing: send_frame takes the body by value (move it in);
//     the 4-byte header lives in the queue node and the body is never
//     re-copied — flushes gather header + body iovecs into one writev().
//   * Read-side backpressure: pause_read() parks a connection's read
//     interest (session windows), and a per-connection pending-output
//     watermark auto-pauses reads from peers that do not drain their
//     responses — a never-reading client cannot grow server memory.
//   * Close handling: peers disappearing mid-run invoke a close handler on
//     the reactor thread exactly once (the old loop only tolerated
//     teardown); close_soon() flushes pending output then closes.
//
// TCP gives per-connection byte ordering and no duplication, and the
// reactor extracts frames in arrival order — together that is the
// exactly-once, FIFO-per-link delivery contract the protocol layer was
// built against (unchanged from PR 4).
//
// Hot-path contract (gdur-lint front/dispatch-alloc): the event demux loop
// — wait, interest re-arm, readiness fan-out — performs no allocation and
// no blocking syscall; buffers are preallocated and growth is amortized
// inside the per-connection read/write handlers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/thread_annotations.h"

namespace gdur::obs {
class StatsSlot;
}

namespace gdur::front {

struct ReactorConfig {
  /// epoll backend (level-triggered). False = portable poll() fallback;
  /// identical observable behavior, chosen at construction.
  bool use_epoll = true;
  /// Frames larger than this are a protocol error; the connection drops.
  std::uint32_t max_frame = 1u << 24;
  /// TCP keepalive for accepted connections (a wedged client host must not
  /// pin a session forever). Applied via SO_KEEPALIVE + TCP_KEEPIDLE/
  /// INTVL/CNT where available.
  bool keepalive = true;
  int keepalive_idle_s = 30;
  int keepalive_interval_s = 5;
  int keepalive_count = 3;
  /// Per-connection pending-output watermark: above it the reactor stops
  /// reading that connection until output drains below half (bounds server
  /// memory under a never-reading peer). 0 = never auto-pause — inter-site
  /// links rely on that.
  std::size_t pause_read_at = 0;
  /// SO_SNDBUF for accepted connections (0 = kernel default). Caps how much
  /// backlog the kernel absorbs before the pause_read_at watermark engages;
  /// the backpressure tests pin it to make the bound observable.
  int sndbuf = 0;
};

class Reactor {
 public:
  /// Called on the reactor thread for every complete frame.
  using FrameHandler =
      std::function<void(int conn_id, std::vector<std::uint8_t> frame)>;
  /// Called on the reactor thread after an inbound connection is accepted
  /// and registered.
  using AcceptHandler = std::function<void(int conn_id)>;
  /// Called on the reactor thread exactly once when a connection dies
  /// (peer close, hard error, oversized frame) or close_soon() completes.
  using CloseHandler = std::function<void(int conn_id)>;

  explicit Reactor(ReactorConfig cfg = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers an established socket; the reactor takes ownership of the fd
  /// and switches it to non-blocking. Thread-safe (callers before start()
  /// or the reactor thread itself via the accept path; any thread works).
  /// Returns the connection id. Ids are never reused within a run.
  int add_connection(int fd);

  /// Registers a listening socket. Must be called before start(). Accepted
  /// connections get keepalive/TCP_NODELAY per the config and are announced
  /// through the accept handler.
  void add_listener(int fd);

  void set_frame_handler(FrameHandler h) { on_frame_ = std::move(h); }
  void set_accept_handler(AcceptHandler h) { on_accept_ = std::move(h); }
  void set_close_handler(CloseHandler h) { on_close_ = std::move(h); }

  void start();
  /// Idempotent. Closes every connection and joins the reactor thread.
  void stop();

  /// Queues one frame (length prefix added here) for `conn_id`, taking the
  /// body by value — move it in and it is never copied again; the flush
  /// path gathers header + body with writev. Thread-safe; never blocks on
  /// the socket. Frames to dead/unknown connections are dropped.
  void send_frame(int conn_id, std::vector<std::uint8_t> body);

  /// Parks (or resumes) read interest on a connection — the session-window
  /// backpressure hook. Thread-safe; takes effect on the next reactor wake.
  void pause_read(int conn_id, bool paused);

  /// Flushes pending output for `conn_id`, then closes it (close handler
  /// runs). Thread-safe.
  void close_soon(int conn_id);

  /// Runs `fn` on the reactor thread before the next event wait.
  /// Thread-safe; tasks posted after stop() are dropped.
  void post(std::function<void()> fn);

  [[nodiscard]] std::uint64_t frames_received() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Lock-free gauges for the stall watchdog. A healthy reactor wakes at
  /// least every wait timeout (100 ms), so the probe pair is (progress =
  /// wakeups, pending = unflushed output bytes): a reactor thread wedged
  /// inside a frame handler freezes the wakeup counter while queued bytes
  /// pile up.
  [[nodiscard]] std::uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pending_out_bytes() const {
    const std::uint64_t q = queued_bytes_.load(std::memory_order_relaxed);
    const std::uint64_t f = flushed_bytes_.load(std::memory_order_relaxed);
    return q > f ? q - f : 0;
  }
  /// Pending output of one connection (the per-connection watermark gauge).
  [[nodiscard]] std::uint64_t conn_pending_out(int conn_id) const;
  /// True while the auto-pause watermark has this connection's reads parked
  /// (test hook for the bounded-memory contract).
  [[nodiscard]] bool read_paused(int conn_id) const;

  /// Optional stats slot: the reactor thread records Counter::kLoopWakeups
  /// per wait return. Set before start(); not owned.
  void set_stats(obs::StatsSlot* s) { stats_ = s; }

  [[nodiscard]] bool using_epoll() const { return epfd_ >= 0; }

 private:
  /// One queued outbound frame: the 4-byte length prefix lives here, the
  /// body is the caller's buffer moved in — never re-copied, only gathered
  /// into writev iovecs.
  struct OutMsg {
    std::uint8_t hdr[4];
    std::vector<std::uint8_t> body;
    std::size_t off = 0;  // bytes of hdr+body already written
  };

  struct Conn {
    int fd = -1;
    /// Reactor thread only.
    bool dead = false;
    bool close_after_flush = false;
    bool auto_paused = false;          // output watermark tripped
    bool in_epoll_once = false;        // registered with epoll at least once
    std::uint32_t armed_events = 0;    // last epoll interest registered
    std::vector<std::uint8_t> in;      // reactor thread only
    std::size_t in_off = 0;            // parsed prefix of `in`
    /// Any thread.
    std::atomic<bool> user_paused{false};
    std::atomic<std::uint64_t> out_bytes{0};
    Mutex out_mu;
    std::deque<OutMsg> out GUARDED_BY(out_mu);
  };

  void loop();
  // Hot roots (gdur-hotpath-reachability, DESIGN.md §16): the epoll demux
  // loop and its re-arm helpers must stay allocation- and sleep-free.
  // run_poll is exempt by documented contract — it rebuilds pollfd vectors
  // per iteration and is the compatibility backend, not the fast path.
  GDUR_HOT_PATH("noalloc,nosleep") void run_epoll();
  void run_poll();
  GDUR_HOT_PATH("noalloc,nosleep")
  void drain_control();  // tasks + dirty-interest re-arm (reactor thread)
  // Boundaries: accept and read paths grow connection state by design
  // (session setup, amortized input-buffer growth, frame extraction).
  GDUR_HOT_BOUNDARY void handle_listener(int lfd);
  GDUR_HOT_BOUNDARY void handle_readable(Conn& c, int conn_id);
  /// Returns false on a fatal write error (caller should mark_dead).
  bool flush_writable(Conn& c) EXCLUDES(c.out_mu);
  void mark_dead(Conn& c, int conn_id);
  GDUR_HOT_PATH("noalloc,nosleep") void update_interest(Conn& c, int conn_id);
  [[nodiscard]] bool wants_read(const Conn& c) const;
  [[nodiscard]] bool wants_write(Conn& c) EXCLUDES(c.out_mu);
  void mark_dirty(int conn_id);
  void wake();
  [[nodiscard]] Conn* conn_at(int conn_id) const;
  [[nodiscard]] std::size_t conn_count() const;

  ReactorConfig cfg_;
  FrameHandler on_frame_;
  AcceptHandler on_accept_;
  CloseHandler on_close_;

  /// Connection table: append-only (ids stable, entries tombstoned on
  /// death), deque so pointers survive growth. Guarded for the structure;
  /// element access after lookup relies on Conn's own synchronization.
  mutable Mutex conns_mu_;
  std::deque<std::unique_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);

  std::vector<int> listeners_;  // set before start()

  Mutex ctl_mu_;
  std::vector<std::function<void()>> tasks_ GUARDED_BY(ctl_mu_);
  std::vector<int> dirty_ GUARDED_BY(ctl_mu_);  // conns needing re-arm
  bool stopping_ GUARDED_BY(ctl_mu_) = false;

  int epfd_ = -1;  // -1 = poll() backend
  int wake_pipe_[2] = {-1, -1};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> wakeups_{0};        // reactor thread writes
  std::atomic<std::uint64_t> queued_bytes_{0};   // senders (send_frame)
  std::atomic<std::uint64_t> flushed_bytes_{0};  // reactor thread writes
  obs::StatsSlot* stats_ = nullptr;  // set before start()
  bool running_ = false;  // control thread (start/stop callers) only
  std::thread thread_;

  // Preallocated scratch for the demux loop (no allocation there).
  std::vector<std::function<void()>> task_scratch_;
  std::vector<int> dirty_scratch_;
};

}  // namespace gdur::front

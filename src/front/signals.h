// Clean-shutdown signal plumbing shared by the long-running binaries
// (gdur_live, gdur_site): SIGTERM/SIGINT request a drain instead of killing
// the process mid-transaction.
//
// The handler only sets a flag (async-signal-safe); runtime code polls
// shutdown_requested() at its natural pause points. A second signal while
// draining escalates to _exit(130) so a wedged drain can still be killed
// interactively.
#pragma once

namespace gdur::front {

/// Installs SIGTERM + SIGINT handlers. Call once, before spawning threads.
void install_shutdown_handler();

/// True once a shutdown signal arrived. Cheap (one relaxed atomic load).
[[nodiscard]] bool shutdown_requested();

/// Blocks until a shutdown signal arrives or `secs` elapse, polling the
/// flag (the measurement-window sleep of the live harness: interruptible,
/// unlike a bare sleep_for). Returns true if interrupted by a signal.
bool interruptible_sleep(double secs);

/// Test hooks: fake a received signal without raising one / clear the flag
/// so later tests in the same binary start fresh.
void request_shutdown_for_test();
void reset_shutdown_for_test();

}  // namespace gdur::front

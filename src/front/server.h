// FrontServer — the production front door of one site.
//
// Owns a front::Reactor with a listening socket and speaks the client
// protocol (codec 32+ message types): hello/welcome session establishment,
// then pipelined, cookie-correlated requests — begin/read/write/commit for
// interactive transactions and kStored for one-shot stored transactions.
//
// Threading: the reactor thread only moves bytes; every accept, frame and
// close event is posted to the serving site's mailbox, so all session state
// (front::Session) is confined to the site thread, exactly like the replica
// it fronts. Responses go back through Reactor::send_frame (thread-safe).
//
// Backpressure, two layers (DESIGN.md §15):
//   * Admission: when the site's certification queue exceeds
//     `pushback_hi`, every session gets Pushback{stop=1} and well-behaved
//     clients stop submitting; Pushback{stop=0} releases them below
//     `pushback_lo`. Sessions that keep submitting anyway are cut off at
//     4× their advertised window (protocol violation).
//   * Memory: a never-reading client grows its connection's output queue,
//     not the server — the reactor auto-pauses reads above
//     `pause_read_at` pending output bytes, so the server stops accepting
//     new requests from that client until it drains responses.
//
// Per-request metadata comes from a free-list pool (front::Arena's Pool):
// the steady-state request path allocates no metadata nodes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/analysis_annotations.h"
#include "front/arena.h"
#include "front/reactor.h"
#include "front/session.h"
#include "live/live_cluster.h"
#include "net/codec.h"

namespace gdur::front {

struct FrontConfig {
  /// The site this front door serves; every transaction it admits is
  /// coordinated there. Must be hosted by this process.
  SiteId site = 0;
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port() after start().
  std::uint16_t port = 0;
  /// Per-session in-flight window advertised in the welcome frame.
  std::uint32_t window = 64;
  /// Certification-queue depth tripping / releasing admission pushback.
  std::size_t pushback_hi = 512;
  std::size_t pushback_lo = 128;
  /// Reactor per-connection output watermark (never-reading client bound).
  std::size_t pause_read_at = 1u << 20;
  /// SO_SNDBUF for client connections (0 = kernel default); see
  /// ReactorConfig::sndbuf.
  int sndbuf = 0;
  bool use_epoll = true;
};

class FrontServer {
 public:
  /// Observes every transaction this server terminates (commit or abort)
  /// with its client-visible response time. Runs on the site thread; wire
  /// it to checker::History + harness::Metrics.
  using TxnObserver =
      std::function<void(const core::TxnRecord&, bool committed,
                         SimTime response_ns)>;

  FrontServer(live::LiveCluster& cl, FrontConfig cfg);
  ~FrontServer();

  FrontServer(const FrontServer&) = delete;
  FrontServer& operator=(const FrontServer&) = delete;

  /// Binds + listens + starts the reactor. Call after the cluster started.
  void start();
  /// Stops accepting, drops every session, joins the reactor. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  void set_observer(TxnObserver obs) { observer_ = std::move(obs); }
  /// Site stats slot for kClientSessions/kClientOps/kClientPushbacks.
  /// Set before start(); not owned.
  void set_stats(obs::StatsSlot* s) { stats_ = s; }

  // --- lock-free gauges (tests, obs probes) ------------------------------
  [[nodiscard]] std::uint64_t sessions_opened() const {
    return sessions_opened_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sessions_live() const {
    return sessions_live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t open_txns() const {
    return open_txns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ops_served() const {
    return ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pushback_trips() const {
    return pushback_trips_.load(std::memory_order_relaxed);
  }
  /// Requests admitted but not yet responded to (drain-completion gauge).
  [[nodiscard]] std::uint64_t requests_inflight() const {
    return ctx_live_.load(std::memory_order_relaxed);
  }
  /// True while admission pushback is engaged (watermark test hook).
  [[nodiscard]] bool pushed_back() const {
    return pushed_.load(std::memory_order_relaxed);
  }

  /// One-line state breakdown (mirrors Replica::term_breakdown): the
  /// no-leak probe for session GC — every per-session structure must
  /// return to zero after clients disconnect.
  [[nodiscard]] std::string breakdown() const;

  [[nodiscard]] Reactor& reactor() { return reactor_; }

 private:
  /// Pooled per-request metadata; recycled when the response ships.
  struct RequestCtx {
    int conn = -1;
    std::uint64_t session = 0;
    std::uint64_t cookie = 0;
    net::codec::ClientOp op = net::codec::ClientOp::kBegin;
    SimTime t0 = 0;  // receipt time (latency measurement)
    /// kStored only: remaining work, consumed left to right.
    std::vector<ObjectId> reads;
    std::vector<ObjectId> writes;
    std::size_t next = 0;
    core::MutTxnPtr txn;
  };

  // All private handlers run on the site mailbox thread. The
  // GDUR_CONFINED annotations make that sentence machine-checked:
  // gdur-thread-confinement proves every access to the site-thread state
  // below happens inside one of these (or a function they dominate).
  GDUR_CONFINED("site-thread") void on_accept(int conn);
  GDUR_CONFINED("site-thread") void on_close(int conn);
  GDUR_CONFINED("site-thread")
  void on_frame(int conn, std::vector<std::uint8_t> frame);
  GDUR_CONFINED("site-thread")
  void handle_hello(Session& s, const net::codec::ClientHelloMsg& m);
  GDUR_CONFINED("site-thread")
  void handle_req(Session& s, const net::codec::ClientReqMsg& m);
  GDUR_CONFINED("site-thread") void step_stored(RequestCtx* ctx);
  GDUR_CONFINED("site-thread")
  void respond(RequestCtx* ctx, bool ok, std::uint64_t txn,
               std::uint64_t payload);
  GDUR_CONFINED("site-thread") void send_to(int conn, net::codec::Writer& w);
  GDUR_CONFINED("site-thread")
  void finish_txn(Session* s, RequestCtx* ctx, bool ok);
  GDUR_CONFINED("site-thread") void check_pushback();
  GDUR_CONFINED("site-thread") void send_pushback(Session& s, bool stop);
  [[nodiscard]] GDUR_CONFINED("site-thread") Session* session_of(int conn);

  live::LiveCluster& cl_;
  FrontConfig cfg_;
  Reactor reactor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  TxnObserver observer_;
  obs::StatsSlot* stats_ = nullptr;

  // Site-thread-only state (proof: gdur-thread-confinement, lane
  // "site-thread" — only the annotated handlers above may touch these).
  GDUR_CONFINED("site-thread")
  std::unordered_map<int, Session> sessions_;  // conn id → session
  GDUR_CONFINED("site-thread") std::uint64_t next_session_ = 1;
  GDUR_CONFINED("site-thread") Pool<RequestCtx> pool_;

  // Gauges (site thread writes, any thread reads).
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_live_{0};
  std::atomic<std::uint64_t> open_txns_{0};
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> pushback_trips_{0};
  std::atomic<std::uint64_t> ctx_live_{0};
  std::atomic<bool> pushed_{false};
};

}  // namespace gdur::front

#include "front/history_log.h"

#include <cstdio>
#include <utility>

#include "net/codec.h"
#include "net/wire.h"

namespace gdur::front {

namespace codec = net::codec;

namespace {

constexpr std::uint32_t kMagic = 0x4844'4731;  // "GDH1" little-endian
constexpr std::uint8_t kTxnRecordTag = 1;
constexpr std::uint8_t kInstallTag = 2;

void encode_header(codec::Writer& w, const HistoryDumpHeader& h) {
  w.u32(kMagic);
  w.str(h.protocol);
  w.str(h.criterion);
  w.u32(h.sites);
  w.u32(h.replication);
  w.varint(h.objects);
  w.u32(h.partitions_per_site);
  w.u32(h.self);
}

std::optional<HistoryDumpHeader> decode_header(codec::Reader& r) {
  const auto magic = r.u32();
  if (!magic || *magic != kMagic) return std::nullopt;
  HistoryDumpHeader h;
  auto protocol = r.str();
  auto criterion = r.str();
  if (!protocol || !criterion) return std::nullopt;
  h.protocol = std::move(*protocol);
  h.criterion = std::move(*criterion);
  const auto sites = r.u32();
  const auto repl = r.u32();
  const auto objects = r.varint();
  const auto parts = r.u32();
  const auto self = r.u32();
  if (!sites || !repl || !objects || !parts || !self) return std::nullopt;
  h.sites = *sites;
  h.replication = *repl;
  h.objects = *objects;
  h.partitions_per_site = *parts;
  h.self = *self;
  return h;
}

}  // namespace

void HistoryLogWriter::add_txn(const core::TxnRecord& t, bool committed,
                               SimTime response) {
  MutexLock lock(&mu_);
  txns_.push_back({t, committed, response});
}

void HistoryLogWriter::add_install(const core::Cluster::InstallEvent& e) {
  MutexLock lock(&mu_);
  installs_.push_back(e);
}

std::size_t HistoryLogWriter::txn_count() const {
  MutexLock lock(&mu_);
  return txns_.size();
}

bool HistoryLogWriter::write_file(const std::string& path) const {
  codec::Writer w;
  encode_header(w, hdr_);
  {
    MutexLock lock(&mu_);
    for (const auto& t : txns_) {
      w.u8(kTxnRecordTag);
      codec::encode_txn(w, t.txn, net::wire::kPayload);
      w.u8(t.committed ? 1 : 0);
      w.varint(static_cast<std::uint64_t>(t.response_time));
    }
    for (const auto& e : installs_) {
      w.u8(kInstallTag);
      w.varint(e.obj);
      w.u32(e.writer.coord);
      w.varint(e.writer.seq);
      w.varint(e.pidx);
      w.u32(e.site);
      w.varint(static_cast<std::uint64_t>(e.time));
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(w.data().data(), 1, w.size(), f) == w.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<HistoryDump> read_history_dump(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    bytes.insert(bytes.end(), buf, buf + n);
    if (n < sizeof(buf)) break;
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return std::nullopt;

  codec::Reader r(bytes);
  auto hdr = decode_header(r);
  if (!hdr) return std::nullopt;
  HistoryDump dump;
  dump.header = std::move(*hdr);
  while (r.remaining() > 0) {
    const auto tag = r.u8();
    if (!tag) return std::nullopt;
    if (*tag == kTxnRecordTag) {
      auto t = codec::decode_txn(r);
      const auto committed = r.u8();
      const auto resp = r.varint();
      if (!t || !committed || *committed > 1 || !resp) return std::nullopt;
      dump.txns.push_back({std::move(*t), *committed == 1,
                           static_cast<SimTime>(*resp)});
    } else if (*tag == kInstallTag) {
      core::Cluster::InstallEvent e;
      const auto obj = r.varint();
      const auto coord = r.u32();
      const auto seq = r.varint();
      const auto pidx = r.varint();
      const auto site = r.u32();
      const auto time = r.varint();
      if (!obj || !coord || !seq || !pidx || !site || !time)
        return std::nullopt;
      e.obj = *obj;
      e.writer = {*coord, *seq};
      e.pidx = *pidx;
      e.site = *site;
      e.time = static_cast<SimTime>(*time);
      dump.installs.push_back(e);
    } else {
      return std::nullopt;
    }
  }
  return dump;
}

}  // namespace gdur::front

#include "front/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "net/wire.h"
#include "obs/stats.h"

namespace gdur::front {

namespace codec = net::codec;

FrontServer::FrontServer(live::LiveCluster& cl, FrontConfig cfg)
    : cl_(cl), cfg_(std::move(cfg)), reactor_([&] {
        ReactorConfig rc;
        rc.use_epoll = cfg_.use_epoll;
        rc.pause_read_at = cfg_.pause_read_at;
        rc.sndbuf = cfg_.sndbuf;
        return rc;
      }()) {
  if (!cl_.hosted(cfg_.site))
    throw std::runtime_error("front: site not hosted by this process");
}

FrontServer::~FrontServer() { stop(); }

void FrontServer::start() {
  if (started_) return;
  started_ = true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("front: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("front: bad host " + cfg_.host);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw std::runtime_error("front: bind failed on " + cfg_.host + ":" +
                             std::to_string(cfg_.port));
  if (::listen(listen_fd_, 128) != 0)
    throw std::runtime_error("front: listen failed");
  sockaddr_in bound = {};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  // The reactor thread never touches session state: every event hops to the
  // serving site's mailbox, the same single thread the replica runs on.
  // Mailbox FIFO preserves the reactor's event order per connection
  // (accept before frames before close).
  reactor_.set_accept_handler(
      [this](int conn) { cl_.post(cfg_.site, [this, conn] { on_accept(conn); }); });
  reactor_.set_close_handler(
      [this](int conn) { cl_.post(cfg_.site, [this, conn] { on_close(conn); }); });
  reactor_.set_frame_handler(
      [this](int conn, std::vector<std::uint8_t> frame) {
        cl_.post(cfg_.site, [this, conn, f = std::move(frame)]() mutable {
          on_frame(conn, std::move(f));
        });
      });
  reactor_.add_listener(listen_fd_);
  reactor_.start();
}

void FrontServer::stop() {
  if (!started_) return;
  started_ = false;
  // Joining the reactor ends the event stream; session teardown tasks
  // already posted either run or are discarded with the mailboxes (stop the
  // server before the cluster).
  reactor_.stop();
}

Session* FrontServer::session_of(int conn) {
  auto it = sessions_.find(conn);
  return it == sessions_.end() ? nullptr : &it->second;
}

void FrontServer::on_accept(int conn) {
  Session s;
  s.conn = conn;
  s.id = next_session_++;
  sessions_.emplace(conn, std::move(s));
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  sessions_live_.fetch_add(1, std::memory_order_relaxed);
  if (stats_ != nullptr) stats_->record(obs::Counter::kClientSessions);
}

void FrontServer::on_close(int conn) {
  auto it = sessions_.find(conn);
  if (it == sessions_.end()) return;
  // Presumed abort: open transactions were never submitted, so dropping
  // their records terminates them with no protocol traffic. In-flight
  // request contexts find the session gone and recycle themselves.
  open_txns_.fetch_sub(it->second.open.size(), std::memory_order_relaxed);
  sessions_.erase(it);
  sessions_live_.fetch_sub(1, std::memory_order_relaxed);
}

void FrontServer::on_frame(int conn, std::vector<std::uint8_t> frame) {
  Session* s = session_of(conn);
  if (s == nullptr || s->closing) return;
  codec::Reader r(frame);
  const auto tag = r.u8();
  if (!tag) return;
  switch (static_cast<codec::MsgType>(*tag)) {
    case codec::MsgType::kClientHello: {
      auto m = codec::decode_client_hello(r);
      if (!m || s->hello_done) break;
      handle_hello(*s, *m);
      return;
    }
    case codec::MsgType::kClientReq: {
      auto m = codec::decode_client_req(r);
      if (!m || !s->hello_done) break;
      handle_req(*s, *m);
      return;
    }
    default:
      break;
  }
  // Malformed or out-of-order traffic: cut the connection (the close
  // handler GCs the session).
  GDUR_WARN("front: dropping client conn=%d after bad frame type=%u", conn,
            static_cast<unsigned>(*tag));
  s->closing = true;
  reactor_.close_soon(conn);
}

void FrontServer::handle_hello(Session& s,
                               const codec::ClientHelloMsg& /*m*/) {
  s.hello_done = true;
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientWelcome));
  codec::encode_client_welcome(
      w, {s.id, cfg_.window, cfg_.site, cl_.spec().name});
  send_to(s.conn, w);
  // Joined mid-overload: tell the new session immediately.
  if (pushed_.load(std::memory_order_relaxed)) send_pushback(s, true);
}

void FrontServer::handle_req(Session& s, const codec::ClientReqMsg& m) {
  // A client ignoring both its window and pushback frames is violating the
  // protocol; cut it off rather than queueing unboundedly.
  if (s.inflight >= 4 * cfg_.window) {
    GDUR_WARN("front: session %llu exceeded 4x window, closing",
              static_cast<unsigned long long>(s.id));
    s.closing = true;
    reactor_.close_soon(s.conn);
    return;
  }
  ++s.inflight;
  ++s.ops;
  if (stats_ != nullptr) stats_->record(obs::Counter::kClientOps);

  RequestCtx* ctx = pool_.get();
  ctx_live_.fetch_add(1, std::memory_order_relaxed);
  ctx->conn = s.conn;
  ctx->session = s.id;
  ctx->cookie = m.cookie;
  ctx->op = m.op;
  ctx->t0 = cl_.now();
  ctx->reads.clear();
  ctx->writes.clear();
  ctx->next = 0;
  ctx->txn.reset();

  switch (m.op) {
    case codec::ClientOp::kBegin:
      cl_.begin(cfg_.site, [this, ctx](core::MutTxnPtr t) {
        Session* sess = session_of(ctx->conn);
        if (sess == nullptr || sess->closing) {
          // Disconnected while the begin was in flight: presumed abort.
          respond(ctx, false, 0, 0);
          return;
        }
        sess->open.emplace(t->id.seq, t);
        open_txns_.fetch_add(1, std::memory_order_relaxed);
        respond(ctx, true, t->id.seq, 0);
      });
      return;
    case codec::ClientOp::kRead: {
      auto it = s.open.find(m.txn);
      if (it == s.open.end()) {
        respond(ctx, false, m.txn, 0);
        return;
      }
      cl_.read(cfg_.site, it->second, m.obj,
               [this, ctx, txn = m.txn](bool ok) {
                 respond(ctx, ok, txn, net::wire::kPayload);
               });
      return;
    }
    case codec::ClientOp::kWrite: {
      auto it = s.open.find(m.txn);
      if (it == s.open.end()) {
        respond(ctx, false, m.txn, 0);
        return;
      }
      cl_.write(cfg_.site, it->second, m.obj,
                [this, ctx, txn = m.txn] { respond(ctx, true, txn, 0); });
      return;
    }
    case codec::ClientOp::kCommit: {
      auto it = s.open.find(m.txn);
      if (it == s.open.end()) {
        respond(ctx, false, m.txn, 0);
        return;
      }
      // Remove from the open table at submit so a duplicate commit for the
      // same handle can't double-terminate.
      ctx->txn = it->second;
      s.open.erase(it);
      open_txns_.fetch_sub(1, std::memory_order_relaxed);
      cl_.commit(cfg_.site, ctx->txn, [this, ctx](bool ok) {
        finish_txn(session_of(ctx->conn), ctx, ok);
      });
      return;
    }
    case codec::ClientOp::kStored: {
      ctx->reads = m.reads;
      ctx->writes = m.writes;
      cl_.begin(cfg_.site, [this, ctx](core::MutTxnPtr t) {
        ctx->txn = std::move(t);
        step_stored(ctx);
      });
      return;
    }
  }
  respond(ctx, false, 0, 0);
}

void FrontServer::step_stored(RequestCtx* ctx) {
  // One-shot stored transaction: reads left to right, then writes, then
  // commit — the whole chain stays on the site thread.
  if (ctx->next < ctx->reads.size()) {
    const ObjectId x = ctx->reads[ctx->next++];
    cl_.read(cfg_.site, ctx->txn, x, [this, ctx](bool ok) {
      if (!ok) {
        finish_txn(session_of(ctx->conn), ctx, false);
        return;
      }
      step_stored(ctx);
    });
    return;
  }
  const std::size_t widx = ctx->next - ctx->reads.size();
  if (widx < ctx->writes.size()) {
    const ObjectId x = ctx->writes[widx];
    ++ctx->next;
    cl_.write(cfg_.site, ctx->txn, x, [this, ctx] { step_stored(ctx); });
    return;
  }
  cl_.commit(cfg_.site, ctx->txn, [this, ctx](bool ok) {
    finish_txn(session_of(ctx->conn), ctx, ok);
  });
}

void FrontServer::finish_txn(Session* s, RequestCtx* ctx, bool ok) {
  const SimTime dt = cl_.now() - ctx->t0;
  if (observer_ && ctx->txn) observer_(*ctx->txn, ok, dt);
  if (s == nullptr || s->closing) {
    // Client gone; the outcome is already durable cluster-side, only the
    // response is undeliverable.
    ctx->txn.reset();
    ctx->reads.clear();
    ctx->writes.clear();
    pool_.put(ctx);
    ctx_live_.fetch_sub(1, std::memory_order_relaxed);
    check_pushback();
    return;
  }
  const std::uint64_t seq = ctx->txn ? ctx->txn->id.seq : 0;
  respond(ctx, ok, seq, 0);
}

void FrontServer::respond(RequestCtx* ctx, bool ok, std::uint64_t txn,
                          std::uint64_t payload) {
  // Count the op before the response ships: a client that has seen the
  // response (and e.g. asserts on the gauge) must never observe a smaller
  // count.
  ops_.fetch_add(1, std::memory_order_relaxed);
  Session* s = session_of(ctx->conn);
  if (s != nullptr && !s->closing) {
    codec::Writer w;
    w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientResp));
    codec::encode_client_resp(w, {ctx->cookie, ctx->op, ok, txn, payload});
    send_to(ctx->conn, w);
    if (s->inflight > 0) --s->inflight;
  }
  ctx->txn.reset();
  ctx->reads.clear();
  ctx->writes.clear();
  pool_.put(ctx);
  ctx_live_.fetch_sub(1, std::memory_order_relaxed);
  check_pushback();
}

void FrontServer::send_to(int conn, codec::Writer& w) {
  // The writer's buffer moves straight into the reactor's outbound queue;
  // the flush path gathers it into writev without another copy.
  reactor_.send_frame(conn, w.take());
}

void FrontServer::check_pushback() {
  const std::size_t depth = cl_.replica(cfg_.site).queue_length();
  const bool cur = pushed_.load(std::memory_order_relaxed);
  if (!cur && depth >= cfg_.pushback_hi) {
    pushed_.store(true, std::memory_order_relaxed);
    pushback_trips_.fetch_add(1, std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->record(obs::Counter::kClientPushbacks);
    // Broadcast over live client sessions: each frame goes to a distinct
    // connection, so cross-session send order is unobservable on any wire.
    // gdur-analyze: allow(gdur-determinism-escape) per-connection frames
    for (auto& [c, s] : sessions_) {
      if (s.hello_done && !s.closing) send_pushback(s, true);
    }
  } else if (cur && depth <= cfg_.pushback_lo) {
    pushed_.store(false, std::memory_order_relaxed);
    // Same per-connection argument as above for the resume broadcast.
    // gdur-analyze: allow(gdur-determinism-escape) per-connection frames
    for (auto& [c, s] : sessions_) {
      if (s.hello_done && !s.closing && s.pushed) send_pushback(s, false);
    }
  }
}

void FrontServer::send_pushback(Session& s, bool stop) {
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kPushback));
  codec::encode_pushback(
      w, {stop, static_cast<std::uint64_t>(
                    cl_.replica(cfg_.site).queue_length())});
  send_to(s.conn, w);
  s.pushed = stop;
}

std::string FrontServer::breakdown() const {
  // Mirrors Replica::term_breakdown(): every per-session structure, so
  // tests can assert it returns to baseline after clients disconnect.
  return "sessions=" + std::to_string(sessions_live_.load()) +
         " open_txns=" + std::to_string(open_txns_.load()) +
         " ctx_live=" + std::to_string(ctx_live_.load());
}

}  // namespace gdur::front

#include "front/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/stats.h"

namespace gdur::front {

namespace {

constexpr std::uint64_t kListenerBit = 1ull << 63;
constexpr int kMaxEvents = 128;
constexpr int kMaxIov = 64;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Reactor::Reactor(ReactorConfig cfg) : cfg_(cfg) {}

Reactor::~Reactor() {
  stop();
  {
    MutexLock lock(&conns_mu_);
    for (auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
    }
  }
  for (int lfd : listeners_) ::close(lfd);
}

int Reactor::add_connection(int fd) {
  set_nonblocking(fd);
  auto c = std::make_unique<Conn>();
  c->fd = fd;
  int id;
  {
    MutexLock lock(&conns_mu_);
    conns_.push_back(std::move(c));
    id = static_cast<int>(conns_.size()) - 1;
  }
  // Registration with the backend happens on the reactor thread at the next
  // control drain (immediately for pre-start adds: start() arms everything).
  mark_dirty(id);
  wake();
  return id;
}

void Reactor::add_listener(int fd) {
  set_nonblocking(fd);
  listeners_.push_back(fd);
}

Reactor::Conn* Reactor::conn_at(int conn_id) const {
  if (conn_id < 0) return nullptr;
  MutexLock lock(&conns_mu_);
  if (static_cast<std::size_t>(conn_id) >= conns_.size()) return nullptr;
  return conns_[static_cast<std::size_t>(conn_id)].get();
}

std::size_t Reactor::conn_count() const {
  MutexLock lock(&conns_mu_);
  return conns_.size();
}

void Reactor::start() {
  if (running_) return;
  if (::pipe(wake_pipe_) != 0) {
    GDUR_ERROR("front: pipe() failed: %s", std::strerror(errno));
    return;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
#ifdef __linux__
  if (cfg_.use_epoll) {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) {
      GDUR_WARN("front: epoll_create1 failed (%s); using poll() backend",
                std::strerror(errno));
    }
  }
#endif
  {
    MutexLock lock(&ctl_mu_);
    stopping_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Reactor::stop() {
  if (!running_) return;
  {
    MutexLock lock(&ctl_mu_);
    stopping_ = true;
  }
  wake();
  thread_.join();
  running_ = false;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (epfd_ >= 0) {
    ::close(epfd_);
    epfd_ = -1;
  }
}

void Reactor::wake() {
  if (wake_pipe_[1] < 0) return;
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void Reactor::post(std::function<void()> fn) {
  {
    MutexLock lock(&ctl_mu_);
    if (stopping_) return;
    tasks_.push_back(std::move(fn));
  }
  wake();
}

void Reactor::mark_dirty(int conn_id) {
  MutexLock lock(&ctl_mu_);
  dirty_.push_back(conn_id);
}

void Reactor::send_frame(int conn_id, std::vector<std::uint8_t> body) {
  Conn* c = conn_at(conn_id);
  if (c == nullptr) return;
  if (body.size() > cfg_.max_frame) {
    GDUR_ERROR("front: refusing oversized frame (%zu bytes)", body.size());
    return;
  }
  const auto len = static_cast<std::uint32_t>(body.size());
  const std::uint64_t total = body.size() + 4;
  {
    MutexLock lock(&c->out_mu);
    OutMsg m;
    m.hdr[0] = static_cast<std::uint8_t>(len & 0xff);
    m.hdr[1] = static_cast<std::uint8_t>((len >> 8) & 0xff);
    m.hdr[2] = static_cast<std::uint8_t>((len >> 16) & 0xff);
    m.hdr[3] = static_cast<std::uint8_t>((len >> 24) & 0xff);
    m.body = std::move(body);  // zero-copy: gathered into writev later
    c->out.push_back(std::move(m));
  }
  c->out_bytes.fetch_add(total, std::memory_order_relaxed);
  queued_bytes_.fetch_add(total, std::memory_order_relaxed);
  mark_dirty(conn_id);
  wake();
}

void Reactor::pause_read(int conn_id, bool paused) {
  Conn* c = conn_at(conn_id);
  if (c == nullptr) return;
  c->user_paused.store(paused, std::memory_order_relaxed);
  mark_dirty(conn_id);
  wake();
}

void Reactor::close_soon(int conn_id) {
  post([this, conn_id] {
    Conn* c = conn_at(conn_id);
    if (c == nullptr || c->dead) return;
    c->close_after_flush = true;
    if (!flush_writable(*c)) {
      mark_dead(*c, conn_id);
      return;
    }
    bool empty;
    {
      MutexLock lock(&c->out_mu);
      empty = c->out.empty();
    }
    if (empty) {
      mark_dead(*c, conn_id);
    } else {
      update_interest(*c, conn_id);
    }
  });
}

std::uint64_t Reactor::conn_pending_out(int conn_id) const {
  const Conn* c = conn_at(conn_id);
  return c != nullptr ? c->out_bytes.load(std::memory_order_relaxed) : 0;
}

bool Reactor::read_paused(int conn_id) const {
  const Conn* c = conn_at(conn_id);
  if (c == nullptr) return false;
  return c->auto_paused || c->user_paused.load(std::memory_order_relaxed);
}

bool Reactor::wants_read(const Conn& c) const {
  return !c.dead && !c.close_after_flush && !c.auto_paused &&
         !c.user_paused.load(std::memory_order_relaxed);
}

bool Reactor::wants_write(Conn& c) {
  if (c.dead) return false;
  MutexLock lock(&c.out_mu);
  return !c.out.empty();
}

void Reactor::update_interest(Conn& c, int conn_id) {
  if (c.dead || c.fd < 0) return;
  // Output watermark: a peer that stops draining its responses gets its
  // reads parked until the backlog halves — server memory stays bounded no
  // matter how fast the peer submits (the never-reading-client contract).
  if (cfg_.pause_read_at > 0) {
    const std::uint64_t out = c.out_bytes.load(std::memory_order_relaxed);
    if (!c.auto_paused && out > cfg_.pause_read_at) {
      c.auto_paused = true;
    } else if (c.auto_paused && out < cfg_.pause_read_at / 2) {
      c.auto_paused = false;
    }
  }
#ifdef __linux__
  if (epfd_ >= 0) {
    std::uint32_t ev = 0;
    if (wants_read(c)) ev |= EPOLLIN;
    if (wants_write(c)) ev |= EPOLLOUT;
    if (ev == c.armed_events) return;
    epoll_event e{};
    e.events = ev;
    e.data.u64 = static_cast<std::uint64_t>(conn_id);
    const int op = c.armed_events == 0 && !c.in_epoll_once
                       ? EPOLL_CTL_ADD
                       : EPOLL_CTL_MOD;
    if (::epoll_ctl(epfd_, op, c.fd, &e) == 0) {
      c.in_epoll_once = true;
      c.armed_events = ev;
    }
    return;
  }
#endif
  // poll() backend recomputes interest from scratch every iteration.
  (void)conn_id;
}

void Reactor::drain_control() {
  {
    MutexLock lock(&ctl_mu_);
    task_scratch_.swap(tasks_);
    dirty_scratch_.swap(dirty_);
  }
  for (auto& t : task_scratch_) t();
  task_scratch_.clear();
  for (int id : dirty_scratch_) {
    Conn* c = conn_at(id);
    if (c == nullptr || c->dead) continue;
    // Opportunistic flush so a send queued between waits does not pay a
    // full wait-timeout of latency.
    if (!flush_writable(*c)) {
      mark_dead(*c, id);
      continue;
    }
    if (c->close_after_flush) {
      bool empty;
      {
        MutexLock lock(&c->out_mu);
        empty = c->out.empty();
      }
      if (empty) {
        mark_dead(*c, id);
        continue;
      }
    }
    update_interest(*c, id);
  }
  dirty_scratch_.clear();
}

void Reactor::loop() {
#ifdef __linux__
  if (epfd_ >= 0) {
    run_epoll();
    return;
  }
#endif
  run_poll();
}

#ifdef __linux__
void Reactor::run_epoll() {
  {
    // Arm the wake pipe and listeners once.
    epoll_event e{};
    e.events = EPOLLIN;
    e.data.u64 = kListenerBit | 0xffffffffull;  // wake pipe sentinel
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_pipe_[0], &e);
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      epoll_event le{};
      le.events = EPOLLIN;
      le.data.u64 = kListenerBit | static_cast<std::uint64_t>(i);
      ::epoll_ctl(epfd_, EPOLL_CTL_ADD, listeners_[i], &le);
    }
  }
  epoll_event evs[kMaxEvents];
  for (;;) {
    {
      MutexLock lock(&ctl_mu_);
      if (stopping_) return;
    }
    drain_control();
    const int rc = ::epoll_wait(epfd_, evs, kMaxEvents, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // gdur-analyze: allow(gdur-hotpath-reachability) fatal exit path: the
      // log formatter allocates once and the loop returns immediately after.
      GDUR_ERROR("front: epoll_wait failed: %s", std::strerror(errno));
      return;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->record(obs::Counter::kLoopWakeups);
    for (int i = 0; i < rc; ++i) {
      const std::uint64_t key = evs[i].data.u64;
      if (key & kListenerBit) {
        const std::uint64_t idx = key & ~kListenerBit;
        if (idx == 0xffffffffull) {
          char buf[64];
          while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
          }
        } else {
          handle_listener(listeners_[static_cast<std::size_t>(idx)]);
        }
        continue;
      }
      const int id = static_cast<int>(key);
      Conn* c = conn_at(id);
      if (c == nullptr || c->dead) continue;
      const std::uint32_t ev = evs[i].events;
      if (ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) handle_readable(*c, id);
      if (!c->dead && (ev & EPOLLOUT)) {
        if (!flush_writable(*c)) {
          mark_dead(*c, id);
          continue;
        }
      }
      if (!c->dead) {
        if (c->close_after_flush) {
          bool empty;
          {
            MutexLock lock(&c->out_mu);
            empty = c->out.empty();
          }
          if (empty) {
            mark_dead(*c, id);
            continue;
          }
        }
        update_interest(*c, id);
      }
    }
  }
}
#else
void Reactor::run_epoll() { run_poll(); }
#endif

void Reactor::run_poll() {
  std::vector<pollfd> fds;
  std::vector<int> ids;  // fds index -> conn id (-1 = wake pipe/listener)
  for (;;) {
    {
      MutexLock lock(&ctl_mu_);
      if (stopping_) return;
    }
    drain_control();
    fds.clear();
    ids.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    ids.push_back(-1);
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      fds.push_back(pollfd{listeners_[i], POLLIN, 0});
      ids.push_back(-2 - static_cast<int>(i));
    }
    const std::size_t n = conn_count();
    for (std::size_t i = 0; i < n; ++i) {
      Conn* c = conn_at(static_cast<int>(i));
      short ev = 0;
      if (c != nullptr && !c->dead) {
        if (wants_read(*c)) ev |= POLLIN;
        if (wants_write(*c)) ev |= POLLOUT;
      }
      fds.push_back(
          pollfd{(c == nullptr || c->dead) ? -1 : c->fd, ev, 0});
      ids.push_back(static_cast<int>(i));
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      GDUR_ERROR("front: poll failed: %s", std::strerror(errno));
      return;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->record(obs::Counter::kLoopWakeups);
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const short rev = fds[i].revents;
      if (rev == 0) continue;
      if (ids[i] == -1) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (ids[i] <= -2) {
        handle_listener(listeners_[static_cast<std::size_t>(-2 - ids[i])]);
        continue;
      }
      const int id = ids[i];
      Conn* c = conn_at(id);
      if (c == nullptr || c->dead) continue;
      if (rev & (POLLIN | POLLERR | POLLHUP)) handle_readable(*c, id);
      if (!c->dead && (rev & POLLOUT)) {
        if (!flush_writable(*c)) {
          mark_dead(*c, id);
          continue;
        }
      }
      if (!c->dead && c->close_after_flush) {
        bool empty;
        {
          MutexLock lock(&c->out_mu);
          empty = c->out.empty();
        }
        if (empty) mark_dead(*c, id);
      }
    }
  }
}

void Reactor::handle_listener(int lfd) {
  for (;;) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      GDUR_WARN("front: accept failed: %s", std::strerror(errno));
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (cfg_.keepalive) {
      ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one);
#ifdef TCP_KEEPIDLE
      ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &cfg_.keepalive_idle_s,
                   sizeof cfg_.keepalive_idle_s);
#endif
#ifdef TCP_KEEPINTVL
      ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &cfg_.keepalive_interval_s,
                   sizeof cfg_.keepalive_interval_s);
#endif
#ifdef TCP_KEEPCNT
      ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cfg_.keepalive_count,
                   sizeof cfg_.keepalive_count);
#endif
    }
    if (cfg_.sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.sndbuf,
                   sizeof cfg_.sndbuf);
    const int id = add_connection(fd);
    Conn* c = conn_at(id);
    if (c != nullptr) update_interest(*c, id);  // reactor thread: arm now
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (on_accept_) on_accept_(id);
  }
}

void Reactor::handle_readable(Conn& c, int conn_id) {
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof buf);
    if (n > 0) {
      c.in.insert(c.in.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed or hard error.
    mark_dead(c, conn_id);
    return;
  }
  // Extract complete frames.
  while (c.in.size() - c.in_off >= 4) {
    const std::uint32_t len = read_le32(c.in.data() + c.in_off);
    if (len > cfg_.max_frame) {
      GDUR_ERROR("front: oversized frame (%u bytes), dropping conn", len);
      mark_dead(c, conn_id);
      return;
    }
    if (c.in.size() - c.in_off < 4 + static_cast<std::size_t>(len)) break;
    std::vector<std::uint8_t> frame(c.in.begin() + c.in_off + 4,
                                    c.in.begin() + c.in_off + 4 + len);
    c.in_off += 4 + len;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (on_frame_) on_frame_(conn_id, std::move(frame));
    if (c.dead) return;  // handler may close the connection
  }
  if (c.in_off > 0 && c.in_off == c.in.size()) {
    c.in.clear();
    c.in_off = 0;
  } else if (c.in_off > (1u << 16)) {
    c.in.erase(c.in.begin(), c.in.begin() + c.in_off);
    c.in_off = 0;
  }
}

bool Reactor::flush_writable(Conn& c) {
  MutexLock lock(&c.out_mu);
  while (!c.out.empty()) {
    // Gather up to kMaxIov segments (header + body interleaved) into one
    // writev: bodies are the senders' buffers, never re-copied.
    iovec iov[kMaxIov];
    int niov = 0;
    for (auto& m : c.out) {
      if (niov >= kMaxIov - 1) break;
      const std::size_t body_off = m.off > 4 ? m.off - 4 : 0;
      if (m.off < 4) {
        iov[niov].iov_base = m.hdr + m.off;
        iov[niov].iov_len = 4 - m.off;
        ++niov;
      }
      if (m.body.size() > body_off) {
        iov[niov].iov_base = m.body.data() + body_off;
        iov[niov].iov_len = m.body.size() - body_off;
        ++niov;
      }
    }
    if (niov == 0) {
      c.out.pop_front();
      continue;
    }
    const ssize_t n = ::writev(c.fd, iov, niov);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      // EPIPE etc.: peer gone. Abandoned bytes count as flushed so the
      // watchdog's pending-output gauge returns to zero.
      std::uint64_t abandoned = 0;
      for (const auto& m : c.out) abandoned += 4 + m.body.size() - m.off;
      flushed_bytes_.fetch_add(abandoned, std::memory_order_relaxed);
      c.out_bytes.fetch_sub(abandoned, std::memory_order_relaxed);
      c.out.clear();
      return false;
    }
    flushed_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
    c.out_bytes.fetch_sub(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0 && !c.out.empty()) {
      OutMsg& m = c.out.front();
      const std::size_t sz = 4 + m.body.size() - m.off;
      if (left >= sz) {
        left -= sz;
        c.out.pop_front();
      } else {
        m.off += left;
        left = 0;
      }
    }
  }
  return true;
}

void Reactor::mark_dead(Conn& c, int conn_id) {
  if (c.dead) return;
  c.dead = true;
  {
    MutexLock lock(&c.out_mu);
    std::uint64_t abandoned = 0;
    for (const auto& m : c.out) abandoned += 4 + m.body.size() - m.off;
    flushed_bytes_.fetch_add(abandoned, std::memory_order_relaxed);
    c.out_bytes.fetch_sub(abandoned, std::memory_order_relaxed);
    c.out.clear();
  }
  if (c.fd >= 0) {
    ::close(c.fd);  // epoll interest evaporates with the fd
    c.fd = -1;
  }
  if (on_close_) on_close_(conn_id);
}

}  // namespace gdur::front

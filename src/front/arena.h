// Allocation-free per-request metadata for the front door's hot path.
//
// The request dispatch path (reactor frame handler → site mailbox →
// response) runs thousands of times per second; allocating a fresh
// metadata node per request would put malloc on every latency sample.
// Two small tools avoid that:
//
//   Arena   — a bump allocator over chained fixed-size blocks. reset()
//             recycles every block without returning memory to the
//             system, so steady-state allocation cost is a pointer bump.
//   Pool<T> — a typed free-list on top of operator new: nodes released
//             with put() are handed back by get() without touching the
//             allocator. Steady state (in-flight window full) allocates
//             nothing.
//
// Neither is thread-safe; each owner confines its instance to one thread
// (the front server keeps its pool on the site mailbox thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace gdur::front {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 16 * 1024)
      : block_bytes_(block_bytes) {}

  /// Returns `n` bytes aligned for any scalar type. Never fails (grows by
  /// whole blocks); oversized requests get a dedicated block.
  void* alloc(std::size_t n) {
    n = (n + alignof(std::max_align_t) - 1) &
        ~(alignof(std::max_align_t) - 1);
    if (cur_ == blocks_.size() || off_ + n > blocks_[cur_].size) {
      advance(n);
    }
    void* p = blocks_[cur_].data.get() + off_;
    off_ += n;
    return p;
  }

  template <typename T, typename... Args>
  T* make(Args&&... args) {
    return new (alloc(sizeof(T))) T(std::forward<Args>(args)...);
  }

  /// Recycles every block. Objects placed in the arena must be trivially
  /// destructible (or already destroyed) — reset() runs no destructors.
  void reset() {
    cur_ = 0;
    off_ = 0;
  }

  [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  void advance(std::size_t need) {
    // Leave the (full) active block, then move to the next recycled block
    // that fits, else append one.
    if (cur_ < blocks_.size()) ++cur_;
    while (cur_ < blocks_.size() && blocks_[cur_].size < need) ++cur_;
    if (cur_ == blocks_.size()) {
      const std::size_t sz = need > block_bytes_ ? need : block_bytes_;
      blocks_.push_back({std::make_unique<std::uint8_t[]>(sz), sz});
    }
    off_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  // blocks_[cur_] is the active block (if any)
  std::size_t off_ = 0;
};

/// Typed free-list: get() reuses released nodes, steady state allocates
/// nothing. Nodes are value-initialized on first allocation only — callers
/// must fully re-initialize recycled nodes.
template <typename T>
class Pool {
 public:
  ~Pool() {
    for (T* p : free_) delete p;
  }

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  T* get() {
    if (free_.empty()) {
      ++live_;
      return new T();
    }
    T* p = free_.back();
    free_.pop_back();
    ++live_;
    return p;
  }

  void put(T* p) {
    --live_;
    free_.push_back(p);
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t pooled() const { return free_.size(); }

 private:
  std::vector<T*> free_;
  std::size_t live_ = 0;
};

}  // namespace gdur::front

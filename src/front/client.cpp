#include "front/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace gdur::front {

namespace codec = net::codec;

namespace {

bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

GdurClient::~GdurClient() { close(); }

bool GdurClient::connect() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double>(cfg_.connect_timeout_s));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1)
    return false;
  for (;;) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      break;
    ::close(fd_);
    fd_ = -1;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientHello));
  codec::encode_client_hello(w, {1, kNoSite});
  if (!send_frame(w.data())) {
    close();
    return false;
  }
  std::vector<std::uint8_t> body;
  if (!read_frame(body)) {
    close();
    return false;
  }
  codec::Reader r(body);
  const auto tag = r.u8();
  if (!tag ||
      static_cast<codec::MsgType>(*tag) != codec::MsgType::kClientWelcome) {
    close();
    return false;
  }
  auto welcome = codec::decode_client_welcome(r);
  if (!welcome) {
    close();
    return false;
  }
  session_ = welcome->session;
  window_ = welcome->window;
  site_ = welcome->site;
  protocol_ = welcome->protocol;
  {
    MutexLock lock(&mu_);
    closed_ = false;
    pushed_ = false;
  }
  connected_.store(true, std::memory_order_relaxed);
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

void GdurClient::close() {
  {
    MutexLock lock(&mu_);
    if (closed_ && fd_ < 0) return;
    closed_ = true;
  }
  cv_.notify_all();
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  connected_.store(false, std::memory_order_relaxed);
  fail_all();
}

bool GdurClient::send_frame(const std::vector<std::uint8_t>& body) {
  std::uint8_t hdr[4];
  const auto n = static_cast<std::uint32_t>(body.size());
  hdr[0] = static_cast<std::uint8_t>(n);
  hdr[1] = static_cast<std::uint8_t>(n >> 8);
  hdr[2] = static_cast<std::uint8_t>(n >> 16);
  hdr[3] = static_cast<std::uint8_t>(n >> 24);
  MutexLock lock(&write_mu_);
  return write_all(fd_, hdr, 4) && write_all(fd_, body.data(), body.size());
}

bool GdurClient::read_frame(std::vector<std::uint8_t>& body) {
  std::uint8_t hdr[4];
  if (!read_all(fd_, hdr, 4)) return false;
  const std::uint32_t n = std::uint32_t(hdr[0]) | (std::uint32_t(hdr[1]) << 8) |
                          (std::uint32_t(hdr[2]) << 16) |
                          (std::uint32_t(hdr[3]) << 24);
  if (n > (1u << 24)) return false;
  body.resize(n);
  return read_all(fd_, body.data(), n);
}

void GdurClient::reader_loop() {
  std::vector<std::uint8_t> body;
  for (;;) {
    if (!read_frame(body)) break;
    codec::Reader r(body);
    const auto tag = r.u8();
    if (!tag) break;
    switch (static_cast<codec::MsgType>(*tag)) {
      case codec::MsgType::kClientResp: {
        auto m = codec::decode_client_resp(r);
        if (!m) break;
        RespCb cb;
        {
          MutexLock lock(&mu_);
          auto it = cbs_.find(m->cookie);
          if (it == cbs_.end()) break;
          cb = std::move(it->second);
          cbs_.erase(it);
          if (inflight_ > 0) --inflight_;
          inflight_gauge_.store(inflight_, std::memory_order_relaxed);
        }
        cv_.notify_all();
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (cb) cb(*m);
        break;
      }
      case codec::MsgType::kPushback: {
        auto m = codec::decode_pushback(r);
        if (!m) break;
        {
          MutexLock lock(&mu_);
          pushed_ = m->stop;
        }
        pushed_gauge_.store(m->stop, std::memory_order_relaxed);
        if (m->stop) pushbacks_.fetch_add(1, std::memory_order_relaxed);
        cv_.notify_all();
        break;
      }
      default:
        break;  // unknown server frame: ignore (forward compatibility)
    }
  }
  connected_.store(false, std::memory_order_relaxed);
  fail_all();
}

void GdurClient::fail_all() {
  std::unordered_map<std::uint64_t, RespCb> orphans;
  {
    MutexLock lock(&mu_);
    closed_ = true;
    orphans.swap(cbs_);
    inflight_ = 0;
    inflight_gauge_.store(0, std::memory_order_relaxed);
  }
  cv_.notify_all();
  // Teardown fan-out: per-callback delivery, hash order immaterial (each
  // callback belongs to a distinct caller).
  for (auto& [cookie, cb] : orphans) {
    if (!cb) continue;
    Resp r;
    r.cookie = cookie;
    r.ok = false;
    cb(r);
  }
}

bool GdurClient::submit(codec::ClientOp op, std::uint64_t txn, ObjectId obj,
                        std::vector<ObjectId> reads,
                        std::vector<ObjectId> writes, RespCb cb) {
  std::uint64_t cookie = 0;
  {
    MutexLock lock(&mu_);
    cv_.wait(lock, [this]() REQUIRES(mu_) {
      return closed_ || (inflight_ < window_ && !pushed_);
    });
    if (closed_) return false;
    cookie = next_cookie_++;
    cbs_.emplace(cookie, std::move(cb));
    ++inflight_;
    inflight_gauge_.store(inflight_, std::memory_order_relaxed);
  }
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientReq));
  codec::encode_client_req(
      w, {cookie, op, txn, obj, std::move(reads), std::move(writes)});
  if (send_frame(w.data())) return true;
  fail_all();
  return false;
}

bool GdurClient::try_submit(codec::ClientOp op, std::uint64_t txn,
                            ObjectId obj, std::vector<ObjectId> reads,
                            std::vector<ObjectId> writes, RespCb cb) {
  std::uint64_t cookie = 0;
  {
    MutexLock lock(&mu_);
    if (closed_ || inflight_ >= window_ || pushed_) return false;
    cookie = next_cookie_++;
    cbs_.emplace(cookie, std::move(cb));
    ++inflight_;
    inflight_gauge_.store(inflight_, std::memory_order_relaxed);
  }
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kClientReq));
  codec::encode_client_req(
      w, {cookie, op, txn, obj, std::move(reads), std::move(writes)});
  if (send_frame(w.data())) return true;
  fail_all();
  return false;
}

GdurClient::Resp GdurClient::roundtrip(codec::ClientOp op, std::uint64_t txn,
                                       ObjectId obj,
                                       std::vector<ObjectId> reads,
                                       std::vector<ObjectId> writes) {
  // One-shot waiter sharing the client's cv: the callback runs on the
  // reader thread and flips `done`.
  struct Waiter {
    bool done = false;
    Resp resp;
  };
  auto waiter = std::make_shared<Waiter>();
  const bool sent = submit(op, txn, obj, std::move(reads), std::move(writes),
                           [this, waiter](const Resp& r) {
                             {
                               MutexLock lock(&mu_);
                               waiter->resp = r;
                               waiter->done = true;
                             }
                             cv_.notify_all();
                           });
  if (!sent) {
    Resp r;
    r.ok = false;
    return r;
  }
  MutexLock lock(&mu_);
  cv_.wait(lock, [&]() REQUIRES(mu_) { return waiter->done || closed_; });
  return waiter->resp;  // ok=false default when the connection died first
}

std::optional<std::uint64_t> GdurClient::begin_sync() {
  const Resp r = roundtrip(codec::ClientOp::kBegin, 0, 0, {}, {});
  if (!r.ok) return std::nullopt;
  return r.txn;
}

bool GdurClient::read_sync(std::uint64_t txn, ObjectId obj) {
  return roundtrip(codec::ClientOp::kRead, txn, obj, {}, {}).ok;
}

bool GdurClient::write_sync(std::uint64_t txn, ObjectId obj) {
  return roundtrip(codec::ClientOp::kWrite, txn, obj, {}, {}).ok;
}

bool GdurClient::commit_sync(std::uint64_t txn) {
  return roundtrip(codec::ClientOp::kCommit, txn, 0, {}, {}).ok;
}

bool GdurClient::stored_sync(const std::vector<ObjectId>& reads,
                             const std::vector<ObjectId>& writes) {
  return roundtrip(codec::ClientOp::kStored, 0, 0, reads, writes).ok;
}

}  // namespace gdur::front

// GdurClient — the client-side half of the front-door protocol.
//
// A thin, dependency-free library an application (or gdur_loadgen) links to
// talk to a gdur_site process: one TCP connection, one session, pipelined
// cookie-correlated requests up to the server-advertised window.
//
// Threading: connect() is blocking (dial, hello, welcome). After that a
// reader thread owns the socket's inbound side and invokes response
// callbacks; submission happens from any thread. submit() blocks while the
// window is full or the server pushed back (closed-loop clients self-
// throttle on exactly that); try_submit() never blocks (open-loop sources
// count a refusal as shed load instead of queueing).
//
// Backpressure honored: a Pushback{stop} frame parks every submitter until
// the matching resume frame — the client never submits into an overloaded
// server, and the windows bound what the server must buffer per session.
//
// This is intentionally a blocking-socket client: gdur-lint's
// live/blocking-call rule covers the server dispatch path, not this file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "net/codec.h"

namespace gdur::front {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// connect() retries refused dials (site still booting) up to this long.
  double connect_timeout_s = 10.0;
};

class GdurClient {
 public:
  using Resp = net::codec::ClientRespMsg;
  /// Invoked on the reader thread. On connection loss every outstanding
  /// callback fires once with ok=false.
  using RespCb = std::function<void(const Resp&)>;

  explicit GdurClient(ClientConfig cfg) : cfg_(std::move(cfg)) {}
  ~GdurClient();

  GdurClient(const GdurClient&) = delete;
  GdurClient& operator=(const GdurClient&) = delete;

  /// Dials, performs hello/welcome, spawns the reader thread.
  [[nodiscard]] bool connect();
  void close();

  [[nodiscard]] bool connected() const {
    return connected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t session() const { return session_; }
  [[nodiscard]] std::uint32_t window() const { return window_; }
  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] const std::string& protocol() const { return protocol_; }

  // --- pipelined core ----------------------------------------------------
  /// Blocking submit: waits for a window slot and for any pushback to
  /// clear, then sends. False only when the connection is gone.
  bool submit(net::codec::ClientOp op, std::uint64_t txn, ObjectId obj,
              std::vector<ObjectId> reads, std::vector<ObjectId> writes,
              RespCb cb);
  /// Non-blocking submit: false when the window is full, the server pushed
  /// back, or the connection is gone (open-loop shed signal).
  bool try_submit(net::codec::ClientOp op, std::uint64_t txn, ObjectId obj,
                  std::vector<ObjectId> reads, std::vector<ObjectId> writes,
                  RespCb cb);

  // --- blocking conveniences (closed-loop flows) -------------------------
  /// Begins an interactive transaction; returns its server-issued handle.
  [[nodiscard]] std::optional<std::uint64_t> begin_sync();
  [[nodiscard]] bool read_sync(std::uint64_t txn, ObjectId obj);
  [[nodiscard]] bool write_sync(std::uint64_t txn, ObjectId obj);
  /// Returns the commit verdict (false = aborted or connection lost).
  [[nodiscard]] bool commit_sync(std::uint64_t txn);
  /// One-shot stored transaction, one round trip. Returns the verdict.
  [[nodiscard]] bool stored_sync(const std::vector<ObjectId>& reads,
                                 const std::vector<ObjectId>& writes);

  // --- gauges ------------------------------------------------------------
  [[nodiscard]] std::uint32_t inflight() const {
    return inflight_gauge_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Pushback stop frames received (the explicit-backpressure test hook).
  [[nodiscard]] std::uint64_t pushbacks() const {
    return pushbacks_.load(std::memory_order_relaxed);
  }
  /// True while the server's pushback currently parks submissions.
  [[nodiscard]] bool pushed_back() const {
    return pushed_gauge_.load(std::memory_order_relaxed);
  }

 private:
  bool send_frame(const std::vector<std::uint8_t>& body);
  bool read_frame(std::vector<std::uint8_t>& body);
  void reader_loop();
  /// Fails every outstanding callback with ok=false and wakes waiters.
  void fail_all();
  [[nodiscard]] Resp roundtrip(net::codec::ClientOp op, std::uint64_t txn,
                               ObjectId obj, std::vector<ObjectId> reads,
                               std::vector<ObjectId> writes);

  ClientConfig cfg_;
  int fd_ = -1;
  std::uint64_t session_ = 0;
  std::uint32_t window_ = 0;
  SiteId site_ = kNoSite;
  std::string protocol_;
  std::thread reader_;

  Mutex mu_;
  CondVar cv_;
  std::unordered_map<std::uint64_t, RespCb> cbs_ GUARDED_BY(mu_);
  std::uint64_t next_cookie_ GUARDED_BY(mu_) = 1;
  std::uint32_t inflight_ GUARDED_BY(mu_) = 0;
  bool pushed_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = true;

  Mutex write_mu_;  // serializes whole frames onto the socket

  std::atomic<bool> connected_{false};
  std::atomic<std::uint32_t> inflight_gauge_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> pushbacks_{0};
  std::atomic<bool> pushed_gauge_{false};
};

}  // namespace gdur::front

#include "front/signals.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

namespace gdur::front {

namespace {

std::atomic<int> g_signals{0};

extern "C" void on_shutdown_signal(int /*sig*/) {
  // Async-signal-safe: one fetch_add, and a hard exit if the operator
  // insists (second signal while the drain is still running).
  if (g_signals.fetch_add(1, std::memory_order_relaxed) >= 1) _exit(130);
}

}  // namespace

void install_shutdown_handler() {
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

bool shutdown_requested() {
  return g_signals.load(std::memory_order_relaxed) > 0;
}

bool interruptible_sleep(double secs) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(secs));
  while (std::chrono::steady_clock::now() < deadline) {
    if (shutdown_requested()) return true;
    // Main-thread wait loop, not runtime code (signals.cpp is outside the
    // blocking-call scope for exactly this function).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return shutdown_requested();
}

void request_shutdown_for_test() {
  g_signals.fetch_add(1, std::memory_order_relaxed);
}

void reset_shutdown_for_test() {
  g_signals.store(0, std::memory_order_relaxed);
}

}  // namespace gdur::front

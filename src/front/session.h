// Client session state for the front door.
//
// One Session per accepted client connection. All fields are confined to
// the serving site's mailbox thread (the front server posts every frame,
// accept and close event there), so no locking — the same confinement rule
// the replica itself lives under.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/transaction.h"

namespace gdur::front {

struct Session {
  int conn = -1;             // reactor connection id
  std::uint64_t id = 0;      // session id minted at accept, never reused
  bool hello_done = false;   // welcome sent; requests legal only after
  bool pushed = false;       // a Pushback{stop} is outstanding to this client
  bool closing = false;      // connection died; drop late completions
  std::uint32_t inflight = 0;  // requests received but not yet responded
  std::uint64_t ops = 0;       // lifetime requests served
  /// Interactive transactions begun and not yet terminated, keyed by the
  /// coordinator-local sequence number handed to the client. A session
  /// vanishing with entries here is the presumed-abort path: the records
  /// were never submitted, so dropping the pointers aborts them.
  std::unordered_map<std::uint64_t, core::MutTxnPtr> open;
};

}  // namespace gdur::front

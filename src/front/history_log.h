// Per-process history dumps for the multi-process deployment.
//
// In the single-process live harness the checker::History sees every site's
// installs and every client outcome directly. Split across OS processes,
// each gdur_site only witnesses its own slice — so at drain time each
// process serializes what it saw (codec-framed, same varint discipline as
// the wire) and gdur_checkhist merges the dumps, rebuilds the partitioner
// from the embedded config header, and runs the protocol's criterion check
// over the union. The config header also lets the merger reject dumps from
// mismatched runs (different protocol / keyspace / membership).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "checker/history.h"
#include "common/thread_annotations.h"
#include "core/cluster.h"

namespace gdur::front {

/// Run parameters embedded in every dump; all dumps of one run must agree.
struct HistoryDumpHeader {
  std::string protocol;
  std::string criterion;
  std::uint32_t sites = 0;
  std::uint32_t replication = 1;
  std::uint64_t objects = 0;  // total keyspace (Partitioner's `objects`)
  std::uint32_t partitions_per_site = 1;
  SiteId self = kNoSite;  // the site whose process wrote this dump

  /// True when `o` describes the same run (everything but `self` equal).
  [[nodiscard]] bool compatible(const HistoryDumpHeader& o) const {
    return protocol == o.protocol && criterion == o.criterion &&
           sites == o.sites && replication == o.replication &&
           objects == o.objects &&
           partitions_per_site == o.partitions_per_site;
  }
};

/// Accumulates one process's history; thread-safe (observers fire on the
/// site thread while the main thread may snapshot at drain).
class HistoryLogWriter {
 public:
  explicit HistoryLogWriter(HistoryDumpHeader hdr) : hdr_(std::move(hdr)) {}

  void add_txn(const core::TxnRecord& t, bool committed, SimTime response);
  void add_install(const core::Cluster::InstallEvent& e);

  [[nodiscard]] std::size_t txn_count() const;

  /// Serializes header + records to `path`. Returns false on I/O error.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  HistoryDumpHeader hdr_;
  mutable Mutex mu_;
  std::vector<checker::TxnOutcome> txns_ GUARDED_BY(mu_);
  std::vector<core::Cluster::InstallEvent> installs_ GUARDED_BY(mu_);
};

/// One parsed dump file.
struct HistoryDump {
  HistoryDumpHeader header;
  std::vector<checker::TxnOutcome> txns;
  std::vector<core::Cluster::InstallEvent> installs;
};

/// Parses a dump written by HistoryLogWriter::write_file. nullopt on any
/// malformed byte (same honesty contract as the wire codec).
[[nodiscard]] std::optional<HistoryDump> read_history_dump(
    const std::string& path);

}  // namespace gdur::front

// Walter [Sovran et al. 2011] — Algorithm 9 of the paper.
//
//   Θ               ≡ VTS
//   choose          ≡ choose_cons      (PSI snapshot at start vector)
//   AC              ≡ 2pc
//   certifying_obj  ≡ ws(T)            (genuine-ish, but see post_commit)
//   commute(Ti,Tj)  ≡ ws(Ti) ∩ ws(Tj) = ∅
//   certify(T)      ≡ latest version of every written object is in T's snapshot
//   post_commit     ≡ M-Cast Θ(T) to Π \ replicas(ws(T))   (non-genuine)
#include "core/certifiers.h"
#include "protocols/common.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec walter() {
  core::ProtocolSpec s;
  s.name = "Walter";
  s.theta = versioning::VersioningKind::kVTS;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kTwoPhaseCommit;
  // xcast is unused under 2PC commitment; set explicitly so every
  // realization point of the plug-in table is pinned (protocol/spec-complete).
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  s.commute = core::commute_ww_disjoint;
  s.certify = core::certifiers::ww_visible;
  s.post_commit = propagate_to_rest;
  return s;
}

}  // namespace gdur::protocols

// Helpers shared by protocol plug-ins.
#pragma once

#include "core/protocol_spec.h"

namespace gdur::protocols {

/// Background propagation shared by S-DUR and Walter (§6.1/§6.4): multicast
/// the committed transaction's version number to the sites that did not take
/// part in its certification, advancing their vector clocks.
void propagate_to_rest(core::Cluster& cl, const core::TxnRecord& t);

}  // namespace gdur::protocols

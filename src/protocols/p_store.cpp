// P-Store [Schiper et al. 2010] — Algorithm 5 of the paper.
//
//   Θ               ≡ TS
//   choose          ≡ choose_last
//   AC              ≡ gc
//   xcast           ≡ AM-Cast (genuine atomic multicast)
//   certifying_obj  ≡ ws(T) ∪ rs(T)       (queries are certified too)
//   commute(Ti,Tj)  ≡ rs/ws cross-disjoint
//   certify(T)      ≡ every object read is still at the version read
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec p_store() {
  core::ProtocolSpec s;
  s.name = "P-Store";
  s.theta = versioning::VersioningKind::kTS;
  s.choose = core::ChooseKind::kLast;
  s.ac = core::AcKind::kGroupComm;
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.wait_free_queries = false;  // read-only transactions go through AM-Cast
  s.certifying = core::CertScope::kReadWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  s.commute = core::commute_rw_disjoint;
  s.certify = core::certifiers::reads_latest;
  return s;
}

core::ProtocolSpec p_store_2pc() {
  auto s = p_store();
  s.name = "P-Store+2PC";
  s.ac = core::AcKind::kTwoPhaseCommit;
  return s;
}

core::ProtocolSpec p_store_ft() {
  auto s = p_store();
  s.name = "P-Store-FT";
  s.ft_multicast = true;
  return s;
}

core::ProtocolSpec p_store_paxos() {
  auto s = p_store();
  s.name = "P-Store+Paxos";
  s.ac = core::AcKind::kPaxosCommit;
  return s;
}

}  // namespace gdur::protocols

// Read Committed (§7) — the weak-consistency baseline showing the maximum
// achievable performance: committed-version reads without further
// guarantees, trivial certification, minimal metadata.
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec rc() {
  core::ProtocolSpec s;
  s.name = "RC";
  s.theta = versioning::VersioningKind::kTS;
  s.choose = core::ChooseKind::kLast;
  s.send_metadata = false;
  s.ac = core::AcKind::kTwoPhaseCommit;
  // xcast is unused under 2PC commitment; set explicitly so every
  // realization point of the plug-in table is pinned (protocol/spec-complete).
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  s.commute = core::commute_always;
  s.certify = core::certifiers::always;
  s.trivial_certify = true;
  return s;
}

}  // namespace gdur::protocols

// S-DUR [Sciascia & Pedone 2012] — Algorithm 6 of the paper.
//
//   Θ               ≡ VTS
//   choose          ≡ choose_cons       (wait-free queries)
//   AC              ≡ gc
//   xcast           ≡ AMpw-Cast         (pairwise-ordered multicast)
//   certifying_obj  ≡ ∅ if |ws| = 0 else ws ∪ rs
//   commute(Ti,Tj)  ≡ rs/ws cross-disjoint
//   certify(T)      ≡ no concurrent committed conflicting transaction
//   post_commit     ≡ M-Cast Θ(T) to Π \ replicas(certifying_obj(T))
#include "core/certifiers.h"
#include "protocols/common.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec s_dur() {
  core::ProtocolSpec s;
  s.name = "S-DUR";
  s.theta = versioning::VersioningKind::kVTS;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kGroupComm;
  s.xcast = core::XcastKind::kPairwiseMulticast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kReadWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  // Every certification participant learns the outcome, so that each keeps
  // the committed-transaction log the S-DUR test compares against.
  s.vote_recv = core::VoteScope::kCertifying;
  s.commute = core::commute_rw_disjoint;
  s.certify = core::certifiers::sdur;
  s.track_committed_readers = true;
  s.post_commit = propagate_to_rest;
  return s;
}

}  // namespace gdur::protocols

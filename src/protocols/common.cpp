#include "protocols/common.h"

#include <algorithm>
#include <vector>

#include "core/cluster.h"

namespace gdur::protocols {

void propagate_to_rest(core::Cluster& cl, const core::TxnRecord& t) {
  const auto cs = core::certifying_objects(cl.spec(), t, cl.partitioner());
  const auto involved = cl.partitioner().replicas_of(cs.objs);
  std::vector<SiteId> rest;
  // gdur-lint: allow(membership/hardcoded-sites) universe complement; view-filtered just below
  for (SiteId s = 0; s < static_cast<SiteId>(cl.sites()); ++s)
    if (std::find(involved.begin(), involved.end(), s) == involved.end())
      rest.push_back(s);
  // Background propagation targets participants only: a retiree is fenced
  // and a joiner catches up through the state-transfer stream instead.
  if (cl.reconfig_enabled()) rest = cl.view(t.epoch).filter(std::move(rest));
  cl.propagate_stamp(t.id.coord, t, rest);
}

}  // namespace gdur::protocols

// P-Store_la (§8.4) — the locality-aware improvement of P-Store built by
// swapping plug-ins:
//   * reads take consistent snapshots (choose_cons over PDV) instead of
//     reading the latest committed value;
//   * certifying_obj(T) returns ∅ when T is a query confined to a single
//     data partition (site), so such queries commit locally;
//   * everything else is P-Store.
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec p_store_la() {
  auto s = p_store();
  s.name = "P-Store-LA";
  s.theta = versioning::VersioningKind::kPDV;
  s.choose = core::ChooseKind::kCons;
  s.certifying_override =
      [](const core::TxnRecord& t,
         const store::Partitioner& part) -> std::optional<ObjSet> {
    if (t.read_only() && part.single_site(t.rs)) return ObjSet{};
    return std::nullopt;  // fall back to ws ∪ rs
  };
  return s;
}

}  // namespace gdur::protocols

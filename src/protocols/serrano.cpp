// Serrano [Serrano et al. 2007] — Algorithm 8 of the paper.
//
//   Θ               ≡ TS
//   choose          ≡ choose_cons      (SI snapshot at start timestamp)
//   AC              ≡ gc
//   xcast           ≡ AB-Cast          (non-genuine: every site delivers)
//   certifying_obj  ≡ ∅ if |ws| = 0 else Objects
//   commute(Ti,Tj)  ≡ ws(Ti) ∩ ws(Tj) = ∅
//   certify(T)      ≡ no written object has a version newer than the snapshot
//   vote_snd_obj = vote_recv_obj ≡ LocalObjects (no distributed voting:
//   every replica tracks the latest version number of all objects and
//   decides locally, deterministically, in delivery order)
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec serrano() {
  core::ProtocolSpec s;
  s.name = "Serrano";
  s.theta = versioning::VersioningKind::kTS;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kGroupComm;
  s.xcast = core::XcastKind::kAtomicBroadcast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kAllObjects;
  s.vote_snd = core::VoteScope::kLocalObjects;
  s.vote_recv = core::VoteScope::kLocalObjects;
  s.track_all_objects = true;
  s.commute = core::commute_ww_disjoint;
  s.certify = core::certifiers::ww_all_objects;
  return s;
}

}  // namespace gdur::protocols

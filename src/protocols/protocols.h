// The protocol library: the six state-of-the-art DUR protocols realized in
// §6 of the paper, the RC baseline of §7, and the derived variants used in
// the case studies of §8.3-§8.5.
//
// Each factory returns a ProtocolSpec — the full plugin table for the
// G-DUR engine. The definitions mirror the paper's Algorithms 5-10.
#pragma once

#include "core/protocol_spec.h"

namespace gdur::protocols {

// --- §6: the six protocols -------------------------------------------------

/// P-Store (Schiper et al., SRDS 2010) — SER, genuine partial replication,
/// certified queries. Algorithm 5.
core::ProtocolSpec p_store();

/// S-DUR (Sciascia & Pedone, DSN 2012) — SER with wait-free queries via
/// pairwise-ordered multicast. Algorithm 6.
core::ProtocolSpec s_dur();

/// GMU (Peluso et al., ICDCS 2012) — Update Serializability, genuine, 2PC.
/// Algorithm 7.
core::ProtocolSpec gmu();

/// Serrano (Serrano et al., PRDC 2007) — SI, non-genuine, atomic broadcast.
/// Algorithm 8.
core::ProtocolSpec serrano();

/// Walter (Sovran et al., SOSP 2011) — PSI, 2PC + background propagation.
/// Algorithm 9.
core::ProtocolSpec walter();

/// Jessy2pc (Saeida Ardekani et al., SRDS 2013) — NMSI, genuine, 2PC.
/// Algorithm 10.
core::ProtocolSpec jessy2pc();

// --- §7: baseline ------------------------------------------------------------

/// Read Committed — the weakest criterion; shows the maximum achievable
/// performance of the middleware.
core::ProtocolSpec rc();

// --- §8.3: GMU ablations ------------------------------------------------------

/// GMU*: trivial snapshot (choose_last) but the consistent-snapshot
/// metadata is still marshaled and sent.
core::ProtocolSpec gmu_star();

/// GMU**: trivial snapshot and trivial certification; only the metadata
/// overhead of GMU remains.
core::ProtocolSpec gmu_star_star();

// --- §8.4: locality-aware P-Store --------------------------------------------

/// P-Store_la: P-Store reading consistent snapshots (PDV), so that queries
/// confined to a single site commit locally without certification.
core::ProtocolSpec p_store_la();

// --- §8.5: dependability study -------------------------------------------------

/// P-Store with its AM-Cast commitment replaced by 2PC.
core::ProtocolSpec p_store_2pc();

/// P-Store with the disaster-tolerant (6-delay) genuine multicast.
core::ProtocolSpec p_store_ft();

/// P-Store with commitment by Paxos Commit — the third AC realization of
/// §5: coordinator-failure tolerant, one extra message delay, Ω(r·n)
/// messages.
core::ProtocolSpec p_store_paxos();

// --- extensions beyond the paper ---------------------------------------------

/// RAMP-style Read Atomicity (the criterion the paper's conclusion plans to
/// support): no fractured reads, no aborts, last-writer-wins updates.
core::ProtocolSpec ramp();

/// All protocol factories keyed by name (for harness/bench lookup).
core::ProtocolSpec by_name(const std::string& name);

}  // namespace gdur::protocols

#include <stdexcept>

#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec by_name(const std::string& name) {
  if (name == "P-Store") return p_store();
  if (name == "S-DUR") return s_dur();
  if (name == "GMU") return gmu();
  if (name == "Serrano") return serrano();
  if (name == "Walter") return walter();
  if (name == "Jessy2pc") return jessy2pc();
  if (name == "RC") return rc();
  if (name == "GMU*") return gmu_star();
  if (name == "GMU**") return gmu_star_star();
  if (name == "P-Store-LA") return p_store_la();
  if (name == "P-Store+2PC") return p_store_2pc();
  if (name == "P-Store-FT") return p_store_ft();
  if (name == "P-Store+Paxos") return p_store_paxos();
  if (name == "RAMP") return ramp();
  throw std::invalid_argument("unknown protocol: " + name);
}

}  // namespace gdur::protocols

// RAMP — Read Atomicity (Bailis et al., SIGMOD 2014).
//
// The paper's conclusion names read atomicity as a criterion it plans to
// support next; this plug-in realizes it. Read Atomicity forbids fractured
// reads (observing some but not all of a transaction's writes) without
// restricting concurrent writers — there is no certification at all, and
// writes race under last-writer-wins. (RAMP's multi-round read repair is
// modeled by snapshot-compatible version selection; under extreme
// contention a read that cannot be satisfied within the bounded retry
// window aborts the transaction instead.)
//
//   Θ               ≡ PDV        (dependence vectors detect fractures)
//   choose          ≡ choose_cons
//   AC              ≡ 2pc        (one round to install, votes always true)
//   certifying_obj  ≡ ws(T)
//   commute         ≡ always     (nothing blocks, nothing preempts)
//   certify         ≡ always
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec ramp() {
  core::ProtocolSpec s;
  s.name = "RAMP";
  s.theta = versioning::VersioningKind::kPDV;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kTwoPhaseCommit;
  // xcast is unused under 2PC commitment; set explicitly so every
  // realization point of the plug-in table is pinned (protocol/spec-complete).
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  s.commute = core::commute_always;
  s.certify = core::certifiers::always;
  s.trivial_certify = true;
  return s;
}

}  // namespace gdur::protocols

// GMU [Peluso et al. 2012] — Algorithm 7 of the paper, plus the GMU* and
// GMU** ablations of §8.3.
//
//   Θ               ≡ GMV
//   choose          ≡ choose_cons      (fresh, consistent, non-monotonic)
//   AC              ≡ 2pc
//   certifying_obj  ≡ ∅ if |ws| = 0 else rs(T) ∪ ws(T)
//   commute(Ti,Tj)  ≡ rs/ws cross-disjoint
//   certify(T)      ≡ every object read is still at the version read
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec gmu() {
  core::ProtocolSpec s;
  s.name = "GMU";
  s.theta = versioning::VersioningKind::kGMV;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kTwoPhaseCommit;
  // xcast is unused under 2PC commitment; set explicitly so every
  // realization point of the plug-in table is pinned (protocol/spec-complete).
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kReadWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kCertifying;
  s.commute = core::commute_rw_disjoint;
  s.certify = core::certifiers::reads_latest;
  return s;
}

core::ProtocolSpec gmu_star() {
  // §8.3: the versioning component is turned off (choose_last), but the
  // snapshot metadata is still marshaled and shipped.
  auto s = gmu();
  s.name = "GMU*";
  s.choose = core::ChooseKind::kLast;
  s.send_metadata = true;
  return s;
}

core::ProtocolSpec gmu_star_star() {
  // §8.3: additionally, every transaction passes certification.
  auto s = gmu_star();
  s.name = "GMU**";
  s.certify = core::certifiers::always;
  s.commute = core::commute_always;
  s.trivial_certify = true;
  return s;
}

}  // namespace gdur::protocols

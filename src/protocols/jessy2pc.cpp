// Jessy2pc [Saeida Ardekani et al. 2013] — Algorithm 10 of the paper.
//
//   Θ               ≡ PDV
//   choose          ≡ choose_cons      (NMSI: any consistent snapshot)
//   AC              ≡ 2pc
//   certifying_obj  ≡ ws(T)
//   commute(Ti,Tj)  ≡ ws(Ti) ∩ ws(Tj) = ∅
//   certify(T)      ≡ no concurrent committed write-write conflict
//
// Jessy2pc is genuine: no background propagation after commitment.
#include "core/certifiers.h"
#include "protocols/protocols.h"

namespace gdur::protocols {

core::ProtocolSpec jessy2pc() {
  core::ProtocolSpec s;
  s.name = "Jessy2pc";
  s.theta = versioning::VersioningKind::kPDV;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kTwoPhaseCommit;
  // xcast is unused under 2PC commitment; set explicitly so every
  // realization point of the plug-in table is pinned (protocol/spec-complete).
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.wait_free_queries = true;
  s.certifying = core::CertScope::kWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  s.commute = core::commute_ww_disjoint;
  s.certify = core::certifiers::ww_nmsi;
  return s;
}

}  // namespace gdur::protocols

#include "live/timer_wheel.h"

#include <algorithm>

#include "obs/stats.h"

namespace gdur::live {

void TimerWheel::start() {
  MutexLock lock(&mu_);
  if (running_) return;
  t0_ = Clock::now();
  cur_tick_ = 0;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { loop(); });
}

void TimerWheel::stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  MutexLock lock(&mu_);
  running_ = false;
  for (auto& slot : slots_) slot.clear();
  armed_ = 0;
  armed_n_.store(0, std::memory_order_relaxed);
}

std::uint64_t TimerWheel::tick_of(Clock::time_point tp) const {
  const auto since = tp - t0_;
  if (since.count() <= 0) return 0;
  // Round up: a timer never fires early.
  return static_cast<std::uint64_t>((since + kTick - Clock::duration(1)) / kTick);
}

void TimerWheel::schedule_after(std::chrono::nanoseconds delay,
                                std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    if (!running_ || stopping_) return;
    std::uint64_t tick = tick_of(Clock::now() + delay);
    tick = std::max(tick, cur_tick_);
    slots_[tick % kSlots].push_back(Entry{tick, std::move(fn)});
    ++armed_;
    ++scheduled_;
    armed_n_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

void TimerWheel::loop() {
  MutexLock lock(&mu_);
  while (!stopping_) {
    if (armed_ == 0) {
      cv_.wait(lock, [this]() REQUIRES(mu_) { return stopping_ || armed_ > 0; });
      if (stopping_) return;
      // Nothing was pending while we slept; jump to the present.
      cur_tick_ = std::max(cur_tick_, tick_of(Clock::now()));
      continue;
    }
    // Tick T's entries are due once its boundary t0_ + T*kTick has PASSED,
    // so the gate must floor (tick_of rounds up and would admit the slot
    // up to a full tick early).
    const auto since = Clock::now() - t0_;
    const std::uint64_t now_tick =
        since.count() <= 0 ? 0 : static_cast<std::uint64_t>(since / kTick);
    if (cur_tick_ > now_tick) {
      cv_.wait_until(lock, t0_ + cur_tick_ * kTick,
                     [this]() REQUIRES(mu_) { return stopping_; });
      if (stopping_) return;
      continue;
    }
    // Process the current tick's slot: fire due entries in insertion order,
    // keep entries hashed here for a later wheel revolution.
    auto& slot = slots_[cur_tick_ % kSlots];
    std::vector<std::function<void()>> due;
    std::size_t kept = 0;
    for (auto& e : slot) {
      if (e.tick <= cur_tick_) {
        due.push_back(std::move(e.fn));
      } else {
        slot[kept++] = std::move(e);
      }
    }
    slot.resize(kept);
    armed_ -= due.size();
    ++cur_tick_;
    ticks_n_.fetch_add(1, std::memory_order_relaxed);
    armed_n_.fetch_sub(due.size(), std::memory_order_relaxed);
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();
      fired_n_.fetch_add(due.size(), std::memory_order_relaxed);
      if (stats_ != nullptr)
        stats_->record(obs::Counter::kTimerFires, due.size());
      lock.lock();
    }
  }
}

std::uint64_t TimerWheel::scheduled() const {
  MutexLock lock(&mu_);
  return scheduled_;
}

}  // namespace gdur::live

#include "live/mailbox.h"

#include "obs/stats.h"

namespace gdur::live {

void Mailbox::post(Task fn) {
  {
    MutexLock lock(&mu_);
    if (stopped_) return;
    q_.push_back(std::move(fn));
    posted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void Mailbox::run() {
  // Tracks whether the idle hook already ran for the current dry spell, so
  // an empty queue flushes exactly once and then blocks.
  bool idle_ran = false;
  for (;;) {
    Task task;
    bool run_idle = false;
    {
      MutexLock lock(&mu_);
      if (q_.empty() && !stopped_ && idle_ && !idle_ran) {
        run_idle = true;  // flush outside the lock, then come back
      } else {
        cv_.wait(lock,
                 [this]() REQUIRES(mu_) { return stopped_ || !q_.empty(); });
        if (stopped_) break;
        task = std::move(q_.front());
        q_.pop_front();
      }
    }
    if (run_idle) {
      idle_();
      idle_ran = true;
      continue;
    }
    idle_ran = false;
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->record(obs::Counter::kMailboxTasks);
  }
  // Teardown flush: anything still coalesced goes out (best-effort; the
  // transport may already be quiescing).
  if (idle_) idle_();
}

void Mailbox::stop() {
  {
    MutexLock lock(&mu_);
    stopped_ = true;
    // Discarded tasks count as executed so posted() - executed() (the
    // watchdog's pending gauge) returns to zero at teardown.
    executed_.fetch_add(q_.size(), std::memory_order_relaxed);
    q_.clear();
  }
  cv_.notify_all();
}

}  // namespace gdur::live

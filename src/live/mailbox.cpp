#include "live/mailbox.h"

namespace gdur::live {

void Mailbox::post(Task fn) {
  {
    MutexLock lock(&mu_);
    if (stopped_) return;
    q_.push_back(std::move(fn));
    ++posted_;
  }
  cv_.notify_one();
}

void Mailbox::run() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      cv_.wait(lock, [this]() REQUIRES(mu_) { return stopped_ || !q_.empty(); });
      if (stopped_) return;
      task = std::move(q_.front());
      q_.pop_front();
    }
    task();
  }
}

void Mailbox::stop() {
  {
    MutexLock lock(&mu_);
    stopped_ = true;
    q_.clear();
  }
  cv_.notify_all();
}

std::uint64_t Mailbox::posted() const {
  MutexLock lock(&mu_);
  return posted_;
}

}  // namespace gdur::live

#include "live/mailbox.h"

#include "obs/stats.h"

namespace gdur::live {

void Mailbox::post(Task fn) {
  {
    MutexLock lock(&mu_);
    if (stopped_) return;
    q_.push_back(std::move(fn));
    posted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void Mailbox::run() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      cv_.wait(lock, [this]() REQUIRES(mu_) { return stopped_ || !q_.empty(); });
      if (stopped_) return;
      task = std::move(q_.front());
      q_.pop_front();
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->record(obs::Counter::kMailboxTasks);
  }
}

void Mailbox::stop() {
  {
    MutexLock lock(&mu_);
    stopped_ = true;
    // Discarded tasks count as executed so posted() - executed() (the
    // watchdog's pending gauge) returns to zero at teardown.
    executed_.fetch_add(q_.size(), std::memory_order_relaxed);
    q_.clear();
  }
  cv_.notify_all();
}

}  // namespace gdur::live
